// Experiment V1 — the paper's protocol refinement: "in our implementation
// stops on invalid signals are discarded.  The overall computation can
// get a significant speedup, and higher locality of management of
// void/stop signals is ensured."
//
// Compares the reference protocol (stops honored regardless of validity:
// voids occupy relay stations and are frozen by stops; a stopped void
// blocks a shell) against the variant, under environments that actually
// generate stop-on-void situations: bursty sink back pressure and sparse
// sources.  Steady streams show no difference; the gap opens under
// congestion, which is the paper's point about locality.

#include <iostream>

#include "bench_util.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

struct Scenario {
  std::string name;
  graph::Generated (*make)();
  std::uint64_t sink_period;  // consume 1 token every k cycles (0 = greedy)
  std::uint64_t source_gap;   // source ready 1 cycle in k (0 = always)
};

graph::Generated deep_pipe() { return graph::make_pipeline(4, 3); }
graph::Generated fig1() { return graph::make_fig1(); }
graph::Generated wide_reconv() { return graph::make_reconvergent(1, 2, 2); }
graph::Generated ring() { return graph::make_ring_with_tap(2, 2); }

std::uint64_t run_tokens(const Scenario& sc, lip::StopPolicy pol,
                         std::uint64_t cycles) {
  auto gen = sc.make();
  auto d = benchutil::make_design(gen);
  if (sc.sink_period > 1) {
    for (auto s : gen.sinks) {
      d.set_sink(s, lip::SinkBehavior::periodic(sc.sink_period));
    }
  }
  if (sc.source_gap > 1) {
    for (auto s : gen.sources) {
      d.set_source(s, lip::SourceBehavior::sparse_counter(
                          /*seed=*/17, 1, sc.source_gap));
    }
  }
  auto sys = d.instantiate({pol});
  sys->run(cycles);
  std::uint64_t total = 0;
  for (auto s : gen.sinks) total += sys->sink_count(s);
  return total;
}

}  // namespace

int main() {
  benchutil::heading(
      "V1: protocol variant — discarding stops on invalid signals");

  const Scenario scenarios[] = {
      {"deep pipeline, greedy sink", deep_pipe, 0, 0},
      {"deep pipeline, sink 1/2", deep_pipe, 2, 0},
      {"deep pipeline, sink 1/3", deep_pipe, 3, 0},
      {"deep pipeline, sink 1/3 + sparse source", deep_pipe, 3, 3},
      {"fig1 reconvergent, greedy sink", fig1, 0, 0},
      {"fig1 reconvergent, sink 1/2", fig1, 2, 0},
      {"reconvergent i=3, sink 1/2", wide_reconv, 2, 0},
      {"reconvergent i=3, sink 1/4", wide_reconv, 4, 0},
      {"tapped ring, sink 1/3", ring, 3, 0},
  };
  const std::uint64_t kCycles = 3000;

  Table t({"scenario", "tokens (strict)", "tokens (variant)",
           "variant speedup"});
  for (const auto& sc : scenarios) {
    const auto strict =
        run_tokens(sc, lip::StopPolicy::kCarloniStrict, kCycles);
    const auto variant =
        run_tokens(sc, lip::StopPolicy::kCasuDiscardOnVoid, kCycles);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3fx",
                  strict ? static_cast<double>(variant) /
                               static_cast<double>(strict)
                         : 0.0);
    t.add_row({sc.name, std::to_string(strict), std::to_string(variant),
               buf});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: identical under smooth traffic, variant\n"
               ">= strict everywhere, with the gap opening when back\n"
               "pressure meets voids (congested reconvergence, throttled\n"
               "sinks behind relay-station chains).\n";
  return 0;
}
