// Campaign engine scaling: jobs/second of a mass skeleton-screening
// campaign at 1/2/4/8 worker threads, plus the determinism check that
// the aggregated report is byte-identical at every thread count.
//
// The workload is the paper's screening recipe at fleet scale: 320
// skeleton deadlock screens (converted-random composites and
// reconvergent families, reset and worst-case occupancy) — each run
// "absolutely negligible", the fleet embarrassingly parallel.  Emits
// BENCH_campaign.json with one record per thread count.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "liplib/campaign/campaign.hpp"
#include "liplib/campaign/jobs.hpp"
#include "liplib/campaign/report.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;
using namespace liplib::campaign;

namespace {

/// A >= 256-job screening campaign over generated design families.
std::vector<Job> make_screening_campaign() {
  std::vector<Job> jobs;
  // 192 randomized composite screens (reset + worst case alternating),
  // topologies drawn from each job's deterministic stream.
  for (int i = 0; i < 192; ++i) {
    FuzzSpec spec;
    spec.shape = FuzzSpec::Shape::kComposite;
    spec.size = 4;
    spec.check_equivalence = false;  // pure skeleton screening
    jobs.push_back(make_fuzz_job("composite/" + std::to_string(i), spec));
  }
  // 128 fixed-family screens: reconvergent and ring sweeps, both modes.
  for (std::size_t short_st = 1; short_st <= 4; ++short_st) {
    for (std::size_t shells = 1; shells <= 4; ++shells) {
      for (std::size_t per_hop = 1; per_hop <= 4; ++per_hop) {
        auto gen = graph::make_reconvergent(short_st, shells, per_hop);
        skeleton::ScreeningOptions opts;
        opts.worst_case_occupancy = (short_st + shells + per_hop) % 2;
        jobs.push_back(make_screening_job(
            "reconv/" + std::to_string(short_st) + "_" +
                std::to_string(shells) + "_" + std::to_string(per_hop),
            std::move(gen.topo), opts));
      }
    }
  }
  for (std::size_t s = 1; s <= 8; ++s) {
    for (std::size_t r = 1; r <= 8; ++r) {
      auto gen = graph::make_ring_with_tap(s, r);
      jobs.push_back(make_screening_job(
          "ring/" + std::to_string(s) + "_" + std::to_string(r),
          std::move(gen.topo)));
    }
  }
  return jobs;
}

}  // namespace

int main() {
  benchutil::heading(
      "campaign engine: screening jobs/second vs worker threads");

  const auto jobs = make_screening_campaign();
  std::cout << "campaign size: " << jobs.size() << " skeleton screens\n\n";

  Table t({"threads", "wall s", "jobs/s", "speedup", "steals",
           "aggregate identical"});
  Json records = Json::array();
  std::string reference_json;
  double t1_wall = 0;

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    EngineOptions opts;
    opts.threads = threads;
    opts.base_seed = 2026;
    opts.cycle_budget = 1u << 18;
    RunStats stats;
    const auto results = Engine(opts).run(jobs, &stats);
    const auto agg = aggregate(results);
    const std::string json = to_json(agg).dump(2);
    if (threads == 1) {
      reference_json = json;
      t1_wall = stats.wall_seconds;
    }
    const bool identical = json == reference_json;
    const double jps =
        stats.wall_seconds > 0 ? jobs.size() / stats.wall_seconds : 0;
    const double speedup =
        stats.wall_seconds > 0 ? t1_wall / stats.wall_seconds : 0;

    std::ostringstream wall, rate, spd;
    wall << std::fixed << std::setprecision(3) << stats.wall_seconds;
    rate << std::fixed << std::setprecision(0) << jps;
    spd << std::fixed << std::setprecision(2) << speedup;
    t.add_row({std::to_string(threads), wall.str(), rate.str(), spd.str(),
               std::to_string(stats.steals), identical ? "yes" : "NO"});

    records.push(Json::object()
                     .set("threads", threads)
                     .set("jobs", jobs.size())
                     .set("wall_seconds", stats.wall_seconds)
                     .set("jobs_per_second", jps)
                     .set("speedup_vs_1_thread", speedup)
                     .set("steals", stats.steals)
                     .set("aggregate_identical", identical)
                     .set("outcome_live", agg.count(Outcome::kLive))
                     .set("outcome_deadlock", agg.count(Outcome::kDeadlock))
                     .set("outcome_starvation",
                          agg.count(Outcome::kStarvation)));

    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION at " << threads << " threads\n";
      return 1;
    }
  }
  t.print(std::cout);

  std::cout << "\nhardware threads available: "
            << std::thread::hardware_concurrency()
            << " (speedup saturates at the physical core count)\n\n";

  benchutil::write_bench_json("campaign", std::move(records));
  return 0;
}
