// Experiment M0 — the paper's opening premise, quantified: "The
// performance of future Systems-on-Chip will be limited by the latency of
// long interconnects requiring more than one clock cycle for the signals
// to propagate."
//
// A designer with a wire of length L (in units of one-clock-cycle reach)
// has two sound options:
//   (a) slow the whole clock down until the wire makes timing in one
//       cycle: every module then runs at f = 1/L — global damage;
//   (b) keep the nominal clock, pipeline the wire with ceil(L)-1 relay
//       stations and wrap the modules in shells: the system runs at the
//       nominal clock times the protocol throughput T — local damage,
//       and none at all in feed-forward designs after equalization.
//
// This harness sweeps L for a pipeline (feed-forward) and for a feedback
// loop and prints the effective per-module firing rate of both options:
// rate(a) = 1/L, rate(b) = T(topology with inserted stations).

#include <iostream>

#include "bench_util.hpp"
#include "liplib/graph/wire_plan.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

Rational lid_rate(graph::Topology topo, const std::vector<double>& wires) {
  graph::plan_wire_pipelining(topo, wires, {});
  graph::Generated g;
  g.topo = std::move(topo);
  for (graph::NodeId v = 0; v < g.topo.nodes().size(); ++v) {
    if (g.topo.node(v).kind == graph::NodeKind::kProcess) {
      g.processes.push_back(v);
    }
  }
  auto d = benchutil::make_design(std::move(g));
  auto sys = d.instantiate();
  const auto ss = lip::measure_steady_state(*sys);
  return ss.found ? ss.system_throughput() : Rational(0);
}

std::string pct(double x) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.0f%%", 100.0 * x);
  return buf;
}

}  // namespace

int main() {
  benchutil::heading(
      "M0: why latency insensitivity — slow clock vs relay stations");

  Table t({"design", "longest wire L", "slow-clock rate 1/L",
           "LID rate (nominal clock x T)", "LID advantage"});

  for (double len : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    // Feed-forward pipeline: one long hop among short ones.
    graph::Topology topo;
    auto prev = topo.add_source("src");
    for (int i = 0; i < 3; ++i) {
      const auto p = topo.add_process("P" + std::to_string(i), 1, 1);
      topo.connect({prev, 0}, {p, 0});
      prev = p;
    }
    topo.connect({prev, 0}, {topo.add_sink("out"), 0});
    const std::vector<double> wires = {0.5, len, 0.5, 0.5};
    const auto rate = lid_rate(std::move(topo), wires);
    t.add_row({"pipeline", std::to_string(len).substr(0, 3),
               pct(1.0 / len), rate.str() + " (" + pct(rate.to_double()) + ")",
               pct(rate.to_double() * len)});
  }
  for (double len : {1.0, 2.0, 3.0, 5.0}) {
    // Feedback loop: the long wire closes the loop — here the protocol
    // pays S/(S+R) and the slow clock becomes competitive; LID keeps the
    // *rest* of the chip at full speed, which a global slow clock cannot.
    graph::Topology topo;
    const auto src = topo.add_source("src");
    const auto port = topo.add_process("port", 2, 2);
    const auto body = topo.add_process("body", 1, 1);
    topo.connect({src, 0}, {port, 0});
    topo.connect({port, 1}, {body, 0});
    topo.connect({body, 0}, {port, 1});
    topo.connect({port, 0}, {topo.add_sink("out"), 0});
    const std::vector<double> wires = {0.5, len, len, 0.5};
    const auto rate = lid_rate(std::move(topo), wires);
    t.add_row({"feedback loop", std::to_string(len).substr(0, 3),
               pct(1.0 / len), rate.str() + " (" + pct(rate.to_double()) + ")",
               pct(rate.to_double() * len)});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: for feed-forward designs the LID option\n"
               "wins by a factor that grows linearly with wire length (T\n"
               "stays 1 after equalization while 1/L falls); inside\n"
               "feedback loops both options pay — the loop bound S/(S+R)\n"
               "tracks 1/L — but LID confines the damage to that loop,\n"
               "which is the paper's argument.\n";
  return 0;
}
