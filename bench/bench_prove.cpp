// Prover frontier throughput — the 64-way bit-sliced search frontier vs
// the scalar reference path (formal::check_safety over the SkeletonModel
// adapter).  Two regimes:
//
//  * the 300-suite random-composite corpus (the differential-testing
//    workload) — verdict/state agreement is hard-gated, the speedup is
//    recorded as a trajectory;
//  * a wide-fanout settle-heavy corpus (5-sink forks over half-station
//    chains), where every state expands against 32 environment masks and
//    the batch fills all 64 lanes — here the bit-sliced settle is the
//    subsystem's reason to exist and the speedup is hard-gated at >= 10x
//    (the CI bench-smoke job also gates the BENCH_prove.json trajectory).
//
// The composite corpus cannot reach 10x: its designs average a handful of
// sinks' worth of environment masks and a shallow frontier, so the
// per-state visited-set bookkeeping (which is not sliced) dominates.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "liplib/campaign/campaign.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/prove/prove.hpp"
#include "liplib/support/rng.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The 300-suite recipe (prove_test / campaign cross-checks): random
/// composites, half stations allowed on loops for half the seeds.
std::vector<graph::Topology> make_composite_corpus(std::size_t n) {
  std::vector<graph::Topology> corpus;
  corpus.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(campaign::job_seed(7, i));
    const std::size_t segments = 1 + rng.below(4);
    const bool risky = rng.chance(1, 2);
    corpus.push_back(graph::make_random_composite(rng, segments,
                                                  /*allow_half=*/true,
                                                  /*allow_half_in_loops=*/
                                                  risky)
                         .topo);
  }
  return corpus;
}

/// Source -> 1-in/5-out fork shell -> five branches of `stations` half
/// stations -> five sinks.  Five independent sinks mean 32 environment
/// stop masks per state, so every expansion batch fills all 64 lanes and
/// the combinational stop settle amortizes across the whole word.
graph::Topology make_fanout(std::size_t stations) {
  constexpr std::size_t kBranches = 5;
  graph::Topology t;
  const graph::NodeId src = t.add_source("src");
  const graph::NodeId fork = t.add_process("fork", 1, kBranches);
  t.connect({src, 0}, {fork, 0}, {graph::RsKind::kFull});
  for (std::size_t b = 0; b < kBranches; ++b) {
    const graph::NodeId sink = t.add_sink("out" + std::to_string(b));
    t.connect({fork, b}, {sink, 0},
              std::vector<graph::RsKind>(stations, graph::RsKind::kHalf));
  }
  return t;
}

std::vector<graph::Topology> make_fanout_corpus() {
  std::vector<graph::Topology> corpus;
  for (const std::size_t stations : {2u, 3u, 4u}) {
    corpus.push_back(make_fanout(stations));
  }
  return corpus;
}

struct RunStats {
  double seconds = 0;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::vector<prove::Verdict> verdicts;
};

RunStats run_corpus(const std::vector<graph::Topology>& corpus,
                    bool sliced, bool worst_case) {
  RunStats stats;
  const auto t0 = Clock::now();
  for (const auto& topo : corpus) {
    prove::ProveOptions opts;
    opts.method = prove::Method::kReachability;
    opts.sliced_frontier = sliced;
    opts.worst_case_occupancy = worst_case;
    const auto r = prove::prove(topo, opts);
    stats.states += r.states_explored;
    stats.transitions += r.transitions;
    stats.verdicts.push_back(r.verdict);
  }
  stats.seconds = seconds_since(t0);
  return stats;
}

Json record(const char* config, const char* engine, const RunStats& s,
            double speedup) {
  return Json::object()
      .set("config", config)
      .set("engine", engine)
      .set("states", s.states)
      .set("transitions", s.transitions)
      .set("seconds", s.seconds)
      .set("kstates_per_s", static_cast<double>(s.states) / s.seconds / 1e3)
      .set("speedup_vs_scalar", speedup);
}

struct Config {
  const char* name;
  const char* blurb;
  std::vector<graph::Topology> corpus;
  bool worst_case;
  bool gated;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoull(argv[1]) : 120;
  const auto composites = make_composite_corpus(n);

  std::vector<Config> configs;
  configs.push_back({"composite_reset", "from reset", composites,
                     /*worst_case=*/false, /*gated=*/false});
  configs.push_back({"composite_worst_case", "worst-case occupancy",
                     composites, /*worst_case=*/true, /*gated=*/false});
  configs.push_back({"fanout_settle", "5-sink fanout, from reset",
                     make_fanout_corpus(), /*worst_case=*/false,
                     /*gated=*/true});

  Json records = Json::array();
  double gated_speedup = 1e9;

  for (const Config& cfg : configs) {
    std::string title = "exhaustive reachability, ";
    title += std::to_string(cfg.corpus.size());
    title += " designs (";
    title += cfg.blurb;
    title += cfg.gated ? "; gated)" : ")";
    benchutil::heading(title);
    const RunStats scalar =
        run_corpus(cfg.corpus, /*sliced=*/false, cfg.worst_case);
    const RunStats sliced =
        run_corpus(cfg.corpus, /*sliced=*/true, cfg.worst_case);
    if (scalar.verdicts != sliced.verdicts ||
        scalar.states != sliced.states) {
      std::cerr << "frontier disagreement on " << cfg.name << ": scalar "
                << scalar.states << " states, sliced " << sliced.states
                << " states\n";
      return 1;
    }
    const double speedup = scalar.seconds / sliced.seconds;
    if (cfg.gated) gated_speedup = std::min(gated_speedup, speedup);

    Table t({"frontier", "states", "transitions", "seconds", "kstates/s",
             "speedup"});
    auto row = [&](const char* name, const RunStats& s, double sp) {
      char b[32];
      std::snprintf(b, sizeof b, "%.2fx", sp);
      t.add_row({name, std::to_string(s.states),
                 std::to_string(s.transitions), std::to_string(s.seconds),
                 std::to_string(static_cast<double>(s.states) / s.seconds /
                                1e3),
                 b});
    };
    row("scalar", scalar, 1.0);
    row("sliced", sliced, speedup);
    t.print(std::cout);
    records.push(record(cfg.name, "scalar", scalar, 1.0));
    records.push(record(cfg.name, "sliced", sliced, speedup));
  }

  // The bit-sliced frontier's floor: with every lane of the word in use,
  // 64 expansions per settle pass must buy an order of magnitude in
  // aggregate states/second.
  if (gated_speedup < 10.0) {
    std::cerr << "sliced frontier speedup below target on fanout_settle: "
              << gated_speedup << "x (need 10x)\n";
    return 1;
  }

  benchutil::write_bench_json(
      "prove", std::move(records),
      Json::object()
          .set("engines", Json::array().push("scalar").push("sliced"))
          .set("gated_config", "fanout_settle")
          .set("gate_min_speedup", 10.0));
  return 0;
}
