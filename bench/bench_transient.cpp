// Experiment T4 — transient length and periodicity: "after a number of
// clock cycles that are dependent on the system, each part of it behaves
// in a periodic fashion ... the transient length is related to the number
// of relay stations and shells, and can be predicted upfront".
//
// Measures the exact transient (first cycle of the periodic regime) and
// the period across topology families and sizes, against the tree bound
// (longest register path) and the generic upfront bound.

#include <iostream>

#include "bench_util.hpp"
#include "liplib/graph/analysis.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

void row(Table& t, const std::string& name, graph::Generated gen) {
  const auto bound = graph::transient_bound(gen.topo);
  const auto longest = graph::longest_register_path(gen.topo);
  auto d = benchutil::make_design(std::move(gen));
  auto sys = d.instantiate();
  const auto ss = lip::measure_steady_state(*sys, 1u << 20);
  t.add_row({name, std::to_string(ss.transient), std::to_string(ss.period),
             longest ? std::to_string(*longest) : std::string("-"),
             std::to_string(bound),
             ss.transient <= bound ? "yes" : "NO"});
}

}  // namespace

int main() {
  benchutil::heading("T4: transient length and steady-state period");

  Table t({"system", "transient (measured)", "period",
           "longest register path", "upfront bound", "within bound"});

  for (std::size_t n : {2u, 4u, 8u}) {
    row(t, "pipeline x" + std::to_string(n),
        graph::make_pipeline(n, 2));
  }
  for (std::size_t depth : {1u, 2u, 3u, 4u}) {
    row(t, "tree depth " + std::to_string(depth),
        graph::make_tree(depth, 2));
  }
  row(t, "fig1 reconvergent", graph::make_fig1());
  for (std::size_t sh : {1u, 2u, 3u}) {
    row(t, "reconvergent i-heavy (" + std::to_string(sh) + " shells)",
        graph::make_reconvergent(1, sh, 2));
  }
  row(t, "fig2 ring", graph::make_fig2());
  for (std::size_t s : {2u, 4u, 8u}) {
    row(t, "ring S=" + std::to_string(s),
        graph::make_closed_ring(std::vector<std::size_t>(s, 2)));
  }
  row(t, "loop chain (2 loops)", graph::make_loop_chain({{1, 2}, {2, 4}}));
  row(t, "loop chain (3 loops)",
      graph::make_loop_chain({{1, 2}, {2, 6}, {1, 3}}));
  t.print(std::cout);

  std::cout << "\nTrees fire at full speed after at most the longest path\n"
               "(paper); in general the transient stays within the upfront\n"
               "bound, enabling the paper's bounded deadlock screening.\n";
  return 0;
}
