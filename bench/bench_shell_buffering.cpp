// Ablation A2 — the paper's shell simplification: "Our shell will be
// simplified since it does not save the incoming stop signals, but we
// need to add at least one half or one full relay station between two
// shells."
//
// Compares the two implementation points on the same designs:
//   (a) simplified shells + mandatory relay stations (the paper), and
//   (b) Carloni-style shells with k-deep input FIFOs and no stations,
// on storage cost (registers), steady-state throughput, fill latency,
// and tolerance to environment jitter.

#include <iostream>

#include "bench_util.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

graph::Topology chain(std::size_t shells, std::size_t stations) {
  graph::Topology t;
  auto prev = t.add_source("src");
  for (std::size_t i = 0; i < shells; ++i) {
    const auto p = t.add_process("P" + std::to_string(i), 1, 1);
    t.connect({prev, 0}, {p, 0},
              std::vector<graph::RsKind>(stations, graph::RsKind::kHalf));
    prev = p;
  }
  t.connect({prev, 0}, {t.add_sink("out"), 0});
  return t;
}

lip::Design bind_chain(const graph::Topology& t) {
  lip::Design d(t);
  for (graph::NodeId v = 0; v < t.nodes().size(); ++v) {
    if (t.node(v).kind == graph::NodeKind::kProcess) {
      d.set_pearl(v, pearls::make_add_const(1));
    }
  }
  return d;
}

struct Meas {
  std::size_t storage_regs;
  Rational throughput{0};
  std::uint64_t first_token_cycle;
  std::uint64_t tokens_under_jitter;
};

Meas measure(const graph::Topology& t, lip::SystemOptions opts,
             std::size_t queue_regs_per_input) {
  Meas m{};
  // Storage: stations (2/full, 1/half) plus queue slots.
  for (const auto& ch : t.channels()) {
    m.storage_regs += 2 * ch.num_full() + ch.num_half();
  }
  for (const auto& node : t.nodes()) {
    if (node.kind == graph::NodeKind::kProcess) {
      m.storage_regs += node.num_inputs * queue_regs_per_input;
    }
  }
  {
    auto d = bind_chain(t);
    auto sys = d.instantiate(opts);
    const auto ss = lip::measure_steady_state(*sys);
    m.throughput = ss.found ? ss.system_throughput() : Rational(0);
  }
  {
    auto d = bind_chain(t);
    auto sys = d.instantiate(opts);
    sys->record_sink_trace(true);
    sys->run(100);
    const auto& trace = sys->sink_cycle_trace(t.nodes().size() - 1);
    m.first_token_cycle = trace.size();
    // Skip the initialized shell outputs: find the first datum >= shells
    // (the source's own stream after passing all +1 stages).
    for (std::size_t c = 0; c < trace.size(); ++c) {
      if (trace[c].valid && trace[c].data >= t.num_processes()) {
        m.first_token_cycle = c;
        break;
      }
    }
  }
  {
    auto d = bind_chain(t);
    d.set_source(0, lip::SourceBehavior::sparse_counter(3, 2, 3));
    d.set_sink(t.nodes().size() - 1, lip::SinkBehavior::random_stop(4, 1, 3));
    auto sys = d.instantiate(opts);
    sys->run(2000);
    m.tokens_under_jitter = sys->sink_count(t.nodes().size() - 1);
  }
  return m;
}

}  // namespace

int main() {
  benchutil::heading("A2: simplified shell + stations vs buffered shell");

  Table t({"design", "shell style", "storage regs", "T",
           "fill latency", "tokens@2k jittery"});
  for (std::size_t shells : {3u, 6u}) {
    // (a) the paper: simplified shells, one half station per channel.
    {
      const auto topo = chain(shells, 1);
      const auto m = measure(topo, {}, 0);
      t.add_row({std::to_string(shells) + "-stage chain",
                 "simplified + 1 half RS/channel",
                 std::to_string(m.storage_regs), m.throughput.str(),
                 std::to_string(m.first_token_cycle),
                 std::to_string(m.tokens_under_jitter)});
    }
    // (b) Carloni-style buffered shells, no stations.
    for (std::size_t depth : {1u, 2u}) {
      const auto topo = chain(shells, 0);
      lip::SystemOptions opts;
      opts.input_queue_depth = depth;
      const auto m = measure(topo, opts, depth);
      t.add_row({std::to_string(shells) + "-stage chain",
                 "buffered, depth " + std::to_string(depth),
                 std::to_string(m.storage_regs), m.throughput.str(),
                 std::to_string(m.first_token_cycle),
                 std::to_string(m.tokens_under_jitter)});
    }
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: both implementation points sustain T = 1\n"
               "on chains; the simplified shell externalizes its storage\n"
               "into the (anyway needed) wire pipelining, which is the\n"
               "paper's argument for it.\n";
  return 0;
}
