// Experiment T2 — feedback-loop throughput T = S/(S + R): at most S valid
// data circulate among the S + R register positions of a loop of S shells
// and R relay stations.  Sweeps S and R on closed rings, comparing the
// formula to exact measurement, for both station kinds and policies.

#include <iostream>

#include "bench_util.hpp"
#include "liplib/graph/analysis.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

int main() {
  benchutil::heading("T2: feedback loop throughput, T = S/(S+R)");

  Table t({"S", "R", "T = S/(S+R)", "T full RS", "T half RS",
           "T strict policy", "transient", "period"});
  for (std::size_t s : {1u, 2u, 3u, 4u, 6u, 8u}) {
    for (std::size_t per : {1u, 2u, 3u}) {
      const std::size_t r = s * per;
      const auto expected = graph::loop_throughput(s, r);

      auto measure = [&](graph::RsKind kind, lip::StopPolicy pol) {
        auto d = benchutil::make_design(graph::make_closed_ring(
            std::vector<std::size_t>(s, per), kind));
        auto sys = d.instantiate({pol});
        return lip::measure_steady_state(*sys);
      };
      const auto full =
          measure(graph::RsKind::kFull, lip::StopPolicy::kCasuDiscardOnVoid);
      const auto half =
          measure(graph::RsKind::kHalf, lip::StopPolicy::kCasuDiscardOnVoid);
      const auto strict =
          measure(graph::RsKind::kFull, lip::StopPolicy::kCarloniStrict);
      t.add_row({std::to_string(s), std::to_string(r), expected.str(),
                 full.system_throughput().str(),
                 half.system_throughput().str(),
                 strict.system_throughput().str(),
                 std::to_string(full.transient), std::to_string(full.period)});
    }
  }
  t.print(std::cout);

  std::cout << "\nPaper: \"A maximum of S valid data can be present at a\n"
               "time, out of S+R positions. This justifies the number\n"
               "S/(S+R) for the maximum throughput\" — fundamentally the\n"
               "same result as Carloni, DAC'00.\n";
  return 0;
}
