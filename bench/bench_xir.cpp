// Compiled-engine speedup — the xir subsystem must beat the interpreted
// skeleton where it matters: a settle-heavy deep half-station pipeline
// (the interpreter's unordered stop sweeps re-propagate one hop per
// sweep; the compiled engine's Kahn-ordered pass does it in one) and a
// 64-variant station-kind screen (one bit-sliced evaluation vs a
// per-variant interpreter loop).  Targets locked by the CI hard gate:
// >= 10x compiled scalar stepping, >= 100x sliced aggregate screening.
// Writes BENCH_xir.json with the engine mode in record + metadata.

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "liplib/campaign/jobs.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/table.hpp"
#include "liplib/xir/sliced.hpp"
#include "liplib/xir/xir.hpp"

using namespace liplib;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Feed-forward pipeline of `stages` shells whose inter-shell channels
// each carry `stations` half relay stations: the stop network is one
// long combinational chain, so settle cost dominates the cycle.
graph::Topology make_half_pipeline(std::size_t stages, std::size_t stations) {
  graph::Topology t;
  const graph::NodeId src = t.add_source("src");
  std::vector<graph::NodeId> shells;
  for (std::size_t i = 0; i < stages; ++i) {
    shells.push_back(t.add_process("p" + std::to_string(i), 1, 1));
  }
  const graph::NodeId sink = t.add_sink("out");
  t.connect({src, 0}, {shells.front(), 0}, {graph::RsKind::kFull});
  for (std::size_t i = 1; i < stages; ++i) {
    t.connect({shells[i - 1], 0}, {shells[i], 0},
              std::vector<graph::RsKind>(stations, graph::RsKind::kHalf));
  }
  t.connect({shells.back(), 0}, {sink, 0}, {graph::RsKind::kFull});
  return t;
}

graph::Topology with_station_kinds(const graph::Topology& topo,
                                   const std::vector<graph::RsKind>& kinds) {
  graph::Topology out = topo;
  std::size_t next = 0;
  for (graph::ChannelId c = 0; c < out.channels().size(); ++c) {
    for (auto& k : out.channel_mut(c).stations) k = kinds.at(next++);
  }
  return out;
}

Json record(const std::string& config, const char* engine,
            std::uint64_t scenario_cycles, double s, double speedup) {
  return Json::object()
      .set("config", config)
      .set("engine", engine)
      .set("scenario_cycles", scenario_cycles)
      .set("seconds", s)
      .set("mcycles_per_s", static_cast<double>(scenario_cycles) / s / 1e6)
      .set("speedup_vs_interp", speedup);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t cycles = argc > 1 ? std::stoull(argv[1]) : 50000;
  Json records = Json::array();

  // ---- workload A: settle-heavy stepping, interp vs compiled ----------
  benchutil::heading("deep half-station pipeline stepping (8 x 24 half)");
  const graph::Topology pipe = make_half_pipeline(8, 24);
  // Alternate the sink's stop so the settled fixpoint changes every
  // cycle (no trivially cached steady state for either engine).
  const auto pipe_sink =
      static_cast<graph::NodeId>(pipe.nodes().size() - 1);

  double interp_step_s = 0;
  {
    skeleton::Skeleton sk(pipe);
    sk.set_sink_pattern(pipe_sink, {true, false});
    const auto t0 = Clock::now();
    sk.run(cycles);
    interp_step_s = seconds_since(t0);
  }
  double compiled_step_s = 0;
  {
    xir::ScalarEngine eng(pipe);
    eng.set_sink_pattern(pipe_sink, {true, false});
    const auto t0 = Clock::now();
    eng.run(cycles);
    compiled_step_s = seconds_since(t0);
  }
  const double scalar_speedup = interp_step_s / compiled_step_s;

  Table ta({"engine", "cycles", "seconds", "Mcycles/s", "speedup"});
  ta.add_row({"interp", std::to_string(cycles), std::to_string(interp_step_s),
              std::to_string(static_cast<double>(cycles) / interp_step_s / 1e6),
              "1.00x"});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", scalar_speedup);
  ta.add_row({"compiled", std::to_string(cycles),
              std::to_string(compiled_step_s),
              std::to_string(static_cast<double>(cycles) / compiled_step_s /
                             1e6),
              buf});
  ta.print(std::cout);
  records.push(record("half_pipeline_step", "interp", cycles, interp_step_s,
                      1.0));
  records.push(record("half_pipeline_step", "compiled", cycles,
                      compiled_step_s, scalar_speedup));

  // ---- workload B: 64-variant screening, per-variant loop vs sliced ---
  benchutil::heading("64-variant station-kind screen (cure-style)");
  constexpr std::uint64_t kBudget = 1u << 16;
  constexpr std::uint64_t kBaseSeed = 1;
  // Cure-style variants of a deeper settle-heavy pipeline: each lane
  // upgrades a random ~1/64 of the half stations to full (the paper's
  // low-intrusive cure move), leaving every lane dominated by long
  // combinational stop chains — the regime the interpreter re-sweeps
  // one hop at a time.
  const graph::Topology base = make_half_pipeline(8, 64);
  const std::size_t num_stations = [&] {
    std::size_t n = 0;
    for (graph::ChannelId c = 0; c < base.channels().size(); ++c) {
      n += base.channels()[c].stations.size();
    }
    return n;
  }();
  std::vector<xir::VariantSpec> variants(64);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    Rng rng(campaign::job_seed(kBaseSeed, v));
    variants[v].kinds.resize(num_stations);
    for (auto& k : variants[v].kinds) {
      k = rng.chance(1, 64) ? graph::RsKind::kFull : graph::RsKind::kHalf;
    }
  }
  skeleton::ScreeningOptions sopts;

  // Scenario-cycles: what the batch actually simulated, summed over
  // variants, so the aggregate rates compare like for like.
  auto screen_loop = [&](auto screen_one) {
    std::uint64_t scenario_cycles = 0;
    std::size_t deadlocks = 0;
    const auto t0 = Clock::now();
    for (const auto& variant : variants) {
      const auto verdict = screen_one(with_station_kinds(base, variant.kinds));
      scenario_cycles += verdict.cycles_simulated;
      deadlocks += verdict.deadlock_found ? 1 : 0;
    }
    return std::tuple(seconds_since(t0), scenario_cycles, deadlocks);
  };

  const auto [interp_s, interp_cycles, interp_deadlocks] =
      screen_loop([&](const graph::Topology& t) {
        return skeleton::screen_for_deadlock(t, sopts, kBudget);
      });
  const auto [compiled_s, compiled_cycles, compiled_deadlocks] =
      screen_loop([&](const graph::Topology& t) {
        return xir::screen_for_deadlock(t, sopts, kBudget,
                                        xir::EngineMode::kCompiled);
      });

  std::uint64_t sliced_cycles = 0;
  std::size_t sliced_deadlocks = 0;
  double sliced_s = 0;
  {
    const auto t0 = Clock::now();
    const auto verdicts =
        xir::screen_variants(base, variants, sopts.skeleton, kBudget);
    sliced_s = seconds_since(t0);
    for (const auto& v : verdicts) {
      sliced_cycles += v.cycles_simulated;
      sliced_deadlocks += v.deadlock_found ? 1 : 0;
    }
  }
  if (compiled_deadlocks != interp_deadlocks ||
      sliced_deadlocks != interp_deadlocks) {
    std::cerr << "engine verdict mismatch: interp=" << interp_deadlocks
              << " compiled=" << compiled_deadlocks
              << " sliced=" << sliced_deadlocks << "\n";
    return 1;
  }

  const double compiled_screen_speedup = interp_s / compiled_s;
  const double sliced_speedup = interp_s / sliced_s;
  Table tb({"engine", "scenario cycles", "seconds", "Mcycles/s", "speedup"});
  auto row = [&](const char* name, std::uint64_t c, double s, double sp) {
    char b[32];
    std::snprintf(b, sizeof b, "%.2fx", sp);
    tb.add_row({name, std::to_string(c), std::to_string(s),
                std::to_string(static_cast<double>(c) / s / 1e6), b});
  };
  row("interp", interp_cycles, interp_s, 1.0);
  row("compiled", compiled_cycles, compiled_s, compiled_screen_speedup);
  row("sliced", sliced_cycles, sliced_s, sliced_speedup);
  tb.print(std::cout);
  std::cout << "(" << interp_deadlocks << "/64 variants deadlock)\n";
  records.push(record("mix_screen_64", "interp", interp_cycles, interp_s,
                      1.0));
  records.push(record("mix_screen_64", "compiled", compiled_cycles,
                      compiled_s, compiled_screen_speedup));
  records.push(record("mix_screen_64", "sliced", sliced_cycles, sliced_s,
                      sliced_speedup));

  // The subsystem's reason to exist; CI hard-gates the trajectory file,
  // this guards the absolute floor.
  if (scalar_speedup < 10.0 || sliced_speedup < 100.0) {
    std::cerr << "speedup below target: compiled " << scalar_speedup
              << "x (need 10x), sliced " << sliced_speedup
              << "x (need 100x)\n";
    return 1;
  }

  benchutil::write_bench_json(
      "xir", std::move(records),
      Json::object()
          .set("engines", Json::array()
                              .push("interp")
                              .push("compiled")
                              .push("sliced"))
          .set("targets", Json::object()
                              .set("compiled_step_speedup_min", 10.0)
                              .set("sliced_screen_speedup_min", 100.0)));
  return 0;
}
