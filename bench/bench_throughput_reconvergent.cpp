// Experiment T1 — the paper's reconvergent feed-forward throughput
// formula T = (m − i)/m, where i is the relay-station imbalance between
// the reconvergent branches and m is the total relay-station count of the
// implicit loop plus the shells on the heavier branch.
//
// Sweeps branch shapes, printing the analytic prediction against the
// exact measured throughput (both stop policies).

#include <iostream>

#include "bench_util.hpp"
#include "liplib/graph/analysis.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

int main() {
  benchutil::heading("T1: reconvergent feed-forward throughput, T = (m-i)/m");

  Table t({"short RS", "long shells", "RS/hop", "i", "m", "T paper",
           "T exact model", "T measured (variant)", "T measured (strict)",
           "transient"});
  for (std::size_t short_st = 1; short_st <= 3; ++short_st) {
    for (std::size_t long_shells = 1; long_shells <= 3; ++long_shells) {
      for (std::size_t per_hop = 1; per_hop <= 2; ++per_hop) {
        auto gen = graph::make_reconvergent(short_st, long_shells, per_hop);
        const auto pred = graph::predict_throughput(gen.topo);
        const auto& rec = pred.reconvergences.at(0);
        const auto exact = graph::exact_implicit_loop_bound(gen.topo);

        auto d = benchutil::make_design(std::move(gen));
        auto var = d.instantiate({lip::StopPolicy::kCasuDiscardOnVoid});
        const auto ss_var = lip::measure_steady_state(*var);
        auto strict = d.instantiate({lip::StopPolicy::kCarloniStrict});
        const auto ss_str = lip::measure_steady_state(*strict);

        t.add_row({std::to_string(short_st), std::to_string(long_shells),
                   std::to_string(per_hop), std::to_string(rec.i()),
                   std::to_string(rec.m()), rec.throughput().str(),
                   exact.str(), ss_var.system_throughput().str(),
                   ss_str.system_throughput().str(),
                   std::to_string(ss_var.transient)});
      }
    }
  }
  t.print(std::cout);

  std::cout << "\nPaper claims: the branch with fewer relay stations gets\n"
               "stopped every period; the number of voids per period is the\n"
               "imbalance i; inserting spare stations (path equalization)\n"
               "recovers T = 1 (see bench_equalization).\n";

  benchutil::heading(
      "T1b: irregular station distributions — where (m-i)/m is an estimate");
  Table t2({"long-branch stations per hop", "T paper", "T exact model",
            "T measured"});
  const std::vector<std::vector<std::size_t>> shapes = {
      {1, 2, 1, 3}, {3, 1, 1, 1}, {1, 1, 1, 3}, {2, 2, 1, 1}};
  for (const auto& shape : shapes) {
    graph::Topology topo;
    const auto src = topo.add_source("src");
    const auto fork = topo.add_process("fork", 1, 2);
    topo.connect({src, 0}, {fork, 0});
    graph::NodeId prev = fork;
    std::size_t prev_port = 0;
    for (std::size_t h = 0; h + 1 < shape.size(); ++h) {
      const auto w = topo.add_process("w" + std::to_string(h), 1, 1);
      topo.connect({prev, prev_port}, {w, 0},
                   std::vector<graph::RsKind>(shape[h],
                                              graph::RsKind::kFull));
      prev = w;
      prev_port = 0;
    }
    const auto join = topo.add_process("join", 2, 1);
    topo.connect({prev, prev_port}, {join, 0},
                 std::vector<graph::RsKind>(shape.back(),
                                            graph::RsKind::kFull));
    topo.connect({fork, 1}, {join, 1}, {graph::RsKind::kHalf});
    topo.connect({join, 0}, {topo.add_sink("out"), 0});

    const auto paper = graph::predict_throughput(topo).reconvergence_bound;
    const auto exact = graph::exact_implicit_loop_bound(topo);
    graph::Generated g;
    g.topo = topo;
    for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
      if (topo.node(v).kind == graph::NodeKind::kProcess) {
        g.processes.push_back(v);
      }
    }
    auto d = benchutil::make_design(std::move(g));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys);
    std::string dist;
    for (auto s : shape) dist += std::to_string(s) + " ";
    t2.add_row({dist, paper.str(), exact.str(),
                ss.system_throughput().str()});
  }
  t2.print(std::cout);
  std::cout << "\nThe closed form (m-i)/m is exact for uniformly pipelined\n"
               "branches; liplib's implicit-loop model (tokens+slack over\n"
               "registers+registered-stops) is exact in all cases.\n";
  return 0;
}
