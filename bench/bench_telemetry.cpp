// Telemetry overhead — the watchdog must ride a run for near-free: a
// guarded composite loop chain vs the bare system, at two flight-recorder
// depths.  Also measures the bench-diff gate itself (parse + compare of a
// synthetic two-hundred-record artifact pair).  Writes
// BENCH_telemetry.json.

#include <chrono>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "liplib/lip/system.hpp"
#include "liplib/support/table.hpp"
#include "liplib/telemetry/bench_diff.hpp"
#include "liplib/telemetry/watchdog.hpp"

using namespace liplib;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

Json synthetic_bench(const char* bench, std::size_t records, double scale) {
  Json recs = Json::array();
  for (std::size_t i = 0; i < records; ++i) {
    recs.push(Json::object()
                  .set("config", "case" + std::to_string(i))
                  .set("seconds", 0.5 + 0.001 * static_cast<double>(i))
                  .set("mcycles_per_s",
                       scale * (10.0 + static_cast<double>(i % 7))));
  }
  return Json::object()
      .set("schema", "liplib.bench/1")
      .set("bench", bench)
      .set("records", std::move(recs));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t cycles = argc > 1 ? std::stoull(argv[1]) : 200000;
  benchutil::heading("watchdog overhead on a composite loop chain");

  const std::vector<graph::RingSpec> specs = {{1, 2}, {2, 6}, {1, 3}};
  auto design = benchutil::make_design(graph::make_loop_chain(specs));

  struct Config {
    const char* name;
    bool guard = false;
    std::uint64_t ring = 0;
  };
  const Config configs[] = {
      {"no watchdog"},
      {"watchdog ring=256", true, 256},
      {"watchdog ring=4096", true, 4096},
  };

  Json records = Json::array();
  Table t({"config", "cycles", "seconds", "Mcycles/s", "vs baseline"});
  double baseline = 0;
  for (const auto& c : configs) {
    auto sys = design.instantiate();
    telemetry::WatchdogOptions wopts;
    wopts.ring_cycles = c.ring ? c.ring : 256;
    telemetry::Watchdog dog(wopts);
    if (c.guard) dog.attach(*sys);

    const auto t0 = Clock::now();
    if (c.guard) {
      telemetry::run_guarded(*sys, dog, cycles);
    } else {
      sys->run(cycles);
    }
    const double s = seconds_since(t0);

    const double mcps = static_cast<double>(cycles) / s / 1e6;
    if (baseline == 0) baseline = s;
    const double ratio = s / baseline;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", ratio);
    t.add_row({c.name, std::to_string(cycles), std::to_string(s),
               std::to_string(mcps), buf});
    records.push(Json::object()
                     .set("config", c.name)
                     .set("cycles", cycles)
                     .set("seconds", s)
                     .set("mcycles_per_s", mcps)
                     .set("overhead_vs_baseline", ratio));
  }
  t.print(std::cout);

  benchutil::heading("bench-diff gate throughput");
  {
    const std::size_t n = 200;
    const std::size_t reps = 200;
    const Json oldb = synthetic_bench("synthetic", n, 1.0);
    const Json newb = synthetic_bench("synthetic", n, 0.95);
    const std::string old_text = oldb.dump(2);
    const std::string new_text = newb.dump(2);
    const auto t0 = Clock::now();
    std::size_t deltas = 0;
    for (std::size_t i = 0; i < reps; ++i) {
      const auto diff = telemetry::bench_diff(Json::parse(old_text),
                                              Json::parse(new_text));
      deltas += diff.deltas.size();
    }
    const double s = seconds_since(t0);
    const double per_s = static_cast<double>(reps) / s;
    std::cout << reps << " diffs of " << n << "-record artifacts ("
              << deltas / reps << " fields each): " << s << " s = " << per_s
              << " diffs/s\n";
    records.push(Json::object()
                     .set("config", "bench_diff")
                     .set("records_per_artifact", n)
                     .set("reps", reps)
                     .set("seconds", s)
                     .set("diffs_per_s", per_s));
  }

  benchutil::write_bench_json("telemetry", std::move(records));
  return 0;
}
