// Experiment E1 — path equalization: "To get the maximum T from a
// feedforward arrangement, it is necessary to insert enough spare relay
// stations to make all converging paths of the same length."
//
// Runs the equalizer on unbalanced feed-forward designs and measures
// throughput before/after, plus the insertion cost.

#include <iostream>

#include "bench_util.hpp"
#include "liplib/graph/analysis.hpp"
#include "liplib/graph/equalize.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

Rational measure(graph::Generated gen) {
  auto d = benchutil::make_design(std::move(gen));
  auto sys = d.instantiate();
  return lip::measure_steady_state(*sys).system_throughput();
}

}  // namespace

int main() {
  benchutil::heading("E1: path equalization of feed-forward designs");

  Table t({"design", "stations before", "T before", "spare RS added",
           "T after"});
  struct Case {
    std::string name;
    graph::Generated gen;
  };
  std::vector<Case> cases;
  cases.push_back({"fig1 (i=1)", graph::make_fig1()});
  cases.push_back({"reconvergent i=2", graph::make_reconvergent(1, 1, 2)});
  cases.push_back({"reconvergent i=3", graph::make_reconvergent(1, 2, 2)});
  cases.push_back({"reconvergent deep", graph::make_reconvergent(2, 3, 2)});
  {
    Rng rng(2024);
    for (int i = 0; i < 3; ++i) {
      cases.push_back({"random DAG #" + std::to_string(i),
                       graph::make_random_feedforward(rng, 7, 3,
                                                      /*allow_half=*/false)});
    }
  }

  for (auto& c : cases) {
    const std::size_t before_st = c.gen.topo.total_stations();
    const auto before = measure(c.gen);
    const std::size_t added = graph::equalize_paths(c.gen.topo);
    const auto after = measure(std::move(c.gen));
    t.add_row({c.name, std::to_string(before_st), before.str(),
               std::to_string(added), after.str()});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: every feed-forward design reaches T = 1\n"
               "after equalization; the insertion cost equals the total\n"
               "station imbalance over the reconvergent fork/join pairs.\n";
  return 0;
}
