// Ablation A1 — the paper's central design choice: half relay stations
// (one register, combinational stop) vs full relay stations (two
// registers, registered stop).
//
// For the same wire-length budgets, compares the two station policies on
// register cost, achieved throughput, and liveness — quantifying the
// trade the paper proposes: halves cost half the registers and are safe
// off-cycle; on loops they trade registers for a latent stop latch.

#include <iostream>

#include "bench_util.hpp"
#include "liplib/graph/wire_plan.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

struct DesignCase {
  std::string name;
  graph::Topology topo;       // station-less skeleton
  std::vector<double> wires;  // per channel
};

std::vector<DesignCase> make_cases() {
  std::vector<DesignCase> cases;
  {
    DesignCase c;
    c.name = "pipeline, long wires";
    auto prev = c.topo.add_source("src");
    for (int i = 0; i < 4; ++i) {
      const auto p = c.topo.add_process("P" + std::to_string(i), 1, 1);
      c.topo.connect({prev, 0}, {p, 0});
      prev = p;
    }
    c.topo.connect({prev, 0}, {c.topo.add_sink("out"), 0});
    c.wires = {1.0, 3.0, 4.0, 2.0, 1.0};
    cases.push_back(std::move(c));
  }
  {
    DesignCase c;
    c.name = "reconvergent, unbalanced";
    const auto src = c.topo.add_source("src");
    const auto fork = c.topo.add_process("fork", 1, 2);
    const auto body = c.topo.add_process("body", 1, 1);
    const auto join = c.topo.add_process("join", 2, 1);
    c.topo.connect({src, 0}, {fork, 0});
    c.topo.connect({fork, 0}, {body, 0});
    c.topo.connect({body, 0}, {join, 0});
    c.topo.connect({fork, 1}, {join, 1});
    c.topo.connect({join, 0}, {c.topo.add_sink("out"), 0});
    c.wires = {0.5, 3.5, 3.0, 1.5, 0.5};
    cases.push_back(std::move(c));
  }
  {
    DesignCase c;
    c.name = "loop + tail";
    const auto src = c.topo.add_source("src");
    const auto port = c.topo.add_process("port", 2, 2);
    const auto tail = c.topo.add_process("tail", 1, 1);
    c.topo.connect({src, 0}, {port, 0});
    c.topo.connect({port, 1}, {port, 1});
    c.topo.connect({port, 0}, {tail, 0});
    c.topo.connect({tail, 0}, {c.topo.add_sink("out"), 0});
    c.wires = {0.5, 3.0, 4.0, 0.5};
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace

int main() {
  benchutil::heading("A1: half vs full relay stations — cost and safety");

  Table t({"design", "station policy", "registers", "T measured",
           "worst-case liveness"});
  for (auto& c : make_cases()) {
    struct Policy {
      const char* name;
      bool prefer_half;
      bool demote_loops;
    };
    const Policy policies[] = {
        {"all full", false, false},
        {"half off-cycle (library default)", true, false},
        {"half everywhere (hazardous)", true, true},
    };
    for (const auto& pol : policies) {
      graph::Topology topo = c.topo;
      graph::WirePlanOptions opts;
      opts.prefer_half_off_cycle = pol.prefer_half;
      graph::plan_wire_pipelining(topo, c.wires, opts);
      if (pol.demote_loops) {
        const auto on_cycle = topo.channels_on_cycles();
        for (graph::ChannelId ch = 0; ch < topo.channels().size(); ++ch) {
          if (!on_cycle[ch]) continue;
          for (auto& k : topo.channel_mut(ch).stations) {
            k = graph::RsKind::kHalf;
          }
        }
      }
      const std::size_t registers =
          2 * topo.total_full_stations() + topo.total_half_stations();

      // Throughput via the skeleton (identical to full simulation).
      skeleton::Skeleton sk(topo);
      const auto res = sk.analyze();
      // Worst-case liveness.
      skeleton::ScreeningOptions wc;
      wc.worst_case_occupancy = true;
      const auto verdict = skeleton::screen_for_deadlock(topo, wc);

      t.add_row({c.name, pol.name, std::to_string(registers),
                 res.found ? res.system_throughput().str() : "?",
                 verdict.deadlock_found ? "LATCH (potential deadlock)"
                                        : "safe"});
    }
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: the default policy spends fewer registers\n"
               "than all-full at identical throughput and stays safe; the\n"
               "half-everywhere column shows the latent latch on loops the\n"
               "paper's liveness analysis forbids.\n";
  return 0;
}
