// Experiment D1 — liveness: the paper's three results and its remedy.
//   1. feed-forward LIDs (with reconvergence) are deadlock free;
//   2. LIDs with only full relay stations are deadlock free;
//   3. half relay stations create potential deadlocks iff they lie on
//      loops — the loop's stop path becomes a combinational cycle (a
//      bistable latch), exposed here by worst-case-occupancy screening
//      and by comparing the two hardware settlings of the latch;
//   plus: skeleton screening up to the transient decides liveness, and
//   deadlocking designs are cured by substituting few relay stations.

#include <iostream>

#include "bench_util.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;
using graph::RsKind;
using lip::StopPolicy;
using lip::StopResolution;

namespace {

std::string verdict_str(const skeleton::ScreeningVerdict& v) {
  if (!v.ran_to_steady_state) return "budget exceeded";
  if (!v.deadlock_found) return "live (T=" + v.min_throughput.str() + ")";
  if (v.min_throughput == Rational(0)) return "DEADLOCK";
  return "PARTIAL starvation";
}

skeleton::ScreeningVerdict screen(const graph::Topology& topo, bool wc,
                                  StopResolution res) {
  skeleton::ScreeningOptions opts;
  opts.skeleton.resolution = res;
  opts.worst_case_occupancy = wc;
  return skeleton::screen_for_deadlock(topo, opts);
}

}  // namespace

int main() {
  benchutil::heading("D1: deadlock screening matrix");

  struct Case {
    std::string name;
    graph::Topology topo;
  };
  std::vector<Case> cases;
  cases.push_back({"feedforward (fig1)", graph::make_fig1().topo});
  {
    Rng rng(5);
    cases.push_back(
        {"feedforward random + half RS",
         graph::make_random_feedforward(rng, 6, 3, true).topo});
  }
  cases.push_back(
      {"ring full RS (S=2,R=2)", graph::make_closed_ring({1, 1}).topo});
  cases.push_back({"ring full RS (S=3,R=6)",
                   graph::make_closed_ring({2, 2, 2}).topo});
  cases.push_back({"ring HALF RS (S=2,R=2)",
                   graph::make_closed_ring({1, 1}, RsKind::kHalf).topo});
  cases.push_back({"ring HALF RS (S=3,R=3)",
                   graph::make_closed_ring({1, 1, 1}, RsKind::kHalf).topo});
  {
    graph::Topology t;
    const auto a = t.add_process("A", 1, 1);
    const auto b = t.add_process("B", 1, 1);
    t.connect({a, 0}, {b, 0}, {RsKind::kHalf});
    t.connect({b, 0}, {a, 0}, {RsKind::kFull});
    cases.push_back({"ring mixed (1 half + 1 full)", std::move(t)});
  }
  cases.push_back(
      {"loop chain, middle loop half",
       graph::make_loop_chain({{1, 2, RsKind::kFull},
                               {1, 2, RsKind::kHalf},
                               {1, 2, RsKind::kFull}})
           .topo});

  Table t({"design", "from reset", "worst-case, pessimistic",
           "worst-case, optimistic", "half RS on loop?"});
  for (const auto& c : cases) {
    bool half_on_loop = false;
    const auto on_cycle = c.topo.channels_on_cycles();
    for (graph::ChannelId ch = 0; ch < c.topo.channels().size(); ++ch) {
      if (on_cycle[ch] && c.topo.channel(ch).num_half() > 0) {
        half_on_loop = true;
      }
    }
    t.add_row({c.name,
               verdict_str(screen(c.topo, false, StopResolution::kPessimistic)),
               verdict_str(screen(c.topo, true, StopResolution::kPessimistic)),
               verdict_str(screen(c.topo, true, StopResolution::kOptimistic)),
               half_on_loop ? "yes" : "no"});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: deadlock appears exactly in the rows with\n"
               "half relay stations on loops, only under worst-case\n"
               "occupancy, and only under pessimistic settling — the\n"
               "bistable latch of the combinational stop ring.\n";

  benchutil::heading("D1b: the paper's cure — substitute few relay stations");
  Table ct({"design", "substitutions", "cured?", "stations unchanged?"});
  for (const auto& name_sizes :
       {std::pair<std::string, std::size_t>{"half ring S=2", 2},
        {"half ring S=3", 3},
        {"half ring S=5", 5}}) {
    auto topo = graph::make_closed_ring(
        std::vector<std::size_t>(name_sizes.second, 1), RsKind::kHalf).topo;
    skeleton::ScreeningOptions opts;
    opts.worst_case_occupancy = true;
    const auto cure = skeleton::cure_deadlocks(topo, opts);
    ct.add_row({name_sizes.first, std::to_string(cure.substitutions),
                cure.success ? "yes" : "no",
                cure.cured.total_stations() == topo.total_stations()
                    ? "yes"
                    : "no"});
  }
  ct.print(std::cout);

  benchutil::heading("D1c: screening cost — bounded by the transient");
  Table st({"design", "cycles simulated", "transient", "period"});
  for (const auto& c : cases) {
    const auto v = screen(c.topo, false, StopResolution::kPessimistic);
    st.add_row({c.name, std::to_string(v.cycles_simulated),
                std::to_string(v.transient), std::to_string(v.period)});
  }
  st.print(std::cout);
  return 0;
}
