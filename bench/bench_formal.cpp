// Experiment M1 — the paper's formal verification (done there with SMV):
// shells elaborate coherent data, produce outputs in order and skip none;
// relay stations produce outputs in order, skip none, and keep their
// output on asserted stops — each under the environment assumption that
// inputs hold their values on asserted stops.
//
// Reports, per obligation: verdict, reachable state count, transitions —
// and times the exhaustive exploration with google-benchmark.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "liplib/formal/checker.hpp"
#include "liplib/formal/protocol_models.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;
using graph::RsKind;
using lip::StopPolicy;

namespace {

struct Obligation {
  std::string name;
  std::unique_ptr<formal::Model> model;
};

std::vector<Obligation> obligations() {
  std::vector<Obligation> obs;
  for (auto pol : {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    const std::string p =
        pol == StopPolicy::kCarloniStrict ? "strict" : "variant";
    obs.push_back({"full RS, " + p,
                   formal::make_relay_station_model(RsKind::kFull, pol)});
    obs.push_back({"half RS, " + p,
                   formal::make_relay_station_model(RsKind::kHalf, pol)});
    obs.push_back({"shell 1-in 1-out, " + p,
                   formal::make_shell_model(1, 1, pol)});
    obs.push_back({"shell 2-in (coherence), " + p,
                   formal::make_shell_model(2, 1, pol)});
    obs.push_back({"shell fanout 2, " + p,
                   formal::make_shell_model(1, 2, pol)});
    obs.push_back({"buffered shell depth 1, " + p,
                   formal::make_buffered_shell_model(1, pol)});
    obs.push_back({"buffered shell depth 2, " + p,
                   formal::make_buffered_shell_model(2, pol)});
    obs.push_back({"chain shell-RS-shell (full), " + p,
                   formal::make_chain_model(RsKind::kFull, pol)});
    obs.push_back({"chain shell-RS-shell (half), " + p,
                   formal::make_chain_model(RsKind::kHalf, pol)});
  }
  return obs;
}

void BM_CheckFullRs(benchmark::State& state) {
  for (auto _ : state) {
    auto model = formal::make_relay_station_model(
        RsKind::kFull, StopPolicy::kCasuDiscardOnVoid);
    auto result = formal::check_safety(*model);
    benchmark::DoNotOptimize(result.states_explored);
  }
}

void BM_CheckShell2In(benchmark::State& state) {
  for (auto _ : state) {
    auto model =
        formal::make_shell_model(2, 1, StopPolicy::kCasuDiscardOnVoid);
    auto result = formal::check_safety(*model);
    benchmark::DoNotOptimize(result.states_explored);
  }
}

void BM_CheckChain(benchmark::State& state) {
  for (auto _ : state) {
    auto model = formal::make_chain_model(RsKind::kFull,
                                          StopPolicy::kCasuDiscardOnVoid);
    auto result = formal::check_safety(*model);
    benchmark::DoNotOptimize(result.states_explored);
  }
}

}  // namespace

BENCHMARK(BM_CheckFullRs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckShell2In)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckChain)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchutil::heading("M1: formal verification of the protocol blocks");

  Table t({"obligation", "verdict", "reachable states", "transitions"});
  for (auto& ob : obligations()) {
    const auto result = formal::check_safety(*ob.model);
    t.add_row({ob.name,
               result.ok ? "VERIFIED"
                         : ("VIOLATED: " + result.violation),
               std::to_string(result.states_explored),
               std::to_string(result.transitions)});
  }
  t.print(std::cout);

  std::cout << "\nProperties per obligation: in-order outputs, no skipped\n"
               "or duplicated valid output, output held on asserted stop,\n"
               "and (2-input shells) coherent consumption of the input\n"
               "streams.  Environments are maximally nondeterministic\n"
               "subject to the paper's assumption (hold on stop).\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
