// Experiment F1 — paper Fig. 1, "FeedForward Topology Evolution".
//
// Reproduces the cycle-by-cycle evolution of the reconvergent three-shell
// example (A forks to B and C; B feeds C; one full relay station per
// shell-to-shell channel) and its steady state: after the transient the
// output utters one invalid datum every 5 cycles, i.e. T = 4/5 with
// i = 1 and m = 5 in the paper's formula T = (m − i)/m.

#include <iostream>

#include "bench_util.hpp"
#include "liplib/graph/analysis.hpp"
#include "liplib/lip/evolution.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

int main() {
  benchutil::heading("F1: Fig. 1 FeedForward Topology Evolution");

  std::cout << "Topology: src -> A(fork) -> {B -> C, C}; one full relay\n"
               "station on each of A->B, B->C, A->C; C -> out.\n"
               "Notation: 'n' void token, '*' fired, '.' waiting input,\n"
               "'!' stopped (the figure's dashed arrows).\n\n";

  {
    auto d = benchutil::make_design(graph::make_fig1());
    auto sys = d.instantiate();  // the paper's variant protocol
    std::cout << lip::render_evolution(*sys, 22) << "\n";
  }

  benchutil::heading("F1: steady state vs. the paper");
  Table t({"policy", "T measured", "T paper (m-i)/m", "transient", "period",
           "voids per period"});
  for (auto pol :
       {lip::StopPolicy::kCarloniStrict, lip::StopPolicy::kCasuDiscardOnVoid}) {
    auto gen = graph::make_fig1();
    const auto pred = graph::predict_throughput(gen.topo);
    auto d = benchutil::make_design(std::move(gen));
    auto sys = d.instantiate({pol});
    const auto ss = lip::measure_steady_state(*sys);
    const auto T = ss.system_throughput();
    t.add_row({to_string(pol), T.str(), pred.system().str(),
               std::to_string(ss.transient), std::to_string(ss.period),
               std::to_string(ss.period -
                              static_cast<std::uint64_t>(
                                  (T * Rational(static_cast<std::int64_t>(
                                           ss.period))).num()))});
  }
  t.print(std::cout);

  std::cout << "\nPaper: one invalid output datum every 5 cycles; i = 1,\n"
               "m = 5 (3 relay stations in the implicit loop + shells B, C\n"
               "on the heavier branch), T = (m - i)/m = 4/5.\n";
  return 0;
}
