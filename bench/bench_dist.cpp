// Distributed campaign overhead: the 300-topology fuzz suite run
// unsharded, then as 1/2/4/8 merged shards — each shard doing the full
// partial-document round trip (aggregate -> "liplib.dist.partial/1"
// JSON -> parse -> validate -> fold), which is exactly what `lidtool
// merge` pays — and once end-to-end over the loopback
// coordinator/worker transport with two pull workers.  Every merged
// aggregate must be byte-identical to the unsharded document; a
// mismatch fails the bench.  Emits BENCH_dist.json with one record per
// configuration.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "liplib/campaign/campaign.hpp"
#include "liplib/campaign/jobs.hpp"
#include "liplib/campaign/report.hpp"
#include "liplib/dist/coordinator.hpp"
#include "liplib/dist/shard.hpp"
#include "liplib/dist/worker.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

constexpr std::uint64_t kSeed = 2026;
constexpr std::uint64_t kBudget = 1u << 16;
constexpr unsigned kThreads = 2;

campaign::NamedCampaignSpec bench_spec() {
  campaign::NamedCampaignSpec spec;
  spec.mode = "fuzz";
  spec.jobs = 300;
  return spec;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  benchutil::heading("dist: sharded-campaign overhead vs unsharded");

  const auto spec = bench_spec();
  const auto jobs = campaign::make_named_campaign(spec);
  const std::string campaign_spec = dist::named_campaign_to_string(spec);
  std::cout << "campaign: " << campaign_spec << "\n\n";

  // The unsharded golden document.
  campaign::EngineOptions base;
  base.threads = kThreads;
  base.base_seed = kSeed;
  base.cycle_budget = kBudget;
  const auto g0 = std::chrono::steady_clock::now();
  const auto golden_results = campaign::Engine(base).run(jobs);
  const std::string golden =
      campaign::to_json(campaign::aggregate(golden_results)).dump(2);
  const double golden_wall = seconds_since(g0);

  Table t({"config", "wall s", "merge s", "partial KiB", "identical"});
  Json records = Json::array();

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    // Run every shard (serially — the bench measures overhead, not
    // multi-process speedup) and export its partial document.
    const auto r0 = std::chrono::steady_clock::now();
    std::vector<std::string> partial_docs;
    for (std::size_t i = 0; i < shards; ++i) {
      const auto range = dist::shard_range(jobs.size(), i, shards);
      const std::vector<campaign::Job> slice(
          jobs.begin() + static_cast<std::ptrdiff_t>(range.lo),
          jobs.begin() + static_cast<std::ptrdiff_t>(range.hi));
      campaign::EngineOptions opts = base;
      opts.index_base = range.lo;
      const auto results = campaign::Engine(opts).run(slice);
      const auto manifest = dist::make_manifest(
          campaign_spec, jobs.size(), kSeed, kBudget,
          xir::engine_mode_name(spec.engine), range);
      partial_docs.push_back(
          dist::partial_to_json(manifest, campaign::aggregate(results))
              .dump(2));
    }
    const double run_wall = seconds_since(r0);

    // The merge path: parse + validate + fold, as `lidtool merge` does.
    const auto m0 = std::chrono::steady_clock::now();
    std::vector<dist::Partial> parts;
    std::size_t partial_bytes = 0;
    for (const std::string& doc : partial_docs) {
      partial_bytes += doc.size();
      parts.push_back(dist::partial_from_json(Json::parse(doc)));
    }
    const auto merged = dist::merge_partials(std::move(parts));
    const double merge_wall = seconds_since(m0);
    const bool identical = campaign::to_json(merged).dump(2) == golden;

    std::ostringstream cfg, wall, mwall, kib;
    cfg << shards << " shard(s)";
    wall << std::fixed << std::setprecision(3) << run_wall;
    mwall << std::fixed << std::setprecision(4) << merge_wall;
    kib << std::fixed << std::setprecision(1) << partial_bytes / 1024.0;
    t.add_row({cfg.str(), wall.str(), mwall.str(), kib.str(),
               identical ? "yes" : "NO"});

    records.push(Json::object()
                     .set("config", "sharded")
                     .set("shards", shards)
                     .set("threads", kThreads)
                     .set("run_wall_seconds", run_wall)
                     .set("merge_wall_seconds", merge_wall)
                     .set("partial_bytes", partial_bytes)
                     .set("aggregate_identical", identical));
    if (!identical) {
      std::cerr << "DETERMINISM VIOLATION at " << shards << " shard(s)\n";
      return 1;
    }
  }

  // End to end over the loopback transport: coordinator + two workers.
  const auto c0 = std::chrono::steady_clock::now();
  dist::CoordinatorOptions copts;
  copts.spec = spec;
  copts.base_seed = kSeed;
  copts.cycle_budget = kBudget;
  copts.shards = 4;
  dist::Coordinator coord(copts);
  coord.start();
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&coord] {
      dist::WorkerOptions wopts;
      wopts.port = coord.port();
      wopts.threads = kThreads;
      dist::run_worker(wopts);
    });
  }
  const auto merged = coord.wait();
  for (auto& w : workers) w.join();
  const double coord_wall = seconds_since(c0);
  const bool coord_identical = campaign::to_json(merged).dump(2) == golden;
  const auto stats = coord.stats();

  std::ostringstream cwall;
  cwall << std::fixed << std::setprecision(3) << coord_wall;
  t.add_row({"coordinator 4x2", cwall.str(), "-",
             std::to_string(stats.bytes_merged / 1024),
             coord_identical ? "yes" : "NO"});
  records.push(Json::object()
                   .set("config", "coordinator")
                   .set("shards", std::uint64_t{4})
                   .set("workers", std::uint64_t{2})
                   .set("threads", kThreads)
                   .set("run_wall_seconds", coord_wall)
                   .set("bytes_merged", stats.bytes_merged)
                   .set("leases_issued", stats.leases_issued)
                   .set("aggregate_identical", coord_identical));
  if (!coord_identical) {
    std::cerr << "DETERMINISM VIOLATION over the coordinator transport\n";
    return 1;
  }

  t.print(std::cout);
  std::ostringstream gw;
  gw << std::fixed << std::setprecision(3) << golden_wall;
  std::cout << "\nunsharded reference: " << gw.str() << " s at " << kThreads
            << " thread(s)\n\n";

  benchutil::write_bench_json(
      "dist", std::move(records),
      Json::object().set("campaign", campaign_spec)
          .set("unsharded_wall_seconds", golden_wall));
  return 0;
}
