// Experiment T3 — "The most general topology is a feed-forward
// combination of self-interacting loops.  It is possible to prove that
// the slowest subtopology will force the system to slow down to its
// speed.  The protocol itself will adapt to such a speed without any need
// for path equalization."
//
// Builds chains of loops with different individual throughputs and shows
// that every shell in the chain settles to the minimum loop throughput.

#include <iostream>

#include "bench_util.hpp"
#include "liplib/graph/analysis.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

std::string spec_str(const std::vector<graph::RingSpec>& specs) {
  std::string s;
  for (const auto& spec : specs) {
    if (!s.empty()) s += " + ";
    s += "(" + std::to_string(spec.extra_shells + 1) + "sh," +
         std::to_string(spec.loop_stations) + "rs)";
  }
  return s;
}

}  // namespace

int main() {
  benchutil::heading("T3: composite topologies — slowest subtopology wins");

  const std::vector<std::vector<graph::RingSpec>> cases = {
      {{1, 2}, {1, 2}},
      {{1, 2}, {1, 4}},
      {{2, 3}, {1, 2}},
      {{1, 2}, {2, 6}, {1, 3}},
      {{3, 4}, {1, 5}},
      {{1, 3}, {1, 3}, {1, 3}, {1, 3}},
  };

  Json records = Json::array();
  Table t({"chain of loops", "min loop T (analytic)", "system T (measured)",
           "all shells at system T?", "transient", "period"});
  for (const auto& specs : cases) {
    auto gen = graph::make_loop_chain(specs);
    const auto pred = graph::predict_throughput(gen.topo);
    auto d = benchutil::make_design(std::move(gen));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys, 500000);
    bool uniform = true;
    for (const auto& tp : ss.shell_throughput) {
      if (!(tp == ss.system_throughput())) uniform = false;
    }
    t.add_row({spec_str(specs), pred.cycle_bound.str(),
               ss.system_throughput().str(), uniform ? "yes" : "no",
               std::to_string(ss.transient), std::to_string(ss.period)});
    records.push(Json::object()
                     .set("chain", spec_str(specs))
                     .set("analytic_min_loop_T", pred.cycle_bound)
                     .set("measured_system_T", ss.system_throughput())
                     .set("uniform", uniform)
                     .set("transient", ss.transient)
                     .set("period", ss.period));
  }
  t.print(std::cout);

  benchutil::heading("T3b: loops combined with reconvergent fragments");
  // A reconvergent DAG feeding a loop: whichever is slower dominates.
  Table t2({"fragment", "reconv T", "loop T", "min", "measured"});
  for (std::size_t imbalance : {1u, 3u}) {
    for (std::size_t loop_r : {2u, 6u}) {
      // Reconvergent front end.
      graph::Topology topo;
      const auto src = topo.add_source("src");
      const auto a = topo.add_process("A", 1, 2);
      const auto c = topo.add_process("C", 2, 1);
      topo.connect({src, 0}, {a, 0});
      topo.connect({a, 0}, {c, 0},
                   std::vector<graph::RsKind>(1 + imbalance,
                                              graph::RsKind::kFull));
      topo.connect({a, 1}, {c, 1}, {graph::RsKind::kFull});
      // Loop back end: port shell with a self-loop through loop_r RS.
      const auto port = topo.add_process("L", 2, 2);
      topo.connect({c, 0}, {port, 0}, {graph::RsKind::kFull});
      topo.connect(
          {port, 1}, {port, 1},
          std::vector<graph::RsKind>(loop_r, graph::RsKind::kFull));
      const auto snk = topo.add_sink("out");
      topo.connect({port, 0}, {snk, 0});

      const auto pred = graph::predict_throughput(topo);
      lip::Design d(std::move(topo));
      d.set_pearl(a, pearls::make_fork2());
      d.set_pearl(c, pearls::make_adder());
      d.set_pearl(port, pearls::make_butterfly());
      auto sys = d.instantiate();
      const auto ss = lip::measure_steady_state(*sys, 500000);
      t2.add_row({"i=" + std::to_string(imbalance) +
                      ", loopR=" + std::to_string(loop_r),
                  pred.reconvergence_bound.str(), pred.cycle_bound.str(),
                  pred.system().str(), ss.system_throughput().str()});
    }
  }
  t2.print(std::cout);
  benchutil::write_bench_json("throughput_composite", std::move(records));
  return 0;
}
