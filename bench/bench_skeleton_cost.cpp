// Experiment S1 — "we are allowed to simulate just the skeleton of the
// system consisting of stop and valid signals, thus the simulation cost
// is absolutely negligible".
//
// Benchmarks cycles/second of the three execution engines on the same
// designs: full-data cycle simulation (lip::System), control-plane-only
// skeleton simulation, and the event-driven RTL netlist — the cost
// ordering the paper's screening recipe relies on.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "liplib/rtl/rtl_system.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

graph::Generated make_case(int which) {
  switch (which) {
    case 0:
      return graph::make_pipeline(8, 2);
    case 1:
      return graph::make_reconvergent(1, 3, 2);
    case 2:
      return graph::make_loop_chain({{2, 4}, {1, 3}, {2, 5}});
    default:
      return graph::make_tree(4, 2);
  }
}

const char* case_name(int which) {
  switch (which) {
    case 0:
      return "pipeline8";
    case 1:
      return "reconvergent";
    case 2:
      return "loop_chain";
    default:
      return "tree16";
  }
}

void BM_FullSystem(benchmark::State& state) {
  auto gen = make_case(static_cast<int>(state.range(0)));
  auto d = benchutil::make_design(std::move(gen));
  auto sys = d.instantiate();
  for (auto _ : state) {
    sys->step();
    benchmark::DoNotOptimize(sys->cycle());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Skeleton(benchmark::State& state) {
  auto gen = make_case(static_cast<int>(state.range(0)));
  skeleton::Skeleton sk(gen.topo);
  for (auto _ : state) {
    sk.step();
    benchmark::DoNotOptimize(sk.cycle());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_RtlEventDriven(benchmark::State& state) {
  auto gen = make_case(static_cast<int>(state.range(0)));
  rtl::RtlSystem rtl(gen.topo);
  for (auto p : gen.processes) {
    const auto& node = gen.topo.node(p);
    rtl.bind_pearl(p, benchutil::default_pearl(node.num_inputs,
                                               node.num_outputs));
  }
  for (auto _ : state) {
    rtl.run_cycles(1);
    benchmark::DoNotOptimize(rtl.cycles_run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_FullSystem)->DenseRange(0, 3)->ArgNames({"design"});
BENCHMARK(BM_Skeleton)->DenseRange(0, 3)->ArgNames({"design"});
BENCHMARK(BM_RtlEventDriven)->DenseRange(0, 3)->ArgNames({"design"});

int main(int argc, char** argv) {
  benchutil::heading("S1: skeleton simulation cost (paper: negligible)");

  // Static cost: bytes of state each engine tracks per design.
  Table t({"design", "skeleton state bytes", "protocol state bytes (full)"});
  for (int i = 0; i < 4; ++i) {
    auto gen = make_case(i);
    skeleton::Skeleton sk(gen.topo);
    auto d = benchutil::make_design(std::move(gen));
    auto sys = d.instantiate();
    t.add_row({case_name(i), std::to_string(sk.state_signature().size()),
               std::to_string(sys->protocol_state().size())});
  }
  t.print(std::cout);
  std::cout << "\nDynamic cost (cycles/second), per engine:\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
