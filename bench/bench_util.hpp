// Shared helpers for the benchmark/reproduction harnesses.

#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/pearls/pearls.hpp"
#include "liplib/support/json.hpp"

namespace liplib::benchutil {

/// Default pearl for a node arity (same convention as the test suite).
inline std::unique_ptr<lip::Pearl> default_pearl(std::size_t num_in,
                                                 std::size_t num_out) {
  if (num_in == 1 && num_out == 1) return pearls::make_identity();
  if (num_in == 2 && num_out == 1) return pearls::make_adder();
  if (num_in == 1 && num_out == 2) return pearls::make_fork2();
  if (num_in == 2 && num_out == 2) return pearls::make_butterfly();
  if (num_in == 0 && num_out == 1) return pearls::make_generator(0, 1);
  throw ApiError("no default pearl for arity");
}

inline lip::Design make_design(graph::Generated g) {
  lip::Design d(std::move(g.topo));
  for (graph::NodeId p : g.processes) {
    const auto& node = d.topology().node(p);
    d.set_pearl(p, default_pearl(node.num_inputs, node.num_outputs));
  }
  return d;
}

/// Section header in the harness output.
inline void heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Writes a machine-readable benchmark result file `BENCH_<name>.json`
/// in the current directory: a schema tag, the bench name, and an array
/// of measurement records (each an object built by the caller).  This is
/// the repo's perf-trajectory format: byte-stable field order via
/// support/json.hpp, one file per bench binary.
///
/// `metadata`, when non-null, lands verbatim as a top-level "metadata"
/// object — benches that compare evaluators record the engine modes
/// there (e.g. {"engines": [...]}) so perf trajectories distinguish
/// which engine produced which record.
inline void write_bench_json(const std::string& name, Json records,
                             Json metadata = Json()) {
  const std::string path = "BENCH_" + name + ".json";
  Json doc = Json::object()
                 .set("schema", "liplib.bench/1")
                 .set("bench", name)
                 .set("records", std::move(records));
  if (!metadata.is_null()) doc.set("metadata", std::move(metadata));
  std::ofstream os(path);
  os << doc.dump(2) << "\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace liplib::benchutil
