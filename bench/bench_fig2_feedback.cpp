// Experiment F2 — paper Fig. 2, "FeedBack Topology Evolution".
//
// Reproduces the two-shell feedback ring (one full relay station per
// direction, S = 2, R = 2): "a maximum of S valid data can be present at
// a time, out of S + R positions", hence T = S/(S + R) = 1/2 — the
// output alternates valid data and voids after the transient.

#include <iostream>

#include "bench_util.hpp"
#include "liplib/graph/analysis.hpp"
#include "liplib/lip/evolution.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

int main() {
  benchutil::heading("F2: Fig. 2 FeedBack Topology Evolution");

  std::cout << "Topology: A(fork: loop + tap) -> RS -> B -> RS -> A, with\n"
               "a sink tapping A.  S = 2 shells, R = 2 relay stations.\n\n";

  {
    auto d = benchutil::make_design(graph::make_fig2());
    auto sys = d.instantiate();
    std::cout << lip::render_evolution(*sys, 16) << "\n";
  }

  benchutil::heading("F2: steady state vs. the paper");
  Table t({"policy", "T measured", "T paper S/(S+R)", "transient", "period"});
  for (auto pol :
       {lip::StopPolicy::kCarloniStrict, lip::StopPolicy::kCasuDiscardOnVoid}) {
    auto gen = graph::make_fig2();
    auto d = benchutil::make_design(std::move(gen));
    auto sys = d.instantiate({pol});
    const auto ss = lip::measure_steady_state(*sys);
    t.add_row({to_string(pol), ss.system_throughput().str(),
               graph::loop_throughput(2, 2).str(),
               std::to_string(ss.transient), std::to_string(ss.period)});
  }
  t.print(std::cout);

  benchutil::heading("F2 family: the tapped ring at other R");
  Table sweep({"R(A->B)", "R(B->A)", "T measured", "T = S/(S+R)"});
  for (std::size_t ab = 1; ab <= 4; ++ab) {
    for (std::size_t ba = 1; ba <= 4; ++ba) {
      auto d =
          benchutil::make_design(graph::make_ring_with_tap(ab, ba));
      auto sys = d.instantiate();
      const auto ss = lip::measure_steady_state(*sys);
      sweep.add_row({std::to_string(ab), std::to_string(ba),
                     ss.system_throughput().str(),
                     graph::loop_throughput(2, ab + ba).str()});
    }
  }
  sweep.print(std::cout);
  return 0;
}
