// Probe overhead — the ISSUE's acceptance bar: a system with no probe
// attached must pay exactly one null-pointer test per step, and the
// instrumented configurations must degrade gracefully (counters <
// counters+attribution < +trace).  Also measures the raw trace-sink
// write throughput.  Writes BENCH_probe.json.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "liplib/lip/system.hpp"
#include "liplib/probe/probe.hpp"
#include "liplib/probe/trace.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  const char* name;
  bool attach = false;
  bool counters = false;
  bool attribution = false;
  bool trace = false;
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t cycles = argc > 1 ? std::stoull(argv[1]) : 200000;
  benchutil::heading("probe overhead on a composite loop chain");

  // The same workload as bench_throughput_composite's largest case.
  const std::vector<graph::RingSpec> specs = {{1, 2}, {2, 6}, {1, 3}};
  auto design = benchutil::make_design(graph::make_loop_chain(specs));

  const Config configs[] = {
      {"no probe"},
      {"counters", true, true, false, false},
      {"counters+attribution", true, true, true, false},
      {"counters+attribution+trace", true, true, true, true},
  };

  Json records = Json::array();
  Table t({"config", "cycles", "seconds", "Mcycles/s", "vs baseline"});
  double baseline = 0;
  for (const auto& c : configs) {
    auto sys = design.instantiate();
    std::ofstream null_os("/dev/null");
    probe::TraceSink sink(null_os);
    probe::ProbeConfig cfg;
    cfg.counters = c.counters;
    cfg.attribution = c.attribution;
    cfg.trace = c.trace ? &sink : nullptr;
    probe::Probe probe(cfg);
    if (c.attach) sys->attach_probe(probe);

    const auto t0 = Clock::now();
    sys->run(cycles);
    probe.finish_trace();
    const double s = seconds_since(t0);

    const double mcps = static_cast<double>(cycles) / s / 1e6;
    if (baseline == 0) baseline = s;
    const double ratio = s / baseline;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", ratio);
    t.add_row({c.name, std::to_string(cycles), std::to_string(s),
               std::to_string(mcps), buf});
    records.push(Json::object()
                     .set("config", c.name)
                     .set("cycles", cycles)
                     .set("seconds", s)
                     .set("mcycles_per_s", mcps)
                     .set("overhead_vs_baseline", ratio));
  }
  t.print(std::cout);

  benchutil::heading("trace sink write throughput");
  {
    std::ofstream null_os("/dev/null");
    probe::TraceSink sink(null_os);
    const std::uint64_t events = 2000000;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < events; ++i) {
      sink.complete_event("fire", "shell", i, 1, 1, 1 + (i & 7));
      if ((i & 15) == 0) {
        sink.counter_event("occ", i, 1, {{"valid", i & 3}, {"stop", i & 1}});
      }
    }
    sink.finish();
    const double s = seconds_since(t0);
    const double mb = static_cast<double>(sink.bytes_written()) / 1e6;
    std::cout << events << " span events + " << events / 16
              << " counter events: " << mb << " MB in " << s << " s = "
              << mb / s << " MB/s\n";
    records.push(Json::object()
                     .set("config", "trace_write")
                     .set("events", events)
                     .set("bytes", sink.bytes_written())
                     .set("seconds", s)
                     .set("mb_per_s", mb / s));
  }

  benchutil::write_bench_json("probe", std::move(records));
  return 0;
}
