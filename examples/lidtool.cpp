// lidtool — command-line front end for latency-insensitive designs in the
// .lid netlist format (see liplib/graph/netlist_io.hpp).
//
//   lidtool validate  <file.lid>    structural checks + warnings
//   lidtool analyze   <file.lid>    analytic throughput (formulas + MCR)
//   lidtool simulate  <file.lid>    skeleton simulation to steady state
//   lidtool screen    <file.lid>    deadlock screening (reset + worst case)
//   lidtool cure      <file.lid>    substitute stations until deadlock free
//   lidtool equalize  <file.lid>    insert spare stations, print new netlist
//   lidtool flow      <file.lid>    full flow: screen, cure, sign off
//   lidtool run       <file.lid> [n] full-data simulation (annotated file)
//   lidtool dot       <file.lid>    graphviz rendering
//
// Run without arguments for a demo on the paper's Fig. 1 design.

#include <fstream>
#include <iostream>
#include <sstream>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/equalize.hpp"
#include "liplib/graph/mcr.hpp"
#include "liplib/flow/design_flow.hpp"
#include "liplib/graph/netlist_io.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/pearls/design_io.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

const char* kFig1Netlist = R"(# the paper's Fig. 1 design
source src
process A 1 2
process B 1 1
process C 2 1
sink out
channel src.0 -> A.0
channel A.0 -> B.0 : F
channel B.0 -> C.0 : F
channel A.1 -> C.1 : F
channel C.0 -> out.0
)";

int cmd_validate(const graph::Topology& topo) {
  const auto report = topo.validate();
  if (report.issues.empty()) {
    std::cout << "ok: no issues\n";
  } else {
    std::cout << report.to_string();
  }
  return report.ok() ? 0 : 1;
}

int cmd_analyze(const graph::Topology& topo) {
  const auto pred = graph::predict_throughput(topo);
  std::cout << "feedforward: " << (topo.is_feedforward() ? "yes" : "no")
            << "\n";
  if (const auto mcr = graph::min_cycle_ratio(topo)) {
    std::cout << "loop bound (min cycle ratio): " << mcr->str() << "\n";
  }
  if (!pred.cycles.empty()) {
    Table t({"cycle (shells)", "S", "R", "T = S/(S+R)"});
    for (const auto& c : pred.cycles) {
      std::string names;
      for (auto v : c.nodes) {
        if (!names.empty()) names += ",";
        names += topo.node(v).name;
      }
      t.add_row({names, std::to_string(c.shells), std::to_string(c.stations),
                 c.throughput.str()});
    }
    t.print(std::cout);
  }
  if (!pred.reconvergences.empty()) {
    Table t({"fork", "join", "i", "m", "T = (m-i)/m"});
    for (const auto& r : pred.reconvergences) {
      t.add_row({topo.node(r.fork).name, topo.node(r.join).name,
                 std::to_string(r.i()), std::to_string(r.m()),
                 r.throughput().str()});
    }
    t.print(std::cout);
  }
  std::cout << "predicted system throughput: " << pred.system().str() << "\n";
  std::cout << "transient bound: " << graph::transient_bound(topo)
            << " cycles\n";
  return 0;
}

int cmd_simulate(const graph::Topology& topo) {
  skeleton::Skeleton sk(topo);
  const auto r = sk.analyze();
  if (!r.found) {
    std::cout << "no steady state within budget\n";
    return 1;
  }
  std::cout << "transient: " << r.transient << " cycles, period: " << r.period
            << "\n";
  Table t({"shell", "throughput"});
  for (std::size_t i = 0; i < r.shell_ids.size(); ++i) {
    t.add_row({topo.node(r.shell_ids[i]).name, r.shell_throughput[i].str()});
  }
  t.print(std::cout);
  std::cout << "system throughput: " << r.system_throughput().str() << "\n";
  return 0;
}

int cmd_screen(const graph::Topology& topo) {
  skeleton::ScreeningOptions reset;
  const auto a = skeleton::screen_for_deadlock(topo, reset);
  std::cout << "from reset: "
            << (a.deadlock_found ? "DEADLOCK" : "live, T = " +
                                                    a.min_throughput.str())
            << " (" << a.cycles_simulated << " skeleton cycles)\n";
  skeleton::ScreeningOptions wc;
  wc.worst_case_occupancy = true;
  const auto b = skeleton::screen_for_deadlock(topo, wc);
  std::cout << "worst-case occupancy: "
            << (b.deadlock_found ? "DEADLOCK" : "live, T = " +
                                                    b.min_throughput.str())
            << "\n";
  for (auto v : b.starved) {
    std::cout << "  starved shell: " << topo.node(v).name << "\n";
  }
  return (a.deadlock_found || b.deadlock_found) ? 1 : 0;
}

int cmd_cure(const graph::Topology& topo) {
  skeleton::ScreeningOptions wc;
  wc.worst_case_occupancy = true;
  const auto cure = skeleton::cure_deadlocks(topo, wc);
  std::cout << "substitutions: " << cure.substitutions << "\n"
            << "result: " << (cure.success ? "deadlock free" : "NOT cured")
            << "\n\n"
            << graph::write_netlist(cure.cured);
  return cure.success ? 0 : 1;
}

int cmd_flow(const graph::Topology& topo) {
  flow::FlowOptions opts;  // keep stations as given; screen + cure + sign off
  const auto result = flow::run_design_flow(topo, opts);
  std::cout << result.summary();
  if (result.ok) {
    std::cout << "\n" << graph::write_netlist(result.topology);
  }
  return result.ok ? 0 : 1;
}

int cmd_run(std::istream& in, std::uint64_t cycles) {
  auto design = pearls::parse_design(in);
  auto sys = design.instantiate();
  sys->run(cycles);
  const auto& topo = design.topology();
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    if (topo.node(v).kind != graph::NodeKind::kSink) continue;
    const auto& stream = sys->sink_stream(v);
    std::cout << topo.node(v).name << " consumed " << stream.size()
              << " tokens:";
    const std::size_t show = std::min<std::size_t>(stream.size(), 16);
    for (std::size_t i = 0; i < show; ++i) {
      std::cout << ' ' << stream[i].data;
    }
    if (stream.size() > show) std::cout << " ...";
    std::cout << "\n";
  }
  auto fresh = design.instantiate();
  const auto ss = lip::measure_steady_state(*fresh);
  if (ss.found) {
    std::cout << "steady state (sound for periodic environments): T = "
              << ss.system_throughput().str()
              << ", transient " << ss.transient << ", period " << ss.period
              << "\n";
  }
  const auto equiv = lip::check_latency_equivalence(design, {}, cycles);
  std::cout << "latency equivalence vs ideal system: "
            << (equiv.ok ? "ok" : "BROKEN: " + equiv.detail) << "\n";
  return equiv.ok ? 0 : 1;
}

int cmd_equalize(graph::Topology topo) {
  if (!topo.is_feedforward()) {
    std::cout << "design has feedback loops; equalization applies to "
                 "feed-forward designs only\n";
    return 1;
  }
  const auto added = graph::equalize_paths(topo);
  std::cout << "# equalization added " << added << " spare stations\n"
            << graph::write_netlist(topo);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    graph::Topology topo;
    std::string cmd;
    if (argc >= 3) {
      cmd = argv[1];
      std::ifstream in(argv[2]);
      if (!in) {
        std::cerr << "cannot open " << argv[2] << "\n";
        return 2;
      }
      if (cmd == "run") {
        const std::uint64_t cycles =
            argc >= 4 ? std::stoull(argv[3]) : 1000;
        return cmd_run(in, cycles);
      }
      // Structural commands accept annotated files too.
      topo = graph::parse_netlist_annotated(in).topo;
    } else {
      std::cout << "usage: lidtool <validate|analyze|simulate|screen|cure|"
                   "equalize|flow|dot> <file.lid>\n"
                   "       lidtool run <file.lid> [cycles]\n"
                   "running the full demo on the built-in Fig. 1 design:\n\n";
      topo = graph::parse_netlist_string(kFig1Netlist);
      std::cout << "--- validate ---\n";
      cmd_validate(topo);
      std::cout << "--- analyze ---\n";
      cmd_analyze(topo);
      std::cout << "--- simulate ---\n";
      cmd_simulate(topo);
      std::cout << "--- screen ---\n";
      cmd_screen(topo);
      std::cout << "--- equalize ---\n";
      return cmd_equalize(std::move(topo));
    }
    if (cmd == "validate") return cmd_validate(topo);
    if (cmd == "analyze") return cmd_analyze(topo);
    if (cmd == "simulate") return cmd_simulate(topo);
    if (cmd == "screen") return cmd_screen(topo);
    if (cmd == "cure") return cmd_cure(topo);
    if (cmd == "equalize") return cmd_equalize(std::move(topo));
    if (cmd == "flow") return cmd_flow(topo);
    if (cmd == "dot") {
      std::cout << topo.to_dot();
      return 0;
    }
    std::cerr << "unknown command '" << cmd << "'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
