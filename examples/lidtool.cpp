// lidtool — command-line front end for latency-insensitive designs in the
// .lid netlist format (see liplib/graph/netlist_io.hpp).
//
//   lidtool validate  <file.lid>    structural checks + warnings
//   lidtool lint      <file.lid>    static protocol analysis (LIP001...)
//   lidtool analyze   <file.lid>    analytic throughput (formulas + MCR)
//   lidtool simulate  <file.lid>    skeleton simulation to steady state
//   lidtool screen    <file.lid>    deadlock screening (reset + worst case)
//   lidtool cure      <file.lid>    substitute stations until deadlock free
//   lidtool equalize  <file.lid>    insert spare stations, print new netlist
//   lidtool flow      <file.lid>    full flow: screen, cure, sign off
//   lidtool run       <file.lid> [n] full-data simulation (annotated file)
//   lidtool profile   <file.lid>    probe-instrumented run: counters, stall
//                                   attribution, optional Perfetto trace
//   lidtool dot       <file.lid>    graphviz rendering
//   lidtool campaign  ...           parallel mass-simulation campaigns
//                                   (sweep / fuzz / probe / t1; see --help)
//   lidtool merge     ...           deterministic reunion of shard partials
//   lidtool dist      ...           distributed campaigns: lease coordinator
//                                   and pull workers (see docs/dist.md)
//   lidtool replay    <bundle.json> re-run a watchdog post-mortem bundle and
//                                   check the deadlock reproduces
//   lidtool bench diff <old> <new>  perf regression gate over BENCH_*.json
//   lidtool serve     ...           multi-tenant lint/screen/profile daemon
//                                   with a content-addressed result cache
//   lidtool client    ...           scripted requests against a daemon
//   lidtool trace     ...           merge/scrape liplib.trace/1 span docs and
//                                   probe Perfetto files into one timeline
//
// Run without arguments for a demo on the paper's Fig. 1 design.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "liplib/campaign/campaign.hpp"
#include "liplib/campaign/jobs.hpp"
#include "liplib/campaign/report.hpp"
#include "liplib/dist/coordinator.hpp"
#include "liplib/dist/shard.hpp"
#include "liplib/dist/worker.hpp"
#include "liplib/graph/analysis.hpp"
#include "liplib/graph/equalize.hpp"
#include "liplib/graph/mcr.hpp"
#include "liplib/flow/design_flow.hpp"
#include "liplib/graph/netlist_io.hpp"
#include "liplib/lint/lint.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/pearls/design_io.hpp"
#include "liplib/probe/probe.hpp"
#include "liplib/probe/trace.hpp"
#include "liplib/prove/prove.hpp"
#include "liplib/serve/server.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/table.hpp"
#include "liplib/telemetry/bench_diff.hpp"
#include "liplib/telemetry/watchdog.hpp"
#include "liplib/trace/trace.hpp"
#include "liplib/xir/xir.hpp"

using namespace liplib;

namespace {

const char* kUsage =
    R"(usage: lidtool <command> [arguments]

structural commands (take a .lid netlist file):
  validate  <file.lid>          structural checks + warnings
  lint      <file.lid>          static protocol analysis (rules LIP001...,
                                see docs/lint.md); exit 0 clean / 1 warnings
                                / 2 errors
    --json      render the report as canonical JSON
    --fix       apply machine-applicable fix-its; the cured netlist goes
                to -o FILE (or stdout) and the report to stderr
    -o FILE     output file for the cured netlist
  analyze   <file.lid>          analytic throughput (formulas + MCR)
  simulate  <file.lid>          skeleton simulation to steady state, guarded
                                by the telemetry watchdog: a deadlocked or
                                livelocked design is reported as DEADLOCK
                                (exit 1) instead of draining the budget
    --worst-case       start from worst-case occupancy (saturated stations)
    --budget N         watchdog-guarded cycle budget (default 2^18)
    --postmortem FILE  on trip, write the post-mortem bundle (replayable
                       with `lidtool replay`) to FILE
  screen    <file.lid>          deadlock screening (reset + worst case)
    --engine interp|compiled|sliced   skeleton evaluator (default interp;
                       the xir engines are bit-identical, see docs/xir.md)
  prove     <file.lid>          static deadlock-freedom proof: exhaustive
                                reachability, bounded model checking and
                                k-induction over every sink-stop environment
                                (see docs/prove.md);
                                exit 0 proved / 1 counterexample / 2 unknown
    --worst-case       prove from worst-case occupancy instead of reset
    --method M         auto | reach | bmc | induction (default auto)
    --depth K          bounded model checking to depth K (implies bmc)
    --induction        k-induction certificates only (same as
                       --method induction)
    --budget N         distinct-state budget (default 2^20)
    --engine scalar|sliced   search frontier (default sliced, 64 states
                       per settle pass; verdicts are identical)
    --policy variant|strict  stop policy (default variant)
    --json             render the result as canonical JSON
    --postmortem FILE  write the counterexample's replayable
                       liplib.postmortem/1 bundle to FILE
  cure      <file.lid>          substitute stations until deadlock free
  equalize  <file.lid>          insert spare stations, print new netlist
  flow      <file.lid>          full flow: screen, cure, sign off
  dot       <file.lid>          graphviz rendering

behavioural commands (annotated netlists):
  run       <file.lid> [cycles] full-data simulation + equivalence check,
                                watchdog-guarded (deadlock -> exit 1)
    --postmortem FILE  on watchdog trip, write the bundle to FILE
  profile   <file.lid>          probe-instrumented full-data run: per-shell
                                activity counters, measured throughput and
                                stall attribution (see docs/probe.md)
    --cycles N  cycles to simulate (default 10000)
    --trace F   stream a Chrome trace-event / Perfetto JSON file to F
    --json      render the probe report as canonical JSON

campaign commands (parallel mass simulation; see docs/campaign.md):
  campaign sweep <file.lid>     steady-state sweep over station counts
                                and stop policies
  campaign fuzz <N>             screen N random topologies
  campaign lint <N>             cross-check the linter against worst-case
                                screening on N random topologies
  campaign probe <N>            probe-vs-analytic agreement on N random
                                topologies (measured throughput must equal
                                the skeleton's exactly)
  campaign prove <N>            three-way cross-check of the prover against
                                the linter and worst-case screening on N
                                random topologies (any disagreement is a
                                mismatch failure)
  campaign mix <file.lid>       screen random half/full station-kind
                                variants of one design from worst-case
                                occupancy; the sliced engine (default)
                                batches 64 variants per bit-parallel job
  campaign t1                   the EXPERIMENTS.md T1 fuzz pass
                                (750 randomized runs) on the engine
  campaign options:
    --threads N   worker threads (default: hardware)
    --seed S      campaign base seed (default 1; decimal or 0x-hex)
    --budget B    per-job cycle budget (default 2^18)
    --stations LO:HI   sweep station-count range (default 1:4)
    --policy variant|strict|both   stop policy (default both for sweep,
                                   variant for fuzz)
    --shape composite|reconvergent|feedforward   fuzz topology shape
    --engine interp|compiled|sliced   skeleton evaluator for sweep / fuzz
                  / mix jobs (default interp; mix defaults to sliced)
    --variants N  mix: number of kind-variants to screen (default 64)
    --json PATH   write the aggregated report as JSON
    --csv PATH    write per-job results as CSV
    --shard i/N   run only shard i of N (contiguous job-index slice with
                  global job identity); requires --out
    --out PATH    write the shard's liplib.dist.partial/1 document for
                  `lidtool merge` instead of the normal report

distributed campaign commands (see docs/dist.md):
  merge <a.json> <b.json> ...   deterministically reunite shard partials;
                                the merged aggregate is byte-identical to
                                the unsharded run's --json document
    --json PATH    write the merged aggregate as JSON
  dist coordinate <mode> <N>    run the lease coordinator for a named
                                campaign (mode: fuzz|lint|probe|prove) and
                                print the merged aggregate when done
    --port N       TCP port (default 0 = ephemeral, printed on start)
    --shards N     shards to split the campaign into (default 4)
    --seed S       campaign base seed (default 1; decimal or 0x-hex)
    --budget B     per-job cycle budget (default 2^18)
    --lease-ms N   lease deadline before re-dispatch (default 30000)
    --policy P / --shape S / --engine E   fuzz-job knobs as for campaign
    --json PATH    write the merged aggregate as JSON
    --trace PATH   record the lease -> execute -> merge span timeline
                   (workers trace automatically when leases carry the
                   context) and write the liplib.trace/1 document
  dist work                     pull shard leases from a coordinator, run
                                them, submit partial aggregates
    --port N       coordinator port (required)
    --threads N    engine threads per shard (default: hardware)

telemetry commands (see docs/telemetry.md):
  replay    <bundle.json>       reconstruct the design from a watchdog
                                post-mortem bundle, re-run it and check the
                                deadlock reproduces at the identical cycle;
                                exit 0 reproduced / 1 not reproduced
  bench diff <old.json> <new.json>  compare two BENCH_*.json artifacts with
                                a noise-aware threshold; exit 0 clean /
                                1 regression / 2 bad input
    --threshold PCT    regression threshold in percent (default 10)
    --json             render the comparison as canonical JSON

serve commands (the liplib.rpc/1 daemon; see docs/serve.md):
  serve                         run the multi-tenant daemon on 127.0.0.1:
                                lint / screen / profile / campaign requests
                                from concurrent clients, answered through a
                                content-addressed result cache
    --port N       TCP port (default 7177; 0 = ephemeral, printed on start)
    --threads N    campaign worker threads (default: hardware)
    --cache-mb N   result cache budget in MiB (default 64)
    --ttl N        cache entry lifetime in seconds (default 600; 0 = never)
    --budget N     default + maximum screening cycle budget (default 2^18)
  client <kind> [args]          send one request, print the JSON response;
                                exit 0 live/clean, 1 diagnosed, 2 error
    kinds: lint <file.lid> | screen <file.lid> | profile <file.lid> |
           prove <file.lid> | campaign <fuzz|lint|probe|prove> <jobs> |
           status | shutdown | dist-status | metrics | trace
           (metrics prints the raw Prometheus exposition text; trace
           prints the daemon's liplib.trace/1 span document)
    --port N       daemon port (default 7177)
    --policy P     variant | strict (screen / prove / campaign)
    --engine E     interp | compiled | sliced (screen / prove / campaign)
    --budget N     cycle budget (screen / campaign); state budget (prove)
    --cycles N     cycles to simulate (profile)
    --method M     auto | reach | bmc | induction (prove)
    --depth K      BMC depth bound (prove)
    --worst-case   prove from worst-case occupancy
    --seed S       campaign base seed (default 1)
    --coordinator N   dist coordinator port to relay (dist-status)
    --id X         request id echoed in the response
    --trace FILE   attach a trace context to the request (the daemon's
                   spans join the client's trace) and write the client
                   round-trip span document to FILE

observability commands (see docs/trace.md and docs/observability.md):
  trace [files...]              merge liplib.trace/1 span documents and
                                Chrome/Perfetto trace files (lidtool
                                profile --trace output) into one timeline
    --scrape PORT       also scrape a serve daemon's span document
    --scrape-dist PORT  also scrape a dist coordinator's span document
    -o FILE             write the merged Perfetto JSON (ui.perfetto.dev)
    --check             exit 1 when span parent/child integrity is broken

other:
  --help, -h, help              this text

Run without arguments for a demo on the paper's Fig. 1 design.
)";

const char* kFig1Netlist = R"(# the paper's Fig. 1 design
source src
process A 1 2
process B 1 1
process C 2 1
sink out
channel src.0 -> A.0
channel A.0 -> B.0 : F
channel B.0 -> C.0 : F
channel A.1 -> C.1 : F
channel C.0 -> out.0
)";

int cmd_validate(const graph::Topology& topo) {
  const auto report = topo.validate();
  if (report.issues.empty()) {
    std::cout << "ok: no issues\n";
  } else {
    std::cout << report.to_string();
  }
  return report.ok() ? 0 : 1;
}

int cmd_lint(const graph::Topology& topo, bool json, bool fix,
             const std::string& out_path) {
  if (!fix) {
    const auto report = lint::run_lint(topo);
    if (json) {
      std::cout << report.to_json(topo).dump(2) << "\n";
    } else {
      std::cout << report.to_string(topo);
    }
    return report.exit_code();
  }
  const auto result = lint::lint_and_fix(topo);
  if (json) {
    std::cerr << result.report.to_json(result.fixed).dump(2) << "\n";
  } else {
    std::cerr << "applied " << result.applied << " station edit(s) in "
              << result.iterations << " round(s)\n"
              << result.report.to_string(result.fixed);
  }
  const auto netlist = graph::write_netlist(result.fixed);
  if (out_path.empty()) {
    std::cout << netlist;
  } else {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "cannot write " << out_path << "\n";
      return 2;
    }
    os << netlist;
    std::cerr << "wrote " << out_path << "\n";
  }
  return result.report.exit_code();
}

int cmd_analyze(const graph::Topology& topo) {
  const auto pred = graph::predict_throughput(topo);
  std::cout << "feedforward: " << (topo.is_feedforward() ? "yes" : "no")
            << "\n";
  if (const auto mcr = graph::min_cycle_ratio(topo)) {
    std::cout << "loop bound (min cycle ratio): " << mcr->str() << "\n";
  }
  if (!pred.cycles.empty()) {
    Table t({"cycle (shells)", "S", "R", "T = S/(S+R)"});
    for (const auto& c : pred.cycles) {
      std::string names;
      for (auto v : c.nodes) {
        if (!names.empty()) names += ",";
        names += topo.node(v).name;
      }
      t.add_row({names, std::to_string(c.shells), std::to_string(c.stations),
                 c.throughput.str()});
    }
    t.print(std::cout);
  }
  if (!pred.reconvergences.empty()) {
    Table t({"fork", "join", "i", "m", "T = (m-i)/m"});
    for (const auto& r : pred.reconvergences) {
      t.add_row({topo.node(r.fork).name, topo.node(r.join).name,
                 std::to_string(r.i()), std::to_string(r.m()),
                 r.throughput().str()});
    }
    t.print(std::cout);
  }
  std::cout << "predicted system throughput: " << pred.system().str() << "\n";
  std::cout << "transient bound: " << graph::transient_bound(topo)
            << " cycles\n";
  return 0;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what);

/// Writes a post-mortem bundle; reports what happened on stdout.
bool write_postmortem(const telemetry::Watchdog& dog,
                      const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  os << dog.post_mortem().to_json().dump(2) << "\n";
  std::cout << "wrote post-mortem bundle " << path
            << " (replay with `lidtool replay " << path << "`)\n";
  return true;
}

/// Prints the watchdog verdict after a trip.
void print_trip(const telemetry::Watchdog& dog) {
  std::cout << "DEADLOCK: watchdog tripped ("
            << telemetry::trip_reason_str(dog.reason())
            << "), no progress since cycle " << dog.no_progress_since()
            << ", tripped at cycle " << dog.trip_cycle() << "\n";
  const auto report = dog.probe().report();
  if (const auto* top = report.top_blame()) {
    std::cout << "top blame: " << top->victim_name
              << (top->why == probe::Activity::kWaitingInput ? " waiting <- "
                                                             : " stopped <- ")
              << top->culprit_name << " x" << top->cycles << "\n";
  }
}

int cmd_simulate(const graph::Topology& topo,
                 const std::vector<std::string>& rest) {
  bool worst_case = false;
  std::uint64_t budget = 1u << 18;
  std::string pm_path;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--worst-case") {
      worst_case = true;
    } else if (rest[i] == "--budget") {
      LIPLIB_EXPECT(i + 1 < rest.size(), "--budget requires a value");
      budget = parse_u64(rest[++i], "--budget");
    } else if (rest[i] == "--postmortem") {
      LIPLIB_EXPECT(i + 1 < rest.size(), "--postmortem requires a file name");
      pm_path = rest[++i];
    } else {
      std::cerr << "unknown simulate option '" << rest[i] << "'\n\n" << kUsage;
      return 2;
    }
  }

  // Watchdog-guarded pass first: a deadlocked/livelocked design is
  // reported (with evidence) instead of silently draining the analyze
  // budget.  Skeleton steps are cheap enough to pay twice.
  {
    skeleton::Skeleton guard(topo);
    if (worst_case) guard.saturate_stations();
    telemetry::WatchdogOptions wopts;
    wopts.worst_case_occupancy = worst_case;
    telemetry::Watchdog dog(wopts);
    dog.attach(guard);
    const auto guarded = telemetry::run_guarded(guard, dog, budget);
    if (dog.tripped()) {
      print_trip(dog);
      if (!pm_path.empty() && !write_postmortem(dog, pm_path)) return 2;
      std::cout << "summary: simulate cycles=" << guarded.cycles
                << " seed=0 (skeleton runs are deterministic) "
                   "verdict=deadlock\n";
      return 1;
    }
  }

  skeleton::Skeleton sk(topo);
  if (worst_case) sk.saturate_stations();
  const auto r = sk.analyze();
  if (!r.found) {
    std::cout << "no steady state within budget\n";
    return 1;
  }
  std::cout << "transient: " << r.transient << " cycles, period: " << r.period
            << "\n";
  Table t({"shell", "throughput"});
  for (std::size_t i = 0; i < r.shell_ids.size(); ++i) {
    t.add_row({topo.node(r.shell_ids[i]).name, r.shell_throughput[i].str()});
  }
  t.print(std::cout);
  std::cout << "system throughput: " << r.system_throughput().str() << "\n";
  std::cout << "summary: simulate cycles=" << r.transient + r.period
            << " (transient " << r.transient << " + period " << r.period
            << ") seed=0 (skeleton runs are deterministic) T="
            << r.system_throughput().str() << "\n";
  return 0;
}

int cmd_screen(const graph::Topology& topo,
               xir::EngineMode engine = xir::EngineMode::kInterp) {
  skeleton::ScreeningOptions reset;
  const auto a = xir::screen_for_deadlock(topo, reset, 1u << 20, engine);
  std::cout << "from reset: "
            << (a.deadlock_found ? "DEADLOCK" : "live, T = " +
                                                    a.min_throughput.str())
            << " (" << a.cycles_simulated << " skeleton cycles)\n";
  skeleton::ScreeningOptions wc;
  wc.worst_case_occupancy = true;
  const auto b = xir::screen_for_deadlock(topo, wc, 1u << 20, engine);
  std::cout << "worst-case occupancy: "
            << (b.deadlock_found ? "DEADLOCK" : "live, T = " +
                                                    b.min_throughput.str())
            << "\n";
  for (auto v : b.starved) {
    std::cout << "  starved shell: " << topo.node(v).name << "\n";
  }
  const bool bad = a.deadlock_found || b.deadlock_found;
  std::cout << "summary: screen cycles=" << a.cycles_simulated +
                   b.cycles_simulated
            << " (reset " << a.cycles_simulated << " + worst-case "
            << b.cycles_simulated
            << ") seed=0 (skeleton runs are deterministic) engine="
            << xir::engine_mode_name(engine) << " verdict="
            << (bad ? "deadlock" : "live") << "\n";
  return bad ? 1 : 0;
}

int cmd_prove(const graph::Topology& topo,
              const std::vector<std::string>& rest) {
  prove::ProveOptions opts;
  bool json = false;
  std::string pm_path;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--worst-case") {
      opts.worst_case_occupancy = true;
    } else if (rest[i] == "--method") {
      LIPLIB_EXPECT(i + 1 < rest.size(), "--method requires a value");
      const std::string v = rest[++i];
      LIPLIB_EXPECT(prove::parse_method(v, &opts.method),
                    "unknown method '" + v +
                        "' (expected auto | reach | bmc | induction)");
    } else if (rest[i] == "--depth") {
      LIPLIB_EXPECT(i + 1 < rest.size(), "--depth requires a value");
      opts.method = prove::Method::kBmc;
      opts.depth = parse_u64(rest[++i], "--depth");
    } else if (rest[i] == "--induction") {
      opts.method = prove::Method::kInduction;
    } else if (rest[i] == "--budget") {
      LIPLIB_EXPECT(i + 1 < rest.size(), "--budget requires a value");
      opts.max_states = parse_u64(rest[++i], "--budget");
    } else if (rest[i] == "--engine") {
      LIPLIB_EXPECT(i + 1 < rest.size(), "--engine requires a value");
      const std::string v = rest[++i];
      if (v == "scalar") {
        opts.sliced_frontier = false;
      } else if (v == "sliced") {
        opts.sliced_frontier = true;
      } else {
        std::cerr << "unknown prove engine '" << v
                  << "' (expected scalar | sliced)\n\n"
                  << kUsage;
        return 2;
      }
    } else if (rest[i] == "--policy") {
      LIPLIB_EXPECT(i + 1 < rest.size(), "--policy requires a value");
      const std::string v = rest[++i];
      if (v == "variant") {
        opts.skeleton.policy = lip::StopPolicy::kCasuDiscardOnVoid;
      } else if (v == "strict") {
        opts.skeleton.policy = lip::StopPolicy::kCarloniStrict;
      } else {
        std::cerr << "unknown policy '" << v
                  << "' (expected variant | strict)\n\n"
                  << kUsage;
        return 2;
      }
    } else if (rest[i] == "--json") {
      json = true;
    } else if (rest[i] == "--postmortem") {
      LIPLIB_EXPECT(i + 1 < rest.size(), "--postmortem requires a file name");
      pm_path = rest[++i];
    } else {
      std::cerr << "unknown prove option '" << rest[i] << "'\n\n" << kUsage;
      return 2;
    }
  }
  const auto r = prove::prove(topo, opts);
  if (json) {
    std::cout << r.to_json(topo).dump(2) << "\n";
  } else {
    std::cout << r.to_string(topo);
  }
  if (!pm_path.empty()) {
    if (!r.postmortem) {
      std::cerr << "no post-mortem bundle to write (verdict "
                << prove::verdict_name(r.verdict) << ")\n";
    } else {
      std::ofstream os(pm_path);
      if (!os) {
        std::cerr << "cannot write " << pm_path << "\n";
        return 2;
      }
      os << r.postmortem->to_json().dump(2) << "\n";
      std::cerr << "wrote post-mortem bundle " << pm_path
                << " (replay with `lidtool replay " << pm_path << "`)\n";
    }
  }
  return r.exit_code();
}

int cmd_cure(const graph::Topology& topo) {
  skeleton::ScreeningOptions wc;
  wc.worst_case_occupancy = true;
  const auto cure = skeleton::cure_deadlocks(topo, wc);
  std::cout << "substitutions: " << cure.substitutions << "\n"
            << "result: " << (cure.success ? "deadlock free" : "NOT cured")
            << "\n\n"
            << graph::write_netlist(cure.cured);
  return cure.success ? 0 : 1;
}

int cmd_flow(const graph::Topology& topo) {
  flow::FlowOptions opts;  // keep stations as given; screen + cure + sign off
  const auto result = flow::run_design_flow(topo, opts);
  std::cout << result.summary();
  if (result.ok) {
    std::cout << "\n" << graph::write_netlist(result.topology);
  }
  return result.ok ? 0 : 1;
}

int cmd_run(std::istream& in, std::uint64_t cycles,
            const std::string& pm_path) {
  auto design = pearls::parse_design(in);
  auto sys = design.instantiate();
  // Guard the full-data run: a design that deadlocks (half stations on a
  // loop under unlucky occupancy) is reported instead of burning the
  // cycle budget in silence.
  telemetry::Watchdog dog;
  dog.attach(*sys);
  const auto guarded = telemetry::run_guarded(*sys, dog, cycles);
  if (dog.tripped()) {
    print_trip(dog);
    if (!pm_path.empty() && !write_postmortem(dog, pm_path)) return 2;
    std::cout << "summary: run cycles=" << guarded.cycles
              << " verdict=deadlock\n";
    return 1;
  }
  const auto& topo = design.topology();
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    if (topo.node(v).kind != graph::NodeKind::kSink) continue;
    const auto& stream = sys->sink_stream(v);
    std::cout << topo.node(v).name << " consumed " << stream.size()
              << " tokens:";
    const std::size_t show = std::min<std::size_t>(stream.size(), 16);
    for (std::size_t i = 0; i < show; ++i) {
      std::cout << ' ' << stream[i].data;
    }
    if (stream.size() > show) std::cout << " ...";
    std::cout << "\n";
  }
  auto fresh = design.instantiate();
  const auto ss = lip::measure_steady_state(*fresh);
  if (ss.found) {
    std::cout << "steady state (sound for periodic environments): T = "
              << ss.system_throughput().str()
              << ", transient " << ss.transient << ", period " << ss.period
              << "\n";
  }
  const auto equiv = lip::check_latency_equivalence(design, {}, cycles);
  std::cout << "latency equivalence vs ideal system: "
            << (equiv.ok ? "ok" : "BROKEN: " + equiv.detail) << "\n";
  return equiv.ok ? 0 : 1;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what);

int cmd_profile(std::istream& in, const std::vector<std::string>& rest) {
  std::uint64_t cycles = 10000;
  std::string trace_path;
  bool json = false;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == "--cycles") {
      LIPLIB_EXPECT(i + 1 < rest.size(), "--cycles requires a value");
      cycles = parse_u64(rest[++i], "--cycles");
    } else if (rest[i] == "--trace") {
      LIPLIB_EXPECT(i + 1 < rest.size(), "--trace requires a file name");
      trace_path = rest[++i];
    } else if (rest[i] == "--json") {
      json = true;
    } else {
      std::cerr << "unknown profile option '" << rest[i] << "'\n\n" << kUsage;
      return 2;
    }
  }
  auto design = pearls::parse_design(in);
  auto sys = design.instantiate();

  std::ofstream trace_os;
  std::unique_ptr<probe::TraceSink> sink;
  if (!trace_path.empty()) {
    trace_os.open(trace_path);
    if (!trace_os) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 2;
    }
    sink = std::make_unique<probe::TraceSink>(trace_os);
  }
  probe::ProbeConfig cfg;
  cfg.trace = sink.get();
  probe::Probe probe(cfg);
  sys->attach_probe(probe);
  sys->run(cycles);
  probe.finish_trace();

  const auto report = probe.report();
  if (json) {
    std::cout << report.to_json().dump(2) << "\n";
    return 0;
  }
  Table t({"shell", "fired", "waiting", "stopped", "measured T"});
  for (const auto& s : report.shells) {
    t.add_row({s.name, std::to_string(s.fired), std::to_string(s.waiting),
               std::to_string(s.stopped), report.throughput(s.node).str()});
  }
  t.print(std::cout);
  std::cout << "measured system throughput: " << report.min_throughput().str()
            << " (includes the transient; see docs/probe.md)\n";
  if (!report.blame.empty()) {
    std::cout << "\nstall attribution (top 10):\n\n";
    Table b({"victim", "state", "culprit", "cycles"});
    const std::size_t show = std::min<std::size_t>(report.blame.size(), 10);
    for (std::size_t i = 0; i < show; ++i) {
      const auto& e = report.blame[i];
      b.add_row({e.victim_name,
                 e.why == probe::Activity::kWaitingInput ? "waiting"
                                                        : "stopped",
                 e.culprit_name, std::to_string(e.cycles)});
    }
    b.print(std::cout);
    if (report.blame.size() > show) {
      std::cout << "... and " << report.blame.size() - show << " more\n";
    }
  }
  if (sink) {
    std::cout << "\nwrote " << trace_path << " (" << sink->bytes_written()
              << " bytes; open at ui.perfetto.dev)\n";
  }
  std::cout << "summary: profile cycles=" << cycles
            << " seed=0 (full-data runs are deterministic)\n";
  return 0;
}

int cmd_replay(std::istream& in) {
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto pm = telemetry::PostMortem::from_json(Json::parse(ss.str()));
  std::cout << "bundle: " << telemetry::trip_reason_str(pm.reason)
            << " at cycle " << pm.trip_cycle << ", no progress since cycle "
            << pm.no_progress_since << ", seed " << pm.seed << " ("
            << (pm.strict ? "strict" : "variant") << " policy, "
            << (pm.worst_case_occupancy ? "worst-case occupancy" : "from reset")
            << ")\n";
  const auto r = telemetry::replay(pm);
  if (!r.tripped) {
    std::cout << "replay: watchdog did NOT trip — failure not reproduced\n";
    return 1;
  }
  std::cout << "replay: " << telemetry::trip_reason_str(r.reason)
            << " at cycle " << r.trip_cycle << ", no progress since cycle "
            << r.no_progress_since << "\n"
            << "verdict: "
            << (r.reproduced ? "reproduced (identical deadlock cycle)"
                             : "TRIPPED DIFFERENTLY (bundle and replay "
                               "disagree)")
            << "\n";
  return r.reproduced ? 0 : 1;
}

int cmd_bench(int argc, char** argv) {
  if (argc < 3 || std::string(argv[2]) != "diff") {
    std::cerr << "bench requires the 'diff' mode: lidtool bench diff "
                 "<old.json> <new.json>\n\n"
              << kUsage;
    return 2;
  }
  telemetry::BenchDiffOptions opts;
  bool json = false;
  std::vector<std::string> files;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threshold") {
      LIPLIB_EXPECT(i + 1 < argc, "--threshold requires a value");
      const std::string v = argv[++i];
      try {
        std::size_t used = 0;
        opts.threshold_pct = std::stod(v, &used);
        LIPLIB_EXPECT(used == v.size() && opts.threshold_pct >= 0,
                      "--threshold expects a non-negative percentage");
      } catch (const ApiError&) {
        throw;
      } catch (const std::exception&) {
        throw ApiError("--threshold expects a number, got '" + v + "'");
      }
    } else if (a == "--json") {
      json = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown bench diff option '" << a << "'\n\n" << kUsage;
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 2) {
    std::cerr << "bench diff requires exactly two BENCH_*.json files\n";
    return 2;
  }
  const auto diff = telemetry::bench_diff_files(files[0], files[1], opts);
  if (json) {
    std::cout << diff.to_json().dump(2) << "\n";
  } else {
    std::cout << diff.to_text();
  }
  return diff.exit_code();
}

int cmd_equalize(graph::Topology topo) {
  if (!topo.is_feedforward()) {
    std::cout << "design has feedback loops; equalization applies to "
                 "feed-forward designs only\n";
    return 1;
  }
  const auto added = graph::equalize_paths(topo);
  std::cout << "# equalization added " << added << " spare stations\n"
            << graph::write_netlist(topo);
  return 0;
}

// ---- campaign subcommand --------------------------------------------------

struct CampaignArgs {
  campaign::EngineOptions engine;
  std::size_t station_lo = 1, station_hi = 4;
  std::vector<lip::StopPolicy> policies;  // empty = command default
  campaign::FuzzSpec::Shape shape = campaign::FuzzSpec::Shape::kComposite;
  /// Skeleton evaluator for screen/fuzz jobs (xir engines are verdict-
  /// identical to the interpreter); `eval_set` records an explicit
  /// --engine so modes with a different default (mix: sliced) keep it.
  xir::EngineMode eval = xir::EngineMode::kInterp;
  bool eval_set = false;
  std::size_t variants = 64;  ///< campaign mix: kind variants to screen
  std::string json_path;
  std::string csv_path;
  /// --shard i/N: run only the planned slice of the job vector (with
  /// global job identity) and export a liplib.dist.partial/1 document
  /// to `out_path` instead of the normal report.
  bool has_shard = false;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::string out_path;
  /// Canonical campaign identity for the shard manifest; filled by the
  /// per-mode command once defaults are resolved, so every process
  /// running the same command line renders the same string.
  std::string spec_id;
  std::vector<std::string> positional;
};

const char* policy_label(lip::StopPolicy p) {
  return p == lip::StopPolicy::kCarloniStrict ? "strict" : "variant";
}

const char* shape_label(campaign::FuzzSpec::Shape s) {
  switch (s) {
    case campaign::FuzzSpec::Shape::kReconvergent: return "reconvergent";
    case campaign::FuzzSpec::Shape::kComposite: return "composite";
    case campaign::FuzzSpec::Shape::kFeedforward: return "feedforward";
  }
  return "composite";
}

std::string policies_label(const std::vector<lip::StopPolicy>& ps) {
  std::string out;
  for (const auto p : ps) {
    if (!out.empty()) out += ',';
    out += policy_label(p);
  }
  return out;
}

/// stoull with a readable diagnostic ("--seed expects a number, got
/// 'xyz'") instead of the bare std::invalid_argument from the library.
/// Accepts 0x-prefixed hex (seeds are naturally quoted in hex: failure
/// reports print them that way); trailing garbage is always rejected,
/// so "1x" or "0x12g3" fail instead of silently truncating.
std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  try {
    const bool hex = text.size() > 2 && text[0] == '0' &&
                     (text[1] == 'x' || text[1] == 'X');
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(text, &used, hex ? 16 : 10);
    if (used != text.size()) {
      throw ApiError(what + " expects a number, got '" + text + "'");
    }
    return v;
  } catch (const ApiError&) {
    throw;
  } catch (const std::exception&) {
    throw ApiError(what + " expects a number, got '" + text + "'");
  }
}

/// Parses the flags shared by the campaign subcommands; throws ApiError
/// on malformed values so main() reports them uniformly.
CampaignArgs parse_campaign_args(int argc, char** argv, int first) {
  CampaignArgs args;
  args.engine.cycle_budget = 1u << 18;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> std::string {
      LIPLIB_EXPECT(i + 1 < argc,
                    std::string(flag) + " requires a value");
      return argv[++i];
    };
    if (a == "--threads") {
      args.engine.threads =
          static_cast<unsigned>(parse_u64(value("--threads"), "--threads"));
    } else if (a == "--seed") {
      args.engine.base_seed = parse_u64(value("--seed"), "--seed");
    } else if (a == "--budget") {
      args.engine.cycle_budget = parse_u64(value("--budget"), "--budget");
    } else if (a == "--stations") {
      const std::string v = value("--stations");
      const auto colon = v.find(':');
      LIPLIB_EXPECT(colon != std::string::npos,
                    "--stations expects LO:HI");
      args.station_lo =
          static_cast<std::size_t>(parse_u64(v.substr(0, colon), "--stations"));
      args.station_hi = static_cast<std::size_t>(
          parse_u64(v.substr(colon + 1), "--stations"));
      LIPLIB_EXPECT(args.station_lo >= 1 &&
                        args.station_lo <= args.station_hi,
                    "--stations range must satisfy 1 <= LO <= HI");
    } else if (a == "--policy") {
      const std::string v = value("--policy");
      if (v == "variant") {
        args.policies = {lip::StopPolicy::kCasuDiscardOnVoid};
      } else if (v == "strict") {
        args.policies = {lip::StopPolicy::kCarloniStrict};
      } else if (v == "both") {
        args.policies = {lip::StopPolicy::kCasuDiscardOnVoid,
                         lip::StopPolicy::kCarloniStrict};
      } else {
        throw ApiError("unknown policy '" + v + "'");
      }
    } else if (a == "--shape") {
      const std::string v = value("--shape");
      if (v == "composite") {
        args.shape = campaign::FuzzSpec::Shape::kComposite;
      } else if (v == "reconvergent") {
        args.shape = campaign::FuzzSpec::Shape::kReconvergent;
      } else if (v == "feedforward") {
        args.shape = campaign::FuzzSpec::Shape::kFeedforward;
      } else {
        throw ApiError("unknown fuzz shape '" + v + "'");
      }
    } else if (a == "--engine") {
      const std::string v = value("--engine");
      LIPLIB_EXPECT(xir::parse_engine_mode(v, &args.eval),
                    "unknown engine '" + v +
                        "' (expected interp | compiled | sliced)");
      args.eval_set = true;
    } else if (a == "--variants") {
      args.variants = static_cast<std::size_t>(
          parse_u64(value("--variants"), "--variants"));
      LIPLIB_EXPECT(args.variants >= 1, "--variants must be at least 1");
    } else if (a == "--json") {
      args.json_path = value("--json");
    } else if (a == "--csv") {
      args.csv_path = value("--csv");
    } else if (a == "--shard") {
      const auto [index, count] = dist::parse_shard_token(value("--shard"));
      args.has_shard = true;
      args.shard_index = index;
      args.shard_count = count;
    } else if (a == "--out") {
      args.out_path = value("--out");
    } else if (!a.empty() && a[0] == '-') {
      throw ApiError("unknown campaign option '" + a + "'");
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

/// Prints the outcome histogram, throughput distribution and failures
/// of an aggregate — shared by the run, merge and dist reports.
void print_aggregate_tables(const campaign::Aggregate& agg) {
  Table hist({"outcome", "jobs"});
  for (const auto& [o, n] : agg.outcomes) {
    if (n) hist.add_row({campaign::outcome_name(o), std::to_string(n)});
  }
  hist.print(std::cout);

  if (!agg.throughputs.empty()) {
    std::cout << "\nthroughput distribution (exact):\n\n";
    Table tp({"T", "jobs"});
    for (const auto& [t, n] : agg.throughputs) {
      tp.add_row({t.str(), std::to_string(n)});
    }
    tp.print(std::cout);
  }

  if (!agg.failures.empty()) {
    std::cout << "\nfailures (seed reproduces the job):\n\n";
    Table f({"job", "outcome", "seed", "detail"});
    const std::size_t show =
        std::min<std::size_t>(agg.failures.size(), 20);
    for (std::size_t i = 0; i < show; ++i) {
      const auto& r = agg.failures[i];
      f.add_row({r.name, campaign::outcome_name(r.outcome),
                 std::to_string(r.seed), r.detail});
    }
    f.print(std::cout);
    if (agg.failures.size() > show) {
      std::cout << "... and " << agg.failures.size() - show << " more\n";
    }
  }
}

/// `--shard i/N --out partial.json`: run only the planned slice of the
/// full job vector — with index_base = lo, so every job keeps its
/// global (index, seed) identity — and export the slice's aggregate as
/// a liplib.dist.partial/1 document for `lidtool merge`.
int run_shard_and_export(const std::vector<campaign::Job>& jobs,
                         const CampaignArgs& args) {
  LIPLIB_EXPECT(!args.out_path.empty(),
                "--shard requires --out FILE for the partial aggregate");
  const auto range =
      dist::shard_range(jobs.size(), args.shard_index, args.shard_count);
  const std::vector<campaign::Job> slice(
      jobs.begin() + static_cast<std::ptrdiff_t>(range.lo),
      jobs.begin() + static_cast<std::ptrdiff_t>(range.hi));
  campaign::EngineOptions eopts = args.engine;
  eopts.index_base = range.lo;
  campaign::RunStats stats;
  const auto results = campaign::Engine(eopts).run(slice, &stats);
  const auto agg = campaign::aggregate(results);
  const auto manifest = dist::make_manifest(
      args.spec_id, jobs.size(), eopts.base_seed, eopts.cycle_budget,
      xir::engine_mode_name(args.eval), range);
  std::ofstream os(args.out_path);
  if (!os) {
    std::cerr << "cannot write " << args.out_path << "\n";
    return 2;
  }
  os << dist::partial_to_json(manifest, agg).dump(2) << "\n";
  std::cout << "shard " << range.index << "/" << range.count << ": jobs ["
            << range.lo << ", " << range.hi << ") of " << jobs.size()
            << ", base seed " << eopts.base_seed << ", " << stats.threads
            << " thread(s), " << agg.total_cycles
            << " simulated cycles\nwrote " << args.out_path << "\n";
  return agg.all_live() ? 0 : 1;
}

/// Runs a job batch, prints the aggregate and failures, writes exports.
/// Returns 0 when every job is live.
int run_campaign_and_report(const std::vector<campaign::Job>& jobs,
                            const CampaignArgs& args) {
  if (args.has_shard || !args.out_path.empty()) {
    return run_shard_and_export(jobs, args);
  }
  campaign::RunStats stats;
  const auto results = campaign::Engine(args.engine).run(jobs, &stats);
  const auto agg = campaign::aggregate(results);

  std::cout << jobs.size() << " jobs on " << stats.threads
            << " worker thread(s), base seed " << args.engine.base_seed
            << ", " << stats.steals << " steals, " << agg.total_cycles
            << " simulated cycles, " << stats.wall_seconds << " s wall\n\n";

  print_aggregate_tables(agg);

  if (!args.json_path.empty()) {
    std::ofstream os(args.json_path);
    os << campaign::to_json(agg).dump(2) << "\n";
    std::cout << "\nwrote " << args.json_path << "\n";
  }
  if (!args.csv_path.empty()) {
    std::ofstream os(args.csv_path);
    os << campaign::to_csv(results);
    std::cout << "wrote " << args.csv_path << "\n";
  }
  return agg.all_live() ? 0 : 1;
}

/// `campaign sweep <file.lid>`: replicate the design's process-to-process
/// channels at every station count in the range, under each stop policy,
/// and measure the exact steady state of each variant.
int cmd_campaign_sweep(const graph::Topology& base, CampaignArgs args) {
  if (args.policies.empty()) {
    args.policies = {lip::StopPolicy::kCasuDiscardOnVoid,
                     lip::StopPolicy::kCarloniStrict};
  }
  args.spec_id = "lidtool/sweep;netlist=" +
                 std::to_string(serve::topology_hash(base)) +
                 ";stations=" + std::to_string(args.station_lo) + ":" +
                 std::to_string(args.station_hi) +
                 ";policies=" + policies_label(args.policies) +
                 ";engine=" + xir::engine_mode_name(args.eval);
  std::vector<campaign::Job> jobs;
  for (std::size_t k = args.station_lo; k <= args.station_hi; ++k) {
    graph::Topology variant = base;
    for (graph::ChannelId c = 0; c < variant.channels().size(); ++c) {
      auto& ch = variant.channel_mut(c);
      const bool between_processes =
          variant.node(ch.from.node).kind == graph::NodeKind::kProcess &&
          variant.node(ch.to.node).kind == graph::NodeKind::kProcess;
      if (between_processes) {
        const graph::RsKind kind =
            ch.stations.empty() ? graph::RsKind::kFull : ch.stations.front();
        ch.stations.assign(k, kind);
      }
    }
    for (auto policy : args.policies) {
      skeleton::SkeletonOptions opts;
      opts.policy = policy;
      jobs.push_back(campaign::make_steady_state_job(
          "sweep/st=" + std::to_string(k) + "/" + policy_label(policy),
          variant, opts, args.eval));
    }
  }
  return run_campaign_and_report(jobs, args);
}

/// `campaign fuzz <N>`: screen N randomized topologies, cross-checking
/// measured throughput against the analytic bounds.
int cmd_campaign_fuzz(std::size_t n, CampaignArgs args) {
  if (args.policies.empty()) {
    args.policies = {lip::StopPolicy::kCasuDiscardOnVoid};
  }
  args.spec_id = "lidtool/fuzz;n=" + std::to_string(n) +
                 ";shape=" + shape_label(args.shape) +
                 ";policies=" + policies_label(args.policies) +
                 ";engine=" + xir::engine_mode_name(args.eval);
  std::vector<campaign::Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    campaign::FuzzSpec spec;
    spec.shape = args.shape;
    spec.policy = args.policies[i % args.policies.size()];
    spec.engine = args.eval;
    spec.size = 4;
    jobs.push_back(campaign::make_fuzz_job(
        "fuzz/" + std::to_string(i) + "/" + policy_label(spec.policy),
        spec));
  }
  return run_campaign_and_report(jobs, args);
}

/// `campaign mix <file.lid>`: screen N random half/full station-kind
/// variants of one design from worst-case occupancy.  Under the sliced
/// engine (the default here) the campaign batches 64 variants per job
/// into one bit-parallel evaluation.
int cmd_campaign_mix(graph::Topology topo, CampaignArgs args) {
  campaign::MixScreenSpec spec;
  spec.topo = std::move(topo);
  if (!args.policies.empty()) spec.skeleton.policy = args.policies.front();
  spec.variants = args.variants;
  spec.engine = args.eval_set ? args.eval : xir::EngineMode::kSliced;
  args.eval = spec.engine;  // the manifest names the engine actually run
  args.spec_id = "lidtool/mix;netlist=" +
                 std::to_string(serve::topology_hash(spec.topo)) +
                 ";variants=" + std::to_string(spec.variants) +
                 ";policy=" + policy_label(spec.skeleton.policy) +
                 ";engine=" + xir::engine_mode_name(spec.engine);
  std::cout << "screening " << spec.variants
            << " station-kind variants, engine "
            << xir::engine_mode_name(spec.engine) << "\n\n";
  return run_campaign_and_report(campaign::make_mix_screen_campaign(spec),
                                 args);
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "campaign requires a mode: "
                 "sweep | fuzz | lint | probe | prove | mix | t1\n"
              << kUsage;
    return 2;
  }
  const std::string mode = argv[2];
  auto args = parse_campaign_args(argc, argv, 3);
  if (mode == "sweep") {
    if (args.positional.size() != 1) {
      std::cerr << "campaign sweep requires exactly one <file.lid>\n";
      return 2;
    }
    std::ifstream in(args.positional[0]);
    if (!in) {
      std::cerr << "cannot open " << args.positional[0] << "\n";
      return 2;
    }
    return cmd_campaign_sweep(graph::parse_netlist_annotated(in).topo,
                              std::move(args));
  }
  if (mode == "fuzz") {
    if (args.positional.size() != 1) {
      std::cerr << "campaign fuzz requires a job count\n";
      return 2;
    }
    // Evaluated before the move below (argument order is unspecified).
    const std::size_t n =
        static_cast<std::size_t>(parse_u64(args.positional[0], "fuzz count"));
    return cmd_campaign_fuzz(n, std::move(args));
  }
  if (mode == "lint") {
    if (args.positional.size() != 1) {
      std::cerr << "campaign lint requires a job count\n";
      return 2;
    }
    const std::size_t n =
        static_cast<std::size_t>(parse_u64(args.positional[0], "lint count"));
    args.spec_id = "lidtool/lint;n=" + std::to_string(n);
    return run_campaign_and_report(campaign::make_lint_crosscheck_campaign(n),
                                   args);
  }
  if (mode == "probe") {
    if (args.positional.size() != 1) {
      std::cerr << "campaign probe requires a job count\n";
      return 2;
    }
    const std::size_t n =
        static_cast<std::size_t>(parse_u64(args.positional[0], "probe count"));
    args.spec_id = "lidtool/probe;n=" + std::to_string(n);
    return run_campaign_and_report(campaign::make_probe_campaign(n), args);
  }
  if (mode == "prove") {
    if (args.positional.size() != 1) {
      std::cerr << "campaign prove requires a job count\n";
      return 2;
    }
    const std::size_t n =
        static_cast<std::size_t>(parse_u64(args.positional[0], "prove count"));
    args.spec_id = "lidtool/prove;n=" + std::to_string(n);
    return run_campaign_and_report(campaign::make_prove_crosscheck_campaign(n),
                                   args);
  }
  if (mode == "mix") {
    if (args.positional.size() != 1) {
      std::cerr << "campaign mix requires exactly one <file.lid>\n";
      return 2;
    }
    std::ifstream in(args.positional[0]);
    if (!in) {
      std::cerr << "cannot open " << args.positional[0] << "\n";
      return 2;
    }
    return cmd_campaign_mix(graph::parse_netlist_annotated(in).topo,
                            std::move(args));
  }
  if (mode == "t1") {
    std::cout << "EXPERIMENTS.md T1 fuzz pass: 300 random reconvergences "
                 "x 2 policies + 150 random composites = 750 runs\n\n";
    args.spec_id = "lidtool/t1";
    return run_campaign_and_report(campaign::make_t1_fuzz_campaign(), args);
  }
  std::cerr << "unknown campaign mode '" << mode << "'\n" << kUsage;
  return 2;
}

// ---- merge / dist subcommands ---------------------------------------------

/// `lidtool merge a.json b.json ...`: deterministic reunion of shard
/// partials.  Validates the manifests (same campaign, ranges tile the
/// whole job vector), folds the aggregates with campaign::merge and
/// writes/prints the result — byte-identical to the single-process
/// `campaign ... --json` document.
int cmd_merge(int argc, char** argv) {
  std::vector<std::string> files;
  std::string json_path;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      LIPLIB_EXPECT(i + 1 < argc, "--json requires a file name");
      json_path = argv[++i];
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown merge option '" << a << "'\n\n" << kUsage;
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::cerr << "merge requires at least one partial.json\n\n" << kUsage;
    return 2;
  }
  std::vector<dist::Partial> parts;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot open " << file << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    parts.push_back(dist::partial_from_json(Json::parse(ss.str())));
  }
  const std::string campaign_spec = parts.front().manifest.campaign;
  const auto agg = dist::merge_partials(std::move(parts));
  std::cout << "merged " << files.size() << " partial(s) of campaign '"
            << campaign_spec << "': " << agg.total << " jobs, "
            << agg.total_cycles << " simulated cycles\n\n";
  print_aggregate_tables(agg);
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    os << campaign::to_json(agg).dump(2) << "\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return agg.all_live() ? 0 : 1;
}

/// `lidtool dist coordinate <mode> <jobs>`: run the straggler-aware
/// coordinator for a named campaign and print the merged aggregate.
int cmd_dist_coordinate(int argc, char** argv) {
  dist::CoordinatorOptions opts;
  std::string json_path;
  std::string trace_path;
  std::vector<std::string> positional;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> std::string {
      LIPLIB_EXPECT(i + 1 < argc, std::string(flag) + " requires a value");
      return argv[++i];
    };
    if (a == "--port") {
      opts.port =
          static_cast<std::uint16_t>(parse_u64(value("--port"), "--port"));
    } else if (a == "--shards") {
      opts.shards =
          static_cast<std::size_t>(parse_u64(value("--shards"), "--shards"));
      LIPLIB_EXPECT(opts.shards >= 1, "--shards must be at least 1");
    } else if (a == "--seed") {
      opts.base_seed = parse_u64(value("--seed"), "--seed");
    } else if (a == "--budget") {
      opts.cycle_budget = parse_u64(value("--budget"), "--budget");
    } else if (a == "--lease-ms") {
      opts.lease_ms = parse_u64(value("--lease-ms"), "--lease-ms");
    } else if (a == "--policy") {
      const std::string v = value("--policy");
      if (v == "strict") {
        opts.spec.policy = lip::StopPolicy::kCarloniStrict;
      } else if (v == "variant") {
        opts.spec.policy = lip::StopPolicy::kCasuDiscardOnVoid;
      } else {
        throw ApiError("unknown policy '" + v + "'");
      }
    } else if (a == "--shape") {
      const std::string v = value("--shape");
      if (v == "composite") {
        opts.spec.shape = campaign::FuzzSpec::Shape::kComposite;
      } else if (v == "reconvergent") {
        opts.spec.shape = campaign::FuzzSpec::Shape::kReconvergent;
      } else if (v == "feedforward") {
        opts.spec.shape = campaign::FuzzSpec::Shape::kFeedforward;
      } else {
        throw ApiError("unknown fuzz shape '" + v + "'");
      }
    } else if (a == "--engine") {
      const std::string v = value("--engine");
      LIPLIB_EXPECT(xir::parse_engine_mode(v, &opts.spec.engine),
                    "unknown engine '" + v +
                        "' (expected interp | compiled | sliced)");
    } else if (a == "--json") {
      json_path = value("--json");
    } else if (a == "--trace") {
      trace_path = value("--trace");
      opts.trace = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown dist coordinate option '" << a << "'\n\n"
                << kUsage;
      return 2;
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2) {
    std::cerr << "dist coordinate requires <fuzz|lint|probe|prove> "
                 "<jobs>\n\n"
              << kUsage;
    return 2;
  }
  opts.spec.mode = positional[0];
  opts.spec.jobs =
      static_cast<std::size_t>(parse_u64(positional[1], "dist jobs"));
  LIPLIB_EXPECT(opts.spec.jobs >= 1, "dist jobs must be at least 1");

  dist::Coordinator coord(opts);
  coord.start();
  std::cout << "liplib.dist/1 coordinating '"
            << dist::named_campaign_to_string(opts.spec) << "' on 127.0.0.1:"
            << coord.port() << " (" << opts.shards
            << " shard(s), lease " << opts.lease_ms
            << " ms); workers: `lidtool dist work --port " << coord.port()
            << "`\n"
            << std::flush;
  const auto agg = coord.wait();
  const auto stats = coord.stats();
  std::cout << "campaign done: " << stats.shards_done << "/"
            << stats.shards_total << " shards, " << stats.leases_issued
            << " lease(s), " << stats.redispatches << " re-dispatch(es), "
            << stats.duplicates << " duplicate(s), " << stats.bytes_merged
            << " bytes merged\n\n";
  print_aggregate_tables(agg);
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "cannot write " << json_path << "\n";
      return 2;
    }
    os << campaign::to_json(agg).dump(2) << "\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 2;
    }
    os << coord.trace_json().dump(2) << "\n";
    std::cout << "wrote " << trace_path
              << " (merge/export with `lidtool trace " << trace_path
              << " -o out.json`)\n";
  }
  return agg.all_live() ? 0 : 1;
}

/// `lidtool dist work`: pull shard leases from a coordinator until the
/// campaign is done.
int cmd_dist_work(int argc, char** argv) {
  dist::WorkerOptions opts;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> std::string {
      LIPLIB_EXPECT(i + 1 < argc, std::string(flag) + " requires a value");
      return argv[++i];
    };
    if (a == "--port") {
      opts.port =
          static_cast<std::uint16_t>(parse_u64(value("--port"), "--port"));
    } else if (a == "--threads") {
      opts.threads =
          static_cast<unsigned>(parse_u64(value("--threads"), "--threads"));
    } else if (a == "--die-after-lease") {
      opts.die_after_lease = static_cast<std::size_t>(
          parse_u64(value("--die-after-lease"), "--die-after-lease"));
    } else {
      std::cerr << "unknown dist work option '" << a << "'\n\n" << kUsage;
      return 2;
    }
  }
  if (opts.port == 0) {
    std::cerr << "dist work requires --port <coordinator port>\n\n" << kUsage;
    return 2;
  }
  const auto stats = dist::run_worker(opts);
  std::cout << "worker done: " << stats.leases << " lease(s), "
            << stats.submitted << " partial(s) submitted, " << stats.rejected
            << " dropped as duplicate(s)"
            << (stats.coordinator_gone ? ", coordinator gone" : "") << "\n";
  return 0;
}

int cmd_dist(int argc, char** argv) {
  const std::string sub = argc >= 3 ? argv[2] : "";
  if (sub == "coordinate") return cmd_dist_coordinate(argc, argv);
  if (sub == "work") return cmd_dist_work(argc, argv);
  std::cerr << "dist requires a role: coordinate | work\n\n" << kUsage;
  return 2;
}

// ---- trace subcommand -----------------------------------------------------

/// One length-prefixed JSON round trip against a loopback daemon (serve
/// or dist coordinator — both use liplib.rpc/1 framing).  Throws
/// ApiError when the peer is unreachable or answers garbage.
Json loopback_rpc(std::uint16_t port, const Json& request,
                  const char* who) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  LIPLIB_EXPECT(fd >= 0, std::string("socket failed: ") +
                             std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw ApiError(std::string("cannot connect to ") + who +
                   " on 127.0.0.1:" + std::to_string(port) + ": " +
                   std::strerror(err));
  }
  try {
    serve::write_frame(fd, request.dump());
    std::string payload;
    LIPLIB_EXPECT(serve::read_frame(fd, payload),
                  std::string(who) +
                      " closed the connection without answering");
    ::close(fd);
    return Json::parse(payload);
  } catch (...) {
    ::close(fd);
    throw;
  }
}

/// `lidtool trace`: fold span documents (files and/or live scrapes) and
/// Chrome/Perfetto trace files into one timeline; check integrity;
/// optionally export merged Perfetto JSON.
int cmd_trace(int argc, char** argv) {
  std::vector<std::string> files;
  std::string out_path;
  bool check = false;
  std::uint64_t scrape_port = 0;
  std::uint64_t scrape_dist = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> std::string {
      LIPLIB_EXPECT(i + 1 < argc, std::string(flag) + " requires a value");
      return argv[++i];
    };
    if (a == "-o") {
      out_path = value("-o");
    } else if (a == "--scrape") {
      scrape_port = parse_u64(value("--scrape"), "--scrape");
    } else if (a == "--scrape-dist") {
      scrape_dist = parse_u64(value("--scrape-dist"), "--scrape-dist");
    } else if (a == "--check") {
      check = true;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown trace option '" << a << "'\n\n" << kUsage;
      return 2;
    } else {
      files.push_back(a);
    }
  }

  std::vector<trace::Span> spans;
  std::vector<std::string> raw_events;  // spliced Chrome events, verbatim
  auto fold_doc = [&](const Json& doc, const std::string& origin) {
    if (doc.is_object()) {
      if (const Json* schema = doc.find("schema")) {
        if (schema->is_string() &&
            schema->as_string() == trace::kTraceSchema) {
          for (trace::Span& s : trace::spans_from_json(doc)) {
            spans.push_back(std::move(s));
          }
          return;
        }
      }
      if (const Json* ev = doc.find("traceEvents")) {
        LIPLIB_EXPECT(ev->is_array(),
                      origin + ": 'traceEvents' must be an array");
        for (const Json& e : ev->elements()) raw_events.push_back(e.dump());
        return;
      }
    }
    if (doc.is_array()) {  // bare Chrome JSON Array Format
      for (const Json& e : doc.elements()) raw_events.push_back(e.dump());
      return;
    }
    throw ApiError(origin + ": neither a " + trace::kTraceSchema +
                   " document nor Chrome trace JSON");
  };

  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot open " << file << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    fold_doc(Json::parse(ss.str()), file);
  }
  if (scrape_port) {
    const Json response = loopback_rpc(
        static_cast<std::uint16_t>(scrape_port),
        Json::object().set("rpc", serve::kRpcSchema).set("kind", "trace"),
        "serve daemon");
    const Json* ok = response.find("ok");
    LIPLIB_EXPECT(ok && ok->is_bool() && ok->as_bool(),
                  "serve daemon rejected the trace scrape");
    const Json* result = response.find("result");
    LIPLIB_EXPECT(result, "trace response carries no result");
    fold_doc(*result, "serve scrape");
  }
  if (scrape_dist) {
    const Json response = loopback_rpc(
        static_cast<std::uint16_t>(scrape_dist),
        Json::object().set("rpc", dist::kDistRpcSchema).set("msg", "trace"),
        "dist coordinator");
    const Json* doc = response.find("doc");
    LIPLIB_EXPECT(doc, "coordinator trace response carries no 'doc'");
    fold_doc(*doc, "dist scrape");
  }

  std::string err;
  const bool sound = trace::check_integrity(spans, &err);
  std::vector<std::uint64_t> traces;
  for (const auto& s : spans) traces.push_back(s.trace_id);
  std::sort(traces.begin(), traces.end());
  traces.erase(std::unique(traces.begin(), traces.end()), traces.end());
  std::cout << spans.size() << " span(s) across " << traces.size()
            << " trace(s), " << raw_events.size()
            << " spliced probe event(s); integrity "
            << (sound ? "ok" : "BROKEN: " + err) << "\n";

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "cannot write " << out_path << "\n";
      return 2;
    }
    probe::TraceSink sink(os);
    trace::export_perfetto(spans, sink);
    for (const auto& e : raw_events) sink.raw_event(e);
    sink.finish();
    std::cout << "wrote " << out_path << " (" << sink.bytes_written()
              << " bytes; open at ui.perfetto.dev)\n";
  }
  return sound ? 0 : (check ? 1 : 0);
}

// ---- serve / client subcommands -------------------------------------------

int cmd_serve(int argc, char** argv) {
  serve::ServerOptions opts;
  opts.port = 7177;
  std::uint64_t ttl_s = 600;
  std::uint64_t cache_mb = 64;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> std::string {
      LIPLIB_EXPECT(i + 1 < argc, std::string(flag) + " requires a value");
      return argv[++i];
    };
    if (a == "--port") {
      opts.port = static_cast<std::uint16_t>(
          parse_u64(value("--port"), "--port"));
    } else if (a == "--threads") {
      opts.threads =
          static_cast<unsigned>(parse_u64(value("--threads"), "--threads"));
    } else if (a == "--cache-mb") {
      cache_mb = parse_u64(value("--cache-mb"), "--cache-mb");
    } else if (a == "--ttl") {
      ttl_s = parse_u64(value("--ttl"), "--ttl");
    } else if (a == "--budget") {
      opts.default_budget = parse_u64(value("--budget"), "--budget");
      opts.max_budget = std::max(opts.max_budget, opts.default_budget);
    } else {
      std::cerr << "unknown serve option '" << a << "'\n\n" << kUsage;
      return 2;
    }
  }
  opts.cache.capacity_bytes = static_cast<std::size_t>(cache_mb) << 20;
  opts.cache.ttl_ms = ttl_s * 1000;

  serve::Server server(opts);
  server.start();
  std::cout << "liplib.rpc/1 serving on 127.0.0.1:" << server.port()
            << " (cache " << cache_mb << " MiB, ttl "
            << (ttl_s == 0 ? std::string("off") : std::to_string(ttl_s) + " s")
            << ", budget " << opts.default_budget
            << "); stop with `lidtool client shutdown --port "
            << server.port() << "`\n"
            << std::flush;
  server.wait();
  const auto stats = server.context().cache.stats();
  std::cout << "drained: served "
            << server.context().requests_total.value() << " request(s), "
            << stats.hits << " cache hit(s), " << stats.evictions
            << " eviction(s)\n";
  return 0;
}

int cmd_client(int argc, char** argv) {
  std::uint16_t port = 7177;
  Json request = Json::object().set("rpc", serve::kRpcSchema);
  std::string kind;
  std::string trace_out;
  std::vector<std::string> positional;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> std::string {
      LIPLIB_EXPECT(i + 1 < argc, std::string(flag) + " requires a value");
      return argv[++i];
    };
    if (a == "--port") {
      port = static_cast<std::uint16_t>(parse_u64(value("--port"), "--port"));
    } else if (a == "--policy") {
      request.set("policy", value("--policy"));
    } else if (a == "--engine") {
      request.set("engine", value("--engine"));
    } else if (a == "--budget") {
      request.set("budget", parse_u64(value("--budget"), "--budget"));
    } else if (a == "--cycles") {
      request.set("cycles", parse_u64(value("--cycles"), "--cycles"));
    } else if (a == "--seed") {
      request.set("seed", parse_u64(value("--seed"), "--seed"));
    } else if (a == "--method") {
      request.set("method", value("--method"));
    } else if (a == "--depth") {
      request.set("depth", parse_u64(value("--depth"), "--depth"));
    } else if (a == "--worst-case") {
      request.set("worst_case", true);
    } else if (a == "--coordinator") {
      request.set("port",
                  parse_u64(value("--coordinator"), "--coordinator"));
    } else if (a == "--id") {
      request.set("id", value("--id"));
    } else if (a == "--trace") {
      trace_out = value("--trace");
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "unknown client option '" << a << "'\n\n" << kUsage;
      return 2;
    } else if (kind.empty()) {
      kind = a;
    } else {
      positional.push_back(a);
    }
  }
  if (kind.empty()) {
    std::cerr << "client requires a request kind: lint | screen | profile | "
                 "prove | campaign | status | shutdown | dist-status | "
                 "metrics | trace\n\n"
              << kUsage;
    return 2;
  }
  request.set("kind", kind);
  if (kind == "lint" || kind == "screen" || kind == "profile" ||
      kind == "prove") {
    if (positional.size() != 1) {
      std::cerr << "client " << kind << " requires exactly one <file.lid>\n";
      return 2;
    }
    std::ifstream in(positional[0]);
    if (!in) {
      std::cerr << "cannot open " << positional[0] << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    request.set("netlist", ss.str());
  } else if (kind == "campaign") {
    if (positional.size() != 2) {
      std::cerr << "client campaign requires <fuzz|lint|probe|prove> "
                   "<jobs>\n";
      return 2;
    }
    request.set("mode", positional[0]);
    request.set("jobs", parse_u64(positional[1], "campaign jobs"));
  } else if (kind == "status" || kind == "shutdown" ||
             kind == "dist-status" || kind == "metrics" || kind == "trace") {
    if (!positional.empty()) {
      std::cerr << "client " << kind << " takes no arguments\n";
      return 2;
    }
  } else {
    std::cerr << "unknown client request kind '" << kind << "'\n\n" << kUsage;
    return 2;
  }

  // --trace: derive a client-side trace context from the request bytes
  // (before the trace member joins them, so the id is reproducible from
  // the request alone) and hand it to the daemon, which parents its
  // serve-side spans under ours.
  trace::Recorder client_rec;
  std::uint64_t client_trace_id = 0;
  std::uint64_t client_span = 0;
  std::uint64_t client_t0 = 0;
  if (!trace_out.empty()) {
    client_trace_id = trace::derive_trace_id(serve::fnv1a64(request.dump()));
    client_span = trace::derive_span_id(client_trace_id, 0, 0);
    request.set("trace",
                trace::TraceContext{client_trace_id, client_span}.to_json());
    client_t0 = client_rec.now_us();
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "socket failed: " << std::strerror(errno) << "\n";
    return 2;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::cerr << "cannot connect to 127.0.0.1:" << port << ": "
              << std::strerror(errno) << " (is `lidtool serve` running?)\n";
    ::close(fd);
    return 2;
  }
  int rc = 2;
  try {
    serve::write_frame(fd, request.dump());
    std::string payload;
    if (!serve::read_frame(fd, payload)) {
      throw ApiError("server closed the connection without answering");
    }
    const Json response = Json::parse(payload);
    const Json* ok = response.find("ok");
    const bool succeeded = ok && ok->is_bool() && ok->as_bool();
    const Json* result = response.find("result");
    if (kind == "metrics" && succeeded && result) {
      // Prometheus exposition is a text format: print it raw so the
      // output pipes straight into promtool / a scrape file.
      const Json* text = result->find("text");
      LIPLIB_EXPECT(text && text->is_string(),
                    "metrics response carries no text");
      std::cout << text->as_string();
    } else {
      std::cout << response.dump(2) << "\n";
    }
    if (succeeded) {
      rc = 0;
      if (result) {
        if (const Json* verdict = result->find("verdict")) {
          const std::string& v = verdict->as_string();
          if (v != "live" && v != "clean" && v != "all_live" &&
              v != "proved") {
            rc = 1;
          }
        }
      }
    }
    if (!trace_out.empty()) {
      trace::Span s;
      s.trace_id = client_trace_id;
      s.span_id = client_span;
      s.name = "client." + kind;
      s.category = "client";
      s.track = "client";
      s.ts_us = client_t0;
      s.dur_us = client_rec.now_us() - client_t0;
      s.attrs.emplace_back("ok", succeeded ? "true" : "false");
      client_rec.record(std::move(s));
      std::ofstream os(trace_out);
      if (!os) {
        std::cerr << "cannot write " << trace_out << "\n";
        rc = 2;
      } else {
        os << client_rec.to_json().dump(2) << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 2;
  }
  ::close(fd);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc >= 2 ? argv[1] : "";
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      std::cout << kUsage;
      return 0;
    }
    if (cmd == "campaign") return cmd_campaign(argc, argv);
    if (cmd == "merge") return cmd_merge(argc, argv);
    if (cmd == "dist") return cmd_dist(argc, argv);
    if (cmd == "bench") return cmd_bench(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "client") return cmd_client(argc, argv);
    if (cmd == "trace") return cmd_trace(argc, argv);

    graph::Topology topo;
    // Arguments after the netlist file; every command must consume all
    // of them — unknown trailing flags are rejected, not ignored.
    std::vector<std::string> rest;
    for (int i = 3; i < argc; ++i) rest.emplace_back(argv[i]);
    auto reject_extras = [&](const char* command) {
      if (rest.empty()) return false;
      std::cerr << "unknown argument '" << rest.front() << "' for '"
                << command << "'\n\n"
                << kUsage;
      return true;
    };
    if (argc >= 3) {
      if (std::string(argv[2]) == "--help" || std::string(argv[2]) == "-h") {
        std::cout << kUsage;
        return 0;
      }
      std::ifstream in(argv[2]);
      if (!in) {
        std::cerr << "cannot open " << argv[2] << "\n";
        return 2;
      }
      if (cmd == "run") {
        std::uint64_t cycles = 1000;
        std::string pm_path;
        bool have_cycles = false;
        for (std::size_t i = 0; i < rest.size(); ++i) {
          if (rest[i] == "--postmortem") {
            LIPLIB_EXPECT(i + 1 < rest.size(),
                          "--postmortem requires a file name");
            pm_path = rest[++i];
          } else if (!have_cycles && !rest[i].empty() && rest[i][0] != '-') {
            cycles = parse_u64(rest[i], "run cycle count");
            have_cycles = true;
          } else {
            std::cerr << "unknown argument '" << rest[i] << "' for 'run'\n\n"
                      << kUsage;
            return 2;
          }
        }
        return cmd_run(in, cycles, pm_path);
      }
      if (cmd == "profile") return cmd_profile(in, rest);
      if (cmd == "replay") {
        if (!rest.empty()) {
          std::cerr << "unknown argument '" << rest.front()
                    << "' for 'replay'\n\n"
                    << kUsage;
          return 2;
        }
        return cmd_replay(in);
      }
      // Structural commands accept annotated files too.
      topo = graph::parse_netlist_annotated(in).topo;
    } else if (argc >= 2) {
      // A command without its file argument (or a typo'd command).
      std::cerr << "missing or unknown arguments for '" << cmd << "'\n\n"
                << kUsage;
      return 2;
    } else {
      std::cout << kUsage
                << "\nrunning the full demo on the built-in Fig. 1 "
                   "design:\n\n";
      topo = graph::parse_netlist_string(kFig1Netlist);
      std::cout << "--- validate ---\n";
      cmd_validate(topo);
      std::cout << "--- lint ---\n";
      cmd_lint(topo, /*json=*/false, /*fix=*/false, "");
      std::cout << "--- analyze ---\n";
      cmd_analyze(topo);
      std::cout << "--- simulate ---\n";
      cmd_simulate(topo, {});
      std::cout << "--- screen ---\n";
      cmd_screen(topo);
      std::cout << "--- equalize ---\n";
      return cmd_equalize(std::move(topo));
    }
    if (cmd == "lint") {
      bool json = false;
      bool fix = false;
      std::string out_path;
      for (std::size_t i = 0; i < rest.size(); ++i) {
        if (rest[i] == "--json") {
          json = true;
        } else if (rest[i] == "--fix") {
          fix = true;
        } else if (rest[i] == "-o") {
          LIPLIB_EXPECT(i + 1 < rest.size(), "-o requires a file name");
          out_path = rest[++i];
        } else {
          std::cerr << "unknown lint option '" << rest[i] << "'\n\n"
                    << kUsage;
          return 2;
        }
      }
      return cmd_lint(topo, json, fix, out_path);
    }
    if (cmd == "validate") {
      if (reject_extras("validate")) return 2;
      return cmd_validate(topo);
    }
    if (cmd == "analyze") {
      if (reject_extras("analyze")) return 2;
      return cmd_analyze(topo);
    }
    if (cmd == "simulate") {
      return cmd_simulate(topo, rest);
    }
    if (cmd == "screen") {
      xir::EngineMode engine = xir::EngineMode::kInterp;
      for (std::size_t i = 0; i < rest.size(); ++i) {
        if (rest[i] == "--engine") {
          LIPLIB_EXPECT(i + 1 < rest.size(), "--engine requires a value");
          const std::string v = rest[++i];
          LIPLIB_EXPECT(xir::parse_engine_mode(v, &engine),
                        "unknown engine '" + v +
                            "' (expected interp | compiled | sliced)");
        } else {
          std::cerr << "unknown screen option '" << rest[i] << "'\n\n"
                    << kUsage;
          return 2;
        }
      }
      return cmd_screen(topo, engine);
    }
    if (cmd == "prove") {
      return cmd_prove(topo, rest);
    }
    if (cmd == "cure") {
      if (reject_extras("cure")) return 2;
      return cmd_cure(topo);
    }
    if (cmd == "equalize") {
      if (reject_extras("equalize")) return 2;
      return cmd_equalize(std::move(topo));
    }
    if (cmd == "flow") {
      if (reject_extras("flow")) return 2;
      return cmd_flow(topo);
    }
    if (cmd == "dot") {
      if (reject_extras("dot")) return 2;
      std::cout << topo.to_dot();
      return 0;
    }
    std::cerr << "unknown command '" << cmd << "'\n\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
