// video_pipeline — a block-based media pipeline as a latency-insensitive
// design: the full workflow on a realistic SoC dataflow.
//
//   camera ─▶ split ─▶ transform ─▶ quantize ─▶ rle ─┐
//                 │                                   ├─▶ blend ─▶ display
//                 └────────(short preview route)──────┘
//
// The two routes to the blender have very different physical lengths, so
// wire planning inserts different relay-station counts; the run shows
// (1) the throughput penalty predicted by the paper's (m−i)/m formula,
// (2) recovery via path equalization, (3) exact agreement between the
// latency-insensitive execution and the ideal zero-latency system on the
// actual coded stream, and (4) per-channel utilization statistics.
//
//   $ ./video_pipeline

#include <iostream>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/wire_plan.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/pearls/pearls.hpp"
#include "liplib/pearls/video.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

struct Pipeline {
  graph::Topology topo;
  graph::NodeId camera, split, transform, quant, rle, blend, display;
  std::vector<double> wires;
};

Pipeline build() {
  Pipeline p;
  p.camera = p.topo.add_source("camera");
  p.split = p.topo.add_process("split", 1, 2);
  p.transform = p.topo.add_process("transform", 1, 1);
  p.quant = p.topo.add_process("quant", 1, 1);
  p.rle = p.topo.add_process("rle", 1, 1);
  p.blend = p.topo.add_process("blend", 2, 1);
  p.display = p.topo.add_sink("display");
  p.wires.resize(7);
  p.wires[p.topo.connect({p.camera, 0}, {p.split, 0})] = 0.8;
  p.wires[p.topo.connect({p.split, 0}, {p.transform, 0})] = 1.3;
  p.wires[p.topo.connect({p.transform, 0}, {p.quant, 0})] = 2.4;
  p.wires[p.topo.connect({p.quant, 0}, {p.rle, 0})] = 1.7;
  p.wires[p.topo.connect({p.rle, 0}, {p.blend, 0})] = 3.2;
  p.wires[p.topo.connect({p.split, 1}, {p.blend, 1})] = 1.2;
  p.wires[p.topo.connect({p.blend, 0}, {p.display, 0})] = 0.6;
  return p;
}

lip::Design bind(const Pipeline& p) {
  lip::Design d(p.topo);
  d.set_pearl(p.split, pearls::make_fork2());
  d.set_pearl(p.transform, pearls::make_block_transform8());
  d.set_pearl(p.quant, pearls::make_quantizer(4));
  d.set_pearl(p.rle, pearls::make_rle_marker());
  d.set_pearl(p.blend, pearls::make_blender(192));
  // A synthetic frame: a slow ramp with texture, so the quantizer
  // produces zero runs for the RLE stage.
  d.set_source(p.camera, {[](std::uint64_t k) {
                            return (k / 7) % 32 + ((k % 5 == 0) ? 9u : 0u);
                          },
                          [](std::uint64_t) { return true; }});
  return d;
}

}  // namespace

int main() {
  std::cout << "Block-based video pipeline as a latency-insensitive design\n\n";

  // --- wire planning without equalization: the raw penalty ------------
  Pipeline raw = build();
  graph::WirePlanOptions no_eq;
  no_eq.equalize = false;
  const auto plan = graph::plan_wire_pipelining(raw.topo, raw.wires, no_eq);
  std::cout << "wire planning inserted " << plan.stations_inserted
            << " relay stations (" << plan.full_count << " full, "
            << plan.half_count << " half; " << plan.registers()
            << " registers)\n";
  const auto pred = graph::predict_throughput(raw.topo);
  std::cout << "paper formula predicts T = " << pred.system().str() << "\n";

  auto d = bind(raw);
  auto sys = d.instantiate();
  const auto ss = lip::measure_steady_state(*sys);
  std::cout << "measured             T = " << ss.system_throughput().str()
            << " (transient " << ss.transient << ", period " << ss.period
            << ")\n";
  const auto equiv = lip::check_latency_equivalence(d, {}, 600);
  std::cout << "coded stream matches the zero-latency system: "
            << (equiv.ok ? "yes" : "NO") << " (" << equiv.tokens_checked
            << " tokens)\n\n";

  // --- with equalization ----------------------------------------------
  Pipeline eq = build();
  const auto plan_eq = graph::plan_wire_pipelining(eq.topo, eq.wires, {});
  auto d_eq = bind(eq);
  auto sys_eq = d_eq.instantiate();
  const auto ss_eq = lip::measure_steady_state(*sys_eq);
  std::cout << "with " << plan_eq.spare_inserted
            << " spare stations (path equalization): T = "
            << ss_eq.system_throughput().str() << "\n\n";

  // --- utilization under a throttled display ---------------------------
  Pipeline throttled = build();
  graph::plan_wire_pipelining(throttled.topo, throttled.wires, {});
  auto d_thr = bind(throttled);
  d_thr.set_sink(throttled.display, lip::SinkBehavior::periodic(2));
  auto sys_thr = d_thr.instantiate();
  sys_thr->record_segment_stats(true);
  sys_thr->run(2000);
  Table t({"channel", "hop", "utilization", "stops/cycle"});
  for (graph::ChannelId c = 0; c < d_thr.topology().channels().size(); ++c) {
    const auto& ch = d_thr.topology().channel(c);
    const auto stats = sys_thr->segment_stats(c);
    for (std::size_t h = 0; h < stats.size(); ++h) {
      char util[16], stop[16];
      std::snprintf(util, sizeof util, "%.2f", stats[h].utilization());
      std::snprintf(stop, sizeof stop, "%.2f",
                    static_cast<double>(stats[h].stop_cycles) /
                        static_cast<double>(stats[h].cycles));
      t.add_row({d_thr.topology().node(ch.from.node).name + "->" +
                     d_thr.topology().node(ch.to.node).name,
                 std::to_string(h), util, stop});
    }
  }
  std::cout << "utilization with the display consuming every 2nd cycle:\n";
  t.print(std::cout);

  // A glimpse of the coded output itself.
  std::cout << "\nfirst coded words at the display: ";
  const auto& stream = sys_thr->sink_stream(throttled.display);
  for (std::size_t i = 0; i < 6 && i < stream.size(); ++i) {
    std::cout << "0x" << std::hex << stream[i].data << std::dec << ' ';
  }
  std::cout << "\n";
  return 0;
}
