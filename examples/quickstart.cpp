// quickstart — the 60-second tour of liplib.
//
// Builds a tiny latency-insensitive design (a producer feeding a filter
// across a "long wire" pipelined by relay stations), runs it, checks it
// against the ideal zero-latency system and prints its exact throughput.
//
//   $ ./quickstart

#include <iostream>

#include "liplib/graph/topology.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/pearls/pearls.hpp"

int main() {
  using namespace liplib;

  // 1. Describe the structure: nodes and channels.  The channel from the
  //    filter to the scaler is a long wire needing two clock cycles, so
  //    it carries two relay stations (one full, one half).
  graph::Topology topo;
  const auto src = topo.add_source("producer");
  const auto fir = topo.add_process("fir", 1, 1);
  const auto scale = topo.add_process("scale", 1, 1);
  const auto out = topo.add_sink("consumer");
  topo.connect({src, 0}, {fir, 0});
  topo.connect({fir, 0}, {scale, 0},
               {graph::RsKind::kFull, graph::RsKind::kHalf});
  topo.connect({scale, 0}, {out, 0});

  // 2. Check the structure: the library enforces the paper's rule that
  //    two shells are always separated by at least one relay station.
  const auto report = topo.validate();
  std::cout << "validate: " << (report.ok() ? "ok" : report.to_string());

  // 3. Bind behaviour: plain synchronous pearls, no protocol knowledge.
  lip::Design design(std::move(topo));
  design.set_pearl(fir, pearls::make_fir({3, 2, 1}));
  design.set_pearl(scale, pearls::make_add_const(100));
  design.set_source(src, lip::SourceBehavior::counter());

  // 4. Run the latency-insensitive execution.
  auto sys = design.instantiate();
  sys->run(40);
  std::cout << "first consumed tokens:";
  for (std::size_t i = 0; i < 8 && i < sys->sink_stream(out).size(); ++i) {
    std::cout << ' ' << sys->sink_stream(out)[i].data;
  }
  std::cout << "\n";

  // 5. The LID must behave exactly like the zero-latency original
  //    (latency equivalence — the paper's safety definition).
  const auto equiv = lip::check_latency_equivalence(design, {}, 200);
  std::cout << "latency-equivalent to the ideal system: "
            << (equiv.ok ? "yes" : "NO: " + equiv.detail) << " ("
            << equiv.tokens_checked << " tokens compared)\n";

  // 6. Exact steady-state throughput, detected from protocol-state
  //    periodicity (a feed-forward pipeline runs at T = 1).
  auto fresh = design.instantiate();
  const auto ss = lip::measure_steady_state(*fresh);
  std::cout << "steady state: T = " << ss.system_throughput().str()
            << ", transient = " << ss.transient
            << " cycles, period = " << ss.period << "\n";
  return 0;
}
