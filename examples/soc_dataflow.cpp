// soc_dataflow — the paper's motivating scenario: a System-on-Chip whose
// long interconnects need more than one clock cycle, made latency
// insensitive by wrapping the unchanged functional modules in shells and
// pipelining the wires with relay stations.
//
// The design is a small media-style dataflow:
//
//   sensor ──▶ prefilter ──▶ split ──┬─(short wire, 1 RS)──▶ blend ──▶ sink
//                                    └─(long wire: enhance, 3 RS)──┘
//
// The reconvergent wires are unbalanced, so the protocol throttles the
// system (the paper's T = (m−i)/m); the example then applies path
// equalization and recovers full throughput, verifying latency
// equivalence before and after.
//
//   $ ./soc_dataflow

#include <iostream>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/equalize.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/pearls/pearls.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

struct Soc {
  graph::Topology topo;
  graph::NodeId sensor, prefilter, split, enhance, blend, sink;
};

Soc build(std::size_t short_rs, std::size_t long_rs_per_hop) {
  Soc s;
  s.sensor = s.topo.add_source("sensor");
  s.prefilter = s.topo.add_process("prefilter", 1, 1);
  s.split = s.topo.add_process("split", 1, 2);
  s.enhance = s.topo.add_process("enhance", 1, 1);
  s.blend = s.topo.add_process("blend", 2, 1);
  s.sink = s.topo.add_sink("display");
  s.topo.connect({s.sensor, 0}, {s.prefilter, 0});
  s.topo.connect({s.prefilter, 0}, {s.split, 0}, {graph::RsKind::kFull});
  // Long physical route through the enhancement block.
  s.topo.connect({s.split, 0}, {s.enhance, 0},
                 std::vector<graph::RsKind>(long_rs_per_hop,
                                            graph::RsKind::kFull));
  s.topo.connect({s.enhance, 0}, {s.blend, 0},
                 std::vector<graph::RsKind>(long_rs_per_hop,
                                            graph::RsKind::kFull));
  // Short direct route.
  s.topo.connect({s.split, 1}, {s.blend, 1},
                 std::vector<graph::RsKind>(short_rs, graph::RsKind::kFull));
  s.topo.connect({s.blend, 0}, {s.sink, 0});
  return s;
}

lip::Design bind(Soc s) {
  lip::Design d(std::move(s.topo));
  d.set_pearl(s.prefilter, pearls::make_fir({1, 2, 1}));
  d.set_pearl(s.split, pearls::make_fork2());
  d.set_pearl(s.enhance, pearls::make_bit_mixer());
  d.set_pearl(s.blend, pearls::make_max());
  d.set_source(s.sensor, lip::SourceBehavior::counter());
  return d;
}

}  // namespace

int main() {
  std::cout << "SoC dataflow with unbalanced reconvergent interconnect\n\n";

  Soc soc = build(/*short_rs=*/1, /*long_rs_per_hop=*/3);
  const auto prediction = graph::predict_throughput(soc.topo);
  std::cout << "analytic prediction (paper formula): T = "
            << prediction.system().str() << "\n";
  for (const auto& rec : prediction.reconvergences) {
    std::cout << "  reconvergence " << soc.topo.node(rec.fork).name << " -> "
              << soc.topo.node(rec.join).name << ": i = " << rec.i()
              << ", m = " << rec.m() << ", T = " << rec.throughput().str()
              << "\n";
  }

  auto before_design = bind(build(1, 3));
  auto before = before_design.instantiate();
  const auto ss_before = lip::measure_steady_state(*before);
  std::cout << "measured:   T = " << ss_before.system_throughput().str()
            << " (transient " << ss_before.transient << ", period "
            << ss_before.period << ")\n";
  const auto equiv_before =
      lip::check_latency_equivalence(before_design, {}, 400);
  std::cout << "latency equivalence: " << (equiv_before.ok ? "ok" : "BROKEN")
            << "\n\n";

  // Path equalization: insert spare relay stations on the short route so
  // both branches carry the same number of stations.
  Soc balanced = build(1, 3);
  const auto plan = graph::plan_equalization(balanced.topo);
  graph::apply_equalization(balanced.topo, plan);
  std::cout << "equalization inserted " << plan.total_added
            << " spare relay stations\n";

  auto after_design = bind(std::move(balanced));
  auto after = after_design.instantiate();
  const auto ss_after = lip::measure_steady_state(*after);
  std::cout << "after equalization: T = "
            << ss_after.system_throughput().str() << "\n";
  const auto equiv_after =
      lip::check_latency_equivalence(after_design, {}, 400);
  std::cout << "latency equivalence: " << (equiv_after.ok ? "ok" : "BROKEN")
            << "\n\n";

  // Throughput is a protocol property, not a datapath property: the same
  // design wrapped at different wire depths.
  Table t({"long wire RS/hop", "short RS", "T predicted", "T measured"});
  for (std::size_t deep : {1u, 2u, 3u, 4u}) {
    Soc v = build(1, deep);
    const auto pred = graph::predict_throughput(v.topo).system();
    auto d = bind(std::move(v));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys);
    t.add_row({std::to_string(deep), "1", pred.str(),
               ss.system_throughput().str()});
  }
  t.print(std::cout);
  return 0;
}
