// waveforms — RTL simulation of the paper's Fig. 1 design with waveform
// dumping, the workflow the paper used to validate its blocks ("a VHDL
// description of all blocks and an event-driven simulator").
//
// Elaborates the reconvergent Fig. 1 topology as an RTL netlist on the
// event-driven kernel, dumps every channel's valid/data/stop wires to a
// VCD file (viewable with GTKWave), and cross-checks the event-driven run
// against the cycle-accurate protocol simulator.
//
//   $ ./waveforms [out.vcd]

#include <fstream>
#include <iostream>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/pearls/pearls.hpp"
#include "liplib/rtl/rtl_system.hpp"

using namespace liplib;

namespace {

std::unique_ptr<lip::Pearl> pearl_for(const graph::Node& node) {
  if (node.num_inputs == 1 && node.num_outputs == 2) {
    return pearls::make_fork2();
  }
  if (node.num_inputs == 2) return pearls::make_adder();
  return pearls::make_identity();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "fig1.vcd";
  auto gen = graph::make_fig1();

  // RTL, event-driven, with waveform dump.
  std::ofstream vcd_file(path);
  if (!vcd_file) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  rtl::RtlSystem rtl(gen.topo);
  for (auto p : gen.processes) {
    rtl.bind_pearl(p, pearl_for(gen.topo.node(p)));
  }
  rtl.attach_vcd(vcd_file);
  rtl.run_cycles(60);

  // Cycle-accurate twin for cross-checking.
  lip::Design d(gen.topo);
  for (auto p : gen.processes) d.set_pearl(p, pearl_for(gen.topo.node(p)));
  auto sys = d.instantiate();
  sys->record_sink_trace(true);
  sys->run(60);

  bool match = true;
  for (auto s : gen.sinks) {
    const auto& a = sys->sink_cycle_trace(s);
    const auto& b = rtl.sink_cycle_trace(s);
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i].str() != b[i].str()) match = false;
    }
  }
  std::cout << "RTL (event-driven) vs cycle-accurate protocol model: "
            << (match ? "identical sink traces over 60 cycles" : "MISMATCH")
            << "\n";
  std::cout << "kernel delta cycles executed: " << rtl.context().delta_count()
            << "\n";
  std::cout << "waveform written to " << path
            << " — open with GTKWave to see the voids draining and the\n"
               "stop pulses on the short branch (the paper's Fig. 1).\n";
  return 0;
}
