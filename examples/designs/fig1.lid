# The paper's Fig. 1: reconvergent feed-forward design, T = 4/5.
# Try: lidtool analyze fig1.lid ; lidtool equalize fig1.lid
source src
process A 1 2   fork2
process B 1 1
process C 2 1   adder
sink out
channel src.0 -> A.0
channel A.0 -> B.0 : F
channel B.0 -> C.0 : F
channel A.1 -> C.1 : F
channel C.0 -> out.0
