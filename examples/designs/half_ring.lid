# A control loop pipelined with cheap half relay stations: live from
# reset, latent stop latch under worst-case occupancy.
# Try: lidtool screen half_ring.lid ; lidtool flow half_ring.lid
process ctl 1 1
process plant 1 1
process est 1 1
channel ctl.0 -> plant.0 : H
channel plant.0 -> est.0 : H
channel est.0 -> ctl.0 : H
