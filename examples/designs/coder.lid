# A small annotated coder: runnable with full data.
# Try: lidtool run coder.lid 500
source  cam        sparse(7,2,3)
process xf   1 1   transform8
process q    1 1   quantizer(4)
process pack 1 1   rle
sink    out        periodic(2)
channel cam.0 -> xf.0
channel xf.0 -> q.0 : F F
channel q.0 -> pack.0 : H
channel pack.0 -> out.0
