// iterative_rotator — a self-interacting loop (the paper's feedback
// topology) doing real work: vectors circulate through a ring of CORDIC
// micro-rotation stages several times before leaving.  Demonstrates
//
//   - writing a custom Pearl (the loop controller) against the public
//     interface: plain synchronous code, no protocol logic;
//   - loop throughput T = S/(S+R) and why adding pipeline stations to a
//     loop *costs* throughput (the inverse of the feed-forward case);
//   - the Carloni-style buffered-shell option as a drop-in alternative.
//
//   $ ./iterative_rotator

#include <iostream>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/mcr.hpp"
#include "liplib/graph/topology.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/pearls/pearls.hpp"
#include "liplib/support/table.hpp"

using namespace liplib;

namespace {

// Vectors are packed as (x << 20 | y) in 40 bits plus a 4-bit lap
// counter in the top bits; the controller recirculates a vector until it
// has completed kLaps trips around the ring, then emits it and admits
// the next input.
constexpr std::uint64_t kLaps = 3;

/// The loop controller: a custom pearl.  Port 0 input = new work from
/// outside; port 1 input = vector returning from the ring.  Port 0
/// output = finished vectors; port 1 output = vector sent into the ring.
/// Every firing consumes one token per input and produces one per
/// output, as the Pearl contract requires: when the returning vector
/// still needs laps it goes around again and the external datum is
/// reflected back to the output as a pass-through marker (tagged so the
/// consumer can tell results from markers).
class RotatorControl final : public lip::Pearl {
 public:
  std::size_t num_inputs() const override { return 2; }
  std::size_t num_outputs() const override { return 2; }
  std::uint64_t initial_output(std::size_t port) const override {
    // The ring's circulating token starts as an idle bubble (lap count
    // maxed so it is immediately replaceable); the chain output starts
    // as a marker.
    return port == 1 ? make_idle() : kMarker;
  }
  void step(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) override {
    const std::uint64_t fresh = in[0];
    const std::uint64_t back = in[1];
    const std::uint64_t laps = back >> 60;
    if (laps >= kLaps) {
      // Returning vector is done (or an idle bubble): emit it, admit the
      // fresh datum into the ring with lap count 0.
      out[0] = back == make_idle() ? kMarker : (back & kPayloadMask);
      out[1] = fresh & kPayloadMask;  // lap 0
    } else {
      // Not done: send it around again, bounce the fresh datum back out
      // as a marker so no token is lost.  (A real design would instead
      // stall intake; markers keep the pearl contract trivially simple.)
      out[0] = kMarker | (fresh & kPayloadMask);
      out[1] = (back & kPayloadMask) | ((laps + 1) << 60);
    }
  }
  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<RotatorControl>();
  }

  static constexpr std::uint64_t kMarker = 1ull << 59;
  static constexpr std::uint64_t kPayloadMask = (1ull << 59) - 1;
  static std::uint64_t make_idle() { return kLaps << 60; }
};

struct Ring {
  graph::Topology topo;
  graph::NodeId src, ctl, snk;
  std::vector<graph::NodeId> stages;
};

Ring build(std::size_t stages, std::size_t stations_per_hop) {
  Ring r;
  r.src = r.topo.add_source("vectors");
  r.ctl = r.topo.add_process("control", 2, 2);
  r.snk = r.topo.add_sink("rotated");
  r.topo.connect({r.src, 0}, {r.ctl, 0});
  graph::NodeId prev = r.ctl;
  std::size_t prev_port = 1;
  for (std::size_t i = 0; i < stages; ++i) {
    const auto st = r.topo.add_process("cordic" + std::to_string(i), 1, 1);
    r.stages.push_back(st);
    r.topo.connect({prev, prev_port}, {st, 0},
                   std::vector<graph::RsKind>(stations_per_hop,
                                              graph::RsKind::kFull));
    prev = st;
    prev_port = 0;
  }
  r.topo.connect({prev, prev_port}, {r.ctl, 1},
                 std::vector<graph::RsKind>(stations_per_hop,
                                            graph::RsKind::kFull));
  r.topo.connect({r.ctl, 0}, {r.snk, 0});
  return r;
}

lip::Design bind(const Ring& r) {
  lip::Design d(r.topo);
  d.set_pearl(r.ctl, std::make_unique<RotatorControl>());
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    // A rotation stage that only touches the payload bits.
    d.set_pearl(r.stages[i], pearls::make_bit_mixer());
  }
  d.set_source(r.src, lip::SourceBehavior::counter());
  return d;
}

}  // namespace

int main() {
  std::cout << "Iterative rotator: vectors take " << kLaps
            << " laps around a CORDIC ring\n\n";

  Table t({"ring stages S'", "RS per hop", "loop T = S/(S+R)", "T measured",
           "results per 1k cycles"});
  for (std::size_t stages : {2u, 3u}) {
    for (std::size_t per : {1u, 2u}) {
      Ring r = build(stages, per);
      // The loop contains the controller + the stages.
      const auto loop_t = graph::min_cycle_ratio(r.topo);
      auto d = bind(r);
      auto sys = d.instantiate();
      const auto ss = lip::measure_steady_state(*sys);
      auto counting = d.instantiate();
      counting->run(1000);
      // Count real results (non-marker tokens) at the sink.
      std::size_t results = 0;
      for (const auto& tok : counting->sink_stream(r.snk)) {
        if (!(tok.data & RotatorControl::kMarker) &&
            tok.data != RotatorControl::kMarker) {
          ++results;
        }
      }
      t.add_row({std::to_string(stages), std::to_string(per),
                 loop_t ? loop_t->str() : std::string("-"),
                 ss.found ? ss.system_throughput().str() : "?",
                 std::to_string(results)});
    }
  }
  t.print(std::cout);
  std::cout << "\nLoops invert the feed-forward lesson: every extra relay\n"
               "station in the ring lowers T = S/(S+R); deep wire\n"
               "pipelining belongs outside loops.\n\n";

  // The same design under Carloni-style buffered shells.
  Ring r = build(2, 1);
  auto d = bind(r);
  lip::SystemOptions opts;
  opts.input_queue_depth = 1;
  auto sys = d.instantiate(opts);
  const auto ss = lip::measure_steady_state(*sys);
  std::cout << "with buffered shells (depth 1): T = "
            << (ss.found ? ss.system_throughput().str() : "?")
            << " — the input FIFOs add ring positions, costing throughput\n"
               "just like stations do.\n";

  const auto equiv = lip::check_latency_equivalence(bind(build(2, 1)), {},
                                                    400);
  std::cout << "\nlatency equivalence of the rotator: "
            << (equiv.ok ? "ok" : "BROKEN") << " (" << equiv.tokens_checked
            << " tokens)\n";
  return 0;
}
