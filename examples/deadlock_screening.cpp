// deadlock_screening — the paper's liveness methodology, end to end.
//
// A control loop pipelined with cheap *half* relay stations (one register
// each) closes a combinational cycle on the stop wires: a potential
// deadlock.  Following the paper:
//   1. the structural validator warns about half stations on loops;
//   2. the skeleton simulator (valid/stop bits only — "the simulation
//      cost is absolutely negligible") screens the design up to the
//      transient's extinction: from reset the deadlock never injects;
//   3. worst-case-occupancy screening exposes the latent stop latch;
//   4. the cure substitutes a single full relay station — a "low
//      intrusive change" — and re-screening proves the design safe.
//
//   $ ./deadlock_screening

#include <iostream>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/skeleton/skeleton.hpp"

using namespace liplib;

int main() {
  std::cout << "Control loop pipelined with half relay stations\n\n";

  // A 3-stage control loop: controller -> plant model -> estimator ->
  // controller, every hop pipelined with one half relay station.
  auto gen = graph::make_closed_ring({1, 1, 1}, graph::RsKind::kHalf);

  // 1. Structural validation + static latch analysis.
  const auto report = gen.topo.validate();
  std::cout << "validator says:\n" << report.to_string() << "\n";
  const auto latches = graph::find_stop_cycles(gen.topo);
  std::cout << "static analysis: " << latches.size()
            << " combinational stop cycle(s) — the latent latch\n\n";

  // 2. Reset-state screening (the paper's recipe).
  skeleton::ScreeningOptions reset_opts;
  const auto from_reset = skeleton::screen_for_deadlock(gen.topo, reset_opts);
  std::cout << "screening from reset: "
            << (from_reset.deadlock_found ? "deadlock" : "live") << ", T = "
            << from_reset.min_throughput.str() << " (simulated "
            << from_reset.cycles_simulated << " cycles: transient "
            << from_reset.transient << " + period " << from_reset.period
            << ")\n";

  // 3. Worst-case-occupancy screening: every station holding a token.
  skeleton::ScreeningOptions wc_opts;
  wc_opts.worst_case_occupancy = true;
  const auto worst = skeleton::screen_for_deadlock(gen.topo, wc_opts);
  std::cout << "screening under worst-case occupancy: "
            << (worst.deadlock_found ? "DEADLOCK (stop latch asserted)"
                                     : "live")
            << "\n";
  wc_opts.skeleton.resolution = lip::StopResolution::kOptimistic;
  const auto worst_opt = skeleton::screen_for_deadlock(gen.topo, wc_opts);
  std::cout << "same state, optimistic settling: "
            << (worst_opt.deadlock_found ? "deadlock" : "live") << ", T = "
            << worst_opt.min_throughput.str()
            << "  (the latch is bistable — that is the hazard)\n\n";

  // 4. Cure: substitute as few relay stations as possible.
  wc_opts.skeleton.resolution = lip::StopResolution::kPessimistic;
  const auto cure = skeleton::cure_deadlocks(gen.topo, wc_opts);
  std::cout << "cure: " << (cure.success ? "succeeded" : "failed") << " with "
            << cure.substitutions << " half->full substitution(s); station "
            << "count unchanged ("
            << cure.cured.total_stations() << ")\n";
  const auto after = skeleton::screen_for_deadlock(cure.cured, wc_opts);
  std::cout << "re-screen cured design under worst case: "
            << (after.deadlock_found ? "deadlock" : "live") << ", T = "
            << after.min_throughput.str() << "\n";

  std::cout << "\ncured topology (graphviz):\n" << cure.cured.to_dot();
  return 0;
}
