#!/usr/bin/env bash
# Smoke test for the liplib::trace observability stack, exercised
# end-to-end through the shipped binary:
#
#   1. serve path: start a daemon, fire traced and untraced requests at
#      it (`client --trace` propagates a caller context), scrape the
#      span document with `lidtool trace --scrape` and the Prometheus
#      text with `client metrics`;
#   2. dist path: a 2-shard campaign through `dist coordinate --trace`
#      with one worker killed while holding a lease — the written span
#      timeline must contain the explicit dist.redispatch event and
#      collapse to ONE trace id;
#   3. merge: fold the client, serve and dist documents into a single
#      Perfetto file with `lidtool trace --check`, which asserts span
#      parent/child referential integrity;
#   4. metrics: the request-latency histogram scrape is non-empty and
#      its total count matches the status document's request counter.
#
# Usage: scripts/trace_smoke.sh [path/to/lidtool]
# (default: build/examples/lidtool relative to the repo root)

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
lidtool="${1:-$repo_root/build/examples/lidtool}"

if [ ! -x "$lidtool" ]; then
  echo "trace_smoke: lidtool not found at $lidtool" >&2
  exit 2
fi

work="$(mktemp -d)"
server_pid=""
coord_pid=""
cleanup() {
  for pid in "$server_pid" "$coord_pid"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null
      wait "$pid" 2>/dev/null
    fi
  done
  rm -rf "$work"
}
trap cleanup EXIT

fail() {
  echo "trace_smoke: FAIL: $*" >&2
  echo "--- daemon log ---" >&2
  cat "$work/serve.log" >&2 || true
  echo "--- coordinator log ---" >&2
  cat "$work/coord.log" >&2 || true
  exit 1
}

# The paper's Fig. 1: live under both reset and worst-case occupancy.
cat > "$work/fig1.lid" <<'EOF'
source src
process A 1 2
process B 1 1
process C 2 1
sink out
channel src.0 -> A.0
channel A.0 -> B.0 : F
channel B.0 -> C.0 : F
channel A.1 -> C.1 : F
channel C.0 -> out.0
EOF

# ---- 1. serve: traced requests, span + metrics scrapes ------------------

"$lidtool" serve --port 0 --cache-mb 8 --ttl 600 > "$work/serve.log" 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/.*serving on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$work/serve.log" | head -n1)"
  [ -n "$port" ] && break
  kill -0 "$server_pid" 2>/dev/null || fail "daemon exited before binding"
  sleep 0.1
done
[ -n "$port" ] && [ "$port" != "0" ] || fail "could not learn the bound port"
echo "trace_smoke: daemon up on port $port"

"$lidtool" client --port "$port" lint "$work/fig1.lid" \
  --trace "$work/client_trace.json" > /dev/null \
  || fail "traced lint request failed"
[ -s "$work/client_trace.json" ] || fail "client span document not written"
grep -q '"liplib.trace/1"' "$work/client_trace.json" \
  || fail "client span document is not a liplib.trace/1 document"
"$lidtool" client --port "$port" screen "$work/fig1.lid" > /dev/null \
  || fail "screen request failed"
"$lidtool" client --port "$port" screen "$work/fig1.lid" > /dev/null \
  || fail "repeat screen request (cache hit) failed"

# The integrity check runs over the client document PLUS the scrape:
# the traced request's serve-side root hangs off the client span, so a
# standalone daemon scrape is a partial view by design — only the
# merged forest is closed under parent links.
"$lidtool" trace "$work/client_trace.json" --scrape "$port" \
  -o "$work/serve_timeline.json" --check \
  > "$work/serve_scrape.out" \
  || fail "serve trace scrape failed the integrity check"
grep -q "integrity ok" "$work/serve_scrape.out" \
  || fail "serve scrape did not report integrity ok"
grep -q '"traceEvents"' "$work/serve_timeline.json" \
  || fail "exported serve timeline is not Chrome trace JSON"
echo "trace_smoke: serve span scrape: $(cat "$work/serve_scrape.out")"

# ---- 2. dist: traced 2-shard campaign with a killed worker --------------

"$lidtool" dist coordinate fuzz 24 --seed 7 --budget 65536 \
  --shards 2 --lease-ms 800 --trace "$work/dist_trace.json" \
  > "$work/coord.log" 2>&1 &
coord_pid=$!

dport=""
for _ in $(seq 1 100); do
  dport="$(sed -n 's/.*on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
             "$work/coord.log" | head -n1)"
  [ -n "$dport" ] && break
  kill -0 "$coord_pid" 2>/dev/null || fail "coordinator exited before binding"
  sleep 0.1
done
[ -n "$dport" ] && [ "$dport" != "0" ] || fail "no coordinator port"
echo "trace_smoke: coordinator up on port $dport"

# The casualty: takes one shard lease and dies holding it.
"$lidtool" dist work --port "$dport" --threads 1 --die-after-lease 1 \
  > /dev/null 2>&1 || fail "the doomed worker errored instead of dying"
# The honest worker finishes the campaign, re-dispatch included.
"$lidtool" dist work --port "$dport" --threads 2 > "$work/worker.log" 2>&1 &
wpid=$!
wait "$coord_pid"
coord_rc=$?
coord_pid=""
wait "$wpid" || fail "honest worker failed"
[ "$coord_rc" -eq 0 ] || fail "coordinator exited $coord_rc"

[ -s "$work/dist_trace.json" ] || fail "coordinator span document not written"
grep -q "dist.redispatch" "$work/dist_trace.json" \
  || fail "killed worker's re-dispatch is not an explicit trace event"
echo "trace_smoke: re-dispatch visible in the dist timeline"

"$lidtool" trace "$work/dist_trace.json" --check > "$work/dist_check.out" \
  || fail "dist span document failed the integrity check"
grep -q "across 1 trace(s)" "$work/dist_check.out" \
  || fail "dist campaign spans do not share one trace id"

# ---- 3. one merged Perfetto timeline ------------------------------------

"$lidtool" trace "$work/client_trace.json" "$work/dist_trace.json" \
  --scrape "$port" --check -o "$work/merged.json" \
  > "$work/merge.out" \
  || fail "merged client+serve+dist timeline failed the integrity check"
grep -q "integrity ok" "$work/merge.out" \
  || fail "merge did not report integrity ok"
grep -q '"traceEvents"' "$work/merged.json" \
  || fail "merged export is not Chrome trace JSON"
echo "trace_smoke: merged timeline: $(cat "$work/merge.out")"

# ---- 4. Prometheus scrape vs status counters ----------------------------

"$lidtool" client --port "$port" metrics > "$work/metrics.txt" \
  || fail "metrics request failed"
grep -q "# TYPE liplib_serve_request_latency_us histogram" "$work/metrics.txt" \
  || fail "latency histogram family missing from the scrape"
hist_total="$(awk '/^liplib_serve_request_latency_us_count\{/ {sum += $NF}
                   END {print sum + 0}' "$work/metrics.txt")"
[ "$hist_total" -ge 1 ] || fail "latency histogram scrape is empty"

"$lidtool" client --port "$port" status > "$work/status.json" \
  || fail "status request failed"
status_total="$(awk '/"requests"/ {f = 1}
                     f && /"total"/ {gsub(/[^0-9]/, ""); print; exit}' \
                  "$work/status.json")"
# The status request itself arrived after the metrics scrape observed
# its own latency, so the counter must read exactly one more request.
[ "$status_total" = "$((hist_total + 1))" ] \
  || fail "histogram total $hist_total does not match status requests.total $status_total - 1"
echo "trace_smoke: latency histogram count $hist_total == status counter $status_total - 1"

"$lidtool" client --port "$port" shutdown > /dev/null \
  || fail "shutdown request failed"
wait "$server_pid"
server_rc=$?
server_pid=""
[ "$server_rc" -eq 0 ] || fail "daemon exited $server_rc after shutdown"

echo "trace_smoke: PASS"
