#!/usr/bin/env bash
# Smoke test for the static prover, exercised end-to-end through the
# shipped binary: every design under examples/designs/ must prove
# deadlock-free from reset — via the default auto escalation AND via a
# closing k-induction certificate — and the known worst-case deadlock
# (half_ring.lid) must come back as a counterexample (exit 1) whose
# post-mortem bundle `lidtool replay` reproduces to the same freeze.
#
# Usage: scripts/prove_smoke.sh [path/to/lidtool]
# (default: build/examples/lidtool relative to the repo root)

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
lidtool="${1:-$repo_root/build/examples/lidtool}"
designs="$repo_root/examples/designs"

if [ ! -x "$lidtool" ]; then
  echo "prove_smoke: lidtool not found at $lidtool" >&2
  exit 2
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

fail() {
  echo "prove_smoke: FAIL: $*" >&2
  exit 1
}

proved=0
for lid in "$designs"/*.lid; do
  name="$(basename "$lid")"
  for method in auto induction; do
    "$lidtool" prove "$lid" --method "$method" >"$work/out.json" 2>&1
    rc=$?
    [ "$rc" = 0 ] || fail "$name --method $method: expected exit 0 (proved), got $rc"
    proved=$((proved + 1))
  done
done
[ "$proved" -ge 2 ] || fail "no designs found under $designs"
echo "prove_smoke: $proved proofs closed (auto + induction per design)"

# The paper's deadlock: half stations on a loop latch a self-supporting
# stop from worst-case occupancy.  The prover must find it (exit 1), the
# --json rendering must carry the verdict, and the emitted post-mortem
# bundle must replay to the same freeze.
ring="$designs/half_ring.lid"
"$lidtool" prove "$ring" --worst-case --json \
  --postmortem "$work/pm.json" >"$work/cex.json" 2>"$work/cex.err"
rc=$?
[ "$rc" = 1 ] || fail "half_ring --worst-case: expected exit 1 (counterexample), got $rc"
grep -q '"verdict": *"counterexample"' "$work/cex.json" ||
  fail "half_ring --worst-case --json: no counterexample verdict in output"
[ -s "$work/pm.json" ] || fail "half_ring --worst-case: post-mortem bundle not written"
"$lidtool" replay "$work/pm.json" >"$work/replay.out" 2>&1 ||
  fail "replay of the prove counterexample bundle failed"
grep -q 'reproduced' "$work/replay.out" ||
  fail "replay did not reproduce the proved deadlock"
echo "prove_smoke: counterexample found, bundled, and replayed"

# Exit-code contract: usage errors are 2, never 0 or 1.
"$lidtool" prove "$ring" --method bogus >/dev/null 2>&1
[ $? = 2 ] || fail "unknown method: expected usage exit 2"
"$lidtool" prove >/dev/null 2>&1
[ $? = 2 ] || fail "missing file: expected usage exit 2"

echo "prove_smoke: PASS"
