#!/usr/bin/env bash
# Smoke test for the lidtool serve daemon, exercised end-to-end through
# the shipped binary: start a daemon on an ephemeral port, fire 100
# mixed requests at it from `lidtool client` (lint / screen / profile /
# campaign, including a design with a deliberate worst-case deadlock),
# then assert via `status` that the cache actually served hits, that
# the deadlock was answered as a verdict (not a hang), and that a
# `shutdown` request drains cleanly.
#
# Usage: scripts/serve_smoke.sh [path/to/lidtool]
# (default: build/examples/lidtool relative to the repo root)

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
lidtool="${1:-$repo_root/build/examples/lidtool}"

if [ ! -x "$lidtool" ]; then
  echo "serve_smoke: lidtool not found at $lidtool" >&2
  exit 2
fi

work="$(mktemp -d)"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null
    wait "$server_pid" 2>/dev/null
  fi
  rm -rf "$work"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  echo "--- daemon log ---" >&2
  cat "$work/serve.log" >&2 || true
  exit 1
}

# ---- fixtures -----------------------------------------------------------

# The paper's Fig. 1: live under both reset and worst-case occupancy.
cat > "$work/fig1.lid" <<'EOF'
source src
process A 1 2
process B 1 1
process C 2 1
sink out
channel src.0 -> A.0
channel A.0 -> B.0 : F
channel B.0 -> C.0 : F
channel A.1 -> C.1 : F
channel C.0 -> out.0
EOF

# The latent stop latch: a two-shell ring of half relay stations is
# live from reset but deadlocks under worst-case occupancy.  The daemon
# must answer this with a DEADLOCK verdict, not a wedged worker.
cat > "$work/deadlock.lid" <<'EOF'
process P 1 1
process Q 1 1
channel P.0 -> Q.0 : H
channel Q.0 -> P.0 : H
EOF

# ---- start the daemon ---------------------------------------------------

"$lidtool" serve --port 0 --cache-mb 8 --ttl 600 > "$work/serve.log" 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/.*serving on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$work/serve.log" | head -n1)"
  [ -n "$port" ] && break
  kill -0 "$server_pid" 2>/dev/null || fail "daemon exited before binding"
  sleep 0.1
done
[ -n "$port" ] && [ "$port" != "0" ] || fail "could not learn the bound port"
echo "serve_smoke: daemon up on port $port (pid $server_pid)"

client() { "$lidtool" client "$@" --port "$port"; }

# ---- 100 mixed requests -------------------------------------------------

# 24 rounds x 4 request kinds = 96, plus 2 campaigns, plus the final
# status + shutdown below = 100 frames total.  After round one, every
# lint/screen/profile answer must be a cache hit.
requests=0
deadlock_answers=0
for _ in $(seq 1 24); do
  client lint "$work/fig1.lid" > /dev/null \
    || fail "lint of a clean design did not exit 0"
  client screen "$work/fig1.lid" > /dev/null \
    || fail "screen of a live design did not exit 0"
  client profile "$work/fig1.lid" --cycles 2000 > /dev/null \
    || fail "profile of a live design did not exit 0"
  client screen "$work/deadlock.lid" > "$work/deadlock.json"
  rc=$?
  [ "$rc" -eq 1 ] || fail "screen of the deadlock design exited $rc, want 1"
  grep -q '"verdict": "deadlock"' "$work/deadlock.json" \
    || fail "deadlock design was not answered with a deadlock verdict"
  deadlock_answers=$((deadlock_answers + 1))
  requests=$((requests + 4))
done
client campaign fuzz 10 --seed 7 > /dev/null || fail "campaign fuzz failed"
client campaign fuzz 10 --seed 7 > /dev/null || fail "repeat campaign failed"
requests=$((requests + 2))
echo "serve_smoke: $requests requests served, $deadlock_answers deadlock verdicts"

# ---- status: the cache must have served hits ----------------------------

client status > "$work/status.json" || fail "status request failed"
get() { sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "$work/status.json" | head -n1; }
# "hits" also appears in the per-engine counters, which render before
# the cache section — scope the cache lookup to its object.
cache_get() {
  sed -n '/"cache"/,/}/p' "$work/status.json" |
    sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" | head -n1
}

hits="$(cache_get hits)"
total="$(get total)"
verdicts="$(get deadlock_verdicts)"
[ -n "$hits" ] || fail "status did not report cache hits"
[ "$total" -eq $((requests + 1)) ] \
  || fail "status reports $total requests, want $((requests + 1))"
# 4 distinct cache keys (lint/screen/profile of fig1, screen of the
# deadlock ring) computed once each + 1 campaign key: everything else
# must have come from the cache.
[ "$hits" -ge $((requests - 10)) ] \
  || fail "only $hits cache hits across $requests requests"
# deadlock_verdicts counts watchdog-tripped computations; the 23 repeat
# answers came from the cache without re-running the watchdog.
[ -n "$verdicts" ] && [ "$verdicts" -ge 1 ] \
  || fail "status reports no deadlock verdicts despite $deadlock_answers deadlock answers"
echo "serve_smoke: cache hits $hits / $total requests"

# ---- graceful shutdown --------------------------------------------------

client shutdown > /dev/null || fail "shutdown request failed"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  fail "daemon still running 10s after the shutdown request"
fi
wait "$server_pid"
server_pid=""
grep -q "drained: served" "$work/serve.log" \
  || fail "daemon did not report a clean drain"
echo "serve_smoke: PASS ($(grep 'drained:' "$work/serve.log"))"
