#!/usr/bin/env bash
# Smoke test for the distributed campaign stack, exercised end-to-end
# through the shipped binary:
#
#   1. single-process golden: `lidtool campaign` of a 120-topology fuzz
#      sweep, exported as canonical JSON;
#   2. CLI shard path: the same sweep as four `--shard i/4 --out`
#      exports reunited with `lidtool merge` — byte-identical to golden;
#   3. coordinator path: `lidtool dist coordinate` with 4 shards, one
#      worker killed mid-flight while holding a lease (the
#      --die-after-lease crash hook) plus two honest workers — the
#      coordinator must re-dispatch the orphaned shard and the merged
#      aggregate must again be byte-identical to golden.
#
# Usage: scripts/dist_smoke.sh [path/to/lidtool]
# (default: build/examples/lidtool relative to the repo root)

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
lidtool="${1:-$repo_root/build/examples/lidtool}"

if [ ! -x "$lidtool" ]; then
  echo "dist_smoke: lidtool not found at $lidtool" >&2
  exit 2
fi

work="$(mktemp -d)"
coord_pid=""
cleanup() {
  if [ -n "$coord_pid" ] && kill -0 "$coord_pid" 2>/dev/null; then
    kill "$coord_pid" 2>/dev/null
    wait "$coord_pid" 2>/dev/null
  fi
  rm -rf "$work"
}
trap cleanup EXIT

fail() {
  echo "dist_smoke: FAIL: $*" >&2
  echo "--- coordinator log ---" >&2
  cat "$work/coord.log" >&2 || true
  exit 1
}

jobs=120
seed=7
budget=262144

# ---- 1. the single-process golden ---------------------------------------

"$lidtool" campaign fuzz "$jobs" --seed "$seed" --budget "$budget" \
  --threads 2 --json "$work/golden.json" > /dev/null \
  || fail "single-process campaign did not exit 0 (all live expected)"
[ -s "$work/golden.json" ] || fail "golden.json was not written"
echo "dist_smoke: golden aggregate: $(wc -c < "$work/golden.json") bytes"

# ---- 2. CLI shards + merge ----------------------------------------------

for i in 0 1 2 3; do
  "$lidtool" campaign fuzz "$jobs" --seed "$seed" --budget "$budget" \
    --threads 2 --shard "$i/4" --out "$work/part$i.json" > /dev/null \
    || fail "shard $i/4 export failed"
done
"$lidtool" merge "$work"/part0.json "$work"/part1.json "$work"/part2.json \
  "$work"/part3.json --json "$work/merged_cli.json" > /dev/null \
  || fail "lidtool merge of the four shards failed"
cmp -s "$work/golden.json" "$work/merged_cli.json" \
  || fail "merged CLI shards differ from the single-process golden"
echo "dist_smoke: 4 CLI shards merged byte-identical to golden"

# ---- 3. coordinator + workers, one killed mid-flight --------------------

"$lidtool" dist coordinate fuzz "$jobs" --seed "$seed" --budget "$budget" \
  --shards 4 --lease-ms 800 --json "$work/dist.json" \
  > "$work/coord.log" 2>&1 &
coord_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/.*on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
            "$work/coord.log" | head -n1)"
  [ -n "$port" ] && break
  kill -0 "$coord_pid" 2>/dev/null || fail "coordinator exited before binding"
  sleep 0.1
done
[ -n "$port" ] && [ "$port" != "0" ] || fail "could not learn the bound port"
echo "dist_smoke: coordinator up on port $port (pid $coord_pid)"

# The casualty: takes one shard lease and dies holding it.  Its shard
# can only complete through a re-dispatch after the lease expires.
"$lidtool" dist work --port "$port" --threads 1 --die-after-lease 1 \
  > "$work/dead_worker.log" 2>&1 \
  || fail "the doomed worker errored instead of dying cleanly"
grep -q "0 partial(s) submitted" "$work/dead_worker.log" \
  || fail "the doomed worker submitted work before dying"

# Two honest workers finish the campaign, including the orphaned shard.
"$lidtool" dist work --port "$port" --threads 2 > "$work/worker1.log" 2>&1 &
w1=$!
"$lidtool" dist work --port "$port" --threads 2 > "$work/worker2.log" 2>&1 &
w2=$!

wait "$coord_pid"
coord_rc=$?
coord_pid=""
wait "$w1" || fail "worker 1 failed"
wait "$w2" || fail "worker 2 failed"
[ "$coord_rc" -eq 0 ] || fail "coordinator exited $coord_rc, want 0 (all live)"

grep -q "4/4 shards" "$work/coord.log" \
  || fail "coordinator did not report 4/4 shards done"
redispatches="$(sed -n 's/.* \([0-9][0-9]*\) re-dispatch(es).*/\1/p' \
                  "$work/coord.log" | head -n1)"
[ -n "$redispatches" ] && [ "$redispatches" -ge 1 ] \
  || fail "coordinator reports no re-dispatch despite the killed worker"
echo "dist_smoke: campaign survived the killed worker ($redispatches re-dispatch(es))"

cmp -s "$work/golden.json" "$work/dist.json" \
  || fail "coordinator-merged aggregate differs from the single-process golden"
echo "dist_smoke: coordinator aggregate byte-identical to golden"

echo "dist_smoke: PASS ($(grep 'campaign done:' "$work/coord.log"))"
