// Unit tests of the cycle-accurate System simulator: block semantics,
// fanout masking, stop policies, environment handling and monitors.

#include <gtest/gtest.h>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/pearls/pearls.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using lip::StopPolicy;
using lip::Token;

/// src -> P -> sink with a chosen relay station chain on each channel.
lip::Design one_shell_design(std::vector<graph::RsKind> pre,
                             std::vector<graph::RsKind> post) {
  graph::Topology t;
  const auto src = t.add_source("src");
  const auto p = t.add_process("P", 1, 1);
  const auto snk = t.add_sink("out");
  t.connect({src, 0}, {p, 0}, std::move(pre));
  t.connect({p, 0}, {snk, 0}, std::move(post));
  lip::Design d(std::move(t));
  d.set_pearl(p, pearls::make_identity());
  return d;
}

TEST(System, UnboundPearlThrows) {
  graph::Topology t;
  const auto src = t.add_source("src");
  const auto p = t.add_process("P", 1, 1);
  const auto snk = t.add_sink("out");
  t.connect({src, 0}, {p, 0});
  t.connect({p, 0}, {snk, 0});
  lip::System sys(t);
  EXPECT_THROW(sys.step(), ApiError);
}

TEST(System, ArityMismatchThrows) {
  graph::Topology t;
  const auto src = t.add_source("src");
  const auto p = t.add_process("P", 1, 1);
  const auto snk = t.add_sink("out");
  t.connect({src, 0}, {p, 0});
  t.connect({p, 0}, {snk, 0});
  lip::System sys(t);
  EXPECT_THROW(sys.bind_pearl(p, pearls::make_adder()), ApiError);
}

TEST(System, StructuralErrorRejected) {
  graph::Topology t;
  const auto a = t.add_process("A", 1, 1);
  const auto b = t.add_process("B", 1, 1);
  // No relay station between two shells: structural error per the paper.
  t.connect({a, 0}, {b, 0});
  t.connect({b, 0}, {a, 0}, {graph::RsKind::kFull});
  EXPECT_THROW(lip::System sys(t), ApiError);
}

TEST(System, FullStationAddsOneCycleLatency) {
  // With k full stations in a row and a greedy environment, the first
  // valid token reaches the sink after (stations + shells) cycles.
  for (std::size_t k : {1u, 2u, 4u}) {
    auto d = one_shell_design(std::vector<graph::RsKind>(k,
                                                         graph::RsKind::kFull),
                              {});
    auto sys = d.instantiate();
    sys->record_sink_trace(true);
    sys->run(20);
    const auto& trace = sys->sink_cycle_trace(d.topology().nodes().size() - 1);
    // The shell output register is initialized valid, so the sink sees a
    // valid token at cycle 0 already; the *second* token (the source's
    // first datum) must cross k stations plus the shell: k + 1 cycles of
    // voids... except the shell's init token covers cycle 0 only.
    EXPECT_TRUE(trace[0].valid);
    for (std::size_t c = 1; c <= k; ++c) {
      EXPECT_FALSE(trace[c].valid) << "k=" << k << " cycle " << c;
    }
    EXPECT_TRUE(trace[k + 1].valid) << "k=" << k;
  }
}

TEST(System, HalfStationAddsOneCycleLatencyToo) {
  auto d = one_shell_design({graph::RsKind::kHalf, graph::RsKind::kHalf}, {});
  auto sys = d.instantiate();
  sys->record_sink_trace(true);
  sys->run(10);
  const auto& trace = sys->sink_cycle_trace(d.topology().nodes().size() - 1);
  EXPECT_TRUE(trace[0].valid);   // shell init token
  EXPECT_FALSE(trace[1].valid);  // pipeline fill
  EXPECT_FALSE(trace[2].valid);
  EXPECT_TRUE(trace[3].valid);
}

TEST(System, SinkBackPressureHoldsData) {
  auto d = one_shell_design({graph::RsKind::kFull}, {graph::RsKind::kFull});
  const graph::NodeId sink = 2;
  d.set_sink(sink, lip::SinkBehavior::script(
                       {false, true, true, false}));  // stop cycles 1,2 mod 4
  auto sys = d.instantiate({StopPolicy::kCasuDiscardOnVoid,
                            lip::StopResolution::kPessimistic,
                            /*hold_monitor=*/true});
  sys->run(200);
  const auto& stream = sys->sink_stream(sink);
  // In-order, no loss, no duplication despite back pressure.
  ASSERT_GE(stream.size(), 50u);
  EXPECT_EQ(stream[0].data, 0u);  // shell init
  for (std::size_t i = 2; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].data, stream[i - 1].data + 1) << i;
  }
}

TEST(System, SparseSourceStillInOrder) {
  auto d = one_shell_design({graph::RsKind::kFull}, {graph::RsKind::kHalf});
  d.set_source(0, lip::SourceBehavior::sparse_counter(7, 1, 3));
  auto sys = d.instantiate({StopPolicy::kCarloniStrict,
                            lip::StopResolution::kPessimistic,
                            /*hold_monitor=*/true});
  sys->run(300);
  const auto& stream = sys->sink_stream(2);
  ASSERT_GE(stream.size(), 30u);
  for (std::size_t i = 2; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].data, stream[i - 1].data + 1) << i;
  }
}

TEST(System, FanoutDeliversEachTokenOncePerBranch) {
  // src -> A (fork) -> two sinks with very different back pressure; each
  // branch must observe the same in-order stream exactly once.
  graph::Topology t;
  const auto src = t.add_source("src");
  const auto a = t.add_process("A", 1, 2);
  const auto s1 = t.add_sink("s1");
  const auto s2 = t.add_sink("s2");
  t.connect({src, 0}, {a, 0});
  t.connect({a, 0}, {s1, 0}, {graph::RsKind::kFull});
  t.connect({a, 1}, {s2, 0}, {graph::RsKind::kFull});
  lip::Design d(std::move(t));
  d.set_pearl(a, pearls::make_fork2());
  d.set_sink(s1, lip::SinkBehavior::periodic(3));  // slow consumer
  auto sys = d.instantiate();
  sys->run(300);
  const auto& st1 = sys->sink_stream(s1);
  const auto& st2 = sys->sink_stream(s2);
  ASSERT_GE(st1.size(), 50u);
  ASSERT_GE(st2.size(), 50u);
  // Index 0 is the fork's initialized output (0), index 1 the source's
  // first datum (also 0); the counter stream is strictly increasing
  // afterwards.
  for (std::size_t i = 2; i < st1.size(); ++i) {
    EXPECT_EQ(st1[i].data, st1[i - 1].data + 1);
  }
  for (std::size_t i = 2; i < st2.size(); ++i) {
    EXPECT_EQ(st2[i].data, st2[i - 1].data + 1);
  }
  // The slow branch throttles the shell, so the fast branch cannot run
  // ahead by more than the buffering between them.
  EXPECT_LE(st2.size(), st1.size() + 4);
}

TEST(System, StrictPolicySlowerUnderBackPressure) {
  // Under bursty sink stops, the strict protocol freezes voids in the
  // relay stations and blocks the shell on stopped voids; the paper's
  // variant discards those stops.  The variant must never be slower.
  for (std::uint64_t period : {2u, 3u, 5u}) {
    auto make = [&](StopPolicy pol) {
      auto d = one_shell_design(
          {graph::RsKind::kFull},
          {graph::RsKind::kFull, graph::RsKind::kFull});
      d.set_sink(2, lip::SinkBehavior::periodic(period));
      auto sys = d.instantiate({pol});
      sys->run(600);
      return sys->sink_count(2);
    };
    const auto strict_count = make(StopPolicy::kCarloniStrict);
    const auto variant_count = make(StopPolicy::kCasuDiscardOnVoid);
    EXPECT_GE(variant_count, strict_count) << "period=" << period;
  }
}

TEST(System, ChannelViewShowsStationContents) {
  auto d = one_shell_design({graph::RsKind::kFull, graph::RsKind::kHalf}, {});
  auto sys = d.instantiate();
  sys->run(3);
  const auto view = sys->channel_view(0);
  ASSERT_EQ(view.size(), 3u);  // producer hop + one hop after each station
  const auto contents = sys->station_contents(0);
  ASSERT_EQ(contents.size(), 2u);
}

TEST(System, GeneratorPearlSelfFires) {
  // A 0-input pearl fires whenever its output is free.
  graph::Topology t;
  const auto g = t.add_process("G", 0, 1);
  const auto snk = t.add_sink("out");
  t.connect({g, 0}, {snk, 0}, {graph::RsKind::kFull});
  lip::Design d(std::move(t));
  d.set_pearl(g, pearls::make_generator(10, 5));
  auto sys = d.instantiate();
  sys->run(50);
  const auto& stream = sys->sink_stream(snk);
  ASSERT_GE(stream.size(), 40u);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].data, 10 + 5 * i);
  }
}

TEST(System, ProtocolStateExcludesData) {
  auto d1 = one_shell_design({graph::RsKind::kFull}, {});
  auto d2 = one_shell_design({graph::RsKind::kFull}, {});
  d2.set_source(0, lip::SourceBehavior::cyclic({77, 88, 99}));
  auto s1 = d1.instantiate();
  auto s2 = d2.instantiate();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(s1->protocol_state(), s2->protocol_state()) << "cycle " << i;
    s1->step();
    s2->step();
  }
}

TEST(System, HoldMonitorAcceptsAllPolicies) {
  for (auto pol : {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    auto d = testutil::make_design(graph::make_reconvergent(1, 2, 2));
    d.set_sink(d.topology().nodes().size() - 1,
               lip::SinkBehavior::random_stop(3, 1, 3));
    auto sys = d.instantiate(
        {pol, lip::StopResolution::kPessimistic, /*hold_monitor=*/true});
    EXPECT_NO_THROW(sys->run(500));
  }
}

TEST(System, HoldMonitorCatchesInjectedViolation) {
  // Stall a station so it holds a valid, stopped datum, then corrupt it
  // via worst-case token injection: the hold monitor must flag the
  // change on the next cycle.
  auto d = one_shell_design({graph::RsKind::kFull}, {graph::RsKind::kFull});
  d.set_sink(2, lip::SinkBehavior::script({true}));  //always stop: data piles up
  auto sys = d.instantiate({lip::StopPolicy::kCasuDiscardOnVoid,
                            lip::StopResolution::kPessimistic,
                            /*hold_monitor=*/true});
  sys->run(20);  // stations now hold stopped valid data
  sys->saturate_stations(0xdeadbeef);  // overwrite held fronts
  EXPECT_THROW(sys->step(), ProtocolError);
}

}  // namespace
