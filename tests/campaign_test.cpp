// The campaign engine's contract: deterministic results at any worker
// thread count (byte-identical aggregated JSON at 1, 2 and 8 threads),
// budget-bounded jobs that degrade to kBudgetExhausted instead of
// stalling the pool, error isolation, and the standard job factories.

#include <gtest/gtest.h>

#include <set>

#include "liplib/campaign/campaign.hpp"
#include "liplib/campaign/jobs.hpp"
#include "liplib/campaign/report.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/support/json.hpp"

namespace {

using namespace liplib;
using namespace liplib::campaign;

/// A mixed batch covering every standard job kind, with fuzz jobs whose
/// topologies come from the per-job deterministic streams.
std::vector<Job> mixed_batch() {
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) {
    FuzzSpec spec;
    spec.shape = i % 2 ? FuzzSpec::Shape::kComposite
                       : FuzzSpec::Shape::kReconvergent;
    spec.size = 3;
    spec.check_equivalence = false;  // keep the unit test fast
    jobs.push_back(make_fuzz_job("fuzz/" + std::to_string(i), spec));
  }
  jobs.push_back(make_screening_job("screen/fig1",
                                    graph::make_fig1().topo));
  skeleton::ScreeningOptions wc;
  wc.worst_case_occupancy = true;
  jobs.push_back(make_screening_job(
      "screen/half_ring_wc",
      graph::make_ring_with_tap(1, 1, graph::RsKind::kHalf).topo, wc));
  jobs.push_back(make_steady_state_job("steady/fig2",
                                       graph::make_fig2().topo));
  jobs.push_back(make_spot_check_job("spot/fig1",
                                     graph::make_fig1().topo));
  return jobs;
}

TEST(Campaign, AggregateJsonIsByteIdenticalAcrossThreadCounts) {
  const auto jobs = mixed_batch();
  std::string reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    EngineOptions opts;
    opts.threads = threads;
    opts.base_seed = 42;
    opts.cycle_budget = 1u << 16;
    const auto results = Engine(opts).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    const std::string json = to_json(aggregate(results)).dump(2);
    const std::string csv = to_csv(results);
    if (threads == 1) {
      reference = json + csv;
    } else {
      EXPECT_EQ(json + csv, reference)
          << "thread count " << threads << " changed the campaign output";
    }
  }
}

TEST(Campaign, ResultsComeBackInJobIndexOrderWithEngineSeeds) {
  const auto jobs = mixed_batch();
  EngineOptions opts;
  opts.threads = 4;
  opts.base_seed = 7;
  const auto results = Engine(opts).run(jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].name, jobs[i].name);
    EXPECT_EQ(results[i].seed, job_seed(7, i));
  }
}

TEST(Campaign, JobSeedsAreDistinctAcrossIndicesAndBaseSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull}) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      seen.insert(job_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 300u);
}

TEST(Campaign, BudgetExhaustedJobDoesNotStallThePool) {
  // A worst-case-occupancy half-station ring deadlocks into a state the
  // analyzer still detects; to exhaust the budget instead, give a live
  // design a budget far below its transient so no period can be found.
  std::vector<Job> jobs;
  jobs.push_back(make_steady_state_job(
      "starved_budget", graph::make_loop_chain({{3, 7}, {2, 5}}).topo));
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(make_screening_job("fig1/" + std::to_string(i),
                                      graph::make_fig1().topo));
  }
  EngineOptions opts;
  opts.threads = 4;
  opts.cycle_budget = 2;  // below any transient+period of the loop chain
  const auto results = Engine(opts).run(jobs);
  EXPECT_EQ(results[0].outcome, Outcome::kBudgetExhausted);
  // The rest of the batch still completed (fig1 needs more than 2 cycles
  // too, so every job reports a verdict — none hangs).
  for (const auto& r : results) {
    EXPECT_TRUE(r.outcome == Outcome::kLive ||
                r.outcome == Outcome::kBudgetExhausted)
        << r.name << ": " << outcome_name(r.outcome);
  }
}

TEST(Campaign, ThrowingJobIsRecordedAsErrorAndIsolated) {
  std::vector<Job> jobs;
  jobs.push_back(Job{"boom", [](const JobContext&) -> JobResult {
                       throw ApiError("intentional failure");
                     }});
  jobs.push_back(make_screening_job("ok", graph::make_fig1().topo));
  const auto results = Engine(EngineOptions{}).run(jobs);
  EXPECT_EQ(results[0].outcome, Outcome::kError);
  EXPECT_NE(results[0].detail.find("intentional failure"),
            std::string::npos);
  EXPECT_EQ(results[1].outcome, Outcome::kLive);
}

TEST(Campaign, ScreeningJobsMatchKnownVerdicts) {
  // Fig. 1 is live with T = 4/5; the half-station ring deadlocks under
  // worst-case occupancy (the paper's stop latch).
  std::vector<Job> jobs;
  jobs.push_back(make_screening_job("fig1", graph::make_fig1().topo));
  skeleton::ScreeningOptions wc;
  wc.worst_case_occupancy = true;
  jobs.push_back(make_screening_job(
      "half_ring",
      graph::make_ring_with_tap(1, 1, graph::RsKind::kHalf).topo, wc));
  const auto results = Engine(EngineOptions{}).run(jobs);
  EXPECT_EQ(results[0].outcome, Outcome::kLive);
  EXPECT_EQ(results[0].throughput, Rational(4, 5));
  EXPECT_TRUE(results[1].outcome == Outcome::kDeadlock ||
              results[1].outcome == Outcome::kStarvation)
      << outcome_name(results[1].outcome);
}

TEST(Campaign, ProveJobsMatchKnownVerdicts) {
  // Fig. 1 is provably deadlock-free; the half-station ring from
  // worst-case occupancy is the paper's stop latch, which the prover
  // must witness with a counterexample.
  std::vector<Job> jobs;
  jobs.push_back(make_prove_job("prove/fig1", graph::make_fig1().topo));
  prove::ProveOptions wc;
  wc.worst_case_occupancy = true;
  jobs.push_back(make_prove_job(
      "prove/half_ring_wc",
      graph::make_ring_with_tap(1, 1, graph::RsKind::kHalf).topo, wc));
  const auto results = Engine(EngineOptions{}).run(jobs);
  EXPECT_EQ(results[0].outcome, Outcome::kLive) << results[0].detail;
  EXPECT_EQ(results[1].outcome, Outcome::kDeadlock) << results[1].detail;
  EXPECT_NE(results[1].detail.find("deadlock at depth"), std::string::npos);
}

TEST(Campaign, ProveCrossCheckCampaignAgreesOnRandomComposites) {
  // 48 random composites: the prover, the linter and the worst-case
  // screen must agree on every one (any disagreement is kMismatch).
  const auto jobs = make_prove_crosscheck_campaign(48);
  ASSERT_EQ(jobs.size(), 48u);
  EngineOptions opts;
  opts.base_seed = 7;
  // Agreement (even on a deadlock) is kLive — the campaign tests the
  // differential, so `lidtool campaign prove` exits 0 unless the
  // analyses disagree.  The detail records which verdict was agreed.
  std::size_t agreed_deadlocks = 0;
  for (const auto& r : Engine(opts).run(jobs)) {
    ASSERT_EQ(r.outcome, Outcome::kLive)
        << r.name << ": " << outcome_name(r.outcome) << " " << r.detail;
    agreed_deadlocks += r.detail.find("agreed: deadlock") != std::string::npos;
  }
  EXPECT_GT(agreed_deadlocks, 0u);
  EXPECT_LT(agreed_deadlocks, 48u);
}

TEST(Campaign, WorkIsSharedAcrossWorkers) {
  // 64 trivial jobs on 4 threads: every worker should execute some, and
  // the counts must sum to the batch.
  std::vector<Job> jobs;
  for (int i = 0; i < 64; ++i) {
    jobs.push_back(make_screening_job("fig1/" + std::to_string(i),
                                      graph::make_fig1().topo));
  }
  EngineOptions opts;
  opts.threads = 4;
  RunStats stats;
  const auto results = Engine(opts).run(jobs, &stats);
  ASSERT_EQ(results.size(), 64u);
  ASSERT_EQ(stats.jobs_per_worker.size(), 4u);
  std::size_t sum = 0;
  for (auto n : stats.jobs_per_worker) sum += n;
  EXPECT_EQ(sum, 64u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(Campaign, AggregateHistogramsAreExactAndOrdered) {
  std::vector<JobResult> results(5);
  for (std::size_t i = 0; i < results.size(); ++i) results[i].index = i;
  results[0].outcome = Outcome::kLive;
  results[0].has_throughput = true;
  results[0].throughput = Rational(1, 2);
  results[1].outcome = Outcome::kLive;
  results[1].has_throughput = true;
  results[1].throughput = Rational(4, 5);
  results[2].outcome = Outcome::kLive;
  results[2].has_throughput = true;
  results[2].throughput = Rational(1, 2);
  results[3].outcome = Outcome::kDeadlock;
  results[4].outcome = Outcome::kBudgetExhausted;

  const auto agg = aggregate(results);
  EXPECT_EQ(agg.total, 5u);
  EXPECT_EQ(agg.count(Outcome::kLive), 3u);
  EXPECT_EQ(agg.count(Outcome::kDeadlock), 1u);
  EXPECT_EQ(agg.count(Outcome::kBudgetExhausted), 1u);
  ASSERT_EQ(agg.throughputs.size(), 2u);
  EXPECT_EQ(agg.throughputs[0].first, Rational(1, 2));
  EXPECT_EQ(agg.throughputs[0].second, 2u);
  EXPECT_EQ(agg.throughputs[1].first, Rational(4, 5));
  EXPECT_EQ(agg.min_throughput(), Rational(1, 2));
  EXPECT_EQ(agg.max_throughput(), Rational(4, 5));
  ASSERT_EQ(agg.failures.size(), 2u);
  EXPECT_EQ(agg.failures[0].index, 3u);

  const std::string json = to_json(agg).dump();
  EXPECT_NE(json.find("\"schema\":\"liplib.campaign.aggregate/2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"live\":3"), std::string::npos);
}

TEST(Campaign, JsonWriterEscapesAndKeepsOrder) {
  const std::string doc = Json::object()
                              .set("b", "line\n\"quoted\"")
                              .set("a", std::uint64_t{18446744073709551615ull})
                              .set("r", Rational(4, 5))
                              .dump();
  EXPECT_EQ(doc,
            "{\"b\":\"line\\n\\\"quoted\\\"\","
            "\"a\":18446744073709551615,\"r\":\"4/5\"}");
}

TEST(Campaign, T1FuzzCampaignHas750Jobs) {
  const auto jobs = make_t1_fuzz_campaign();
  EXPECT_EQ(jobs.size(), 750u);
}

// The combining fold behind the distributed merge: merge() must be
// associative with aggregate({}) as the identity, and any block
// partition of a result vector must fold to the bytes aggregate()
// itself produces — otherwise sharded campaigns could drift from the
// single-process report.
TEST(Campaign, MergeIsAssociativeWithEmptyIdentity) {
  EngineOptions opts;
  opts.threads = 2;
  opts.base_seed = 9;
  opts.cycle_budget = 1u << 16;
  const auto results = Engine(opts).run(mixed_batch());
  const std::string golden = to_json(aggregate(results)).dump();

  // Identity on both sides.
  const Aggregate whole = aggregate(results);
  const Aggregate empty = aggregate({});
  EXPECT_EQ(empty.total, 0u);
  EXPECT_EQ(to_json(merge(empty, whole)).dump(), golden);
  EXPECT_EQ(to_json(merge(whole, empty)).dump(), golden);
  EXPECT_EQ(to_json(merge(empty, empty)).dump(),
            to_json(empty).dump());

  // Every 3-way split, folded both ways.
  for (std::size_t a = 0; a <= results.size(); ++a) {
    for (std::size_t b = a; b <= results.size(); ++b) {
      const Aggregate x = aggregate(
          {results.begin(), results.begin() + static_cast<long>(a)});
      const Aggregate y =
          aggregate({results.begin() + static_cast<long>(a),
                     results.begin() + static_cast<long>(b)});
      const Aggregate z =
          aggregate({results.begin() + static_cast<long>(b), results.end()});
      EXPECT_EQ(to_json(merge(merge(x, y), z)).dump(), golden);
      EXPECT_EQ(to_json(merge(x, merge(y, z))).dump(), golden);
    }
  }
}

TEST(Campaign, AggregateJsonRoundTripsLosslessly) {
  EngineOptions opts;
  opts.threads = 2;
  opts.base_seed = 5;
  opts.cycle_budget = 64;  // tiny budget: force failures into the doc
  const auto results = Engine(opts).run(mixed_batch());
  const auto agg = aggregate(results);
  EXPECT_FALSE(agg.failures.empty());
  const std::string bytes = to_json(agg).dump(2);
  const Aggregate back = aggregate_from_json(Json::parse(bytes));
  EXPECT_EQ(to_json(back).dump(2), bytes);
}

TEST(Campaign, IndexBaseShiftsJobIdentity) {
  const auto jobs = mixed_batch();
  EngineOptions whole_opts;
  whole_opts.threads = 2;
  whole_opts.base_seed = 4242;
  whole_opts.cycle_budget = 1u << 16;
  const auto whole = Engine(whole_opts).run(jobs);

  const std::size_t lo = 5, hi = 11;
  EngineOptions slice_opts = whole_opts;
  slice_opts.index_base = lo;
  const std::vector<Job> slice(jobs.begin() + lo, jobs.begin() + hi);
  const auto part = Engine(slice_opts).run(slice);
  ASSERT_EQ(part.size(), hi - lo);
  for (std::size_t i = 0; i < part.size(); ++i) {
    EXPECT_EQ(part[i].index, lo + i);
    EXPECT_EQ(part[i].seed, whole[lo + i].seed);
    EXPECT_EQ(part[i].outcome, whole[lo + i].outcome);
    EXPECT_EQ(part[i].cycles, whole[lo + i].cycles);
  }
}

}  // namespace
