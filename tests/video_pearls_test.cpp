// Unit tests for the block-based "video" pearls.

#include <gtest/gtest.h>

#include "liplib/pearls/video.hpp"
#include "liplib/support/check.hpp"

namespace {

using namespace liplib;

std::uint64_t run1(lip::Pearl& p, std::uint64_t in) {
  std::uint64_t out = 0;
  p.step(std::span<const std::uint64_t>(&in, 1),
         std::span<std::uint64_t>(&out, 1));
  return out;
}

TEST(VideoPearls, Transform8IsStreamingAndBlockAccurate) {
  auto p = pearls::make_block_transform8();
  // First 8 outputs are the zero-initialized coefficient buffer.
  std::vector<std::uint64_t> first;
  for (std::uint64_t i = 1; i <= 8; ++i) first.push_back(run1(*p, i));
  for (auto v : first) EXPECT_EQ(v, 0u);
  // The next 8 outputs are the transform of block (1..8).  The DC
  // coefficient of a Walsh-Hadamard transform is the block sum = 36.
  std::vector<std::uint64_t> coeffs;
  for (std::uint64_t i = 0; i < 8; ++i) coeffs.push_back(run1(*p, 100));
  EXPECT_EQ(coeffs[0], 36u);
  // The transform is linear: doubling the input doubles each coefficient.
  auto q = pearls::make_block_transform8();
  for (std::uint64_t i = 1; i <= 8; ++i) run1(*q, 2 * i);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(run1(*q, 0), 2 * coeffs[i]) << i;
  }
}

TEST(VideoPearls, Transform8SustainsFullRate) {
  // Double buffering: feeding two different blocks back-to-back gives
  // both transforms with no gaps.
  auto p = pearls::make_block_transform8();
  for (std::uint64_t i = 0; i < 8; ++i) run1(*p, 1);  // block A: all ones
  std::uint64_t dc_a = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto c = run1(*p, 5);  // block B streams in while A streams out
    if (i == 0) dc_a = c;
  }
  EXPECT_EQ(dc_a, 8u);  // sum of ones
  EXPECT_EQ(run1(*p, 0), 40u);  // DC of block B arrives immediately after
}

TEST(VideoPearls, CloneResetRestartsTheBlock) {
  auto p = pearls::make_block_transform8();
  run1(*p, 7);
  run1(*p, 7);
  auto q = p->clone_reset();
  for (std::uint64_t i = 1; i <= 8; ++i) EXPECT_EQ(run1(*q, i), 0u);
  EXPECT_EQ(run1(*q, 0), 36u);
}

TEST(VideoPearls, Quantizer) {
  auto p = pearls::make_quantizer(4);
  EXPECT_EQ(run1(*p, 15), 3u);
  EXPECT_EQ(run1(*p, 16), 4u);
  EXPECT_EQ(run1(*p, 3), 0u);
  EXPECT_THROW(pearls::make_quantizer(0), ApiError);
}

TEST(VideoPearls, RleMarksRunsAndData) {
  auto p = pearls::make_rle_marker();
  const auto d1 = run1(*p, 42);
  EXPECT_EQ(d1 & 0x00ffffffffffffffull, 42u);
  EXPECT_NE(d1 >> 56, 0u);  // data tag
  const auto r1 = run1(*p, 0);
  const auto r2 = run1(*p, 0);
  EXPECT_EQ(r1 & 0xff, 1u);  // run length 1
  EXPECT_EQ(r2 & 0xff, 2u);  // run length 2
  EXPECT_EQ(r1 >> 56, 0x5au);
  const auto d2 = run1(*p, 9);
  EXPECT_EQ(d2 & 0xff, 9u);
  const auto r3 = run1(*p, 0);
  EXPECT_EQ(r3 & 0xff, 1u);  // run counter restarted
}

TEST(VideoPearls, Blender) {
  auto p = pearls::make_blender(256);  // all-a
  const std::uint64_t in[2] = {100, 50};
  std::uint64_t out = 0;
  p->step(in, std::span<std::uint64_t>(&out, 1));
  EXPECT_EQ(out, 100u);
  auto q = pearls::make_blender(128);  // half-half
  q->step(in, std::span<std::uint64_t>(&out, 1));
  EXPECT_EQ(out, 75u);
  EXPECT_THROW(pearls::make_blender(300), ApiError);
}

}  // namespace
