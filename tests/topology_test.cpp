// Unit tests for the structural topology layer: builder contracts,
// validation rules, SCCs, cycle detection and rendering.

#include <gtest/gtest.h>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/graph/topology.hpp"

namespace {

using namespace liplib;
using graph::RsKind;
using graph::Topology;

TEST(Topology, BuilderRejectsBadRefs) {
  Topology t;
  const auto p = t.add_process("P", 1, 1);
  EXPECT_THROW(t.connect({p, 1}, {p, 0}), ApiError);  // bad out port
  EXPECT_THROW(t.connect({p, 0}, {p, 2}), ApiError);  // bad in port
  EXPECT_THROW(t.connect({p + 5, 0}, {p, 0}), ApiError);
}

TEST(Topology, BuilderRejectsDoubleDrive) {
  Topology t;
  const auto s1 = t.add_source("s1");
  const auto s2 = t.add_source("s2");
  const auto p = t.add_process("P", 1, 1);
  t.connect({s1, 0}, {p, 0});
  EXPECT_THROW(t.connect({s2, 0}, {p, 0}), ApiError);
}

TEST(Topology, ValidateFindsUnconnectedPorts) {
  Topology t;
  t.add_process("P", 1, 1);
  const auto report = t.validate();
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("not driven"), std::string::npos);
  EXPECT_NE(report.to_string().find("drives nothing"), std::string::npos);
}

TEST(Topology, ValidateEnforcesStationBetweenShells) {
  Topology t;
  const auto a = t.add_process("A", 1, 1);
  const auto b = t.add_process("B", 1, 1);
  t.connect({a, 0}, {b, 0});  // no station: error
  t.connect({b, 0}, {a, 0}, {RsKind::kHalf});
  const auto report = t.validate();
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("no relay station"), std::string::npos);
}

TEST(Topology, SourceAndSinkChannelsNeedNoStation) {
  Topology t;
  const auto src = t.add_source("src");
  const auto p = t.add_process("P", 1, 1);
  const auto snk = t.add_sink("out");
  t.connect({src, 0}, {p, 0});
  t.connect({p, 0}, {snk, 0});
  EXPECT_TRUE(t.validate().ok());
}

TEST(Topology, CountsAndLookups) {
  auto gen = graph::make_reconvergent(1, 1, 2);
  const auto& t = gen.topo;
  EXPECT_EQ(t.num_processes(), 3u);
  EXPECT_EQ(t.num_sources(), 1u);
  EXPECT_EQ(t.num_sinks(), 1u);
  EXPECT_EQ(t.total_stations(), 5u);  // 2+2 long, 1 short
  EXPECT_EQ(t.total_full_stations(), 5u);
  EXPECT_EQ(t.total_half_stations(), 0u);
  EXPECT_EQ(t.channels_from(gen.fork).size(), 2u);
  EXPECT_EQ(t.channels_into(gen.join).size(), 2u);
  EXPECT_TRUE(t.channel_into({gen.join, 0}).has_value());
  EXPECT_TRUE(t.channel_into({gen.join, 1}).has_value());
}

TEST(Topology, FeedforwardDetection) {
  EXPECT_TRUE(graph::make_pipeline(3, 1).topo.is_feedforward());
  EXPECT_TRUE(graph::make_tree(2, 1).topo.is_feedforward());
  EXPECT_TRUE(graph::make_reconvergent(1, 1, 1).topo.is_feedforward());
  EXPECT_FALSE(graph::make_fig2().topo.is_feedforward());
  EXPECT_FALSE(graph::make_closed_ring({1}).topo.is_feedforward());
  EXPECT_FALSE(graph::make_loop_chain({{1, 2}}).topo.is_feedforward());
}

TEST(Topology, ChannelsOnCyclesMarksLoopChannelsOnly) {
  auto gen = graph::make_loop_chain({{1, 2}}, 1);
  const auto on_cycle = gen.topo.channels_on_cycles();
  // Exactly the loop channels are marked.
  std::size_t marked = 0;
  for (bool b : on_cycle) marked += b;
  EXPECT_EQ(marked, gen.loops[0].size());
  for (auto c : gen.loops[0]) EXPECT_TRUE(on_cycle[c]);
}

TEST(Topology, SelfLoopDetected) {
  Topology t;
  const auto p = t.add_process("P", 1, 1);
  t.connect({p, 0}, {p, 0}, {RsKind::kFull});
  EXPECT_FALSE(t.is_feedforward());
  const auto on_cycle = t.channels_on_cycles();
  EXPECT_TRUE(on_cycle[0]);
}

TEST(Topology, ProcessSccs) {
  auto gen = graph::make_loop_chain({{2, 3}, {1, 2}});
  const auto sccs = gen.topo.process_sccs();
  // Two nontrivial components (the loops) of sizes 3 and 2.
  std::vector<std::size_t> sizes;
  for (const auto& c : sccs) {
    if (c.size() > 1) sizes.push_back(c.size());
  }
  std::sort(sizes.begin(), sizes.end());
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 3u);
}

TEST(Topology, DotRendering) {
  auto gen = graph::make_fig1();
  const std::string dot = gen.topo.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("label=\"F\""), std::string::npos);  // one full station
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Topology, ChannelStationCounts) {
  graph::Channel c;
  c.stations = {RsKind::kFull, RsKind::kHalf, RsKind::kFull};
  EXPECT_EQ(c.num_stations(), 3u);
  EXPECT_EQ(c.num_full(), 2u);
  EXPECT_EQ(c.num_half(), 1u);
}

// ---------------------------------------------------------------------
// Analysis unit tests (structural; simulation agreement is covered by
// throughput_test.cpp).
// ---------------------------------------------------------------------

TEST(Analysis, LoopFormula) {
  EXPECT_EQ(graph::loop_throughput(2, 2), Rational(1, 2));
  EXPECT_EQ(graph::loop_throughput(3, 0), Rational(1));
  EXPECT_EQ(graph::loop_throughput(1, 4), Rational(1, 5));
  EXPECT_THROW(graph::loop_throughput(0, 3), ApiError);
}

TEST(Analysis, ReconvergentFormula) {
  EXPECT_EQ(graph::reconvergent_throughput(5, 1), Rational(4, 5));
  EXPECT_EQ(graph::reconvergent_throughput(7, 0), Rational(1));
  EXPECT_THROW(graph::reconvergent_throughput(0, 0), ApiError);
  EXPECT_THROW(graph::reconvergent_throughput(3, 4), ApiError);
}

TEST(Analysis, EnumerateCyclesFindsAllRingCycles) {
  auto gen = graph::make_closed_ring({1, 2, 3});
  const auto cycles = graph::enumerate_cycles(gen.topo);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].shells, 3u);
  EXPECT_EQ(cycles[0].stations, 6u);
  EXPECT_EQ(cycles[0].throughput, Rational(1, 3));
}

TEST(Analysis, EnumerateCyclesHandlesParallelChannels) {
  Topology t;
  const auto a = t.add_process("A", 2, 2);
  const auto b = t.add_process("B", 2, 2);
  t.connect({a, 0}, {b, 0}, {RsKind::kFull});
  t.connect({a, 1}, {b, 1}, {RsKind::kFull, RsKind::kFull});
  t.connect({b, 0}, {a, 0}, {RsKind::kFull});
  t.connect({b, 1}, {a, 1}, {RsKind::kFull});
  // Cycles: each forward channel pairs with each backward channel: 4.
  const auto cycles = graph::enumerate_cycles(t);
  EXPECT_EQ(cycles.size(), 4u);
}

TEST(Analysis, PredictFig1) {
  auto gen = graph::make_fig1();
  const auto pred = graph::predict_throughput(gen.topo);
  EXPECT_EQ(pred.cycle_bound, Rational(1));  // feedforward
  EXPECT_EQ(pred.reconvergence_bound, Rational(4, 5));
  EXPECT_EQ(pred.system(), Rational(4, 5));
  ASSERT_FALSE(pred.reconvergences.empty());
  EXPECT_EQ(pred.reconvergences[0].i(), 1u);
  EXPECT_EQ(pred.reconvergences[0].m(), 5u);
}

TEST(Analysis, PredictFig2) {
  auto gen = graph::make_fig2();
  const auto pred = graph::predict_throughput(gen.topo);
  EXPECT_EQ(pred.cycle_bound, Rational(1, 2));
  EXPECT_EQ(pred.system(), Rational(1, 2));
}

TEST(Analysis, LongestRegisterPath) {
  auto gen = graph::make_pipeline(3, 2);
  // src->(2st)->P0->(2st)->P1->(2st)->P2->(2st)->out: 4 channels, each
  // stations+producer-register = 3: total 12.
  const auto longest = graph::longest_register_path(gen.topo);
  ASSERT_TRUE(longest.has_value());
  EXPECT_EQ(*longest, 12u);
  EXPECT_FALSE(
      graph::longest_register_path(graph::make_fig2().topo).has_value());
}

TEST(Analysis, TransientBoundPositive) {
  EXPECT_GT(graph::transient_bound(graph::make_fig1().topo), 0u);
}

}  // namespace
