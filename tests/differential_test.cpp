// The full differential matrix: for shared random topologies, the three
// execution engines (cycle-accurate System, control-plane Skeleton,
// event-driven RTL netlist) must agree under every stop policy — the
// library's equivalent of the paper's cross-validation between its RTL
// implementation, its protocol analysis and its SMV models.

#include <gtest/gtest.h>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/rtl/rtl_system.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using lip::StopPolicy;

struct MatrixCase {
  std::uint64_t seed;
  StopPolicy policy;
  bool cyclic;
};

class DifferentialMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(DifferentialMatrix, AllEnginesAgree) {
  const auto p = GetParam();
  Rng rng(p.seed * 31 + 7);
  auto gen = p.cyclic
                 ? graph::make_random_composite(rng, 2, true, false)
                 : graph::make_random_feedforward(rng, 5, 2, true);
  const std::uint64_t kCycles = 180;

  // Engine 1: full-data cycle-accurate simulation.
  auto d = testutil::make_design(gen);
  auto sys = d.instantiate({p.policy});
  sys->record_sink_trace(true);
  sys->run(kCycles);

  // Engine 2: event-driven RTL netlist.
  rtl::RtlSystem rtl(d.topology(), {p.policy});
  for (auto proc : gen.processes) {
    const auto& node = d.topology().node(proc);
    rtl.bind_pearl(proc, testutil::default_pearl(node.num_inputs,
                                                 node.num_outputs));
  }
  rtl.run_cycles(kCycles);

  for (auto proc : gen.processes) {
    EXPECT_EQ(rtl.shell_fire_count(proc), sys->shell_fire_count(proc))
        << "fires of " << d.topology().node(proc).name;
  }
  for (auto snk : gen.sinks) {
    const auto& a = sys->sink_cycle_trace(snk);
    const auto& b = rtl.sink_cycle_trace(snk);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].str(), b[i].str())
          << d.topology().node(snk).name << " cycle " << i;
    }
  }

  // Engine 3: skeleton — same per-shell fire counts after kCycles.
  skeleton::Skeleton sk(gen.topo, {p.policy});
  sk.run(kCycles);
  for (auto proc : gen.processes) {
    EXPECT_EQ(sk.fires(proc), sys->shell_fire_count(proc))
        << "skeleton fires of " << d.topology().node(proc).name;
  }

  // And the streams obey the golden reference.
  const auto equiv = lip::check_latency_equivalence(d, {p.policy}, kCycles);
  EXPECT_TRUE(equiv.ok) << equiv.detail;
}

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (auto pol :
         {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
      for (bool cyclic : {false, true}) {
        cases.push_back({seed, pol, cyclic});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialMatrix, ::testing::ValuesIn(matrix_cases()),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.policy == StopPolicy::kCarloniStrict ? "_strict"
                                                              : "_variant") +
             (info.param.cyclic ? "_cyclic" : "_dag");
    });

}  // namespace
