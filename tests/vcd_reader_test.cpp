// The VCD reader, round-tripping the writer, and waveform-level
// verification of the protocol's hold-on-stop invariant on real dumps —
// checking the waves the way one would in GTKWave, but mechanically.

#include <gtest/gtest.h>

#include <sstream>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/rtl/rtl_system.hpp"
#include "liplib/support/vcd.hpp"
#include "liplib/support/vcd_reader.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;

TEST(VcdReader, RoundTripsWriterOutput) {
  std::ostringstream os;
  VcdWriter w(os, "top");
  const auto a = w.add_signal("a", 1);
  const auto d = w.add_signal("d", 8);
  w.begin_dump();
  w.set_time(0);
  w.change(a, 1);
  w.change(d, 0x2a);
  w.set_time(7);
  w.change(a, 0);
  w.set_time(9);
  w.change(d, 0xff);

  const auto dump = VcdDump::parse_string(os.str());
  ASSERT_TRUE(dump.has_signal("top.a"));
  ASSERT_TRUE(dump.has_signal("top.d"));
  EXPECT_EQ(dump.end_time(), 9u);
  EXPECT_EQ(dump.value_at("top.a", 0), 1u);
  EXPECT_EQ(dump.value_at("top.a", 6), 1u);
  EXPECT_EQ(dump.value_at("top.a", 7), 0u);
  EXPECT_EQ(dump.value_at("top.d", 8), 0x2au);
  EXPECT_EQ(dump.value_at("top.d", 9), 0xffu);
  // The initial dumpvars 'x' is an unknown.
  EXPECT_EQ(dump.changes("top.a").front().value, std::nullopt);
}

TEST(VcdReader, RejectsGarbage) {
  EXPECT_THROW(VcdDump::parse_string("$enddefinitions $end\n1?"), ApiError);
  EXPECT_THROW(VcdDump::parse_string("$enddefinitions $end\nnonsense"),
               ApiError);
  std::ostringstream os;
  VcdWriter w(os, "top");
  w.add_signal("a", 1);
  w.begin_dump();
  const auto dump = VcdDump::parse_string(os.str());
  EXPECT_THROW(dump.changes("top.missing"), ApiError);
}

TEST(VcdReader, RejectsTruncatedHeader) {
  // Header sections cut off mid-definition must fail loudly, not parse
  // as an empty dump.
  EXPECT_THROW(VcdDump::parse_string("$scope module top"), ApiError);
  EXPECT_THROW(VcdDump::parse_string("$scope module top $end\n$var wire 1 !"),
               ApiError);
  EXPECT_THROW(
      VcdDump::parse_string("$var wire 1 ! a $wrong\n$enddefinitions $end"),
      ApiError);
}

TEST(VcdReader, RejectsUnknownIdentifierCode) {
  const char* header =
      "$var wire 1 ! a $end\n$enddefinitions $end\n#0\n";
  // Scalar and vector changes referencing an undeclared identifier code.
  EXPECT_THROW(VcdDump::parse_string(std::string(header) + "1?"), ApiError);
  EXPECT_THROW(VcdDump::parse_string(std::string(header) + "b101 ?"),
               ApiError);
  // The declared code still works.
  const auto dump = VcdDump::parse_string(std::string(header) + "1!");
  EXPECT_EQ(dump.value_at("a", 0), 1u);
}

TEST(VcdReader, RejectsMalformedAndOutOfOrderTimestamps) {
  const char* header = "$var wire 1 ! a $end\n$enddefinitions $end\n";
  EXPECT_THROW(VcdDump::parse_string(std::string(header) + "#garbage\n1!"),
               ApiError);
  EXPECT_THROW(VcdDump::parse_string(std::string(header) + "#12xyz\n1!"),
               ApiError);
  // Timestamps must be monotonically non-decreasing.
  EXPECT_THROW(
      VcdDump::parse_string(std::string(header) + "#5\n1!\n#3\n0!"),
      ApiError);
  // Equal timestamps are fine (repeated sections happen in real dumps).
  const auto dump =
      VcdDump::parse_string(std::string(header) + "#5\n1!\n#5\n0!");
  EXPECT_EQ(dump.value_at("a", 5), 0u);
}

TEST(VcdReader, HoldOnStopHoldsOnDumpedWaveforms) {
  // Dump a jittery Fig. 1 run from the cycle-accurate simulator (one
  // timestamp per cycle), then re-check on the waves: whenever a hop
  // shows valid=1 and stop=1 at cycle t, the same datum is presented at
  // t+1.
  auto gen = graph::make_fig1();
  auto d = testutil::make_design(gen);
  d.set_sink(gen.sinks[0], lip::SinkBehavior::random_stop(21, 1, 3));
  auto sys = d.instantiate();
  std::ostringstream os;
  sys->attach_vcd(os);
  sys->run(150);

  const auto dump = VcdDump::parse_string(os.str());
  std::size_t hops_checked = 0, holds_seen = 0;
  for (const auto& name : dump.signal_names()) {
    const auto pos = name.rfind("_valid");
    if (pos == std::string::npos || pos + 6 != name.size()) continue;
    const std::string base = name.substr(0, pos);
    ASSERT_TRUE(dump.has_signal(base + "_stop")) << base;
    ASSERT_TRUE(dump.has_signal(base + "_data")) << base;
    ++hops_checked;
    for (std::uint64_t t = 0; t + 1 < dump.end_time(); ++t) {
      const auto valid = dump.value_at(base + "_valid", t);
      const auto stop = dump.value_at(base + "_stop", t);
      if (valid == 1u && stop == 1u) {
        ++holds_seen;
        EXPECT_EQ(dump.value_at(base + "_valid", t + 1), 1u)
            << base << " at " << t;
        EXPECT_EQ(dump.value_at(base + "_data", t + 1),
                  dump.value_at(base + "_data", t))
            << base << " at " << t;
      }
    }
  }
  EXPECT_GE(hops_checked, 5u);
  EXPECT_GT(holds_seen, 10u);  // the jittery sink must exercise holds
}

TEST(VcdReader, HoldOnStopHoldsOnRtlWaveforms) {
  // Same invariant, checked on the *event-driven RTL* netlist's dump.
  // The RTL kernel uses two time units per clock cycle with rising edges
  // at odd times; even times 2k+2 are stable mid-cycle sample points for
  // cycle k+1's settled wires.
  auto gen = graph::make_fig1();
  rtl::RtlSystem rtl(gen.topo);
  for (auto p : gen.processes) {
    const auto& node = gen.topo.node(p);
    rtl.bind_pearl(p, testutil::default_pearl(node.num_inputs,
                                              node.num_outputs));
  }
  std::ostringstream os;
  rtl.attach_vcd(os);
  rtl.run_cycles(80);

  const auto dump = VcdDump::parse_string(os.str());
  ASSERT_TRUE(dump.has_signal("lid.clk"));
  std::size_t holds_seen = 0;
  for (const auto& name : dump.signal_names()) {
    const auto pos = name.rfind("_valid");
    if (pos == std::string::npos || pos + 6 != name.size()) continue;
    const std::string base = name.substr(0, pos);
    for (std::uint64_t t = 2; t + 2 < dump.end_time(); t += 2) {
      const auto valid = dump.value_at(base + "_valid", t);
      const auto stop = dump.value_at(base + "_stop", t);
      if (valid == 1u && stop == 1u) {
        ++holds_seen;
        EXPECT_EQ(dump.value_at(base + "_valid", t + 2), 1u)
            << base << " at " << t;
        EXPECT_EQ(dump.value_at(base + "_data", t + 2),
                  dump.value_at(base + "_data", t))
            << base << " at " << t;
      }
    }
  }
  // Fig. 1's periodic back pressure on the short branch exercises holds.
  EXPECT_GT(holds_seen, 5u);
}

}  // namespace
