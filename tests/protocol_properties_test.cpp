// Protocol-level theorems, tested as properties:
//  1. data independence — the protocol dynamics (firings, valid/stop
//     patterns) depend only on the topology and the environments'
//     valid/stop behaviour, never on data values or pearl functions;
//  2. policy stream equality — the strict protocol and the paper's
//     variant are latency equivalent to each other: same sink streams,
//     possibly at different rates;
//  3. monotonicity — adding back pressure can never increase the number
//     of tokens delivered in a fixed horizon.

#include <gtest/gtest.h>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/pearls/pearls.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using lip::StopPolicy;

TEST(ProtocolProperties, DataIndependence) {
  // Two designs on the same topology with entirely different pearls and
  // source data must show identical protocol dynamics cycle by cycle.
  Rng rng(1123);
  for (int i = 0; i < 6; ++i) {
    auto gen = graph::make_random_composite(rng, 2, true, false);

    auto d1 = testutil::make_design(gen);
    lip::Design d2(gen.topo);
    for (auto p : gen.processes) {
      const auto& node = gen.topo.node(p);
      if (node.num_inputs == 1 && node.num_outputs == 1) {
        d2.set_pearl(p, pearls::make_bit_mixer(77));
      } else {
        d2.set_pearl(p, testutil::default_pearl(node.num_inputs,
                                                node.num_outputs));
      }
    }
    for (auto s : gen.sources) {
      d2.set_source(s, lip::SourceBehavior::cyclic({5, 9, 13}));
    }

    auto s1 = d1.instantiate();
    auto s2 = d2.instantiate();
    for (int c = 0; c < 120; ++c) {
      ASSERT_EQ(s1->protocol_state(), s2->protocol_state())
          << "iteration " << i << " cycle " << c;
      s1->step();
      s2->step();
    }
    EXPECT_EQ(s1->total_fires(), s2->total_fires());
  }
}

TEST(ProtocolProperties, PoliciesProduceTheSameStreams) {
  Rng rng(5151);
  for (int i = 0; i < 6; ++i) {
    auto gen = graph::make_random_feedforward(rng, 5, 3, true);
    auto d = testutil::make_design(gen);
    for (auto s : gen.sinks) {
      d.set_sink(s, lip::SinkBehavior::periodic(2 + i % 3));
    }
    auto strict = d.instantiate({StopPolicy::kCarloniStrict});
    auto variant = d.instantiate({StopPolicy::kCasuDiscardOnVoid});
    strict->run(400);
    variant->run(400);
    for (auto s : gen.sinks) {
      const auto& a = strict->sink_stream(s);
      const auto& b = variant->sink_stream(s);
      // One is a prefix of the other (same data, maybe different rates).
      const std::size_t n = std::min(a.size(), b.size());
      for (std::size_t k = 0; k < n; ++k) {
        ASSERT_EQ(a[k].data, b[k].data)
            << "iteration " << i << " token " << k;
      }
      // And the variant is never behind.
      EXPECT_GE(b.size(), a.size()) << "iteration " << i;
    }
  }
}

TEST(ProtocolProperties, BackPressureMonotonicity) {
  auto gen = graph::make_reconvergent(1, 2, 2);
  auto d = testutil::make_design(gen);
  std::uint64_t prev = ~0ull;
  for (std::uint64_t period : {1u, 2u, 3u, 4u, 6u}) {
    auto d2 = testutil::make_design(graph::make_reconvergent(1, 2, 2));
    d2.set_sink(d.topology().nodes().size() - 1,
                period == 1 ? lip::SinkBehavior::greedy()
                            : lip::SinkBehavior::periodic(period));
    auto sys = d2.instantiate();
    sys->run(1200);
    const auto got = sys->sink_count(d.topology().nodes().size() - 1);
    EXPECT_LE(got, prev) << "period " << period;
    prev = got;
  }
}

TEST(ProtocolProperties, ClockGatingNeverStepsAStalledPearl) {
  // A pearl that counts its own activations: the count must equal the
  // shell's fire count exactly, under heavy stalling.
  class CountingPearl final : public lip::Pearl {
   public:
    explicit CountingPearl(std::shared_ptr<std::uint64_t> n) : n_(n) {}
    std::size_t num_inputs() const override { return 1; }
    std::size_t num_outputs() const override { return 1; }
    void step(std::span<const std::uint64_t> in,
              std::span<std::uint64_t> out) override {
      ++*n_;
      out[0] = in[0];
    }
    std::unique_ptr<Pearl> clone_reset() const override {
      return std::make_unique<CountingPearl>(n_);
    }

   private:
    std::shared_ptr<std::uint64_t> n_;
  };

  auto gen = graph::make_pipeline(1, 1);
  auto count = std::make_shared<std::uint64_t>(0);
  lip::System sys(gen.topo);
  sys.bind_pearl(gen.processes[0], std::make_unique<CountingPearl>(count));
  sys.bind_sink(gen.sinks[0], lip::SinkBehavior::random_stop(3, 2, 3));
  sys.run(500);
  EXPECT_EQ(*count, sys.shell_fire_count(gen.processes[0]));
  EXPECT_LT(*count, 500u);  // the stalls really gated the pearl
}

}  // namespace
