// The paper's liveness results, reproduced with a sharpened model:
//  - feedforward LIDs (with reconvergence) are deadlock free;
//  - LIDs with only full relay stations are deadlock free;
//  - half relay stations create a *potential* deadlock iff they lie on
//    loops: the loop's stop path is then a combinational cycle — a
//    bistable latch.  The latch can only assert when every station on the
//    loop holds a token, and a directed cycle provably keeps exactly its
//    shells' tokens forever, so the latch is unreachable from reset —
//    the paper's observation that "its injection will never occur" in
//    many cases.  Worst-case-occupancy screening (token injection)
//    exposes it; the full station's second register is exactly the slack
//    that makes full-only loops immune;
//  - skeleton screening up to transient extinction decides liveness;
//  - deadlocking designs are cured by substituting few relay stations.

#include <gtest/gtest.h>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using graph::RsKind;
using lip::StopPolicy;
using lip::StopResolution;

skeleton::ScreeningOptions from_reset(
    StopPolicy p = StopPolicy::kCasuDiscardOnVoid) {
  return {{p, StopResolution::kPessimistic}, /*worst_case_occupancy=*/false};
}

skeleton::ScreeningOptions worst_case(
    StopPolicy p = StopPolicy::kCasuDiscardOnVoid,
    StopResolution r = StopResolution::kPessimistic) {
  return {{p, r}, /*worst_case_occupancy=*/true};
}

TEST(Deadlock, FeedforwardWithHalfStationsIsFree) {
  // Half stations off-cycle are safe, even many of them, even under
  // worst-case occupancy: the stop network is acyclic.
  Rng rng(42);
  for (int i = 0; i < 10; ++i) {
    auto gen = graph::make_random_feedforward(rng, 6, 3, /*allow_half=*/true);
    for (auto pol : {StopPolicy::kCarloniStrict,
                     StopPolicy::kCasuDiscardOnVoid}) {
      for (bool wc : {false, true}) {
        auto opts = wc ? worst_case(pol) : from_reset(pol);
        const auto verdict = skeleton::screen_for_deadlock(gen.topo, opts);
        ASSERT_TRUE(verdict.ran_to_steady_state);
        EXPECT_FALSE(verdict.deadlock_found)
            << "iteration " << i << " policy " << to_string(pol)
            << " worst_case=" << wc;
      }
    }
  }
}

TEST(Deadlock, FullOnlyLoopsAreFreeEvenUnderWorstCase) {
  // The full relay station's second register is the slack that keeps a
  // saturated loop moving.
  for (std::size_t s : {1u, 2u, 4u}) {
    for (std::size_t per : {1u, 2u, 3u}) {
      auto gen = graph::make_closed_ring(
          std::vector<std::size_t>(s, per), RsKind::kFull);
      for (bool wc : {false, true}) {
        auto opts = wc ? worst_case() : from_reset();
        const auto verdict = skeleton::screen_for_deadlock(gen.topo, opts);
        ASSERT_TRUE(verdict.ran_to_steady_state);
        EXPECT_FALSE(verdict.deadlock_found)
            << "S=" << s << " per=" << per << " worst_case=" << wc;
      }
    }
  }
}

TEST(Deadlock, HalfRingIsFreeFromReset) {
  // From reset, a directed cycle holds exactly its shells' tokens, so the
  // latch precondition (every station occupied) never arises: the paper's
  // "simulate up to the transient's extinction ... or [the deadlock] will
  // be forever avoided".
  auto gen = graph::make_closed_ring({1, 1}, RsKind::kHalf);
  const auto verdict = skeleton::screen_for_deadlock(gen.topo, from_reset());
  ASSERT_TRUE(verdict.ran_to_steady_state);
  EXPECT_FALSE(verdict.deadlock_found);
  EXPECT_EQ(verdict.min_throughput, Rational(1, 2));  // S/(S+R) = 2/4
}

TEST(Deadlock, HalfRingLatchesUnderWorstCaseOccupancy) {
  // Saturated, the all-half ring's stop cycle is self-sustaining: the
  // pessimistic settling freezes the ring forever.
  auto gen = graph::make_closed_ring({1, 1}, RsKind::kHalf);
  const auto verdict = skeleton::screen_for_deadlock(gen.topo, worst_case());
  ASSERT_TRUE(verdict.ran_to_steady_state);
  EXPECT_TRUE(verdict.deadlock_found);
  EXPECT_EQ(verdict.min_throughput, Rational(0));
}

TEST(Deadlock, HalfRingLatchIsBistable) {
  // The same saturated ring under optimistic settling rotates in lockstep
  // at full rate: the two fixed points of the stop latch are "frozen
  // forever" and "everything moves" — real hardware may land on either,
  // which is exactly why the paper calls it a potential deadlock.
  auto gen = graph::make_closed_ring({1, 1}, RsKind::kHalf);
  const auto verdict = skeleton::screen_for_deadlock(
      gen.topo,
      worst_case(StopPolicy::kCasuDiscardOnVoid, StopResolution::kOptimistic));
  ASSERT_TRUE(verdict.ran_to_steady_state);
  EXPECT_FALSE(verdict.deadlock_found);
  EXPECT_EQ(verdict.min_throughput, Rational(1));
}

TEST(Deadlock, OneFullStationBreaksTheLatch) {
  // One full station anywhere on the loop registers the stop path and
  // breaks the combinational cycle; worst-case occupancy then drains.
  graph::Topology t;
  const auto a = t.add_process("A", 1, 1);
  const auto b = t.add_process("B", 1, 1);
  t.connect({a, 0}, {b, 0}, {RsKind::kHalf});
  t.connect({b, 0}, {a, 0}, {RsKind::kFull});
  const auto verdict = skeleton::screen_for_deadlock(t, worst_case());
  ASSERT_TRUE(verdict.ran_to_steady_state);
  EXPECT_FALSE(verdict.deadlock_found);
}

TEST(Deadlock, ValidatorWarnsOnHalfStationsInLoops) {
  auto gen = graph::make_closed_ring({1, 1}, RsKind::kHalf);
  const auto report = gen.topo.validate();
  EXPECT_TRUE(report.ok());  // warnings only
  bool warned = false;
  for (const auto& issue : report.issues) {
    if (issue.severity == graph::ValidationIssue::Severity::kWarning &&
        issue.message.find("half relay station") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

TEST(Deadlock, FullSystemAgreesWithSkeleton) {
  auto gen = graph::make_closed_ring({1, 1}, RsKind::kHalf);
  auto d = testutil::make_design(gen);

  auto sys = d.instantiate({StopPolicy::kCasuDiscardOnVoid,
                            StopResolution::kPessimistic});
  sys->saturate_stations(99);
  const auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);
  EXPECT_TRUE(ss.deadlocked);

  auto sys_opt = d.instantiate({StopPolicy::kCasuDiscardOnVoid,
                                StopResolution::kOptimistic});
  sys_opt->saturate_stations(99);
  const auto ss_opt = lip::measure_steady_state(*sys_opt);
  ASSERT_TRUE(ss_opt.found);
  EXPECT_FALSE(ss_opt.deadlocked);
}

TEST(Deadlock, CureUpgradesFewStations) {
  auto gen = graph::make_closed_ring({1, 1, 1}, RsKind::kHalf);
  const auto before = skeleton::screen_for_deadlock(gen.topo, worst_case());
  ASSERT_TRUE(before.deadlock_found);

  const auto cure = skeleton::cure_deadlocks(gen.topo, worst_case());
  EXPECT_TRUE(cure.success);
  EXPECT_GE(cure.substitutions, 1u);
  EXPECT_LE(cure.substitutions, 3u);  // "low intrusive changes"
  const auto after = skeleton::screen_for_deadlock(cure.cured, worst_case());
  EXPECT_FALSE(after.deadlock_found);
  // The cure preserves the station count (substitution, not insertion).
  EXPECT_EQ(cure.cured.total_stations(), gen.topo.total_stations());
}

TEST(Deadlock, CureLeavesHealthyDesignAlone) {
  auto gen = graph::make_loop_chain({{1, 2}, {2, 3}});
  const auto cure = skeleton::cure_deadlocks(gen.topo, worst_case());
  EXPECT_TRUE(cure.success);
  EXPECT_EQ(cure.substitutions, 0u);
}

TEST(Deadlock, LoopChainWithHalfLoopDetectedAndCured) {
  // A chain where the middle loop uses half stations: latent latch there,
  // detected under worst-case occupancy and cured locally.
  std::vector<graph::RingSpec> specs = {
      {1, 2, RsKind::kFull}, {1, 2, RsKind::kHalf}, {1, 2, RsKind::kFull}};
  auto gen = graph::make_loop_chain(specs);
  const auto reset_verdict =
      skeleton::screen_for_deadlock(gen.topo, from_reset());
  ASSERT_TRUE(reset_verdict.ran_to_steady_state);
  EXPECT_FALSE(reset_verdict.deadlock_found);

  const auto wc_verdict = skeleton::screen_for_deadlock(gen.topo, worst_case());
  ASSERT_TRUE(wc_verdict.ran_to_steady_state);
  ASSERT_TRUE(wc_verdict.deadlock_found);
  // Only the half-station loop starves.
  EXPECT_FALSE(wc_verdict.starved.empty());

  const auto cure = skeleton::cure_deadlocks(gen.topo, worst_case());
  EXPECT_TRUE(cure.success);
  EXPECT_LE(cure.substitutions, 2u);
}

}  // namespace
