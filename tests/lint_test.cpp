// Tests for liplib::lint, the static protocol analyzer: golden text and
// JSON output per rule id, fix-it application and idempotence, and the
// keystone agreement check — on >= 300 randomized topologies the static
// LIP006 verdict must match worst-case skeleton screening exactly, and
// every `lint --fix` output must re-lint clean and screen live.

#include <gtest/gtest.h>

#include <string>

#include "liplib/campaign/campaign.hpp"
#include "liplib/campaign/jobs.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/graph/netlist_io.hpp"
#include "liplib/lint/lint.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/rng.hpp"

namespace {

using namespace liplib;

// A process with dangling ports (LIP001 twice).
const char* kFloating =
    "source s\nprocess P 2 2\nsink o\n"
    "channel s.0 -> P.0\nchannel P.0 -> o.0\n";

// A source wired straight into a sink (LIP004).
const char* kDegenerate = "source s\nsink o\nchannel s.0 -> o.0\n";

// Two shells with no memory element between them (LIP003).
const char* kNoStation =
    "source s\nprocess A 1 1\nprocess B 1 1\nsink o\n"
    "channel s.0 -> A.0\nchannel A.0 -> B.0\nchannel B.0 -> o.0\n";

// A two-shell loop whose stations are all half: token conservation says
// the stop latch is unreachable from reset (2 tokens in 4 positions) but
// closes under worst-case occupancy (LIP005 x2 + LIP006 warning).
const char* kHazardRing =
    "source s\nprocess A 2 1\nprocess B 1 2\nsink o\n"
    "channel s.0 -> A.0\nchannel A.0 -> B.0 : H\n"
    "channel B.0 -> A.1 : H\nchannel B.1 -> o.0\n";

// The same loop with no stations at all: the latch closes from reset
// occupancy (LIP006 error, plus LIP003 per channel).
const char* kResetRing =
    "source s\nprocess A 2 1\nprocess B 1 2\nsink o\n"
    "channel s.0 -> A.0\nchannel A.0 -> B.0\n"
    "channel B.0 -> A.1\nchannel B.1 -> o.0\n";

// The same loop fully registered: live, loop bound 1/2 (LIP008).
const char* kFullRing =
    "source s\nprocess A 2 1\nprocess B 1 2\nsink o\n"
    "channel s.0 -> A.0\nchannel A.0 -> B.0 : F\n"
    "channel B.0 -> A.1 : F\nchannel B.1 -> o.0\n";

// The paper's Fig. 1: reconvergent paths imbalanced by one station.
const char* kFig1 =
    "source src\nprocess A 1 2\nprocess B 1 1\nprocess C 2 1\nsink out\n"
    "channel src.0 -> A.0\nchannel A.0 -> B.0 : F\n"
    "channel B.0 -> C.0 : F\nchannel A.1 -> C.1 : F\n"
    "channel C.0 -> out.0\n";

graph::Topology parse(const char* text) {
  return graph::parse_netlist_string(text);
}

std::string lint_text(const graph::Topology& topo,
                      const lint::Options& options = {}) {
  return lint::run_lint(topo, options).to_string(topo);
}

TEST(Lint, RuleCatalogIsStable) {
  const auto& catalog = lint::rule_catalog();
  ASSERT_EQ(catalog.size(), 9u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].id, "LIP00" + std::to_string(i + 1));
    EXPECT_NE(std::string(catalog[i].name), "");
    EXPECT_NE(std::string(catalog[i].summary), "");
    EXPECT_NE(std::string(catalog[i].citation), "");
  }
}

TEST(Lint, GoldenTextDanglingPorts) {
  EXPECT_EQ(lint_text(parse(kFloating)),
            "error[LIP001] input port 1 of P is not driven\n"
            "error[LIP001] output port 1 of P drives nothing\n"
            "info[LIP009] steady state is reached within 34 cycles "
            "(transient bound); longest register path 2\n"
            "2 error(s), 0 warning(s), 1 note(s)\n");
}

TEST(Lint, GoldenTextFanoutBeyondMask) {
  graph::Topology topo;
  const auto s = topo.add_source("s");
  const auto f = topo.add_process("F", 1, 1);
  topo.connect({s, 0}, {f, 0}, {});
  for (int i = 0; i < 33; ++i) {
    const auto o = topo.add_sink("o" + std::to_string(i));
    topo.connect({f, 0}, {o, 0}, {});
  }
  const auto report = lint::run_lint(topo);
  EXPECT_EQ(report.count_rule("LIP002"), 1u);
  EXPECT_NE(report.to_string(topo).find(
                "error[LIP002] output port 0 of F fans out to 33 branches; "
                "the protocol engines track pending consumers in a 32-bit "
                "mask (at most 32)"),
            std::string::npos);
  // Exactly 32 branches is allowed.
  graph::Topology ok;
  const auto s2 = ok.add_source("s");
  const auto f2 = ok.add_process("F", 1, 1);
  ok.connect({s2, 0}, {f2, 0}, {});
  for (int i = 0; i < 32; ++i) {
    const auto o = ok.add_sink("o" + std::to_string(i));
    ok.connect({f2, 0}, {o, 0}, {});
  }
  EXPECT_FALSE(lint::run_lint(ok).has_rule("LIP002"));
}

TEST(Lint, GoldenTextMissingStation) {
  EXPECT_EQ(lint_text(parse(kNoStation)),
            "error[LIP003] channel A -> B connects two shells with no relay "
            "station (the protocol requires at least one memory element "
            "between shells)\n"
            "  fix-it: insert a half relay station into channel A.0 -> B.0\n"
            "info[LIP009] steady state is reached within 34 cycles "
            "(transient bound); longest register path 3\n"
            "1 error(s), 0 warning(s), 1 note(s)\n");
  // Carloni-style input-queued shells provide the memory element
  // themselves: the rule (and its refinement LIP006) is off.
  lint::Options queued;
  queued.require_station_between_shells = false;
  const auto report = lint::run_lint(parse(kNoStation), queued);
  EXPECT_FALSE(report.has_rule("LIP003"));
  EXPECT_TRUE(report.clean());
}

TEST(Lint, GoldenTextSourceFeedsSink) {
  EXPECT_EQ(lint_text(parse(kDegenerate)),
            "warning[LIP004] channel s -> o connects a source directly to a "
            "sink\n"
            "info[LIP009] steady state is reached within 18 cycles "
            "(transient bound); longest register path 1\n"
            "0 error(s), 1 warning(s), 1 note(s)\n");
}

TEST(Lint, GoldenTextHalfLatchedRing) {
  // The worst-case-reachable classification: the all-half cycle conserves
  // its reset tokens, so the latch needs worst-case occupancy to close.
  EXPECT_EQ(
      lint_text(parse(kHazardRing)),
      "info[LIP005] channel A -> B lies on a cycle and contains a half "
      "relay station: potential deadlock; run skeleton screening\n"
      "info[LIP005] channel B -> A lies on a cycle and contains a half "
      "relay station: potential deadlock; run skeleton screening\n"
      "warning[LIP006] combinational stop cycle through shells A, B: no "
      "full relay station registers the stop path; unreachable from reset "
      "(the cycle conserves 2 token(s) in 4 register positions) but "
      "deadlocks under worst-case occupancy\n"
      "  fix-it: substitute the half relay station at position 0 of "
      "channel A.0 -> B.0 with a full one (registers the stop path)\n"
      "info[LIP008] slowest cycle through shells A, B: 2 shell(s), 2 relay "
      "station(s); loop bound T = S/(S+R) = 1/2 limits system throughput\n"
      "info[LIP009] steady state is reached within 88 cycles (transient "
      "bound)\n"
      "0 error(s), 1 warning(s), 4 note(s)\n");
  EXPECT_EQ(lint::run_lint(parse(kHazardRing)).exit_code(), 1);
}

TEST(Lint, GoldenTextResetReachableRing) {
  // With zero station slack the latch closes from reset: LIP006 is an
  // error, and the fix-it inserts (not substitutes) a full station.
  const auto text = lint_text(parse(kResetRing));
  EXPECT_NE(text.find(
                "error[LIP006] combinational stop cycle through shells A, "
                "B: no full relay station registers the stop path; with no "
                "station slack the stop latch closes from reset occupancy\n"
                "  fix-it: insert a full relay station into channel "
                "A.0 -> B.0 (registers the stop path)"),
            std::string::npos)
      << text;
  EXPECT_EQ(lint::run_lint(parse(kResetRing)).exit_code(), 2);
}

TEST(Lint, GoldenTextReconvergenceImbalance) {
  EXPECT_EQ(lint_text(parse(kFig1)),
            "info[LIP007] reconvergent paths from A to C are imbalanced by "
            "1 relay station(s): predicted T = (m-i)/m = 4/5 (exact bound "
            "4/5); equalize the branches\n"
            "  fix-it: append 1 full relay station(s) to channel A.1 -> "
            "C.1 (equalization)\n"
            "info[LIP009] steady state is reached within 258 cycles "
            "(transient bound); longest register path 6\n"
            "0 error(s), 0 warning(s), 2 note(s)\n");
}

TEST(Lint, GoldenTextSlowestCycle) {
  EXPECT_EQ(lint_text(parse(kFullRing)),
            "info[LIP008] slowest cycle through shells A, B: 2 shell(s), 2 "
            "relay station(s); loop bound T = S/(S+R) = 1/2 limits system "
            "throughput\n"
            "info[LIP009] steady state is reached within 144 cycles "
            "(transient bound)\n"
            "0 error(s), 0 warning(s), 2 note(s)\n");
}

TEST(Lint, ExitCodeContract) {
  EXPECT_EQ(lint::run_lint(parse(kFullRing)).exit_code(), 0);    // clean
  EXPECT_EQ(lint::run_lint(parse(kDegenerate)).exit_code(), 1);  // warning
  EXPECT_EQ(lint::run_lint(parse(kFloating)).exit_code(), 2);    // error
}

TEST(Lint, StructuralOnlySkipsPerformanceRules) {
  lint::Options structural;
  structural.structural_only = true;
  const auto report = lint::run_lint(parse(kHazardRing), structural);
  EXPECT_TRUE(report.has_rule("LIP005"));
  EXPECT_TRUE(report.has_rule("LIP006"));
  EXPECT_FALSE(report.has_rule("LIP007"));
  EXPECT_FALSE(report.has_rule("LIP008"));
  EXPECT_FALSE(report.has_rule("LIP009"));
}

TEST(Lint, DisabledRulesAreSkipped) {
  lint::Options options;
  options.disabled_rules = {"LIP009", "LIP005"};
  const auto report = lint::run_lint(parse(kHazardRing), options);
  EXPECT_FALSE(report.has_rule("LIP009"));
  EXPECT_FALSE(report.has_rule("LIP005"));
  EXPECT_TRUE(report.has_rule("LIP006"));
}

TEST(Lint, JsonFormCarriesEveryRule) {
  const struct {
    const char* netlist;
    const char* rule;
  } cases[] = {
      {kFloating, "\"rule\": \"LIP001\""},
      {kNoStation, "\"rule\": \"LIP003\""},
      {kDegenerate, "\"rule\": \"LIP004\""},
      {kHazardRing, "\"rule\": \"LIP006\""},
      {kFig1, "\"rule\": \"LIP007\""},
      {kFullRing, "\"rule\": \"LIP008\""},
      {kFullRing, "\"rule\": \"LIP009\""},
  };
  for (const auto& c : cases) {
    const auto topo = parse(c.netlist);
    const auto json = lint::run_lint(topo).to_json(topo).dump(2);
    EXPECT_NE(json.find("\"schema\": \"liplib-lint-v1\""), std::string::npos);
    EXPECT_NE(json.find(c.rule), std::string::npos) << json;
  }
}

TEST(Lint, JsonIsDeterministicAndStructured) {
  const auto topo = parse(kHazardRing);
  const auto once = lint::run_lint(topo).to_json(topo).dump(2);
  const auto twice = lint::run_lint(topo).to_json(topo).dump(2);
  EXPECT_EQ(once, twice);  // byte-identical across runs
  for (const char* needle :
       {"\"schema\": \"liplib-lint-v1\"", "\"errors\": 0", "\"warnings\": 1",
        "\"clean\": false", "\"exit_code\": 1", "\"rule\": \"LIP006\"",
        "\"severity\": \"warning\"", "\"kind\": \"substitute_station\"",
        "\"channel_label\": \"A.0 -> B.0\"", "\"station\": \"full\"",
        "\"from\": \"A.0\"", "\"to\": \"B.0\""}) {
    EXPECT_NE(once.find(needle), std::string::npos) << needle << "\n" << once;
  }
}

TEST(Lint, ValidationReportAdapter) {
  EXPECT_FALSE(parse(kFloating).validate().ok());
  EXPECT_FALSE(parse(kNoStation).validate().ok());
  EXPECT_TRUE(parse(kNoStation).validate(false).ok());
  // The half-latched ring is structurally valid but carries the LIP006
  // hazard as a validation warning.
  const auto v = parse(kHazardRing).validate();
  EXPECT_TRUE(v.ok());
  EXPECT_FALSE(v.issues.empty());
}

TEST(Lint, FixCuresTheHazardRingAndIsIdempotent) {
  const auto topo = parse(kHazardRing);
  const auto fix = lint::lint_and_fix(topo);
  EXPECT_EQ(fix.applied, 1u);
  EXPECT_EQ(fix.iterations, 1u);
  EXPECT_TRUE(fix.report.clean());
  // Idempotence: re-fixing the cured topology is a no-op.
  const auto again = lint::lint_and_fix(fix.fixed);
  EXPECT_EQ(again.applied, 0u);
  EXPECT_EQ(graph::write_netlist(again.fixed), graph::write_netlist(fix.fixed));
  // The cure survives dynamic screening under worst-case occupancy.
  skeleton::ScreeningOptions wc;
  wc.worst_case_occupancy = true;
  const auto verdict = skeleton::screen_for_deadlock(fix.fixed, wc, 1u << 16);
  EXPECT_TRUE(verdict.ran_to_steady_state);
  EXPECT_FALSE(verdict.deadlock_found);
}

TEST(Lint, FixEqualizesFig1) {
  const auto topo = parse(kFig1);
  const auto fix = lint::lint_and_fix(topo);
  EXPECT_EQ(fix.applied, 1u);
  EXPECT_TRUE(fix.report.clean());
  EXPECT_FALSE(fix.report.has_rule("LIP007"));
  // The short branch A.1 -> C.1 (channel 3) gained one full station.
  EXPECT_EQ(fix.fixed.channel(3).stations.size(), 2u);
  EXPECT_EQ(fix.fixed.channel(3).num_full(), 2u);
  // Re-fixing is a no-op.
  EXPECT_EQ(lint::lint_and_fix(fix.fixed).applied, 0u);
}

TEST(Lint, CampaignLintJobMapsOutcomes) {
  campaign::JobContext ctx;
  ctx.seed = 1;
  ctx.cycle_budget = 1u << 16;
  EXPECT_EQ(campaign::make_lint_job("clean", parse(kFullRing)).fn(ctx).outcome,
            campaign::Outcome::kLive);
  EXPECT_EQ(
      campaign::make_lint_job("hazard", parse(kHazardRing)).fn(ctx).outcome,
      campaign::Outcome::kDeadlock);
  const auto broken = campaign::make_lint_job("broken", parse(kFloating))
                          .fn(ctx);
  EXPECT_EQ(broken.outcome, campaign::Outcome::kError);
  EXPECT_NE(broken.detail.find("LIP001"), std::string::npos);
}

// The keystone: on 300 randomized composite topologies the static LIP006
// verdict agrees exactly with worst-case skeleton screening, and both
// verdict classes actually occur.  This is the direct (single-threaded)
// form; the campaign form below runs the shipped cross-check jobs.
TEST(Lint, StaticVerdictAgreesWithScreeningOn300Topologies) {
  std::size_t hazards = 0;
  std::size_t clean = 0;
  lint::Options structural;
  structural.structural_only = true;
  skeleton::ScreeningOptions wc;
  wc.worst_case_occupancy = true;
  for (std::size_t i = 0; i < 300; ++i) {
    Rng rng(campaign::job_seed(7, i));
    const std::size_t segments = 1 + rng.below(4);
    const bool risky = rng.chance(1, 2);
    auto gen = graph::make_random_composite(rng, segments,
                                            /*allow_half=*/true,
                                            /*allow_half_in_loops=*/risky);
    const bool hazard =
        lint::run_lint(gen.topo, structural).has_rule("LIP006");
    const auto verdict =
        skeleton::screen_for_deadlock(gen.topo, wc, 1u << 16);
    ASSERT_TRUE(verdict.ran_to_steady_state) << "topology " << i;
    ASSERT_EQ(hazard, verdict.deadlock_found)
        << "static/dynamic disagreement on topology " << i << ":\n"
        << graph::write_netlist(gen.topo);
    ++(hazard ? hazards : clean);
  }
  // The sample must exercise both verdicts or the agreement is vacuous.
  EXPECT_GT(hazards, 0u);
  EXPECT_GT(clean, 0u);
}

// The shipped cross-check campaign (lidtool campaign lint): every job
// re-derives its topology from its seed, compares verdicts, and screens
// the lint --fix output of every hazardous topology.  All 300 must come
// back kLive — any disagreement surfaces as kMismatch.
TEST(Lint, CrossCheckCampaignFindsNoMismatchIn300Jobs) {
  campaign::EngineOptions opts;
  opts.threads = 4;
  opts.base_seed = 42;
  opts.cycle_budget = 1u << 16;
  const auto results = campaign::Engine(opts).run(
      campaign::make_lint_crosscheck_campaign(300));
  ASSERT_EQ(results.size(), 300u);
  for (const auto& r : results) {
    EXPECT_EQ(r.outcome, campaign::Outcome::kLive)
        << r.name << " seed=" << r.seed << ": " << r.detail;
  }
}

}  // namespace
