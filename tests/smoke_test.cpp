// End-to-end smoke tests: the two paper figures and basic plumbing.
// Deeper per-module suites live in the sibling test files.

#include <gtest/gtest.h>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/evolution.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/pearls/pearls.hpp"

namespace {

using namespace liplib;

lip::Design fig1_design() {
  auto g = graph::make_fig1();
  lip::Design d(std::move(g.topo));
  // A forks, B passes through, C joins.
  for (graph::NodeId p : g.processes) {
    const auto& node = d.topology().node(p);
    if (node.num_inputs == 1 && node.num_outputs == 2) {
      d.set_pearl(p, pearls::make_fork2());
    } else if (node.num_inputs == 2) {
      d.set_pearl(p, pearls::make_adder());
    } else {
      d.set_pearl(p, pearls::make_identity());
    }
  }
  return d;
}

TEST(Smoke, PipelineDeliversCounterStream) {
  auto g = graph::make_pipeline(3, 1);
  lip::Design d(std::move(g.topo));
  for (auto p : g.processes) d.set_pearl(p, pearls::make_identity());
  auto sys = d.instantiate();
  sys->run(50);
  const auto& stream = sys->sink_stream(g.sinks[0]);
  ASSERT_GT(stream.size(), 20u);
  // The first four tokens are the initialized-valid shell outputs (three
  // identity shells) plus the source's first datum, all zero; after that
  // the counter stream flows through untouched.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(stream[i].data, 0u);
  for (std::size_t i = 4; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].data, i - 3) << "at " << i;
  }
}

TEST(Smoke, PipelineThroughputIsOne) {
  auto g = graph::make_pipeline(4, 2);
  lip::Design d(std::move(g.topo));
  for (auto p : g.processes) d.set_pearl(p, pearls::make_identity());
  auto sys = d.instantiate();
  auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);
  EXPECT_EQ(ss.system_throughput(), Rational(1));
  EXPECT_FALSE(ss.deadlocked);
}

TEST(Smoke, Fig1ThroughputIsFourFifths) {
  auto d = fig1_design();
  auto sys = d.instantiate({lip::StopPolicy::kCasuDiscardOnVoid});
  auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);
  EXPECT_EQ(ss.system_throughput(), Rational(4, 5))
      << "period=" << ss.period << " transient=" << ss.transient;
}

TEST(Smoke, Fig2ThroughputIsOneHalf) {
  auto g = graph::make_fig2();
  lip::Design d(std::move(g.topo));
  for (auto p : g.processes) {
    const auto& node = d.topology().node(p);
    d.set_pearl(p, node.num_outputs == 2 ? pearls::make_fork2()
                                         : pearls::make_identity());
  }
  auto sys = d.instantiate();
  auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);
  EXPECT_EQ(ss.system_throughput(), Rational(1, 2));
}

TEST(Smoke, Fig1LatencyEquivalent) {
  auto d = fig1_design();
  for (auto policy :
       {lip::StopPolicy::kCarloniStrict, lip::StopPolicy::kCasuDiscardOnVoid}) {
    auto report = lip::check_latency_equivalence(d, {policy}, 200);
    EXPECT_TRUE(report.ok) << report.detail;
    EXPECT_GT(report.tokens_checked, 100u);
  }
}

TEST(Smoke, EvolutionRendersVoidsAndStops) {
  auto d = fig1_design();
  auto sys = d.instantiate();
  const std::string evo = lip::render_evolution(*sys, 20);
  EXPECT_NE(evo.find('n'), std::string::npos);   // voids appear
  EXPECT_NE(evo.find('*'), std::string::npos);   // firings appear
}

}  // namespace
