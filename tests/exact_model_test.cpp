// Validation of the exact implicit-loop throughput model (the library's
// generalization of the paper's (m−i)/m): on reconvergent feed-forward
// designs it must equal exact simulation under the variant protocol, for
// uniform AND irregular station distributions, where the paper's closed
// form is only exact in the uniform case.

#include <gtest/gtest.h>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/lip/steady_state.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using graph::RsKind;

Rational measured_throughput(const graph::Topology& topo) {
  graph::Generated g;
  g.topo = topo;
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    if (topo.node(v).kind == graph::NodeKind::kProcess) {
      g.processes.push_back(v);
    }
  }
  auto d = testutil::make_design(std::move(g));
  auto sys = d.instantiate({lip::StopPolicy::kCasuDiscardOnVoid});
  const auto ss = lip::measure_steady_state(*sys, 1u << 18);
  EXPECT_TRUE(ss.found);
  return ss.system_throughput();
}

TEST(ExactModel, AgreesWithPaperFormulaOnUniformSweep) {
  for (std::size_t short_st = 1; short_st <= 3; ++short_st) {
    for (std::size_t long_shells = 1; long_shells <= 3; ++long_shells) {
      for (std::size_t per_hop = 1; per_hop <= 2; ++per_hop) {
        auto gen = graph::make_reconvergent(short_st, long_shells, per_hop);
        const auto paper = graph::predict_throughput(gen.topo).system();
        const auto exact = graph::exact_implicit_loop_bound(gen.topo);
        EXPECT_EQ(exact, paper)
            << "short=" << short_st << " shells=" << long_shells
            << " per_hop=" << per_hop;
      }
    }
  }
}

TEST(ExactModel, Fig1) {
  auto gen = graph::make_fig1();
  EXPECT_EQ(graph::exact_implicit_loop_bound(gen.topo), Rational(4, 5));
  const auto loops = graph::analyze_implicit_loops(gen.topo);
  // Two orientations of the single fork/join pair.
  ASSERT_EQ(loops.size(), 2u);
}

TEST(ExactModel, IrregularDistributionWheredPaperFormulaDeviates) {
  // The video-pipeline shape: long branch stations 1,2,1,3 (three
  // intermediate shells), short branch one half station.  The paper's
  // formula predicts 1/2; the true throughput is 5/11.
  graph::Topology t;
  const auto src = t.add_source("src");
  const auto fork = t.add_process("fork", 1, 2);
  const auto s1 = t.add_process("s1", 1, 1);
  const auto s2 = t.add_process("s2", 1, 1);
  const auto s3 = t.add_process("s3", 1, 1);
  const auto join = t.add_process("join", 2, 1);
  const auto snk = t.add_sink("out");
  t.connect({src, 0}, {fork, 0});
  t.connect({fork, 0}, {s1, 0}, {RsKind::kFull});
  t.connect({s1, 0}, {s2, 0}, {RsKind::kFull, RsKind::kFull});
  t.connect({s2, 0}, {s3, 0}, {RsKind::kFull});
  t.connect({s3, 0}, {join, 0},
            {RsKind::kFull, RsKind::kFull, RsKind::kFull});
  t.connect({fork, 1}, {join, 1}, {RsKind::kHalf});
  t.connect({join, 0}, {snk, 0});

  const auto exact = graph::exact_implicit_loop_bound(t);
  EXPECT_EQ(exact, Rational(5, 11));
  EXPECT_EQ(measured_throughput(t), Rational(5, 11));
  // The paper's estimate is close but not exact here.
  const auto paper = graph::predict_throughput(t).reconvergence_bound;
  EXPECT_NE(paper, exact);
}

struct RandomCase {
  std::uint64_t seed;
};

class ExactModelRandom : public ::testing::TestWithParam<RandomCase> {};

TEST_P(ExactModelRandom, MatchesSimulationOnRandomReconvergence) {
  Rng rng(GetParam().seed);
  graph::Topology t;
  const auto src = t.add_source("src");
  const auto fork = t.add_process("fork", 1, 2);
  const auto join = t.add_process("join", 2, 1);
  const auto snk = t.add_sink("out");
  t.connect({src, 0}, {fork, 0});

  auto random_chain = [&] {
    std::vector<RsKind> st;
    const std::size_t len = rng.in_range(1, 3);
    for (std::size_t i = 0; i < len; ++i) {
      st.push_back(rng.chance(1, 3) ? RsKind::kHalf : RsKind::kFull);
    }
    return st;
  };
  // Two branches with 0..3 intermediate shells each and random chains.
  for (std::size_t branch = 0; branch < 2; ++branch) {
    graph::NodeId prev = fork;
    std::size_t prev_port = branch;
    const std::size_t shells = rng.below(4);
    for (std::size_t i = 0; i < shells; ++i) {
      const auto w = t.add_process(
          "b" + std::to_string(branch) + "_" + std::to_string(i), 1, 1);
      t.connect({prev, prev_port}, {w, 0}, random_chain());
      prev = w;
      prev_port = 0;
    }
    t.connect({prev, prev_port}, {join, branch}, random_chain());
  }
  t.connect({join, 0}, {snk, 0});

  const auto exact = graph::exact_implicit_loop_bound(t);
  const auto measured = measured_throughput(t);
  EXPECT_EQ(measured, exact) << "seed " << GetParam().seed;
}

std::vector<RandomCase> random_cases() {
  std::vector<RandomCase> cases;
  for (std::uint64_t s = 1; s <= 40; ++s) cases.push_back({s});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactModelRandom,
                         ::testing::ValuesIn(random_cases()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
