// Segment statistics and System-side VCD dumping.

#include <gtest/gtest.h>

#include <sstream>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/steady_state.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;

TEST(SegmentStats, CountsMatchThroughputOnPipeline) {
  auto gen = graph::make_pipeline(2, 1);
  auto d = testutil::make_design(gen);
  auto sys = d.instantiate();
  sys->record_segment_stats(true);
  const std::uint64_t kCycles = 400;
  sys->run(kCycles);
  // Steady-state utilization of every hop approaches T = 1; the only void
  // cycles are the pipeline fill.
  for (graph::ChannelId c = 0; c < d.topology().channels().size(); ++c) {
    for (const auto& st : sys->segment_stats(c)) {
      EXPECT_EQ(st.cycles, kCycles);
      EXPECT_GE(st.valid_cycles + 10, kCycles) << "channel " << c;
      EXPECT_EQ(st.stop_cycles, 0u) << "channel " << c;
      EXPECT_EQ(st.valid_cycles + st.void_cycles, st.cycles);
    }
  }
}

TEST(SegmentStats, StopsAccountedByValidity) {
  // A throttled sink generates stops; under the variant policy stops land
  // only on valid data at the shell boundary, while the strict run also
  // counts stop-on-void events — the exact waste the paper's variant
  // removes.
  auto make = [](lip::StopPolicy pol) {
    auto gen = graph::make_pipeline(2, 2);
    auto d = testutil::make_design(gen);
    d.set_sink(gen.sinks[0], lip::SinkBehavior::periodic(3));
    auto sys = d.instantiate({pol});
    sys->record_segment_stats(true);
    sys->run(600);
    std::uint64_t on_valid = 0, on_void = 0;
    for (graph::ChannelId c = 0; c < d.topology().channels().size(); ++c) {
      for (const auto& st : sys->segment_stats(c)) {
        on_valid += st.stop_on_valid;
        on_void += st.stop_on_void;
      }
    }
    return std::pair{on_valid, on_void};
  };
  const auto strict = make(lip::StopPolicy::kCarloniStrict);
  const auto variant = make(lip::StopPolicy::kCasuDiscardOnVoid);
  EXPECT_GT(strict.first, 0u);
  EXPECT_GT(variant.first, 0u);
  // The sink's periodic stop hits voids in both runs (it stops blindly),
  // but inside the design the strict protocol propagates those stops
  // whereas the variant discards them; the strict run can never have
  // fewer stop-on-void events.
  EXPECT_GE(strict.second, variant.second);
}

TEST(SegmentStats, OffByDefault) {
  auto gen = graph::make_pipeline(1, 1);
  auto d = testutil::make_design(gen);
  auto sys = d.instantiate();
  sys->run(10);
  for (const auto& st : sys->segment_stats(0)) {
    EXPECT_EQ(st.cycles, 0u);
  }
}

TEST(SystemVcd, DumpsChannelWaveform) {
  auto gen = graph::make_fig1();
  auto d = testutil::make_design(std::move(gen));
  auto sys = d.instantiate();
  std::ostringstream os;
  sys->attach_vcd(os);
  sys->run(30);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("A_to_C_h0_valid"), std::string::npos);
  EXPECT_NE(vcd.find("A_to_C_h0_stop"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#29"), std::string::npos);
  // Attaching twice or after stepping is rejected.
  std::ostringstream other;
  EXPECT_THROW(sys->attach_vcd(other), ApiError);
}

TEST(SystemVcd, TimeAxisIsCycles) {
  auto gen = graph::make_pipeline(1, 1);
  auto d = testutil::make_design(std::move(gen));
  auto sys = d.instantiate();
  std::ostringstream os;
  sys->attach_vcd(os);
  sys->run(5);
  // One timestamp per cycle with activity; the fill produces changes on
  // every early cycle.
  const std::string vcd = os.str();
  for (int t = 0; t < 3; ++t) {
    EXPECT_NE(vcd.find("#" + std::to_string(t)), std::string::npos) << t;
  }
}

}  // namespace
