// Differential suite for liplib::xir: the compiled scalar engine and
// the 64-way bit-sliced engine against the interpreted skeleton.
//
// The xir engines advertise *bit-exactness*, not approximation: same
// verdict, same settle cycle (transient + period), same exact Rational
// throughputs, same probe observations, same watchdog trip cycle.  The
// tests here hold all three evaluators together over hundreds of
// random "most general topology" instances (the same generator family
// the lint cross-check campaign uses), plus targeted checks for lane
// independence, probe/watchdog parity and the serve daemon's
// engine-keyed cache.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "liplib/campaign/campaign.hpp"
#include "liplib/campaign/jobs.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/probe/probe.hpp"
#include "liplib/serve/server.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/json.hpp"
#include "liplib/support/rng.hpp"
#include "liplib/telemetry/watchdog.hpp"
#include "liplib/xir/sliced.hpp"
#include "liplib/xir/xir.hpp"

using namespace liplib;

namespace {

// The lint cross-check generator's recipe: a random composite whose
// half stations may sit on loops for half the draws, so live, starved
// and deadlocked dynamics all appear in the corpus.
graph::Topology random_composite(std::uint64_t seed,
                                 std::size_t max_segments = 4) {
  Rng rng(seed);
  const std::size_t segments = 1 + rng.below(max_segments);
  const bool risky = rng.chance(1, 2);
  return graph::make_random_composite(rng, segments, /*allow_half=*/true,
                                      /*allow_half_in_loops=*/risky)
      .topo;
}

void expect_same_result(const skeleton::SkeletonResult& want,
                        const skeleton::SkeletonResult& got,
                        const std::string& what) {
  EXPECT_EQ(want.found, got.found) << what;
  EXPECT_EQ(want.transient, got.transient) << what;
  EXPECT_EQ(want.period, got.period) << what;
  EXPECT_EQ(want.deadlocked, got.deadlocked) << what;
  EXPECT_EQ(want.has_starved_shell, got.has_starved_shell) << what;
  EXPECT_EQ(want.shell_ids, got.shell_ids) << what;
  ASSERT_EQ(want.shell_throughput.size(), got.shell_throughput.size())
      << what;
  for (std::size_t i = 0; i < want.shell_throughput.size(); ++i) {
    EXPECT_EQ(want.shell_throughput[i], got.shell_throughput[i])
        << what << " shell " << i;
  }
  EXPECT_EQ(want.system_throughput(), got.system_throughput()) << what;
}

void expect_same_verdict(const skeleton::ScreeningVerdict& want,
                         const skeleton::ScreeningVerdict& got,
                         const std::string& what) {
  EXPECT_EQ(want.ran_to_steady_state, got.ran_to_steady_state) << what;
  EXPECT_EQ(want.deadlock_found, got.deadlock_found) << what;
  EXPECT_EQ(want.transient, got.transient) << what;
  EXPECT_EQ(want.period, got.period) << what;
  EXPECT_EQ(want.cycles_simulated, got.cycles_simulated) << what;
  EXPECT_EQ(want.min_throughput, got.min_throughput) << what;
  EXPECT_EQ(want.starved, got.starved) << what;
}

// Variant kinds are drawn in program station order (channel-major);
// writing them back channel-major reconstructs the variant topology the
// sliced lane evaluates.
graph::Topology with_station_kinds(const graph::Topology& topo,
                                   const std::vector<graph::RsKind>& kinds) {
  graph::Topology out = topo;
  std::size_t next = 0;
  for (graph::ChannelId c = 0; c < out.channels().size(); ++c) {
    for (auto& k : out.channel_mut(c).stations) k = kinds.at(next++);
  }
  EXPECT_EQ(next, kinds.size());
  return out;
}

// ---- the 300-topology differential -------------------------------------

TEST(XirDifferential, ThreeHundredRandomComposites) {
  constexpr std::uint64_t kBudget = 1u << 16;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const std::uint64_t seed = campaign::job_seed(7, i);
    const graph::Topology topo = random_composite(seed);
    skeleton::SkeletonOptions opts;
    opts.policy = (i % 2) ? lip::StopPolicy::kCarloniStrict
                          : lip::StopPolicy::kCasuDiscardOnVoid;
    const bool worst_case = (i % 3) == 0;
    const std::string what = "topology " + std::to_string(i);

    const auto interp = xir::analyze_with_engine(
        topo, opts, kBudget, xir::EngineMode::kInterp, worst_case);
    const auto compiled = xir::analyze_with_engine(
        topo, opts, kBudget, xir::EngineMode::kCompiled, worst_case);
    const auto sliced = xir::analyze_with_engine(
        topo, opts, kBudget, xir::EngineMode::kSliced, worst_case);

    expect_same_result(interp.result, compiled.result, what + " compiled");
    expect_same_result(interp.result, sliced.result, what + " sliced");
    EXPECT_EQ(interp.cycles, compiled.cycles) << what;
    EXPECT_EQ(interp.cycles, sliced.cycles) << what;
  }
}

TEST(XirDifferential, ScreeningVerdictsAgree) {
  for (std::uint64_t i = 0; i < 60; ++i) {
    const graph::Topology topo = random_composite(campaign::job_seed(11, i));
    skeleton::ScreeningOptions opts;
    opts.worst_case_occupancy = (i % 2) == 0;
    const std::string what = "topology " + std::to_string(i);

    const auto interp = skeleton::screen_for_deadlock(topo, opts, 1u << 16);
    const auto compiled = xir::screen_for_deadlock(
        topo, opts, 1u << 16, xir::EngineMode::kCompiled);
    const auto sliced = xir::screen_for_deadlock(
        topo, opts, 1u << 16, xir::EngineMode::kSliced);
    expect_same_verdict(interp, compiled, what + " compiled");
    expect_same_verdict(interp, sliced, what + " sliced");
  }
}

// The engine's own API surface (not just the analyze_with_engine
// wrapper): step/cycle/fires track the interpreter cycle by cycle.
TEST(XirDifferential, StepLevelFireCounts) {
  const graph::Topology topo = random_composite(42);
  skeleton::SkeletonOptions opts;
  skeleton::Skeleton sk(topo, opts);
  xir::ScalarEngine eng(topo, opts);
  for (int c = 0; c < 200; ++c) {
    sk.step();
    eng.step();
  }
  EXPECT_EQ(sk.cycle(), eng.cycle());
  for (graph::NodeId n = 0; n < topo.nodes().size(); ++n) {
    if (topo.node(n).kind != graph::NodeKind::kProcess) continue;
    EXPECT_EQ(sk.fires(n), eng.fires(n)) << topo.node(n).name;
  }
}

// ---- sliced lane independence -------------------------------------------

TEST(XirSliced, LaneSignatureMatchesScalarEveryCycle) {
  const graph::Topology topo = random_composite(99);
  skeleton::SkeletonOptions opts;
  xir::ScalarEngine scalar(topo, opts);
  xir::SlicedEngine sliced(topo, opts);
  for (int c = 0; c < 100; ++c) {
    for (std::size_t lane : {std::size_t{0}, std::size_t{17},
                             std::size_t{63}}) {
      EXPECT_EQ(scalar.state_signature(), sliced.lane_signature(lane))
          << "cycle " << c << " lane " << lane;
    }
    scalar.step();
    sliced.step();
  }
}

TEST(XirSliced, SixtyFourVariantLanesMatchInterpreter) {
  // A composite with loops so half-station variants actually diverge
  // (some lanes deadlock from worst-case occupancy, others stay live).
  Rng rng(5);
  const graph::Topology base =
      graph::make_random_composite(rng, 3, true, true).topo;
  ASSERT_GT(base.total_stations(), 0u);

  std::vector<xir::VariantSpec> variants(64);
  for (std::size_t v = 0; v < 64; ++v) {
    variants[v].kinds = campaign::mix_screen_variant_kinds(base, 1, v);
    variants[v].worst_case_occupancy = true;
  }
  const auto batched = xir::screen_variants(base, variants, {}, 1u << 14);
  ASSERT_EQ(batched.size(), 64u);

  bool saw_deadlock = false, saw_live = false;
  for (std::size_t v = 0; v < 64; ++v) {
    const graph::Topology variant =
        with_station_kinds(base, variants[v].kinds);
    skeleton::ScreeningOptions opts;
    opts.worst_case_occupancy = true;
    const auto interp = skeleton::screen_for_deadlock(variant, opts,
                                                      1u << 14);
    expect_same_verdict(interp, batched[v], "variant " + std::to_string(v));
    (interp.deadlock_found ? saw_deadlock : saw_live) = true;
  }
  // The corpus must exercise both verdicts or the test proves nothing.
  EXPECT_TRUE(saw_deadlock);
  EXPECT_TRUE(saw_live);
}

// ---- probe and watchdog parity ------------------------------------------

TEST(XirProbe, ReportMatchesInterpreter) {
  const graph::Topology topo = random_composite(123);
  skeleton::SkeletonOptions opts;

  skeleton::Skeleton sk(topo, opts);
  probe::Probe sk_probe;
  sk.attach_probe(sk_probe);
  sk.run(300);

  xir::ScalarEngine eng(topo, opts);
  probe::Probe eng_probe;
  eng.attach_probe(eng_probe);
  eng.run(300);

  EXPECT_EQ(sk_probe.report().to_json().dump(),
            eng_probe.report().to_json().dump());
}

TEST(XirWatchdog, TripCycleMatchesInterpreter) {
  // A half-station loop saturated from worst-case occupancy: the
  // paper's latent stop latch, guaranteed to freeze.
  const graph::Topology topo =
      graph::make_ring_with_tap(1, 1, graph::RsKind::kHalf).topo;

  telemetry::Watchdog dog_sk{};
  skeleton::Skeleton sk(topo, {});
  sk.saturate_stations();
  dog_sk.attach(sk);
  const auto run_sk = telemetry::run_guarded(sk, dog_sk, 4096);

  telemetry::Watchdog dog_eng{};
  xir::ScalarEngine eng(topo, {});
  eng.saturate_stations();
  dog_eng.attach(eng);
  const auto run_eng = telemetry::run_guarded(eng, dog_eng, 4096);

  ASSERT_TRUE(dog_sk.tripped());
  ASSERT_TRUE(dog_eng.tripped());
  EXPECT_EQ(run_sk.cycles, run_eng.cycles);
  EXPECT_EQ(dog_sk.reason(), dog_eng.reason());
  EXPECT_EQ(dog_sk.trip_cycle(), dog_eng.trip_cycle());
  EXPECT_EQ(dog_sk.no_progress_since(), dog_eng.no_progress_since());
}

// ---- campaign integration -----------------------------------------------

TEST(XirCampaign, MixScreenBatchesFoldInterpreterVerdicts) {
  Rng rng(5);
  const graph::Topology base =
      graph::make_random_composite(rng, 3, true, true).topo;

  auto run = [&](xir::EngineMode engine) {
    campaign::MixScreenSpec spec;
    spec.topo = base;
    spec.variants = 100;
    spec.engine = engine;
    campaign::EngineOptions eopts;
    eopts.threads = 2;
    eopts.cycle_budget = 1u << 14;
    return campaign::Engine(eopts).run(
        campaign::make_mix_screen_campaign(spec));
  };

  const auto interp = run(xir::EngineMode::kInterp);
  const auto compiled = run(xir::EngineMode::kCompiled);
  const auto sliced = run(xir::EngineMode::kSliced);

  // interp and compiled run one job per variant and must agree
  // elementwise — verdict, cycle count and exact throughput.
  ASSERT_EQ(interp.size(), 100u);
  ASSERT_EQ(compiled.size(), 100u);
  for (std::size_t v = 0; v < interp.size(); ++v) {
    EXPECT_EQ(interp[v].outcome, compiled[v].outcome) << v;
    EXPECT_EQ(interp[v].cycles, compiled[v].cycles) << v;
    EXPECT_EQ(interp[v].has_throughput, compiled[v].has_throughput) << v;
    EXPECT_EQ(interp[v].throughput, compiled[v].throughput) << v;
  }

  // sliced auto-batches 64 variants per job; each job folds its batch
  // to the worst per-variant outcome and the summed cycles.
  ASSERT_EQ(sliced.size(), 2u);  // ceil(100 / 64)
  auto severity = [](campaign::Outcome o) {
    switch (o) {
      case campaign::Outcome::kBudgetExhausted: return 3;
      case campaign::Outcome::kDeadlock: return 2;
      case campaign::Outcome::kStarvation: return 1;
      default: return 0;
    }
  };
  std::size_t lo = 0;
  for (const auto& job : sliced) {
    const std::size_t hi = std::min<std::size_t>(lo + 64, 100);
    int worst = 0;
    std::uint64_t cycles = 0;
    for (std::size_t v = lo; v < hi; ++v) {
      worst = std::max(worst, severity(interp[v].outcome));
      cycles += interp[v].cycles;
    }
    EXPECT_EQ(severity(job.outcome), worst) << job.name;
    EXPECT_EQ(job.cycles, cycles) << job.name;
    lo = hi;
  }
}

TEST(XirCampaign, FuzzJobsEngineInvariant) {
  auto run = [](xir::EngineMode engine) {
    std::vector<campaign::Job> jobs;
    for (std::size_t i = 0; i < 20; ++i) {
      campaign::FuzzSpec spec;
      spec.shape = campaign::FuzzSpec::Shape::kComposite;
      spec.engine = engine;
      spec.check_equivalence = false;  // full-data path is engine-blind
      jobs.push_back(
          campaign::make_fuzz_job("fuzz/" + std::to_string(i), spec));
    }
    campaign::EngineOptions eopts;
    eopts.threads = 2;
    eopts.cycle_budget = 1u << 14;
    return campaign::Engine(eopts).run(jobs);
  };
  const auto interp = run(xir::EngineMode::kInterp);
  const auto compiled = run(xir::EngineMode::kCompiled);
  const auto sliced = run(xir::EngineMode::kSliced);
  for (std::size_t i = 0; i < interp.size(); ++i) {
    EXPECT_EQ(interp[i].outcome, compiled[i].outcome) << i;
    EXPECT_EQ(interp[i].outcome, sliced[i].outcome) << i;
    EXPECT_EQ(interp[i].cycles, compiled[i].cycles) << i;
    EXPECT_EQ(interp[i].cycles, sliced[i].cycles) << i;
    EXPECT_EQ(interp[i].throughput, compiled[i].throughput) << i;
    EXPECT_EQ(interp[i].throughput, sliced[i].throughput) << i;
  }
}

// ---- serve integration --------------------------------------------------

constexpr const char* kRingNetlist = R"(process A 1 1
process B 1 1
channel A.0 -> B.0 : F
channel B.0 -> A.0 : F
)";

std::string screen_request(const char* engine) {
  return Json::object()
      .set("rpc", serve::kRpcSchema)
      .set("kind", "screen")
      .set("netlist", kRingNetlist)
      .set("engine", engine)
      .dump();
}

TEST(XirServe, EngineKeysTheCacheAndCounters) {
  serve::ServeContext ctx;
  const std::string a1 = serve::handle_payload(screen_request("compiled"),
                                               ctx);
  const std::string a2 = serve::handle_payload(screen_request("compiled"),
                                               ctx);
  const std::string b1 = serve::handle_payload(screen_request("interp"),
                                               ctx);

  // Identical request → byte-identical cached answer; different engine
  // → a distinct cache entry (a fresh miss), not a hit on the other key.
  EXPECT_NE(a1.find("\"cached\":false"), std::string::npos);
  EXPECT_EQ(a2, a1.substr(0, a1.find("\"cached\":false")) +
                    "\"cached\":true" +
                    a1.substr(a1.find("\"cached\":false") + 14));
  EXPECT_NE(b1.find("\"cached\":false"), std::string::npos);

  const int interp_idx = static_cast<int>(xir::EngineMode::kInterp);
  const int compiled_idx = static_cast<int>(xir::EngineMode::kCompiled);
  EXPECT_EQ(ctx.engine_misses[compiled_idx].value(), 1u);
  EXPECT_EQ(ctx.engine_hits[compiled_idx].value(), 1u);
  EXPECT_EQ(ctx.engine_misses[interp_idx].value(), 1u);
  EXPECT_EQ(ctx.engine_hits[interp_idx].value(), 0u);

  // Engines agree on the verdict payload (only the echoed engine name
  // differs between the result documents).
  const Json ra = *Json::parse(a1).find("result");
  const Json rb = *Json::parse(b1).find("result");
  EXPECT_EQ(ra.find("verdict")->as_string(), rb.find("verdict")->as_string());
  EXPECT_EQ(ra.find("from_reset")->dump(), rb.find("from_reset")->dump());
  EXPECT_EQ(ra.find("worst_case")->dump(), rb.find("worst_case")->dump());
  EXPECT_EQ(ra.find("engine")->as_string(), "compiled");
  EXPECT_EQ(rb.find("engine")->as_string(), "interp");

  // The status document surfaces the per-engine traffic split.
  const Json status = ctx.status_json();
  const Json* engines = status.find("engines");
  ASSERT_NE(engines, nullptr);
  EXPECT_EQ(engines->find("compiled")->find("hits")->as_uint(), 1u);
  EXPECT_EQ(engines->find("compiled")->find("misses")->as_uint(), 1u);
  EXPECT_EQ(engines->find("interp")->find("misses")->as_uint(), 1u);
  EXPECT_EQ(engines->find("sliced")->find("misses")->as_uint(), 0u);
}

TEST(XirServe, UnknownEngineRejected) {
  serve::ServeContext ctx;
  const std::string resp = serve::handle_payload(
      Json::object()
          .set("rpc", serve::kRpcSchema)
          .set("kind", "screen")
          .set("netlist", kRingNetlist)
          .set("engine", "turbo")
          .dump(),
      ctx);
  EXPECT_NE(resp.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(resp.find("unknown engine"), std::string::npos);
}

}  // namespace
