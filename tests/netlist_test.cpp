// Tests for the .lid netlist parser and writer.

#include <gtest/gtest.h>

#include <sstream>

#include "liplib/graph/generators.hpp"
#include "liplib/graph/netlist_io.hpp"

namespace {

using namespace liplib;
using graph::RsKind;

const char* kFig1 = R"(# the paper's Fig. 1
source src
process A 1 2
process B 1 1
process C 2 1
sink out
channel src.0 -> A.0
channel A.0 -> B.0 : F
channel B.0 -> C.0 : F
channel A.1 -> C.1 : F
channel C.0 -> out.0
)";

TEST(Netlist, ParsesFig1) {
  const auto topo = graph::parse_netlist_string(kFig1);
  EXPECT_EQ(topo.nodes().size(), 5u);
  EXPECT_EQ(topo.channels().size(), 5u);
  EXPECT_EQ(topo.num_processes(), 3u);
  EXPECT_EQ(topo.total_full_stations(), 3u);
  EXPECT_TRUE(topo.validate().ok());
  EXPECT_EQ(topo.node(1).name, "A");
  EXPECT_EQ(topo.node(1).num_outputs, 2u);
}

TEST(Netlist, AcceptsStationSpellings) {
  const auto topo = graph::parse_netlist_string(
      "source s\nprocess P 1 1\nsink o\n"
      "channel s.0 -> P.0 : full H f half\n"
      "channel P.0 -> o.0\n");
  EXPECT_EQ(topo.channel(0).num_full(), 2u);
  EXPECT_EQ(topo.channel(0).num_half(), 2u);
}

TEST(Netlist, RoundTripsGeneratedTopologies) {
  Rng rng(99);
  std::vector<graph::Topology> cases;
  cases.push_back(graph::make_fig1().topo);
  cases.push_back(graph::make_fig2().topo);
  cases.push_back(graph::make_loop_chain({{1, 2}, {2, 4}}).topo);
  for (int i = 0; i < 5; ++i) {
    cases.push_back(graph::make_random_feedforward(rng, 6, 3, true).topo);
    cases.push_back(graph::make_random_composite(rng, 4, true, true).topo);
  }
  for (const auto& topo : cases) {
    const std::string text = graph::write_netlist(topo);
    const auto back = graph::parse_netlist_string(text);
    ASSERT_EQ(back.nodes().size(), topo.nodes().size());
    ASSERT_EQ(back.channels().size(), topo.channels().size());
    for (std::size_t v = 0; v < topo.nodes().size(); ++v) {
      EXPECT_EQ(back.node(v).name, topo.node(v).name);
      EXPECT_EQ(back.node(v).kind, topo.node(v).kind);
      EXPECT_EQ(back.node(v).num_inputs, topo.node(v).num_inputs);
      EXPECT_EQ(back.node(v).num_outputs, topo.node(v).num_outputs);
    }
    for (std::size_t c = 0; c < topo.channels().size(); ++c) {
      EXPECT_EQ(back.channel(c).from.node, topo.channel(c).from.node);
      EXPECT_EQ(back.channel(c).from.port, topo.channel(c).from.port);
      EXPECT_EQ(back.channel(c).to.node, topo.channel(c).to.node);
      EXPECT_EQ(back.channel(c).to.port, topo.channel(c).to.port);
      EXPECT_EQ(back.channel(c).stations, topo.channel(c).stations);
    }
    // Idempotence of the writer.
    EXPECT_EQ(graph::write_netlist(back), text);
  }
}

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    graph::parse_netlist_string(text);
    FAIL() << "expected parse error containing '" << needle << "'";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(Netlist, ReportsErrorsWithLineNumbers) {
  expect_parse_error("bogus x\n", "line 1");
  expect_parse_error("source s\nsource s\n", "duplicate node name");
  expect_parse_error("source s\nchannel s.0 -> t.0\n", "unknown node 't'");
  expect_parse_error("source s\nsink o\nchannel s.0 > o.0\n", "->");
  expect_parse_error("source s\nsink o\nchannel s.0 -> o.0 : Q\n",
                     "unknown relay station kind");
  expect_parse_error("source s\nsink o\nchannel s -> o.0\n",
                     "expected <name>.<port>");
  expect_parse_error("process p 0 0\n", "no ports");
  expect_parse_error("source s extra\n", "unexpected token");
  expect_parse_error("source s\nsink o\nchannel s.0 -> o.0 F\n",
                     "expected ':'");
  expect_parse_error("source s\nprocess p 1 1\nsink o\n"
                     "channel s.0 -> p.0\nchannel s.0 -> p.0\n",
                     "line 5");
}

TEST(Netlist, ErrorsQuoteTheLineWithACaret) {
  // The offending line is echoed and a caret column-aligns with the bad
  // token (tildes underline the rest of it).
  try {
    graph::parse_netlist_string("source s\nchannel s.0 -> t.0\n");
    FAIL() << "expected a parse error";
  } catch (const ApiError& e) {
    const std::string what = e.what();
    const std::string expected =
        "netlist line 2: unknown node 't'\n"
        "  channel s.0 -> t.0\n"
        "  " +
        std::string(std::string("channel s.0 -> ").size(), ' ') + "^";
    EXPECT_NE(what.find(expected), std::string::npos) << what;
  }
  // Multi-character tokens get an underline as wide as the token.
  try {
    graph::parse_netlist_string("source s\nsink o\n"
                                "channel s.0 -> o.0 : FULL\n");
    FAIL() << "expected a parse error";
  } catch (const ApiError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown relay station kind"), std::string::npos);
    EXPECT_NE(what.find("^~~~"), std::string::npos) << what;
  }
}

TEST(Netlist, CommentsAndBlankLinesIgnored) {
  const auto topo = graph::parse_netlist_string(
      "\n# leading comment\n\nsource s  # trailing comment\n\nsink o\n"
      "channel s.0 -> o.0\n# done\n");
  EXPECT_EQ(topo.nodes().size(), 2u);
  EXPECT_EQ(topo.channels().size(), 1u);
}

}  // namespace
