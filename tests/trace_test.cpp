// liplib::trace — end-to-end distributed tracing of the fleet.
//
// The acceptance spine: span ids are deterministic functions of content
// hashes and causal salts (never random), so with frozen clocks the
// serve daemon's trace scrape is BYTE-IDENTICAL across 1/2/8 engine
// threads and a coordinator's campaign timeline is byte-stable across
// repeated runs at 1/2/4 shards; a caller's trace context propagates
// through the liplib.rpc/1 envelope so serve-side spans join the
// caller's trace; a killed worker's re-dispatch appears as an explicit
// root-span event; every merged timeline passes referential integrity;
// and the metrics scrape's request-latency histogram counts equal the
// status document's request counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "liplib/campaign/jobs.hpp"
#include "liplib/dist/coordinator.hpp"
#include "liplib/dist/worker.hpp"
#include "liplib/probe/trace.hpp"
#include "liplib/serve/cache.hpp"
#include "liplib/serve/server.hpp"
#include "liplib/support/check.hpp"
#include "liplib/support/json.hpp"
#include "liplib/trace/trace.hpp"

namespace {

using namespace liplib;

const char* kFig1 = R"(source src
process A 1 2
process B 1 1
process C 2 1
sink out
channel src.0 -> A.0
channel A.0 -> B.0 : F
channel B.0 -> C.0 : F
channel A.1 -> C.1 : F
channel C.0 -> out.0
)";

std::string request_json(const char* kind, const char* netlist,
                         const char* extra = "") {
  Json r = Json::object().set("rpc", serve::kRpcSchema).set("kind", kind);
  if (netlist) r.set("netlist", netlist);
  std::string s = r.dump();
  if (*extra) {
    s.pop_back();
    s += ",";
    s += extra;
    s += "}";
  }
  return s;
}

// ---- identity -----------------------------------------------------------

TEST(TraceIds, DeterministicAndNonZero) {
  EXPECT_NE(trace::derive_trace_id(0), 0u);
  EXPECT_NE(trace::derive_trace_id(42), 0u);
  EXPECT_EQ(trace::derive_trace_id(42), trace::derive_trace_id(42));
  EXPECT_NE(trace::derive_trace_id(42), trace::derive_trace_id(43));

  const std::uint64_t tid = trace::derive_trace_id(42);
  EXPECT_NE(trace::derive_span_id(tid, 0, 0), 0u);
  EXPECT_EQ(trace::derive_span_id(tid, 1, 2), trace::derive_span_id(tid, 1, 2));
  EXPECT_NE(trace::derive_span_id(tid, 1, 2), trace::derive_span_id(tid, 2, 1));
  EXPECT_NE(trace::derive_span_id(tid, 1, 2), trace::derive_span_id(tid, 1, 3));
}

TEST(TraceIds, ContextRoundTripsThroughJson) {
  const trace::TraceContext ctx{trace::derive_trace_id(7),
                                trace::derive_span_id(7, 1, 1)};
  const trace::TraceContext back = trace::TraceContext::from_json(ctx.to_json());
  EXPECT_EQ(back.trace_id, ctx.trace_id);
  EXPECT_EQ(back.parent_span, ctx.parent_span);

  // A message without the optional member is a disabled context, not an
  // error — peers that predate tracing stay compatible.
  const trace::TraceContext none =
      trace::TraceContext::from_envelope(Json::object().set("msg", "lease"));
  EXPECT_FALSE(none.enabled());
  EXPECT_THROW(
      trace::TraceContext::from_json(Json::object().set("trace_id", "xyzzy!")),
      ApiError);
}

// ---- documents ----------------------------------------------------------

trace::Span make_span(std::uint64_t tid, std::uint64_t sid, std::uint64_t parent,
                      const char* name, const char* track, std::uint64_t ts) {
  trace::Span s;
  s.trace_id = tid;
  s.span_id = sid;
  s.parent_span = parent;
  s.name = name;
  s.category = "test";
  s.track = track;
  s.ts_us = ts;
  s.dur_us = 5;
  return s;
}

TEST(TraceDoc, RoundTripsAndSortsCanonically) {
  const std::uint64_t tid = trace::derive_trace_id(9);
  std::vector<trace::Span> spans;
  spans.push_back(make_span(tid, 30, 10, "late", "b", 200));
  spans.push_back(make_span(tid, 10, 0, "root", "a", 100));
  spans.back().events.push_back({"cache.miss", 101});
  spans.back().attrs.emplace_back("kind", "screen");
  spans.push_back(make_span(tid, 20, 10, "early", "b", 150));

  const Json doc = trace::spans_to_json(spans);
  // Recording order must not leak into the document: a permutation
  // serializes byte-identically.
  std::vector<trace::Span> shuffled{spans[2], spans[0], spans[1]};
  EXPECT_EQ(doc.dump(), trace::spans_to_json(shuffled).dump());

  const auto back = trace::spans_from_json(doc);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].name, "root");  // canonical (trace, ts, span) order
  EXPECT_EQ(back[1].name, "early");
  EXPECT_EQ(back[2].name, "late");
  ASSERT_EQ(back[0].events.size(), 1u);
  EXPECT_EQ(back[0].events[0].name, "cache.miss");
  ASSERT_EQ(back[0].attrs.size(), 1u);
  EXPECT_EQ(back[0].attrs[0].second, "screen");
  EXPECT_EQ(trace::spans_to_json(back).dump(), doc.dump());

  EXPECT_THROW(trace::spans_from_json(Json::object().set("schema", "nope")),
               ApiError);
}

TEST(TraceDoc, MergeFoldsDocumentsIntoOneTimeline) {
  const std::uint64_t t1 = trace::derive_trace_id(1);
  const std::uint64_t t2 = trace::derive_trace_id(2);
  const Json a = trace::spans_to_json({make_span(t1, 10, 0, "a", "x", 5)});
  const Json b = trace::spans_to_json({make_span(t2, 10, 0, "b", "y", 3)});
  const auto merged = trace::spans_from_json(trace::merge_trace_docs({a, b}));
  ASSERT_EQ(merged.size(), 2u);
  // Sorted by trace id first: documents interleave deterministically.
  EXPECT_EQ(merged[0].trace_id, std::min(t1, t2));
}

TEST(TraceDoc, IntegrityCatchesOrphansAndDuplicates) {
  const std::uint64_t tid = trace::derive_trace_id(3);
  std::vector<trace::Span> ok{make_span(tid, 10, 0, "r", "x", 1),
                              make_span(tid, 20, 10, "c", "x", 2)};
  std::string err;
  EXPECT_TRUE(trace::check_integrity(ok, &err)) << err;

  // Parent id that names no span in the trace.
  std::vector<trace::Span> orphan{make_span(tid, 10, 99, "r", "x", 1)};
  EXPECT_FALSE(trace::check_integrity(orphan, &err));
  EXPECT_NE(err.find("parent"), std::string::npos);

  // Same span id twice within one trace.
  std::vector<trace::Span> dup{make_span(tid, 10, 0, "r", "x", 1),
                               make_span(tid, 10, 0, "r2", "x", 2)};
  EXPECT_FALSE(trace::check_integrity(dup, &err));

  // A parent in a *different* trace does not satisfy the check: causality
  // never crosses trace ids.
  std::vector<trace::Span> cross{
      make_span(trace::derive_trace_id(4), 10, 0, "r", "x", 1),
      make_span(trace::derive_trace_id(5), 20, 10, "c", "x", 2)};
  EXPECT_FALSE(trace::check_integrity(cross, &err));
}

TEST(TraceDoc, ExportsPerfettoEventsPerTrack) {
  const std::uint64_t tid = trace::derive_trace_id(6);
  std::vector<trace::Span> spans{make_span(tid, 10, 0, "serve.screen", "serve", 1),
                                 make_span(tid, 20, 10, "exec", "worker", 2)};
  spans[0].events.push_back({"cache.miss", 1});
  std::ostringstream os;
  {
    probe::TraceSink sink(os);
    trace::export_perfetto(spans, sink);
    sink.finish();
  }
  const std::string out = os.str();
  // One Perfetto process per track, named; spans as X events; span
  // events as instants.
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"serve\""), std::string::npos);
  EXPECT_NE(out.find("\"worker\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("cache.miss"), std::string::npos);
}

// ---- serve spans --------------------------------------------------------

/// A serve context with frozen clocks and a fixed engine thread count —
/// the determinism harness.
serve::ServeContext frozen_ctx(unsigned threads) {
  serve::ServerOptions opts;
  opts.threads = threads;
  return serve::ServeContext(
      opts, [] { return std::uint64_t{0}; },
      [] { return std::uint64_t{1000000}; });
}

/// Runs the canonical request sequence and returns the raw trace-scrape
/// response payload.
std::string serve_trace_bytes(unsigned threads) {
  serve::ServeContext ctx = frozen_ctx(threads);
  serve::handle_payload(request_json("screen", kFig1), ctx);
  serve::handle_payload(request_json("screen", kFig1), ctx);  // cache hit
  serve::handle_payload(
      request_json("campaign", nullptr, "\"mode\":\"fuzz\",\"jobs\":40"), ctx);
  return serve::handle_payload(request_json("trace", nullptr), ctx);
}

TEST(ServeTrace, ByteIdenticalAcrossEngineThreadCounts) {
  const std::string one = serve_trace_bytes(1);
  EXPECT_EQ(one, serve_trace_bytes(2));
  EXPECT_EQ(one, serve_trace_bytes(8));

  const Json response = Json::parse(one);
  ASSERT_TRUE(response.find("ok")->as_bool());
  const auto spans = trace::spans_from_json(*response.find("result"));
  std::string err;
  EXPECT_TRUE(trace::check_integrity(spans, &err)) << err;

  // Three request roots (the scrape itself is not traced), a
  // cache-lookup child per cacheable request, one execute per miss, and
  // 40 campaign chunk spans under the campaign execute.
  std::size_t roots = 0, lookups = 0, execs = 0, chunks = 0;
  bool saw_hit_event = false, saw_miss_event = false;
  for (const auto& s : spans) {
    if (s.name.rfind("serve.", 0) == 0 && s.parent_span == 0) roots++;
    if (s.name == "serve.cache_lookup") lookups++;
    if (s.name == "serve.execute") execs++;
    if (s.name == "campaign.chunk") chunks++;
    for (const auto& e : s.events) {
      if (e.name == "cache.hit") saw_hit_event = true;
      if (e.name == "cache.miss") saw_miss_event = true;
    }
  }
  EXPECT_EQ(roots, 3u);
  EXPECT_EQ(lookups, 3u);
  EXPECT_EQ(execs, 2u);  // second screen was a hit
  EXPECT_EQ(chunks, 40u);
  EXPECT_TRUE(saw_hit_event);
  EXPECT_TRUE(saw_miss_event);
}

TEST(ServeTrace, CallerContextPropagatesThroughTheEnvelope) {
  serve::ServeContext ctx = frozen_ctx(1);
  const std::uint64_t caller_trace = trace::derive_trace_id(1234);
  const std::uint64_t caller_span = trace::derive_span_id(caller_trace, 0, 0);
  Json req = Json::object()
                 .set("rpc", serve::kRpcSchema)
                 .set("kind", "lint")
                 .set("netlist", kFig1)
                 .set("trace",
                      trace::TraceContext{caller_trace, caller_span}.to_json());
  serve::handle_payload(req.dump(), ctx);

  const auto spans = ctx.recorder.snapshot();
  ASSERT_FALSE(spans.empty());
  for (const auto& s : spans) EXPECT_EQ(s.trace_id, caller_trace);
  // The request root hangs off the caller's span — one forest.
  bool found_root = false;
  for (const auto& s : spans) {
    if (s.name == "serve.lint") {
      EXPECT_EQ(s.parent_span, caller_span);
      found_root = true;
    }
  }
  EXPECT_TRUE(found_root);
}

TEST(ServeTrace, MetricsHistogramCountsEqualStatusCounters) {
  serve::ServeContext ctx = frozen_ctx(1);
  serve::handle_payload(request_json("lint", kFig1), ctx);
  serve::handle_payload(request_json("lint", kFig1), ctx);  // hit
  serve::handle_payload(request_json("screen", kFig1), ctx);
  const Json response =
      Json::parse(serve::handle_payload(request_json("metrics", nullptr), ctx));
  ASSERT_TRUE(response.find("ok")->as_bool());
  const Json* result = response.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("content_type")->as_string(),
            "text/plain; version=0.0.4");
  const std::string text = result->find("text")->as_string();
  EXPECT_NE(text.find("# TYPE liplib_serve_request_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("liplib_serve_cache_bytes"), std::string::npos);

  // Sum the per-label _count samples; the scrape observed its own
  // latency before exposition, so the total equals requests_total.
  std::uint64_t histogram_total = 0;
  std::istringstream lines(text);
  std::string line;
  const std::string prefix = "liplib_serve_request_latency_us_count{";
  while (std::getline(lines, line)) {
    if (line.rfind(prefix, 0) == 0) {
      histogram_total +=
          std::stoull(line.substr(line.find_last_of(' ') + 1));
    }
  }
  const Json status = ctx.status_json();
  EXPECT_EQ(histogram_total,
            status.find("requests")->find("total")->as_uint());
  EXPECT_EQ(histogram_total, 4u);  // lint, lint, screen, metrics
}

// ---- dist spans ---------------------------------------------------------

campaign::NamedCampaignSpec fuzz_spec(std::size_t jobs) {
  campaign::NamedCampaignSpec spec;
  spec.mode = "fuzz";
  spec.jobs = jobs;
  spec.engine = xir::EngineMode::kInterp;
  return spec;
}

/// One full traced campaign: coordinator + a single sequential worker,
/// both on frozen clocks.  Returns the coordinator's span document.
Json traced_campaign(std::size_t shards) {
  dist::CoordinatorOptions copts;
  copts.spec = fuzz_spec(8);
  copts.base_seed = 7;
  copts.cycle_budget = 1u << 14;
  copts.shards = shards;
  copts.trace = true;
  copts.clock_us = [] { return std::uint64_t{5000000}; };
  dist::Coordinator coord(copts);
  coord.start();

  dist::WorkerOptions w;
  w.port = coord.port();
  w.threads = 1;
  w.clock_us = [] { return std::uint64_t{5000001}; };
  const auto stats = dist::run_worker(w);
  EXPECT_EQ(stats.submitted, shards);
  coord.wait();
  return coord.trace_json();
}

TEST(DistTrace, ByteStableTimelineAcrossShardCounts) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    const std::string first = traced_campaign(shards).dump(2);
    EXPECT_EQ(first, traced_campaign(shards).dump(2))
        << "shards=" << shards;

    const auto spans = trace::spans_from_json(Json::parse(first));
    std::string err;
    EXPECT_TRUE(trace::check_integrity(spans, &err)) << err;

    // Every span of the campaign shares ONE trace id (the acceptance
    // criterion: lease -> execute -> merge is a single timeline).
    ASSERT_FALSE(spans.empty());
    for (const auto& s : spans) EXPECT_EQ(s.trace_id, spans[0].trace_id);

    std::size_t roots = 0, leases = 0, execs = 0, merges = 0, chunks = 0;
    for (const auto& s : spans) {
      if (s.name == "dist.campaign") roots++;
      if (s.name == "dist.lease") leases++;
      if (s.name == "dist.worker.execute") execs++;
      if (s.name == "dist.merge") merges++;
      if (s.name == "campaign.chunk") chunks++;
    }
    EXPECT_EQ(roots, 1u);
    EXPECT_EQ(leases, shards);
    EXPECT_EQ(execs, shards);
    EXPECT_EQ(merges, 1u);
    EXPECT_EQ(chunks, 8u);  // one chunk span per job at this size
  }
}

TEST(DistTrace, RedispatchIsAnExplicitEventAndMetricsSeeIt) {
  dist::CoordinatorOptions copts;
  copts.spec = fuzz_spec(8);
  copts.base_seed = 7;
  copts.cycle_budget = 1u << 14;
  copts.shards = 2;
  copts.lease_ms = 150;  // fast expiry of the dead worker's lease
  copts.wait_ms = 20;
  copts.trace = true;
  dist::Coordinator coord(copts);
  coord.start();

  // A worker that takes one lease and dies holding it.
  dist::WorkerOptions dead;
  dead.port = coord.port();
  dead.threads = 1;
  dead.die_after_lease = 1;
  EXPECT_EQ(dist::run_worker(dead).leases, 1u);

  // An honest worker finishes the campaign, re-dispatch included.
  dist::WorkerOptions w;
  w.port = coord.port();
  w.threads = 1;
  dist::WorkerStats ws;
  std::thread t([&] { ws = dist::run_worker(w); });
  coord.wait();
  t.join();
  EXPECT_EQ(ws.submitted, 2u);

  const Json doc = coord.trace_json();
  EXPECT_NE(doc.dump().find("dist.redispatch"), std::string::npos);
  const auto spans = trace::spans_from_json(doc);
  std::string err;
  EXPECT_TRUE(trace::check_integrity(spans, &err)) << err;

  const std::string metrics = coord.metrics_text();
  EXPECT_NE(metrics.find("liplib_dist_redispatches_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("liplib_dist_shards_done 2"), std::string::npos);
  EXPECT_NE(metrics.find("liplib_dist_outstanding_leases 0"),
            std::string::npos);
}

TEST(DistTrace, CoordinatorJoinsAnEnclosingTrace) {
  const std::uint64_t outer_trace = trace::derive_trace_id(77);
  const std::uint64_t outer_span = trace::derive_span_id(outer_trace, 0, 0);
  dist::CoordinatorOptions copts;
  copts.spec = fuzz_spec(4);
  copts.base_seed = 7;
  copts.cycle_budget = 1u << 14;
  copts.shards = 1;
  copts.trace = true;
  copts.clock_us = [] { return std::uint64_t{100}; };
  copts.parent = trace::TraceContext{outer_trace, outer_span};
  dist::Coordinator coord(copts);
  coord.start();
  dist::WorkerOptions w;
  w.port = coord.port();
  w.threads = 1;
  w.clock_us = [] { return std::uint64_t{101}; };
  dist::run_worker(w);
  coord.wait();

  const auto spans = trace::spans_from_json(coord.trace_json());
  ASSERT_FALSE(spans.empty());
  bool root_seen = false;
  for (const auto& s : spans) {
    EXPECT_EQ(s.trace_id, outer_trace);
    if (s.name == "dist.campaign") {
      EXPECT_EQ(s.parent_span, outer_span);
      root_seen = true;
    }
  }
  EXPECT_TRUE(root_seen);
}

}  // namespace
