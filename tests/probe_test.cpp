// liplib::probe: counters must reproduce the analytic throughputs
// *exactly* (Rational equality over one steady-state period), stall
// attribution must name the real bottleneck, and the streaming Chrome
// trace must stay byte-stable (Perfetto compatibility is golden-locked).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/system.hpp"
#include "liplib/probe/probe.hpp"
#include "liplib/probe/trace.hpp"
#include "liplib/sim/kernel.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/rng.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;

// Analyzes the skeleton for the exact steady state, then re-runs the
// full-data system with a probe windowed to one period.  System and
// Skeleton share the protocol trajectory from reset, so the measured
// rates must equal the analytic ones exactly.
struct Measured {
  skeleton::SkeletonResult analytic;
  probe::ProbeReport report;
};

Measured measure(const graph::Generated& gen, lip::StopPolicy policy) {
  skeleton::SkeletonOptions sk_opts;
  sk_opts.policy = policy;
  skeleton::Skeleton sk(gen.topo, sk_opts);
  Measured m;
  m.analytic = sk.analyze();
  EXPECT_TRUE(m.analytic.found);
  if (!m.analytic.found) return m;

  auto design = testutil::make_design(gen);
  lip::SystemOptions opts;
  opts.policy = policy;
  auto sys = design.instantiate(opts);
  probe::Probe probe;
  sys->attach_probe(probe);
  sys->run(m.analytic.transient);
  probe.reset_window();
  sys->run(m.analytic.period);
  m.report = probe.report();
  return m;
}

void expect_exact(const Measured& m, const std::string& what) {
  ASSERT_EQ(m.report.cycles, m.analytic.period) << what;
  for (std::size_t i = 0; i < m.analytic.shell_ids.size(); ++i) {
    EXPECT_EQ(m.report.throughput(m.analytic.shell_ids[i]),
              m.analytic.shell_throughput[i])
        << what << ": shell " << m.analytic.shell_ids[i];
  }
  EXPECT_EQ(m.report.min_throughput(), m.analytic.system_throughput()) << what;
}

TEST(Probe, Fig1MeasuresTheAnalyticThroughputExactly) {
  for (auto policy : {lip::StopPolicy::kCasuDiscardOnVoid,
                      lip::StopPolicy::kCarloniStrict}) {
    const auto m = measure(graph::make_fig1(), policy);
    expect_exact(m, "fig1");
    // The paper's Fig. 1: i = 1, m = 5, T = (m-i)/m = 4/5.
    EXPECT_EQ(m.report.min_throughput(), Rational(4, 5));
  }
}

TEST(Probe, Fig2MeasuresTheAnalyticThroughputExactly) {
  for (auto policy : {lip::StopPolicy::kCasuDiscardOnVoid,
                      lip::StopPolicy::kCarloniStrict}) {
    const auto m = measure(graph::make_fig2(), policy);
    expect_exact(m, "fig2");
    // The paper's Fig. 2 ring: S = 2, R = 2, T = S/(S+R) = 1/2.
    EXPECT_EQ(m.report.min_throughput(), Rational(1, 2));
  }
}

TEST(Probe, HundredRandomCompositesMatchUnderBothPolicies) {
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 100; ++i) {
    const std::size_t segments = 1 + rng.below(4);
    auto gen = graph::make_random_composite(rng, segments,
                                            /*allow_half=*/true,
                                            /*allow_half_in_loops=*/false);
    for (auto policy : {lip::StopPolicy::kCasuDiscardOnVoid,
                        lip::StopPolicy::kCarloniStrict}) {
      const auto m = measure(gen, policy);
      expect_exact(m, "composite " + std::to_string(i));
    }
  }
}

TEST(Probe, CountersAreConsistentPerCycle) {
  const auto m = measure(graph::make_fig1(),
                         lip::StopPolicy::kCasuDiscardOnVoid);
  for (const auto& s : m.report.shells) {
    EXPECT_EQ(s.fired + s.waiting + s.stopped, m.report.cycles) << s.name;
  }
  for (const auto& seg : m.report.segments) {
    EXPECT_EQ(seg.valid + seg.voids, m.report.cycles) << seg.label;
    EXPECT_EQ(seg.stop_on_valid + seg.stop_on_void, seg.stopped) << seg.label;
    EXPECT_LE(seg.stopped, m.report.cycles) << seg.label;
  }
}

TEST(Probe, BlameNamesTheImbalancedBranchStation) {
  // Reconvergence with 1 station on the direct fork->join branch against
  // a long branch of 2 shells with 2 stations per hop: i = 5, m = 10,
  // T = 1/2.  The short branch's lone station chain saturates and
  // back-pressures the fork — it must top the blame histogram.
  auto gen = graph::make_reconvergent(/*short_stations=*/1,
                                      /*long_shells=*/2,
                                      /*long_stations_per_hop=*/2);
  graph::ChannelId direct = 0;
  bool found_direct = false;
  for (graph::ChannelId c = 0; c < gen.topo.channels().size(); ++c) {
    const auto& ch = gen.topo.channel(c);
    if (ch.from.node == gen.fork && ch.to.node == gen.join) {
      direct = c;
      found_direct = true;
    }
  }
  ASSERT_TRUE(found_direct);

  const auto m = measure(gen, lip::StopPolicy::kCasuDiscardOnVoid);
  expect_exact(m, "reconvergent");
  const auto* top = m.report.top_blame();
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->victim, gen.fork);
  EXPECT_EQ(top->why, probe::Activity::kStoppedOutput);
  EXPECT_EQ(top->culprit.kind, probe::UnitKind::kStation);
  EXPECT_EQ(top->culprit.channel, direct);
}

TEST(Probe, AttachedProbeDoesNotPerturbTheSimulation) {
  auto gen = graph::make_fig1();
  auto plain = testutil::make_design(gen).instantiate();
  plain->run(64);

  auto probed_design = testutil::make_design(gen);
  auto probed = probed_design.instantiate();
  probe::Probe probe;
  probed->attach_probe(probe);
  probed->run(64);

  for (auto v : gen.sinks) {
    const auto& a = plain->sink_stream(v);
    const auto& b = probed->sink_stream(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].data, b[i].data) << i;
    }
  }
}

TEST(Probe, SkeletonAndSystemProbesAgree) {
  // The skeleton is protocol-exact, so a probe attached to it must count
  // the same activity histogram as one attached to the full-data system.
  auto gen = graph::make_fig1();
  const std::uint64_t cycles = 100;

  auto design = testutil::make_design(gen);
  auto sys = design.instantiate();
  probe::Probe sys_probe;
  sys->attach_probe(sys_probe);
  sys->run(cycles);

  skeleton::Skeleton sk(gen.topo);
  probe::Probe sk_probe;
  sk.attach_probe(sk_probe);
  sk.run(cycles);

  const auto a = sys_probe.report();
  const auto b = sk_probe.report();
  ASSERT_EQ(a.shells.size(), b.shells.size());
  for (std::size_t i = 0; i < a.shells.size(); ++i) {
    EXPECT_EQ(a.shells[i].fired, b.shells[i].fired) << a.shells[i].name;
    EXPECT_EQ(a.shells[i].waiting, b.shells[i].waiting) << a.shells[i].name;
    EXPECT_EQ(a.shells[i].stopped, b.shells[i].stopped) << a.shells[i].name;
  }
  ASSERT_EQ(a.blame.size(), b.blame.size());
  for (std::size_t i = 0; i < a.blame.size(); ++i) {
    EXPECT_EQ(a.blame[i].victim_name, b.blame[i].victim_name) << i;
    EXPECT_EQ(a.blame[i].culprit_name, b.blame[i].culprit_name) << i;
    EXPECT_EQ(a.blame[i].cycles, b.blame[i].cycles) << i;
  }
}

TEST(Probe, ReportSerializesToJson) {
  const auto m = measure(graph::make_fig1(),
                         lip::StopPolicy::kCasuDiscardOnVoid);
  const auto j = m.report.to_json().dump(0);
  EXPECT_NE(j.find("\"liplib.probe/1\""), std::string::npos);
  EXPECT_NE(j.find("\"min_throughput\""), std::string::npos);
  EXPECT_NE(j.find("\"blame\""), std::string::npos);
}

// The golden Chrome trace for 4 cycles of Fig. 1.  Byte-exact: field
// order, separators and the digit formatting are part of the contract
// with chrome://tracing and ui.perfetto.dev.
const char* kFig1Trace4 =
    R"({"traceEvents":[
{"name":"process_name","ph":"M","pid":1,"args":{"name":"lid"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"A"}},
{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"C"}},
{"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"W0"}},
{"name":"occ src_to_A","ph":"C","ts":0,"pid":1,"args":{"valid":1,"stop":0}},
{"name":"occ A_to_W0","ph":"C","ts":0,"pid":1,"args":{"valid":1,"stop":0}},
{"name":"occ W0_to_C","ph":"C","ts":0,"pid":1,"args":{"valid":1,"stop":0}},
{"name":"occ A_to_C","ph":"C","ts":0,"pid":1,"args":{"valid":1,"stop":0}},
{"name":"occ C_to_out","ph":"C","ts":0,"pid":1,"args":{"valid":1,"stop":0}},
{"name":"wait","cat":"shell","ph":"X","ts":0,"dur":1,"pid":1,"tid":2},
{"name":"wait","cat":"shell","ph":"X","ts":0,"dur":1,"pid":1,"tid":3},
{"name":"occ A_to_W0","ph":"C","ts":1,"pid":1,"args":{"valid":2,"stop":0}},
{"name":"occ A_to_C","ph":"C","ts":1,"pid":1,"args":{"valid":2,"stop":0}},
{"name":"occ C_to_out","ph":"C","ts":1,"pid":1,"args":{"valid":0,"stop":0}},
{"name":"fire","cat":"shell","ph":"X","ts":1,"dur":1,"pid":1,"tid":2},
{"name":"occ A_to_C","ph":"C","ts":2,"pid":1,"args":{"valid":2,"stop":1}},
{"name":"occ C_to_out","ph":"C","ts":2,"pid":1,"args":{"valid":1,"stop":0}},
{"name":"fire","cat":"shell","ph":"X","ts":0,"dur":3,"pid":1,"tid":1},
{"name":"wait","cat":"shell","ph":"X","ts":2,"dur":1,"pid":1,"tid":2},
{"name":"occ src_to_A","ph":"C","ts":3,"pid":1,"args":{"valid":1,"stop":1}},
{"name":"occ W0_to_C","ph":"C","ts":3,"pid":1,"args":{"valid":2,"stop":0}},
{"name":"occ C_to_out","ph":"C","ts":3,"pid":1,"args":{"valid":0,"stop":0}},
{"name":"stall","cat":"shell","ph":"X","ts":3,"dur":1,"pid":1,"tid":1},
{"name":"fire","cat":"shell","ph":"X","ts":3,"dur":1,"pid":1,"tid":2},
{"name":"fire","cat":"shell","ph":"X","ts":1,"dur":3,"pid":1,"tid":3}
]}
)";

TEST(ProbeTrace, GoldenFig1TraceIsByteStable) {
  std::ostringstream os;
  probe::TraceSink sink(os);
  probe::ProbeConfig cfg;
  cfg.trace = &sink;
  probe::Probe probe(cfg);
  auto design = testutil::make_design(graph::make_fig1());
  auto sys = design.instantiate();
  sys->attach_probe(probe);
  sys->run(4);
  probe.finish_trace();
  EXPECT_EQ(os.str(), kFig1Trace4);
}

TEST(ProbeTrace, SinkEscapesAndFlushesIncrementally) {
  std::ostringstream os;
  probe::TraceSinkOptions opt;
  opt.flush_threshold = 16;  // force flushes long before finish()
  {
    probe::TraceSink sink(os, opt);
    sink.name_process(1, "a\"b\\c\nd");
    for (int i = 0; i < 100; ++i) {
      sink.complete_event("fire", "shell", i, 1, 1, 1);
    }
    EXPECT_GT(os.str().size(), 0u);  // flushed mid-stream
    sink.finish();
    EXPECT_TRUE(sink.finished());
    sink.complete_event("late", "shell", 1, 1, 1, 1);  // dropped
  }
  const std::string text = os.str();
  EXPECT_NE(text.find(R"("name":"a\"b\\c\nd")"), std::string::npos);
  EXPECT_EQ(text.rfind("\n]}\n"), text.size() - 4);
  EXPECT_EQ(text.find("late"), std::string::npos);
}

TEST(ProbeKernel, CountsDeltaActivityAndStreamsACounterTrack) {
  std::ostringstream os;
  probe::TraceSink sink(os);
  probe::KernelProbe kp(&sink);

  sim::SimContext ctx;
  ctx.set_observer(&kp);
  auto& a = ctx.signal<int>("a", 0);
  auto& b = ctx.signal<int>("b", 0);
  auto& p = ctx.process("follow", [&] { b.write(a.read() + 1); });
  ctx.sensitize(p, a);
  for (int t = 1; t <= 5; ++t) a.write_after(t, t);
  ctx.run_until(10);
  sink.finish();

  const auto& c = kp.counters();
  EXPECT_GE(c.time_points, 5u);
  EXPECT_GE(c.delta_cycles, c.time_points);
  EXPECT_GE(c.signal_changes, 10u);  // a and b change at each step
  EXPECT_GT(c.process_wakeups, 0u);
  EXPECT_GE(c.max_deltas_per_time, 1u);

  const std::string text = os.str();
  EXPECT_NE(text.find(R"("name":"deltas","ph":"C")"), std::string::npos);
  EXPECT_NE(text.find("\"pid\":2"), std::string::npos);

  const auto j = kp.to_json().dump(0);
  EXPECT_NE(j.find("\"liplib.kernel-probe/1\""), std::string::npos);
}

TEST(Probe, RejectsDoubleAttachAndLateAttach) {
  auto design = testutil::make_design(graph::make_fig1());
  auto sys = design.instantiate();
  probe::Probe probe;
  sys->attach_probe(probe);
  probe::Probe second;
  EXPECT_THROW(sys->attach_probe(second), ApiError);

  auto late = design.instantiate();
  late->run(1);
  probe::Probe third;
  EXPECT_THROW(late->attach_probe(third), ApiError);
}

}  // namespace
