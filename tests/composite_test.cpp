// Property tests on random composite (cyclic) topologies — the paper's
// "most general topology": latency equivalence, skeleton/system
// agreement, prediction accuracy and new-pearl coverage.

#include <gtest/gtest.h>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/mcr.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using lip::StopPolicy;

struct CompositeCase {
  std::uint64_t seed;
  StopPolicy policy;
};

class CompositeEquivalence
    : public ::testing::TestWithParam<CompositeCase> {};

TEST_P(CompositeEquivalence, LidMatchesReference) {
  const auto p = GetParam();
  Rng rng(p.seed);
  auto gen = graph::make_random_composite(rng, 1 + p.seed % 4, true, false);
  lip::Design d(std::move(gen.topo));
  const auto& names = pearls::unary_pearl_names();
  for (graph::NodeId proc : gen.processes) {
    const auto& node = d.topology().node(proc);
    if (node.num_inputs == 1 && node.num_outputs == 1) {
      d.set_pearl(proc,
                  pearls::make_by_name(names[rng.below(names.size())],
                                       rng.next_u64()));
    } else if (node.num_inputs == 2 && node.num_outputs == 2) {
      d.set_pearl(proc, rng.chance(1, 2)
                            ? pearls::make_butterfly(rng.next_u64() & 0xff,
                                                     rng.next_u64() & 0xff)
                            : pearls::make_cordic_stage(
                                  1 + rng.below(5), rng.next_u64() & 0xff,
                                  rng.next_u64() & 0xff));
    } else {
      d.set_pearl(proc,
                  testutil::default_pearl(node.num_inputs, node.num_outputs));
    }
  }
  const auto report = lip::check_latency_equivalence(
      d, {p.policy, lip::StopResolution::kPessimistic, /*hold_monitor=*/true},
      400);
  EXPECT_TRUE(report.ok) << report.detail;
  EXPECT_GT(report.tokens_checked, 0u);
}

std::vector<CompositeCase> composite_cases() {
  std::vector<CompositeCase> cases;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (auto pol :
         {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
      cases.push_back({seed, pol});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompositeEquivalence, ::testing::ValuesIn(composite_cases()),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.policy == StopPolicy::kCarloniStrict ? "_strict"
                                                              : "_variant");
    });

TEST(Composite, SkeletonAgreesOnRandomComposites) {
  Rng rng(4242);
  for (int i = 0; i < 8; ++i) {
    auto gen = graph::make_random_composite(rng, 1 + i % 3, true, false);
    skeleton::Skeleton sk(gen.topo);
    const auto sk_result = sk.analyze(1 << 18);
    ASSERT_TRUE(sk_result.found) << "iteration " << i;

    auto d = testutil::make_design(std::move(gen));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys, 1 << 18);
    ASSERT_TRUE(ss.found) << "iteration " << i;
    EXPECT_EQ(sk_result.transient, ss.transient) << "iteration " << i;
    EXPECT_EQ(sk_result.period, ss.period) << "iteration " << i;
    EXPECT_EQ(sk_result.system_throughput(), ss.system_throughput())
        << "iteration " << i;
  }
}

TEST(Composite, HalfLoopsScreenCleanFromResetAndCureWhenLatched) {
  Rng rng(31337);
  std::size_t latched = 0;
  for (int i = 0; i < 10; ++i) {
    auto gen = graph::make_random_composite(rng, 3, true,
                                            /*allow_half_in_loops=*/true);
    skeleton::ScreeningOptions reset_opts;
    const auto reset = skeleton::screen_for_deadlock(gen.topo, reset_opts);
    ASSERT_TRUE(reset.ran_to_steady_state);
    EXPECT_FALSE(reset.deadlock_found) << "iteration " << i;

    skeleton::ScreeningOptions wc;
    wc.worst_case_occupancy = true;
    const auto worst = skeleton::screen_for_deadlock(gen.topo, wc);
    if (worst.deadlock_found) {
      ++latched;
      const auto cure = skeleton::cure_deadlocks(gen.topo, wc);
      EXPECT_TRUE(cure.success) << "iteration " << i;
    }
  }
  // With halves allowed in loops, a decent fraction of samples latch.
  EXPECT_GT(latched, 0u);
}

TEST(Composite, TransientWithinBound) {
  Rng rng(5150);
  for (int i = 0; i < 6; ++i) {
    auto gen = graph::make_random_composite(rng, 2, false);
    const auto bound = graph::transient_bound(gen.topo);
    auto d = testutil::make_design(std::move(gen));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys, 1 << 20);
    ASSERT_TRUE(ss.found);
    EXPECT_LE(ss.transient, bound) << "iteration " << i;
  }
}

}  // namespace
