// Unit tests for the support utilities: rationals, RNG, tables, VCD,
// JSON parse limits.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "liplib/support/check.hpp"
#include "liplib/support/json.hpp"
#include "liplib/support/rational.hpp"
#include "liplib/support/rng.hpp"
#include "liplib/support/table.hpp"
#include "liplib/support/vcd.hpp"

namespace {

using namespace liplib;

TEST(Rational, NormalizesToLowestTerms) {
  EXPECT_EQ(Rational(4, 8), Rational(1, 2));
  EXPECT_EQ(Rational(-4, 8), Rational(-1, 2));
  EXPECT_EQ(Rational(4, -8), Rational(-1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_EQ(Rational(0, 7).den(), 1);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1, 2) / Rational(0), ApiError);
  EXPECT_THROW(Rational(1, 0), ApiError);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(4, 5), Rational(1));
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, Rendering) {
  EXPECT_EQ(Rational(4, 5).str(), "4/5");
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_NEAR(Rational(1, 3).to_double(), 0.3333, 1e-3);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(5);
  bool seen[7] = {};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, InRangeInclusive) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.in_range(3, 6);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 6u);
    lo |= v == 3;
    hi |= v == 6;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, ChanceRoughlyFair) {
  Rng rng(77);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(1, 4);
  EXPECT_NEAR(hits, 2500, 250);
}

TEST(Table, AlignsColumns) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({"plain", "1/2"});
  t.add_row({"with,comma", "quote\"inside"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1/2\n"
            "\"with,comma\",\"quote\"\"inside\"\n");
}

TEST(Vcd, WritesWellFormedDump) {
  std::ostringstream os;
  VcdWriter vcd(os, "top");
  const auto v = vcd.add_signal("valid", 1);
  const auto d = vcd.add_signal("data", 8);
  vcd.begin_dump();
  vcd.set_time(0);
  vcd.change(v, 1);
  vcd.change(d, 0x2a);
  vcd.set_time(5);
  vcd.change(v, 0);
  vcd.change(v, 0);  // dedup: no second emission
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8"), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("#5"), std::string::npos);
  EXPECT_NE(out.find("b101010"), std::string::npos);
  // The deduplicated change appears once.
  const auto first = out.find("0!");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("0!", first + 1), std::string::npos);
}

TEST(Vcd, RejectsMisuse) {
  std::ostringstream os;
  VcdWriter vcd(os, "top");
  const auto v = vcd.add_signal("x", 1);
  EXPECT_THROW(vcd.change(v, 1), ApiError);  // before begin_dump
  vcd.begin_dump();
  EXPECT_THROW(vcd.add_signal("late", 1), ApiError);
  vcd.set_time(10);
  EXPECT_THROW(vcd.set_time(5), ApiError);  // time must be monotone
}

TEST(Check, MacrosThrowTypedErrors) {
  EXPECT_THROW(LIPLIB_EXPECT(false, "nope"), ApiError);
  EXPECT_THROW(LIPLIB_ENSURE(false, "bug"), InternalError);
  EXPECT_NO_THROW(LIPLIB_EXPECT(true, ""));
  try {
    LIPLIB_EXPECT(1 == 2, "context message");
    FAIL();
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Json, ParseRejectsNestingBeyondMaxDepth) {
  Json::ParseLimits limits;
  limits.max_depth = 8;
  // Exactly at the limit: fine.
  std::string at(8, '[');
  at += std::string(8, ']');
  EXPECT_NO_THROW(Json::parse(at, limits));
  // One level past it: an explicit, named error, not a stack overflow.
  std::string over(9, '[');
  over += std::string(9, ']');
  try {
    Json::parse(over, limits);
    FAIL() << "expected depth error";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting deeper than the limit"),
              std::string::npos);
  }
  // Mixed object/array nesting counts uniformly (9 containers here).
  EXPECT_THROW(Json::parse("{\"a\":[{\"b\":[{\"c\":[{\"d\":[[1]]}]}]}]}",
                           limits),
               ApiError);
}

TEST(Json, ParseDefaultDepthLimitStopsHostileInput) {
  // 100k open brackets would previously recurse until the stack died.
  std::string hostile(100000, '[');
  EXPECT_THROW(Json::parse(hostile), ApiError);
}

TEST(Json, ParseRejectsInputBeyondMaxBytes) {
  Json::ParseLimits limits;
  limits.max_bytes = 16;
  EXPECT_NO_THROW(Json::parse("{\"k\":\"0123\"}", limits));
  try {
    Json::parse("{\"key\":\"0123456789abcdef\"}", limits);
    FAIL() << "expected size error";
  } catch (const ApiError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exceeds the limit"), std::string::npos);
    EXPECT_NE(what.find("16 bytes"), std::string::npos);
  }
}

TEST(Json, ParseTruncatedDocumentsFailWithOffsets) {
  for (const char* bad : {"{\"k\":", "[1,2", "\"unterminated", "{\"k\" 1}",
                          "tru", "12e", "{}{}"}) {
    EXPECT_THROW(Json::parse(bad), ApiError) << bad;
  }
}

}  // namespace
