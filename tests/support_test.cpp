// Unit tests for the support utilities: rationals, RNG, tables, VCD,
// JSON parse limits, and the metric primitives (LogHistogram edge
// buckets, the labelled MetricsRegistry and its Prometheus exposition).

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "liplib/support/check.hpp"
#include "liplib/support/json.hpp"
#include "liplib/support/metrics.hpp"
#include "liplib/support/rational.hpp"
#include "liplib/support/rng.hpp"
#include "liplib/support/table.hpp"
#include "liplib/support/vcd.hpp"

namespace {

using namespace liplib;

TEST(Rational, NormalizesToLowestTerms) {
  EXPECT_EQ(Rational(4, 8), Rational(1, 2));
  EXPECT_EQ(Rational(-4, 8), Rational(-1, 2));
  EXPECT_EQ(Rational(4, -8), Rational(-1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_EQ(Rational(0, 7).den(), 1);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_THROW(Rational(1, 2) / Rational(0), ApiError);
  EXPECT_THROW(Rational(1, 0), ApiError);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(4, 5), Rational(1));
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, Rendering) {
  EXPECT_EQ(Rational(4, 5).str(), "4/5");
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_NEAR(Rational(1, 3).to_double(), 0.3333, 1e-3);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(5);
  bool seen[7] = {};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, InRangeInclusive) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.in_range(3, 6);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 6u);
    lo |= v == 3;
    hi |= v == 6;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, ChanceRoughlyFair) {
  Rng rng(77);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(1, 4);
  EXPECT_NEAR(hits, 2500, 250);
}

TEST(Table, AlignsColumns) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.add_row({"plain", "1/2"});
  t.add_row({"with,comma", "quote\"inside"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1/2\n"
            "\"with,comma\",\"quote\"\"inside\"\n");
}

TEST(Vcd, WritesWellFormedDump) {
  std::ostringstream os;
  VcdWriter vcd(os, "top");
  const auto v = vcd.add_signal("valid", 1);
  const auto d = vcd.add_signal("data", 8);
  vcd.begin_dump();
  vcd.set_time(0);
  vcd.change(v, 1);
  vcd.change(d, 0x2a);
  vcd.set_time(5);
  vcd.change(v, 0);
  vcd.change(v, 0);  // dedup: no second emission
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8"), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("#5"), std::string::npos);
  EXPECT_NE(out.find("b101010"), std::string::npos);
  // The deduplicated change appears once.
  const auto first = out.find("0!");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("0!", first + 1), std::string::npos);
}

TEST(Vcd, RejectsMisuse) {
  std::ostringstream os;
  VcdWriter vcd(os, "top");
  const auto v = vcd.add_signal("x", 1);
  EXPECT_THROW(vcd.change(v, 1), ApiError);  // before begin_dump
  vcd.begin_dump();
  EXPECT_THROW(vcd.add_signal("late", 1), ApiError);
  vcd.set_time(10);
  EXPECT_THROW(vcd.set_time(5), ApiError);  // time must be monotone
}

TEST(Check, MacrosThrowTypedErrors) {
  EXPECT_THROW(LIPLIB_EXPECT(false, "nope"), ApiError);
  EXPECT_THROW(LIPLIB_ENSURE(false, "bug"), InternalError);
  EXPECT_NO_THROW(LIPLIB_EXPECT(true, ""));
  try {
    LIPLIB_EXPECT(1 == 2, "context message");
    FAIL();
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Json, ParseRejectsNestingBeyondMaxDepth) {
  Json::ParseLimits limits;
  limits.max_depth = 8;
  // Exactly at the limit: fine.
  std::string at(8, '[');
  at += std::string(8, ']');
  EXPECT_NO_THROW(Json::parse(at, limits));
  // One level past it: an explicit, named error, not a stack overflow.
  std::string over(9, '[');
  over += std::string(9, ']');
  try {
    Json::parse(over, limits);
    FAIL() << "expected depth error";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("nesting deeper than the limit"),
              std::string::npos);
  }
  // Mixed object/array nesting counts uniformly (9 containers here).
  EXPECT_THROW(Json::parse("{\"a\":[{\"b\":[{\"c\":[{\"d\":[[1]]}]}]}]}",
                           limits),
               ApiError);
}

TEST(Json, ParseDefaultDepthLimitStopsHostileInput) {
  // 100k open brackets would previously recurse until the stack died.
  std::string hostile(100000, '[');
  EXPECT_THROW(Json::parse(hostile), ApiError);
}

TEST(Json, ParseRejectsInputBeyondMaxBytes) {
  Json::ParseLimits limits;
  limits.max_bytes = 16;
  EXPECT_NO_THROW(Json::parse("{\"k\":\"0123\"}", limits));
  try {
    Json::parse("{\"key\":\"0123456789abcdef\"}", limits);
    FAIL() << "expected size error";
  } catch (const ApiError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exceeds the limit"), std::string::npos);
    EXPECT_NE(what.find("16 bytes"), std::string::npos);
  }
}

TEST(Json, ParseTruncatedDocumentsFailWithOffsets) {
  for (const char* bad : {"{\"k\":", "[1,2", "\"unterminated", "{\"k\" 1}",
                          "tru", "12e", "{}{}"}) {
    EXPECT_THROW(Json::parse(bad), ApiError) << bad;
  }
}

// ---- LogHistogram edge buckets ------------------------------------------

TEST(LogHistogram, TopBucketHoldsTheLargestSamples) {
  // Samples at and above 2^63 land in the saturated top bucket (index
  // 64) whose bounds are [2^63, 2^64-1] — no shift overflow on either
  // boundary computation.
  EXPECT_EQ(metrics::LogHistogram::bucket_of(~0ull), 64u);
  EXPECT_EQ(metrics::LogHistogram::bucket_of(1ull << 63), 64u);
  EXPECT_EQ(metrics::LogHistogram::bucket_lo(64), 1ull << 63);
  EXPECT_EQ(metrics::LogHistogram::bucket_hi(64), ~0ull);
  EXPECT_EQ(metrics::LogHistogram::bucket_hi(63), (1ull << 63) - 1);

  metrics::LogHistogram h;
  h.record(~0ull);
  h.record(1ull << 63);
  EXPECT_EQ(h.bucket(64), 2u);
  EXPECT_EQ(h.min(), 1ull << 63);
  EXPECT_EQ(h.max(), ~0ull);
  // Percentiles clamp to the tracked exact max, never past it.
  EXPECT_EQ(h.percentile(50), ~0ull);
  EXPECT_EQ(h.percentile(100), ~0ull);
}

TEST(LogHistogram, SaturatedTopBucketRoundTripsThroughJson) {
  metrics::LogHistogram h;
  h.record(0);
  h.record(~0ull);
  const std::string bytes = h.to_json().dump();
  // Through real parse: the 2^63 bucket boundary and the 2^64-1 sample
  // must survive text serialization exactly (no double rounding).
  const metrics::LogHistogram back =
      metrics::LogHistogram::from_json(Json::parse(bytes));
  EXPECT_EQ(back.count(), 2u);
  EXPECT_EQ(back.bucket(0), 1u);
  EXPECT_EQ(back.bucket(64), 1u);
  EXPECT_EQ(back.max(), ~0ull);
  EXPECT_EQ(back.to_json().dump(), bytes);
}

TEST(LogHistogram, MergePreservesSaturatedBuckets) {
  metrics::LogHistogram a, b;
  a.record(~0ull);
  a.record(3);
  b.record(1ull << 63);
  b.record(0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bucket(64), 2u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), ~0ull);
  // Merging an empty histogram is the identity.
  const std::string before = a.to_json().dump();
  a.merge(metrics::LogHistogram());
  EXPECT_EQ(a.to_json().dump(), before);
}

// ---- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistry, ExposesDeterministicPrometheusText) {
  metrics::MetricsRegistry reg;
  reg.describe("app_requests_total", metrics::MetricType::kCounter,
               "Requests served.");
  // Label order must not matter: {a,b} and {b,a} are the same child.
  reg.counter_add("app_requests_total", {{"kind", "lint"}, {"ok", "1"}}, 2);
  reg.counter_add("app_requests_total", {{"ok", "1"}, {"kind", "lint"}});
  reg.gauge_set("app_inflight", {}, 3);
  reg.observe("app_latency_us", {{"kind", "lint"}}, 0);
  reg.observe("app_latency_us", {{"kind", "lint"}}, 5);

  const std::string expected =
      "# TYPE app_inflight gauge\n"
      "app_inflight 3\n"
      "# TYPE app_latency_us histogram\n"
      "app_latency_us_bucket{kind=\"lint\",le=\"0\"} 1\n"
      "app_latency_us_bucket{kind=\"lint\",le=\"7\"} 2\n"
      "app_latency_us_bucket{kind=\"lint\",le=\"+Inf\"} 2\n"
      "app_latency_us_sum{kind=\"lint\"} 5\n"
      "app_latency_us_count{kind=\"lint\"} 2\n"
      "# HELP app_requests_total Requests served.\n"
      "# TYPE app_requests_total counter\n"
      "app_requests_total{kind=\"lint\",ok=\"1\"} 3\n";
  EXPECT_EQ(reg.expose_text(), expected);
  EXPECT_EQ(reg.expose_text(), expected);  // scraping mutates nothing
  EXPECT_EQ(reg.counter_value("app_requests_total",
                              {{"ok", "1"}, {"kind", "lint"}}),
            3u);
  EXPECT_EQ(reg.gauge_value("app_inflight", {}), 3);
}

TEST(MetricsRegistry, HistogramCountFiltersByLabelSubset) {
  metrics::MetricsRegistry reg;
  reg.observe("lat", {{"kind", "lint"}, {"cache", "hit"}}, 1);
  reg.observe("lat", {{"kind", "lint"}, {"cache", "miss"}}, 2);
  reg.observe("lat", {{"kind", "screen"}, {"cache", "miss"}}, 3);
  EXPECT_EQ(reg.histogram_count("lat", {}), 3u);
  EXPECT_EQ(reg.histogram_count("lat", {{"kind", "lint"}}), 2u);
  EXPECT_EQ(reg.histogram_count("lat", {{"cache", "miss"}}), 2u);
  EXPECT_EQ(reg.histogram_count("lat", {{"kind", "screen"},
                                        {"cache", "miss"}}),
            1u);
  EXPECT_EQ(reg.histogram_count("absent", {}), 0u);
}

TEST(MetricsRegistry, RejectsTypeConflictsAndEscapesLabels) {
  metrics::MetricsRegistry reg;
  reg.counter_add("thing", {}, 1);
  EXPECT_THROW(reg.gauge_set("thing", {}, 1), ApiError);
  EXPECT_THROW(reg.observe("thing", {}, 1), ApiError);

  reg.gauge_set("weird", {{"path", "a\\b\"c\nd"}}, 9);
  const std::string text = reg.expose_text();
  EXPECT_NE(text.find("weird{path=\"a\\\\b\\\"c\\nd\"} 9"),
            std::string::npos);
}

}  // namespace
