// The distributed campaign contract (liplib/dist): the shard planner
// tiles the job-index space, manifests reject tampering and foreign
// shards, and the deterministic merge is byte-identical to the
// single-process aggregate across the full shard-count × thread-count
// × engine matrix.  The coordinator/worker transport is exercised over
// real loopback sockets, including the straggler path: a worker that
// takes a lease and dies must not lose the campaign — the shard is
// re-dispatched and the merged report still matches the golden bytes.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "liplib/campaign/campaign.hpp"
#include "liplib/campaign/jobs.hpp"
#include "liplib/campaign/report.hpp"
#include "liplib/dist/coordinator.hpp"
#include "liplib/dist/shard.hpp"
#include "liplib/dist/worker.hpp"
#include "liplib/serve/protocol.hpp"
#include "liplib/serve/server.hpp"
#include "liplib/support/check.hpp"
#include "liplib/support/json.hpp"

namespace {

using namespace liplib;
using dist::Partial;
using dist::ShardManifest;

campaign::NamedCampaignSpec fuzz_spec(std::size_t jobs,
                                      xir::EngineMode engine) {
  campaign::NamedCampaignSpec spec;
  spec.mode = "fuzz";
  spec.jobs = jobs;
  spec.engine = engine;
  return spec;
}

constexpr std::uint64_t kSeed = 7;
constexpr std::uint64_t kBudget = 1u << 16;

/// The golden document: the whole campaign in one process.
std::string unsharded_bytes(const campaign::NamedCampaignSpec& spec,
                            unsigned threads) {
  const auto jobs = campaign::make_named_campaign(spec);
  campaign::EngineOptions opts;
  opts.threads = threads;
  opts.base_seed = kSeed;
  opts.cycle_budget = kBudget;
  const auto results = campaign::Engine(opts).run(jobs);
  return campaign::to_json(campaign::aggregate(results)).dump(2);
}

/// One shard's partial, exactly as `lidtool campaign --shard` builds it.
Partial run_shard(const campaign::NamedCampaignSpec& spec, unsigned threads,
                  std::size_t index, std::size_t count) {
  const auto jobs = campaign::make_named_campaign(spec);
  const auto range = dist::shard_range(jobs.size(), index, count);
  const std::vector<campaign::Job> slice(
      jobs.begin() + static_cast<std::ptrdiff_t>(range.lo),
      jobs.begin() + static_cast<std::ptrdiff_t>(range.hi));
  campaign::EngineOptions opts;
  opts.threads = threads;
  opts.base_seed = kSeed;
  opts.cycle_budget = kBudget;
  opts.index_base = range.lo;
  const auto results = campaign::Engine(opts).run(slice);
  Partial p;
  p.manifest = dist::make_manifest(
      dist::named_campaign_to_string(spec), jobs.size(), kSeed, kBudget,
      xir::engine_mode_name(spec.engine), range);
  p.aggregate = campaign::aggregate(results);
  return p;
}

TEST(Dist, ShardPlannerTilesTheIndexSpace) {
  for (std::size_t total : {0u, 1u, 7u, 300u}) {
    for (std::size_t count : {1u, 2u, 3u, 8u}) {
      std::size_t next = 0;
      for (std::size_t i = 0; i < count; ++i) {
        const auto r = dist::shard_range(total, i, count);
        EXPECT_EQ(r.lo, next);
        EXPECT_LE(r.hi - r.lo, total / count + 1);
        next = r.hi;
      }
      EXPECT_EQ(next, total);
    }
  }
  EXPECT_THROW(dist::shard_range(10, 0, 0), ApiError);
  EXPECT_THROW(dist::shard_range(10, 4, 4), ApiError);
}

TEST(Dist, ShardTokenParsesAndRejects) {
  EXPECT_EQ(dist::parse_shard_token("2/4"),
            (std::pair<std::size_t, std::size_t>{2, 4}));
  EXPECT_EQ(dist::parse_shard_token("0/1"),
            (std::pair<std::size_t, std::size_t>{0, 1}));
  for (const char* bad : {"", "3", "/4", "2/", "4/4", "5/4", "a/4", "2/4x",
                          "2/0", "-1/4"}) {
    EXPECT_THROW(dist::parse_shard_token(bad), ApiError) << bad;
  }
}

TEST(Dist, NamedCampaignSpecStringRoundTrips) {
  campaign::NamedCampaignSpec spec;
  spec.mode = "fuzz";
  spec.jobs = 123;
  spec.policy = lip::StopPolicy::kCarloniStrict;
  spec.shape = campaign::FuzzSpec::Shape::kReconvergent;
  spec.engine = xir::EngineMode::kSliced;
  const std::string text = dist::named_campaign_to_string(spec);
  EXPECT_EQ(text,
            "mode=fuzz;jobs=123;policy=strict;shape=reconvergent;"
            "engine=sliced");
  const auto back = dist::named_campaign_from_string(text);
  EXPECT_EQ(dist::named_campaign_to_string(back), text);
  EXPECT_THROW(dist::named_campaign_from_string("mode=fuzz"), ApiError);
  EXPECT_THROW(dist::named_campaign_from_string("jobs=3"), ApiError);
  EXPECT_THROW(dist::named_campaign_from_string("mode=fuzz;jobs=x"),
               ApiError);
  EXPECT_THROW(
      dist::named_campaign_from_string("mode=fuzz;jobs=3;color=red"),
      ApiError);
}

TEST(Dist, ManifestRoundTripsAndRejectsTampering) {
  const auto spec = fuzz_spec(30, xir::EngineMode::kInterp);
  const auto m = dist::make_manifest(dist::named_campaign_to_string(spec),
                                     30, kSeed, kBudget, "interp",
                                     dist::shard_range(30, 1, 3));
  const Json doc = dist::manifest_to_json(m);
  const auto back = dist::manifest_from_json(doc);
  EXPECT_EQ(dist::manifest_to_json(back).dump(), doc.dump());

  // A tampered spec string no longer matches the travelling hash.
  ShardManifest forged = m;
  forged.campaign =
      "mode=fuzz;jobs=31;policy=variant;shape=composite;engine=interp";
  EXPECT_THROW(dist::manifest_from_json(dist::manifest_to_json(forged)),
               ApiError);
  // A range that is not the planned slice of shard 1/3 is rejected.
  ShardManifest shifted = m;
  shifted.shard.lo = 9;
  EXPECT_THROW(dist::manifest_from_json(dist::manifest_to_json(shifted)),
               ApiError);
}

TEST(Dist, PartialDocumentRoundTrips) {
  const auto spec = fuzz_spec(24, xir::EngineMode::kInterp);
  const Partial p = run_shard(spec, 2, 1, 4);
  const Json doc = dist::partial_to_json(p.manifest, p.aggregate);
  const Partial back = dist::partial_from_json(doc);
  EXPECT_EQ(dist::partial_to_json(back.manifest, back.aggregate).dump(2),
            doc.dump(2));
}

// Satellite: the shard-determinism matrix.  1/2/4/8 shards × 1/2/8
// engine threads × scalar/sliced evaluators, all merging to the exact
// bytes of the unsharded aggregate over the 300-topology fuzz suite.
TEST(Dist, MergeMatrixIsByteIdenticalToUnsharded) {
  for (const auto engine :
       {xir::EngineMode::kInterp, xir::EngineMode::kSliced}) {
    const auto spec = fuzz_spec(300, engine);
    const std::string golden = unsharded_bytes(spec, /*threads=*/2);
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        std::vector<Partial> parts;
        for (std::size_t i = 0; i < shards; ++i) {
          parts.push_back(run_shard(spec, threads, i, shards));
        }
        const auto merged = dist::merge_partials(std::move(parts));
        EXPECT_EQ(campaign::to_json(merged).dump(2), golden)
            << "shards=" << shards << " threads=" << threads
            << " engine=" << xir::engine_mode_name(engine);
      }
    }
  }
}

TEST(Dist, MergeRejectsForeignAndIncompleteShards) {
  const auto spec = fuzz_spec(20, xir::EngineMode::kInterp);
  const Partial p0 = run_shard(spec, 1, 0, 2);
  const Partial p1 = run_shard(spec, 1, 1, 2);

  EXPECT_THROW(dist::merge_partials({}), ApiError);
  // Missing shard: gap at the tail.
  EXPECT_THROW(dist::merge_partials({p0}), ApiError);
  // Duplicate shard: overlap.
  EXPECT_THROW(dist::merge_partials({p0, p0, p1}), ApiError);
  // Foreign campaign: same layout, different base seed.
  Partial foreign = p1;
  foreign.manifest.base_seed = kSeed + 1;
  EXPECT_THROW(dist::merge_partials({p0, foreign}), ApiError);
  // Different job count entirely.
  const Partial other = run_shard(fuzz_spec(22, xir::EngineMode::kInterp),
                                  1, 1, 2);
  EXPECT_THROW(dist::merge_partials({p0, other}), ApiError);
  // The two real halves do merge.
  const auto merged = dist::merge_partials({p0, p1});
  EXPECT_EQ(merged.total, 20u);
}

/// One liplib.dist/1 round trip on a fresh loopback connection.
Json dist_round_trip(std::uint16_t port, const Json& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  serve::write_frame(fd, request.dump());
  std::string payload;
  EXPECT_TRUE(serve::read_frame(fd, payload));
  ::close(fd);
  return Json::parse(payload);
}

TEST(Dist, CoordinatorSurvivesAStragglerAndMergesGoldenBytes) {
  const auto spec = fuzz_spec(60, xir::EngineMode::kInterp);
  const std::string golden = unsharded_bytes(spec, /*threads=*/2);

  dist::CoordinatorOptions copts;
  copts.spec = spec;
  copts.base_seed = kSeed;
  copts.cycle_budget = kBudget;
  copts.shards = 4;
  copts.lease_ms = 250;  // fast re-dispatch of the dead worker's shard
  copts.wait_ms = 20;
  dist::Coordinator coord(copts);
  coord.start();
  ASSERT_NE(coord.port(), 0);

  // A worker that takes one lease and dies holding it.
  dist::WorkerOptions dead;
  dead.port = coord.port();
  dead.threads = 1;
  dead.die_after_lease = 1;
  const auto dead_stats = dist::run_worker(dead);
  EXPECT_EQ(dead_stats.leases, 1u);
  EXPECT_EQ(dead_stats.submitted, 0u);

  // Two honest workers finish the campaign, including the re-dispatch.
  dist::WorkerStats w1, w2;
  std::thread t1([&] {
    dist::WorkerOptions w;
    w.port = coord.port();
    w.threads = 2;
    w1 = dist::run_worker(w);
  });
  std::thread t2([&] {
    dist::WorkerOptions w;
    w.port = coord.port();
    w.threads = 2;
    w2 = dist::run_worker(w);
  });
  const auto merged = coord.wait();
  t1.join();
  t2.join();

  EXPECT_EQ(campaign::to_json(merged).dump(2), golden);
  const auto stats = coord.stats();
  EXPECT_EQ(stats.shards_done, 4u);
  EXPECT_GE(stats.leases_issued, 5u);  // 4 shards + the re-dispatch
  EXPECT_GE(stats.redispatches, 1u);
  EXPECT_GT(stats.bytes_merged, 0u);
  // Every shard was accepted from exactly one honest worker.
  EXPECT_EQ(w1.submitted + w2.submitted, 4u);
}

TEST(Dist, CoordinatorDedupsDuplicateResults) {
  const auto spec = fuzz_spec(8, xir::EngineMode::kInterp);
  dist::CoordinatorOptions copts;
  copts.spec = spec;
  copts.base_seed = kSeed;
  copts.cycle_budget = kBudget;
  copts.shards = 1;
  dist::Coordinator coord(copts);
  coord.start();

  const Json lease = dist_round_trip(
      coord.port(),
      Json::object().set("rpc", dist::kDistRpcSchema).set("msg", "lease"));
  ASSERT_EQ(lease.find("msg")->as_string(), "lease");
  const auto manifest = dist::manifest_from_json(*lease.find("manifest"));
  EXPECT_EQ(manifest.shard.lo, 0u);
  EXPECT_EQ(manifest.shard.hi, 8u);

  const Partial p = run_shard(spec, 1, 0, 1);
  const Json submit = Json::object()
                          .set("rpc", dist::kDistRpcSchema)
                          .set("msg", "result")
                          .set("partial",
                               dist::partial_to_json(p.manifest,
                                                     p.aggregate));
  const Json first = dist_round_trip(coord.port(), submit);
  EXPECT_TRUE(first.find("accepted")->as_bool());
  // The straggler's identical copy: acknowledged but dropped.
  const Json second = dist_round_trip(coord.port(), submit);
  EXPECT_FALSE(second.find("accepted")->as_bool());
  // A partial from a different campaign is an error, not a merge.
  Partial foreign = run_shard(fuzz_spec(9, xir::EngineMode::kInterp), 1, 0, 1);
  const Json rejected = dist_round_trip(
      coord.port(), Json::object()
                        .set("rpc", dist::kDistRpcSchema)
                        .set("msg", "result")
                        .set("partial",
                             dist::partial_to_json(foreign.manifest,
                                                   foreign.aggregate)));
  EXPECT_EQ(rejected.find("msg")->as_string(), "error");

  const auto stats = coord.stats();
  EXPECT_EQ(stats.shards_done, 1u);
  EXPECT_EQ(stats.duplicates, 1u);
  // Every shard merged: further lease requests answer "done".
  const Json done = dist_round_trip(
      coord.port(),
      Json::object().set("rpc", dist::kDistRpcSchema).set("msg", "lease"));
  EXPECT_EQ(done.find("msg")->as_string(), "done");
  coord.wait();
}

TEST(Dist, ServeRelaysDistStatus) {
  dist::CoordinatorOptions copts;
  copts.spec = fuzz_spec(12, xir::EngineMode::kInterp);
  copts.shards = 3;
  dist::Coordinator coord(copts);
  coord.start();

  serve::ServeContext ctx;
  const std::string payload = Json::object()
                                  .set("rpc", serve::kRpcSchema)
                                  .set("kind", "dist-status")
                                  .set("port", coord.port())
                                  .dump();
  const Json response = Json::parse(serve::handle_payload(payload, ctx));
  ASSERT_TRUE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("kind")->as_string(), "dist-status");
  const Json* result = response.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("schema")->as_string(),
            "liplib.serve.dist_status/1");
  const Json* status = result->find("coordinator");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->find("schema")->as_string(), "liplib.dist.status/1");
  EXPECT_EQ(status->find("shards")->find("total")->as_uint(), 3u);
  EXPECT_EQ(status->find("shards")->find("pending")->as_uint(), 3u);

  // A dead coordinator port answers with an error envelope, not a hang.
  const std::string refused =
      serve::handle_payload(Json::object()
                                .set("rpc", serve::kRpcSchema)
                                .set("kind", "dist-status")
                                .set("port", 1)
                                .dump(),
                            ctx);
  EXPECT_FALSE(Json::parse(refused).find("ok")->as_bool());
  // A missing port is a validation error.
  const std::string invalid =
      serve::handle_payload(Json::object()
                                .set("rpc", serve::kRpcSchema)
                                .set("kind", "dist-status")
                                .dump(),
                            ctx);
  EXPECT_FALSE(Json::parse(invalid).find("ok")->as_bool());
  // Both well-formed relays were counted under the new kind.
  EXPECT_EQ(ctx.requests_by_kind[static_cast<int>(
                                     serve::RequestKind::kDistStatus)]
                .value(),
            2u);
}

TEST(Dist, WorkerWithoutACoordinatorFailsLoudly) {
  dist::WorkerOptions w;
  w.port = 1;  // nothing listens here
  EXPECT_THROW(dist::run_worker(w), ApiError);
}

}  // namespace
