// liplib::serve — the multi-tenant daemon and its content-addressed
// result cache.
//
// The acceptance spine: the cache answers repeated requests
// byte-identically to a fresh computation (lint and screen), survives
// 8 client threads hammering the same hot key (TSan-clean hit/miss
// races), expires on TTL and evicts in LRU order; the protocol layer
// rejects truncated and oversized frames with explicit errors; and the
// daemon proper serves 8 concurrent loopback clients, answers a
// deadlocked design with a DEADLOCK verdict + post-mortem instead of
// wedging a worker, surfaces a non-zero hit rate via `status`, and
// drains cleanly on `shutdown`.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "liplib/graph/netlist_io.hpp"
#include "liplib/serve/cache.hpp"
#include "liplib/serve/protocol.hpp"
#include "liplib/serve/server.hpp"
#include "liplib/support/check.hpp"
#include "liplib/support/json.hpp"

namespace {

using namespace liplib;
using namespace liplib::serve;

const char* kFig1 = R"(source src
process A 1 2
process B 1 1
process C 2 1
sink out
channel src.0 -> A.0
channel A.0 -> B.0 : F
channel B.0 -> C.0 : F
channel A.1 -> C.1 : F
channel C.0 -> out.0
)";

// The paper's latent stop latch: a two-shell ring of half stations
// deadlocks under worst-case occupancy.
const char* kHalfRing = R"(process P 1 1
process Q 1 1
channel P.0 -> Q.0 : H
channel Q.0 -> P.0 : H
)";

std::string request_json(const char* kind, const char* netlist,
                         const char* extra = "") {
  Json r = Json::object().set("rpc", kRpcSchema).set("kind", kind);
  if (netlist) r.set("netlist", netlist);
  std::string s = r.dump();
  if (*extra) {
    s.pop_back();
    s += ",";
    s += extra;
    s += "}";
  }
  return s;
}

// ---- content hashing ----------------------------------------------------

TEST(Cache, TopologyHashIsContentAddressed) {
  const auto a = graph::parse_netlist_string(kFig1);
  // Same design, different formatting and comments.
  const std::string reformatted = std::string("# a comment\n") + kFig1;
  const auto b = graph::parse_netlist_string(reformatted);
  EXPECT_EQ(topology_hash(a), topology_hash(b));

  // A changed station kind is a different content address.
  auto c = graph::parse_netlist_string(
      std::string(kFig1).replace(std::string(kFig1).find(": F"), 3, ": H"));
  EXPECT_NE(topology_hash(a), topology_hash(c));
}

// ---- TTL ----------------------------------------------------------------

TEST(Cache, TtlExpiryWithInjectedClock) {
  std::uint64_t now = 1000;
  CacheOptions opts;
  opts.ttl_ms = 50;
  ResultCache cache(opts, [&now] { return now; });

  cache.insert("k", "v");
  EXPECT_TRUE(cache.lookup("k").has_value());

  now += 49;  // one tick before the deadline: still alive
  EXPECT_TRUE(cache.lookup("k").has_value());

  now += 1;  // TTL elapsed: explicit expiration, counted as a miss too
  EXPECT_FALSE(cache.lookup("k").has_value());
  const auto s = cache.stats();
  EXPECT_EQ(s.expirations, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
}

TEST(Cache, TtlZeroNeverExpires) {
  std::uint64_t now = 0;
  CacheOptions opts;
  opts.ttl_ms = 0;
  ResultCache cache(opts, [&now] { return now; });
  cache.insert("k", "v");
  now = ~0ull;
  EXPECT_TRUE(cache.lookup("k").has_value());
}

// ---- LRU ----------------------------------------------------------------

TEST(Cache, LruEvictsColdestFirstAndLookupRefreshes) {
  CacheOptions opts;
  opts.ttl_ms = 0;
  // Room for three two-byte entries (key 1 + value 1), not four.
  opts.capacity_bytes = 6;
  ResultCache cache(opts);

  cache.insert("a", "1");
  cache.insert("b", "2");
  cache.insert("c", "3");
  // Touch "a": now "b" is the coldest.
  EXPECT_TRUE(cache.lookup("a").has_value());

  cache.insert("d", "4");  // evicts exactly "b"
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_TRUE(cache.lookup("d").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Overwriting a key replaces the entry instead of duplicating it.
  cache.insert("d", "5");
  EXPECT_EQ(cache.lookup("d").value(), "5");
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(Cache, OversizedEntrySurvivesUntilNextInsert) {
  CacheOptions opts;
  opts.ttl_ms = 0;
  opts.capacity_bytes = 4;
  ResultCache cache(opts);
  cache.insert("big", std::string(100, 'x'));  // alone beyond the budget
  EXPECT_TRUE(cache.lookup("big").has_value());
  cache.insert("k", "v");
  EXPECT_FALSE(cache.lookup("big").has_value());
}

// ---- concurrent hit/miss races ------------------------------------------

TEST(Cache, ConcurrentHitMissRacesUnderEightThreads) {
  CacheOptions opts;
  opts.ttl_ms = 0;
  opts.capacity_bytes = 1 << 10;  // small: eviction races included
  ResultCache cache(opts);

  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &served, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 16);
        auto hit = cache.lookup(key);
        if (!hit) {
          cache.insert(key, "value-of-" + key);
        } else {
          EXPECT_EQ(*hit, "value-of-" + key);
          served.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, served.load());
  EXPECT_EQ(s.hits + s.misses, 8u * 500u);
  EXPECT_GT(s.hits, 0u);
  EXPECT_LE(s.bytes, opts.capacity_bytes);
}

// ---- framing ------------------------------------------------------------

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Protocol, FrameRoundTrip) {
  SocketPair sp;
  write_frame(sp.a, "hello");
  write_frame(sp.a, "");
  std::string got;
  ASSERT_TRUE(read_frame(sp.b, got));
  EXPECT_EQ(got, "hello");
  ASSERT_TRUE(read_frame(sp.b, got));
  EXPECT_EQ(got, "");
  ::close(sp.a);
  sp.a = -1;
  EXPECT_FALSE(read_frame(sp.b, got));  // clean EOF on the boundary
}

TEST(Protocol, TruncatedFrameIsAnExplicitError) {
  {
    SocketPair sp;
    const std::string frame = encode_frame("payload");
    // Cut inside the payload.
    ASSERT_GT(::send(sp.a, frame.data(), frame.size() - 3, MSG_NOSIGNAL), 0);
    ::close(sp.a);
    sp.a = -1;
    std::string got;
    try {
      read_frame(sp.b, got);
      FAIL() << "expected truncation error";
    } catch (const ApiError& e) {
      EXPECT_NE(std::string(e.what()).find("truncated frame"),
                std::string::npos);
    }
  }
  {
    SocketPair sp;
    // Cut inside the length prefix.
    ASSERT_GT(::send(sp.a, "\x00\x00", 2, MSG_NOSIGNAL), 0);
    ::close(sp.a);
    sp.a = -1;
    std::string got;
    EXPECT_THROW(read_frame(sp.b, got), ApiError);
  }
}

TEST(Protocol, OversizedFrameIsRejectedBeforeAllocation) {
  SocketPair sp;
  // Declare a 1 GiB payload; the limit must trip on the header alone.
  const char hdr[4] = {0x40, 0x00, 0x00, 0x00};
  ASSERT_EQ(::send(sp.a, hdr, 4, MSG_NOSIGNAL), 4);
  FrameLimits limits;
  limits.max_frame_bytes = 1 << 20;
  std::string got;
  try {
    read_frame(sp.b, got, limits);
    FAIL() << "expected frame-length error";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the limit"),
              std::string::npos);
  }
}

// ---- request validation -------------------------------------------------

TEST(Protocol, RequestValidation) {
  EXPECT_THROW(parse_request(Json::parse("[1,2]")), ApiError);
  EXPECT_THROW(parse_request(Json::parse("{\"kind\":\"lint\"}")),
               ApiError);  // missing rpc tag
  EXPECT_THROW(
      parse_request(Json::parse(request_json("frobnicate", nullptr))),
      ApiError);
  EXPECT_THROW(parse_request(Json::parse(request_json("lint", nullptr))),
               ApiError);  // netlist required
  EXPECT_THROW(parse_request(Json::parse(request_json(
                   "campaign", nullptr, "\"mode\":\"fuzz\",\"jobs\":0"))),
               ApiError);  // jobs out of range
  EXPECT_THROW(parse_request(Json::parse(request_json(
                   "screen", "x", "\"policy\":\"bogus\""))),
               ApiError);

  const auto req = parse_request(Json::parse(request_json(
      "screen", kHalfRing, "\"policy\":\"strict\",\"budget\":4096")));
  EXPECT_EQ(req.kind, RequestKind::kScreen);
  EXPECT_EQ(req.policy, "strict");
  EXPECT_EQ(req.budget, 4096u);
}

// ---- dispatch: cached vs fresh byte identity ----------------------------

/// Extracts the raw bytes of the "result" member and the "cached" flag
/// from a response payload.
void split_response(const std::string& payload, std::string* result,
                    bool* cached, bool* ok) {
  const Json doc = Json::parse(payload);
  ASSERT_TRUE(doc.find("ok") != nullptr) << payload;
  *ok = doc.find("ok")->as_bool();
  if (const Json* c = doc.find("cached")) *cached = c->as_bool();
  if (const Json* r = doc.find("result")) *result = r->dump();
}

TEST(Handlers, LintCachedResponseIsByteIdenticalToFresh) {
  ServeContext ctx;
  const std::string req = request_json("lint", kFig1);
  const std::string first = handle_payload(req, ctx);
  const std::string second = handle_payload(req, ctx);

  std::string r1, r2;
  bool c1 = false, c2 = false, ok1 = false, ok2 = false;
  split_response(first, &r1, &c1, &ok1);
  split_response(second, &r2, &c2, &ok2);
  ASSERT_TRUE(ok1 && ok2);
  EXPECT_FALSE(c1);
  EXPECT_TRUE(c2);
  EXPECT_EQ(r1, r2);  // byte-identical result documents
  EXPECT_EQ(ctx.cache.stats().hits, 1u);

  // Same design, different text formatting: still one cache entry.
  const std::string reformatted =
      request_json("lint", (std::string("# comment\n\n") + kFig1).c_str());
  std::string r3;
  bool c3 = false, ok3 = false;
  split_response(handle_payload(reformatted, ctx), &r3, &c3, &ok3);
  EXPECT_TRUE(c3);
  EXPECT_EQ(r1, r3);
}

TEST(Handlers, ScreenCachedResponseIsByteIdenticalToFresh) {
  ServeContext ctx;
  const std::string req = request_json("screen", kHalfRing);
  std::string r1, r2;
  bool c1 = false, c2 = false, ok1 = false, ok2 = false;
  split_response(handle_payload(req, ctx), &r1, &c1, &ok1);
  split_response(handle_payload(req, ctx), &r2, &c2, &ok2);
  ASSERT_TRUE(ok1 && ok2);
  EXPECT_FALSE(c1);
  EXPECT_TRUE(c2);
  EXPECT_EQ(r1, r2);

  // The deadlock verdict rides the cached bytes: both carry the
  // post-mortem bundle of the worst-case stop latch.
  const Json result = Json::parse(r1);
  EXPECT_EQ(result.find("verdict")->as_string(), "deadlock");
  const Json* worst = result.find("worst_case");
  ASSERT_NE(worst, nullptr);
  EXPECT_TRUE(worst->find("deadlock")->as_bool());
  EXPECT_NE(worst->find("post_mortem"), nullptr);
  // From reset the latch is unreachable (the paper's observation).
  EXPECT_FALSE(result.find("from_reset")->find("deadlock")->as_bool());
  EXPECT_EQ(ctx.status_json()
                .find("requests")->find("deadlock_verdicts")->as_uint(),
            1u);
}

TEST(Handlers, ProveRequestsAreProvedCachedAndKeyedByKnobs) {
  ServeContext ctx;

  // Fig. 1 from reset: proved, and the second ask is a byte-identical
  // cache hit.
  const std::string req = request_json("prove", kFig1);
  std::string r1, r2;
  bool c1 = false, c2 = false, ok1 = false, ok2 = false;
  split_response(handle_payload(req, ctx), &r1, &c1, &ok1);
  split_response(handle_payload(req, ctx), &r2, &c2, &ok2);
  ASSERT_TRUE(ok1 && ok2) << r1;
  EXPECT_FALSE(c1);
  EXPECT_TRUE(c2);
  EXPECT_EQ(r1, r2);
  const Json proved = Json::parse(r1);
  EXPECT_EQ(proved.find("schema")->as_string(), "liplib.serve.prove/1");
  EXPECT_EQ(proved.find("verdict")->as_string(), "proved");
  EXPECT_EQ(proved.find("exit_code")->as_uint(), 0u);

  // The half-station ring under worst-case occupancy: counterexample,
  // counted as a deadlock verdict, with the trace in the result.
  std::string r3;
  bool c3 = false, ok3 = false;
  split_response(handle_payload(request_json("prove", kHalfRing,
                                             "\"worst_case\":true"),
                                ctx),
                 &r3, &c3, &ok3);
  ASSERT_TRUE(ok3) << r3;
  const Json dead = Json::parse(r3);
  EXPECT_EQ(dead.find("verdict")->as_string(), "counterexample");
  EXPECT_EQ(dead.find("exit_code")->as_uint(), 1u);
  ASSERT_NE(dead.find("prove"), nullptr);
  EXPECT_NE(dead.find("prove")->find("counterexample"), nullptr);
  EXPECT_EQ(ctx.status_json()
                .find("requests")->find("deadlock_verdicts")->as_uint(),
            1u);

  // Every knob keys the cache separately.
  handle_payload(request_json("prove", kFig1, "\"method\":\"induction\""),
                 ctx);
  handle_payload(request_json("prove", kFig1, "\"worst_case\":true"), ctx);
  handle_payload(request_json("prove", kFig1, "\"engine\":\"sliced\""), ctx);
  EXPECT_EQ(ctx.cache.stats().entries, 5u);

  // Validation: bogus method is a request error, missing netlist too.
  EXPECT_THROW(parse_request(Json::parse(request_json(
                   "prove", "x", "\"method\":\"bogus\""))),
               ApiError);
  EXPECT_THROW(parse_request(Json::parse(request_json("prove", nullptr))),
               ApiError);
  const auto parsed = parse_request(Json::parse(request_json(
      "prove", kHalfRing,
      "\"method\":\"bmc\",\"depth\":7,\"worst_case\":true")));
  EXPECT_EQ(parsed.kind, RequestKind::kProve);
  EXPECT_EQ(parsed.method, "bmc");
  EXPECT_EQ(parsed.depth, 7u);
  EXPECT_TRUE(parsed.worst_case);
}

TEST(Handlers, ProveCampaignModeRunsTheCrossCheck) {
  ServeContext ctx;
  std::string r;
  bool cached = false, ok = false;
  split_response(handle_payload(request_json("campaign", nullptr,
                                             "\"mode\":\"prove\",\"jobs\":8,"
                                             "\"seed\":7"),
                                ctx),
                 &r, &cached, &ok);
  ASSERT_TRUE(ok) << r;
  const Json result = Json::parse(r);
  EXPECT_EQ(result.find("mode")->as_string(), "prove");
  EXPECT_EQ(result.find("jobs")->as_uint(), 8u);
  ASSERT_NE(result.find("aggregate"), nullptr);
  // Prover/lint/screen disagreement would surface as a mismatch outcome.
  const Json* agg = result.find("aggregate");
  if (const Json* by = agg->find("outcomes")) {
    if (const Json* mm = by->find("mismatch")) {
      EXPECT_EQ(mm->as_uint(), 0u);
    }
  }
}

TEST(Handlers, DistinctPoliciesAndBudgetsAreDistinctCacheEntries) {
  ServeContext ctx;
  handle_payload(request_json("screen", kFig1), ctx);
  handle_payload(
      request_json("screen", kFig1, "\"policy\":\"strict\""), ctx);
  handle_payload(request_json("screen", kFig1, "\"budget\":8192"), ctx);
  const auto s = ctx.cache.stats();
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.hits, 0u);
}

TEST(Handlers, MalformedPayloadsBecomeErrorEnvelopes) {
  ServeContext ctx;
  for (const char* bad :
       {"not json at all", "{\"rpc\":\"bogus/9\",\"kind\":\"status\"}",
        "{\"rpc\":\"liplib.rpc/1\",\"kind\":\"lint\",\"netlist\":\"not a "
        "netlist\"}"}) {
    const Json doc = Json::parse(handle_payload(bad, ctx));
    EXPECT_FALSE(doc.find("ok")->as_bool());
    EXPECT_FALSE(doc.find("error")->as_string().empty());
  }
  // The first two are protocol errors, the last a request error.
  const Json status = ctx.status_json();
  EXPECT_EQ(status.find("requests")->find("protocol_errors")->as_uint(), 2u);
  EXPECT_EQ(status.find("requests")->find("request_errors")->as_uint(), 1u);
  // Nothing leaks into the inflight gauge.
  EXPECT_EQ(status.find("inflight")->as_int(), 0);
}

// ---- the daemon over loopback -------------------------------------------

/// Minimal scripted client: one connection, n sequential requests.
std::vector<std::string> roundtrip(std::uint16_t port,
                                   const std::vector<std::string>& requests) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::vector<std::string> responses;
  for (const auto& r : requests) {
    write_frame(fd, r);
    std::string payload;
    if (!read_frame(fd, payload)) break;
    responses.push_back(std::move(payload));
  }
  ::close(fd);
  return responses;
}

TEST(Server, EightConcurrentClientsGetByteIdenticalAnswersAndCacheHits) {
  ServerOptions opts;
  opts.port = 0;  // ephemeral
  Server server(opts);
  server.start();
  ASSERT_GT(server.port(), 0);

  // 8 clients x 8 requests over the same two designs: after the first
  // computation of each key every answer must come from the cache,
  // byte-identical (modulo the envelope's cached flag).
  std::vector<std::thread> clients;
  std::vector<std::vector<std::string>> results(8);
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([port = server.port(), t, &results] {
      std::vector<std::string> reqs;
      for (int i = 0; i < 8; ++i) {
        reqs.push_back(request_json(i % 2 ? "screen" : "lint",
                                    i % 2 ? kHalfRing : kFig1));
      }
      const auto responses = roundtrip(port, reqs);
      for (const auto& p : responses) {
        const Json doc = Json::parse(p);
        ASSERT_TRUE(doc.find("ok")->as_bool()) << p;
        results[static_cast<std::size_t>(t)].push_back(
            doc.find("result")->dump());
      }
    });
  }
  for (auto& c : clients) c.join();

  // Every client saw both requests answered; all lint results agree and
  // all screen results agree, bytewise, across clients.
  const std::string lint_ref = results[0][0];
  const std::string screen_ref = results[0][1];
  for (const auto& per_client : results) {
    ASSERT_EQ(per_client.size(), 8u);
    for (std::size_t i = 0; i < per_client.size(); ++i) {
      EXPECT_EQ(per_client[i], i % 2 ? screen_ref : lint_ref);
    }
  }
  EXPECT_EQ(Json::parse(screen_ref).find("verdict")->as_string(), "deadlock");

  // 64 requests over 2 distinct keys.  The cache does not serialize
  // concurrent first computations of a key (a deliberate trade: a
  // stampede costs duplicate work, a per-key lock would stall every
  // tenant behind the slowest), so each of the 8 clients may miss once
  // per key; everything else must hit.
  const auto stats = server.context().cache.stats();
  EXPECT_GE(stats.hits, 64u - 2u * 8u);
  EXPECT_EQ(stats.entries, 2u);

  // status surfaces the measured hit rate; shutdown drains cleanly.
  const auto tail = roundtrip(
      server.port(), {request_json("status", nullptr),
                      request_json("shutdown", nullptr)});
  ASSERT_EQ(tail.size(), 2u);
  const Json status = Json::parse(tail[0]);
  EXPECT_GE(status.find("result")->find("cache")->find("hits")->as_uint(),
            64u - 2u * 8u);
  EXPECT_TRUE(
      Json::parse(tail[1]).find("result")->find("draining")->as_bool());
  server.wait();  // returns only after a full drain
}

TEST(Server, ProtocolViolationGetsAnErrorFrameAndTheConnectionDropped) {
  ServerOptions opts;
  opts.port = 0;
  opts.limits.max_frame_bytes = 1 << 10;
  Server server(opts);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Declared length beyond the server's limit.
  const char hdr[4] = {0x01, 0x00, 0x00, 0x00};
  ASSERT_EQ(::send(fd, hdr, 4, MSG_NOSIGNAL), 4);
  std::string payload;
  ASSERT_TRUE(read_frame(fd, payload));
  const Json doc = Json::parse(payload);
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_NE(doc.find("error")->as_string().find("exceeds the limit"),
            std::string::npos);
  EXPECT_FALSE(read_frame(fd, payload));  // server hung up
  ::close(fd);

  server.shutdown();
  server.wait();
}

}  // namespace
