// Unit tests of the pearl library: functional behaviour, initial outputs,
// and the clone_reset determinism contract the reference executor needs.

#include <gtest/gtest.h>

#include "liplib/pearls/pearls.hpp"

namespace {

using namespace liplib;

std::uint64_t run1(lip::Pearl& p, std::uint64_t in) {
  std::uint64_t out = 0;
  p.step(std::span<const std::uint64_t>(&in, 1),
         std::span<std::uint64_t>(&out, 1));
  return out;
}

TEST(Pearls, Identity) {
  auto p = pearls::make_identity(9);
  EXPECT_EQ(p->num_inputs(), 1u);
  EXPECT_EQ(p->num_outputs(), 1u);
  EXPECT_EQ(p->initial_output(0), 9u);
  EXPECT_EQ(run1(*p, 123), 123u);
}

TEST(Pearls, AddConst) {
  auto p = pearls::make_add_const(5);
  EXPECT_EQ(run1(*p, 10), 15u);
}

TEST(Pearls, AdderAndMultiplierAndMax) {
  const std::uint64_t in[2] = {6, 7};
  std::uint64_t out = 0;
  pearls::make_adder()->step(in, std::span<std::uint64_t>(&out, 1));
  EXPECT_EQ(out, 13u);
  pearls::make_multiplier()->step(in, std::span<std::uint64_t>(&out, 1));
  EXPECT_EQ(out, 42u);
  pearls::make_max()->step(in, std::span<std::uint64_t>(&out, 1));
  EXPECT_EQ(out, 7u);
}

TEST(Pearls, Fork2Broadcasts) {
  auto p = pearls::make_fork2(3);
  EXPECT_EQ(p->initial_output(0), 3u);
  EXPECT_EQ(p->initial_output(1), 3u);
  const std::uint64_t in = 11;
  std::uint64_t out[2] = {};
  p->step(std::span<const std::uint64_t>(&in, 1), out);
  EXPECT_EQ(out[0], 11u);
  EXPECT_EQ(out[1], 11u);
}

TEST(Pearls, AccumulatorKeepsRunningSum) {
  auto p = pearls::make_accumulator();
  EXPECT_EQ(run1(*p, 5), 5u);
  EXPECT_EQ(run1(*p, 7), 12u);
  EXPECT_EQ(run1(*p, 1), 13u);
  // clone_reset starts from zero again.
  auto q = p->clone_reset();
  EXPECT_EQ(run1(*q, 5), 5u);
}

TEST(Pearls, DelayLine) {
  auto p = pearls::make_delay(2);
  EXPECT_EQ(run1(*p, 10), 0u);
  EXPECT_EQ(run1(*p, 20), 0u);
  EXPECT_EQ(run1(*p, 30), 10u);
  EXPECT_EQ(run1(*p, 40), 20u);
  auto zero = pearls::make_delay(0);
  EXPECT_EQ(run1(*zero, 5), 5u);  // degenerate: passthrough
}

TEST(Pearls, FirFilter) {
  auto p = pearls::make_fir({1, 2, 3});
  EXPECT_EQ(run1(*p, 1), 1u);           // 1*1
  EXPECT_EQ(run1(*p, 1), 3u);           // 1*1 + 2*1
  EXPECT_EQ(run1(*p, 1), 6u);           // 1 + 2 + 3
  EXPECT_EQ(run1(*p, 0), 5u);           // 0 + 2*1 + 3*1
  EXPECT_THROW(pearls::make_fir({}), ApiError);
}

TEST(Pearls, LeakyIntegrator) {
  auto p = pearls::make_leaky_integrator(1, 2);
  EXPECT_EQ(run1(*p, 8), 8u);    // 0/2 + 8
  EXPECT_EQ(run1(*p, 0), 4u);    // 8/2
  EXPECT_EQ(run1(*p, 0), 2u);
  EXPECT_THROW(pearls::make_leaky_integrator(1, 0), ApiError);
}

TEST(Pearls, BitMixerIsDeterministicAndNontrivial) {
  auto p = pearls::make_bit_mixer();
  auto q = pearls::make_bit_mixer();
  const auto a = run1(*p, 12345);
  EXPECT_EQ(a, run1(*q, 12345));
  EXPECT_NE(a, 12345u);
}

TEST(Pearls, Generator) {
  auto p = pearls::make_generator(100, 10);
  EXPECT_EQ(p->num_inputs(), 0u);
  EXPECT_EQ(p->initial_output(0), 100u);
  std::uint64_t out = 0;
  p->step({}, std::span<std::uint64_t>(&out, 1));
  EXPECT_EQ(out, 110u);
  p->step({}, std::span<std::uint64_t>(&out, 1));
  EXPECT_EQ(out, 120u);
  auto q = p->clone_reset();
  q->step({}, std::span<std::uint64_t>(&out, 1));
  EXPECT_EQ(out, 110u);
}

TEST(Pearls, Butterfly) {
  auto p = pearls::make_butterfly(1, 2);
  EXPECT_EQ(p->initial_output(0), 1u);
  EXPECT_EQ(p->initial_output(1), 2u);
  const std::uint64_t in[2] = {10, 3};
  std::uint64_t out[2] = {};
  p->step(in, out);
  EXPECT_EQ(out[0], 13u);
  EXPECT_EQ(out[1], 7u);
}

TEST(Pearls, FactoryByNameCoversAllNames) {
  for (const auto& name : pearls::unary_pearl_names()) {
    auto p = pearls::make_by_name(name, 17);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->num_inputs(), 1u) << name;
    EXPECT_EQ(p->num_outputs(), 1u) << name;
    // Determinism contract: a clone produces the same output sequence.
    auto q = p->clone_reset();
    auto r = p->clone_reset();
    for (std::uint64_t i = 0; i < 16; ++i) {
      EXPECT_EQ(run1(*q, i * 3), run1(*r, i * 3)) << name;
    }
  }
  EXPECT_THROW(pearls::make_by_name("no-such-pearl", 0), ApiError);
}

TEST(Pearls, LambdaPearlValidatesFunction) {
  EXPECT_THROW(pearls::LambdaPearl(1, 1, nullptr), ApiError);
}

}  // namespace
