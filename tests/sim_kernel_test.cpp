// Unit tests for the event-driven simulation kernel: delta-cycle
// semantics, sensitivity, scheduled assignments, clocks and edge
// detection.

#include <gtest/gtest.h>

#include "liplib/sim/kernel.hpp"

namespace {

using namespace liplib;
using sim::SimContext;

TEST(SimKernel, WriteTakesEffectNextDelta) {
  SimContext ctx;
  auto& a = ctx.signal<int>("a", 0);
  auto& b = ctx.signal<int>("b", 0);
  // b follows a combinationally.
  auto& p = ctx.process("follow", [&] { b.write(a.read() + 1); });
  ctx.sensitize(p, a);
  a.write_after(41, 5);
  ctx.run_until(10);
  EXPECT_EQ(a.read(), 41);
  EXPECT_EQ(b.read(), 42);
}

TEST(SimKernel, ElaborationRunsEveryProcessOnce) {
  SimContext ctx;
  auto& a = ctx.signal<int>("a", 7);
  int runs = 0;
  auto& p = ctx.process("init", [&] { ++runs; });
  ctx.sensitize(p, a);
  ctx.run_until(0);
  EXPECT_EQ(runs, 1);  // elaboration pass, no events
}

TEST(SimKernel, LastWriteWinsWithinDelta) {
  SimContext ctx;
  auto& a = ctx.signal<int>("a", 0);
  auto& trigger = ctx.signal<bool>("t", false);
  auto& p = ctx.process("writer", [&] {
    if (trigger.event()) {
      a.write(1);
      a.write(2);
    }
  });
  ctx.sensitize(p, trigger);
  trigger.write_after(true, 1);
  ctx.run_until(2);
  EXPECT_EQ(a.read(), 2);
}

TEST(SimKernel, EqualValueWriteDoesNotWakeProcesses) {
  SimContext ctx;
  auto& a = ctx.signal<int>("a", 5);
  int wakeups = 0;
  auto& p = ctx.process("watch", [&] {
    if (a.event()) ++wakeups;
  });
  ctx.sensitize(p, a);
  a.write_after(5, 1);  // same value: no event
  a.write_after(6, 2);  // change: one event
  ctx.run_until(5);
  EXPECT_EQ(wakeups, 1);
}

TEST(SimKernel, CombinationalChainSettlesInDeltas) {
  SimContext ctx;
  auto& a = ctx.signal<int>("a", 0);
  auto& b = ctx.signal<int>("b", 0);
  auto& c = ctx.signal<int>("c", 0);
  auto& p1 = ctx.process("p1", [&] { b.write(a.read() * 2); });
  auto& p2 = ctx.process("p2", [&] { c.write(b.read() + 1); });
  ctx.sensitize(p1, a);
  ctx.sensitize(p2, b);
  a.write_after(10, 3);
  ctx.run_until(3);
  EXPECT_EQ(c.read(), 21);  // settled through two deltas at time 3
}

TEST(SimKernel, OscillationHitsDeltaLimit) {
  SimContext ctx;
  ctx.set_delta_limit(100);
  auto& a = ctx.signal<bool>("a", false);
  auto& p = ctx.process("inverter", [&] { a.write(!a.read()); });
  ctx.sensitize(p, a);
  a.write_after(true, 1);
  EXPECT_THROW(ctx.run_until(1), InternalError);
}

TEST(SimKernel, ClockGeneratesEdges) {
  SimContext ctx;
  sim::Clock clk(ctx, "clk", 1, 1);
  int posedges = 0, negedges = 0;
  auto& p = ctx.process("count", [&] {
    if (clk.signal().posedge()) ++posedges;
    if (clk.signal().negedge()) ++negedges;
  });
  ctx.sensitize(p, clk.signal());
  ctx.run_until(20);  // edges at 1,2,3,...,20
  EXPECT_EQ(posedges, 10);  // rising at odd times 1..19
  EXPECT_EQ(negedges, 10);  // falling at even times 2..20
}

TEST(SimKernel, RegisterSamplesPreEdgeValue) {
  // Two back-to-back registers: classic shift; both clocked processes
  // must read pre-edge values, so data moves one stage per cycle.
  SimContext ctx;
  sim::Clock clk(ctx, "clk", 1, 1);
  auto& d = ctx.signal<int>("d", 100);
  auto& q1 = ctx.signal<int>("q1", 0);
  auto& q2 = ctx.signal<int>("q2", 0);
  auto& r1 = ctx.process("r1", [&] {
    if (clk.signal().posedge()) q1.write(d.read());
  });
  auto& r2 = ctx.process("r2", [&] {
    if (clk.signal().posedge()) q2.write(q1.read());
  });
  ctx.sensitize(r1, clk.signal());
  ctx.sensitize(r2, clk.signal());
  ctx.run_until(2);  // one rising edge at t=1
  EXPECT_EQ(q1.read(), 100);
  EXPECT_EQ(q2.read(), 0);  // pre-edge q1 was 0
  ctx.run_until(4);  // second edge at t=3
  EXPECT_EQ(q2.read(), 100);
}

TEST(SimKernel, OnChangeHookFires) {
  SimContext ctx;
  auto& a = ctx.signal<int>("a", 0);
  int calls = 0;
  ctx.on_change(a, [&] { ++calls; });
  a.write_after(1, 1);
  a.write_after(1, 2);  // no change
  a.write_after(2, 3);
  ctx.run_until(5);
  EXPECT_EQ(calls, 2);
}

TEST(SimKernel, RunStepsAdvancesDiscreteEventTimes) {
  SimContext ctx;
  auto& a = ctx.signal<int>("a", 0);
  a.write_after(1, 3);
  a.write_after(2, 9);
  const auto t = ctx.run_steps(1);
  EXPECT_EQ(t, 3u);
  EXPECT_EQ(a.read(), 1);
  ctx.run_steps(1);
  EXPECT_EQ(a.read(), 2);
  EXPECT_FALSE(ctx.has_future_events());
}

TEST(SimKernel, CannotScheduleInThePast) {
  SimContext ctx;
  auto& a = ctx.signal<int>("a", 0);
  a.write_after(1, 5);
  ctx.run_until(5);
  EXPECT_NO_THROW(a.write_after(2, 0));  // now is fine
}

}  // namespace
