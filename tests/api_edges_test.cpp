// API-contract edge cases: misuse is rejected loudly and early, across
// the public entry points.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/reference.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;

/// Source fanning out to `width` sinks through one full station each.
graph::Topology make_fanout_topology(std::size_t width) {
  graph::Topology t;
  const auto src = t.add_source("src");
  for (std::size_t i = 0; i < width; ++i) {
    const auto sink = t.add_sink("out" + std::to_string(i));
    t.connect({src, 0}, {sink, 0}, {graph::RsKind::kFull});
  }
  return t;
}

// The pending-consumer masks are 32 bits wide, so fanout beyond 32 must
// be rejected at construction instead of silently truncating (the old
// load() mapped any branch count >= 32 to ~0u).
TEST(ApiEdges, FanoutBeyond32RejectedBySystem) {
  EXPECT_THROW(lip::System(make_fanout_topology(33)), ApiError);
}

TEST(ApiEdges, FanoutBeyond32RejectedBySkeleton) {
  EXPECT_THROW(skeleton::Skeleton(make_fanout_topology(33)), ApiError);
}

TEST(ApiEdges, FanoutOf32StillDeliversToEveryBranch) {
  const auto topo = make_fanout_topology(32);
  lip::System sys(topo);
  sys.finalize();
  sys.run(8);
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    if (topo.node(v).kind != graph::NodeKind::kSink) continue;
    EXPECT_GT(sys.sink_count(v), 0u) << topo.node(v).name;
  }
  skeleton::Skeleton sk(topo);
  EXPECT_TRUE(sk.analyze().found);
}

TEST(ApiEdges, DesignRejectsWrongNodeKinds) {
  auto gen = graph::make_pipeline(1, 1);
  lip::Design d(gen.topo);
  EXPECT_THROW(d.set_pearl(gen.sources[0], pearls::make_identity()),
               ApiError);
  EXPECT_THROW(d.set_pearl(gen.sinks[0], pearls::make_identity()), ApiError);
  lip::System sys(gen.topo);
  EXPECT_THROW(sys.bind_source(gen.processes[0],
                               lip::SourceBehavior::counter()),
               ApiError);
  EXPECT_THROW(sys.bind_sink(gen.sources[0], lip::SinkBehavior::greedy()),
               ApiError);
  EXPECT_THROW(sys.bind_pearl(gen.processes[0], nullptr), ApiError);
}

TEST(ApiEdges, BindAfterFinalizeRejected) {
  auto gen = graph::make_pipeline(1, 1);
  auto d = testutil::make_design(gen);
  auto sys = d.instantiate();  // finalizes
  EXPECT_THROW(sys->bind_pearl(gen.processes[0], pearls::make_identity()),
               ApiError);
  EXPECT_THROW(sys->bind_source(gen.sources[0],
                                lip::SourceBehavior::counter()),
               ApiError);
}

TEST(ApiEdges, AccessorsValidateNodeKinds) {
  auto gen = graph::make_pipeline(1, 1);
  auto d = testutil::make_design(gen);
  auto sys = d.instantiate();
  sys->run(5);
  EXPECT_THROW(sys->sink_stream(gen.processes[0]), ApiError);
  EXPECT_THROW(sys->shell_fire_count(gen.sinks[0]), ApiError);
  EXPECT_THROW(sys->shell_activity(gen.sources[0]), ApiError);
  EXPECT_THROW(sys->channel_view(999), ApiError);
  EXPECT_THROW(sys->segment_stats(999), ApiError);
}

TEST(ApiEdges, FanoutBeyond32Rejected) {
  graph::Topology t;
  const auto src = t.add_source("src");
  std::vector<graph::NodeId> sinks;
  for (int i = 0; i < 33; ++i) {
    const auto s = t.add_sink("s" + std::to_string(i));
    t.connect({src, 0}, {s, 0});
  }
  EXPECT_THROW(lip::System sys(t), ApiError);
}

TEST(ApiEdges, ReferenceExecutorContracts) {
  auto gen = graph::make_pipeline(1, 1);
  lip::ReferenceExecutor ref(gen.topo);
  EXPECT_THROW(ref.run(1), ApiError);  // pearl unbound
  EXPECT_THROW(ref.bind_pearl(gen.sources[0], pearls::make_identity()),
               ApiError);
  EXPECT_THROW(ref.bind_pearl(gen.processes[0], pearls::make_adder()),
               ApiError);  // arity
  ref.bind_pearl(gen.processes[0], pearls::make_add_const(10));
  ref.bind_source_values(gen.sources[0],
                         [](std::uint64_t k) { return 2 * k; });
  ref.run(5);
  const auto& stream = ref.sink_stream(gen.sinks[0]);
  ASSERT_EQ(stream.size(), 5u);
  EXPECT_EQ(stream[0], 0u);   // init register
  EXPECT_EQ(stream[1], 10u);  // f(2*0)
  EXPECT_EQ(stream[2], 12u);  // f(2*1)
  EXPECT_THROW(ref.sink_stream(gen.processes[0]), ApiError);
}

TEST(ApiEdges, SteadyStateRequiresPositiveEnvPeriod) {
  auto gen = graph::make_pipeline(1, 1);
  auto d = testutil::make_design(std::move(gen));
  auto sys = d.instantiate();
  EXPECT_THROW(lip::measure_steady_state(*sys, 100, 0), ApiError);
}

TEST(ApiEdges, SteadyStateBudgetExhaustionReportsNotFound) {
  auto gen = graph::make_pipeline(4, 2);
  auto d = testutil::make_design(std::move(gen));
  auto sys = d.instantiate();
  const auto ss = lip::measure_steady_state(*sys, /*max_cycles=*/2);
  EXPECT_FALSE(ss.found);
}

TEST(ApiEdges, EnvironmentBehaviorsValidated) {
  auto gen = graph::make_pipeline(1, 1);
  lip::System sys(gen.topo);
  lip::SourceBehavior empty_source;
  EXPECT_THROW(sys.bind_source(gen.sources[0], empty_source), ApiError);
  lip::SinkBehavior empty_sink;
  EXPECT_THROW(sys.bind_sink(gen.sinks[0], empty_sink), ApiError);
}

TEST(ApiEdges, InstantiationsAreIsolated) {
  // A Design's pearls are prototypes: every instantiate() gets fresh
  // clones, so two systems never share mutable state.
  auto gen = graph::make_pipeline(1, 1);
  lip::Design d(gen.topo);
  d.set_pearl(gen.processes[0], pearls::make_accumulator());
  auto s1 = d.instantiate();
  s1->run(100);
  auto s2 = d.instantiate();
  s2->run(100);
  ASSERT_EQ(s1->sink_stream(gen.sinks[0]).size(),
            s2->sink_stream(gen.sinks[0]).size());
  for (std::size_t i = 0; i < s1->sink_stream(gen.sinks[0]).size(); ++i) {
    EXPECT_EQ(s1->sink_stream(gen.sinks[0])[i],
              s2->sink_stream(gen.sinks[0])[i]);
  }
}

TEST(ApiEdges, SaturateBeforeFinalizeIsFine) {
  auto gen = graph::make_closed_ring({2, 2});
  auto d = testutil::make_design(std::move(gen));
  auto sys = d.instantiate();
  EXPECT_NO_THROW(sys->saturate_stations(7));
  EXPECT_NO_THROW(sys->run(10));
}

// ---- lidtool prove CLI contract -----------------------------------------
//
// The prove subcommand's exit codes are an API: 0 proved, 1
// counterexample, 2 unknown flag / usage error, and `--help` answers 0.
// LIDTOOL_PATH is injected by the build (tests/CMakeLists.txt).

#ifdef LIDTOOL_PATH

int run_lidtool(const std::string& args) {
  const std::string cmd =
      std::string(LIDTOOL_PATH) + " " + args + " >/dev/null 2>/dev/null";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

/// Writes a netlist to a per-process temp path and returns the path.
std::string write_lid(const char* name, const std::string& text) {
  const std::string path = testing::TempDir() + name + "." +
                           std::to_string(::getpid()) + ".lid";
  std::ofstream os(path);
  os << text;
  return path;
}

TEST(ApiEdges, LidtoolProveExitCodeContract) {
  const std::string live = write_lid("live", R"(source src
process A 1 1
sink out
channel src.0 -> A.0
channel A.0 -> out.0 : F
)");
  const std::string latch = write_lid("latch", R"(process P 1 1
process Q 1 1
channel P.0 -> Q.0 : H
channel Q.0 -> P.0 : H
)");

  EXPECT_EQ(run_lidtool("prove " + live), 0);
  EXPECT_EQ(run_lidtool("prove " + live + " --induction"), 0);
  EXPECT_EQ(run_lidtool("prove " + latch), 0);  // latch unreachable at reset
  EXPECT_EQ(run_lidtool("prove " + latch + " --worst-case"), 1);
  EXPECT_EQ(run_lidtool("prove " + latch + " --worst-case --json"), 1);

  // Usage errors: unknown flags, bad values and a missing file all
  // answer 2, never 0/1.
  EXPECT_EQ(run_lidtool("prove " + live + " --bogus"), 2);
  EXPECT_EQ(run_lidtool("prove " + live + " --engine warp"), 2);
  EXPECT_EQ(run_lidtool("prove " + live + " --method bogus"), 2);
  EXPECT_EQ(run_lidtool("prove " + live + " --depth"), 2);
  EXPECT_EQ(run_lidtool("prove /nonexistent.lid"), 2);
  EXPECT_EQ(run_lidtool("prove"), 2);

  // --help is not an error.
  EXPECT_EQ(run_lidtool("prove --help"), 0);
  EXPECT_EQ(run_lidtool("--help"), 0);

  std::remove(live.c_str());
  std::remove(latch.c_str());
}

/// Whole file as a string (empty when unreadable).
std::string read_file(const std::string& path) {
  std::ifstream is(path);
  return std::string((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
}

// ---- lidtool campaign seed / shard CLI contract --------------------------
//
// `--seed` takes a decimal or 0x-prefixed hex u64; anything else —
// trailing garbage, a bare prefix, a missing value — is a usage error
// (exit 2), never a silently-truncated seed.  Shard exports and the
// merge/dist subcommands share the same exit-code vocabulary.

TEST(ApiEdges, LidtoolCampaignSeedAndShardContract) {
  const std::string suffix = std::to_string(::getpid()) + ".json";
  const std::string hex_out = testing::TempDir() + "hex." + suffix;
  const std::string dec_out = testing::TempDir() + "dec." + suffix;

  // Hex and decimal spellings of the same seed export identical partials.
  EXPECT_EQ(run_lidtool("campaign fuzz 4 --seed 0x7 --out " + hex_out), 0);
  EXPECT_EQ(run_lidtool("campaign fuzz 4 --seed 7 --out " + dec_out), 0);
  const std::string hex_bytes = read_file(hex_out);
  EXPECT_FALSE(hex_bytes.empty());
  EXPECT_EQ(hex_bytes, read_file(dec_out));
  // A single full-range shard merges back on its own.
  EXPECT_EQ(run_lidtool("merge " + hex_out), 0);

  // Seed rejections.
  EXPECT_EQ(run_lidtool("campaign fuzz 4 --seed 7x"), 2);
  EXPECT_EQ(run_lidtool("campaign fuzz 4 --seed 0x"), 2);
  EXPECT_EQ(run_lidtool("campaign fuzz 4 --seed 0xzz"), 2);
  EXPECT_EQ(run_lidtool("campaign fuzz 4 --seed"), 2);

  // Shard rejections: --shard needs --out, tokens must be i/N with i < N.
  EXPECT_EQ(run_lidtool("campaign fuzz 4 --shard 0/2"), 2);
  EXPECT_EQ(run_lidtool("campaign fuzz 4 --shard 2/2 --out " + hex_out), 2);
  EXPECT_EQ(run_lidtool("campaign fuzz 4 --shard nope --out " + hex_out), 2);

  // merge / dist usage errors.
  EXPECT_EQ(run_lidtool("merge"), 2);
  EXPECT_EQ(run_lidtool("merge /nonexistent.partial.json"), 2);
  EXPECT_EQ(run_lidtool("dist work"), 2);
  EXPECT_EQ(run_lidtool("dist bogus"), 2);

  std::remove(hex_out.c_str());
  std::remove(dec_out.c_str());
}

#endif  // LIDTOOL_PATH

}  // namespace
