// The one-call design flow: bare structure + wire lengths in, validated,
// planned, screened, cured, equalized, performance-signed-off LID out.

#include <gtest/gtest.h>

#include "liplib/flow/design_flow.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;

TEST(Flow, BareDiamondEndsSignedOffAtFullThroughput) {
  graph::Topology t;
  const auto src = t.add_source("src");
  const auto fork = t.add_process("fork", 1, 2);
  const auto body = t.add_process("body", 1, 1);
  const auto join = t.add_process("join", 2, 1);
  t.connect({src, 0}, {fork, 0});
  t.connect({fork, 0}, {body, 0});
  t.connect({body, 0}, {join, 0});
  t.connect({fork, 1}, {join, 1});
  t.connect({join, 0}, {t.add_sink("out"), 0});

  flow::FlowOptions opts;
  opts.wire_lengths = {0.5, 3.0, 2.5, 1.0, 0.5};
  const auto result = flow::run_design_flow(t, opts);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_GT(result.stations_inserted, 0u);
  EXPECT_GT(result.spare_inserted, 0u);  // equalized
  EXPECT_EQ(result.predicted_throughput, Rational(1));
  EXPECT_FALSE(result.deadlock_from_reset);
  EXPECT_TRUE(result.topology.validate().ok());

  // The signed-off design really runs at the predicted rate.
  graph::Generated g;
  g.topo = result.topology;
  for (graph::NodeId v = 0; v < g.topo.nodes().size(); ++v) {
    if (g.topo.node(v).kind == graph::NodeKind::kProcess) {
      g.processes.push_back(v);
    }
  }
  auto d = testutil::make_design(std::move(g));
  auto sys = d.instantiate();
  const auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);
  EXPECT_EQ(ss.system_throughput(), Rational(1));
  EXPECT_LE(ss.transient, result.transient_bound);
}

TEST(Flow, CuresHalfLatchedLoop) {
  auto gen = graph::make_closed_ring({1, 1}, graph::RsKind::kHalf);
  flow::FlowOptions opts;  // no wire lengths: keep stations as given
  const auto result = flow::run_design_flow(gen.topo, opts);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_TRUE(result.latch_found);
  EXPECT_TRUE(result.latch_cured);
  EXPECT_EQ(result.cure_substitutions, 1u);
  ASSERT_TRUE(result.loop_bound.has_value());
  EXPECT_EQ(*result.loop_bound, Rational(1, 2));
  // Cured design screens clean even under worst case.
  skeleton::ScreeningOptions wc;
  wc.worst_case_occupancy = true;
  EXPECT_FALSE(
      skeleton::screen_for_deadlock(result.topology, wc).deadlock_found);
}

TEST(Flow, ReportsValidationFailure) {
  graph::Topology t;
  t.add_process("floating", 1, 1);
  const auto result = flow::run_design_flow(t, {});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.validation.ok());
  EXPECT_NE(result.summary().find("validation FAILED"), std::string::npos);
}

TEST(Flow, SignOffMatchesSimulationOnComposites) {
  Rng rng(808);
  for (int i = 0; i < 5; ++i) {
    auto gen = graph::make_random_composite(rng, 2, true, false);
    const auto result = flow::run_design_flow(gen.topo, {});
    ASSERT_TRUE(result.ok) << result.summary();
    // Simulate the flow's *output* (it may have equalized or cured).
    graph::Generated finished;
    finished.topo = result.topology;
    for (graph::NodeId v = 0; v < finished.topo.nodes().size(); ++v) {
      if (finished.topo.node(v).kind == graph::NodeKind::kProcess) {
        finished.processes.push_back(v);
      }
    }
    auto d = testutil::make_design(std::move(finished));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys, 1u << 20);
    ASSERT_TRUE(ss.found);
    EXPECT_EQ(ss.system_throughput(), result.predicted_throughput)
        << "iteration " << i << "\n"
        << result.summary();
  }
}

}  // namespace
