// Minimum cycle ratio analysis vs explicit cycle enumeration: the two
// must agree exactly on every cyclic topology, and MCR must also agree
// with measured loop throughput.

#include <gtest/gtest.h>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/mcr.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/lip/steady_state.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;

Rational enumeration_bound(const graph::Topology& topo) {
  Rational best(1);
  for (const auto& c : graph::enumerate_cycles(topo)) {
    if (c.throughput < best) best = c.throughput;
  }
  return best;
}

TEST(Mcr, FeedforwardHasNoCycleRatio) {
  EXPECT_FALSE(graph::min_cycle_ratio(graph::make_fig1().topo).has_value());
  EXPECT_FALSE(
      graph::min_cycle_ratio(graph::make_pipeline(3, 2).topo).has_value());
}

TEST(Mcr, MatchesEnumerationOnRings) {
  for (std::size_t s : {1u, 2u, 3u, 5u}) {
    for (std::size_t per : {1u, 2u, 4u}) {
      auto gen = graph::make_closed_ring(std::vector<std::size_t>(s, per));
      const auto mcr = graph::min_cycle_ratio(gen.topo);
      ASSERT_TRUE(mcr.has_value());
      EXPECT_EQ(*mcr, graph::loop_throughput(s, s * per))
          << "S=" << s << " per=" << per;
    }
  }
}

TEST(Mcr, MatchesEnumerationOnLoopChains) {
  const std::vector<std::vector<graph::RingSpec>> cases = {
      {{1, 2}, {1, 4}},
      {{2, 3}, {1, 2}, {2, 7}},
      {{3, 4}, {1, 5}},
  };
  for (const auto& specs : cases) {
    auto gen = graph::make_loop_chain(specs);
    const auto mcr = graph::min_cycle_ratio(gen.topo);
    ASSERT_TRUE(mcr.has_value());
    EXPECT_EQ(*mcr, enumeration_bound(gen.topo));
  }
}

TEST(Mcr, MatchesEnumerationOnParallelChannelMeshes) {
  // Dense parallel channels create many cycles; MCR must still match.
  graph::Topology t;
  const auto a = t.add_process("A", 2, 2);
  const auto b = t.add_process("B", 2, 2);
  t.connect({a, 0}, {b, 0}, {graph::RsKind::kFull});
  t.connect({a, 1}, {b, 1},
            {graph::RsKind::kFull, graph::RsKind::kFull, graph::RsKind::kFull});
  t.connect({b, 0}, {a, 0}, {graph::RsKind::kFull, graph::RsKind::kFull});
  t.connect({b, 1}, {a, 1}, {graph::RsKind::kFull});
  const auto mcr = graph::min_cycle_ratio(t);
  ASSERT_TRUE(mcr.has_value());
  // The binding (slowest) cycle combines the 3-station and 2-station
  // channels: 2 shells / (2 + 5) positions.
  EXPECT_EQ(*mcr, Rational(2, 7));
  EXPECT_EQ(*mcr, enumeration_bound(t));
}

TEST(Mcr, MatchesEnumerationOnRandomComposites) {
  Rng rng(123);
  for (int i = 0; i < 20; ++i) {
    auto gen = graph::make_random_composite(rng, 1 + i % 5, true, false);
    const auto mcr = graph::min_cycle_ratio(gen.topo);
    if (gen.topo.is_feedforward()) {
      EXPECT_FALSE(mcr.has_value());
      continue;
    }
    ASSERT_TRUE(mcr.has_value()) << "iteration " << i;
    EXPECT_EQ(*mcr, enumeration_bound(gen.topo)) << "iteration " << i;
  }
}

TEST(Mcr, MatchesMeasuredThroughputOnComposites) {
  Rng rng(77);
  for (int i = 0; i < 6; ++i) {
    auto gen = graph::make_random_composite(rng, 3, /*allow_half=*/false);
    if (gen.topo.is_feedforward()) continue;
    const auto mcr = graph::min_cycle_ratio(gen.topo);
    ASSERT_TRUE(mcr.has_value());
    const auto reconv = graph::predict_throughput(gen.topo);
    auto d = testutil::make_design(std::move(gen));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys, 1u << 20);
    ASSERT_TRUE(ss.found) << "iteration " << i;
    // The system runs at min(loop bound, reconvergence bound).
    const Rational expected =
        *mcr < reconv.reconvergence_bound ? *mcr : reconv.reconvergence_bound;
    EXPECT_EQ(ss.system_throughput(), expected) << "iteration " << i;
  }
}

TEST(Mcr, UnvalidatedZeroStationLoop) {
  // A degenerate loop with no stations (invalid as a LID, but the
  // analysis is defined): ratio 1.
  graph::Topology t;
  const auto a = t.add_process("A", 1, 1);
  t.connect({a, 0}, {a, 0});
  const auto mcr = graph::min_cycle_ratio(t);
  ASSERT_TRUE(mcr.has_value());
  EXPECT_EQ(*mcr, Rational(1));
}

}  // namespace
