// RTL (event-driven) vs cycle-accurate cross-validation: the paper
// validated its protocol blocks with a VHDL description on an
// event-driven simulator; here the same netlist elaborated on the
// liplib/sim kernel must match lip::System cycle for cycle.

#include <gtest/gtest.h>

#include <functional>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/rtl/rtl_system.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using lip::StopPolicy;

/// Builds the RTL twin of a design (fresh pearls from the same
/// prototypes, same environments) and compares sink traces and fire
/// counts after `cycles`.
// Behaviours are passed as factories because a behaviour instance may own
// a private RNG; the two simulators must each get a fresh, identically
// seeded copy rather than share one advancing stream.
void expect_lockstep(graph::Generated gen, StopPolicy policy,
                     std::uint64_t cycles,
                     const std::function<lip::SinkBehavior()>& sink_beh = {},
                     const std::function<lip::SourceBehavior()>& src_beh = {}) {
  auto d = testutil::make_design(gen);
  if (sink_beh) {
    for (auto s : gen.sinks) d.set_sink(s, sink_beh());
  }
  if (src_beh) {
    for (auto s : gen.sources) d.set_source(s, src_beh());
  }

  auto sys = d.instantiate({policy});
  sys->record_sink_trace(true);
  sys->run(cycles);

  rtl::RtlSystem rtl(d.topology(), {policy});
  for (auto p : gen.processes) {
    const auto& node = d.topology().node(p);
    rtl.bind_pearl(p, testutil::default_pearl(node.num_inputs,
                                              node.num_outputs));
  }
  if (sink_beh) {
    for (auto s : gen.sinks) rtl.bind_sink(s, sink_beh());
  }
  if (src_beh) {
    for (auto s : gen.sources) rtl.bind_source(s, src_beh());
  }
  rtl.run_cycles(cycles);

  for (auto p : gen.processes) {
    EXPECT_EQ(rtl.shell_fire_count(p), sys->shell_fire_count(p))
        << "fires of " << d.topology().node(p).name;
  }
  for (auto s : gen.sinks) {
    const auto& a = sys->sink_cycle_trace(s);
    const auto& b = rtl.sink_cycle_trace(s);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].valid, b[i].valid)
          << "sink " << d.topology().node(s).name << " cycle " << i;
      if (a[i].valid) {
        EXPECT_EQ(a[i].data, b[i].data)
            << "sink " << d.topology().node(s).name << " cycle " << i;
      }
    }
  }
}

TEST(Rtl, PipelineLockstep) {
  for (auto pol : {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    expect_lockstep(graph::make_pipeline(3, 2), pol, 120);
  }
}

TEST(Rtl, Fig1Lockstep) {
  for (auto pol : {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    expect_lockstep(graph::make_fig1(), pol, 150);
  }
}

TEST(Rtl, Fig2Lockstep) {
  for (auto pol : {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    expect_lockstep(graph::make_fig2(), pol, 150);
  }
}

TEST(Rtl, HalfStationPipelineLockstep) {
  auto gen = graph::make_pipeline(2, 1, graph::RsKind::kHalf);
  for (auto pol : {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    expect_lockstep(gen, pol, 120);
  }
}

TEST(Rtl, BackPressureLockstep) {
  const auto sink = [] {
    return lip::SinkBehavior::script({false, true, true, false, true});
  };
  for (auto pol : {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    expect_lockstep(graph::make_pipeline(2, 2), pol, 200, sink);
  }
}

TEST(Rtl, SparseSourceLockstep) {
  const auto src = [] { return lip::SourceBehavior::sparse_counter(11, 1, 2); };
  expect_lockstep(graph::make_pipeline(2, 1), StopPolicy::kCasuDiscardOnVoid,
                  200, {}, src);
}

TEST(Rtl, ReconvergentLockstep) {
  expect_lockstep(graph::make_reconvergent(1, 2, 2),
                  StopPolicy::kCasuDiscardOnVoid, 200);
}

TEST(Rtl, LoopChainLockstep) {
  expect_lockstep(graph::make_loop_chain({{1, 2}, {1, 3}}),
                  StopPolicy::kCasuDiscardOnVoid, 200);
}

TEST(Rtl, RandomFeedforwardLockstep) {
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    auto gen = graph::make_random_feedforward(rng, 5, 2, true);
    expect_lockstep(gen, StopPolicy::kCasuDiscardOnVoid, 150);
  }
}

TEST(Rtl, DeltaCyclesStaySmallOnAcyclicStopNetworks) {
  auto gen = graph::make_pipeline(4, 1);
  rtl::RtlSystem rtl(gen.topo);
  for (auto p : gen.processes) rtl.bind_pearl(p, pearls::make_identity());
  rtl.run_cycles(100);
  // Two kernel time steps per cycle and a handful of deltas each: the
  // event count must stay linear in cycles.
  EXPECT_LT(rtl.context().delta_count(), 10000u);
}

}  // namespace
