// Exhaustive verification of the paper's SMV obligations via the
// explicit-state checker, plus self-tests of the checker on deliberately
// broken models.

#include <gtest/gtest.h>

#include <cstring>

#include "liplib/formal/checker.hpp"
#include "liplib/formal/protocol_models.hpp"

namespace {

using namespace liplib;
using formal::CheckResult;
using formal::Model;
using formal::Succ;
using graph::RsKind;
using lip::StopPolicy;

const StopPolicy kPolicies[] = {StopPolicy::kCarloniStrict,
                                StopPolicy::kCasuDiscardOnVoid};
const RsKind kKinds[] = {RsKind::kFull, RsKind::kHalf};

TEST(Formal, RelayStationsSatisfyAllSafetyProperties) {
  // Paper: any relay station produces outputs in the correct order, skips
  // no valid output, and keeps its output on asserted stops — provided
  // its valid inputs are ordered (and held on stop).
  for (auto kind : kKinds) {
    for (auto pol : kPolicies) {
      const auto model = formal::make_relay_station_model(kind, pol);
      const auto result = formal::check_safety(*model);
      EXPECT_TRUE(result.ok)
          << "kind=" << (kind == RsKind::kFull ? "full" : "half")
          << " policy=" << to_string(pol) << "\n"
          << result.violation;
      EXPECT_FALSE(result.exhausted_budget);
      EXPECT_GT(result.states_explored, 10u);
    }
  }
}

TEST(Formal, ShellsSatisfyAllSafetyProperties) {
  // Paper: any shell elaborates coherent data, produces outputs in the
  // correct order, and skips no valid output — provided all its inputs
  // keep their values on asserted stops.
  for (unsigned inputs : {1u, 2u}) {
    for (unsigned branches : {1u, 2u}) {
      for (auto pol : kPolicies) {
        const auto model = formal::make_shell_model(inputs, branches, pol);
        const auto result = formal::check_safety(*model);
        EXPECT_TRUE(result.ok)
            << "inputs=" << inputs << " branches=" << branches
            << " policy=" << to_string(pol) << "\n"
            << result.violation;
        EXPECT_FALSE(result.exhausted_budget);
      }
    }
  }
}

TEST(Formal, BufferedShellsSatisfyAllSafetyProperties) {
  for (unsigned depth : {1u, 2u, 3u}) {
    for (auto pol : kPolicies) {
      const auto model = formal::make_buffered_shell_model(depth, pol);
      const auto result = formal::check_safety(*model);
      EXPECT_TRUE(result.ok) << "depth=" << depth
                             << " policy=" << to_string(pol) << "\n"
                             << result.violation;
      EXPECT_FALSE(result.exhausted_budget);
    }
  }
}

TEST(Formal, ChainsDeliverEndToEnd) {
  for (auto kind : kKinds) {
    for (auto pol : kPolicies) {
      const auto model = formal::make_chain_model(kind, pol);
      const auto result = formal::check_safety(*model);
      EXPECT_TRUE(result.ok)
          << "kind=" << (kind == RsKind::kFull ? "full" : "half")
          << " policy=" << to_string(pol) << "\n"
          << result.violation;
    }
  }
}

// ---------------------------------------------------------------------
// Checker self-tests: a model with a planted bug must be caught, with a
// minimal counterexample trace.
// ---------------------------------------------------------------------

/// Counts up through `depth` states, then violates.
class PlantedBugModel final : public Model {
 public:
  explicit PlantedBugModel(unsigned depth) : depth_(depth) {}
  std::string initial() const override { return std::string(1, '\0'); }
  std::vector<Succ> successors(const std::string& s) const override {
    const unsigned level = static_cast<unsigned char>(s[0]);
    std::vector<Succ> out;
    // A harmless self-loop choice...
    out.push_back({s, "stay", std::nullopt});
    // ...and a step deeper, violating at the bottom.
    Succ deeper;
    deeper.state = std::string(1, static_cast<char>(level + 1));
    deeper.choice = "descend";
    if (level + 1 == depth_) deeper.violation = "planted bug";
    out.push_back(std::move(deeper));
    return out;
  }

 private:
  unsigned depth_;
};

TEST(Formal, CheckerFindsPlantedBugWithMinimalTrace) {
  const PlantedBugModel model(5);
  const auto result = formal::check_safety(model);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.violation, "planted bug");
  // Trace: initial state + 4 intermediate states with choices between,
  // then the violating transition line.
  ASSERT_FALSE(result.trace.empty());
  EXPECT_NE(result.trace.back().find("planted bug"), std::string::npos);
  // BFS depth-minimality: the bug is at depth 5, so the trace holds
  // exactly 5 described states (depth 0..4), 4 choice lines, 1 violation.
  EXPECT_EQ(result.trace.size(), 10u);
}

/// Infinite counter: the state space never closes.
class UnboundedModel final : public Model {
 public:
  std::string initial() const override { return std::string(4, '\0'); }
  std::vector<Succ> successors(const std::string& s) const override {
    std::string next = s;
    for (int i = 0; i < 4; ++i) {
      if (++next[i] != 0) break;
    }
    return {{next, "tick", std::nullopt}};
  }
};

TEST(Formal, CheckerReportsBudgetExhaustion) {
  const UnboundedModel model;
  const auto result = formal::check_safety(model, /*max_states=*/1000);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.exhausted_budget);
  EXPECT_GE(result.states_explored, 999u);
}

/// A bounded chain of fat states (the counter rides in the first bytes,
/// the rest is ballast), for pinning the checker's memory accounting.
class FatChainModel final : public Model {
 public:
  FatChainModel(std::size_t state_bytes, std::uint32_t states)
      : state_bytes_(state_bytes), states_(states) {}

  std::string initial() const override { return make_state(0); }
  std::vector<Succ> successors(const std::string& s) const override {
    std::uint32_t n = 0;
    std::memcpy(&n, s.data(), sizeof(n));
    if (n + 1 >= states_) return {};
    return {{make_state(n + 1), "tick", std::nullopt}};
  }

 private:
  std::string make_state(std::uint32_t n) const {
    std::string s(state_bytes_, '\xab');
    std::memcpy(s.data(), &n, sizeof(n));
    return s;
  }
  std::size_t state_bytes_;
  std::uint32_t states_;
};

TEST(Formal, CheckerPeakMemoryIsOneStateCopyPerState) {
  // The frontier stores pointers into the visited set, not state
  // copies, so the bookkeeping peak is ~one state copy per explored
  // state plus a fixed per-record overhead.  A frontier that copied
  // states (the old implementation) would double the state term and
  // blow this bound.
  constexpr std::size_t kStateBytes = 256;
  constexpr std::uint32_t kStates = 4096;
  const FatChainModel model(kStateBytes, kStates);
  const auto result = formal::check_safety(model);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.states_explored, kStates);
  EXPECT_GE(result.peak_tracked_bytes,
            std::uint64_t{kStates} * kStateBytes);
  EXPECT_LE(result.peak_tracked_bytes,
            std::uint64_t{kStates} * (kStateBytes + 160));
}

TEST(Formal, CheckResultJsonContract) {
  // Violation runs render schema liplib.check/1 with the minimal trace:
  // hex states, the choice per step, and the tripping transition.
  const PlantedBugModel model(3);
  const auto bad = formal::check_safety(model);
  ASSERT_FALSE(bad.ok);
  const Json j = bad.to_json();
  EXPECT_EQ(j.find("schema")->as_string(), "liplib.check/1");
  EXPECT_FALSE(j.find("ok")->as_bool());
  EXPECT_EQ(j.find("violation")->as_string(), "planted bug");
  EXPECT_EQ(j.find("violation_choice")->as_string(), "descend");
  const Json* steps = j.find("trace");
  ASSERT_NE(steps, nullptr);
  ASSERT_EQ(steps->size(), bad.steps.size());
  // First step is the initial state (no choice); states are hex bytes.
  EXPECT_EQ(steps->at(0).find("choice")->as_string(), "");
  const std::string hex0 = steps->at(0).find("state")->as_string();
  EXPECT_EQ(hex0, "00");
  // Round-trips through the Json parser.
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.find("states_explored")->as_uint(), bad.states_explored);
  EXPECT_EQ(back.find("peak_tracked_bytes")->as_uint(),
            bad.peak_tracked_bytes);

  // Clean runs still carry the counters, with no trace members.
  const FatChainModel chain(8, 4);
  const auto good = formal::check_safety(chain);
  ASSERT_TRUE(good.ok);
  const Json jg = good.to_json();
  EXPECT_TRUE(jg.find("ok")->as_bool());
  EXPECT_EQ(jg.find("trace")->size(), 0u);
}

/// A "relay station" that drops data under back pressure: the monitors
/// must flag it.  Built by mutating the half-station semantics — it
/// accepts new input even when occupied and stopped (overwrite).
class LossyStationModel final : public Model {
 public:
  std::string initial() const override {
    // occupied, tag, env(presenting, tag, next), mon(expected)
    std::string s;
    s.push_back(0);  // occ
    s.push_back(0);  // slot tag
    s.push_back(0);  // env presenting
    s.push_back(0);  // env tag
    s.push_back(0);  // env next
    s.push_back(0);  // expected
    return s;
  }
  std::vector<Succ> successors(const std::string& s) const override {
    const bool occ = s[0] != 0;
    const unsigned tag = static_cast<unsigned char>(s[1]);
    const bool presenting = s[2] != 0;
    const unsigned ptag = static_cast<unsigned char>(s[3]);
    const unsigned next = static_cast<unsigned char>(s[4]);
    const unsigned expected = static_cast<unsigned char>(s[5]);
    std::vector<Succ> out;
    for (int stop = 0; stop <= 1; ++stop) {
      bool occ2 = occ;
      unsigned tag2 = tag;
      unsigned expected2 = expected;
      std::optional<std::string> violation;
      // Consumption + order monitor.
      if (occ && !stop) {
        if (tag != expected) {
          violation = "order violated";
        }
        expected2 = (expected + 1) % 8;
        occ2 = false;
      }
      // BUG: accept whenever the environment presents, even when still
      // occupied and stopped — the held datum is overwritten.
      if (presenting) {
        occ2 = true;
        tag2 = ptag;
      }
      // Environment: hold requires... the buggy station never stops, so
      // the environment is always free to advance.
      for (int offer = 0; offer <= 1; ++offer) {
        Succ succ;
        succ.violation = violation;
        succ.choice = std::string("stop=") + (stop ? "1" : "0") +
                      (offer ? ",offer" : ",idle");
        std::string ns;
        ns.push_back(occ2 ? 1 : 0);
        ns.push_back(static_cast<char>(occ2 ? tag2 : 0));
        ns.push_back(offer ? 1 : 0);
        ns.push_back(static_cast<char>(offer ? next : 0));
        ns.push_back(static_cast<char>(offer ? (next + 1) % 8 : next));
        ns.push_back(static_cast<char>(expected2));
        succ.state = std::move(ns);
        out.push_back(std::move(succ));
      }
    }
    return out;
  }
};

TEST(Formal, CheckerCatchesLossyStation) {
  const LossyStationModel model;
  const auto result = formal::check_safety(model);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.violation, "order violated");
}

}  // namespace
