// Wire-length-driven relay station planning.

#include <gtest/gtest.h>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/wire_plan.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using graph::RsKind;

graph::Topology bare_pipeline(std::size_t n) {
  graph::Topology t;
  auto prev = t.add_source("src");
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = t.add_process("P" + std::to_string(i), 1, 1);
    t.connect({prev, 0}, {p, 0});
    prev = p;
  }
  const auto snk = t.add_sink("out");
  t.connect({prev, 0}, {snk, 0});
  return t;
}

TEST(WirePlan, InsertsCeilLengthMinusOne) {
  auto topo = bare_pipeline(2);  // 3 channels
  graph::WirePlanOptions opts;
  opts.equalize = false;
  const auto r = graph::plan_wire_pipelining(topo, {0.5, 3.0, 2.2}, opts);
  // 0.5 -> 0 needed but shell-to-shell? src->P0 is source channel: 0.
  // 3.0 -> ceil(3)-1 = 2; 2.2 -> ceil(2.2)-1 = 2.
  EXPECT_EQ(topo.channel(0).num_stations(), 0u);
  EXPECT_EQ(topo.channel(1).num_stations(), 2u);
  EXPECT_EQ(topo.channel(2).num_stations(), 2u);
  EXPECT_EQ(r.stations_inserted, 4u);
  EXPECT_TRUE(topo.validate().ok());
}

TEST(WirePlan, ShortShellToShellWireStillGetsOneStation) {
  auto topo = bare_pipeline(2);
  graph::WirePlanOptions opts;
  opts.equalize = false;
  graph::plan_wire_pipelining(topo, {0.1, 0.1, 0.1}, opts);
  EXPECT_EQ(topo.channel(1).num_stations(), 1u);  // the P0->P1 channel
  EXPECT_TRUE(topo.validate().ok());
}

TEST(WirePlan, RespectsReach) {
  auto topo = bare_pipeline(1);
  graph::WirePlanOptions opts;
  opts.reach_per_cycle = 2.0;
  opts.equalize = false;
  graph::plan_wire_pipelining(topo, {10.0, 4.0}, opts);
  EXPECT_EQ(topo.channel(0).num_stations(), 4u);  // ceil(5)-1
  EXPECT_EQ(topo.channel(1).num_stations(), 1u);  // ceil(2)-1
}

TEST(WirePlan, ExistingStationsCountTowardRequirement) {
  graph::Topology t;
  const auto src = t.add_source("src");
  const auto p = t.add_process("P", 1, 1);
  const auto snk = t.add_sink("out");
  t.connect({src, 0}, {p, 0}, {RsKind::kFull, RsKind::kFull, RsKind::kFull});
  t.connect({p, 0}, {snk, 0});
  graph::WirePlanOptions opts;
  opts.equalize = false;
  const auto r = graph::plan_wire_pipelining(t, {2.5, 0.0}, opts);
  EXPECT_EQ(r.stations_inserted, 0u);  // 3 already there, 2 needed
  EXPECT_EQ(t.channel(0).num_stations(), 3u);
}

TEST(WirePlan, HalfOffCycleFullOnCycle) {
  // A loop plus a feed-forward tail: loop channels must get full
  // stations, the tail can use cheap halves.
  graph::Topology t;
  const auto src = t.add_source("src");
  const auto port = t.add_process("port", 2, 2);
  const auto tail = t.add_process("tail", 1, 1);
  const auto snk = t.add_sink("out");
  t.connect({src, 0}, {port, 0});
  t.connect({port, 1}, {port, 1});  // self loop, long wire
  t.connect({port, 0}, {tail, 0});  // long feed-forward wire
  t.connect({tail, 0}, {snk, 0});
  const auto r =
      graph::plan_wire_pipelining(t, {0.5, 4.0, 4.0, 0.5}, {});
  EXPECT_GT(r.full_count, 0u);
  EXPECT_GT(r.half_count, 0u);
  for (graph::ChannelId c = 0; c < t.channels().size(); ++c) {
    const bool cyc = t.channels_on_cycles()[c];
    for (RsKind k : t.channel(c).stations) {
      if (cyc) {
        EXPECT_EQ(k, RsKind::kFull);
      }
    }
  }
  // Deadlock free by construction, even under worst-case occupancy.
  skeleton::ScreeningOptions wc;
  wc.worst_case_occupancy = true;
  EXPECT_FALSE(skeleton::screen_for_deadlock(t, wc).deadlock_found);
}

TEST(WirePlan, EqualizationKeepsFullThroughputOnDags) {
  // An unbalanced diamond with long wires: planned + equalized, T = 1.
  graph::Topology t;
  const auto src = t.add_source("src");
  const auto fork = t.add_process("fork", 1, 2);
  const auto body = t.add_process("body", 1, 1);
  const auto join = t.add_process("join", 2, 1);
  const auto snk = t.add_sink("out");
  t.connect({src, 0}, {fork, 0});
  const auto long1 = t.connect({fork, 0}, {body, 0});
  const auto long2 = t.connect({body, 0}, {join, 0});
  const auto shortc = t.connect({fork, 1}, {join, 1});
  t.connect({join, 0}, {snk, 0});
  std::vector<double> lengths(t.channels().size(), 0.0);
  lengths[long1] = 3.0;
  lengths[long2] = 2.0;
  lengths[shortc] = 1.0;
  const auto r = graph::plan_wire_pipelining(t, lengths, {});
  EXPECT_GT(r.spare_inserted, 0u);

  lip::Design d(t);
  d.set_pearl(fork, pearls::make_fork2());
  d.set_pearl(body, pearls::make_bit_mixer());
  d.set_pearl(join, pearls::make_adder());
  auto sys = d.instantiate();
  const auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);
  EXPECT_EQ(ss.system_throughput(), Rational(1));
}

TEST(WirePlan, RejectsBadInput) {
  auto topo = bare_pipeline(1);
  EXPECT_THROW(graph::plan_wire_pipelining(topo, {1.0}, {}), ApiError);
  graph::WirePlanOptions bad;
  bad.reach_per_cycle = 0;
  EXPECT_THROW(graph::plan_wire_pipelining(topo, {1.0, 1.0}, bad), ApiError);
  EXPECT_THROW(graph::plan_wire_pipelining(topo, {-1.0, 1.0}, {}), ApiError);
}

}  // namespace
