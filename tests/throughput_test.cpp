// Parameterized validation of the paper's analytic throughput results
// against exact simulation:
//   feedback loops:            T = S/(S+R)      (paper / Carloni DAC'00)
//   reconvergent feedforward:  T = (m-i)/m      (the paper's formula)
//   trees / pipelines:         T = 1
//   loop chains:               T = min over loops (slowest subtopology)

#include <gtest/gtest.h>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/equalize.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/lip/steady_state.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;

// ---------------------------------------------------------------------
// Feedback loops: sweep (S, R).
// ---------------------------------------------------------------------

struct LoopCase {
  std::size_t shells;
  std::size_t stations_per_channel;
};

class LoopThroughput : public ::testing::TestWithParam<LoopCase> {};

TEST_P(LoopThroughput, MatchesFormula) {
  const auto [s, per] = GetParam();
  std::vector<std::size_t> stations(s, per);
  auto d = testutil::make_design(graph::make_closed_ring(stations));
  auto sys = d.instantiate();
  const auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);
  const auto expected = graph::loop_throughput(s, s * per);
  EXPECT_EQ(ss.system_throughput(), expected)
      << "S=" << s << " R=" << s * per;
  // Every shell in a ring runs at the same rate.
  for (const auto& t : ss.shell_throughput) EXPECT_EQ(t, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoopThroughput,
    ::testing::Values(LoopCase{1, 1}, LoopCase{1, 2}, LoopCase{1, 5},
                      LoopCase{2, 1}, LoopCase{2, 2}, LoopCase{3, 1},
                      LoopCase{3, 3}, LoopCase{4, 1}, LoopCase{4, 2},
                      LoopCase{6, 1}, LoopCase{8, 2}),
    [](const auto& info) {
      return "S" + std::to_string(info.param.shells) + "_P" +
             std::to_string(info.param.stations_per_channel);
    });

TEST(LoopThroughputExtra, TappedRingMatchesFormulaAndFeedsSink) {
  for (std::size_t ab = 1; ab <= 3; ++ab) {
    for (std::size_t ba = 1; ba <= 3; ++ba) {
      auto d = testutil::make_design(graph::make_ring_with_tap(ab, ba));
      auto sys = d.instantiate();
      const auto ss = lip::measure_steady_state(*sys);
      ASSERT_TRUE(ss.found);
      EXPECT_EQ(ss.system_throughput(), graph::loop_throughput(2, ab + ba))
          << "ab=" << ab << " ba=" << ba;
    }
  }
}

// ---------------------------------------------------------------------
// Reconvergent feedforward: sweep branch imbalance.
// ---------------------------------------------------------------------

struct ReconvCase {
  std::size_t short_stations;
  std::size_t long_shells;
  std::size_t long_per_hop;
};

class ReconvergentThroughput : public ::testing::TestWithParam<ReconvCase> {
};

TEST_P(ReconvergentThroughput, MatchesPaperFormula) {
  const auto [s_st, l_sh, l_per] = GetParam();
  auto gen = graph::make_reconvergent(s_st, l_sh, l_per);
  const auto pred = graph::predict_throughput(gen.topo);
  auto d = testutil::make_design(std::move(gen));
  auto sys = d.instantiate();  // paper variant policy (default)
  const auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);
  EXPECT_EQ(ss.system_throughput(), pred.system())
      << "short=" << s_st << " long_shells=" << l_sh
      << " long_per_hop=" << l_per
      << " predicted=" << pred.system().str();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReconvergentThroughput,
    ::testing::Values(ReconvCase{1, 1, 1},   // the paper's Fig. 1: T = 4/5
                      ReconvCase{2, 1, 1},   // balanced: i = 0, T = 1
                      ReconvCase{1, 1, 2},   // i = 3
                      ReconvCase{1, 2, 1},   // longer chain
                      ReconvCase{2, 2, 1}, ReconvCase{1, 2, 2},
                      ReconvCase{3, 1, 1}, ReconvCase{1, 3, 1},
                      ReconvCase{2, 3, 1}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.short_stations) + "_w" +
             std::to_string(info.param.long_shells) + "_p" +
             std::to_string(info.param.long_per_hop);
    });

// ---------------------------------------------------------------------
// Trees and pipelines: T = 1 regardless of depth or pipelining.
// ---------------------------------------------------------------------

TEST(TreeThroughput, PipelinesRunAtFullRate) {
  for (std::size_t stages : {1u, 3u, 6u}) {
    for (std::size_t per : {1u, 2u, 4u}) {
      auto d = testutil::make_design(graph::make_pipeline(stages, per));
      auto sys = d.instantiate();
      const auto ss = lip::measure_steady_state(*sys);
      ASSERT_TRUE(ss.found);
      EXPECT_EQ(ss.system_throughput(), Rational(1))
          << stages << " stages, " << per << " stations/channel";
    }
  }
}

TEST(TreeThroughput, BalancedTreesRunAtFullRate) {
  for (std::size_t depth : {1u, 2u, 3u}) {
    auto d = testutil::make_design(graph::make_tree(depth, 2));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys);
    ASSERT_TRUE(ss.found);
    EXPECT_EQ(ss.system_throughput(), Rational(1)) << "depth " << depth;
  }
}

TEST(TreeThroughput, TransientBoundedByLongestPath) {
  // "The initial latency for each node before firing at full speed can be
  // as much as the longest path in the tree (transient duration)."
  for (std::size_t depth : {1u, 2u, 3u}) {
    auto gen = graph::make_tree(depth, 2);
    const auto longest = graph::longest_register_path(gen.topo);
    ASSERT_TRUE(longest.has_value());
    auto d = testutil::make_design(std::move(gen));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys);
    ASSERT_TRUE(ss.found);
    EXPECT_LE(ss.transient, *longest + 1) << "depth " << depth;
  }
}

// ---------------------------------------------------------------------
// Composites: the slowest subtopology dictates the system speed.
// ---------------------------------------------------------------------

TEST(CompositeThroughput, SlowestLoopDominates) {
  const std::vector<std::vector<graph::RingSpec>> cases = {
      {{1, 2}, {1, 3}},              // loops at 2/4 and 2/5... see below
      {{2, 3}, {1, 2}},
      {{1, 2}, {2, 4}, {1, 4}},
  };
  for (const auto& specs : cases) {
    auto gen = graph::make_loop_chain(specs);
    Rational expected(1);
    for (const auto& spec : specs) {
      // Each loop has (extra_shells + 1) shells including its port and
      // spec.loop_stations stations.
      const auto t =
          graph::loop_throughput(spec.extra_shells + 1, spec.loop_stations);
      if (t < expected) expected = t;
    }
    const auto pred = graph::predict_throughput(gen.topo);
    EXPECT_EQ(pred.cycle_bound, expected);
    auto d = testutil::make_design(std::move(gen));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys, 500000);
    ASSERT_TRUE(ss.found);
    EXPECT_EQ(ss.system_throughput(), expected);
  }
}

// ---------------------------------------------------------------------
// Path equalization restores T = 1 on unbalanced feedforward designs.
// ---------------------------------------------------------------------

TEST(Equalization, RestoresFullThroughput) {
  for (const auto& [s_st, l_sh, l_per] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{1, 1, 2},
        {1, 2, 2},
        {1, 3, 1}}) {
    auto gen = graph::make_reconvergent(s_st, l_sh, l_per);

    auto before = testutil::make_design(gen);
    auto sys_before = before.instantiate();
    const auto ss_before = lip::measure_steady_state(*sys_before);
    ASSERT_TRUE(ss_before.found);
    EXPECT_LT(ss_before.system_throughput(), Rational(1));

    const std::size_t added = graph::equalize_paths(gen.topo);
    EXPECT_GT(added, 0u);
    auto after = testutil::make_design(std::move(gen));
    auto sys_after = after.instantiate();
    const auto ss_after = lip::measure_steady_state(*sys_after);
    ASSERT_TRUE(ss_after.found);
    EXPECT_EQ(ss_after.system_throughput(), Rational(1));
  }
}

TEST(Equalization, BalancedDesignUntouched) {
  auto gen = graph::make_tree(3, 2);
  const auto plan = graph::plan_equalization(gen.topo);
  EXPECT_TRUE(plan.balanced_already());
}

TEST(Equalization, RejectsCyclicTopology) {
  auto gen = graph::make_fig2();
  EXPECT_THROW(graph::plan_equalization(gen.topo), ApiError);
}

// ---------------------------------------------------------------------
// Transient bound holds across families.
// ---------------------------------------------------------------------

TEST(TransientBound, CoversAllFamilies) {
  std::vector<graph::Generated> cases;
  cases.push_back(graph::make_pipeline(4, 2));
  cases.push_back(graph::make_tree(2, 1));
  cases.push_back(graph::make_reconvergent(1, 2, 2));
  cases.push_back(graph::make_fig1());
  cases.push_back(graph::make_fig2());
  cases.push_back(graph::make_loop_chain({{1, 2}, {2, 3}}));
  for (auto& gen : cases) {
    const auto bound = graph::transient_bound(gen.topo);
    auto d = testutil::make_design(std::move(gen));
    auto sys = d.instantiate();
    const auto ss = lip::measure_steady_state(*sys, 500000);
    ASSERT_TRUE(ss.found);
    EXPECT_LE(ss.transient, bound);
  }
}

}  // namespace
