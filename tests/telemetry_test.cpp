// liplib::telemetry — watchdog trip points, flight-recorder bundles and
// their replay, fleet metrics determinism, and the bench regression gate.
//
// The acceptance spine: a seeded half-RS-in-loop design trips the
// watchdog at the earliest no-progress cycle, the post-mortem bundle
// survives a JSON round trip, and replaying the bundle's netlist
// reproduces the identical deadlock cycle.  A (m−i)/m reconvergent
// design and a 100-composite live corpus never trip (no false
// positives).  Fleet percentiles are byte-identical at 1/2/8 worker
// threads.  `bench diff` flags an injected ≥10% regression and passes
// identical files.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "liplib/campaign/jobs.hpp"
#include "liplib/campaign/report.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/metrics.hpp"
#include "liplib/telemetry/bench_diff.hpp"
#include "liplib/telemetry/watchdog.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using graph::RsKind;

// ---- watchdog trip points ----------------------------------------------

TEST(Watchdog, SaturatedHalfRingTripsAtEarliestNoProgressCycle) {
  // The paper's latent stop latch: a two-shell ring with one half station
  // per channel deadlocks under worst-case occupancy (deadlock_test locks
  // the screening verdict; here the *runtime* watchdog catches it live).
  auto gen = graph::make_closed_ring({1, 1}, RsKind::kHalf);
  skeleton::Skeleton sk(gen.topo);
  sk.saturate_stations();

  telemetry::WatchdogOptions opts;
  opts.no_progress_threshold = 8;
  opts.seed = 0xDEADBEEF;
  opts.worst_case_occupancy = true;
  telemetry::Watchdog dog(opts);
  dog.attach(sk);

  const auto run = telemetry::run_guarded(sk, dog, 10000);
  ASSERT_TRUE(dog.tripped());
  ASSERT_TRUE(run.deadlocked);
  // Saturated from reset: frozen from the very first cycle, tripped
  // exactly at the K-th frozen frame — and every pending token is
  // back-pressured, which is the stop-saturation signature.
  EXPECT_EQ(dog.reason(), telemetry::TripReason::kStopSaturation);
  EXPECT_EQ(dog.no_progress_since(), 0u);
  EXPECT_EQ(dog.trip_cycle(),
            dog.no_progress_since() + opts.no_progress_threshold - 1);
  EXPECT_EQ(run.cycles, opts.no_progress_threshold);
}

TEST(Watchdog, BundleRoundTripsAndReplayReproducesIdenticalCycle) {
  auto gen = graph::make_closed_ring({1, 1}, RsKind::kHalf);
  skeleton::Skeleton sk(gen.topo);
  sk.saturate_stations();

  telemetry::WatchdogOptions opts;
  opts.no_progress_threshold = 8;
  opts.ring_cycles = 32;
  opts.seed = 0xDEADBEEF;
  opts.worst_case_occupancy = true;
  telemetry::Watchdog dog(opts);
  dog.attach(sk);
  telemetry::run_guarded(sk, dog, 10000);
  ASSERT_TRUE(dog.tripped());

  const auto pm = dog.post_mortem();
  EXPECT_EQ(pm.seed, 0xDEADBEEFu);
  EXPECT_TRUE(pm.worst_case_occupancy);
  EXPECT_FALSE(pm.netlist.empty());
  // The bundle's trace is a well-formed trace-event document covering
  // the recorded window.
  const Json trace = Json::parse(pm.trace_json);
  ASSERT_NE(trace.find("traceEvents"), nullptr);
  EXPECT_GT(trace.find("traceEvents")->size(), 0u);
  // Deadlock evidence: the blame histogram is non-empty (every shell is
  // stalled, someone is to blame).
  EXPECT_FALSE(pm.blame.empty());

  // Byte-level round trip through the JSON bundle.
  const std::string bundle = pm.to_json().dump(2);
  const auto back = telemetry::PostMortem::from_json(Json::parse(bundle));
  EXPECT_EQ(back.to_json().dump(2), bundle);

  // Replay from the bundle alone: identical deadlock cycle.
  const auto r = telemetry::replay(back);
  EXPECT_TRUE(r.tripped);
  EXPECT_TRUE(r.reproduced);
  EXPECT_EQ(r.trip_cycle, pm.trip_cycle);
  EXPECT_EQ(r.no_progress_since, pm.no_progress_since);
  EXPECT_EQ(r.reason, pm.reason);
}

TEST(Watchdog, FullDataSystemTripsLikeTheSkeleton) {
  // lip::System and skeleton::Skeleton share one protocol trajectory;
  // the watchdog verdict (the satellite surfaced through lidtool run)
  // must agree cycle-for-cycle.
  auto gen = graph::make_closed_ring({1, 1}, RsKind::kHalf);

  skeleton::Skeleton sk(gen.topo);
  sk.saturate_stations();
  telemetry::WatchdogOptions opts;
  opts.no_progress_threshold = 8;
  telemetry::Watchdog sk_dog(opts);
  sk_dog.attach(sk);
  telemetry::run_guarded(sk, sk_dog, 10000);
  ASSERT_TRUE(sk_dog.tripped());

  auto design = testutil::make_design(gen);
  auto sys = design.instantiate();
  telemetry::Watchdog sys_dog(opts);
  sys_dog.attach(*sys);
  sys->saturate_stations();
  const auto run = telemetry::run_guarded(*sys, sys_dog, 10000);
  ASSERT_TRUE(run.deadlocked);
  EXPECT_EQ(sys_dog.reason(), sk_dog.reason());
  EXPECT_EQ(sys_dog.trip_cycle(), sk_dog.trip_cycle());
  EXPECT_EQ(sys_dog.no_progress_since(), sk_dog.no_progress_since());
}

TEST(Watchdog, ReconvergentDegradedThroughputNeverTrips) {
  // T = (m−i)/m < 1 is degradation, not deadlock: tokens keep moving
  // every cycle, so the watchdog must stay silent over many periods.
  auto gen = graph::make_reconvergent(/*short_stations=*/1,
                                      /*long_shells=*/3,
                                      /*long_stations_per_hop=*/1);
  skeleton::Skeleton sk(gen.topo);
  telemetry::Watchdog dog;
  dog.attach(sk);
  const auto run = telemetry::run_guarded(sk, dog, 5000);
  EXPECT_FALSE(dog.tripped());
  EXPECT_FALSE(run.deadlocked);
  EXPECT_EQ(run.cycles, 5000u);
}

TEST(Watchdog, HundredCompositeCorpusHasNoFalsePositives) {
  // Live random composites (half stations allowed, but not inside
  // loops): the watchdog must never trip on any of them.
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 100; ++i) {
    const std::size_t segments = 1 + rng.below(4);
    auto gen = graph::make_random_composite(rng, segments,
                                            /*allow_half=*/true,
                                            /*allow_half_in_loops=*/false);
    skeleton::Skeleton sk(gen.topo);
    telemetry::Watchdog dog;
    dog.attach(sk);
    telemetry::run_guarded(sk, dog, 1500);
    EXPECT_FALSE(dog.tripped()) << "composite " << i;
  }
}

TEST(Watchdog, FlightRecorderRingIsBounded) {
  auto gen = graph::make_fig2();
  skeleton::Skeleton sk(gen.topo);
  telemetry::WatchdogOptions opts;
  opts.ring_cycles = 16;
  telemetry::Watchdog dog(opts);
  dog.attach(sk);
  sk.run(100);
  EXPECT_FALSE(dog.tripped());
  EXPECT_EQ(dog.recorded_cycles(), 16u);
}

TEST(Watchdog, RejectsDegenerateOptions) {
  telemetry::WatchdogOptions zero_k;
  zero_k.no_progress_threshold = 0;
  EXPECT_THROW(telemetry::Watchdog{zero_k}, ApiError);
  telemetry::WatchdogOptions zero_ring;
  zero_ring.ring_cycles = 0;
  EXPECT_THROW(telemetry::Watchdog{zero_ring}, ApiError);
}

TEST(KernelWatchdog, TripsOnDeltaStormAtOneTimePoint) {
  telemetry::KernelWatchdog dog(/*max_deltas_per_time=*/16);
  for (int i = 0; i < 15; ++i) dog.on_delta(7, 1, 1);
  EXPECT_FALSE(dog.tripped());
  dog.on_delta(7, 1, 1);
  ASSERT_TRUE(dog.tripped());
  EXPECT_EQ(dog.trip_time(), 7u);
  EXPECT_EQ(dog.deltas_at_trip(), 16u);
  // A new time point resets the per-time budget (already tripped stays).
  telemetry::KernelWatchdog fresh(16);
  for (int i = 0; i < 15; ++i) fresh.on_delta(7, 1, 1);
  fresh.on_time_serviced(7, 15);
  for (int i = 0; i < 15; ++i) fresh.on_delta(8, 1, 1);
  EXPECT_FALSE(fresh.tripped());
}

// ---- fleet metrics ------------------------------------------------------

TEST(Metrics, LogHistogramBucketsAndPercentiles) {
  metrics::LogHistogram h;
  EXPECT_EQ(h.percentile(50), 0u);
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 100ull}) h.record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.total(), 110u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(metrics::LogHistogram::bucket_of(0), 0u);
  EXPECT_EQ(metrics::LogHistogram::bucket_of(1), 1u);
  EXPECT_EQ(metrics::LogHistogram::bucket_of(2), 2u);
  EXPECT_EQ(metrics::LogHistogram::bucket_of(3), 2u);
  EXPECT_EQ(metrics::LogHistogram::bucket_of(4), 3u);
  // p0 is the exact min; p50 lands in bucket [2,3] (hi = 3); p100 is
  // clamped by the exact max.
  EXPECT_EQ(h.percentile(0), 0u);
  EXPECT_EQ(h.percentile(50), 3u);
  EXPECT_EQ(h.percentile(100), 100u);

  metrics::LogHistogram other;
  other.record(7);
  other.merge(h);
  EXPECT_EQ(other.count(), 7u);
  EXPECT_EQ(other.min(), 0u);
  EXPECT_EQ(other.max(), 100u);

  const std::string json = h.to_json().dump();
  EXPECT_NE(json.find("\"schema\":\"liplib.loghist/1\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":6"), std::string::npos);
}

TEST(Metrics, CounterAndGauge) {
  metrics::Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  metrics::Gauge g;
  g.set(-5);
  g.add(15);
  EXPECT_EQ(g.value(), 10);
}

TEST(Fleet, MinMaxThroughputAreOptional) {
  // Satellite: no-throughput campaigns must be distinguishable from a
  // real zero-throughput deadlock.
  std::vector<campaign::JobResult> results(2);
  results[0].index = 0;
  results[0].outcome = campaign::Outcome::kError;
  results[1].index = 1;
  results[1].outcome = campaign::Outcome::kBudgetExhausted;
  const auto agg = campaign::aggregate(results);
  EXPECT_FALSE(agg.min_throughput().has_value());
  EXPECT_FALSE(agg.max_throughput().has_value());
  const std::string json = campaign::to_json(agg).dump();
  EXPECT_NE(json.find("\"min_throughput\":null"), std::string::npos);
  EXPECT_NE(json.find("\"max_throughput\":null"), std::string::npos);
  EXPECT_NE(json.find("\"throughput_percentiles\":null"), std::string::npos);

  campaign::JobResult live;
  live.index = 2;
  live.outcome = campaign::Outcome::kLive;
  live.has_throughput = true;
  live.throughput = Rational(0);  // a genuine zero-throughput verdict
  results.push_back(live);
  const auto agg2 = campaign::aggregate(results);
  ASSERT_TRUE(agg2.min_throughput().has_value());
  EXPECT_EQ(*agg2.min_throughput(), Rational(0));
}

TEST(Fleet, PercentilesAreExactNearestRank) {
  std::vector<campaign::JobResult> results;
  for (int i = 1; i <= 4; ++i) {
    campaign::JobResult r;
    r.index = static_cast<std::size_t>(i - 1);
    r.outcome = campaign::Outcome::kLive;
    r.has_throughput = true;
    r.throughput = Rational(i, 5);  // 1/5, 2/5, 3/5, 4/5
    r.transient = static_cast<std::uint64_t>(i);
    r.period = 5;
    r.blame.emplace_back("A_to_B.rs0", 10u * static_cast<std::uint64_t>(i));
    results.push_back(r);
  }
  const auto agg = campaign::aggregate(results);
  const auto& pct = agg.fleet.throughput_percentiles;
  ASSERT_EQ(pct.size(), 7u);  // p0 p25 p50 p75 p90 p99 p100
  EXPECT_EQ(pct[0].first, "p0");
  EXPECT_EQ(pct[0].second, Rational(1, 5));
  EXPECT_EQ(pct[1].first, "p25");
  EXPECT_EQ(pct[1].second, Rational(1, 5));  // rank ceil(25*4/100) = 1
  EXPECT_EQ(pct[2].first, "p50");
  EXPECT_EQ(pct[2].second, Rational(2, 5));  // rank 2
  EXPECT_EQ(pct[3].first, "p75");
  EXPECT_EQ(pct[3].second, Rational(3, 5));  // rank 3
  EXPECT_EQ(pct[4].first, "p90");
  EXPECT_EQ(pct[4].second, Rational(4, 5));  // rank 4
  EXPECT_EQ(pct[6].first, "p100");
  EXPECT_EQ(pct[6].second, Rational(4, 5));
  ASSERT_EQ(agg.fleet.blame_by_culprit.size(), 1u);
  EXPECT_EQ(agg.fleet.blame_by_culprit[0].first, "A_to_B.rs0");
  EXPECT_EQ(agg.fleet.blame_by_culprit[0].second, 100u);
  EXPECT_EQ(agg.fleet.transient.count(), 4u);
  EXPECT_EQ(agg.fleet.period.percentile(50), 5u);

  const std::string csv = campaign::fleet_to_csv(agg);
  EXPECT_NE(csv.find("throughput_p50,2/5"), std::string::npos);
  EXPECT_NE(csv.find("\"blame.A_to_B.rs0\",100"), std::string::npos);
}

TEST(Fleet, PercentilesByteIdenticalAcrossWorkerThreadCounts) {
  // The acceptance bar: fold a probe campaign's per-job windows into the
  // fleet distributions at 1, 2 and 8 worker threads — the JSON report
  // (percentiles, histograms, blame-by-culprit) must be byte-identical.
  const auto jobs = campaign::make_probe_campaign(24);
  std::string golden_json;
  std::string golden_csv;
  for (unsigned threads : {1u, 2u, 8u}) {
    campaign::EngineOptions opts;
    opts.threads = threads;
    opts.base_seed = 7;
    opts.cycle_budget = 1u << 16;
    const auto results = campaign::Engine(opts).run(jobs);
    const auto agg = campaign::aggregate(results);
    const std::string json = campaign::to_json(agg).dump(2);
    const std::string csv =
        campaign::fleet_to_csv(agg) + campaign::to_csv(results);
    if (golden_json.empty()) {
      golden_json = json;
      golden_csv = csv;
      // Sanity: the fleet section actually carries data.
      EXPECT_NE(json.find("\"fleet\""), std::string::npos);
      EXPECT_NE(json.find("\"throughput_percentiles\""), std::string::npos);
    } else {
      EXPECT_EQ(json, golden_json) << "threads=" << threads;
      EXPECT_EQ(csv, golden_csv) << "threads=" << threads;
    }
  }
}

// ---- bench regression gate ---------------------------------------------

Json bench_doc(const char* bench, double mcps, double seconds,
               std::uint64_t cycles) {
  return Json::object()
      .set("schema", "liplib.bench/1")
      .set("bench", bench)
      .set("records", Json::array().push(Json::object()
                                             .set("config", "hot loop")
                                             .set("cycles", cycles)
                                             .set("seconds", seconds)
                                             .set("mcycles_per_s", mcps)));
}

TEST(BenchDiff, PassesIdenticalFiles) {
  const Json doc = bench_doc("probe", 12.5, 1.0, 100000);
  const auto diff = telemetry::bench_diff(doc, doc);
  EXPECT_FALSE(diff.has_regression());
  EXPECT_EQ(diff.exit_code(), 0);
  EXPECT_EQ(diff.improvements(), 0u);
  // cycles is informational, seconds and mcycles_per_s are gated.
  std::size_t gated = 0;
  for (const auto& d : diff.deltas) {
    if (d.cls != telemetry::DeltaClass::kInfo) ++gated;
  }
  EXPECT_EQ(gated, 2u);
}

TEST(BenchDiff, FlagsInjectedTenPercentRegression) {
  const Json oldb = bench_doc("probe", 100.0, 1.0, 100000);
  // 12% throughput drop: beyond the default 10% threshold.
  const Json newb = bench_doc("probe", 88.0, 1.0, 100000);
  const auto diff = telemetry::bench_diff(oldb, newb);
  ASSERT_TRUE(diff.has_regression());
  EXPECT_EQ(diff.exit_code(), 1);
  bool found = false;
  for (const auto& d : diff.deltas) {
    if (d.field == "mcycles_per_s") {
      found = true;
      EXPECT_TRUE(d.regression);
      EXPECT_NEAR(d.change_pct, -12.0, 1e-9);
      EXPECT_EQ(d.cls, telemetry::DeltaClass::kHigherBetter);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(diff.to_text().find("REGRESSION"), std::string::npos);

  // The same delta passes under a 20% threshold (noise-aware gating).
  telemetry::BenchDiffOptions loose;
  loose.threshold_pct = 20.0;
  EXPECT_FALSE(telemetry::bench_diff(oldb, newb, loose).has_regression());
}

TEST(BenchDiff, LowerIsBetterFieldsGateTheOtherWay) {
  const Json oldb = bench_doc("probe", 100.0, 1.0, 100000);
  const Json slower = bench_doc("probe", 100.0, 1.2, 100000);
  EXPECT_TRUE(telemetry::bench_diff(oldb, slower).has_regression());
  const Json faster = bench_doc("probe", 100.0, 0.8, 100000);
  const auto diff = telemetry::bench_diff(oldb, faster);
  EXPECT_FALSE(diff.has_regression());
  EXPECT_EQ(diff.improvements(), 1u);
}

TEST(BenchDiff, StructuralAsymmetriesAreNotedNotGated) {
  Json oldb = bench_doc("probe", 100.0, 1.0, 100000);
  Json newb = bench_doc("probe", 100.0, 1.0, 100000);
  newb.find("records");  // (lookup only; mutation below via rebuild)
  Json extra = Json::object()
                   .set("schema", "liplib.bench/1")
                   .set("bench", "probe")
                   .set("records",
                        Json::array().push(
                            Json::object().set("config", "other case").set(
                                "seconds", 2.0)));
  const auto diff = telemetry::bench_diff(oldb, extra);
  EXPECT_FALSE(diff.has_regression());
  EXPECT_FALSE(diff.notes.empty());
}

TEST(BenchDiff, RejectsMismatchedOrMalformedDocuments) {
  const Json a = bench_doc("probe", 100.0, 1.0, 100000);
  const Json b = bench_doc("campaign", 100.0, 1.0, 100000);
  EXPECT_THROW(telemetry::bench_diff(a, b), ApiError);
  EXPECT_THROW(telemetry::bench_diff(Json::object(), a), ApiError);
  EXPECT_THROW(
      telemetry::bench_diff_files("/nonexistent/old.json",
                                  "/nonexistent/new.json"),
      ApiError);
}

// ---- Json::parse --------------------------------------------------------

TEST(JsonParse, RoundTripsTheRepoDialect) {
  Json doc = Json::object()
                 .set("schema", "liplib.bench/1")
                 .set("neg", -3)
                 .set("big", std::numeric_limits<std::uint64_t>::max())
                 .set("pi", 3.25)
                 .set("flag", true)
                 .set("none", Json())
                 .set("text", "a \"quoted\" line\nwith\ttabs")
                 .set("list", Json::array().push(1).push("two").push(
                          Json::object().set("k", "v")));
  const std::string text = doc.dump(2);
  EXPECT_EQ(Json::parse(text).dump(2), text);
  EXPECT_EQ(Json::parse(doc.dump()).dump(), doc.dump());
}

TEST(JsonParse, HandlesEscapesAndRejectsGarbage) {
  const Json u = Json::parse("\"\\u0041\\u00e9\\n\"");
  EXPECT_EQ(u.as_string(), "A\xc3\xa9\n");
  EXPECT_THROW(Json::parse(""), ApiError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), ApiError);
  EXPECT_THROW(Json::parse("[1, 2"), ApiError);
  EXPECT_THROW(Json::parse("true false"), ApiError);
  EXPECT_THROW(Json::parse("{'a': 1}"), ApiError);
  try {
    Json::parse("[1, @]");
    FAIL() << "expected ApiError";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

}  // namespace
