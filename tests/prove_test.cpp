// liplib::prove: whole-skeleton bounded model checking and k-induction.
//
// The heart of the suite is the three-way differential over the same
// 300-topology corpus the lint cross-check campaign uses: the static
// prover, the LIP006 structural rule and dynamic worst-case screening
// must agree exactly on every instance — a disagreement anywhere is a
// test failure, not a tolerance.  Around it: golden verdicts for the
// paper's figures, scalar-vs-sliced frontier equivalence, counterexample
// replay lockstep with the telemetry watchdog, and the JSON contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "liplib/campaign/campaign.hpp"
#include "liplib/formal/checker.hpp"
#include "liplib/graph/analysis.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/lint/lint.hpp"
#include "liplib/prove/prove.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/rng.hpp"
#include "liplib/telemetry/watchdog.hpp"
#include "liplib/xir/xir.hpp"

using namespace liplib;

namespace {

// The lint cross-check generator's recipe (tests/xir_test.cpp,
// campaign::make_lint_crosscheck_job): random composites whose half
// stations may sit on loops for half the draws.
graph::Topology random_composite(std::uint64_t seed,
                                 std::size_t max_segments = 4) {
  Rng rng(seed);
  const std::size_t segments = 1 + rng.below(max_segments);
  const bool risky = rng.chance(1, 2);
  return graph::make_random_composite(rng, segments, /*allow_half=*/true,
                                      /*allow_half_in_loops=*/risky)
      .topo;
}

// The paper's hazard instance: a two-shell feedback ring where both
// loop stations are half — a combinational stop cycle (LIP006) that
// latches from worst-case occupancy but is safe from reset.
graph::Topology half_ring() {
  return graph::make_ring_with_tap(1, 1, graph::RsKind::kHalf).topo;
}

prove::ProveOptions small_opts() {
  prove::ProveOptions opts;
  opts.max_states = 1u << 16;
  return opts;
}

}  // namespace

TEST(Prove, HalfRingFromResetProvedByReachability) {
  prove::ProveOptions opts = small_opts();
  opts.method = prove::Method::kReachability;
  const auto r = prove::prove(half_ring(), opts);
  EXPECT_EQ(r.verdict, prove::Verdict::kProved);
  EXPECT_EQ(r.method_used, prove::Method::kReachability);
  EXPECT_TRUE(r.closed);
  EXPECT_TRUE(r.env_exhaustive);
  EXPECT_GT(r.states_explored, 0u);
  EXPECT_TRUE(r.token_conservation_ok);
  EXPECT_EQ(r.exit_code(), 0);
}

TEST(Prove, HalfRingFromResetProvedByInduction) {
  prove::ProveOptions opts = small_opts();
  opts.method = prove::Method::kInduction;
  const auto r = prove::prove(half_ring(), opts);
  EXPECT_EQ(r.verdict, prove::Verdict::kProved);
  EXPECT_TRUE(r.induction_closed);
  ASSERT_FALSE(r.certificates.empty());
  for (const auto& c : r.certificates) {
    EXPECT_TRUE(c.holds);
    EXPECT_LT(c.tokens, c.dead_threshold);
  }
}

TEST(Prove, HalfRingWorstCaseCounterexample) {
  prove::ProveOptions opts = small_opts();
  opts.worst_case_occupancy = true;
  const auto r = prove::prove(half_ring(), opts);
  ASSERT_EQ(r.verdict, prove::Verdict::kCounterexample);
  EXPECT_EQ(r.exit_code(), 1);
  ASSERT_TRUE(r.counterexample.has_value());
  const auto& cex = *r.counterexample;
  EXPECT_EQ(cex.steps.size(), cex.depth);
  EXPECT_FALSE(cex.culprit_shells.empty());
  EXPECT_FALSE(cex.culprit_channels.empty());
  EXPECT_TRUE(cex.greedy_reproduces);
  EXPECT_TRUE(r.token_conservation_ok);
  // The saturated all-half cycle's certificate must be the failing one.
  bool saw_failing = false;
  for (const auto& c : r.certificates) {
    if (!c.holds) {
      saw_failing = true;
      EXPECT_EQ(c.full_stations, 0u);
      EXPECT_GE(c.tokens, c.dead_threshold);
    }
  }
  EXPECT_TRUE(saw_failing);
  // The bundle replays to the identical deadlock.
  ASSERT_TRUE(r.postmortem.has_value());
  const auto replayed = telemetry::replay(*r.postmortem);
  EXPECT_TRUE(replayed.reproduced);
}

TEST(Prove, PaperFiguresProved) {
  for (const bool worst_case : {false, true}) {
    for (const auto& gen : {graph::make_fig1(), graph::make_fig2()}) {
      prove::ProveOptions opts = small_opts();
      opts.worst_case_occupancy = worst_case;
      const auto r = prove::prove(gen.topo, opts);
      EXPECT_EQ(r.verdict, prove::Verdict::kProved)
          << "worst_case=" << worst_case;
    }
  }
}

TEST(Prove, InductionClosesWithoutSearch) {
  // Full-station rings stay below the latch threshold even saturated:
  // the certificates alone prove them, no state enumeration at all.
  prove::ProveOptions opts = small_opts();
  opts.method = prove::Method::kInduction;
  opts.worst_case_occupancy = true;
  const auto r = prove::prove(graph::make_fig2().topo, opts);
  EXPECT_EQ(r.verdict, prove::Verdict::kProved);
  EXPECT_TRUE(r.induction_closed);
  EXPECT_EQ(r.states_explored, 0u);
}

TEST(Prove, StrictPolicyInductionIsUnknown) {
  prove::ProveOptions opts = small_opts();
  opts.method = prove::Method::kInduction;
  opts.skeleton.policy = lip::StopPolicy::kCarloniStrict;
  const auto r = prove::prove(half_ring(), opts);
  EXPECT_EQ(r.verdict, prove::Verdict::kUnknown);
  EXPECT_EQ(r.exit_code(), 2);
  EXPECT_FALSE(r.note.empty());
}

TEST(Prove, NonExhaustiveEnvironmentCannotProveBySearch) {
  prove::ProveOptions opts = small_opts();
  opts.method = prove::Method::kReachability;
  opts.max_env_sinks = 0;  // force the {greedy, all-stop} pair
  const auto r = prove::prove(half_ring(), opts);
  EXPECT_FALSE(r.env_exhaustive);
  EXPECT_EQ(r.verdict, prove::Verdict::kUnknown);
  // ... but the certificates quantify over every environment, so
  // induction still closes the same design.
  opts.method = prove::Method::kInduction;
  const auto ri = prove::prove(half_ring(), opts);
  EXPECT_EQ(ri.verdict, prove::Verdict::kProved);
}

TEST(Prove, SkeletonModelMatchesScreeningEnvironment) {
  const auto topo = half_ring();
  const auto model = prove::make_skeleton_model(topo, small_opts());
  EXPECT_EQ(model->num_env_choices(), 2u);  // one sink
  EXPECT_TRUE(model->env_exhaustive());
  const auto succs = model->successors(model->initial());
  ASSERT_EQ(succs.size(), 2u);
  EXPECT_EQ(succs[0].choice, "sinks_stopped=0");
  EXPECT_EQ(succs[1].choice, "sinks_stopped=1");
}

TEST(Prove, ScalarAndSlicedFrontiersAgree) {
  for (std::uint64_t i = 0; i < 40; ++i) {
    const auto topo = random_composite(campaign::job_seed(23, i));
    for (const bool worst_case : {false, true}) {
      prove::ProveOptions opts = small_opts();
      opts.method = prove::Method::kReachability;
      opts.max_states = 1u << 13;
      opts.worst_case_occupancy = worst_case;
      opts.sliced_frontier = true;
      const auto sliced = prove::prove(topo, opts);
      opts.sliced_frontier = false;
      const auto scalar = prove::prove(topo, opts);
      ASSERT_EQ(sliced.verdict, scalar.verdict)
          << "seed " << i << " worst_case=" << worst_case;
      EXPECT_EQ(sliced.closed, scalar.closed);
      if (sliced.closed && scalar.closed) {
        EXPECT_EQ(sliced.states_explored, scalar.states_explored);
        EXPECT_EQ(sliced.transitions, scalar.transitions);
      }
      if (sliced.verdict == prove::Verdict::kCounterexample) {
        // BFS on both sides: counterexample depths are minimal, so equal.
        EXPECT_EQ(sliced.counterexample->depth, scalar.counterexample->depth);
      }
    }
  }
}

// The tentpole cross-check: static prover vs LIP006 vs dynamic
// worst-case screening over 300 random composites.  Exact agreement.
TEST(Prove, ThreeWayCrossCheck300) {
  std::size_t deadlocks = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto topo = random_composite(campaign::job_seed(7, i));

    lint::Options structural;
    structural.structural_only = true;
    const bool hazard = lint::run_lint(topo, structural).has_rule("LIP006");

    skeleton::ScreeningOptions wc;
    wc.worst_case_occupancy = true;
    const auto screened = xir::screen_for_deadlock(topo, wc, 1u << 16);
    ASSERT_TRUE(screened.ran_to_steady_state) << "seed " << i;

    prove::ProveOptions opts;
    opts.worst_case_occupancy = true;
    opts.max_states = 1u << 14;  // kAuto falls back to induction past this
    const auto proved = prove::prove(topo, opts);
    ASSERT_NE(proved.verdict, prove::Verdict::kUnknown) << "seed " << i;

    const bool cex = proved.verdict == prove::Verdict::kCounterexample;
    EXPECT_EQ(cex, hazard) << "prove vs lint disagree on seed " << i;
    EXPECT_EQ(cex, screened.deadlock_found)
        << "prove vs screening disagree on seed " << i;
    EXPECT_TRUE(proved.token_conservation_ok) << "seed " << i;
    if (cex) ++deadlocks;
  }
  // The corpus exercises both verdicts (half the draws allow half
  // stations on loops).
  EXPECT_GT(deadlocks, 20u);
  EXPECT_LT(deadlocks, 280u);
}

// Satellite: every deadlocking topology's counterexample replays in the
// simulator to the identical deadlock — same trip cycle as a direct
// watchdog run, and the prover's culprit cycle matches the watchdog's
// blame histogram.
TEST(Prove, CounterexampleReplaysLockstepWithWatchdog) {
  std::size_t checked = 0;
  for (std::uint64_t i = 0; i < 300 && checked < 12; ++i) {
    const auto topo = random_composite(campaign::job_seed(7, i));
    prove::ProveOptions opts;
    opts.worst_case_occupancy = true;
    opts.max_states = 1u << 14;
    const auto r = prove::prove(topo, opts);
    if (r.verdict != prove::Verdict::kCounterexample) continue;
    ++checked;
    ASSERT_TRUE(r.counterexample.has_value()) << "seed " << i;
    ASSERT_TRUE(r.counterexample->greedy_reproduces) << "seed " << i;
    ASSERT_TRUE(r.postmortem.has_value()) << "seed " << i;
    const auto& pm = *r.postmortem;

    // Direct watchdog run of the same design, same regime.
    xir::ScalarEngine eng(topo, opts.skeleton);
    eng.saturate_stations();
    telemetry::WatchdogOptions wopts;
    wopts.worst_case_occupancy = true;
    telemetry::Watchdog dog(wopts);
    dog.attach(eng);
    telemetry::run_guarded(eng, dog, 1u << 16);
    ASSERT_TRUE(dog.tripped()) << "seed " << i;
    EXPECT_EQ(pm.trip_cycle, dog.trip_cycle()) << "seed " << i;
    EXPECT_EQ(pm.no_progress_since, dog.no_progress_since()) << "seed " << i;
    EXPECT_EQ(pm.reason, dog.reason()) << "seed " << i;

    // The bundle replays to the identical cycle indices.
    EXPECT_TRUE(telemetry::replay(pm).reproduced) << "seed " << i;

    // The prover's culprit shells appear in the watchdog's blame
    // histogram: a shell frozen on the latched cycle is a blame victim.
    ASSERT_FALSE(r.counterexample->culprit_shells.empty()) << "seed " << i;
    bool culprit_blamed = false;
    for (const auto& b : pm.blame) {
      for (graph::NodeId n : r.counterexample->culprit_shells) {
        if (b.victim == topo.node(n).name || b.culprit == topo.node(n).name) {
          culprit_blamed = true;
        }
      }
    }
    EXPECT_TRUE(culprit_blamed) << "seed " << i;
  }
  EXPECT_GE(checked, 5u);
}

// Throughput-bound consistency: a proved-live design's measured steady
// state never beats the analytic cycle bound the prover reports.
TEST(Prove, ThroughputBoundConsistent) {
  for (std::uint64_t i = 0; i < 60; ++i) {
    const auto topo = random_composite(campaign::job_seed(7, i));
    prove::ProveOptions opts;
    opts.max_states = 1u << 14;
    const auto r = prove::prove(topo, opts);
    if (r.verdict != prove::Verdict::kProved) continue;
    const auto screened = xir::screen_for_deadlock(topo, {}, 1u << 16);
    if (!screened.ran_to_steady_state || screened.deadlock_found) continue;
    EXPECT_LE(screened.min_throughput, r.cycle_bound) << "seed " << i;
    EXPECT_EQ(r.cycle_bound, graph::predict_throughput(topo).cycle_bound);
  }
}

TEST(Prove, CertificatesMatchCycleEnumeration) {
  const auto topo = random_composite(campaign::job_seed(7, 3));
  const auto cycles = graph::enumerate_cycles(topo);
  prove::ProveOptions opts;
  const auto certs = prove::cycle_certificates(topo, opts);
  ASSERT_EQ(certs.size(), cycles.size());
  for (const auto& c : certs) {
    EXPECT_EQ(c.shells, c.nodes.size());
    EXPECT_EQ(c.channels.size(), c.nodes.size());
    EXPECT_EQ(c.dead_threshold, c.shells + c.half_stations +
                                    2 * c.full_stations);
    EXPECT_EQ(c.tokens, c.shells);  // from reset
  }
  prove::ProveOptions wc;
  wc.worst_case_occupancy = true;
  for (const auto& c : prove::cycle_certificates(topo, wc)) {
    EXPECT_EQ(c.tokens, c.shells + c.half_stations + c.full_stations);
    // Worst-case certificate failure is exactly the LIP006 condition:
    // an all-half cycle (threshold == tokens); any full station adds
    // slack.
    EXPECT_EQ(!c.holds, c.full_stations == 0);
  }
}

TEST(Prove, BmcFindsShallowCounterexample) {
  prove::ProveOptions opts = small_opts();
  opts.method = prove::Method::kBmc;
  opts.worst_case_occupancy = true;
  opts.depth = 4;
  const auto r = prove::prove(half_ring(), opts);
  EXPECT_EQ(r.verdict, prove::Verdict::kCounterexample);
  EXPECT_LE(r.counterexample->depth, 4u);
}

TEST(Prove, JsonRenderingContract) {
  const auto topo = half_ring();
  prove::ProveOptions opts = small_opts();
  opts.worst_case_occupancy = true;
  const auto r = prove::prove(topo, opts);
  const Json j = r.to_json(topo);
  EXPECT_EQ(j.find("schema")->as_string(), "liplib.prove/1");
  EXPECT_EQ(j.find("verdict")->as_string(), "counterexample");
  EXPECT_EQ(j.find("exit_code")->as_uint(), 1u);
  EXPECT_TRUE(j.find("certificates")->is_array());
  const Json* cex = j.find("counterexample");
  ASSERT_NE(cex, nullptr);
  EXPECT_EQ(cex->find("steps")->size(), r.counterexample->depth);
  ASSERT_NE(cex->find("culprit_shells"), nullptr);
  const Json& culprit = cex->find("culprit_shells")->at(0);
  EXPECT_NE(culprit.find("id"), nullptr);
  EXPECT_NE(culprit.find("name"), nullptr);
  // The embedded bundle is a valid liplib.postmortem/1 document.
  const Json* pm = j.find("postmortem");
  ASSERT_NE(pm, nullptr);
  const auto decoded = telemetry::PostMortem::from_json(*pm);
  EXPECT_EQ(decoded.trip_cycle, r.postmortem->trip_cycle);

  // Round-trip of the parsed document preserves the verdict fields.
  const Json parsed = Json::parse(j.dump(2));
  EXPECT_EQ(parsed.find("verdict")->as_string(), "counterexample");

  const auto text = r.to_string(topo);
  EXPECT_NE(text.find("counterexample"), std::string::npos);
  EXPECT_NE(text.find("deadlock"), std::string::npos);
}

TEST(Prove, MethodNamesRoundTrip) {
  for (prove::Method m :
       {prove::Method::kAuto, prove::Method::kReachability,
        prove::Method::kBmc, prove::Method::kInduction}) {
    prove::Method back;
    ASSERT_TRUE(prove::parse_method(prove::method_name(m), &back));
    EXPECT_EQ(back, m);
  }
  prove::Method out;
  EXPECT_FALSE(prove::parse_method("bogus", &out));
  EXPECT_STREQ(prove::verdict_name(prove::Verdict::kProved), "proved");
  EXPECT_STREQ(prove::verdict_name(prove::Verdict::kCounterexample),
               "counterexample");
  EXPECT_STREQ(prove::verdict_name(prove::Verdict::kUnknown), "unknown");
}

TEST(Prove, RejectsQueuedShells) {
  prove::ProveOptions opts;
  opts.skeleton.input_queue_depth = 2;
  EXPECT_THROW(prove::prove(half_ring(), opts), ApiError);
}
