// Behavioural netlists: pearl/environment specs and full-design parsing.

#include <gtest/gtest.h>

#include "liplib/lip/steady_state.hpp"
#include "liplib/pearls/design_io.hpp"

namespace {

using namespace liplib;

TEST(DesignIo, PearlSpecsConstructAndCheckArity) {
  EXPECT_EQ(pearls::pearl_from_spec("add_const(5)", 1, 1)->num_inputs(), 1u);
  EXPECT_EQ(pearls::pearl_from_spec("fir(1,2,3)", 1, 1)->num_outputs(), 1u);
  EXPECT_EQ(pearls::pearl_from_spec("butterfly(3,4)", 2, 2)->num_outputs(),
            2u);
  EXPECT_EQ(pearls::pearl_from_spec("generator(10,5)", 0, 1)->num_inputs(),
            0u);
  // Default by arity when unannotated.
  EXPECT_EQ(pearls::pearl_from_spec("", 2, 1)->num_inputs(), 2u);
  // Arity mismatch and unknown names are rejected.
  EXPECT_THROW(pearls::pearl_from_spec("adder", 1, 1), ApiError);
  EXPECT_THROW(pearls::pearl_from_spec("warp_drive", 1, 1), ApiError);
  EXPECT_THROW(pearls::pearl_from_spec("fir", 1, 1), ApiError);
  EXPECT_THROW(pearls::pearl_from_spec("delay(1,2,3)", 1, 1), ApiError);
  EXPECT_THROW(pearls::pearl_from_spec("fir(1,2x)", 1, 1), ApiError);
  EXPECT_THROW(pearls::pearl_from_spec("fir(1,2", 1, 1), ApiError);
}

TEST(DesignIo, SpecValuesAreApplied) {
  auto p = pearls::pearl_from_spec("add_const(7,3)", 1, 1);
  EXPECT_EQ(p->initial_output(0), 3u);
  const std::uint64_t in = 10;
  std::uint64_t out = 0;
  p->step(std::span<const std::uint64_t>(&in, 1),
          std::span<std::uint64_t>(&out, 1));
  EXPECT_EQ(out, 17u);
}

TEST(DesignIo, EnvironmentSpecs) {
  const auto cyc = pearls::source_from_spec("cyclic(5,6)");
  EXPECT_EQ(cyc.value(0), 5u);
  EXPECT_EQ(cyc.value(3), 6u);
  const auto per = pearls::sink_from_spec("periodic(3,1)");
  EXPECT_TRUE(per.stop(0));
  EXPECT_FALSE(per.stop(1));
  EXPECT_TRUE(per.stop(2));
  const auto script = pearls::sink_from_spec("script(0,1)");
  EXPECT_FALSE(script.stop(0));
  EXPECT_TRUE(script.stop(1));
  EXPECT_THROW(pearls::source_from_spec("noise"), ApiError);
  EXPECT_THROW(pearls::sink_from_spec("periodic(0)"), ApiError);
}

TEST(DesignIo, ParsesAndRunsACompleteDesign) {
  const char* text = R"(
source  cam        counter
process fir0 1 1   fir(1,2,1)
process acc  1 1   accumulator
sink    out        periodic(1)
channel cam.0 -> fir0.0
channel fir0.0 -> acc.0 : F H
channel acc.0 -> out.0
)";
  auto design = pearls::parse_design_string(text);
  auto sys = design.instantiate();
  sys->run(100);
  // periodic(1) with phase 0 never stops: full rate.
  EXPECT_GT(sys->sink_count(3), 80u);
  // Behaviour is the annotated one: latency equivalence vs the same
  // pearls in the reference holds by construction.
  const auto report = lip::check_latency_equivalence(design, {}, 200);
  EXPECT_TRUE(report.ok) << report.detail;
}

TEST(DesignIo, ReportsNodeContextOnBadSpec) {
  const char* text = R"(
source s
process p 1 1 fir
sink o
channel s.0 -> p.0
channel p.0 -> o.0
)";
  try {
    pearls::parse_design_string(text);
    FAIL();
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("node 'p'"), std::string::npos)
        << e.what();
  }
}

TEST(DesignIo, AnnotatedNetlistKeepsTokens) {
  const auto parsed = graph::parse_netlist_annotated_string(
      "source s sparse(1,1,2)\nprocess p 1 1\nsink o\n"
      "channel s.0 -> p.0\nchannel p.0 -> o.0\n");
  ASSERT_EQ(parsed.node_annotation.size(), 3u);
  EXPECT_EQ(parsed.node_annotation[0], "sparse(1,1,2)");
  EXPECT_EQ(parsed.node_annotation[1], "");
}

}  // namespace
