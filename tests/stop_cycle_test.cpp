// Static stop-cycle analysis vs dynamic worst-case screening: a design
// has a latent stop latch exactly when find_stop_cycles() is nonempty.

#include <gtest/gtest.h>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/skeleton/skeleton.hpp"

namespace {

using namespace liplib;
using graph::RsKind;

TEST(StopCycles, HalfRingHasOne) {
  auto gen = graph::make_closed_ring({1, 1}, RsKind::kHalf);
  const auto cycles = graph::find_stop_cycles(gen.topo);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].nodes.size(), 2u);
  EXPECT_EQ(cycles[0].half_stations, 2u);
}

TEST(StopCycles, FullRingHasNone) {
  auto gen = graph::make_closed_ring({1, 1}, RsKind::kFull);
  EXPECT_TRUE(graph::find_stop_cycles(gen.topo).empty());
}

TEST(StopCycles, OneFullStationGroundsTheLoop) {
  graph::Topology t;
  const auto a = t.add_process("A", 1, 1);
  const auto b = t.add_process("B", 1, 1);
  t.connect({a, 0}, {b, 0}, {RsKind::kHalf});
  t.connect({b, 0}, {a, 0}, {RsKind::kFull});
  EXPECT_TRUE(graph::find_stop_cycles(t).empty());
}

TEST(StopCycles, FeedforwardHasNone) {
  auto gen = graph::make_reconvergent(1, 2, 1, RsKind::kHalf);
  EXPECT_TRUE(graph::find_stop_cycles(gen.topo).empty());
}

TEST(StopCycles, StaticAnalysisMatchesWorstCaseScreening) {
  // Over random composites (half stations allowed in loops), the static
  // verdict "has a combinational stop cycle" must coincide with the
  // dynamic verdict "deadlocks under worst-case occupancy, pessimistic".
  Rng rng(60601);
  std::size_t latched = 0, clean = 0;
  for (int i = 0; i < 24; ++i) {
    auto gen = graph::make_random_composite(rng, 1 + i % 4, true,
                                            /*allow_half_in_loops=*/true);
    const bool has_latch = !graph::find_stop_cycles(gen.topo).empty();
    skeleton::ScreeningOptions wc;
    wc.worst_case_occupancy = true;
    const auto verdict = skeleton::screen_for_deadlock(gen.topo, wc);
    ASSERT_TRUE(verdict.ran_to_steady_state);
    EXPECT_EQ(verdict.deadlock_found, has_latch) << "iteration " << i;
    (has_latch ? latched : clean) += 1;
  }
  // The sweep must have exercised both sides of the equivalence.
  EXPECT_GT(latched, 0u);
  EXPECT_GT(clean, 0u);
}

}  // namespace
