// Shared helpers for the liplib test suite.

#pragma once

#include <memory>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/pearls/pearls.hpp"

namespace liplib::testutil {

/// Default pearl for a node arity: identity (1→1), adder (2→1),
/// fork (1→2), butterfly (2→2), generator (0→1).
inline std::unique_ptr<lip::Pearl> default_pearl(std::size_t num_in,
                                                 std::size_t num_out) {
  if (num_in == 1 && num_out == 1) return pearls::make_identity();
  if (num_in == 2 && num_out == 1) return pearls::make_adder();
  if (num_in == 1 && num_out == 2) return pearls::make_fork2();
  if (num_in == 2 && num_out == 2) return pearls::make_butterfly();
  if (num_in == 0 && num_out == 1) return pearls::make_generator(0, 1);
  throw ApiError("no default pearl for arity " + std::to_string(num_in) +
                 "->" + std::to_string(num_out));
}

/// Wraps a generated topology into a Design with default pearls bound to
/// every process node.
inline lip::Design make_design(graph::Generated g) {
  lip::Design d(std::move(g.topo));
  for (graph::NodeId p : g.processes) {
    const auto& node = d.topology().node(p);
    d.set_pearl(p, default_pearl(node.num_inputs, node.num_outputs));
  }
  return d;
}

}  // namespace liplib::testutil
