// The skeleton simulator must reproduce the protocol dynamics of the
// full-data simulator exactly (same throughputs, transient and period),
// while carrying no data at all.

#include <gtest/gtest.h>

#include "liplib/graph/generators.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using lip::StopPolicy;
using lip::StopResolution;

/// Runs both simulators to steady state and compares the protocol-level
/// results.
void expect_agreement(graph::Generated gen, StopPolicy policy,
                      StopResolution res = StopResolution::kPessimistic) {
  skeleton::Skeleton sk(gen.topo, {policy, res});
  const auto sk_result = sk.analyze();
  ASSERT_TRUE(sk_result.found);

  auto d = testutil::make_design(std::move(gen));
  auto sys = d.instantiate({policy, res});
  const auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);

  EXPECT_EQ(sk_result.transient, ss.transient);
  EXPECT_EQ(sk_result.period, ss.period);
  EXPECT_EQ(sk_result.deadlocked, ss.deadlocked);
  ASSERT_EQ(sk_result.shell_throughput.size(), ss.shell_throughput.size());
  for (std::size_t i = 0; i < ss.shell_throughput.size(); ++i) {
    EXPECT_EQ(sk_result.shell_throughput[i], ss.shell_throughput[i])
        << "shell " << i;
  }
}

TEST(Skeleton, AgreesOnPipeline) {
  for (auto pol : {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    expect_agreement(graph::make_pipeline(4, 2), pol);
  }
}

TEST(Skeleton, AgreesOnFig1) {
  for (auto pol : {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    expect_agreement(graph::make_fig1(), pol);
  }
}

TEST(Skeleton, AgreesOnFig2) {
  for (auto pol : {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    expect_agreement(graph::make_fig2(), pol);
  }
}

TEST(Skeleton, AgreesOnRings) {
  expect_agreement(graph::make_closed_ring({2, 1, 2}),
                   StopPolicy::kCasuDiscardOnVoid);
  expect_agreement(graph::make_closed_ring({1, 1}, graph::RsKind::kHalf),
                   StopPolicy::kCasuDiscardOnVoid);
  expect_agreement(graph::make_closed_ring({1, 1}, graph::RsKind::kHalf),
                   StopPolicy::kCasuDiscardOnVoid, StopResolution::kOptimistic);
}

TEST(Skeleton, AgreesOnLoopChains) {
  expect_agreement(graph::make_loop_chain({{1, 2}, {2, 3}}),
                   StopPolicy::kCasuDiscardOnVoid);
}

TEST(Skeleton, AgreesOnRandomFeedforward) {
  Rng rng(2026);
  for (int i = 0; i < 8; ++i) {
    auto gen = graph::make_random_feedforward(rng, 5, 2, true);
    for (auto pol :
         {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
      expect_agreement(gen, pol);
    }
  }
}

TEST(Skeleton, SinkPatternsThrottleThroughput) {
  auto gen = graph::make_pipeline(2, 1);
  skeleton::Skeleton sk(gen.topo);
  // Consume only one token every 4 cycles.
  sk.set_sink_pattern(gen.sinks[0], {false, true, true, true});
  const auto result = sk.analyze(1 << 16, /*env_period=*/4);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.system_throughput(), Rational(1, 4));
}

TEST(Skeleton, FiresAccessorCounts) {
  auto gen = graph::make_pipeline(1, 1);
  skeleton::Skeleton sk(gen.topo);
  sk.run(20);
  // After the 2-cycle fill the single shell fires every cycle.
  EXPECT_GE(sk.fires(gen.processes[0]), 17u);
  EXPECT_LE(sk.fires(gen.processes[0]), 20u);
}

TEST(Skeleton, StateSignatureIsCompact) {
  auto gen = graph::make_loop_chain({{2, 3}, {1, 2}});
  skeleton::Skeleton sk(gen.topo);
  // A few bytes per block, not per datum.
  EXPECT_LT(sk.state_signature().size(), 64u);
}

}  // namespace
