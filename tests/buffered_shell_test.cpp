// The Carloni-style buffered shell (input FIFOs, no mandatory relay
// station) vs the paper's simplified shell: both must be safe and
// latency equivalent; they differ in cost and latency, which is the
// "implementation issues" trade the paper discusses.

#include <gtest/gtest.h>

#include "liplib/graph/generators.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/steady_state.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using graph::RsKind;

/// A shell-to-shell chain with NO relay stations at all.
graph::Topology bare_chain(std::size_t shells) {
  graph::Topology t;
  auto prev = t.add_source("src");
  for (std::size_t i = 0; i < shells; ++i) {
    const auto p = t.add_process("P" + std::to_string(i), 1, 1);
    t.connect({prev, 0}, {p, 0});
    prev = p;
  }
  t.connect({prev, 0}, {t.add_sink("out"), 0});
  return t;
}

TEST(BufferedShell, StationlessChainRejectedWithoutQueues) {
  const auto t = bare_chain(2);
  EXPECT_THROW(lip::System sys(t, {}), ApiError);
}

TEST(BufferedShell, StationlessChainAcceptedWithQueues) {
  const auto t = bare_chain(2);
  lip::SystemOptions opts;
  opts.input_queue_depth = 1;
  lip::System sys(t, opts);
  sys.bind_pearl(1, pearls::make_identity());
  sys.bind_pearl(2, pearls::make_identity());
  EXPECT_NO_THROW(sys.run(50));
  EXPECT_GT(sys.sink_count(3), 30u);
}

TEST(BufferedShell, DeliversInOrderAtFullThroughput) {
  for (std::size_t depth : {1u, 2u, 3u}) {
    const auto t = bare_chain(3);
    lip::Design d(t);
    for (graph::NodeId v = 1; v <= 3; ++v) {
      d.set_pearl(v, pearls::make_identity());
    }
    lip::SystemOptions opts;
    opts.input_queue_depth = depth;
    opts.hold_monitor = true;
    auto sys = d.instantiate(opts);
    const auto ss = lip::measure_steady_state(*sys);
    ASSERT_TRUE(ss.found) << "depth " << depth;
    EXPECT_EQ(ss.system_throughput(), Rational(1)) << "depth " << depth;
  }
}

TEST(BufferedShell, LatencyEquivalentUnderJitter) {
  const auto t = bare_chain(3);
  lip::Design d(t);
  d.set_pearl(1, pearls::make_accumulator());
  d.set_pearl(2, pearls::make_fir({2, 1}));
  d.set_pearl(3, pearls::make_bit_mixer());
  d.set_source(0, lip::SourceBehavior::sparse_counter(5, 1, 2));
  d.set_sink(4, lip::SinkBehavior::random_stop(6, 1, 3));
  for (std::size_t depth : {1u, 2u}) {
    lip::SystemOptions opts;
    opts.input_queue_depth = depth;
    opts.hold_monitor = true;
    const auto report = lip::check_latency_equivalence(d, opts, 400);
    EXPECT_TRUE(report.ok) << report.detail;
  }
}

TEST(BufferedShell, WorksWithRelayStationsToo) {
  // Queued shells compose with relay-station channels unchanged.
  auto gen = graph::make_reconvergent(1, 1, 1);  // fig1 shape
  auto d = testutil::make_design(std::move(gen));
  lip::SystemOptions opts;
  opts.input_queue_depth = 2;
  const auto report = lip::check_latency_equivalence(d, opts, 300);
  EXPECT_TRUE(report.ok) << report.detail;
}

TEST(BufferedShell, QueuedLoopKeepsTokenCount) {
  // A station-less ring of queued shells circulates exactly the shells'
  // initial tokens; throughput is S/(S + queue latency) in the ring.
  graph::Topology t;
  const auto a = t.add_process("A", 1, 1);
  const auto b = t.add_process("B", 1, 1);
  t.connect({a, 0}, {b, 0});
  t.connect({b, 0}, {a, 0});
  lip::Design d(t);
  d.set_pearl(a, pearls::make_identity());
  d.set_pearl(b, pearls::make_add_const(1));
  lip::SystemOptions opts;
  opts.input_queue_depth = 1;
  auto sys = d.instantiate(opts);
  const auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);
  EXPECT_FALSE(ss.deadlocked);
  // Two tokens, four positions (two queue slots + two output registers).
  EXPECT_EQ(ss.system_throughput(), Rational(1, 2));
}

TEST(BufferedShell, QueueDepthSmoothsJitterBetterThanDepthOne) {
  // Deeper queues decouple a jittery producer from a jittery consumer;
  // tokens delivered in a fixed horizon must not decrease with depth.
  auto run = [](std::size_t depth) {
    const auto t = bare_chain(4);
    lip::Design d(t);
    for (graph::NodeId v = 1; v <= 4; ++v) {
      d.set_pearl(v, pearls::make_identity());
    }
    d.set_source(0, lip::SourceBehavior::sparse_counter(11, 2, 3));
    d.set_sink(5, lip::SinkBehavior::random_stop(12, 1, 3));
    lip::SystemOptions opts;
    opts.input_queue_depth = depth;
    auto sys = d.instantiate(opts);
    sys->run(2000);
    return sys->sink_count(5);
  };
  const auto d1 = run(1);
  const auto d3 = run(3);
  EXPECT_GE(d3 + 20, d1);  // allow small stochastic slack either way
}

TEST(BufferedShell, SkeletonAgreesWithSystem) {
  // The control-plane skeleton mirrors the queued-shell semantics too.
  for (std::size_t depth : {1u, 2u}) {
    const auto t = bare_chain(3);
    skeleton::Skeleton sk(t, {lip::StopPolicy::kCasuDiscardOnVoid,
                              lip::StopResolution::kPessimistic, depth});
    const auto sk_result = sk.analyze();
    ASSERT_TRUE(sk_result.found);

    lip::Design d(t);
    for (graph::NodeId v = 1; v <= 3; ++v) {
      d.set_pearl(v, pearls::make_identity());
    }
    lip::SystemOptions opts;
    opts.input_queue_depth = depth;
    auto sys = d.instantiate(opts);
    const auto ss = lip::measure_steady_state(*sys);
    ASSERT_TRUE(ss.found);
    EXPECT_EQ(sk_result.transient, ss.transient) << "depth " << depth;
    EXPECT_EQ(sk_result.period, ss.period) << "depth " << depth;
    EXPECT_EQ(sk_result.system_throughput(), ss.system_throughput())
        << "depth " << depth;
  }
}

TEST(BufferedShell, SkeletonQueuedRingMatchesSystem) {
  graph::Topology t;
  const auto a = t.add_process("A", 1, 1);
  const auto b = t.add_process("B", 1, 1);
  t.connect({a, 0}, {b, 0});
  t.connect({b, 0}, {a, 0});
  skeleton::Skeleton sk(t, {lip::StopPolicy::kCasuDiscardOnVoid,
                            lip::StopResolution::kPessimistic, 1});
  const auto r = sk.analyze();
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.system_throughput(), Rational(1, 2));
  EXPECT_FALSE(r.deadlocked);
}

}  // namespace
