// Property-based latency-equivalence testing: for random topologies,
// random pearls and adversarial environments, the LID's valid streams
// must be prefixes of the zero-latency reference streams — the paper's
// safety definition — under every policy/resolution combination.

#include <gtest/gtest.h>

#include "liplib/graph/equalize.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/pearls/pearls.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;
using lip::StopPolicy;
using lip::StopResolution;

struct EquivCase {
  std::uint64_t seed;
  StopPolicy policy;
  bool jittery_env;
};

class RandomEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(RandomEquivalence, LidMatchesReference) {
  const auto p = GetParam();
  Rng rng(p.seed);
  auto gen = graph::make_random_feedforward(rng, 6, 3, /*allow_half=*/true);
  lip::Design d(std::move(gen.topo));
  // Random unary pearls on 1-input nodes, adders on joins.
  const auto& names = pearls::unary_pearl_names();
  for (graph::NodeId proc : gen.processes) {
    const auto& node = d.topology().node(proc);
    if (node.num_inputs == 1) {
      const auto& name = names[rng.below(names.size())];
      d.set_pearl(proc, pearls::make_by_name(name, rng.next_u64()));
    } else {
      d.set_pearl(proc, pearls::make_adder(rng.next_u64() & 0xff));
    }
  }
  if (p.jittery_env) {
    for (auto s : gen.sources) {
      d.set_source(s, lip::SourceBehavior::sparse_counter(rng.next_u64(), 2, 3));
    }
    for (auto s : gen.sinks) {
      d.set_sink(s, lip::SinkBehavior::random_stop(rng.next_u64(), 1, 4));
    }
  }
  const auto report = lip::check_latency_equivalence(
      d, {p.policy, StopResolution::kPessimistic, /*hold_monitor=*/true},
      400);
  EXPECT_TRUE(report.ok) << report.detail;
  EXPECT_GT(report.tokens_checked, 0u);
}

std::vector<EquivCase> equivalence_cases() {
  std::vector<EquivCase> cases;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (auto pol :
         {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
      for (bool jitter : {false, true}) {
        cases.push_back({seed, pol, jitter});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomEquivalence, ::testing::ValuesIn(equivalence_cases()),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.policy == StopPolicy::kCarloniStrict ? "_strict"
                                                              : "_variant") +
             (info.param.jittery_env ? "_jitter" : "_calm");
    });

TEST(Equivalence, FeedbackLoopsMatchReference) {
  // Rings exercise the initialized-valid shell outputs as circulating
  // tokens; the reference runs the same pearls with ideal wires.
  auto gen = graph::make_ring_with_tap(2, 1);
  lip::Design d(std::move(gen.topo));
  d.set_pearl(gen.processes[0], pearls::make_fork2(3));
  d.set_pearl(gen.processes[1], pearls::make_add_const(1, 5));
  for (auto pol :
       {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    const auto report = lip::check_latency_equivalence(d, {pol}, 300);
    EXPECT_TRUE(report.ok) << report.detail;
    EXPECT_GT(report.tokens_checked, 50u);
  }
}

TEST(Equivalence, LoopChainMatchesReference) {
  auto d = testutil::make_design(graph::make_loop_chain({{1, 2}, {2, 3}}));
  const auto report = lip::check_latency_equivalence(d, {}, 400);
  EXPECT_TRUE(report.ok) << report.detail;
}

TEST(Equivalence, EqualizedDesignStillEquivalent) {
  auto gen = graph::make_reconvergent(1, 2, 2);
  graph::equalize_paths(gen.topo);
  auto d = testutil::make_design(std::move(gen));
  const auto report = lip::check_latency_equivalence(d, {}, 300);
  EXPECT_TRUE(report.ok) << report.detail;
}

TEST(Equivalence, StatefulPearlsMatchReference) {
  // Accumulators make every output depend on the whole input history, so
  // any skipped/duplicated/reordered token would desynchronize the sums.
  auto gen = graph::make_pipeline(3, 2);
  lip::Design d(std::move(gen.topo));
  d.set_pearl(gen.processes[0], pearls::make_accumulator());
  d.set_pearl(gen.processes[1], pearls::make_fir({1, 2, 3}));
  d.set_pearl(gen.processes[2], pearls::make_leaky_integrator(1, 2));
  d.set_sink(gen.sinks[0], lip::SinkBehavior::random_stop(9, 1, 3));
  for (auto pol :
       {StopPolicy::kCarloniStrict, StopPolicy::kCasuDiscardOnVoid}) {
    const auto report = lip::check_latency_equivalence(d, {pol}, 400);
    EXPECT_TRUE(report.ok) << report.detail;
  }
}

}  // namespace
