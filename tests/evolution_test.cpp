// Evolution-trace tests: the steady-state patterns of the paper's two
// figures, cycle by cycle.

#include <gtest/gtest.h>

#include <map>

#include "liplib/lip/evolution.hpp"
#include "liplib/lip/steady_state.hpp"
#include "test_util.hpp"

namespace {

using namespace liplib;

TEST(Evolution, Fig1OutputEmitsOneVoidEveryFiveCycles) {
  // "After the initial transient, the situation becomes periodic, and the
  // output utters an invalid datum every 5 cycles."
  auto d = testutil::make_design(graph::make_fig1());
  auto sys = d.instantiate();
  sys->record_sink_trace(true);
  sys->run(120);
  const auto& trace = sys->sink_cycle_trace(d.topology().nodes().size() - 1);
  // Skip a generous transient prefix, then check the 4-valid/1-void
  // pattern over the rest.
  std::size_t voids = 0;
  const std::size_t start = 20;
  for (std::size_t c = start; c < trace.size(); ++c) {
    if (!trace[c].valid) ++voids;
  }
  const std::size_t window = trace.size() - start;
  EXPECT_EQ(voids, window / 5);
  // Voids are evenly spaced: exactly every 5 cycles.
  std::size_t last_void = 0;
  bool first = true;
  for (std::size_t c = start; c < trace.size(); ++c) {
    if (trace[c].valid) continue;
    if (!first) {
      EXPECT_EQ(c - last_void, 5u);
    }
    last_void = c;
    first = false;
  }
}

TEST(Evolution, Fig2OutputAlternatesValidAndVoid) {
  // S = 2, R = 2 ring: T = 1/2 shows as an alternating valid/void output.
  auto d = testutil::make_design(graph::make_fig2());
  auto sys = d.instantiate();
  sys->record_sink_trace(true);
  sys->run(60);
  const auto& trace = sys->sink_cycle_trace(d.topology().nodes().size() - 1);
  std::size_t valid = 0;
  for (std::size_t c = 20; c < trace.size(); ++c) {
    valid += trace[c].valid ? 1 : 0;
    if (c >= 21) {
      // Strict alternation: never two equal validities in a row.
      EXPECT_NE(trace[c].valid, trace[c - 1].valid) << "cycle " << c;
    }
  }
  EXPECT_EQ(valid, (trace.size() - 20) / 2);
}

TEST(Evolution, TableHasOneRowPerCycleAndStationColumns) {
  auto d = testutil::make_design(graph::make_fig1());
  auto sys = d.instantiate();
  auto table = lip::trace_evolution(*sys, 15);
  EXPECT_EQ(table.row_count(), 15u);
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  // Node columns by name and station columns by channel.
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
  // The renderer stepped the system.
  EXPECT_EQ(sys->cycle(), 15u);
}

TEST(Evolution, StopsAppearDuringFig1Transient) {
  // Fig. 1's dashed arrows: the short branch is stopped periodically.
  auto d = testutil::make_design(graph::make_fig1());
  auto sys = d.instantiate();
  const std::string rendered = lip::render_evolution(*sys, 40);
  EXPECT_NE(rendered.find('!'), std::string::npos);
  EXPECT_NE(rendered.find('n'), std::string::npos);
}

TEST(Evolution, Fig1SteadyPeriodActivityPattern) {
  // Golden activity census over one steady period (paper Fig. 1): in
  // every 5 cycles, the fork A fires 4 times and is stopped once (the
  // dashed arrow on the short branch), B and C each fire 4 times and
  // wait for data once (the travelling void), and the output carries 4
  // valid data and 1 void.
  auto gen = graph::make_fig1();
  auto d = testutil::make_design(gen);
  auto sys = d.instantiate();
  sys->record_sink_trace(true);
  sys->run(20);  // well past the transient
  std::map<graph::NodeId, std::map<lip::ShellActivity, int>> census;
  int out_valid = 0;
  for (int c = 0; c < 5; ++c) {
    sys->step();
    for (auto p : gen.processes) census[p][sys->shell_activity(p)]++;
  }
  const auto& trace = sys->sink_cycle_trace(gen.sinks[0]);
  for (std::size_t c = trace.size() - 5; c < trace.size(); ++c) {
    out_valid += trace[c].valid ? 1 : 0;
  }
  EXPECT_EQ(out_valid, 4);
  for (auto p : gen.processes) {
    EXPECT_EQ(census[p][lip::ShellActivity::kFired], 4)
        << d.topology().node(p).name;
  }
  // A (the fork, 2 output ports) is the one blocked by back pressure.
  EXPECT_EQ(census[gen.fork][lip::ShellActivity::kStoppedOutput], 1);
  for (auto p : gen.processes) {
    if (p == gen.fork) continue;
    EXPECT_EQ(census[p][lip::ShellActivity::kWaitingInput], 1)
        << d.topology().node(p).name;
  }
}

TEST(Evolution, SteadyStatePeriodMatchesTrace) {
  auto d = testutil::make_design(graph::make_fig1());
  auto sys = d.instantiate();
  const auto ss = lip::measure_steady_state(*sys);
  ASSERT_TRUE(ss.found);
  EXPECT_EQ(ss.period, 5u);
  EXPECT_EQ(ss.sink_throughput.at(0), Rational(4, 5));
}

}  // namespace
