#include "liplib/rtl/rtl_system.hpp"

#include <functional>
#include <memory>

#include "liplib/support/check.hpp"
#include "liplib/support/vcd.hpp"

namespace liplib::rtl {

namespace {
constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
}

using sim::Signal;
using sim::SimContext;

/// One hop of a channel: the forward valid/data pair and the backward
/// stop wire, as RTL signals.
struct SegWires {
  Signal<bool>* valid = nullptr;
  Signal<std::uint64_t>* data = nullptr;
  Signal<bool>* stop = nullptr;
};

struct RtlSystem::Impl {
  explicit Impl(const graph::Topology& t, RtlOptions o)
      : topo(t), opts(o), clk(ctx, "clk", 1, 1) {}

  bool strict() const {
    return opts.policy == lip::StopPolicy::kCarloniStrict;
  }

  graph::Topology topo;
  RtlOptions opts;
  SimContext ctx;
  sim::Clock clk;

  std::vector<SegWires> segs;

  struct ShellBlock {
    graph::NodeId node = 0;
    std::unique_ptr<lip::Pearl> pearl;
    std::vector<std::size_t> in_seg;
    // One output port: registered data + per-branch pending mask, as
    // signals so the combinational presentation logic can react.
    struct Port {
      Signal<std::uint64_t>* reg = nullptr;
      Signal<std::uint32_t>* pend = nullptr;
      std::vector<std::size_t> branch;
    };
    std::vector<Port> out;
    std::uint64_t fires = 0;
    std::vector<std::uint64_t> in_scratch, out_scratch;
  };
  struct StationBlock {
    graph::RsKind kind = graph::RsKind::kFull;
    std::size_t in_seg = 0, out_seg = 0;
    // Full station internal registers live as process state; half
    // stations expose occupancy/front-validity as signals for the
    // combinational stop path.
    lip::Token slot[2];
    unsigned occ = 0;
    bool stop_reg = false;
    Signal<bool>* occupied = nullptr;     // half only
    Signal<bool>* front_valid = nullptr;  // half only
  };
  struct SourceBlock {
    graph::NodeId node = 0;
    lip::SourceBehavior behavior;
    Signal<std::uint64_t>* reg = nullptr;
    Signal<std::uint32_t>* pend = nullptr;
    std::vector<std::size_t> branch;
    std::uint64_t emitted = 0;
    std::uint64_t cycle = 0;
  };
  struct SinkBlock {
    graph::NodeId node = 0;
    lip::SinkBehavior behavior;
    std::size_t in_seg = 0;
    Signal<bool>* stop_state = nullptr;  // registered external stop
    std::uint64_t cycle = 0;
    std::vector<lip::Token> stream;
    std::vector<lip::Token> trace;
  };

  std::vector<ShellBlock> shells;
  std::vector<StationBlock> stations;
  std::vector<SourceBlock> sources;
  std::vector<SinkBlock> sinks;
  std::vector<std::size_t> node_index;
  bool elaborated = false;
  std::unique_ptr<VcdWriter> vcd;

  void build_structure();
  void elaborate_blocks();
  bool shell_can_fire(const ShellBlock& s) const;
};

void RtlSystem::Impl::build_structure() {
  node_index.assign(topo.nodes().size(), kNoIndex);
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    const auto& node = topo.node(v);
    switch (node.kind) {
      case graph::NodeKind::kProcess: {
        ShellBlock b;
        b.node = v;
        b.in_seg.assign(node.num_inputs, 0);
        b.out.resize(node.num_outputs);
        b.in_scratch.assign(node.num_inputs, 0);
        b.out_scratch.assign(node.num_outputs, 0);
        node_index[v] = shells.size();
        shells.push_back(std::move(b));
        break;
      }
      case graph::NodeKind::kSource: {
        SourceBlock b;
        b.node = v;
        b.behavior = lip::SourceBehavior::counter();
        node_index[v] = sources.size();
        sources.push_back(std::move(b));
        break;
      }
      case graph::NodeKind::kSink: {
        SinkBlock b;
        b.node = v;
        b.behavior = lip::SinkBehavior::greedy();
        node_index[v] = sinks.size();
        sinks.push_back(std::move(b));
        break;
      }
    }
  }
  for (graph::ChannelId c = 0; c < topo.channels().size(); ++c) {
    const auto& ch = topo.channel(c);
    std::vector<std::size_t> ids;
    for (std::size_t h = 0; h <= ch.num_stations(); ++h) {
      const std::string base = "ch" + std::to_string(c) + "_h" +
                               std::to_string(h);
      SegWires w;
      w.valid = &ctx.signal<bool>(base + ".valid", false);
      w.data = &ctx.signal<std::uint64_t>(base + ".data", 0);
      w.stop = &ctx.signal<bool>(base + ".stop", false);
      ids.push_back(segs.size());
      segs.push_back(w);
    }
    const auto& from_node = topo.node(ch.from.node);
    if (from_node.kind == graph::NodeKind::kProcess) {
      shells[node_index[ch.from.node]].out[ch.from.port].branch.push_back(
          ids.front());
    } else {
      sources[node_index[ch.from.node]].branch.push_back(ids.front());
    }
    for (std::size_t i = 0; i < ch.num_stations(); ++i) {
      StationBlock st;
      st.kind = ch.stations[i];
      st.in_seg = ids[i];
      st.out_seg = ids[i + 1];
      if (strict()) {
        st.slot[0] = lip::Token::make_void();
        st.occ = 1;
      }
      stations.push_back(st);
    }
    const auto& to_node = topo.node(ch.to.node);
    if (to_node.kind == graph::NodeKind::kProcess) {
      shells[node_index[ch.to.node]].in_seg[ch.to.port] = ids.back();
    } else {
      sinks[node_index[ch.to.node]].in_seg = ids.back();
    }
  }
}

bool RtlSystem::Impl::shell_can_fire(const ShellBlock& s) const {
  for (std::size_t in : s.in_seg) {
    if (!segs[in].valid->read()) return false;
  }
  for (const auto& port : s.out) {
    const std::uint32_t pend = port.pend->read();
    for (std::size_t b = 0; b < port.branch.size(); ++b) {
      const bool stopped = segs[port.branch[b]].stop->read();
      if (strict() ? stopped : (stopped && ((pend >> b) & 1u))) return false;
    }
  }
  return true;
}

void RtlSystem::Impl::elaborate_blocks() {
  // ---- shells ---------------------------------------------------------
  for (auto& s : shells) {
    LIPLIB_EXPECT(s.pearl != nullptr,
                  "process node " + topo.node(s.node).name +
                      " has no pearl bound");
    const std::string name = topo.node(s.node).name;
    for (std::size_t m = 0; m < s.out.size(); ++m) {
      auto& port = s.out[m];
      LIPLIB_EXPECT(port.branch.size() < 32, "fanout too wide");
      const std::uint32_t full =
          port.branch.empty() ? 0u : ((1u << port.branch.size()) - 1);
      port.reg = &ctx.signal<std::uint64_t>(
          name + ".reg" + std::to_string(m), s.pearl->initial_output(m));
      port.pend = &ctx.signal<std::uint32_t>(
          name + ".pend" + std::to_string(m), full);
    }
    ShellBlock* sp = &s;

    // Combinational: presentation of every branch plus back pressure on
    // every input.
    auto& comb = ctx.process(name + ".comb", [this, sp] {
      const bool fire = shell_can_fire(*sp);
      for (auto& port : sp->out) {
        const std::uint32_t pend = port.pend->read();
        for (std::size_t b = 0; b < port.branch.size(); ++b) {
          segs[port.branch[b]].valid->write(((pend >> b) & 1u) != 0);
          segs[port.branch[b]].data->write(port.reg->read());
        }
      }
      for (std::size_t in : sp->in_seg) {
        segs[in].stop->write(!fire && segs[in].valid->read());
      }
    });
    for (std::size_t in : s.in_seg) {
      ctx.sensitize(comb, *segs[in].valid);
    }
    for (auto& port : s.out) {
      ctx.sensitize(comb, *port.pend);
      ctx.sensitize(comb, *port.reg);
      for (std::size_t b : port.branch) ctx.sensitize(comb, *segs[b].stop);
    }

    // Clocked: consume delivered branches, fire the pearl.
    auto& seq = ctx.process(name + ".seq", [this, sp] {
      if (!clk.signal().posedge()) return;
      const bool fire = shell_can_fire(*sp);
      for (auto& port : sp->out) {
        std::uint32_t pend = port.pend->read();
        for (std::size_t b = 0; b < port.branch.size(); ++b) {
          if (((pend >> b) & 1u) && !segs[port.branch[b]].stop->read()) {
            pend &= ~(1u << b);
          }
        }
        port.pend->write(pend);
      }
      if (fire) {
        for (std::size_t i = 0; i < sp->in_seg.size(); ++i) {
          sp->in_scratch[i] = segs[sp->in_seg[i]].data->read();
        }
        sp->pearl->step(sp->in_scratch, sp->out_scratch);
        for (std::size_t m = 0; m < sp->out.size(); ++m) {
          auto& port = sp->out[m];
          port.reg->write(sp->out_scratch[m]);
          const std::uint32_t full =
              port.branch.empty() ? 0u : ((1u << port.branch.size()) - 1);
          port.pend->write(full);
        }
        ++sp->fires;
      }
    });
    ctx.sensitize(seq, clk.signal());
  }

  // ---- relay stations -------------------------------------------------
  for (std::size_t k = 0; k < stations.size(); ++k) {
    StationBlock* st = &stations[k];
    const std::string name = "rs" + std::to_string(k);
    if (st->kind == graph::RsKind::kHalf) {
      st->occupied = &ctx.signal<bool>(name + ".occ", st->occ > 0);
      st->front_valid =
          &ctx.signal<bool>(name + ".fv", st->occ > 0 && st->slot[0].valid);
      // Combinational stop gating: the half station forwards the stop
      // upstream whenever it holds a token it must keep.
      auto& comb = ctx.process(name + ".comb", [this, st] {
        const bool s_eff =
            strict() ? segs[st->out_seg].stop->read()
                     : (segs[st->out_seg].stop->read() &&
                        st->front_valid->read());
        segs[st->in_seg].stop->write(st->occupied->read() && s_eff);
      });
      ctx.sensitize(comb, *segs[st->out_seg].stop);
      ctx.sensitize(comb, *st->occupied);
      ctx.sensitize(comb, *st->front_valid);
    }
    auto& seq = ctx.process(name + ".seq", [this, st] {
      if (!clk.signal().posedge()) return;
      const lip::Token in{segs[st->in_seg].data->read(),
                          segs[st->in_seg].valid->read()};
      const bool front_valid = st->occ > 0 && st->slot[0].valid;
      const bool s_eff = strict()
                             ? segs[st->out_seg].stop->read()
                             : (segs[st->out_seg].stop->read() && front_valid);
      const bool consumed = st->occ > 0 && !s_eff;
      if (st->kind == graph::RsKind::kFull) {
        const bool accept = !st->stop_reg && (strict() || in.valid);
        if (consumed) {
          st->slot[0] = st->slot[1];
          --st->occ;
        }
        if (accept) {
          LIPLIB_ENSURE(st->occ < 2, "RTL full relay station overflow");
          st->slot[st->occ] = in;
          ++st->occ;
        }
        st->stop_reg = (st->occ == 2);
        segs[st->in_seg].stop->write(st->stop_reg);
      } else {
        const bool stop_up = st->occ > 0 && s_eff;
        const bool accept = !stop_up && (strict() || in.valid);
        if (consumed) st->occ = 0;
        if (accept) {
          LIPLIB_ENSURE(st->occ == 0, "RTL half relay station overflow");
          st->slot[0] = in;
          st->occ = 1;
        }
        st->occupied->write(st->occ > 0);
        st->front_valid->write(st->occ > 0 && st->slot[0].valid);
      }
      segs[st->out_seg].valid->write(st->occ > 0 && st->slot[0].valid);
      segs[st->out_seg].data->write(st->occ > 0 ? st->slot[0].data : 0);
    });
    ctx.sensitize(seq, clk.signal());
    // Initial presentation (registered outputs start void; full stop
    // registers start deasserted) matches the signals' initial values.
  }

  // ---- sources ----------------------------------------------------------
  for (auto& s : sources) {
    const std::string name = topo.node(s.node).name;
    LIPLIB_EXPECT(s.branch.size() < 32, "source fanout too wide");
    const std::uint32_t full =
        s.branch.empty() ? 0u : ((1u << s.branch.size()) - 1);
    const bool ready0 = s.behavior.ready(0);
    s.reg = &ctx.signal<std::uint64_t>(name + ".reg",
                                       ready0 ? s.behavior.value(0) : 0);
    s.pend = &ctx.signal<std::uint32_t>(name + ".pend", ready0 ? full : 0);
    if (ready0) s.emitted = 1;
    SourceBlock* sp = &s;

    auto& comb = ctx.process(name + ".comb", [this, sp] {
      const std::uint32_t pend = sp->pend->read();
      for (std::size_t b = 0; b < sp->branch.size(); ++b) {
        segs[sp->branch[b]].valid->write(((pend >> b) & 1u) != 0);
        segs[sp->branch[b]].data->write(sp->reg->read());
      }
    });
    ctx.sensitize(comb, *s.pend);
    ctx.sensitize(comb, *s.reg);

    auto& seq = ctx.process(name + ".seq", [this, sp, full] {
      if (!clk.signal().posedge()) return;
      std::uint32_t pend = sp->pend->read();
      for (std::size_t b = 0; b < sp->branch.size(); ++b) {
        if (((pend >> b) & 1u) && !segs[sp->branch[b]].stop->read()) {
          pend &= ~(1u << b);
        }
      }
      if (pend == 0 && sp->behavior.ready(sp->cycle + 1)) {
        sp->reg->write(sp->behavior.value(sp->emitted));
        ++sp->emitted;
        pend = full;
      }
      sp->pend->write(pend);
      ++sp->cycle;
    });
    ctx.sensitize(seq, clk.signal());
  }

  // ---- sinks ------------------------------------------------------------
  for (auto& s : sinks) {
    const std::string name = topo.node(s.node).name;
    s.stop_state = &ctx.signal<bool>(name + ".stop", s.behavior.stop(0));
    SinkBlock* sp = &s;

    auto& comb = ctx.process(name + ".comb", [this, sp] {
      segs[sp->in_seg].stop->write(sp->stop_state->read());
    });
    ctx.sensitize(comb, *s.stop_state);

    auto& seq = ctx.process(name + ".seq", [this, sp] {
      if (!clk.signal().posedge()) return;
      const lip::Token f{segs[sp->in_seg].data->read(),
                         segs[sp->in_seg].valid->read()};
      sp->trace.push_back(f.valid ? f : lip::Token::make_void());
      if (f.valid && !sp->stop_state->read()) sp->stream.push_back(f);
      ++sp->cycle;
      sp->stop_state->write(sp->behavior.stop(sp->cycle));
    });
    ctx.sensitize(seq, clk.signal());
  }

  elaborated = true;
}

RtlSystem::RtlSystem(const graph::Topology& topo, RtlOptions opts)
    : impl_(std::make_unique<Impl>(topo, opts)) {
  const auto report = impl_->topo.validate();
  LIPLIB_EXPECT(report.ok(),
                "topology has structural errors:\n" + report.to_string());
  impl_->build_structure();
}

RtlSystem::~RtlSystem() = default;

void RtlSystem::bind_pearl(graph::NodeId node,
                           std::unique_ptr<lip::Pearl> pearl) {
  LIPLIB_EXPECT(!impl_->elaborated, "bind after first run");
  LIPLIB_EXPECT(node < impl_->topo.nodes().size() &&
                    impl_->topo.node(node).kind == graph::NodeKind::kProcess,
                "bind_pearl target is not a process node");
  LIPLIB_EXPECT(pearl != nullptr, "null pearl");
  LIPLIB_EXPECT(
      pearl->num_inputs() == impl_->topo.node(node).num_inputs &&
          pearl->num_outputs() == impl_->topo.node(node).num_outputs,
      "pearl arity does not match node");
  impl_->shells[impl_->node_index[node]].pearl = std::move(pearl);
}

void RtlSystem::bind_source(graph::NodeId node,
                            lip::SourceBehavior behavior) {
  LIPLIB_EXPECT(!impl_->elaborated, "bind after first run");
  LIPLIB_EXPECT(node < impl_->topo.nodes().size() &&
                    impl_->topo.node(node).kind == graph::NodeKind::kSource,
                "bind_source target is not a source node");
  impl_->sources[impl_->node_index[node]].behavior = std::move(behavior);
}

void RtlSystem::bind_sink(graph::NodeId node, lip::SinkBehavior behavior) {
  LIPLIB_EXPECT(!impl_->elaborated, "bind after first run");
  LIPLIB_EXPECT(node < impl_->topo.nodes().size() &&
                    impl_->topo.node(node).kind == graph::NodeKind::kSink,
                "bind_sink target is not a sink node");
  impl_->sinks[impl_->node_index[node]].behavior = std::move(behavior);
}

void RtlSystem::attach_vcd(std::ostream& os) {
  LIPLIB_EXPECT(!impl_->elaborated, "attach_vcd after first run");
  LIPLIB_EXPECT(impl_->vcd == nullptr, "attach_vcd called twice");
  auto& impl = *impl_;
  impl.vcd = std::make_unique<VcdWriter>(os, "lid");
  VcdWriter& w = *impl.vcd;
  sim::SimContext& ctx = impl.ctx;

  auto trace_bool = [&](Signal<bool>& sig, const std::string& name) {
    const auto id = w.add_signal(name, 1);
    ctx.on_change(sig, [&w, &ctx, &sig, id] {
      w.set_time(ctx.now());
      w.change(id, sig.read() ? 1 : 0);
    });
  };
  auto trace_data = [&](Signal<std::uint64_t>& sig, const std::string& name) {
    const auto id = w.add_signal(name, 32);
    ctx.on_change(sig, [&w, &ctx, &sig, id] {
      w.set_time(ctx.now());
      w.change(id, sig.read());
    });
  };

  trace_bool(impl.clk.signal(), "clk");
  for (graph::ChannelId c = 0; c < impl.topo.channels().size(); ++c) {
    const auto& ch = impl.topo.channel(c);
    const std::string base = impl.topo.node(ch.from.node).name + "_to_" +
                             impl.topo.node(ch.to.node).name;
    // Recover this channel's wires: hop signals were created in channel
    // order, so rebuild the mapping by walking the same structure.
    // (SegWires are stored flat; recompute the base index.)
    std::size_t seg = 0;
    for (graph::ChannelId prev = 0; prev < c; ++prev) {
      seg += impl.topo.channel(prev).num_stations() + 1;
    }
    for (std::size_t h = 0; h <= ch.num_stations(); ++h, ++seg) {
      const std::string hop = base + "_h" + std::to_string(h);
      trace_bool(*impl.segs[seg].valid, hop + "_valid");
      trace_data(*impl.segs[seg].data, hop + "_data");
      trace_bool(*impl.segs[seg].stop, hop + "_stop");
    }
  }
  w.begin_dump();
}

void RtlSystem::run_cycles(std::uint64_t n) {
  if (!impl_->elaborated) impl_->elaborate_blocks();
  cycles_ += n;
  // Rising edges occur at odd times 1, 3, 5, ...; cycle k completes at
  // its edge (time 2k+1) plus the following settle, so running to time
  // 2*cycles_ covers exactly cycles_ complete cycles.
  impl_->ctx.run_until(2 * cycles_);
}

const std::vector<lip::Token>& RtlSystem::sink_stream(
    graph::NodeId sink) const {
  LIPLIB_EXPECT(sink < impl_->topo.nodes().size() &&
                    impl_->topo.node(sink).kind == graph::NodeKind::kSink,
                "node is not a sink");
  return impl_->sinks[impl_->node_index[sink]].stream;
}

const std::vector<lip::Token>& RtlSystem::sink_cycle_trace(
    graph::NodeId sink) const {
  LIPLIB_EXPECT(sink < impl_->topo.nodes().size() &&
                    impl_->topo.node(sink).kind == graph::NodeKind::kSink,
                "node is not a sink");
  return impl_->sinks[impl_->node_index[sink]].trace;
}

std::uint64_t RtlSystem::shell_fire_count(graph::NodeId shell) const {
  LIPLIB_EXPECT(shell < impl_->topo.nodes().size() &&
                    impl_->topo.node(shell).kind == graph::NodeKind::kProcess,
                "node is not a process");
  return impl_->shells[impl_->node_index[shell]].fires;
}

sim::SimContext& RtlSystem::context() { return impl_->ctx; }

}  // namespace liplib::rtl
