#include "liplib/support/vcd.hpp"

#include "liplib/support/check.hpp"

namespace liplib {

VcdWriter::VcdWriter(std::ostream& os, std::string scope_name)
    : os_(os), scope_(std::move(scope_name)) {
  os_ << "$timescale 1ns $end\n";
  os_ << "$scope module " << scope_ << " $end\n";
}

std::string VcdWriter::id_code(std::size_t index) {
  // VCD identifier characters are the printable ASCII range '!'..'~'.
  std::string code;
  do {
    code += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return code;
}

VcdWriter::SignalId VcdWriter::add_signal(const std::string& name,
                                          unsigned width) {
  LIPLIB_EXPECT(!dumping_, "add_signal after begin_dump");
  LIPLIB_EXPECT(width >= 1 && width <= 64, "signal width must be in [1,64]");
  Signal s;
  s.code = id_code(signals_.size());
  s.width = width;
  os_ << "$var wire " << width << ' ' << s.code << ' ' << name << " $end\n";
  signals_.push_back(std::move(s));
  return signals_.size() - 1;
}

void VcdWriter::begin_dump() {
  LIPLIB_EXPECT(!dumping_, "begin_dump called twice");
  os_ << "$upscope $end\n$enddefinitions $end\n$dumpvars\n";
  for (const auto& s : signals_) {
    if (s.width == 1) {
      os_ << 'x' << s.code << '\n';
    } else {
      os_ << "bx " << s.code << '\n';
    }
  }
  os_ << "$end\n";
  dumping_ = true;
}

void VcdWriter::set_time(std::uint64_t t) {
  LIPLIB_EXPECT(dumping_, "set_time before begin_dump");
  LIPLIB_EXPECT(t >= time_, "VCD time must be monotone");
  if (t != time_ || !time_written_) {
    time_ = t;
    time_written_ = false;  // lazily written on first change at this time
  }
}

void VcdWriter::emit(const Signal& s, std::uint64_t value) {
  if (!time_written_) {
    os_ << '#' << time_ << '\n';
    time_written_ = true;
  }
  if (s.width == 1) {
    os_ << (value & 1 ? '1' : '0') << s.code << '\n';
  } else {
    os_ << 'b';
    bool leading = true;
    for (int bit = static_cast<int>(s.width) - 1; bit >= 0; --bit) {
      const bool one = (value >> bit) & 1;
      if (one) leading = false;
      if (!leading || bit == 0) os_ << (one ? '1' : '0');
    }
    os_ << ' ' << s.code << '\n';
  }
}

void VcdWriter::change(SignalId id, std::uint64_t value) {
  LIPLIB_EXPECT(dumping_, "change before begin_dump");
  LIPLIB_EXPECT(id < signals_.size(), "unknown VCD signal id");
  Signal& s = signals_[id];
  if (s.width < 64) value &= (1ull << s.width) - 1;
  if (s.has_last && s.last == value) return;
  s.last = value;
  s.has_last = true;
  emit(s, value);
}

}  // namespace liplib
