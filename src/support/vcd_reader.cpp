#include "liplib/support/vcd_reader.hpp"

#include <algorithm>
#include <istream>
#include <sstream>

#include "liplib/support/check.hpp"

namespace liplib {

VcdDump VcdDump::parse(std::istream& in) {
  VcdDump dump;
  std::string scope;
  std::string tok;
  std::uint64_t now = 0;
  bool in_definitions = true;

  auto signal_index = [&](const std::string& code) -> std::size_t {
    const auto it = dump.by_code_.find(code);
    LIPLIB_EXPECT(it != dump.by_code_.end(),
                  "VCD change for undeclared identifier '" + code + "'");
    return it->second;
  };

  while (in >> tok) {
    if (tok == "$scope") {
      std::string kind, name, end;
      LIPLIB_EXPECT(static_cast<bool>(in >> kind >> name >> end) &&
                        end == "$end",
                    "malformed $scope");
      scope = name;
    } else if (tok == "$upscope") {
      std::string end;
      in >> end;
      scope.clear();
    } else if (tok == "$var") {
      std::string type, width, code, name, end;
      LIPLIB_EXPECT(
          static_cast<bool>(in >> type >> width >> code >> name >> end) &&
              end == "$end",
          "malformed $var");
      const std::string full = scope.empty() ? name : scope + "." + name;
      LIPLIB_EXPECT(!dump.by_name_.contains(full),
                    "duplicate VCD signal " + full);
      LIPLIB_EXPECT(!dump.by_code_.contains(code),
                    "duplicate VCD identifier " + code);
      const std::size_t idx = dump.changes_.size();
      dump.by_name_.emplace(full, idx);
      dump.by_code_.emplace(code, idx);
      dump.changes_.emplace_back();
    } else if (tok == "$enddefinitions") {
      std::string end;
      in >> end;
      in_definitions = false;
    } else if (tok == "$dumpvars" || tok == "$end") {
      // $dumpvars contents are ordinary value changes (the initial
      // values); parse them inline, and let the closing $end pass.
    } else if (tok[0] == '$') {
      // Skip other sections ($timescale, $comment, ...) up to $end.
      std::string skip;
      while (in >> skip && skip != "$end") {
      }
    } else if (tok[0] == '#') {
      std::uint64_t next = 0;
      try {
        std::size_t used = 0;
        next = std::stoull(tok.substr(1), &used);
        LIPLIB_EXPECT(used == tok.size() - 1, "trailing garbage");
      } catch (const ApiError&) {
        throw ApiError("malformed VCD timestamp '" + tok + "'");
      } catch (const std::exception&) {
        throw ApiError("malformed VCD timestamp '" + tok + "'");
      }
      LIPLIB_EXPECT(next >= now, "VCD timestamp #" + std::to_string(next) +
                                     " goes backwards (after #" +
                                     std::to_string(now) + ")");
      now = next;
      dump.end_time_ = std::max(dump.end_time_, now);
    } else if (tok[0] == 'b' || tok[0] == 'B') {
      std::string code;
      LIPLIB_EXPECT(static_cast<bool>(in >> code),
                    "vector change without identifier");
      const std::string bits = tok.substr(1);
      Change ch{now, std::nullopt};
      if (bits.find_first_of("xXzZ") == std::string::npos) {
        std::uint64_t v = 0;
        for (char b : bits) {
          LIPLIB_EXPECT(b == '0' || b == '1', "bad vector bit");
          v = (v << 1) | static_cast<std::uint64_t>(b - '0');
        }
        ch.value = v;
      }
      dump.changes_[signal_index(code)].push_back(ch);
    } else if (tok[0] == '0' || tok[0] == '1' || tok[0] == 'x' ||
               tok[0] == 'X' || tok[0] == 'z' || tok[0] == 'Z') {
      LIPLIB_EXPECT(tok.size() >= 2, "scalar change without identifier");
      Change ch{now, std::nullopt};
      if (tok[0] == '0' || tok[0] == '1') {
        ch.value = static_cast<std::uint64_t>(tok[0] - '0');
      }
      dump.changes_[signal_index(tok.substr(1))].push_back(ch);
    } else {
      LIPLIB_EXPECT(in_definitions, "unrecognized VCD token '" + tok + "'");
    }
  }
  return dump;
}

VcdDump VcdDump::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

std::vector<std::string> VcdDump::signal_names() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, idx] : by_name_) names.push_back(name);
  return names;
}

bool VcdDump::has_signal(const std::string& name) const {
  return by_name_.contains(name);
}

const std::vector<VcdDump::Change>& VcdDump::changes(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  LIPLIB_EXPECT(it != by_name_.end(), "unknown VCD signal " + name);
  return changes_[it->second];
}

std::optional<std::uint64_t> VcdDump::value_at(const std::string& name,
                                               std::uint64_t t) const {
  const auto& list = changes(name);
  std::optional<std::uint64_t> value;
  for (const auto& ch : list) {
    if (ch.time > t) break;
    value = ch.value;
  }
  return value;
}

}  // namespace liplib
