// The compiled scalar engine: the interpreter's protocol dynamics
// replayed as straight-line sweeps over the lowered CSR arrays.  Every
// update below mirrors one statement of skeleton::Skeleton (see
// src/skeleton/skeleton.cpp); the differential suite keeps them locked
// together bit for bit.

#include <unordered_map>

#include "liplib/probe/probe.hpp"
#include "liplib/support/check.hpp"
#include "liplib/xir/sliced.hpp"
#include "liplib/xir/xir.hpp"

namespace liplib::xir {

ScalarEngine::ScalarEngine(ProgramRef program) : prog_(std::move(program)) {
  LIPLIB_EXPECT(prog_ != nullptr, "null xir program");
  const Program& p = *prog_;
  fwd_.assign(p.num_segments, 0);
  stop_.assign(p.num_segments, 0);
  st_occ_.assign(p.num_stations(), p.strict ? 1 : 0);
  st_v0_.assign(p.num_stations(), 0);
  st_v1_.assign(p.num_stations(), 0);
  st_stop_reg_.assign(p.num_stations(), 0);
  // Initialization: shell outputs valid, sources presenting.
  pend_.assign(p.shell_br_seg.size(), 1);
  src_pend_.assign(p.src_br_seg.size(), 1);
  fire_count_.assign(p.num_shells(), 0);
  sink_pattern_.resize(p.num_sinks());
}

ScalarEngine::ScalarEngine(const graph::Topology& topo,
                           skeleton::SkeletonOptions opts)
    : ScalarEngine(lower(topo, opts)) {}

void ScalarEngine::set_sink_pattern(graph::NodeId node,
                                    std::vector<bool> pattern) {
  const Program& p = *prog_;
  LIPLIB_EXPECT(node < p.topo.nodes().size() &&
                    p.topo.node(node).kind == graph::NodeKind::kSink,
                "set_sink_pattern target is not a sink");
  auto& dst = sink_pattern_[p.node_index[node]];
  dst.assign(pattern.size(), 0);
  for (std::size_t i = 0; i < pattern.size(); ++i) dst[i] = pattern[i] ? 1 : 0;
}

void ScalarEngine::saturate_stations() {
  for (std::size_t s = 0; s < prog_->num_stations(); ++s) {
    if (st_occ_[s] == 0) st_occ_[s] = 1;
    st_v0_[s] = 1;  // the front token becomes valid data
  }
}

bool ScalarEngine::shell_ready(std::size_t k) const {
  const Program& p = *prog_;
  for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
       ++i) {
    if (!fwd_[p.shell_in_seg[i]]) return false;
  }
  for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
       ++b) {
    const bool stopped = stop_[p.shell_br_seg[b]] != 0;
    if (p.strict) {
      if (stopped) return false;
    } else if (stopped && pend_[b]) {
      return false;
    }
  }
  return true;
}

void ScalarEngine::eval_settle_unit(std::uint32_t unit) {
  const Program& p = *prog_;
  if (unit < p.num_stations()) {
    const std::size_t s = unit;
    const bool front_valid = st_occ_[s] > 0 && st_v0_[s];
    const bool s_eff = p.strict ? (stop_[p.st_out[s]] != 0)
                                : (stop_[p.st_out[s]] && front_valid);
    stop_[p.st_in[s]] = (st_occ_[s] > 0 && s_eff) ? 1 : 0;
  } else {
    const std::size_t k = unit - p.num_stations();
    const bool stalled = !shell_ready(k);
    for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
         ++i) {
      const std::uint32_t in = p.shell_in_seg[i];
      stop_[in] = (stalled && fwd_[in]) ? 1 : 0;
    }
  }
}

bool ScalarEngine::eval_settle_unit_changed(std::uint32_t unit) {
  const Program& p = *prog_;
  bool changed = false;
  if (unit < p.num_stations()) {
    const std::size_t s = unit;
    const bool front_valid = st_occ_[s] > 0 && st_v0_[s];
    const bool s_eff = p.strict ? (stop_[p.st_out[s]] != 0)
                                : (stop_[p.st_out[s]] && front_valid);
    const std::uint8_t up = (st_occ_[s] > 0 && s_eff) ? 1 : 0;
    if (stop_[p.st_in[s]] != up) {
      stop_[p.st_in[s]] = up;
      changed = true;
    }
  } else {
    const std::size_t k = unit - p.num_stations();
    const bool stalled = !shell_ready(k);
    for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
         ++i) {
      const std::uint32_t in = p.shell_in_seg[i];
      const std::uint8_t up = (stalled && fwd_[in]) ? 1 : 0;
      if (stop_[in] != up) {
        stop_[in] = up;
        changed = true;
      }
    }
  }
  return changed;
}

void ScalarEngine::settle_stops() {
  const Program& p = *prog_;
  const std::uint8_t init = p.pessimistic ? 1 : 0;
  for (auto& s : stop_) s = init;
  for (std::size_t s = 0; s < p.num_sinks(); ++s) {
    const auto& pat = sink_pattern_[s];
    stop_[p.sink_seg[s]] = (!pat.empty() && pat[cycle_ % pat.size()]) ? 1 : 0;
  }
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    if (!p.st_half[s]) stop_[p.st_in[s]] = st_stop_reg_[s];
  }
  // The acyclic part of the stop network: every unit's inputs are final
  // when it is visited, so a single ordered pass lands directly on the
  // fixpoint the interpreter's repeated sweeps converge to (the stop
  // system is monotone from its extreme init, so the extreme fixpoint
  // is order-independent).
  for (std::uint32_t unit : p.schedule.order) eval_settle_unit(unit);
  // The combinational-cycle remainder iterates, exactly like the
  // interpreter but over only the cyclic units.
  if (!p.schedule.iterate.empty()) {
    const std::size_t guard = 2 * stop_.size() + 4;
    std::size_t sweeps = 0;
    bool changed = true;
    while (changed) {
      LIPLIB_ENSURE(++sweeps <= guard, "stop fixpoint failed to converge");
      changed = false;
      for (std::uint32_t unit : p.schedule.iterate) {
        changed = eval_settle_unit_changed(unit) || changed;
      }
    }
  }
}

void ScalarEngine::attach_probe(probe::Probe& probe) {
  LIPLIB_EXPECT(cycle_ == 0, "attach_probe after stepping");
  LIPLIB_EXPECT(probe_ == nullptr, "attach_probe called twice");
  LIPLIB_EXPECT(!probe.bound(), "probe is already bound to a simulator");
  probe::Wiring w;
  build_probe_wiring(*prog_, &w);
  probe.bind(prog_->topo, std::move(w));
  probe_ = &probe;
}

void ScalarEngine::observe_probe() {
  const Program& p = *prog_;
  std::uint8_t* valid = probe_->valid_scratch();
  std::uint8_t* stop = probe_->stop_scratch();
  for (std::size_t i = 0; i < fwd_.size(); ++i) {
    valid[i] = fwd_[i];
    stop[i] = stop_[i];
  }
  probe::Activity* act = probe_->activity_scratch();
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    if (shell_ready(k)) {
      act[k] = probe::Activity::kFired;
    } else {
      bool missing = false;
      for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
           ++i) {
        if (!fwd_[p.shell_in_seg[i]]) {
          missing = true;
          break;
        }
      }
      act[k] = missing ? probe::Activity::kWaitingInput
                       : probe::Activity::kStoppedOutput;
    }
  }
  probe_->commit_cycle(cycle_);
}

void ScalarEngine::step() {
  const Program& p = *prog_;

  // Phase 1: forward validity.
  for (std::size_t b = 0; b < p.shell_br_seg.size(); ++b) {
    fwd_[p.shell_br_seg[b]] = pend_[b];
  }
  for (std::size_t b = 0; b < p.src_br_seg.size(); ++b) {
    fwd_[p.src_br_seg[b]] = src_pend_[b];
  }
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    fwd_[p.st_out[s]] = (st_occ_[s] > 0 && st_v0_[s]) ? 1 : 0;
  }

  // Phase 2: stops.
  settle_stops();

  if (probe_) observe_probe();

  // Phase 3: clock edge.
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    const bool fire = shell_ready(k);
    for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
         ++b) {
      if (pend_[b] && !stop_[p.shell_br_seg[b]]) pend_[b] = 0;
    }
    if (fire) {
      for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
           ++b) {
        LIPLIB_ENSURE(pend_[b] == 0, "xir shell fired while pending");
        pend_[b] = 1;
      }
      ++fire_count_[k];
    }
  }
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    const bool in_valid = fwd_[p.st_in[s]] != 0;
    const bool front_valid = st_occ_[s] > 0 && st_v0_[s];
    const bool s_eff = p.strict ? (stop_[p.st_out[s]] != 0)
                                : (stop_[p.st_out[s]] && front_valid);
    const bool consumed = st_occ_[s] > 0 && !s_eff;
    if (!p.st_half[s]) {
      const bool accept = !st_stop_reg_[s] && (p.strict || in_valid);
      if (consumed) {
        st_v0_[s] = st_v1_[s];
        --st_occ_[s];
      }
      if (accept) {
        LIPLIB_ENSURE(st_occ_[s] < 2, "xir full station overflow");
        (st_occ_[s] == 0 ? st_v0_[s] : st_v1_[s]) = in_valid ? 1 : 0;
        ++st_occ_[s];
      }
      st_stop_reg_[s] = (st_occ_[s] == 2) ? 1 : 0;
    } else {
      const bool stop_up = st_occ_[s] > 0 && s_eff;
      const bool accept = !stop_up && (p.strict || in_valid);
      if (consumed) st_occ_[s] = 0;
      if (accept) {
        LIPLIB_ENSURE(st_occ_[s] == 0, "xir half station overflow");
        st_v0_[s] = in_valid ? 1 : 0;
        st_occ_[s] = 1;
      }
    }
  }
  for (std::size_t s = 0; s < p.num_sources(); ++s) {
    bool all_clear = true;
    for (std::uint32_t b = p.src_br_begin[s]; b < p.src_br_begin[s + 1]; ++b) {
      if (src_pend_[b] && !stop_[p.src_br_seg[b]]) src_pend_[b] = 0;
      if (src_pend_[b]) all_clear = false;
    }
    if (all_clear) {  // always-ready source reloads immediately
      for (std::uint32_t b = p.src_br_begin[s]; b < p.src_br_begin[s + 1];
           ++b) {
        src_pend_[b] = 1;
      }
    }
  }
  ++cycle_;
}

std::uint64_t ScalarEngine::fires(graph::NodeId process) const {
  const Program& p = *prog_;
  LIPLIB_EXPECT(process < p.topo.nodes().size() &&
                    p.topo.node(process).kind == graph::NodeKind::kProcess,
                "node is not a process");
  return fire_count_[p.node_index[process]];
}

std::string ScalarEngine::state_signature() const {
  // Serializes the same protocol state as Skeleton::state_signature()
  // (including its 16-bit port-mask truncation), minus the interpreter's
  // input-queue bytes — identically zero in the simplified-shell mode
  // xir supports — so rho detection fires on exactly the same cycle in
  // both engines even though the byte strings differ in layout.
  const Program& p = *prog_;
  std::string s;
  s.reserve(p.port_br_begin.size() * 2 + p.num_sources() + p.num_stations());
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    for (std::uint32_t port = p.shell_port_begin[k];
         port < p.shell_port_begin[k + 1]; ++port) {
      std::uint32_t mask = 0;
      for (std::uint32_t b = p.port_br_begin[port];
           b < p.port_br_begin[port + 1]; ++b) {
        if (pend_[b]) mask |= 1u << (b - p.port_br_begin[port]);
      }
      s.push_back(static_cast<char>(mask & 0xff));
      s.push_back(static_cast<char>((mask >> 8) & 0xff));
    }
  }
  for (std::size_t src = 0; src < p.num_sources(); ++src) {
    std::uint32_t mask = 0;
    for (std::uint32_t b = p.src_br_begin[src]; b < p.src_br_begin[src + 1];
         ++b) {
      if (src_pend_[b]) mask |= 1u << (b - p.src_br_begin[src]);
    }
    s.push_back(static_cast<char>(mask & 0xff));
  }
  for (std::size_t st = 0; st < p.num_stations(); ++st) {
    char b = static_cast<char>(st_occ_[st]);
    // Mask slot validity by occupancy: unoccupied slots are not state.
    if (st_occ_[st] > 0 && st_v0_[st]) b |= 4;
    if (st_occ_[st] > 1 && st_v1_[st]) b |= 8;
    if (st_stop_reg_[st]) b |= 16;
    s.push_back(b);
  }
  return s;
}

skeleton::SkeletonResult ScalarEngine::analyze(std::uint64_t max_cycles,
                                               std::uint64_t env_period) {
  LIPLIB_EXPECT(env_period >= 1, "environment period must be >= 1");
  const Program& p = *prog_;
  struct Snap {
    std::uint64_t cycle;
    std::vector<std::uint64_t> fires;
  };
  auto snap = [&] { return Snap{cycle_, fire_count_}; };
  skeleton::SkeletonResult result;
  result.shell_ids = p.shell_node;

  std::unordered_map<std::string, Snap> seen;
  for (std::uint64_t i = 0; i <= max_cycles; ++i) {
    std::string key = state_signature();
    key.push_back(static_cast<char>(cycle_ % env_period));
    auto [it, inserted] = seen.emplace(std::move(key), snap());
    if (!inserted) {
      const Snap& first = it->second;
      const Snap now = snap();
      result.found = true;
      result.transient = first.cycle;
      result.period = now.cycle - first.cycle;
      bool progress = false;
      for (std::size_t k = 0; k < now.fires.size(); ++k) {
        const auto delta = now.fires[k] - first.fires[k];
        if (delta > 0) progress = true;
        if (delta == 0) result.has_starved_shell = true;
        result.shell_throughput.emplace_back(
            static_cast<std::int64_t>(delta),
            static_cast<std::int64_t>(result.period));
      }
      result.deadlocked = !progress && p.num_shells() > 0;
      return result;
    }
    step();
  }
  return result;
}

skeleton::ScreeningVerdict screen_for_deadlock(const graph::Topology& topo,
                                               skeleton::ScreeningOptions opts,
                                               std::uint64_t max_cycles,
                                               EngineMode engine) {
  if (engine == EngineMode::kInterp) {
    return skeleton::screen_for_deadlock(topo, opts, max_cycles);
  }
  if (engine == EngineMode::kSliced) {
    VariantSpec base;
    base.worst_case_occupancy = opts.worst_case_occupancy;
    return screen_variants(topo, {base}, opts.skeleton, max_cycles)[0];
  }
  ScalarEngine eng(topo, opts.skeleton);
  if (opts.worst_case_occupancy) eng.saturate_stations();
  const auto r = eng.analyze(max_cycles);
  skeleton::ScreeningVerdict v;
  v.ran_to_steady_state = r.found;
  v.deadlock_found = r.deadlocked || r.has_starved_shell;
  v.transient = r.transient;
  v.period = r.period;
  v.cycles_simulated = eng.cycle();
  v.min_throughput = r.system_throughput();
  v.starved = r.starved_shells();
  return v;
}

AnalyzeOutcome analyze_with_engine(const graph::Topology& topo,
                                   skeleton::SkeletonOptions opts,
                                   std::uint64_t max_cycles, EngineMode engine,
                                   bool worst_case_occupancy) {
  AnalyzeOutcome out;
  switch (engine) {
    case EngineMode::kInterp: {
      skeleton::Skeleton sk(topo, opts);
      if (worst_case_occupancy) sk.saturate_stations();
      out.result = sk.analyze(max_cycles);
      out.cycles = sk.cycle();
      break;
    }
    case EngineMode::kCompiled: {
      ScalarEngine eng(topo, opts);
      if (worst_case_occupancy) eng.saturate_stations();
      out.result = eng.analyze(max_cycles);
      out.cycles = eng.cycle();
      break;
    }
    case EngineMode::kSliced: {
      SlicedEngine eng(topo, opts, /*num_lanes=*/1);
      if (worst_case_occupancy) eng.saturate_stations(1ull);
      auto lanes = eng.analyze(max_cycles);
      out.result = std::move(lanes[0].result);
      out.cycles = lanes[0].cycles;
      break;
    }
  }
  return out;
}

}  // namespace liplib::xir
