// The bit-sliced engine: 64 scenarios per machine word.  Each update
// below is the lane-wise boolean form of one interpreter statement
// (src/skeleton/skeleton.cpp); where full and half stations diverge,
// both paths are computed and merged under the per-station lane mask.

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "liplib/support/check.hpp"
#include "liplib/xir/sliced.hpp"

namespace liplib::xir {

namespace {
constexpr std::uint64_t kAll = ~0ull;
constexpr std::uint32_t kEmptySlot = ~0u;

std::uint64_t mask_of(std::size_t lanes) {
  return lanes >= 64 ? kAll : ((1ull << lanes) - 1);
}

// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3): afterwards
// m[i] bit j == the input's m[j] bit i, i.e. word i collects lane i's
// bit from each of the 64 input planes.
void transpose64(std::uint64_t m[64]) {
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (m[k] ^ (m[k + j] << j)) & ~mask;
      m[k] ^= t;
      m[k + j] ^= t >> j;
    }
  }
}
}  // namespace

SlicedEngine::SlicedEngine(ProgramRef program, std::size_t num_lanes)
    : prog_(std::move(program)), num_lanes_(num_lanes) {
  LIPLIB_EXPECT(prog_ != nullptr, "null xir program");
  LIPLIB_EXPECT(num_lanes_ >= 1 && num_lanes_ <= kLanes,
                "sliced engine carries 1..64 lanes");
  live_mask_ = mask_of(num_lanes_);
  const Program& p = *prog_;
  fwd_w_.assign(p.num_segments, 0);
  stop_w_.assign(p.num_segments, 0);
  half_mask_.assign(p.num_stations(), 0);
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    half_mask_[s] = p.st_half[s] ? kAll : 0;
  }
  occ1_.assign(p.num_stations(), p.strict ? kAll : 0);
  occ2_.assign(p.num_stations(), 0);
  v0_.assign(p.num_stations(), 0);
  v1_.assign(p.num_stations(), 0);
  stop_reg_.assign(p.num_stations(), 0);
  pend_w_.assign(p.shell_br_seg.size(), kAll);
  src_pend_w_.assign(p.src_br_seg.size(), kAll);
  fires_.assign(p.num_shells() * kLanes, 0);
  sink_pattern_.resize(p.num_sinks());
  schedule_ = p.schedule;
}

SlicedEngine::SlicedEngine(const graph::Topology& topo,
                           skeleton::SkeletonOptions opts,
                           std::size_t num_lanes)
    : SlicedEngine(lower(topo, opts), num_lanes) {}

void SlicedEngine::set_station_kinds(std::size_t lane,
                                     const std::vector<graph::RsKind>& kinds) {
  LIPLIB_EXPECT(cycle_ == 0, "set_station_kinds after stepping");
  LIPLIB_EXPECT(lane < num_lanes_, "lane out of range");
  LIPLIB_EXPECT(kinds.size() == prog_->num_stations(),
                "kind vector does not match the program's station count");
  const std::uint64_t bit = 1ull << lane;
  for (std::size_t s = 0; s < kinds.size(); ++s) {
    if (kinds[s] == graph::RsKind::kHalf) {
      half_mask_[s] |= bit;
    } else {
      half_mask_[s] &= ~bit;
    }
  }
  schedule_dirty_ = true;
}

void SlicedEngine::set_sink_pattern(graph::NodeId node,
                                    std::vector<bool> pattern) {
  const Program& p = *prog_;
  LIPLIB_EXPECT(node < p.topo.nodes().size() &&
                    p.topo.node(node).kind == graph::NodeKind::kSink,
                "set_sink_pattern target is not a sink");
  auto& dst = sink_pattern_[p.node_index[node]];
  dst.assign(pattern.size(), 0);
  for (std::size_t i = 0; i < pattern.size(); ++i) dst[i] = pattern[i] ? 1 : 0;
}

void SlicedEngine::saturate_stations(std::uint64_t lane_mask) {
  for (std::size_t s = 0; s < prog_->num_stations(); ++s) {
    occ1_[s] |= lane_mask;  // occ 0 -> 1; higher occupancy unchanged
    v0_[s] |= lane_mask;    // the front token becomes valid data
  }
}

void SlicedEngine::refresh_schedule() {
  if (!schedule_dirty_) return;
  // The union of every lane's dynamic stations; a mixed station's update
  // is masked to its half lanes, so full lanes just see a no-op.
  std::vector<std::uint8_t> dynamic(prog_->num_stations(), 0);
  for (std::size_t s = 0; s < prog_->num_stations(); ++s) {
    dynamic[s] = half_mask_[s] != 0 ? 1 : 0;
  }
  schedule_ = build_settle_schedule(*prog_, dynamic);
  schedule_dirty_ = false;
}

std::uint64_t SlicedEngine::shell_ready_word(std::size_t k) const {
  const Program& p = *prog_;
  std::uint64_t ready = kAll;
  for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
       ++i) {
    ready &= fwd_w_[p.shell_in_seg[i]];
  }
  for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
       ++b) {
    const std::uint64_t stopped = stop_w_[p.shell_br_seg[b]];
    ready &= ~(p.strict ? stopped : (stopped & pend_w_[b]));
  }
  return ready;
}

void SlicedEngine::settle_station(std::size_t s) {
  const Program& p = *prog_;
  const std::uint64_t front_valid = occ1_[s] & v0_[s];
  const std::uint64_t s_eff =
      p.strict ? stop_w_[p.st_out[s]] : (stop_w_[p.st_out[s]] & front_valid);
  const std::uint64_t up = occ1_[s] & s_eff;
  const std::uint64_t hm = half_mask_[s];
  stop_w_[p.st_in[s]] = (stop_w_[p.st_in[s]] & ~hm) | (up & hm);
}

void SlicedEngine::settle_shell(std::size_t k) {
  const Program& p = *prog_;
  const std::uint64_t stalled = ~shell_ready_word(k);
  for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
       ++i) {
    const std::uint32_t in = p.shell_in_seg[i];
    stop_w_[in] = stalled & fwd_w_[in];
  }
}

void SlicedEngine::settle_stops() {
  const Program& p = *prog_;
  refresh_schedule();
  const std::uint64_t init = p.pessimistic ? kAll : 0;
  for (auto& s : stop_w_) s = init;
  for (std::size_t s = 0; s < p.num_sinks(); ++s) {
    const auto& pat = sink_pattern_[s];
    stop_w_[p.sink_seg[s]] =
        (!pat.empty() && pat[cycle_ % pat.size()]) ? kAll : 0;
  }
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    // Full lanes present the registered stop; half lanes keep the init
    // value until the dynamic part runs.
    const std::uint64_t hm = half_mask_[s];
    stop_w_[p.st_in[s]] = (init & hm) | (stop_reg_[s] & ~hm);
  }
  for (std::uint32_t unit : schedule_.order) {
    if (unit < p.num_stations()) {
      settle_station(unit);
    } else {
      settle_shell(unit - p.num_stations());
    }
  }
  if (!schedule_.iterate.empty()) {
    const std::size_t guard = 2 * stop_w_.size() + 4;
    std::size_t sweeps = 0;
    bool changed = true;
    while (changed) {
      LIPLIB_ENSURE(++sweeps <= guard, "stop fixpoint failed to converge");
      changed = false;
      for (std::uint32_t unit : schedule_.iterate) {
        if (unit < p.num_stations()) {
          const std::uint64_t before = stop_w_[p.st_in[unit]];
          settle_station(unit);
          changed = changed || stop_w_[p.st_in[unit]] != before;
        } else {
          const std::size_t k = unit - p.num_stations();
          const std::uint64_t stalled = ~shell_ready_word(k);
          for (std::uint32_t i = p.shell_in_begin[k];
               i < p.shell_in_begin[k + 1]; ++i) {
            const std::uint32_t in = p.shell_in_seg[i];
            const std::uint64_t up = stalled & fwd_w_[in];
            if (stop_w_[in] != up) {
              stop_w_[in] = up;
              changed = true;
            }
          }
        }
      }
    }
  }
}

void SlicedEngine::step_stations() {
  const Program& p = *prog_;
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    const std::uint64_t in_valid = fwd_w_[p.st_in[s]];
    const std::uint64_t front_valid = occ1_[s] & v0_[s];
    const std::uint64_t s_eff =
        p.strict ? stop_w_[p.st_out[s]] : (stop_w_[p.st_out[s]] & front_valid);
    const std::uint64_t consumed = occ1_[s] & ~s_eff;
    const std::uint64_t hm = half_mask_[s];

    // Full path: a 2-slot skid buffer with registered stop.
    const std::uint64_t f_accept =
        ~stop_reg_[s] & (p.strict ? kAll : in_valid);
    const std::uint64_t occ_a1 = (occ1_[s] & ~consumed) | occ2_[s];
    const std::uint64_t occ_a2 = occ2_[s] & ~consumed;
    const std::uint64_t v0_a = (consumed & v1_[s]) | (~consumed & v0_[s]);
    LIPLIB_ENSURE((f_accept & occ_a2 & ~hm) == 0, "xir full station overflow");
    const std::uint64_t v0_f =
        (f_accept & ~occ_a1 & in_valid) | ((~f_accept | occ_a1) & v0_a);
    const std::uint64_t v1_f =
        (f_accept & occ_a1 & in_valid) | ((~f_accept | ~occ_a1) & v1_[s]);
    const std::uint64_t occ_f1 = occ_a1 | f_accept;
    const std::uint64_t occ_f2 = occ_a2 | (f_accept & occ_a1);

    // Half path: a single slot with combinational stop.
    const std::uint64_t stop_up = occ1_[s] & s_eff;
    const std::uint64_t h_accept = ~stop_up & (p.strict ? kAll : in_valid);
    const std::uint64_t occ_d1 = occ1_[s] & ~consumed;
    LIPLIB_ENSURE((h_accept & occ_d1 & hm) == 0, "xir half station overflow");
    const std::uint64_t occ_h1 = occ_d1 | h_accept;
    const std::uint64_t v0_h = (h_accept & in_valid) | (~h_accept & v0_[s]);

    occ1_[s] = (occ_h1 & hm) | (occ_f1 & ~hm);
    occ2_[s] = occ_f2 & ~hm;
    v0_[s] = (v0_h & hm) | (v0_f & ~hm);
    v1_[s] = (v1_[s] & hm) | (v1_f & ~hm);
    stop_reg_[s] = occ_f2 & ~hm;
  }
}

void SlicedEngine::step() {
  const Program& p = *prog_;

  // Phase 1: forward validity.
  for (std::size_t b = 0; b < p.shell_br_seg.size(); ++b) {
    fwd_w_[p.shell_br_seg[b]] = pend_w_[b];
  }
  for (std::size_t b = 0; b < p.src_br_seg.size(); ++b) {
    fwd_w_[p.src_br_seg[b]] = src_pend_w_[b];
  }
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    fwd_w_[p.st_out[s]] = occ1_[s] & v0_[s];
  }

  // Phase 2: stops.
  settle_stops();

  // Phase 3: clock edge.
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    const std::uint64_t fire = shell_ready_word(k);
    for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
         ++b) {
      pend_w_[b] &= stop_w_[p.shell_br_seg[b]];  // consumers take the rest
      LIPLIB_ENSURE((fire & pend_w_[b]) == 0, "xir shell fired while pending");
      pend_w_[b] |= fire;
    }
    std::uint64_t fired = fire & live_mask_;
    while (fired != 0) {
      const int lane = std::countr_zero(fired);
      ++fires_[k * kLanes + static_cast<std::size_t>(lane)];
      fired &= fired - 1;
    }
  }
  step_stations();
  for (std::size_t s = 0; s < p.num_sources(); ++s) {
    std::uint64_t all_clear = kAll;
    for (std::uint32_t b = p.src_br_begin[s]; b < p.src_br_begin[s + 1]; ++b) {
      src_pend_w_[b] &= stop_w_[p.src_br_seg[b]];
      all_clear &= ~src_pend_w_[b];
    }
    for (std::uint32_t b = p.src_br_begin[s]; b < p.src_br_begin[s + 1]; ++b) {
      src_pend_w_[b] |= all_clear;  // always-ready source reloads
    }
  }
  ++cycle_;
}

std::uint64_t SlicedEngine::fires(std::size_t lane,
                                  graph::NodeId process) const {
  const Program& p = *prog_;
  LIPLIB_EXPECT(lane < num_lanes_, "lane out of range");
  LIPLIB_EXPECT(process < p.topo.nodes().size() &&
                    p.topo.node(process).kind == graph::NodeKind::kProcess,
                "node is not a process");
  return fires_[p.node_index[process] * kLanes + lane];
}

std::string SlicedEngine::lane_signature(std::size_t lane) const {
  LIPLIB_EXPECT(lane < num_lanes_, "lane out of range");
  const Program& p = *prog_;
  const std::uint64_t bit = 1ull << lane;
  std::string s;
  s.reserve(p.port_br_begin.size() * 2 + p.num_sources() + p.num_stations());
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    for (std::uint32_t port = p.shell_port_begin[k];
         port < p.shell_port_begin[k + 1]; ++port) {
      std::uint32_t mask = 0;
      for (std::uint32_t b = p.port_br_begin[port];
           b < p.port_br_begin[port + 1]; ++b) {
        if (pend_w_[b] & bit) mask |= 1u << (b - p.port_br_begin[port]);
      }
      s.push_back(static_cast<char>(mask & 0xff));
      s.push_back(static_cast<char>((mask >> 8) & 0xff));
    }
  }
  for (std::size_t src = 0; src < p.num_sources(); ++src) {
    std::uint32_t mask = 0;
    for (std::uint32_t b = p.src_br_begin[src]; b < p.src_br_begin[src + 1];
         ++b) {
      if (src_pend_w_[b] & bit) mask |= 1u << (b - p.src_br_begin[src]);
    }
    s.push_back(static_cast<char>(mask & 0xff));
  }
  for (std::size_t st = 0; st < p.num_stations(); ++st) {
    const unsigned occ = ((occ1_[st] & bit) ? 1u : 0u) +
                         ((occ2_[st] & bit) ? 1u : 0u);
    char b = static_cast<char>(occ);
    if (occ > 0 && (v0_[st] & bit)) b |= 4;
    if (occ > 1 && (v1_[st] & bit)) b |= 8;
    if (stop_reg_[st] & bit) b |= 16;
    s.push_back(b);
  }
  return s;
}

std::vector<SlicedEngine::LaneOutcome> SlicedEngine::analyze(
    std::uint64_t max_cycles, std::uint64_t env_period) {
  LIPLIB_EXPECT(env_period >= 1, "environment period must be >= 1");
  const Program& p = *prog_;
  const std::size_t shells = p.num_shells();

  std::vector<LaneOutcome> out(num_lanes_);
  for (auto& o : out) o.result.shell_ids = p.shell_node;

  // Repeat detection runs every cycle for every undecided lane, so both
  // halves of it are kept off the per-lane slow path:
  //
  //  - The per-lane state key is extracted for all lanes at once: the
  //    state planes — with stale valid bits masked by occupancy, so two
  //    plane slices are equal exactly when the lane_signature() strings
  //    are — are transposed 64 planes at a time, one word per lane per
  //    block, instead of a per-lane per-bit gather.  The environment
  //    phase rides as one extra key word.
  //
  //  - Visited states live in per-lane append-only pools (key words and
  //    fire counts), indexed by a flat open-addressed hash table with
  //    exact word comparison on probe hits, so a cycle costs two
  //    bump-appends instead of per-lane heap allocations.
  const std::size_t num_planes =
      pend_w_.size() + src_pend_w_.size() + 5 * p.num_stations();
  const std::size_t num_blocks = (num_planes + 63) / 64;
  const std::size_t key_words = num_blocks + 1;  ///< + environment phase
  std::vector<std::uint64_t> block(64);
  std::vector<std::uint64_t> lane_words(num_lanes_ * key_words);
  std::vector<std::uint64_t> planes(num_blocks * 64, 0);

  struct LaneSeen {
    std::vector<std::uint64_t> slot_hash;  ///< valid where slot_rec set
    std::vector<std::uint32_t> slot_rec;   ///< kEmptySlot = free slot
    std::vector<std::uint64_t> rec_cycle;  ///< per record
    std::vector<std::uint64_t> keys;       ///< key_words per record
    std::vector<std::uint64_t> fires;      ///< shells per record
  };
  std::vector<LaneSeen> seen(num_lanes_);
  for (auto& ls : seen) {
    ls.slot_hash.assign(1024, 0);
    ls.slot_rec.assign(1024, kEmptySlot);
  }

  auto hash_key = [key_words](const std::uint64_t* w) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < key_words; ++i) {
      h = (h ^ w[i]) * 1099511628211ull;
    }
    return h;
  };
  auto grow_table = [](LaneSeen& ls) {
    const std::size_t cap = ls.slot_rec.size() * 2;
    std::vector<std::uint64_t> hashes(cap, 0);
    std::vector<std::uint32_t> recs(cap, kEmptySlot);
    for (std::size_t s = 0; s < ls.slot_rec.size(); ++s) {
      if (ls.slot_rec[s] == kEmptySlot) continue;
      std::size_t pos = ls.slot_hash[s] & (cap - 1);
      while (recs[pos] != kEmptySlot) pos = (pos + 1) & (cap - 1);
      hashes[pos] = ls.slot_hash[s];
      recs[pos] = ls.slot_rec[s];
    }
    ls.slot_hash.swap(hashes);
    ls.slot_rec.swap(recs);
  };

  std::uint64_t active = live_mask_;
  for (std::uint64_t i = 0; i <= max_cycles && active != 0; ++i) {
    std::size_t n = 0;
    for (const std::uint64_t w : pend_w_) planes[n++] = w;
    for (const std::uint64_t w : src_pend_w_) planes[n++] = w;
    for (std::size_t s = 0; s < p.num_stations(); ++s) planes[n++] = occ1_[s];
    for (std::size_t s = 0; s < p.num_stations(); ++s) planes[n++] = occ2_[s];
    for (std::size_t s = 0; s < p.num_stations(); ++s) {
      planes[n++] = v0_[s] & occ1_[s];
    }
    for (std::size_t s = 0; s < p.num_stations(); ++s) {
      planes[n++] = v1_[s] & occ2_[s];
    }
    for (std::size_t s = 0; s < p.num_stations(); ++s) {
      planes[n++] = stop_reg_[s];
    }
    const std::uint64_t phase = cycle_ % env_period;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      std::copy(planes.begin() + static_cast<std::ptrdiff_t>(b * 64),
                planes.begin() + static_cast<std::ptrdiff_t>((b + 1) * 64),
                block.begin());
      transpose64(block.data());
      for (std::size_t lane = 0; lane < num_lanes_; ++lane) {
        lane_words[lane * key_words + b] = block[lane];
      }
    }
    for (std::size_t lane = 0; lane < num_lanes_; ++lane) {
      lane_words[lane * key_words + num_blocks] = phase;
    }
    for (std::size_t lane = 0; lane < num_lanes_; ++lane) {
      const std::uint64_t bit = 1ull << lane;
      if (!(active & bit)) continue;
      LaneSeen& ls = seen[lane];
      const std::uint64_t* key = &lane_words[lane * key_words];
      if ((ls.rec_cycle.size() + 1) * 3 >= ls.slot_rec.size() * 2) {
        grow_table(ls);
      }
      const std::uint64_t h = hash_key(key);
      const std::size_t mask = ls.slot_rec.size() - 1;
      std::size_t pos = h & mask;
      std::uint32_t first = kEmptySlot;
      while (ls.slot_rec[pos] != kEmptySlot) {
        if (ls.slot_hash[pos] == h &&
            std::equal(key, key + key_words,
                       ls.keys.begin() +
                           static_cast<std::ptrdiff_t>(ls.slot_rec[pos]) *
                               static_cast<std::ptrdiff_t>(key_words))) {
          first = ls.slot_rec[pos];  // true repeat of a visited state
          break;
        }
        pos = (pos + 1) & mask;
      }
      if (first == kEmptySlot) {
        const auto index = static_cast<std::uint32_t>(ls.rec_cycle.size());
        ls.slot_hash[pos] = h;
        ls.slot_rec[pos] = index;
        ls.rec_cycle.push_back(cycle_);
        ls.keys.insert(ls.keys.end(), key, key + key_words);
        for (std::size_t k = 0; k < shells; ++k) {
          ls.fires.push_back(fires_[k * kLanes + lane]);
        }
        continue;
      }
      auto& r = out[lane].result;
      r.found = true;
      r.transient = ls.rec_cycle[first];
      r.period = cycle_ - ls.rec_cycle[first];
      bool progress = false;
      for (std::size_t k = 0; k < shells; ++k) {
        const auto delta =
            fires_[k * kLanes + lane] - ls.fires[first * shells + k];
        if (delta > 0) progress = true;
        if (delta == 0) r.has_starved_shell = true;
        r.shell_throughput.emplace_back(static_cast<std::int64_t>(delta),
                                        static_cast<std::int64_t>(r.period));
      }
      r.deadlocked = !progress && shells > 0;
      out[lane].cycles = cycle_;
      active &= ~bit;
    }
    // Finished lanes keep stepping (their state is periodic; the extra
    // work is harmless) until every lane has an answer.
    if (active != 0) step();
  }
  for (std::size_t lane = 0; lane < num_lanes_; ++lane) {
    if (active & (1ull << lane)) out[lane].cycles = cycle_;
  }
  return out;
}

std::vector<skeleton::ScreeningVerdict> screen_variants(
    const graph::Topology& topo, const std::vector<VariantSpec>& variants,
    skeleton::SkeletonOptions opts, std::uint64_t max_cycles) {
  LIPLIB_EXPECT(!variants.empty() && variants.size() <= SlicedEngine::kLanes,
                "screen_variants batches 1..64 variants");
  SlicedEngine eng(lower(topo, opts), variants.size());
  std::uint64_t saturate = 0;
  for (std::size_t lane = 0; lane < variants.size(); ++lane) {
    if (!variants[lane].kinds.empty()) {
      eng.set_station_kinds(lane, variants[lane].kinds);
    }
    if (variants[lane].worst_case_occupancy) saturate |= 1ull << lane;
  }
  if (saturate != 0) eng.saturate_stations(saturate);
  const auto lanes = eng.analyze(max_cycles);
  std::vector<skeleton::ScreeningVerdict> verdicts(variants.size());
  for (std::size_t lane = 0; lane < variants.size(); ++lane) {
    const auto& r = lanes[lane].result;
    auto& v = verdicts[lane];
    v.ran_to_steady_state = r.found;
    v.deadlock_found = r.deadlocked || r.has_starved_shell;
    v.transient = r.transient;
    v.period = r.period;
    v.cycles_simulated = lanes[lane].cycles;
    v.min_throughput = r.system_throughput();
    v.starved = r.starved_shells();
  }
  return verdicts;
}

}  // namespace liplib::xir
