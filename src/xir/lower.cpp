// Lowering graph::Topology into the flattened xir IR, plus the settle
// schedule (Kahn order over the stop-dependency graph) and the probe
// wiring replay shared by both engines.

#include <queue>

#include "liplib/probe/probe.hpp"
#include "liplib/support/check.hpp"
#include "liplib/xir/xir.hpp"

namespace liplib::xir {

namespace {
constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
constexpr std::uint32_t kNoUnit = static_cast<std::uint32_t>(-1);
}  // namespace

const char* engine_mode_name(EngineMode m) {
  switch (m) {
    case EngineMode::kInterp:
      return "interp";
    case EngineMode::kCompiled:
      return "compiled";
    case EngineMode::kSliced:
      return "sliced";
  }
  return "interp";
}

bool parse_engine_mode(std::string_view name, EngineMode* out) {
  if (name == "interp") {
    *out = EngineMode::kInterp;
  } else if (name == "compiled") {
    *out = EngineMode::kCompiled;
  } else if (name == "sliced") {
    *out = EngineMode::kSliced;
  } else {
    return false;
  }
  return true;
}

SettleSchedule build_settle_schedule(
    const Program& p, const std::vector<std::uint8_t>& station_dynamic) {
  LIPLIB_EXPECT(station_dynamic.size() == p.num_stations(),
                "dynamic-station flags do not match the program");
  const std::size_t n_st = p.num_stations();
  const std::size_t n_units = n_st + p.num_shells();

  // Who writes each segment's stop during the dynamic part of a settle?
  // Dynamic (kHalf in some lane) stations write their upstream segment;
  // shells write every one of their input segments.  Everything else
  // (sink patterns, full-station stop_reg) is written once, before the
  // dynamic part, and is a constant for the schedule.
  std::vector<std::uint32_t> seg_writer(p.num_segments, kNoUnit);
  for (std::size_t s = 0; s < n_st; ++s) {
    if (station_dynamic[s]) {
      seg_writer[p.st_in[s]] = static_cast<std::uint32_t>(s);
    }
  }
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    const auto unit = static_cast<std::uint32_t>(n_st + k);
    for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
         ++i) {
      seg_writer[p.shell_in_seg[i]] = unit;
    }
  }

  // Dependency edges writer -> reader: a dynamic station reads the stop
  // of its downstream segment; a shell reads the stop of every out
  // branch.  (Valid bits are constants during a settle and contribute no
  // edges.)
  std::vector<std::vector<std::uint32_t>> out_edges(n_units);
  std::vector<std::uint32_t> indegree(n_units, 0);
  std::vector<std::uint8_t> is_dynamic(n_units, 1);
  auto add_edge = [&](std::size_t read_seg, std::uint32_t reader) {
    const std::uint32_t w = seg_writer[read_seg];
    if (w == kNoUnit) return;
    out_edges[w].push_back(reader);
    ++indegree[reader];
  };
  for (std::size_t s = 0; s < n_st; ++s) {
    if (!station_dynamic[s]) {
      is_dynamic[s] = 0;
      continue;
    }
    add_edge(p.st_out[s], static_cast<std::uint32_t>(s));
  }
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    const auto unit = static_cast<std::uint32_t>(n_st + k);
    for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
         ++b) {
      add_edge(p.shell_br_seg[b], unit);
    }
  }

  // Kahn's algorithm.  Units it releases have all their stop inputs
  // final when visited in order, so one evaluation each computes their
  // fixpoint value; the remainder sits on (or behind) combinational stop
  // cycles and must iterate.  Both pieces are deterministic: the ready
  // queue is seeded and drained in unit-id order.
  SettleSchedule sched;
  std::queue<std::uint32_t> ready;
  for (std::uint32_t u = 0; u < n_units; ++u) {
    if (is_dynamic[u] && indegree[u] == 0) ready.push(u);
  }
  std::vector<std::uint8_t> placed(n_units, 0);
  while (!ready.empty()) {
    const std::uint32_t u = ready.front();
    ready.pop();
    sched.order.push_back(u);
    placed[u] = 1;
    for (std::uint32_t v : out_edges[u]) {
      if (--indegree[v] == 0) ready.push(v);
    }
  }
  for (std::uint32_t u = 0; u < n_units; ++u) {
    if (is_dynamic[u] && !placed[u]) sched.iterate.push_back(u);
  }
  return sched;
}

ProgramRef lower(const graph::Topology& topo, skeleton::SkeletonOptions opts) {
  LIPLIB_EXPECT(opts.input_queue_depth == 0,
                "xir lowers the paper's simplified shell only "
                "(input_queue_depth == 0); queued shells run on the "
                "interpreted skeleton");
  const auto report = topo.validate(/*require_station_between_shells=*/true);
  LIPLIB_EXPECT(report.ok(),
                "topology has structural errors:\n" + report.to_string());

  auto prog = std::make_shared<Program>();
  Program& p = *prog;
  p.topo = topo;
  p.opts = opts;
  p.strict = opts.policy == lip::StopPolicy::kCarloniStrict;
  p.pessimistic = opts.resolution == lip::StopResolution::kPessimistic;

  p.node_index.assign(topo.nodes().size(), kNoIndex);
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    const auto& node = topo.node(v);
    switch (node.kind) {
      case graph::NodeKind::kProcess:
        p.node_index[v] = p.shell_node.size();
        p.shell_node.push_back(v);
        break;
      case graph::NodeKind::kSource:
        p.node_index[v] = p.src_node.size();
        p.src_node.push_back(v);
        break;
      case graph::NodeKind::kSink:
        p.node_index[v] = p.sink_node.size();
        p.sink_node.push_back(v);
        break;
    }
  }

  // Input-segment CSR, sized up front (slots are filled per channel).
  p.shell_in_begin.assign(p.num_shells() + 1, 0);
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    p.shell_in_begin[k + 1] =
        p.shell_in_begin[k] +
        static_cast<std::uint32_t>(topo.node(p.shell_node[k]).num_inputs);
  }
  p.shell_in_seg.assign(p.shell_in_begin.back(), 0);
  p.sink_seg.assign(p.num_sinks(), 0);

  // Branch lists accumulate per port while walking channels (channels
  // interleave ports), then flatten port-major — the exact order the
  // interpreter's per-port push_back produces.
  std::vector<std::vector<std::vector<std::uint32_t>>> shell_br(
      p.num_shells());
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    shell_br[k].resize(topo.node(p.shell_node[k]).num_outputs);
  }
  std::vector<std::vector<std::uint32_t>> src_br(p.num_sources());

  // Segments and stations, channel by channel — the same sequential
  // layout as the interpreter's constructor, so segment and station ids
  // are interchangeable across engines and probe wiring.
  std::size_t next_seg = 0;
  for (graph::ChannelId c = 0; c < topo.channels().size(); ++c) {
    const auto& ch = topo.channel(c);
    const std::size_t first = next_seg;
    next_seg += ch.num_stations() + 1;
    const auto& from_node = topo.node(ch.from.node);
    if (from_node.kind == graph::NodeKind::kProcess) {
      auto& branches = shell_br[p.node_index[ch.from.node]][ch.from.port];
      LIPLIB_EXPECT(branches.size() < 32,
                    "more than 32 fanout branches on output port " +
                        std::to_string(ch.from.port) + " of '" +
                        from_node.name + "'");
      branches.push_back(static_cast<std::uint32_t>(first));
    } else {
      auto& branches = src_br[p.node_index[ch.from.node]];
      LIPLIB_EXPECT(branches.size() < 32,
                    "more than 32 fanout branches on source '" +
                        from_node.name + "'");
      branches.push_back(static_cast<std::uint32_t>(first));
    }
    for (std::size_t i = 0; i < ch.num_stations(); ++i) {
      p.st_in.push_back(static_cast<std::uint32_t>(first + i));
      p.st_out.push_back(static_cast<std::uint32_t>(first + i + 1));
      p.st_half.push_back(ch.stations[i] == graph::RsKind::kHalf ? 1 : 0);
    }
    const auto& to_node = topo.node(ch.to.node);
    const auto last = static_cast<std::uint32_t>(next_seg - 1);
    if (to_node.kind == graph::NodeKind::kProcess) {
      const std::size_t k = p.node_index[ch.to.node];
      p.shell_in_seg[p.shell_in_begin[k] + ch.to.port] = last;
    } else {
      p.sink_seg[p.node_index[ch.to.node]] = last;
    }
  }
  p.num_segments = next_seg;

  // Flatten the branch lists into CSR form.
  p.shell_br_begin.assign(1, 0);
  p.shell_port_begin.assign(1, 0);
  p.port_br_begin.assign(1, 0);
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    for (const auto& port : shell_br[k]) {
      p.shell_br_seg.insert(p.shell_br_seg.end(), port.begin(), port.end());
      p.port_br_begin.push_back(
          static_cast<std::uint32_t>(p.shell_br_seg.size()));
    }
    p.shell_br_begin.push_back(
        static_cast<std::uint32_t>(p.shell_br_seg.size()));
    p.shell_port_begin.push_back(
        static_cast<std::uint32_t>(p.port_br_begin.size() - 1));
  }
  p.src_br_begin.assign(1, 0);
  for (std::size_t s = 0; s < p.num_sources(); ++s) {
    p.src_br_seg.insert(p.src_br_seg.end(), src_br[s].begin(),
                        src_br[s].end());
    p.src_br_begin.push_back(static_cast<std::uint32_t>(p.src_br_seg.size()));
  }

  p.schedule = build_settle_schedule(p, p.st_half);
  return prog;
}

void build_probe_wiring(const Program& p, probe::Wiring* out) {
  const graph::Topology& topo = p.topo;
  probe::Wiring& w = *out;
  w = probe::Wiring{};
  w.strict = p.strict;
  w.segments.resize(p.num_segments);
  w.stations.resize(p.num_stations());
  std::size_t seg = 0;
  std::size_t station = 0;
  for (graph::ChannelId c = 0; c < topo.channels().size(); ++c) {
    const auto& ch = topo.channel(c);
    const std::size_t n_st = ch.num_stations();
    for (std::size_t h = 0; h <= n_st; ++h) {
      probe::Wiring::Segment& s = w.segments[seg + h];
      s.channel = c;
      s.hop = h;
      if (h == 0) {
        const auto& from = topo.node(ch.from.node);
        s.producer.kind = from.kind == graph::NodeKind::kProcess
                              ? probe::UnitKind::kShell
                              : probe::UnitKind::kSource;
        s.producer.index = p.node_index[ch.from.node];
      } else {
        s.producer.kind = probe::UnitKind::kStation;
        s.producer.index = station + h - 1;
      }
      if (h < n_st) {
        s.consumer.kind = probe::UnitKind::kStation;
        s.consumer.index = station + h;
      } else {
        const auto& to = topo.node(ch.to.node);
        s.consumer.kind = to.kind == graph::NodeKind::kProcess
                              ? probe::UnitKind::kShell
                              : probe::UnitKind::kSink;
        s.consumer.index = p.node_index[ch.to.node];
      }
    }
    for (std::size_t k = 0; k < n_st; ++k) {
      probe::Wiring::Station& st = w.stations[station + k];
      st.channel = c;
      st.index = k;
      st.full = p.st_half[station + k] == 0;
      st.in_seg = p.st_in[station + k];
      st.out_seg = p.st_out[station + k];
    }
    seg += n_st + 1;
    station += n_st;
  }
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    probe::Wiring::Shell sh;
    sh.node = p.shell_node[k];
    for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
         ++i) {
      sh.in_segs.push_back(p.shell_in_seg[i]);
    }
    for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
         ++b) {
      sh.out_segs.push_back(p.shell_br_seg[b]);
    }
    w.shells.push_back(std::move(sh));
  }
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    if (topo.node(v).kind == graph::NodeKind::kSource) {
      w.sources.push_back({v});
    } else if (topo.node(v).kind == graph::NodeKind::kSink) {
      w.sinks.push_back({v});
    }
  }
}

}  // namespace liplib::xir
