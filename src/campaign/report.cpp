#include "liplib/campaign/report.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <sstream>

namespace liplib::campaign {

namespace {

constexpr Outcome kAllOutcomes[] = {
    Outcome::kLive,            Outcome::kDeadlock, Outcome::kStarvation,
    Outcome::kBudgetExhausted, Outcome::kMismatch, Outcome::kError,
};

std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::size_t Aggregate::count(Outcome o) const {
  for (const auto& [outcome, n] : outcomes) {
    if (outcome == o) return n;
  }
  return 0;
}

std::optional<Rational> Aggregate::min_throughput() const {
  if (throughputs.empty()) return std::nullopt;
  return throughputs.front().first;
}

std::optional<Rational> Aggregate::max_throughput() const {
  if (throughputs.empty()) return std::nullopt;
  return throughputs.back().first;
}

namespace {

/// The exported percentile ladder (integer percents; exact ranks).
constexpr int kPercentiles[] = {0, 25, 50, 75, 90, 99, 100};

/// Nearest-rank percentile over the sorted (value, count) multiset.
Rational multiset_percentile(
    const std::vector<std::pair<Rational, std::size_t>>& sorted,
    std::size_t total, int pct) {
  std::size_t rank =
      pct == 0 ? 1
               : (static_cast<std::size_t>(pct) * total + 99) / 100;
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::size_t seen = 0;
  for (const auto& [value, count] : sorted) {
    seen += count;
    if (seen >= rank) return value;
  }
  return sorted.back().first;
}

/// An aggregate with the schema-stable outcome histogram shape and
/// nothing counted yet — the identity element of merge().
Aggregate empty_aggregate() {
  Aggregate agg;
  for (Outcome o : kAllOutcomes) agg.outcomes.emplace_back(o, 0);
  return agg;
}

/// Recomputes every derived view (the fleet throughput-percentile
/// ladder, blame ordering) from the exact distributions.  Pure in the
/// exact state, so recomputing after a merge yields the same bytes a
/// direct single-pass aggregation would.
void refresh_derived(Aggregate& agg) {
  agg.fleet.throughput_percentiles.clear();
  std::size_t tp_total = 0;
  for (const auto& [value, count] : agg.throughputs) {
    (void)value;
    tp_total += count;
  }
  if (tp_total > 0) {
    for (int pct : kPercentiles) {
      agg.fleet.throughput_percentiles.emplace_back(
          "p" + std::to_string(pct),
          multiset_percentile(agg.throughputs, tp_total, pct));
    }
  }
  std::stable_sort(agg.fleet.blame_by_culprit.begin(),
                   agg.fleet.blame_by_culprit.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
}

/// Single-pass aggregation of a contiguous result block — the only
/// place a JobResult is folded; everything coarser goes through
/// merge().  Derived views are left for the caller to refresh.
Aggregate aggregate_block(const std::vector<JobResult>& results,
                          std::size_t lo, std::size_t hi) {
  Aggregate agg = empty_aggregate();
  agg.total = hi - lo;
  // std::map over exact Rationals: deterministic ascending order.
  std::map<Rational, std::size_t> tp;
  std::map<std::string, std::uint64_t> blame;
  for (std::size_t i = lo; i < hi; ++i) {
    const auto& r = results[i];
    agg.total_cycles += r.cycles;
    ++agg.outcomes[static_cast<std::size_t>(r.outcome)].second;
    if (r.has_throughput) {
      ++tp[r.throughput];
      agg.fleet.transient.record(r.transient);
      agg.fleet.period.record(r.period);
    }
    agg.fleet.cycles.record(r.cycles);
    for (const auto& [culprit, cycles] : r.blame) blame[culprit] += cycles;
    if (r.outcome != Outcome::kLive) agg.failures.push_back(r);
  }
  agg.throughputs.assign(tp.begin(), tp.end());
  agg.fleet.blame_by_culprit.assign(blame.begin(), blame.end());
  return agg;
}

/// In-place merge of the exact distributions (derived views are NOT
/// refreshed — callers do that once at the end so a left fold over many
/// blocks stays linear).
void merge_into(Aggregate& into, const Aggregate& from) {
  into.total += from.total;
  into.total_cycles += from.total_cycles;

  // Outcome histogram: tolerate a default-constructed identity (empty
  // outcomes vector) on either side.
  std::vector<std::pair<Outcome, std::size_t>> outcomes;
  outcomes.reserve(std::size(kAllOutcomes));
  for (Outcome o : kAllOutcomes) {
    std::size_t n = 0;
    for (const auto& [oo, c] : into.outcomes) {
      if (oo == o) n += c;
    }
    for (const auto& [oo, c] : from.outcomes) {
      if (oo == o) n += c;
    }
    outcomes.emplace_back(o, n);
  }
  into.outcomes = std::move(outcomes);

  // Exact throughput multiset: two sorted runs, equal values summed.
  std::vector<std::pair<Rational, std::size_t>> tp;
  tp.reserve(into.throughputs.size() + from.throughputs.size());
  std::size_t i = 0, j = 0;
  while (i < into.throughputs.size() || j < from.throughputs.size()) {
    if (j >= from.throughputs.size() ||
        (i < into.throughputs.size() &&
         into.throughputs[i].first < from.throughputs[j].first)) {
      tp.push_back(into.throughputs[i++]);
    } else if (i >= into.throughputs.size() ||
               from.throughputs[j].first < into.throughputs[i].first) {
      tp.push_back(from.throughputs[j++]);
    } else {
      tp.emplace_back(into.throughputs[i].first,
                      into.throughputs[i].second + from.throughputs[j].second);
      ++i;
      ++j;
    }
  }
  into.throughputs = std::move(tp);

  // Failure records: both sides are index-sorted; keep the union so.
  const auto mid = static_cast<std::ptrdiff_t>(into.failures.size());
  into.failures.insert(into.failures.end(), from.failures.begin(),
                       from.failures.end());
  std::inplace_merge(into.failures.begin(), into.failures.begin() + mid,
                     into.failures.end(),
                     [](const JobResult& a, const JobResult& b) {
                       return a.index < b.index;
                     });

  into.fleet.transient.merge(from.fleet.transient);
  into.fleet.period.merge(from.fleet.period);
  into.fleet.cycles.merge(from.fleet.cycles);
  std::map<std::string, std::uint64_t> blame;
  for (const auto& [culprit, cycles] : into.fleet.blame_by_culprit) {
    blame[culprit] += cycles;
  }
  for (const auto& [culprit, cycles] : from.fleet.blame_by_culprit) {
    blame[culprit] += cycles;
  }
  into.fleet.blame_by_culprit.assign(blame.begin(), blame.end());
}

}  // namespace

Aggregate merge(const Aggregate& a, const Aggregate& b) {
  Aggregate m = a;
  merge_into(m, b);
  refresh_derived(m);
  return m;
}

Aggregate aggregate(const std::vector<JobResult>& results) {
  // The same merge() fold the distributed layer runs over shard
  // partials, here over fixed blocks of the local result vector —
  // associativity makes the block size (and the shard split) invisible
  // in the output bytes.
  constexpr std::size_t kBlock = 4096;
  Aggregate agg = empty_aggregate();
  for (std::size_t lo = 0; lo < results.size(); lo += kBlock) {
    merge_into(agg,
               aggregate_block(results, lo,
                               std::min(results.size(), lo + kBlock)));
  }
  refresh_derived(agg);
  return agg;
}

Aggregate aggregate_from_json(const Json& doc) {
  LIPLIB_EXPECT(doc.is_object(), "aggregate document must be a JSON object");
  const Json* schema = doc.find("schema");
  LIPLIB_EXPECT(schema && schema->is_string() &&
                    schema->as_string() == "liplib.campaign.aggregate/2",
                "aggregate document missing schema "
                "liplib.campaign.aggregate/2");
  auto uint_of = [](const Json& j, const char* key) {
    const Json* f = j.find(key);
    LIPLIB_EXPECT(f && f->is_number(),
                  std::string("aggregate field '") + key +
                      "' missing or non-numeric");
    return f->as_uint();
  };
  auto string_of = [](const Json& j, const char* key) -> const std::string& {
    const Json* f = j.find(key);
    LIPLIB_EXPECT(f && f->is_string(),
                  std::string("aggregate field '") + key +
                      "' missing or non-string");
    return f->as_string();
  };

  Aggregate agg = empty_aggregate();
  agg.total = uint_of(doc, "total_jobs");
  agg.total_cycles = uint_of(doc, "total_cycles");

  const Json* outcomes = doc.find("outcomes");
  LIPLIB_EXPECT(outcomes && outcomes->is_object(),
                "aggregate document missing 'outcomes'");
  for (const auto& [name, count] : outcomes->members()) {
    Outcome o;
    LIPLIB_EXPECT(parse_outcome(name, &o),
                  "unknown outcome '" + name + "' in aggregate document");
    LIPLIB_EXPECT(count.is_number(), "outcome count must be a number");
    agg.outcomes[static_cast<std::size_t>(o)].second = count.as_uint();
  }

  const Json* tp = doc.find("throughput_histogram");
  LIPLIB_EXPECT(tp && tp->is_array(),
                "aggregate document missing 'throughput_histogram'");
  for (const Json& row : tp->elements()) {
    agg.throughputs.emplace_back(Rational::parse(string_of(row, "throughput")),
                                 uint_of(row, "jobs"));
  }
  LIPLIB_EXPECT(std::is_sorted(agg.throughputs.begin(), agg.throughputs.end(),
                               [](const auto& a, const auto& b) {
                                 return a.first < b.first;
                               }),
                "aggregate throughput histogram is not sorted");

  const Json* fleet = doc.find("fleet");
  LIPLIB_EXPECT(fleet && fleet->is_object(),
                "aggregate document missing 'fleet'");
  auto hist_of = [&fleet](const char* key) {
    const Json* f = fleet->find(key);
    LIPLIB_EXPECT(f, std::string("aggregate fleet missing '") + key + "'");
    return metrics::LogHistogram::from_json(*f);
  };
  agg.fleet.transient = hist_of("transient");
  agg.fleet.period = hist_of("period");
  agg.fleet.cycles = hist_of("cycles");
  const Json* blame = fleet->find("blame_by_culprit");
  LIPLIB_EXPECT(blame && blame->is_array(),
                "aggregate fleet missing 'blame_by_culprit'");
  for (const Json& row : blame->elements()) {
    agg.fleet.blame_by_culprit.emplace_back(string_of(row, "culprit"),
                                            uint_of(row, "cycles"));
  }

  const Json* failures = doc.find("failures");
  LIPLIB_EXPECT(failures && failures->is_array(),
                "aggregate document missing 'failures'");
  for (const Json& row : failures->elements()) {
    JobResult r;
    r.index = uint_of(row, "index");
    r.name = string_of(row, "name");
    r.seed = uint_of(row, "seed");
    LIPLIB_EXPECT(parse_outcome(string_of(row, "outcome"), &r.outcome),
                  "unknown failure outcome in aggregate document");
    r.cycles = uint_of(row, "cycles");
    r.detail = string_of(row, "detail");
    agg.failures.push_back(std::move(r));
  }
  LIPLIB_EXPECT(std::is_sorted(agg.failures.begin(), agg.failures.end(),
                               [](const JobResult& a, const JobResult& b) {
                                 return a.index < b.index;
                               }),
                "aggregate failures are not in job-index order");

  refresh_derived(agg);
  return agg;
}

Json to_json(const Aggregate& agg) {
  Json outcomes = Json::object();
  for (const auto& [o, n] : agg.outcomes) {
    outcomes.set(outcome_name(o), n);
  }

  Json throughputs = Json::array();
  for (const auto& [t, n] : agg.throughputs) {
    throughputs.push(Json::object().set("throughput", t).set("jobs", n));
  }

  Json failures = Json::array();
  for (const auto& r : agg.failures) {
    failures.push(Json::object()
                      .set("index", r.index)
                      .set("name", r.name)
                      .set("seed", r.seed)
                      .set("outcome", outcome_name(r.outcome))
                      .set("cycles", r.cycles)
                      .set("detail", r.detail));
  }

  Json pct = Json::object();
  for (const auto& [name, value] : agg.fleet.throughput_percentiles) {
    pct.set(name, value);
  }
  Json blame = Json::array();
  for (const auto& [culprit, cycles] : agg.fleet.blame_by_culprit) {
    blame.push(Json::object().set("culprit", culprit).set("cycles", cycles));
  }
  Json fleet = Json::object()
                   .set("throughput_percentiles",
                        agg.fleet.throughput_percentiles.empty()
                            ? Json()
                            : std::move(pct))
                   .set("transient", agg.fleet.transient.to_json())
                   .set("period", agg.fleet.period.to_json())
                   .set("cycles", agg.fleet.cycles.to_json())
                   .set("blame_by_culprit", std::move(blame));

  // min/max are null (not 0) when no job reported a throughput — a real
  // all-deadlock campaign reports "0".
  return Json::object()
      .set("schema", "liplib.campaign.aggregate/2")
      .set("total_jobs", agg.total)
      .set("total_cycles", agg.total_cycles)
      .set("outcomes", std::move(outcomes))
      .set("min_throughput",
           agg.min_throughput() ? Json(*agg.min_throughput()) : Json())
      .set("max_throughput",
           agg.max_throughput() ? Json(*agg.max_throughput()) : Json())
      .set("throughput_histogram", std::move(throughputs))
      .set("fleet", std::move(fleet))
      .set("failures", std::move(failures));
}

std::string to_csv(const std::vector<JobResult>& results) {
  std::ostringstream os;
  os << "index,name,seed,outcome,cycles,throughput,transient,period,"
        "detail,top_blame\n";
  for (const auto& r : results) {
    std::string blame;
    for (const auto& [culprit, cycles] : r.blame) {
      if (!blame.empty()) blame += ';';
      blame += culprit + ":" + std::to_string(cycles);
    }
    os << r.index << ',' << csv_quote(r.name) << ',' << r.seed << ','
       << outcome_name(r.outcome) << ',' << r.cycles << ','
       << (r.has_throughput ? r.throughput.str() : "") << ','
       << r.transient << ',' << r.period << ',' << csv_quote(r.detail)
       << ',' << csv_quote(blame) << '\n';
  }
  return os.str();
}

std::string fleet_to_csv(const Aggregate& agg) {
  std::ostringstream os;
  os << "metric,value\n";
  for (const auto& [name, value] : agg.fleet.throughput_percentiles) {
    os << "throughput_" << name << ',' << value.str() << '\n';
  }
  auto hist = [&](const char* name, const metrics::LogHistogram& h) {
    os << name << "_count," << h.count() << '\n';
    os << name << "_min," << h.min() << '\n';
    os << name << "_p50," << h.percentile(50) << '\n';
    os << name << "_p90," << h.percentile(90) << '\n';
    os << name << "_p99," << h.percentile(99) << '\n';
    os << name << "_max," << h.max() << '\n';
  };
  hist("transient", agg.fleet.transient);
  hist("period", agg.fleet.period);
  hist("cycles", agg.fleet.cycles);
  for (const auto& [culprit, cycles] : agg.fleet.blame_by_culprit) {
    os << csv_quote("blame." + culprit) << ',' << cycles << '\n';
  }
  return os.str();
}

}  // namespace liplib::campaign
