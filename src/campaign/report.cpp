#include "liplib/campaign/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace liplib::campaign {

namespace {

constexpr Outcome kAllOutcomes[] = {
    Outcome::kLive,            Outcome::kDeadlock, Outcome::kStarvation,
    Outcome::kBudgetExhausted, Outcome::kMismatch, Outcome::kError,
};

std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::size_t Aggregate::count(Outcome o) const {
  for (const auto& [outcome, n] : outcomes) {
    if (outcome == o) return n;
  }
  return 0;
}

Rational Aggregate::min_throughput() const {
  return throughputs.empty() ? Rational(0) : throughputs.front().first;
}

Rational Aggregate::max_throughput() const {
  return throughputs.empty() ? Rational(0) : throughputs.back().first;
}

Aggregate aggregate(const std::vector<JobResult>& results) {
  Aggregate agg;
  agg.total = results.size();
  std::map<Outcome, std::size_t> hist;
  // std::map over exact Rationals: deterministic ascending order.
  std::map<Rational, std::size_t> tp;
  for (const auto& r : results) {
    agg.total_cycles += r.cycles;
    ++hist[r.outcome];
    if (r.has_throughput) ++tp[r.throughput];
    if (r.outcome != Outcome::kLive) agg.failures.push_back(r);
  }
  for (Outcome o : kAllOutcomes) {
    agg.outcomes.emplace_back(o, hist.count(o) ? hist[o] : 0);
  }
  agg.throughputs.assign(tp.begin(), tp.end());
  return agg;
}

Json to_json(const Aggregate& agg) {
  Json outcomes = Json::object();
  for (const auto& [o, n] : agg.outcomes) {
    outcomes.set(outcome_name(o), n);
  }

  Json throughputs = Json::array();
  for (const auto& [t, n] : agg.throughputs) {
    throughputs.push(Json::object().set("throughput", t).set("jobs", n));
  }

  Json failures = Json::array();
  for (const auto& r : agg.failures) {
    failures.push(Json::object()
                      .set("index", r.index)
                      .set("name", r.name)
                      .set("seed", r.seed)
                      .set("outcome", outcome_name(r.outcome))
                      .set("cycles", r.cycles)
                      .set("detail", r.detail));
  }

  return Json::object()
      .set("schema", "liplib.campaign.aggregate/1")
      .set("total_jobs", agg.total)
      .set("total_cycles", agg.total_cycles)
      .set("outcomes", std::move(outcomes))
      .set("min_throughput", agg.min_throughput())
      .set("max_throughput", agg.max_throughput())
      .set("throughput_histogram", std::move(throughputs))
      .set("failures", std::move(failures));
}

std::string to_csv(const std::vector<JobResult>& results) {
  std::ostringstream os;
  os << "index,name,seed,outcome,cycles,throughput,transient,period,"
        "detail\n";
  for (const auto& r : results) {
    os << r.index << ',' << csv_quote(r.name) << ',' << r.seed << ','
       << outcome_name(r.outcome) << ',' << r.cycles << ','
       << (r.has_throughput ? r.throughput.str() : "") << ','
       << r.transient << ',' << r.period << ',' << csv_quote(r.detail)
       << '\n';
  }
  return os.str();
}

}  // namespace liplib::campaign
