#include "liplib/campaign/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace liplib::campaign {

namespace {

constexpr Outcome kAllOutcomes[] = {
    Outcome::kLive,            Outcome::kDeadlock, Outcome::kStarvation,
    Outcome::kBudgetExhausted, Outcome::kMismatch, Outcome::kError,
};

std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::size_t Aggregate::count(Outcome o) const {
  for (const auto& [outcome, n] : outcomes) {
    if (outcome == o) return n;
  }
  return 0;
}

std::optional<Rational> Aggregate::min_throughput() const {
  if (throughputs.empty()) return std::nullopt;
  return throughputs.front().first;
}

std::optional<Rational> Aggregate::max_throughput() const {
  if (throughputs.empty()) return std::nullopt;
  return throughputs.back().first;
}

namespace {

/// The exported percentile ladder (integer percents; exact ranks).
constexpr int kPercentiles[] = {0, 25, 50, 75, 90, 99, 100};

/// Nearest-rank percentile over the sorted (value, count) multiset.
Rational multiset_percentile(
    const std::vector<std::pair<Rational, std::size_t>>& sorted,
    std::size_t total, int pct) {
  std::size_t rank =
      pct == 0 ? 1
               : (static_cast<std::size_t>(pct) * total + 99) / 100;
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::size_t seen = 0;
  for (const auto& [value, count] : sorted) {
    seen += count;
    if (seen >= rank) return value;
  }
  return sorted.back().first;
}

FleetMetrics fold_fleet(const std::vector<JobResult>& results,
                        const Aggregate& agg) {
  FleetMetrics fleet;
  std::map<std::string, std::uint64_t> blame;
  std::size_t tp_total = 0;
  for (const auto& [value, count] : agg.throughputs) {
    (void)value;
    tp_total += count;
  }
  for (const auto& r : results) {
    fleet.cycles.record(r.cycles);
    if (r.has_throughput) {
      fleet.transient.record(r.transient);
      fleet.period.record(r.period);
    }
    for (const auto& [culprit, cycles] : r.blame) blame[culprit] += cycles;
  }
  if (tp_total > 0) {
    for (int pct : kPercentiles) {
      fleet.throughput_percentiles.emplace_back(
          "p" + std::to_string(pct),
          multiset_percentile(agg.throughputs, tp_total, pct));
    }
  }
  fleet.blame_by_culprit.assign(blame.begin(), blame.end());
  std::stable_sort(fleet.blame_by_culprit.begin(),
                   fleet.blame_by_culprit.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
  return fleet;
}

}  // namespace

Aggregate aggregate(const std::vector<JobResult>& results) {
  Aggregate agg;
  agg.total = results.size();
  std::map<Outcome, std::size_t> hist;
  // std::map over exact Rationals: deterministic ascending order.
  std::map<Rational, std::size_t> tp;
  for (const auto& r : results) {
    agg.total_cycles += r.cycles;
    ++hist[r.outcome];
    if (r.has_throughput) ++tp[r.throughput];
    if (r.outcome != Outcome::kLive) agg.failures.push_back(r);
  }
  for (Outcome o : kAllOutcomes) {
    agg.outcomes.emplace_back(o, hist.count(o) ? hist[o] : 0);
  }
  agg.throughputs.assign(tp.begin(), tp.end());
  agg.fleet = fold_fleet(results, agg);
  return agg;
}

Json to_json(const Aggregate& agg) {
  Json outcomes = Json::object();
  for (const auto& [o, n] : agg.outcomes) {
    outcomes.set(outcome_name(o), n);
  }

  Json throughputs = Json::array();
  for (const auto& [t, n] : agg.throughputs) {
    throughputs.push(Json::object().set("throughput", t).set("jobs", n));
  }

  Json failures = Json::array();
  for (const auto& r : agg.failures) {
    failures.push(Json::object()
                      .set("index", r.index)
                      .set("name", r.name)
                      .set("seed", r.seed)
                      .set("outcome", outcome_name(r.outcome))
                      .set("cycles", r.cycles)
                      .set("detail", r.detail));
  }

  Json pct = Json::object();
  for (const auto& [name, value] : agg.fleet.throughput_percentiles) {
    pct.set(name, value);
  }
  Json blame = Json::array();
  for (const auto& [culprit, cycles] : agg.fleet.blame_by_culprit) {
    blame.push(Json::object().set("culprit", culprit).set("cycles", cycles));
  }
  Json fleet = Json::object()
                   .set("throughput_percentiles",
                        agg.fleet.throughput_percentiles.empty()
                            ? Json()
                            : std::move(pct))
                   .set("transient", agg.fleet.transient.to_json())
                   .set("period", agg.fleet.period.to_json())
                   .set("cycles", agg.fleet.cycles.to_json())
                   .set("blame_by_culprit", std::move(blame));

  // min/max are null (not 0) when no job reported a throughput — a real
  // all-deadlock campaign reports "0".
  return Json::object()
      .set("schema", "liplib.campaign.aggregate/2")
      .set("total_jobs", agg.total)
      .set("total_cycles", agg.total_cycles)
      .set("outcomes", std::move(outcomes))
      .set("min_throughput",
           agg.min_throughput() ? Json(*agg.min_throughput()) : Json())
      .set("max_throughput",
           agg.max_throughput() ? Json(*agg.max_throughput()) : Json())
      .set("throughput_histogram", std::move(throughputs))
      .set("fleet", std::move(fleet))
      .set("failures", std::move(failures));
}

std::string to_csv(const std::vector<JobResult>& results) {
  std::ostringstream os;
  os << "index,name,seed,outcome,cycles,throughput,transient,period,"
        "detail,top_blame\n";
  for (const auto& r : results) {
    std::string blame;
    for (const auto& [culprit, cycles] : r.blame) {
      if (!blame.empty()) blame += ';';
      blame += culprit + ":" + std::to_string(cycles);
    }
    os << r.index << ',' << csv_quote(r.name) << ',' << r.seed << ','
       << outcome_name(r.outcome) << ',' << r.cycles << ','
       << (r.has_throughput ? r.throughput.str() : "") << ','
       << r.transient << ',' << r.period << ',' << csv_quote(r.detail)
       << ',' << csv_quote(blame) << '\n';
  }
  return os.str();
}

std::string fleet_to_csv(const Aggregate& agg) {
  std::ostringstream os;
  os << "metric,value\n";
  for (const auto& [name, value] : agg.fleet.throughput_percentiles) {
    os << "throughput_" << name << ',' << value.str() << '\n';
  }
  auto hist = [&](const char* name, const metrics::LogHistogram& h) {
    os << name << "_count," << h.count() << '\n';
    os << name << "_min," << h.min() << '\n';
    os << name << "_p50," << h.percentile(50) << '\n';
    os << name << "_p90," << h.percentile(90) << '\n';
    os << name << "_p99," << h.percentile(99) << '\n';
    os << name << "_max," << h.max() << '\n';
  };
  hist("transient", agg.fleet.transient);
  hist("period", agg.fleet.period);
  hist("cycles", agg.fleet.cycles);
  for (const auto& [culprit, cycles] : agg.fleet.blame_by_culprit) {
    os << csv_quote("blame." + culprit) << ',' << cycles << '\n';
  }
  return os.str();
}

}  // namespace liplib::campaign
