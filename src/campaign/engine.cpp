#include "liplib/campaign/campaign.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "liplib/support/check.hpp"

namespace liplib::campaign {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kLive: return "live";
    case Outcome::kDeadlock: return "deadlock";
    case Outcome::kStarvation: return "starvation";
    case Outcome::kBudgetExhausted: return "budget_exhausted";
    case Outcome::kMismatch: return "mismatch";
    case Outcome::kError: return "error";
  }
  return "unknown";
}

bool parse_outcome(const std::string& name, Outcome* out) {
  for (Outcome o : {Outcome::kLive, Outcome::kDeadlock, Outcome::kStarvation,
                    Outcome::kBudgetExhausted, Outcome::kMismatch,
                    Outcome::kError}) {
    if (name == outcome_name(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

std::uint64_t job_seed(std::uint64_t base_seed, std::uint64_t index) {
  // SplitMix64 over the combined value: adjacent indices yield
  // well-separated streams, and the combination is platform-independent.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

/// A contiguous run of job indices [lo, hi) — the unit the pool hands
/// out and steals.  Chunking amortizes the deque mutex over many small
/// jobs (the 320-screen bench spends ~30 µs per job; per-job handout
/// made 8 threads slower than 1).
struct Chunk {
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// One worker's chunk deque.  The owner pops from the front, thieves
/// pop from the back; a mutex per deque is ample since chunks are
/// coarse (dozens of simulations) relative to the lock.  Cache-line
/// aligned so neighbouring workers' mutexes and cursors never share a
/// line (deques live in one contiguous vector).
struct alignas(64) WorkDeque {
  std::mutex m;
  std::deque<Chunk> chunks;

  bool pop_front(Chunk& out) {
    std::lock_guard<std::mutex> lock(m);
    if (chunks.empty()) return false;
    out = chunks.front();
    chunks.pop_front();
    return true;
  }
  bool pop_back(Chunk& out) {
    std::lock_guard<std::mutex> lock(m);
    if (chunks.empty()) return false;
    out = chunks.back();
    chunks.pop_back();
    return true;
  }
  /// Remaining work in jobs (not chunks), for victim selection.
  std::size_t jobs_left() {
    std::lock_guard<std::mutex> lock(m);
    std::size_t n = 0;
    for (const auto& c : chunks) n += c.hi - c.lo;
    return n;
  }
};

/// A per-worker counter on its own cache line: the workers' hot
/// done-counts must not false-share when they sit in one vector.
struct alignas(64) PaddedCount {
  std::size_t value = 0;
};

/// The shared steal counter, padded on both sides so the atomic's line
/// is not invalidated by whatever the allocator places around it.
struct alignas(64) PaddedSteals {
  std::atomic<std::size_t> value{0};
};

JobResult run_one(const Job& job, const JobContext& ctx) {
  JobResult r;
  try {
    r = job.fn(ctx);
  } catch (const std::exception& e) {
    r = JobResult{};
    r.outcome = Outcome::kError;
    r.detail = e.what();
  } catch (...) {
    r = JobResult{};
    r.outcome = Outcome::kError;
    r.detail = "unknown exception";
  }
  // The engine owns the identity fields: jobs cannot misreport them.
  r.index = ctx.index;
  r.name = job.name;
  r.seed = ctx.seed;
  return r;
}

}  // namespace

Engine::Engine(EngineOptions opts) : opts_(opts) {
  if (opts_.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opts_.threads = hw ? hw : 1;
  }
}

std::vector<JobResult> Engine::run(const std::vector<Job>& jobs,
                                   RunStats* stats) const {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = jobs.size();
  std::vector<JobResult> results(n);
  const unsigned threads =
      n == 0 ? 1u
             : static_cast<unsigned>(
                   std::min<std::size_t>(opts_.threads, n));

  auto context_for = [this](std::size_t slot) {
    JobContext ctx;
    // Identity is global: a shard running slice [lo, hi) with
    // index_base = lo derives the same per-job seeds as the full run.
    ctx.index = opts_.index_base + slot;
    ctx.seed = job_seed(opts_.base_seed, ctx.index);
    ctx.cycle_budget = opts_.cycle_budget;
    ctx.base_seed = opts_.base_seed;
    return ctx;
  };

  std::vector<PaddedCount> per_worker(threads);
  PaddedSteals steals;

  trace::Recorder* rec = opts_.recorder;
  const bool tracing = rec != nullptr && opts_.trace_parent.enabled();

  /// Runs one chunk and (under tracing) records its span.  The span id
  /// is keyed by the chunk's first *global* job index, never by which
  /// worker ran it or in what order — with a thread-independent chunk
  /// split this makes the span set identical at any thread count.
  auto run_chunk = [&](const Chunk& c) {
    const std::uint64_t ts = tracing ? rec->now_us() : 0;
    for (std::size_t i = c.lo; i < c.hi; ++i) {
      results[i] = run_one(jobs[i], context_for(i));
    }
    if (tracing) {
      trace::Span sp;
      sp.trace_id = opts_.trace_parent.trace_id;
      sp.span_id = trace::derive_span_id(
          sp.trace_id, opts_.trace_parent.parent_span,
          opts_.index_base + c.lo);
      sp.parent_span = opts_.trace_parent.parent_span;
      sp.name = "campaign.chunk";
      sp.category = "campaign";
      sp.track = "campaign";
      sp.ts_us = ts;
      sp.dur_us = rec->now_us() - ts;
      sp.attrs.emplace_back("jobs", std::to_string(c.hi - c.lo));
      sp.attrs.emplace_back("lo",
                            std::to_string(opts_.index_base + c.lo));
      rec->record(std::move(sp));
    }
  };

  if (threads <= 1 || n <= 1) {
    if (tracing) {
      // The chunk split must match the multi-threaded one so the span
      // set — not just the results — is thread-count-invariant.
      std::size_t chunk = opts_.chunk_size;
      if (chunk == 0) {
        chunk = std::min<std::size_t>(
            64, std::max<std::size_t>(1, n / std::size_t{32}));
      }
      for (std::size_t i = 0; i < n; i += chunk) {
        run_chunk({i, std::min(n, i + chunk)});
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        results[i] = run_one(jobs[i], context_for(i));
      }
    }
    per_worker.assign(1, PaddedCount{n});
  } else {
    // Fixed-size chunks of consecutive indices; auto sizing aims for ~8
    // chunks per worker so stealing still load-balances skewed costs.
    // Under tracing the size ignores the thread count (each chunk is a
    // span, and the span set must not depend on pool width).
    std::size_t chunk = opts_.chunk_size;
    if (chunk == 0) {
      chunk = tracing
                  ? std::min<std::size_t>(
                        64, std::max<std::size_t>(1, n / std::size_t{32}))
                  : std::min<std::size_t>(
                        64,
                        std::max<std::size_t>(
                            1, n / (threads * std::size_t{8})));
    }

    // One global chunk list over [0, n), dealt as contiguous runs:
    // worker w starts on chunks [w*C/T, (w+1)*C/T) — the chunk
    // boundaries themselves never depend on the worker count.
    std::vector<Chunk> all;
    all.reserve(n / chunk + 1);
    for (std::size_t i = 0; i < n; i += chunk) {
      all.push_back({i, std::min(n, i + chunk)});
    }
    std::vector<WorkDeque> deques(threads);
    for (unsigned w = 0; w < threads; ++w) {
      const std::size_t lo = all.size() * w / threads;
      const std::size_t hi = all.size() * (w + 1) / threads;
      for (std::size_t k = lo; k < hi; ++k) {
        deques[w].chunks.push_back(all[k]);
      }
    }

    auto worker = [&](unsigned self) {
      std::size_t done = 0;  // local: no cross-worker false sharing
      Chunk c;
      for (;;) {
        if (deques[self].pop_front(c)) {
          run_chunk(c);
          done += c.hi - c.lo;
          continue;
        }
        // Own deque empty: steal from the victim with the most work.
        unsigned victim = threads;
        std::size_t best = 0;
        for (unsigned v = 0; v < threads; ++v) {
          if (v == self) continue;
          const std::size_t sz = deques[v].jobs_left();
          if (sz > best) {
            best = sz;
            victim = v;
          }
        }
        if (victim == threads) break;  // nothing left anywhere
        if (deques[victim].pop_back(c)) {
          steals.value.fetch_add(1, std::memory_order_relaxed);
          run_chunk(c);
          done += c.hi - c.lo;
        }
        // On a failed steal (raced another thief), re-scan; the loop
        // terminates because every scan that finds no work breaks.
      }
      per_worker[self].value = done;
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
  }

  if (stats) {
    const auto t1 = std::chrono::steady_clock::now();
    stats->wall_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    stats->threads = threads;
    stats->jobs_per_worker.clear();
    for (const auto& w : per_worker) stats->jobs_per_worker.push_back(w.value);
    stats->steals = steals.value.load();
  }
  return results;
}

}  // namespace liplib::campaign
