#include "liplib/campaign/campaign.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "liplib/support/check.hpp"

namespace liplib::campaign {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kLive: return "live";
    case Outcome::kDeadlock: return "deadlock";
    case Outcome::kStarvation: return "starvation";
    case Outcome::kBudgetExhausted: return "budget_exhausted";
    case Outcome::kMismatch: return "mismatch";
    case Outcome::kError: return "error";
  }
  return "unknown";
}

std::uint64_t job_seed(std::uint64_t base_seed, std::uint64_t index) {
  // SplitMix64 over the combined value: adjacent indices yield
  // well-separated streams, and the combination is platform-independent.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

/// One worker's job deque.  The owner pops from the front, thieves pop
/// from the back; a mutex per deque is ample since jobs are coarse
/// (whole simulations) relative to the lock.
struct WorkDeque {
  std::mutex m;
  std::deque<std::size_t> jobs;

  bool pop_front(std::size_t& out) {
    std::lock_guard<std::mutex> lock(m);
    if (jobs.empty()) return false;
    out = jobs.front();
    jobs.pop_front();
    return true;
  }
  bool pop_back(std::size_t& out) {
    std::lock_guard<std::mutex> lock(m);
    if (jobs.empty()) return false;
    out = jobs.back();
    jobs.pop_back();
    return true;
  }
  std::size_t size() {
    std::lock_guard<std::mutex> lock(m);
    return jobs.size();
  }
};

JobResult run_one(const Job& job, const JobContext& ctx) {
  JobResult r;
  try {
    r = job.fn(ctx);
  } catch (const std::exception& e) {
    r = JobResult{};
    r.outcome = Outcome::kError;
    r.detail = e.what();
  } catch (...) {
    r = JobResult{};
    r.outcome = Outcome::kError;
    r.detail = "unknown exception";
  }
  // The engine owns the identity fields: jobs cannot misreport them.
  r.index = ctx.index;
  r.name = job.name;
  r.seed = ctx.seed;
  return r;
}

}  // namespace

Engine::Engine(EngineOptions opts) : opts_(opts) {
  if (opts_.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opts_.threads = hw ? hw : 1;
  }
}

std::vector<JobResult> Engine::run(const std::vector<Job>& jobs,
                                   RunStats* stats) const {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = jobs.size();
  std::vector<JobResult> results(n);
  const unsigned threads =
      n == 0 ? 1u
             : static_cast<unsigned>(
                   std::min<std::size_t>(opts_.threads, n));

  auto context_for = [this](std::size_t index) {
    JobContext ctx;
    ctx.index = index;
    ctx.seed = job_seed(opts_.base_seed, index);
    ctx.cycle_budget = opts_.cycle_budget;
    return ctx;
  };

  std::vector<std::size_t> per_worker(threads, 0);
  std::atomic<std::size_t> steals{0};

  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      results[i] = run_one(jobs[i], context_for(i));
    }
    per_worker.assign(1, n);
  } else {
    // Contiguous slices: worker w starts on jobs [w*n/T, (w+1)*n/T).
    std::vector<WorkDeque> deques(threads);
    for (unsigned w = 0; w < threads; ++w) {
      const std::size_t lo = n * w / threads;
      const std::size_t hi = n * (w + 1) / threads;
      for (std::size_t i = lo; i < hi; ++i) deques[w].jobs.push_back(i);
    }

    auto worker = [&](unsigned self) {
      std::size_t idx;
      for (;;) {
        if (deques[self].pop_front(idx)) {
          results[idx] = run_one(jobs[idx], context_for(idx));
          ++per_worker[self];
          continue;
        }
        // Own deque empty: steal from the victim with the most work.
        unsigned victim = threads;
        std::size_t best = 0;
        for (unsigned v = 0; v < threads; ++v) {
          if (v == self) continue;
          const std::size_t sz = deques[v].size();
          if (sz > best) {
            best = sz;
            victim = v;
          }
        }
        if (victim == threads) return;  // nothing left anywhere
        if (deques[victim].pop_back(idx)) {
          steals.fetch_add(1, std::memory_order_relaxed);
          results[idx] = run_one(jobs[idx], context_for(idx));
          ++per_worker[self];
        }
        // On a failed steal (raced another thief), re-scan; the loop
        // terminates because every scan that finds no work returns.
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
  }

  if (stats) {
    const auto t1 = std::chrono::steady_clock::now();
    stats->wall_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    stats->threads = threads;
    stats->jobs_per_worker = per_worker;
    stats->steals = steals.load();
  }
  return results;
}

}  // namespace liplib::campaign
