#include "liplib/campaign/jobs.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/generators.hpp"
#include "liplib/lip/design.hpp"
#include "liplib/lip/steady_state.hpp"
#include "liplib/pearls/pearls.hpp"
#include "liplib/probe/probe.hpp"
#include "liplib/support/rng.hpp"
#include "liplib/xir/sliced.hpp"

namespace liplib::campaign {

namespace {

const char* policy_name(lip::StopPolicy p) {
  return p == lip::StopPolicy::kCarloniStrict ? "strict" : "variant";
}

std::unique_ptr<lip::Pearl> default_pearl(std::size_t num_in,
                                          std::size_t num_out) {
  if (num_in == 1 && num_out == 1) return pearls::make_identity();
  if (num_in == 2 && num_out == 1) return pearls::make_adder();
  if (num_in == 1 && num_out == 2) return pearls::make_fork2();
  if (num_in == 2 && num_out == 2) return pearls::make_butterfly();
  if (num_in == 0 && num_out == 1) return pearls::make_generator(0, 1);
  throw ApiError("no default pearl for arity " + std::to_string(num_in) +
                 "->" + std::to_string(num_out));
}

lip::Design make_default_design(graph::Topology topo) {
  lip::Design d(std::move(topo));
  const auto& t = d.topology();
  for (graph::NodeId v = 0; v < t.nodes().size(); ++v) {
    if (t.node(v).kind != graph::NodeKind::kProcess) continue;
    d.set_pearl(v, default_pearl(t.node(v).num_inputs,
                                 t.node(v).num_outputs));
  }
  return d;
}

JobResult from_screening(const skeleton::ScreeningVerdict& v) {
  JobResult r;
  r.cycles = v.cycles_simulated;
  if (!v.ran_to_steady_state) {
    r.outcome = Outcome::kBudgetExhausted;
    r.detail = "no steady state within the cycle budget";
    return r;
  }
  r.has_throughput = true;
  r.throughput = v.min_throughput;
  r.transient = v.transient;
  r.period = v.period;
  if (v.deadlock_found) {
    if (!v.starved.empty() && v.min_throughput > Rational(0)) {
      r.outcome = Outcome::kStarvation;
      r.detail = std::to_string(v.starved.size()) + " starved shell(s)";
    } else {
      r.outcome = Outcome::kDeadlock;
      r.detail = "deadlock in steady state";
    }
  } else {
    r.outcome = Outcome::kLive;
  }
  return r;
}

JobResult from_skeleton_result(const skeleton::SkeletonResult& res,
                               std::uint64_t cycles) {
  JobResult r;
  r.cycles = cycles;
  if (!res.found) {
    r.outcome = Outcome::kBudgetExhausted;
    r.detail = "no steady state within the cycle budget";
    return r;
  }
  r.has_throughput = true;
  r.throughput = res.system_throughput();
  r.transient = res.transient;
  r.period = res.period;
  if (res.deadlocked) {
    r.outcome = Outcome::kDeadlock;
    r.detail = "deadlock in steady state";
  } else if (res.has_starved_shell) {
    r.outcome = Outcome::kStarvation;
    r.detail = std::to_string(res.starved_shells().size()) +
               " starved shell(s)";
  } else {
    r.outcome = Outcome::kLive;
  }
  return r;
}

/// Randomizes the station kinds of a feedforward topology in place
/// (~1/3 half stations) — the "mixed half/full chains" of the T1 pass.
void mix_station_kinds(graph::Topology& topo, Rng& rng) {
  for (graph::ChannelId c = 0; c < topo.channels().size(); ++c) {
    for (auto& kind : topo.channel_mut(c).stations) {
      kind = rng.chance(1, 3) ? graph::RsKind::kHalf : graph::RsKind::kFull;
    }
  }
}

JobResult fuzz_reconvergent(const FuzzSpec& spec, Rng& rng,
                            std::uint64_t budget);
JobResult fuzz_composite(const FuzzSpec& spec, Rng& rng,
                         std::uint64_t budget);
JobResult fuzz_feedforward(const FuzzSpec& spec, Rng& rng,
                           std::uint64_t budget);

}  // namespace

Job make_screening_job(std::string name, graph::Topology topo,
                       skeleton::ScreeningOptions opts,
                       xir::EngineMode engine) {
  return Job{std::move(name),
             [topo = std::move(topo), opts, engine](const JobContext& ctx) {
               return from_screening(xir::screen_for_deadlock(
                   topo, opts, ctx.cycle_budget, engine));
             }};
}

Job make_steady_state_job(std::string name, graph::Topology topo,
                          skeleton::SkeletonOptions opts,
                          xir::EngineMode engine) {
  return Job{std::move(name),
             [topo = std::move(topo), opts, engine](const JobContext& ctx) {
               const auto out = xir::analyze_with_engine(
                   topo, opts, ctx.cycle_budget, engine);
               return from_skeleton_result(out.result, out.cycles);
             }};
}

Job make_spot_check_job(std::string name, graph::Topology topo,
                        lip::StopPolicy policy) {
  return Job{
      std::move(name),
      [topo = std::move(topo), policy](const JobContext& ctx) {
        auto design = make_default_design(topo);
        lip::SystemOptions opts;
        opts.policy = policy;
        auto sys = design.instantiate(opts);
        const auto ss = lip::measure_steady_state(*sys, ctx.cycle_budget);
        JobResult r;
        r.cycles = sys->cycle();
        if (!ss.found) {
          r.outcome = Outcome::kBudgetExhausted;
          r.detail = "no steady state within the cycle budget";
          return r;
        }
        r.has_throughput = true;
        r.throughput = ss.system_throughput();
        r.transient = ss.transient;
        r.period = ss.period;
        if (ss.deadlocked) {
          r.outcome = Outcome::kDeadlock;
          r.detail = "deadlock in steady state";
          return r;
        }
        // Full-data safety net: the LID's sink streams must prefix the
        // zero-latency reference.  Equivalence runs are full-data, so
        // the horizon is capped independently of the skeleton budget.
        const std::uint64_t horizon =
            std::min<std::uint64_t>(ctx.cycle_budget, 2048);
        const auto equiv =
            lip::check_latency_equivalence(design, opts, horizon);
        if (!equiv.ok) {
          r.outcome = Outcome::kMismatch;
          r.detail = "latency equivalence broken: " + equiv.detail;
          return r;
        }
        r.outcome =
            ss.has_starved_shell ? Outcome::kStarvation : Outcome::kLive;
        return r;
      }};
}

namespace {

JobResult fuzz_reconvergent(const FuzzSpec& spec, Rng& rng,
                            std::uint64_t budget) {
  const std::size_t short_st = 1 + rng.below(3);
  const std::size_t long_shells =
      1 + rng.below(std::max<std::size_t>(spec.size, 1));
  const std::size_t per_hop = 1 + rng.below(3);
  auto gen = graph::make_reconvergent(short_st, long_shells, per_hop);
  mix_station_kinds(gen.topo, rng);

  skeleton::SkeletonOptions sk_opts;
  sk_opts.policy = spec.policy;
  const auto out =
      xir::analyze_with_engine(gen.topo, sk_opts, budget, spec.engine);
  JobResult r = from_skeleton_result(out.result, out.cycles);
  std::ostringstream shape;
  shape << "reconvergent short=" << short_st << " shells=" << long_shells
        << " per_hop=" << per_hop << " policy=" << policy_name(spec.policy);
  if (r.outcome != Outcome::kLive) {
    r.detail += " (" + shape.str() + ")";
    return r;
  }

  const Rational bound = graph::exact_implicit_loop_bound(gen.topo);
  const bool variant = spec.policy == lip::StopPolicy::kCasuDiscardOnVoid;
  // The implicit-loop model is exact for the variant protocol; strict
  // can only be slower (EXPERIMENTS.md §T1 sharpening 2).
  if ((variant && r.throughput != bound) ||
      (!variant && r.throughput > bound)) {
    r.outcome = Outcome::kMismatch;
    std::ostringstream os;
    os << "measured " << r.throughput.str() << " vs implicit-loop bound "
       << bound.str() << " (" << shape.str() << ")";
    r.detail = os.str();
  }
  return r;
}

JobResult fuzz_composite(const FuzzSpec& spec, Rng& rng,
                         std::uint64_t budget) {
  const std::size_t segments =
      1 + rng.below(std::max<std::size_t>(spec.size, 1));
  auto gen = graph::make_random_composite(rng, segments,
                                          /*allow_half=*/true,
                                          /*allow_half_in_loops=*/false);

  skeleton::SkeletonOptions sk_opts;
  sk_opts.policy = spec.policy;
  const auto out =
      xir::analyze_with_engine(gen.topo, sk_opts, budget, spec.engine);
  JobResult r = from_skeleton_result(out.result, out.cycles);
  if (r.outcome != Outcome::kLive) {
    r.detail += " (composite segments=" + std::to_string(segments) + ")";
    return r;
  }

  // The paper's "slowest subtopology" rule: measured throughput must not
  // exceed min(loop bound, exact implicit-loop bound).
  const auto pred = graph::predict_throughput(gen.topo);
  Rational bound = pred.cycle_bound;
  if (gen.topo.is_feedforward()) {
    const Rational implicit = graph::exact_implicit_loop_bound(gen.topo);
    if (implicit < bound) bound = implicit;
  }
  if (r.throughput > bound) {
    r.outcome = Outcome::kMismatch;
    std::ostringstream os;
    os << "measured " << r.throughput.str() << " above analytic bound "
       << bound.str() << " (composite segments=" << segments << ")";
    r.detail = os.str();
    return r;
  }

  if (spec.check_equivalence) {
    auto design = make_default_design(gen.topo);
    lip::SystemOptions opts;
    opts.policy = spec.policy;
    const std::uint64_t horizon = std::min<std::uint64_t>(budget, 400);
    const auto equiv = lip::check_latency_equivalence(design, opts, horizon);
    if (!equiv.ok) {
      r.outcome = Outcome::kMismatch;
      r.detail = "latency equivalence broken: " + equiv.detail;
    }
  }
  return r;
}

JobResult fuzz_feedforward(const FuzzSpec& spec, Rng& rng,
                           std::uint64_t budget) {
  const std::size_t processes =
      2 + rng.below(std::max<std::size_t>(spec.size, 1));
  auto gen = graph::make_random_feedforward(rng, processes);

  skeleton::SkeletonOptions sk_opts;
  sk_opts.policy = spec.policy;
  const auto out =
      xir::analyze_with_engine(gen.topo, sk_opts, budget, spec.engine);
  JobResult r = from_skeleton_result(out.result, out.cycles);
  if (r.outcome != Outcome::kLive) {
    r.detail += " (feedforward processes=" + std::to_string(processes) + ")";
    return r;
  }

  if (spec.check_equivalence) {
    auto design = make_default_design(gen.topo);
    lip::SystemOptions opts;
    opts.policy = spec.policy;
    const std::uint64_t horizon = std::min<std::uint64_t>(budget, 400);
    const auto equiv = lip::check_latency_equivalence(design, opts, horizon);
    if (!equiv.ok) {
      r.outcome = Outcome::kMismatch;
      r.detail = "latency equivalence broken: " + equiv.detail;
    }
  }
  return r;
}

JobResult run_probe_measurement(const graph::Topology& topo,
                                lip::StopPolicy policy,
                                std::uint64_t budget) {
  // Exact steady state from the (cheap) skeleton; System and Skeleton
  // share one protocol trajectory from reset, so the skeleton's
  // transient/period window the full-data probe run.
  skeleton::SkeletonOptions sk_opts;
  sk_opts.policy = policy;
  skeleton::Skeleton sk(topo, sk_opts);
  const auto res = sk.analyze(budget);
  JobResult r = from_skeleton_result(res, sk.cycle());
  if (r.outcome != Outcome::kLive && r.outcome != Outcome::kStarvation) {
    return r;
  }

  auto design = make_default_design(topo);
  lip::SystemOptions opts;
  opts.policy = policy;
  auto sys = design.instantiate(opts);
  probe::Probe probe;
  sys->attach_probe(probe);
  sys->run(res.transient);
  probe.reset_window();
  sys->run(res.period);
  r.cycles += sys->cycle();

  const auto report = probe.report();
  for (std::size_t i = 0; i < res.shell_ids.size(); ++i) {
    const Rational measured = report.throughput(res.shell_ids[i]);
    if (measured != res.shell_throughput[i]) {
      r.outcome = Outcome::kMismatch;
      std::ostringstream os;
      os << "probe measured " << measured.str() << " for shell "
         << res.shell_ids[i] << " vs analytic "
         << res.shell_throughput[i].str() << " (policy="
         << policy_name(policy) << ")";
      r.detail = os.str();
      return r;
    }
  }
  if (const auto* top = report.top_blame()) {
    std::ostringstream os;
    os << top->victim_name
       << (top->why == probe::Activity::kWaitingInput ? " waiting <- "
                                                      : " stopped <- ")
       << top->culprit_name << " x" << top->cycles;
    r.detail = os.str();
  }
  // Fold the blame histogram by culprit for the fleet-level
  // blame-by-culprit distribution (campaign::FleetMetrics).
  std::map<std::string, std::uint64_t> by_culprit;
  for (const auto& b : report.blame) by_culprit[b.culprit_name] += b.cycles;
  r.blame.assign(by_culprit.begin(), by_culprit.end());
  std::stable_sort(r.blame.begin(), r.blame.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
  return r;
}

}  // namespace

Job make_probe_job(std::string name, graph::Topology topo,
                   lip::StopPolicy policy) {
  return Job{std::move(name),
             [topo = std::move(topo), policy](const JobContext& ctx) {
               return run_probe_measurement(topo, policy, ctx.cycle_budget);
             }};
}

std::vector<Job> make_probe_campaign(std::size_t n,
                                     std::size_t max_segments) {
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(Job{
        "probe/" + std::to_string(i), [max_segments](const JobContext& ctx) {
          Rng rng(ctx.seed);
          const std::size_t segments =
              1 + rng.below(std::max<std::size_t>(max_segments, 1));
          const auto policy = rng.chance(1, 2)
                                  ? lip::StopPolicy::kCarloniStrict
                                  : lip::StopPolicy::kCasuDiscardOnVoid;
          auto gen = graph::make_random_composite(
              rng, segments, /*allow_half=*/true,
              /*allow_half_in_loops=*/false);
          return run_probe_measurement(gen.topo, policy, ctx.cycle_budget);
        }});
  }
  return jobs;
}

Job make_fuzz_job(std::string name, FuzzSpec spec) {
  return Job{std::move(name), [spec](const JobContext& ctx) {
               Rng rng(ctx.seed);
               switch (spec.shape) {
                 case FuzzSpec::Shape::kReconvergent:
                   return fuzz_reconvergent(spec, rng, ctx.cycle_budget);
                 case FuzzSpec::Shape::kComposite:
                   return fuzz_composite(spec, rng, ctx.cycle_budget);
                 case FuzzSpec::Shape::kFeedforward:
                   return fuzz_feedforward(spec, rng, ctx.cycle_budget);
               }
               JobResult r;
               r.outcome = Outcome::kError;
               r.detail = "unknown fuzz shape";
               return r;
             }};
}

Job make_lint_job(std::string name, graph::Topology topo,
                  lint::Options options) {
  return Job{std::move(name),
             [topo = std::move(topo), options](const JobContext&) {
               const auto report = lint::run_lint(topo, options);
               JobResult r;
               if (report.clean()) {
                 r.outcome = Outcome::kLive;
                 return r;
               }
               r.outcome = report.has_rule("LIP006") ? Outcome::kDeadlock
                                                     : Outcome::kError;
               std::ostringstream os;
               std::size_t shown = 0;
               for (const auto& d : report.diagnostics) {
                 if (d.severity == lint::Severity::kInfo) continue;
                 if (shown++) os << "; ";
                 if (shown > 3) {
                   os << "...";
                   break;
                 }
                 os << lint::severity_name(d.severity) << '[' << d.rule
                    << "] " << d.message;
               }
               r.detail = os.str();
               return r;
             }};
}

Job make_lint_crosscheck_job(std::string name, LintCrossCheckSpec spec) {
  return Job{std::move(name), [spec](const JobContext& ctx) {
    Rng rng(ctx.seed);
    const std::size_t segments =
        1 + rng.below(std::max<std::size_t>(spec.max_segments, 1));
    // Half the jobs allow half stations on loops: those topologies can
    // carry a latent stop latch, so both verdicts get exercised.
    const bool risky = rng.chance(1, 2);
    auto gen = graph::make_random_composite(rng, segments,
                                            /*allow_half=*/true,
                                            /*allow_half_in_loops=*/risky);

    lint::Options structural;
    structural.structural_only = true;
    const auto report = lint::run_lint(gen.topo, structural);
    const bool hazard = report.has_rule("LIP006");

    skeleton::ScreeningOptions wc;
    wc.worst_case_occupancy = true;
    const auto verdict =
        skeleton::screen_for_deadlock(gen.topo, wc, ctx.cycle_budget);
    JobResult r;
    r.cycles = verdict.cycles_simulated;
    if (!verdict.ran_to_steady_state) {
      r.outcome = Outcome::kBudgetExhausted;
      r.detail = "no steady state within the cycle budget";
      return r;
    }
    if (hazard != verdict.deadlock_found) {
      r.outcome = Outcome::kMismatch;
      r.detail = std::string("lint says ") +
                 (hazard ? "stop latch" : "clean") + ", screening says " +
                 (verdict.deadlock_found ? "deadlock" : "live") +
                 " (segments=" + std::to_string(segments) + ")";
      return r;
    }
    if (hazard && spec.check_fix) {
      const auto fixed = lint::lint_and_fix(gen.topo, structural);
      if (!fixed.report.clean()) {
        r.outcome = Outcome::kMismatch;
        r.detail = "lint --fix did not converge to a clean report";
        return r;
      }
      const auto cured =
          skeleton::screen_for_deadlock(fixed.fixed, wc, ctx.cycle_budget);
      r.cycles += cured.cycles_simulated;
      if (cured.deadlock_found) {
        r.outcome = Outcome::kMismatch;
        r.detail = "lint --fix output still deadlocks under worst case";
        return r;
      }
    }
    r.outcome = Outcome::kLive;
    return r;
  }};
}

std::vector<Job> make_lint_crosscheck_campaign(std::size_t n,
                                               LintCrossCheckSpec spec) {
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(
        make_lint_crosscheck_job("lint-xcheck/" + std::to_string(i), spec));
  }
  return jobs;
}

namespace {

JobResult from_prove(const prove::ProveResult& pr) {
  JobResult r;
  r.cycles = pr.depth_reached;
  switch (pr.verdict) {
    case prove::Verdict::kProved:
      r.outcome = Outcome::kLive;
      r.detail = std::string("proved by ") + prove::method_name(pr.method_used);
      break;
    case prove::Verdict::kCounterexample: {
      r.outcome = Outcome::kDeadlock;
      std::ostringstream os;
      os << "deadlock at depth "
         << (pr.counterexample ? pr.counterexample->depth : 0);
      if (pr.counterexample && !pr.counterexample->culprit_channels.empty()) {
        os << "; culprit loop of "
           << pr.counterexample->culprit_channels.size() << " channels";
      }
      r.detail = os.str();
      break;
    }
    case prove::Verdict::kUnknown:
      r.outcome = Outcome::kBudgetExhausted;
      r.detail = pr.note.empty() ? "prover returned unknown" : pr.note;
      break;
  }
  return r;
}

}  // namespace

Job make_prove_job(std::string name, graph::Topology topo,
                   prove::ProveOptions opts) {
  return Job{std::move(name),
             [topo = std::move(topo), opts](const JobContext&) {
               return from_prove(prove::prove(topo, opts));
             }};
}

Job make_prove_crosscheck_job(std::string name, ProveCrossCheckSpec spec) {
  return Job{std::move(name), [spec](const JobContext& ctx) {
    Rng rng(ctx.seed);
    const std::size_t segments =
        1 + rng.below(std::max<std::size_t>(spec.max_segments, 1));
    // Same recipe as the lint cross-check, so the corpora coincide and
    // both deadlocking and live topologies get exercised.
    const bool risky = rng.chance(1, 2);
    auto gen = graph::make_random_composite(rng, segments,
                                            /*allow_half=*/true,
                                            /*allow_half_in_loops=*/risky);

    prove::ProveOptions popts = spec.prove;
    popts.worst_case_occupancy = true;
    const auto pr = prove::prove(gen.topo, popts);

    lint::Options structural;
    structural.structural_only = true;
    const bool hazard =
        lint::run_lint(gen.topo, structural).has_rule("LIP006");

    skeleton::ScreeningOptions wc;
    wc.worst_case_occupancy = true;
    const auto verdict =
        skeleton::screen_for_deadlock(gen.topo, wc, ctx.cycle_budget);
    JobResult r;
    r.cycles = verdict.cycles_simulated;
    if (!verdict.ran_to_steady_state) {
      r.outcome = Outcome::kBudgetExhausted;
      r.detail = "no steady state within the cycle budget";
      return r;
    }
    if (pr.verdict == prove::Verdict::kUnknown) {
      r.outcome = Outcome::kBudgetExhausted;
      r.detail = "prover returned unknown: " + pr.note;
      return r;
    }
    const bool proved_dead = pr.verdict == prove::Verdict::kCounterexample;
    if (proved_dead != hazard || proved_dead != verdict.deadlock_found) {
      r.outcome = Outcome::kMismatch;
      r.detail = std::string("prove says ") +
                 (proved_dead ? "deadlock" : "proved") + ", lint says " +
                 (hazard ? "stop latch" : "clean") + ", screening says " +
                 (verdict.deadlock_found ? "deadlock" : "live") +
                 " (segments=" + std::to_string(segments) + ")";
      return r;
    }
    // Agreement is the passing outcome either way (the lint cross-check
    // convention: the campaign tests the differential, not the design);
    // the detail records which verdict the triple agreed on.
    r.outcome = Outcome::kLive;
    r.detail = proved_dead ? "agreed: " + from_prove(pr).detail
                           : from_prove(pr).detail;
    return r;
  }};
}

std::vector<Job> make_prove_crosscheck_campaign(std::size_t n,
                                                ProveCrossCheckSpec spec) {
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(
        make_prove_crosscheck_job("prove-xcheck/" + std::to_string(i), spec));
  }
  return jobs;
}

std::vector<graph::RsKind> mix_screen_variant_kinds(
    const graph::Topology& topo, std::uint64_t base_seed,
    std::uint64_t variant) {
  // The same draw order as mix_station_kinds (channel-major — which is
  // also the xir program's station order), from the variant's own
  // job_seed stream, so a variant's mix is a pure function of
  // (base seed, variant index) at any engine or batching factor.
  Rng rng(job_seed(base_seed, variant));
  std::vector<graph::RsKind> kinds;
  kinds.reserve(topo.total_stations());
  for (graph::ChannelId c = 0; c < topo.channels().size(); ++c) {
    for (std::size_t i = 0; i < topo.channel(c).num_stations(); ++i) {
      kinds.push_back(rng.chance(1, 3) ? graph::RsKind::kHalf
                                       : graph::RsKind::kFull);
    }
  }
  return kinds;
}

namespace {

graph::Topology with_station_kinds(const graph::Topology& topo,
                                   const std::vector<graph::RsKind>& kinds) {
  graph::Topology out = topo;
  std::size_t next = 0;
  for (graph::ChannelId c = 0; c < out.channels().size(); ++c) {
    for (auto& kind : out.channel_mut(c).stations) kind = kinds[next++];
  }
  return out;
}

/// Severity order for folding a batch of screening verdicts into one
/// job outcome (worst lane wins).
int screen_severity(Outcome o) {
  switch (o) {
    case Outcome::kBudgetExhausted: return 3;
    case Outcome::kDeadlock: return 2;
    case Outcome::kStarvation: return 1;
    default: return 0;
  }
}

}  // namespace

std::vector<Job> make_mix_screen_campaign(MixScreenSpec spec) {
  std::vector<Job> jobs;
  skeleton::ScreeningOptions screen;
  screen.skeleton = spec.skeleton;
  screen.worst_case_occupancy = spec.worst_case_occupancy;

  if (spec.engine != xir::EngineMode::kSliced) {
    // One job per variant; job index == variant index.
    jobs.reserve(spec.variants);
    for (std::size_t v = 0; v < spec.variants; ++v) {
      jobs.push_back(Job{
          "mix-screen/" + std::to_string(v),
          [topo = spec.topo, screen, engine = spec.engine](
              const JobContext& ctx) {
            const auto kinds =
                mix_screen_variant_kinds(topo, ctx.base_seed, ctx.index);
            return from_screening(xir::screen_for_deadlock(
                with_station_kinds(topo, kinds), screen, ctx.cycle_budget,
                engine));
          }});
    }
    return jobs;
  }

  // Sliced: 64 variants ride one lowered program and one evaluation.
  const std::size_t per_job = xir::SlicedEngine::kLanes;
  const std::size_t num_jobs = (spec.variants + per_job - 1) / per_job;
  jobs.reserve(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    const std::size_t lo = j * per_job;
    const std::size_t hi = std::min(spec.variants, lo + per_job);
    jobs.push_back(Job{
        "mix-screen/" + std::to_string(lo) + ".." + std::to_string(hi - 1),
        [topo = spec.topo, screen, lo, hi](const JobContext& ctx) {
          std::vector<xir::VariantSpec> variants(hi - lo);
          for (std::size_t v = lo; v < hi; ++v) {
            variants[v - lo].kinds =
                mix_screen_variant_kinds(topo, ctx.base_seed, v);
            variants[v - lo].worst_case_occupancy =
                screen.worst_case_occupancy;
          }
          const auto verdicts = xir::screen_variants(
              topo, variants, screen.skeleton, ctx.cycle_budget);
          // Fold the batch: worst outcome, summed cycles, min
          // throughput; detail tallies every lane.
          JobResult r;
          r.outcome = Outcome::kLive;
          r.has_throughput = true;
          r.throughput = Rational(1);
          std::map<std::string, std::size_t> tally;
          for (const auto& v : verdicts) {
            const JobResult one = from_screening(v);
            ++tally[outcome_name(one.outcome)];
            r.cycles += one.cycles;
            if (screen_severity(one.outcome) > screen_severity(r.outcome)) {
              r.outcome = one.outcome;
            }
            if (!one.has_throughput) {
              r.has_throughput = false;
            } else {
              if (one.throughput < r.throughput) r.throughput = one.throughput;
              if (one.transient > r.transient) r.transient = one.transient;
              if (one.period > r.period) r.period = one.period;
            }
          }
          if (!r.has_throughput) r.throughput = Rational(0);
          std::ostringstream os;
          os << "variants " << lo << ".." << (hi - 1) << ":";
          for (const auto& [name, count] : tally) {
            os << ' ' << name << '=' << count;
          }
          r.detail = os.str();
          return r;
        }});
  }
  return jobs;
}

std::vector<Job> make_t1_fuzz_campaign() {
  std::vector<Job> jobs;
  jobs.reserve(750);
  // 300 random reconvergences with mixed half/full chains, each checked
  // under both stop policies (600 runs).  The two policy jobs of a pair
  // share the index-derived random stream only through their own seeds;
  // the checks are per-policy (equality for variant, upper bound for
  // strict), so pairing on the same topology is not required for the
  // claim — each run stands alone and replays from its seed.
  for (int i = 0; i < 300; ++i) {
    for (auto policy : {lip::StopPolicy::kCasuDiscardOnVoid,
                        lip::StopPolicy::kCarloniStrict}) {
      FuzzSpec spec;
      spec.shape = FuzzSpec::Shape::kReconvergent;
      spec.policy = policy;
      spec.size = 3;
      jobs.push_back(make_fuzz_job("t1/reconv/" + std::to_string(i) + "/" +
                                       policy_name(policy),
                                   spec));
    }
  }
  // 150 random composite topologies checked against the analytic bounds
  // and latency equivalence (150 runs) — 750 total.
  for (int i = 0; i < 150; ++i) {
    FuzzSpec spec;
    spec.shape = FuzzSpec::Shape::kComposite;
    spec.policy = lip::StopPolicy::kCasuDiscardOnVoid;
    spec.size = 4;
    spec.check_equivalence = true;
    jobs.push_back(make_fuzz_job("t1/composite/" + std::to_string(i), spec));
  }
  return jobs;
}

std::vector<Job> make_named_campaign(const NamedCampaignSpec& spec) {
  std::vector<Job> jobs;
  if (spec.mode == "fuzz") {
    jobs.reserve(spec.jobs);
    for (std::size_t i = 0; i < spec.jobs; ++i) {
      FuzzSpec fuzz;
      fuzz.shape = spec.shape;
      fuzz.policy = spec.policy;
      fuzz.engine = spec.engine;
      fuzz.size = 4;
      jobs.push_back(make_fuzz_job("fuzz/" + std::to_string(i), fuzz));
    }
  } else if (spec.mode == "lint") {
    jobs = make_lint_crosscheck_campaign(spec.jobs);
  } else if (spec.mode == "prove") {
    jobs = make_prove_crosscheck_campaign(spec.jobs);
  } else if (spec.mode == "probe") {
    jobs = make_probe_campaign(spec.jobs);
  } else {
    throw ApiError("unknown campaign mode '" + spec.mode + "'");
  }
  return jobs;
}

}  // namespace liplib::campaign
