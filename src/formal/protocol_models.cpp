#include "liplib/formal/protocol_models.hpp"

#include <optional>
#include <sstream>

#include "liplib/support/check.hpp"

namespace liplib::formal {

namespace {

using graph::RsKind;
using lip::StopPolicy;

/// A tagged token: tags stand for data (data independence), voids have
/// valid == false.
struct Tok {
  bool valid = false;
  std::uint8_t tag = 0;
};

// ---------------------------------------------------------------------
// Relay station FSM (mirrors lip::System station semantics on tags).
// ---------------------------------------------------------------------

struct RsSt {
  std::uint8_t occ = 0;
  Tok s0, s1;
  bool stop_reg = false;
};

Tok rs_present(const RsSt& st) { return st.occ ? st.s0 : Tok{}; }

bool rs_stop_up(const RsSt& st, RsKind kind, bool strictp, bool stop_in) {
  if (kind == RsKind::kFull) return st.stop_reg;
  const bool front_valid = st.occ > 0 && st.s0.valid;
  const bool s_eff = strictp ? stop_in : (stop_in && front_valid);
  return st.occ > 0 && s_eff;
}

void rs_edge(RsSt& st, RsKind kind, bool strictp, Tok in, bool stop_in,
             std::optional<std::string>& violation) {
  const bool front_valid = st.occ > 0 && st.s0.valid;
  const bool s_eff = strictp ? stop_in : (stop_in && front_valid);
  const bool consumed = st.occ > 0 && !s_eff;
  if (kind == RsKind::kFull) {
    const bool accept = !st.stop_reg && (strictp || in.valid);
    if (consumed) {
      st.s0 = st.s1;
      st.s1 = {};
      --st.occ;
    }
    if (accept) {
      if (st.occ >= 2) {
        violation = "full relay station overflow (datum lost)";
        return;
      }
      (st.occ == 0 ? st.s0 : st.s1) = in;
      ++st.occ;
    }
    st.stop_reg = st.occ == 2;
  } else {
    const bool stop_up = st.occ > 0 && s_eff;
    const bool accept = !stop_up && (strictp || in.valid);
    if (consumed) {
      st.occ = 0;
      st.s0 = {};
    }
    if (accept) {
      if (st.occ) {
        violation = "half relay station overflow (datum lost)";
        return;
      }
      st.s0 = in;
      st.occ = 1;
    }
  }
}

// ---------------------------------------------------------------------
// Environment: a producer of consecutive tags honoring hold-on-stop.
// ---------------------------------------------------------------------

struct EnvSt {
  bool presenting = false;
  std::uint8_t tag = 0;   // offered tag when presenting
  std::uint8_t next = 0;  // tag of the next datum to offer
};

Tok env_present(const EnvSt& e) { return {e.presenting, e.tag}; }

/// Successor environment states after a cycle in which the environment
/// saw `stop_up` on its output.  A held datum admits exactly one
/// successor; otherwise the environment may idle or offer the next tag.
void env_next(const EnvSt& e, bool stop_up, unsigned mod,
              std::vector<EnvSt>& out) {
  out.clear();
  if (e.presenting && stop_up) {
    out.push_back(e);  // environment assumption: hold on stop
    return;
  }
  EnvSt idle;
  idle.next = e.next;
  out.push_back(idle);
  EnvSt pres;
  pres.presenting = true;
  pres.tag = e.next;
  pres.next = static_cast<std::uint8_t>((e.next + 1) % mod);
  out.push_back(pres);
}

// ---------------------------------------------------------------------
// Monitor: in-order / no-skip / no-duplicate / hold-on-stop observer.
// ---------------------------------------------------------------------

struct MonSt {
  std::uint8_t expected = 0;
  bool prev_valid = false;
  bool prev_stop = false;
  std::uint8_t prev_tag = 0;
};

void mon_check(MonSt& m, Tok out, bool stop_in, unsigned mod,
               std::optional<std::string>& violation) {
  if (m.prev_valid && m.prev_stop) {
    if (!out.valid || out.tag != m.prev_tag) {
      violation = "output not kept on asserted stop";
      return;
    }
  }
  if (out.valid && !stop_in) {
    if (out.tag != m.expected) {
      std::ostringstream os;
      os << "output order violated: got tag " << int(out.tag)
         << ", expected " << int(m.expected)
         << " (skip, duplicate or reorder)";
      violation = os.str();
      return;
    }
    m.expected = static_cast<std::uint8_t>((m.expected + 1) % mod);
  }
  m.prev_valid = out.valid;
  m.prev_stop = stop_in;
  m.prev_tag = out.tag;
}

// Byte-string encoding helpers.
void put(std::string& s, std::uint8_t b) { s.push_back(static_cast<char>(b)); }
std::uint8_t get(const std::string& s, std::size_t& i) {
  return static_cast<std::uint8_t>(s.at(i++));
}
void put_tok(std::string& s, const Tok& t) {
  put(s, t.valid ? 1 : 0);
  put(s, t.valid ? t.tag : 0);
}
Tok get_tok(const std::string& s, std::size_t& i) {
  Tok t;
  t.valid = get(s, i) != 0;
  t.tag = get(s, i);
  return t;
}
void put_env(std::string& s, const EnvSt& e) {
  put(s, e.presenting ? 1 : 0);
  put(s, e.presenting ? e.tag : 0);
  put(s, e.next);
}
EnvSt get_env(const std::string& s, std::size_t& i) {
  EnvSt e;
  e.presenting = get(s, i) != 0;
  e.tag = get(s, i);
  e.next = get(s, i);
  return e;
}
void put_mon(std::string& s, const MonSt& m) {
  put(s, m.expected);
  put(s, m.prev_valid ? 1 : 0);
  put(s, m.prev_stop ? 1 : 0);
  put(s, m.prev_valid ? m.prev_tag : 0);
}
MonSt get_mon(const std::string& s, std::size_t& i) {
  MonSt m;
  m.expected = get(s, i);
  m.prev_valid = get(s, i) != 0;
  m.prev_stop = get(s, i) != 0;
  m.prev_tag = get(s, i);
  return m;
}
void put_rs(std::string& s, const RsSt& r) {
  put(s, r.occ);
  put_tok(s, r.occ > 0 ? r.s0 : Tok{});
  put_tok(s, r.occ > 1 ? r.s1 : Tok{});
  put(s, r.stop_reg ? 1 : 0);
}
RsSt get_rs(const std::string& s, std::size_t& i) {
  RsSt r;
  r.occ = get(s, i);
  r.s0 = get_tok(s, i);
  r.s1 = get_tok(s, i);
  r.stop_reg = get(s, i) != 0;
  return r;
}

// Encodes a slot token that may itself be a stored void: the token's
// valid flag distinguishes data from voids, occupancy distinguishes
// presence.  put_tok above normalizes tags of voids to 0, keeping the
// encoding canonical.

// ---------------------------------------------------------------------
// Relay station model.
// ---------------------------------------------------------------------

class RelayModel final : public Model {
 public:
  RelayModel(RsKind kind, StopPolicy policy, unsigned mod)
      : kind_(kind), strict_(policy == StopPolicy::kCarloniStrict),
        mod_(mod) {
    LIPLIB_EXPECT(mod >= 4, "tag_mod must cover the in-flight window");
  }

  std::string initial() const override {
    std::string s;
    RsSt rs;
    if (strict_) {
      rs.occ = 1;  // the initial void is a token under the strict policy
    }
    put_rs(s, rs);
    put_env(s, EnvSt{});
    put_mon(s, MonSt{});
    return s;
  }

  std::vector<Succ> successors(const std::string& state) const override {
    std::size_t i = 0;
    const RsSt rs = get_rs(state, i);
    const EnvSt env = get_env(state, i);
    const MonSt mon = get_mon(state, i);

    std::vector<Succ> succs;
    std::vector<EnvSt> env2s;
    for (int stop_in = 0; stop_in <= 1; ++stop_in) {
      const Tok v_in = env_present(env);
      const Tok v_out = rs_present(rs);
      const bool stop_up = rs_stop_up(rs, kind_, strict_, stop_in != 0);

      std::optional<std::string> violation;
      MonSt mon2 = mon;
      mon_check(mon2, v_out, stop_in != 0, mod_, violation);
      RsSt rs2 = rs;
      if (!violation) {
        rs_edge(rs2, kind_, strict_, v_in, stop_in != 0, violation);
      }
      env_next(env, stop_up, mod_, env2s);
      for (const EnvSt& env2 : env2s) {
        Succ succ;
        std::ostringstream choice;
        choice << "stop=" << stop_in << ",env="
               << (env2.presenting ? "offer" : "idle");
        succ.choice = choice.str();
        succ.violation = violation;
        std::string ns;
        put_rs(ns, rs2);
        put_env(ns, env2);
        put_mon(ns, mon2);
        succ.state = std::move(ns);
        succs.push_back(std::move(succ));
      }
    }
    return succs;
  }

 private:
  RsKind kind_;
  bool strict_;
  unsigned mod_;
};

// ---------------------------------------------------------------------
// Shell model: N tagged input streams, one output port with B branches.
// ---------------------------------------------------------------------

class ShellModel final : public Model {
 public:
  ShellModel(unsigned num_inputs, unsigned num_branches, StopPolicy policy,
             unsigned mod)
      : n_(num_inputs), b_(num_branches),
        strict_(policy == StopPolicy::kCarloniStrict), mod_(mod) {
    LIPLIB_EXPECT(n_ >= 1 && n_ <= 2, "shell model supports 1 or 2 inputs");
    LIPLIB_EXPECT(b_ >= 1 && b_ <= 2,
                  "shell model supports 1 or 2 fanout branches");
    LIPLIB_EXPECT(mod >= 4, "tag_mod must cover the in-flight window");
    n_ = n_ > 2 ? 2 : n_;  // give the optimizer the bound the checks prove
    b_ = b_ > 2 ? 2 : b_;
  }

  std::string initial() const override {
    std::string s;
    put(s, static_cast<std::uint8_t>(mod_ - 1));  // reg tag (init valid)
    put(s, static_cast<std::uint8_t>((1u << b_) - 1));  // pend mask
    for (unsigned i = 0; i < n_; ++i) put_env(s, EnvSt{});
    for (unsigned k = 0; k < b_; ++k) {
      MonSt m;
      m.expected = static_cast<std::uint8_t>(mod_ - 1);
      put_mon(s, m);
    }
    return s;
  }

  std::vector<Succ> successors(const std::string& state) const override {
    std::size_t i = 0;
    const std::uint8_t reg = get(state, i);
    const std::uint8_t pend = get(state, i);
    EnvSt env[2];
    for (unsigned k = 0; k < n_; ++k) env[k] = get_env(state, i);
    MonSt mon[2];
    for (unsigned k = 0; k < b_; ++k) mon[k] = get_mon(state, i);

    std::vector<Succ> succs;
    std::vector<EnvSt> env2s[2];
    for (std::uint8_t stops = 0; stops < (1u << b_); ++stops) {
      Tok v_in[2];
      for (unsigned k = 0; k < n_; ++k) v_in[k] = env_present(env[k]);

      bool can_fire = true;
      for (unsigned k = 0; k < n_; ++k) {
        if (!v_in[k].valid) can_fire = false;
      }
      for (unsigned k = 0; k < b_; ++k) {
        const bool stopped = (stops >> k) & 1u;
        const bool pending = (pend >> k) & 1u;
        if (strict_ ? stopped : (stopped && pending)) can_fire = false;
      }
      bool stop_to_in[2] = {false, false};
      for (unsigned k = 0; k < n_; ++k) {
        stop_to_in[k] = !can_fire && v_in[k].valid;
      }

      std::optional<std::string> violation;
      MonSt mon2[2];
      for (unsigned k = 0; k < b_; ++k) {
        mon2[k] = mon[k];
        const Tok out{((pend >> k) & 1u) != 0, reg};
        if (!violation) {
          mon_check(mon2[k], out, ((stops >> k) & 1u) != 0, mod_, violation);
        }
      }
      // Coherence: the k-th tokens of all input streams are consumed
      // together, so their tags must match at every firing.
      if (!violation && can_fire && n_ == 2 &&
          v_in[0].tag != v_in[1].tag) {
        violation = "incoherent inputs consumed together";
      }

      // Edge.
      std::uint8_t pend2 = pend;
      for (unsigned k = 0; k < b_; ++k) {
        if (((pend2 >> k) & 1u) && !((stops >> k) & 1u)) {
          pend2 = static_cast<std::uint8_t>(pend2 & ~(1u << k));
        }
      }
      std::uint8_t reg2 = reg;
      if (!violation && can_fire) {
        if (pend2 != 0) {
          violation = "shell fired with undelivered output";
        } else {
          reg2 = v_in[0].tag;  // identity / first-projection pearl
          pend2 = static_cast<std::uint8_t>((1u << b_) - 1);
        }
      }

      for (unsigned k = 0; k < n_; ++k) {
        env_next(env[k], stop_to_in[k], mod_, env2s[k]);
      }
      // Product over environment choices.
      for (std::size_t a = 0; a < env2s[0].size(); ++a) {
        const std::size_t b_count = (n_ == 2) ? env2s[1].size() : 1;
        for (std::size_t bb = 0; bb < b_count; ++bb) {
          Succ succ;
          std::ostringstream choice;
          choice << "stops=" << int(stops) << ",env0="
                 << (env2s[0][a].presenting ? "offer" : "idle");
          if (n_ == 2) {
            choice << ",env1=" << (env2s[1][bb].presenting ? "offer" : "idle");
          }
          succ.choice = choice.str();
          succ.violation = violation;
          std::string ns;
          put(ns, reg2);
          put(ns, pend2);
          put_env(ns, env2s[0][a]);
          if (n_ == 2) put_env(ns, env2s[1][bb]);
          for (unsigned k = 0; k < b_; ++k) put_mon(ns, mon2[k]);
          succ.state = std::move(ns);
          succs.push_back(std::move(succ));
        }
      }
    }
    return succs;
  }

 private:
  unsigned n_;
  unsigned b_;
  bool strict_;
  unsigned mod_;
};

// ---------------------------------------------------------------------
// Chain model: env → shell A → relay station → shell B → consumer.
// ---------------------------------------------------------------------

class ChainModel final : public Model {
 public:
  ChainModel(RsKind kind, StopPolicy policy, unsigned mod)
      : kind_(kind), strict_(policy == StopPolicy::kCarloniStrict),
        mod_(mod) {
    LIPLIB_EXPECT(mod >= 6, "chain in-flight window needs tag_mod >= 6");
  }

  std::string initial() const override {
    std::string s;
    put_env(s, EnvSt{});
    put(s, static_cast<std::uint8_t>(mod_ - 1));  // reg A
    put(s, 1);                                    // pend A
    RsSt rs;
    if (strict_) rs.occ = 1;
    put_rs(s, rs);
    put(s, static_cast<std::uint8_t>(mod_ - 2));  // reg B
    put(s, 1);                                    // pend B
    MonSt mon;
    mon.expected = static_cast<std::uint8_t>(mod_ - 2);
    put_mon(s, mon);
    return s;
  }

  std::vector<Succ> successors(const std::string& state) const override {
    std::size_t i = 0;
    EnvSt src = get_env(state, i);
    const std::uint8_t reg_a = get(state, i);
    const std::uint8_t pend_a = get(state, i);
    const RsSt rs = get_rs(state, i);
    const std::uint8_t reg_b = get(state, i);
    const std::uint8_t pend_b = get(state, i);
    const MonSt mon = get_mon(state, i);

    std::vector<Succ> succs;
    std::vector<EnvSt> src2s;
    for (int cstop = 0; cstop <= 1; ++cstop) {
      const Tok a_in = env_present(src);
      const Tok a_out{pend_a != 0, reg_a};
      const Tok rs_out = rs_present(rs);
      const Tok b_out{pend_b != 0, reg_b};

      // Backward stop chain (combinational, settled in dependency order:
      // the chain has no stop cycle).
      const bool stop_b_out = cstop != 0;
      const bool b_fire =
          rs_out.valid &&
          !(strict_ ? stop_b_out : (stop_b_out && b_out.valid));
      const bool stop_rs_out = !b_fire && rs_out.valid;
      const bool stop_a_out = rs_stop_up(rs, kind_, strict_, stop_rs_out);
      const bool a_fire =
          a_in.valid && !(strict_ ? stop_a_out : (stop_a_out && a_out.valid));
      const bool stop_src = !a_fire && a_in.valid;

      std::optional<std::string> violation;
      MonSt mon2 = mon;
      mon_check(mon2, b_out, stop_b_out, mod_, violation);

      // Edges.
      std::uint8_t pend_a2 = pend_a, reg_a2 = reg_a;
      if (pend_a2 && !stop_a_out) pend_a2 = 0;
      if (!violation && a_fire) {
        if (pend_a2) {
          violation = "shell A fired with undelivered output";
        } else {
          reg_a2 = a_in.tag;
          pend_a2 = 1;
        }
      }
      RsSt rs2 = rs;
      if (!violation) {
        rs_edge(rs2, kind_, strict_, a_out, stop_rs_out, violation);
      }
      std::uint8_t pend_b2 = pend_b, reg_b2 = reg_b;
      if (pend_b2 && !stop_b_out) pend_b2 = 0;
      if (!violation && b_fire) {
        if (pend_b2) {
          violation = "shell B fired with undelivered output";
        } else {
          reg_b2 = rs_out.tag;
          pend_b2 = 1;
        }
      }

      env_next(src, stop_src, mod_, src2s);
      for (const EnvSt& src2 : src2s) {
        Succ succ;
        std::ostringstream choice;
        choice << "stop=" << cstop << ",env="
               << (src2.presenting ? "offer" : "idle");
        succ.choice = choice.str();
        succ.violation = violation;
        std::string ns;
        put_env(ns, src2);
        put(ns, reg_a2);
        put(ns, pend_a2);
        put_rs(ns, rs2);
        put(ns, reg_b2);
        put(ns, pend_b2);
        put_mon(ns, mon2);
        succ.state = std::move(ns);
        succs.push_back(std::move(succ));
      }
    }
    return succs;
  }

 private:
  RsKind kind_;
  bool strict_;
  unsigned mod_;
};

// ---------------------------------------------------------------------
// Buffered (Carloni-style) shell model: one input FIFO, one output.
// ---------------------------------------------------------------------

class BufferedShellModel final : public Model {
 public:
  BufferedShellModel(unsigned depth, StopPolicy policy, unsigned mod)
      : depth_(depth), strict_(policy == StopPolicy::kCarloniStrict),
        mod_(mod) {
    LIPLIB_EXPECT(depth >= 1 && depth <= 3, "queue depth in [1,3]");
    LIPLIB_EXPECT(mod > depth + 2, "tag_mod must cover the queue window");
  }

  std::string initial() const override {
    std::string s;
    put(s, 0);  // queue size
    for (unsigned i = 0; i < depth_; ++i) put(s, 0);  // queue slots
    put(s, static_cast<std::uint8_t>(mod_ - 1));      // reg (init valid)
    put(s, 1);                                        // pend
    put_env(s, EnvSt{});
    MonSt mon;
    mon.expected = static_cast<std::uint8_t>(mod_ - 1);
    put_mon(s, mon);
    return s;
  }

  std::vector<Succ> successors(const std::string& state) const override {
    std::size_t i = 0;
    const std::uint8_t qsize = get(state, i);
    std::vector<std::uint8_t> q(depth_);
    for (unsigned k = 0; k < depth_; ++k) q[k] = get(state, i);
    const std::uint8_t reg = get(state, i);
    const std::uint8_t pend = get(state, i);
    const EnvSt env = get_env(state, i);
    const MonSt mon = get_mon(state, i);

    std::vector<Succ> succs;
    std::vector<EnvSt> env2s;
    for (int stop = 0; stop <= 1; ++stop) {
      const Tok v_in = env_present(env);
      const Tok out{pend != 0, reg};
      const bool blocked =
          strict_ ? (stop != 0) : (stop != 0 && pend != 0);
      const bool fire = qsize > 0 && !blocked;
      const bool stop_src = qsize >= depth_ && !fire;

      std::optional<std::string> violation;
      MonSt mon2 = mon;
      mon_check(mon2, out, stop != 0, mod_, violation);

      // Edge.
      std::uint8_t pend2 = pend;
      if (pend2 && !stop) pend2 = 0;
      std::uint8_t reg2 = reg;
      std::uint8_t qsize2 = qsize;
      std::vector<std::uint8_t> q2 = q;
      if (!violation && fire) {
        if (pend2) {
          violation = "buffered shell fired with undelivered output";
        } else {
          reg2 = q2[0];
          for (unsigned k = 1; k < depth_; ++k) q2[k - 1] = q2[k];
          q2[depth_ - 1] = 0;
          --qsize2;
          pend2 = 1;
        }
      }
      if (!violation && v_in.valid && !stop_src) {
        if (qsize2 >= depth_) {
          violation = "input FIFO overflow (datum lost)";
        } else {
          q2[qsize2] = v_in.tag;
          ++qsize2;
        }
      }

      env_next(env, stop_src, mod_, env2s);
      for (const EnvSt& env2 : env2s) {
        Succ succ;
        std::ostringstream choice;
        choice << "stop=" << stop << ",env="
               << (env2.presenting ? "offer" : "idle");
        succ.choice = choice.str();
        succ.violation = violation;
        std::string ns;
        put(ns, qsize2);
        for (unsigned k = 0; k < depth_; ++k) {
          put(ns, k < qsize2 ? q2[k] : 0);  // canonical: clear empty slots
        }
        put(ns, reg2);
        put(ns, pend2);
        put_env(ns, env2);
        put_mon(ns, mon2);
        succ.state = std::move(ns);
        succs.push_back(std::move(succ));
      }
    }
    return succs;
  }

 private:
  unsigned depth_;
  bool strict_;
  unsigned mod_;
};

}  // namespace

std::unique_ptr<Model> make_buffered_shell_model(unsigned depth,
                                                 lip::StopPolicy policy,
                                                 unsigned tag_mod) {
  return std::make_unique<BufferedShellModel>(depth, policy, tag_mod);
}

std::unique_ptr<Model> make_relay_station_model(graph::RsKind kind,
                                                lip::StopPolicy policy,
                                                unsigned tag_mod) {
  return std::make_unique<RelayModel>(kind, policy, tag_mod);
}

std::unique_ptr<Model> make_shell_model(unsigned num_inputs,
                                        unsigned num_branches,
                                        lip::StopPolicy policy,
                                        unsigned tag_mod) {
  return std::make_unique<ShellModel>(num_inputs, num_branches, policy,
                                      tag_mod);
}

std::unique_ptr<Model> make_chain_model(graph::RsKind kind,
                                        lip::StopPolicy policy,
                                        unsigned tag_mod) {
  return std::make_unique<ChainModel>(kind, policy, tag_mod);
}

}  // namespace liplib::formal
