#include "liplib/formal/checker.hpp"

#include <deque>
#include <unordered_map>

namespace liplib::formal {

CheckResult check_safety(const Model& model, std::uint64_t max_states) {
  CheckResult result;

  struct Parent {
    std::string state;   // predecessor state ("" for the initial state)
    std::string choice;  // environment choice taken from the predecessor
  };
  std::unordered_map<std::string, Parent> visited;
  std::deque<std::string> frontier;

  const std::string init = model.initial();
  visited.emplace(init, Parent{});
  frontier.push_back(init);

  auto build_trace = [&](const std::string& last, const std::string& choice,
                         const std::string& violation) {
    result.ok = false;
    result.violation = violation;
    // Walk parents back to the initial state.
    std::vector<std::string> rev;
    rev.push_back("VIOLATION after choice [" + choice + "]: " + violation);
    std::string cur = last;
    while (true) {
      auto it = visited.find(cur);
      rev.push_back(model.describe(cur));
      if (it->second.state.empty() && cur == init) break;
      rev.push_back("  choice [" + it->second.choice + "]");
      cur = it->second.state;
    }
    result.trace.assign(rev.rbegin(), rev.rend());
  };

  while (!frontier.empty()) {
    const std::string state = std::move(frontier.front());
    frontier.pop_front();
    ++result.states_explored;

    for (const Succ& succ : model.successors(state)) {
      ++result.transitions;
      if (succ.violation) {
        build_trace(state, succ.choice, *succ.violation);
        return result;
      }
      if (visited.size() >= max_states) {
        // Keep exploring already-found states but stop adding new ones;
        // if the frontier drains we did not close the state space.
        if (!visited.contains(succ.state)) result.exhausted_budget = true;
        continue;
      }
      auto [it, inserted] = visited.emplace(succ.state, Parent{state, succ.choice});
      if (inserted) frontier.push_back(succ.state);
    }
  }

  result.ok = !result.exhausted_budget;
  if (result.exhausted_budget) {
    result.violation = "state budget exhausted before closing the space";
  }
  return result;
}

}  // namespace liplib::formal
