#include "liplib/formal/checker.hpp"

#include <algorithm>
#include <unordered_map>

namespace liplib::formal {

namespace {

// Per-record bookkeeping overhead charged to peak_tracked_bytes: the
// hash-map node (key string header + Parent + bucket link) and the
// frontier slot.  An estimate, not an exact allocator audit — what the
// accounting must capture is the asymptotic per-state cost, which the
// formal_test memory bound locks at ~one state copy per state (the
// previous implementation kept three: map key, parent copy, frontier
// copy).
constexpr std::uint64_t kRecordOverhead =
    2 * sizeof(std::string) + 4 * sizeof(void*);

std::string hex_encode(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    hex += digits[c >> 4];
    hex += digits[c & 15];
  }
  return hex;
}

}  // namespace

Json CheckResult::to_json() const {
  Json j = Json::object();
  j.set("schema", "liplib.check/1");
  j.set("ok", ok);
  j.set("exhausted_budget", exhausted_budget);
  j.set("states_explored", states_explored);
  j.set("transitions", transitions);
  j.set("peak_tracked_bytes", peak_tracked_bytes);
  j.set("violation", violation);
  j.set("violation_choice", violation_choice);
  Json tr = Json::array();
  for (const TraceStep& s : steps) {
    Json step = Json::object();
    step.set("choice", s.choice);
    step.set("state", hex_encode(s.state));
    step.set("described", s.described);
    tr.push(std::move(step));
  }
  j.set("trace", std::move(tr));
  return j;
}

CheckResult check_safety(const Model& model, std::uint64_t max_states) {
  CheckResult result;

  struct Parent {
    const std::string* state;  // predecessor key (nullptr for the initial
                               // state); points into `visited` — node-based
                               // unordered_map keys are stable under rehash
    std::string choice;        // environment choice taken from there
  };
  std::unordered_map<std::string, Parent> visited;
  // The frontier holds pointers into the visited set instead of copies of
  // the encoded states: one state copy per explored state total.
  std::vector<const std::string*> frontier;
  const std::size_t reserve =
      static_cast<std::size_t>(std::min<std::uint64_t>(max_states, 1u << 16));
  visited.reserve(reserve);
  frontier.reserve(reserve);

  std::uint64_t tracked_bytes = 0;
  auto track = [&](const std::string& key, const std::string& choice) {
    tracked_bytes += key.size() + choice.size() + kRecordOverhead +
                     sizeof(const std::string*);
    result.peak_tracked_bytes =
        std::max(result.peak_tracked_bytes, tracked_bytes);
  };

  const std::string init = model.initial();
  const auto& init_slot = *visited.emplace(init, Parent{nullptr, ""}).first;
  frontier.push_back(&init_slot.first);
  track(init, "");

  auto build_trace = [&](const std::string* last, const std::string& choice,
                         const std::string& violation) {
    result.ok = false;
    result.violation = violation;
    result.violation_choice = choice;
    // Walk parents back to the initial state.
    std::vector<TraceStep> rev;
    for (const std::string* cur = last; cur != nullptr;) {
      const Parent& par = visited.find(*cur)->second;
      rev.push_back(TraceStep{par.choice, *cur, model.describe(*cur)});
      cur = par.state;
    }
    result.steps.assign(rev.rbegin(), rev.rend());
    for (const TraceStep& s : result.steps) {
      if (!s.choice.empty()) result.trace.push_back("  choice [" + s.choice + "]");
      result.trace.push_back(s.described);
    }
    result.trace.push_back("VIOLATION after choice [" + choice +
                           "]: " + violation);
  };

  std::size_t head = 0;
  while (head < frontier.size()) {
    const std::string* state = frontier[head++];
    ++result.states_explored;

    for (const Succ& succ : model.successors(*state)) {
      ++result.transitions;
      if (succ.violation) {
        build_trace(state, succ.choice, *succ.violation);
        return result;
      }
      if (visited.size() >= max_states) {
        // Keep exploring already-found states but stop adding new ones;
        // if the frontier drains we did not close the state space.
        if (!visited.contains(succ.state)) result.exhausted_budget = true;
        continue;
      }
      auto [it, inserted] =
          visited.emplace(succ.state, Parent{state, succ.choice});
      if (inserted) {
        frontier.push_back(&it->first);
        track(it->first, succ.choice);
      }
    }
  }

  result.ok = !result.exhausted_budget;
  if (result.exhausted_budget) {
    result.violation = "state budget exhausted before closing the space";
  }
  return result;
}

}  // namespace liplib::formal
