#include "liplib/trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "liplib/probe/trace.hpp"
#include "liplib/support/check.hpp"

namespace liplib::trace {

namespace {

/// FNV-1a 64-bit over raw bytes (duplicated from serve/cache so the
/// trace library stays below serve in the dependency order).
std::uint64_t fnv1a64_bytes(const void* data, std::size_t n,
                            std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a64_u64(std::uint64_t v, std::uint64_t seed) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  return fnv1a64_bytes(bytes, 8, seed);
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::uint64_t parse_hex16(const std::string& text, const char* what) {
  LIPLIB_EXPECT(!text.empty() && text.size() <= 16,
                std::string(what) + " must be 1..16 hex digits");
  std::uint64_t v = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else {
      throw ApiError(std::string(what) + " contains a non-hex character");
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string string_member(const Json& doc, const char* key) {
  const Json* f = doc.find(key);
  LIPLIB_EXPECT(f && f->is_string(),
                std::string("trace document: field '") + key +
                    "' missing or not a string");
  return f->as_string();
}

std::uint64_t uint_member(const Json& doc, const char* key) {
  const Json* f = doc.find(key);
  LIPLIB_EXPECT(f && f->is_number(),
                std::string("trace document: field '") + key +
                    "' missing or non-numeric");
  return f->as_uint();
}

}  // namespace

std::uint64_t derive_trace_id(std::uint64_t content_hash) {
  const std::uint64_t id = fnv1a64_u64(content_hash, 0xcbf29ce484222325ull);
  return id == 0 ? 1 : id;
}

std::uint64_t derive_span_id(std::uint64_t trace_id, std::uint64_t salt_a,
                             std::uint64_t salt_b) {
  std::uint64_t h = fnv1a64_u64(trace_id, 0xcbf29ce484222325ull);
  h = fnv1a64_u64(salt_a, h);
  h = fnv1a64_u64(salt_b, h);
  return h == 0 ? 1 : h;
}

Json TraceContext::to_json() const {
  return Json::object()
      .set("trace_id", hex16(trace_id))
      .set("parent_span", hex16(parent_span));
}

TraceContext TraceContext::from_json(const Json& doc) {
  LIPLIB_EXPECT(doc.is_object(), "trace context must be a JSON object");
  TraceContext ctx;
  ctx.trace_id = parse_hex16(string_member(doc, "trace_id"), "trace_id");
  if (const Json* p = doc.find("parent_span")) {
    LIPLIB_EXPECT(p->is_string(), "trace context: 'parent_span' must be a "
                                  "hex string");
    ctx.parent_span = parse_hex16(p->as_string(), "parent_span");
  }
  return ctx;
}

TraceContext TraceContext::from_envelope(const Json& envelope) {
  if (!envelope.is_object()) return {};
  const Json* t = envelope.find("trace");
  if (!t || t->is_null()) return {};
  return from_json(*t);
}

Recorder::Recorder(std::function<std::uint64_t()> now_us)
    : now_us_(now_us ? std::move(now_us) : steady_now_us) {}

void Recorder::record(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

std::size_t Recorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<Span> Recorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

Json Recorder::to_json() const { return spans_to_json(snapshot()); }

void Recorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

Json spans_to_json(std::vector<Span> spans) {
  // Canonical order: whatever interleaving the recording threads saw,
  // the document bytes depend only on the span set itself.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     if (a.trace_id != b.trace_id)
                       return a.trace_id < b.trace_id;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.span_id < b.span_id;
                   });
  Json arr = Json::array();
  for (const Span& s : spans) {
    Json j = Json::object()
                 .set("trace_id", hex16(s.trace_id))
                 .set("span_id", hex16(s.span_id))
                 .set("parent_span", hex16(s.parent_span))
                 .set("name", s.name)
                 .set("cat", s.category)
                 .set("track", s.track)
                 .set("ts_us", s.ts_us)
                 .set("dur_us", s.dur_us);
    if (!s.events.empty()) {
      Json events = Json::array();
      for (const SpanEvent& e : s.events) {
        events.push(
            Json::object().set("name", e.name).set("ts_us", e.ts_us));
      }
      j.set("events", std::move(events));
    }
    if (!s.attrs.empty()) {
      Json attrs = Json::object();
      for (const auto& [k, v] : s.attrs) attrs.set(k, v);
      j.set("attrs", std::move(attrs));
    }
    arr.push(std::move(j));
  }
  return Json::object()
      .set("schema", kTraceSchema)
      .set("spans", std::move(arr));
}

std::vector<Span> spans_from_json(const Json& doc) {
  LIPLIB_EXPECT(doc.is_object(), "trace document must be a JSON object");
  const Json* schema = doc.find("schema");
  LIPLIB_EXPECT(schema && schema->is_string() &&
                    schema->as_string() == kTraceSchema,
                std::string("trace document missing schema ") + kTraceSchema);
  const Json* spans = doc.find("spans");
  LIPLIB_EXPECT(spans && spans->is_array(),
                "trace document missing 'spans' array");
  std::vector<Span> out;
  out.reserve(spans->size());
  for (const Json& j : spans->elements()) {
    LIPLIB_EXPECT(j.is_object(), "trace span must be a JSON object");
    Span s;
    s.trace_id = parse_hex16(string_member(j, "trace_id"), "trace_id");
    s.span_id = parse_hex16(string_member(j, "span_id"), "span_id");
    s.parent_span =
        parse_hex16(string_member(j, "parent_span"), "parent_span");
    s.name = string_member(j, "name");
    s.category = string_member(j, "cat");
    s.track = string_member(j, "track");
    s.ts_us = uint_member(j, "ts_us");
    s.dur_us = uint_member(j, "dur_us");
    if (const Json* events = j.find("events")) {
      LIPLIB_EXPECT(events->is_array(), "trace span 'events' must be an "
                                        "array");
      for (const Json& e : events->elements()) {
        SpanEvent ev;
        ev.name = string_member(e, "name");
        ev.ts_us = uint_member(e, "ts_us");
        s.events.push_back(std::move(ev));
      }
    }
    if (const Json* attrs = j.find("attrs")) {
      LIPLIB_EXPECT(attrs->is_object(), "trace span 'attrs' must be an "
                                        "object");
      for (const auto& [k, v] : attrs->members()) {
        LIPLIB_EXPECT(v.is_string(),
                      "trace span attr '" + k + "' must be a string");
        s.attrs.emplace_back(k, v.as_string());
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

Json merge_trace_docs(const std::vector<Json>& docs) {
  std::vector<Span> all;
  for (const Json& doc : docs) {
    std::vector<Span> part = spans_from_json(doc);
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return spans_to_json(std::move(all));
}

bool check_integrity(const std::vector<Span>& spans, std::string* error) {
  const auto fail = [error](std::string msg) {
    if (error) *error = std::move(msg);
    return false;
  };
  // (trace_id, span_id) must be unique; parents must resolve in-trace.
  std::set<std::pair<std::uint64_t, std::uint64_t>> ids;
  for (const Span& s : spans) {
    if (s.trace_id == 0) {
      return fail("span '" + s.name + "' has trace_id 0");
    }
    if (s.span_id == 0) {
      return fail("span '" + s.name + "' has span_id 0");
    }
    if (!ids.insert({s.trace_id, s.span_id}).second) {
      return fail("duplicate span id " + hex16(s.span_id) + " in trace " +
                  hex16(s.trace_id));
    }
  }
  for (const Span& s : spans) {
    if (s.parent_span == 0) continue;
    if (!ids.count({s.trace_id, s.parent_span})) {
      return fail("span '" + s.name + "' (" + hex16(s.span_id) +
                  ") references missing parent " + hex16(s.parent_span) +
                  " in trace " + hex16(s.trace_id));
    }
    if (s.parent_span == s.span_id) {
      return fail("span '" + s.name + "' is its own parent");
    }
  }
  return true;
}

void export_perfetto(const std::vector<Span>& spans, probe::TraceSink& sink,
                     std::uint64_t pid_base) {
  // One Perfetto process per distinct track label, pids in sorted track
  // order so the export is byte-stable for a fixed span set.
  std::map<std::string, std::uint64_t> pids;
  for (const Span& s : spans) pids.emplace(s.track, 0);
  std::uint64_t next = pid_base;
  for (auto& [track, pid] : pids) {
    pid = next++;
    sink.name_process(pid, track);
    sink.name_thread(pid, 1, track);
  }
  // Canonical event order, matching spans_to_json.
  std::vector<const Span*> ordered;
  ordered.reserve(spans.size());
  for (const Span& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Span* a, const Span* b) {
                     if (a->trace_id != b->trace_id)
                       return a->trace_id < b->trace_id;
                     if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                     return a->span_id < b->span_id;
                   });
  for (const Span* s : ordered) {
    const std::uint64_t pid = pids[s->track];
    sink.complete_event(s->name, s->category, s->ts_us, s->dur_us, pid, 1);
    for (const SpanEvent& e : s->events) {
      sink.instant_event(e.name, s->category, e.ts_us, pid, 1);
    }
  }
}

}  // namespace liplib::trace
