#include "liplib/sim/kernel.hpp"

#include <algorithm>

namespace liplib::sim {

SignalBase::SignalBase(SimContext& ctx, std::string name)
    : ctx_(ctx), name_(std::move(name)) {}

bool SignalBase::event() const {
  return change_stamp_ != 0 && change_stamp_ == ctx_.service_stamp_;
}

void SignalBase::register_pending() {
  if (!in_pending_list_) {
    in_pending_list_ = true;
    ctx_.add_pending(*this);
  }
}

Process& SimContext::process(std::string name, std::function<void()> body) {
  LIPLIB_EXPECT(!elaborated_, "process added after elaboration");
  processes_.push_back(
      std::make_unique<Process>(std::move(name), std::move(body)));
  return *processes_.back();
}

void SimContext::sensitize(Process& proc, const SignalBase& sig) {
  LIPLIB_EXPECT(!elaborated_, "sensitize after elaboration");
  proc.sensitivity_.push_back(&sig);
  sensitivity_.emplace(&sig, &proc);
}

void SimContext::on_change(const SignalBase& sig,
                           std::function<void()> hook) {
  change_hooks_.emplace(&sig, std::move(hook));
}

void SimContext::schedule_at(Time t, std::function<void()> load_pending) {
  LIPLIB_EXPECT(t >= now_, "cannot schedule in the past");
  calendar_.emplace(t, std::move(load_pending));
}

void SimContext::elaborate() {
  if (elaborated_) return;
  elaborated_ = true;
  // Run every process once, as VHDL runs each process up to its first
  // wait statement at time zero.
  for (auto& p : processes_) p->body_();
  // Settle any writes the elaboration performed.
  service_current_time();
}

void SimContext::service_current_time() {
  std::uint64_t deltas_here = 0;
  while (!pending_signals_.empty()) {
    LIPLIB_ENSURE(++deltas_here <= delta_limit_,
                  "delta-cycle limit exceeded at time " +
                      std::to_string(now_) +
                      " (combinational oscillation?)");
    ++delta_stamp_;
    service_stamp_ = delta_stamp_;

    std::vector<SignalBase*> batch;
    batch.swap(pending_signals_);
    std::vector<SignalBase*> changed;
    for (SignalBase* sig : batch) {
      sig->in_pending_list_ = false;
      if (sig->apply_pending()) {
        sig->change_stamp_ = delta_stamp_;
        changed.push_back(sig);
      }
    }

    // Wake processes; dedupe with the per-process wake stamp so that a
    // process sensitive to several changed signals runs once per delta.
    std::vector<Process*> wakeups;
    for (SignalBase* sig : changed) {
      auto [lo, hi] = sensitivity_.equal_range(sig);
      for (auto it = lo; it != hi; ++it) {
        Process* p = it->second;
        if (p->wake_stamp_ != delta_stamp_) {
          p->wake_stamp_ = delta_stamp_;
          wakeups.push_back(p);
        }
      }
    }
    for (SignalBase* sig : changed) {
      auto [lo, hi] = change_hooks_.equal_range(sig);
      for (auto it = lo; it != hi; ++it) it->second();
    }
    if (observer_) observer_->on_delta(now_, changed.size(), wakeups.size());
    for (Process* p : wakeups) p->body_();
  }
  if (observer_ && deltas_here > 0) {
    observer_->on_time_serviced(now_, deltas_here);
  }
}

void SimContext::run_until(Time t_end) {
  elaborate();
  while (!calendar_.empty() && calendar_.begin()->first <= t_end) {
    now_ = calendar_.begin()->first;
    while (!calendar_.empty() && calendar_.begin()->first == now_) {
      auto node = calendar_.extract(calendar_.begin());
      node.mapped()();
    }
    service_current_time();
  }
  if (now_ < t_end) now_ = t_end;
}

Time SimContext::run_steps(std::uint64_t n) {
  elaborate();
  for (std::uint64_t i = 0; i < n && !calendar_.empty(); ++i) {
    now_ = calendar_.begin()->first;
    while (!calendar_.empty() && calendar_.begin()->first == now_) {
      auto node = calendar_.extract(calendar_.begin());
      node.mapped()();
    }
    service_current_time();
  }
  return now_;
}

Clock::Clock(SimContext& ctx, std::string name, Time half_period, Time phase)
    : clk_(ctx.signal<bool>(std::move(name), false)) {
  LIPLIB_EXPECT(half_period >= 1, "clock half period must be >= 1");
  // A self-rescheduling process: on every edge of clk, schedule the
  // opposite value half a period later.  The first rising edge is kicked
  // off at `phase` during elaboration.
  Process& p = ctx.process(clk_.name() + ".gen", [this, half_period, phase] {
    if (clk_.event()) {
      clk_.write_after(!clk_.read(), half_period);
    } else {
      clk_.write_after(true, phase);  // elaboration run
    }
  });
  ctx.sensitize(p, clk_);
}

}  // namespace liplib::sim
