#include "liplib/telemetry/bench_diff.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "liplib/support/check.hpp"

namespace liplib::telemetry {

namespace {

constexpr std::string_view kBenchSchema = "liplib.bench/1";

bool contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

/// Key of a record: its string-valued fields in field order
/// ("config=counters"), or "record[i]" when it has none.
std::string record_key(const Json& rec, std::size_t index) {
  std::string key;
  for (const auto& [name, value] : rec.members()) {
    if (!value.is_string()) continue;
    if (!key.empty()) key += ",";
    key += name + "=" + value.as_string();
  }
  if (key.empty()) key = "record[" + std::to_string(index) + "]";
  return key;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt_pct(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.1f%%", v);
  return buf;
}

struct BenchDoc {
  std::string bench;
  const Json* records;
};

BenchDoc open_bench(const Json& doc, const char* which) {
  LIPLIB_EXPECT(doc.is_object(),
                std::string("bench ") + which + " file is not a JSON object");
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kBenchSchema) {
    throw ApiError(std::string("bench ") + which +
                   " file is not a liplib.bench/1 document");
  }
  const Json* bench = doc.find("bench");
  const Json* records = doc.find("records");
  if (bench == nullptr || !bench->is_string() || records == nullptr ||
      !records->is_array()) {
    throw ApiError(std::string("bench ") + which +
                   " file is missing \"bench\" or \"records\"");
  }
  return {bench->as_string(), records};
}

}  // namespace

const char* delta_class_str(DeltaClass c) {
  switch (c) {
    case DeltaClass::kHigherBetter: return "higher_better";
    case DeltaClass::kLowerBetter: return "lower_better";
    case DeltaClass::kInfo: return "info";
  }
  return "?";
}

DeltaClass classify_bench_field(std::string_view field) {
  // Rate-like names win over cost-like ones so "jobs_per_second" is not
  // misread via its "second" substring.
  if (contains(field, "per_s") || contains(field, "speedup") ||
      contains(field, "throughput") || contains(field, "rate")) {
    return DeltaClass::kHigherBetter;
  }
  if (contains(field, "seconds") || contains(field, "overhead")) {
    return DeltaClass::kLowerBetter;
  }
  return DeltaClass::kInfo;
}

bool BenchDiff::has_regression() const { return regressions() > 0; }

std::size_t BenchDiff::regressions() const {
  std::size_t n = 0;
  for (const auto& d : deltas) n += d.regression ? 1 : 0;
  return n;
}

std::size_t BenchDiff::improvements() const {
  std::size_t n = 0;
  for (const auto& d : deltas) n += d.improvement ? 1 : 0;
  return n;
}

std::string BenchDiff::to_text() const {
  std::ostringstream os;
  os << "bench diff: " << bench << " (threshold " << fmt(threshold_pct)
     << "%)\n";
  for (const auto& d : deltas) {
    if (d.cls == DeltaClass::kInfo) continue;
    os << "  [" << d.record << "] " << d.field << ": " << fmt(d.old_value)
       << " -> " << fmt(d.new_value) << " (" << fmt_pct(d.change_pct) << ")";
    if (d.regression) os << "  REGRESSION";
    if (d.improvement) os << "  improvement";
    os << "\n";
  }
  for (const auto& n : notes) os << "  note: " << n << "\n";
  os << "  " << regressions() << " regression(s), " << improvements()
     << " improvement(s), " << deltas.size() << " field(s) compared\n";
  return os.str();
}

Json BenchDiff::to_json() const {
  Json j = Json::object();
  j.set("schema", "liplib.benchdiff/1");
  j.set("bench", bench);
  j.set("threshold_pct", threshold_pct);
  Json ds = Json::array();
  for (const auto& d : deltas) {
    ds.push(Json::object()
                .set("record", d.record)
                .set("field", d.field)
                .set("old", d.old_value)
                .set("new", d.new_value)
                .set("change_pct", d.change_pct)
                .set("class", delta_class_str(d.cls))
                .set("regression", d.regression)
                .set("improvement", d.improvement));
  }
  j.set("deltas", std::move(ds));
  Json ns = Json::array();
  for (const auto& n : notes) ns.push(Json(n));
  j.set("notes", std::move(ns));
  j.set("regressions", static_cast<std::uint64_t>(regressions()));
  j.set("improvements", static_cast<std::uint64_t>(improvements()));
  return j;
}

BenchDiff bench_diff(const Json& old_doc, const Json& new_doc,
                     BenchDiffOptions opts) {
  LIPLIB_EXPECT(opts.threshold_pct >= 0, "bench diff threshold must be >= 0");
  const BenchDoc oldb = open_bench(old_doc, "baseline");
  const BenchDoc newb = open_bench(new_doc, "candidate");
  if (oldb.bench != newb.bench) {
    throw ApiError("bench diff: comparing different benches (\"" + oldb.bench +
                   "\" vs \"" + newb.bench + "\")");
  }

  BenchDiff diff;
  diff.bench = newb.bench;
  diff.threshold_pct = opts.threshold_pct;

  // Old records by key; duplicate keys keep the first occurrence and a
  // note (bench records are config rows — duplicates mean a bad file).
  std::map<std::string, const Json*> old_by_key;
  for (std::size_t i = 0; i < oldb.records->size(); ++i) {
    const Json& rec = oldb.records->at(i);
    const std::string key = record_key(rec, i);
    if (!old_by_key.emplace(key, &rec).second) {
      diff.notes.push_back("baseline has duplicate record key \"" + key +
                           "\"; keeping the first");
    }
  }

  std::size_t matched = 0;
  for (std::size_t i = 0; i < newb.records->size(); ++i) {
    const Json& rec = newb.records->at(i);
    const std::string key = record_key(rec, i);
    auto it = old_by_key.find(key);
    if (it == old_by_key.end()) {
      diff.notes.push_back("record \"" + key +
                           "\" only in candidate (not gated)");
      continue;
    }
    const Json& old_rec = *it->second;
    old_by_key.erase(it);
    ++matched;
    for (const auto& [field, value] : rec.members()) {
      if (!value.is_number()) continue;
      const Json* old_val = old_rec.find(field);
      if (old_val == nullptr || !old_val->is_number()) {
        diff.notes.push_back("field \"" + field + "\" of \"" + key +
                             "\" missing or non-numeric in baseline");
        continue;
      }
      BenchDelta d;
      d.record = key;
      d.field = field;
      d.old_value = old_val->as_double();
      d.new_value = value.as_double();
      d.cls = classify_bench_field(field);
      if (d.old_value == 0.0) {
        if (d.cls != DeltaClass::kInfo && d.new_value != 0.0) {
          diff.notes.push_back("field \"" + field + "\" of \"" + key +
                               "\" has zero baseline (not gated)");
        }
        d.cls = DeltaClass::kInfo;
        d.change_pct = 0;
      } else {
        d.change_pct = (d.new_value - d.old_value) / d.old_value * 100.0;
      }
      if (d.cls == DeltaClass::kHigherBetter) {
        d.regression = d.change_pct < -opts.threshold_pct;
        d.improvement = d.change_pct > opts.threshold_pct;
      } else if (d.cls == DeltaClass::kLowerBetter) {
        d.regression = d.change_pct > opts.threshold_pct;
        d.improvement = d.change_pct < -opts.threshold_pct;
      }
      diff.deltas.push_back(std::move(d));
    }
  }
  for (const auto& [key, rec] : old_by_key) {
    (void)rec;
    diff.notes.push_back("record \"" + key +
                         "\" only in baseline (not gated)");
  }
  if (matched == 0 && (oldb.records->size() > 0 || newb.records->size() > 0)) {
    diff.notes.push_back("no records matched between the two files");
  }
  return diff;
}

BenchDiff bench_diff_files(const std::string& old_path,
                           const std::string& new_path,
                           BenchDiffOptions opts) {
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw ApiError("cannot open bench file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  Json old_doc;
  Json new_doc;
  try {
    old_doc = Json::parse(slurp(old_path));
  } catch (const ApiError& e) {
    throw ApiError(old_path + ": " + e.what());
  }
  try {
    new_doc = Json::parse(slurp(new_path));
  } catch (const ApiError& e) {
    throw ApiError(new_path + ": " + e.what());
  }
  return bench_diff(old_doc, new_doc, opts);
}

}  // namespace liplib::telemetry
