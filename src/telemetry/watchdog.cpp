#include "liplib/telemetry/watchdog.hpp"

#include <map>
#include <sstream>

#include "liplib/graph/netlist_io.hpp"
#include "liplib/lip/system.hpp"
#include "liplib/probe/trace.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/support/check.hpp"
#include "liplib/xir/xir.hpp"

namespace liplib::telemetry {

namespace {

const char* activity_str(probe::Activity a) {
  switch (a) {
    case probe::Activity::kFired: return "fire";
    case probe::Activity::kWaitingInput: return "wait";
    case probe::Activity::kStoppedOutput: return "stall";
  }
  return "?";
}

const char* why_str(probe::Activity a) {
  return a == probe::Activity::kWaitingInput ? "waiting" : "stopped";
}

const char* kind_str(probe::UnitKind k) {
  switch (k) {
    case probe::UnitKind::kShell: return "shell";
    case probe::UnitKind::kSource: return "source";
    case probe::UnitKind::kSink: return "sink";
    case probe::UnitKind::kStation: return "station";
  }
  return "?";
}

/// Same trace process id as the live probe, so a bundle trace opens in
/// Perfetto with the familiar layout.
constexpr std::uint64_t kTracePid = 1;

TripReason parse_reason(const std::string& s) {
  if (s == "no_progress") return TripReason::kNoProgress;
  if (s == "stop_saturation") return TripReason::kStopSaturation;
  if (s == "none") return TripReason::kNone;
  throw ApiError("post-mortem bundle has unknown trip reason \"" + s + "\"");
}

probe::ProbeConfig watchdog_probe_config(probe::CycleObserver* observer) {
  probe::ProbeConfig cfg;
  cfg.counters = true;
  cfg.attribution = true;  // the bundle's blame histogram
  cfg.trace = nullptr;     // the trace is replayed from the ring on trip
  cfg.observer = observer;
  return cfg;
}

}  // namespace

const char* trip_reason_str(TripReason r) {
  switch (r) {
    case TripReason::kNone: return "none";
    case TripReason::kNoProgress: return "no_progress";
    case TripReason::kStopSaturation: return "stop_saturation";
  }
  return "?";
}

// ---- PostMortem ---------------------------------------------------------

Json PostMortem::to_json() const {
  Json j = Json::object();
  j.set("schema", "liplib.postmortem/1");
  j.set("reason", trip_reason_str(reason));
  j.set("trip_cycle", trip_cycle);
  j.set("no_progress_since", no_progress_since);
  j.set("no_progress_threshold", no_progress_threshold);
  j.set("ring_cycles", ring_cycles);
  j.set("seed", seed);
  j.set("strict", strict);
  j.set("optimistic", optimistic);
  j.set("worst_case_occupancy", worst_case_occupancy);
  j.set("netlist", netlist);
  Json bl = Json::array();
  for (const auto& b : blame) {
    bl.push(Json::object()
                .set("victim", b.victim)
                .set("why", b.why)
                .set("culprit", b.culprit)
                .set("culprit_kind", b.culprit_kind)
                .set("cycles", b.cycles));
  }
  j.set("blame", std::move(bl));
  j.set("trace", trace_json);
  return j;
}

PostMortem PostMortem::from_json(const Json& j) {
  LIPLIB_EXPECT(j.is_object(), "post-mortem bundle must be a JSON object");
  const Json* schema = j.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "liplib.postmortem/1") {
    throw ApiError("not a liplib.postmortem/1 bundle");
  }
  auto field = [&](const char* name) -> const Json& {
    const Json* f = j.find(name);
    if (f == nullptr) {
      throw ApiError(std::string("post-mortem bundle missing field \"") +
                     name + "\"");
    }
    return *f;
  };
  PostMortem pm;
  pm.reason = parse_reason(field("reason").as_string());
  pm.trip_cycle = field("trip_cycle").as_uint();
  pm.no_progress_since = field("no_progress_since").as_uint();
  pm.no_progress_threshold = field("no_progress_threshold").as_uint();
  pm.ring_cycles = field("ring_cycles").as_uint();
  pm.seed = field("seed").as_uint();
  pm.strict = field("strict").as_bool();
  pm.optimistic = field("optimistic").as_bool();
  pm.worst_case_occupancy = field("worst_case_occupancy").as_bool();
  pm.netlist = field("netlist").as_string();
  const Json& bl = field("blame");
  for (std::size_t i = 0; i < bl.size(); ++i) {
    const Json& e = bl.at(i);
    BlameSummary b;
    b.victim = e.find("victim")->as_string();
    b.why = e.find("why")->as_string();
    b.culprit = e.find("culprit")->as_string();
    b.culprit_kind = e.find("culprit_kind")->as_string();
    b.cycles = e.find("cycles")->as_uint();
    pm.blame.push_back(std::move(b));
  }
  pm.trace_json = field("trace").as_string();
  return pm;
}

// ---- Watchdog -----------------------------------------------------------

Watchdog::Watchdog(WatchdogOptions opts)
    : opts_(opts), probe_(watchdog_probe_config(this)) {
  LIPLIB_EXPECT(opts_.no_progress_threshold > 0,
                "watchdog no_progress_threshold must be positive");
  LIPLIB_EXPECT(opts_.ring_cycles > 0, "watchdog ring_cycles must be positive");
}

void Watchdog::attach(lip::System& sys) { sys.attach_probe(probe_); }

void Watchdog::attach(skeleton::Skeleton& sk) { sk.attach_probe(probe_); }

void Watchdog::attach(xir::ScalarEngine& eng) { eng.attach_probe(probe_); }

void Watchdog::on_bind(const probe::Probe& p) {
  bound_ = &p;
  segs_ = p.wiring().segments.size();
  shells_ = p.wiring().shells.size();
  const std::size_t n = static_cast<std::size_t>(opts_.ring_cycles);
  ring_valid_.assign(n * segs_, 0);
  ring_stop_.assign(n * segs_, 0);
  ring_act_.assign(n * shells_, 0);
  ring_cycle_.assign(n, 0);
  frames_ = 0;
  frozen_run_ = 0;
  frozen_since_ = 0;
  reason_ = TripReason::kNone;
  trip_cycle_ = 0;
  trip_saturated_ = false;
}

bool Watchdog::frame_frozen(const std::uint8_t* valid,
                            const std::uint8_t* stop,
                            const probe::Activity* activity,
                            bool* saturated) const {
  bool pending = false;
  bool moved = false;
  bool all_stopped = true;
  for (std::size_t i = 0; i < segs_; ++i) {
    if (valid[i] == 0) continue;
    pending = true;
    if (stop[i] == 0) {
      moved = true;       // a valid token advances at the clock edge
      all_stopped = false;
    }
  }
  bool fired = false;
  for (std::size_t k = 0; k < shells_; ++k) {
    if (activity[k] == probe::Activity::kFired) {
      fired = true;
      break;
    }
  }
  *saturated = pending && all_stopped;
  return pending && !moved && !fired;
}

void Watchdog::on_cycle(std::uint64_t cycle, const std::uint8_t* valid,
                        const std::uint8_t* stop,
                        const probe::Activity* activity) {
  if (tripped()) return;  // flight recorder frozen at the trip frame

  const std::size_t n = static_cast<std::size_t>(opts_.ring_cycles);
  const std::size_t slot = static_cast<std::size_t>(frames_ % n);
  for (std::size_t i = 0; i < segs_; ++i) {
    ring_valid_[slot * segs_ + i] = valid[i];
    ring_stop_[slot * segs_ + i] = stop[i];
  }
  for (std::size_t k = 0; k < shells_; ++k) {
    ring_act_[slot * shells_ + k] = static_cast<std::uint8_t>(activity[k]);
  }
  ring_cycle_[slot] = cycle;
  ++frames_;

  bool saturated = false;
  if (frame_frozen(valid, stop, activity, &saturated)) {
    if (frozen_run_ == 0) frozen_since_ = cycle;
    ++frozen_run_;
    if (frozen_run_ >= opts_.no_progress_threshold) {
      reason_ = saturated ? TripReason::kStopSaturation
                          : TripReason::kNoProgress;
      trip_cycle_ = cycle;
      trip_saturated_ = saturated;
    }
  } else {
    frozen_run_ = 0;
  }
}

std::uint64_t Watchdog::recorded_cycles() const {
  return frames_ < opts_.ring_cycles ? frames_ : opts_.ring_cycles;
}

std::string Watchdog::render_ring_trace() const {
  LIPLIB_EXPECT(bound_ != nullptr, "watchdog never bound");
  const probe::Wiring& w = bound_->wiring();
  const graph::Topology& topo = bound_->topology();

  std::ostringstream os;
  probe::TraceSink sink(os);
  sink.name_process(kTracePid, "lid-postmortem");
  std::vector<std::string> shell_names(shells_);
  for (std::size_t k = 0; k < shells_; ++k) {
    shell_names[k] = topo.node(w.shells[k].node).name;
    sink.name_thread(kTracePid, k + 1, shell_names[k]);
  }

  // Channel -> segments, and deduplicated counter-track names (same
  // convention as the live probe).
  std::vector<std::vector<std::size_t>> channel_segs(topo.channels().size());
  for (std::size_t i = 0; i < w.segments.size(); ++i) {
    channel_segs[w.segments[i].channel].push_back(i);
  }
  std::vector<std::string> channel_track;
  std::map<std::string, std::size_t> track_uses;
  for (graph::ChannelId c = 0; c < topo.channels().size(); ++c) {
    const auto& ch = topo.channel(c);
    std::string name = "occ " + topo.node(ch.from.node).name + "_to_" +
                       topo.node(ch.to.node).name;
    if (track_uses[name]++ > 0) name += "#" + std::to_string(c);
    channel_track.push_back(std::move(name));
  }

  struct Span {
    std::uint8_t act = 0;
    std::uint64_t start = 0;
    bool open = false;
  };
  std::vector<Span> span(shells_);
  struct ChanSample {
    std::uint64_t valid = ~0ull;
    std::uint64_t stopped = ~0ull;
  };
  std::vector<ChanSample> chan(topo.channels().size());

  const std::size_t n = static_cast<std::size_t>(opts_.ring_cycles);
  const std::uint64_t count = recorded_cycles();
  const std::size_t start =
      frames_ <= n ? 0 : static_cast<std::size_t>(frames_ % n);
  std::uint64_t last_cycle = 0;
  for (std::uint64_t f = 0; f < count; ++f) {
    const std::size_t slot = (start + static_cast<std::size_t>(f)) % n;
    const std::uint64_t cycle = ring_cycle_[slot];
    last_cycle = cycle;
    for (std::size_t k = 0; k < shells_; ++k) {
      const std::uint8_t a = ring_act_[slot * shells_ + k];
      Span& sp = span[k];
      if (sp.open && sp.act == a) continue;
      if (sp.open) {
        sink.complete_event(activity_str(static_cast<probe::Activity>(sp.act)),
                            "shell", sp.start, cycle - sp.start, kTracePid,
                            k + 1);
      }
      sp = {a, cycle, true};
    }
    for (std::size_t c = 0; c < channel_segs.size(); ++c) {
      std::uint64_t v = 0;
      std::uint64_t s = 0;
      for (std::size_t seg : channel_segs[c]) {
        v += ring_valid_[slot * segs_ + seg];
        s += ring_stop_[slot * segs_ + seg];
      }
      if (v != chan[c].valid || s != chan[c].stopped) {
        sink.counter_event(channel_track[c], cycle, kTracePid,
                           {{"valid", v}, {"stop", s}});
        chan[c] = {v, s};
      }
    }
  }
  for (std::size_t k = 0; k < shells_; ++k) {
    if (span[k].open) {
      sink.complete_event(
          activity_str(static_cast<probe::Activity>(span[k].act)), "shell",
          span[k].start, last_cycle + 1 - span[k].start, kTracePid, k + 1);
    }
  }
  sink.finish();
  return os.str();
}

PostMortem Watchdog::post_mortem() const {
  LIPLIB_EXPECT(tripped(), "post_mortem on an untripped watchdog");
  LIPLIB_EXPECT(bound_ != nullptr, "watchdog never bound");
  PostMortem pm;
  pm.reason = reason_;
  pm.trip_cycle = trip_cycle_;
  pm.no_progress_since = frozen_since_;
  pm.no_progress_threshold = opts_.no_progress_threshold;
  pm.ring_cycles = opts_.ring_cycles;
  pm.seed = opts_.seed;
  pm.strict = bound_->wiring().strict;
  pm.optimistic = opts_.optimistic;
  pm.worst_case_occupancy = opts_.worst_case_occupancy;
  pm.netlist = graph::write_netlist(bound_->topology());
  for (const auto& b : bound_->report().blame) {
    BlameSummary s;
    s.victim = b.victim_name;
    s.why = why_str(b.why);
    s.culprit = b.culprit_name;
    s.culprit_kind = kind_str(b.culprit.kind);
    s.cycles = b.cycles;
    pm.blame.push_back(std::move(s));
  }
  pm.trace_json = render_ring_trace();
  return pm;
}

// ---- guarded runs and replay --------------------------------------------

GuardedRun run_guarded(lip::System& sys, Watchdog& dog,
                       std::uint64_t max_cycles) {
  GuardedRun r;
  for (std::uint64_t i = 0; i < max_cycles && !dog.tripped(); ++i) {
    sys.step();
    ++r.cycles;
  }
  r.deadlocked = dog.tripped();
  return r;
}

GuardedRun run_guarded(skeleton::Skeleton& sk, Watchdog& dog,
                       std::uint64_t max_cycles) {
  GuardedRun r;
  for (std::uint64_t i = 0; i < max_cycles && !dog.tripped(); ++i) {
    sk.step();
    ++r.cycles;
  }
  r.deadlocked = dog.tripped();
  return r;
}

GuardedRun run_guarded(xir::ScalarEngine& eng, Watchdog& dog,
                       std::uint64_t max_cycles) {
  GuardedRun r;
  for (std::uint64_t i = 0; i < max_cycles && !dog.tripped(); ++i) {
    eng.step();
    ++r.cycles;
  }
  r.deadlocked = dog.tripped();
  return r;
}

ReplayResult replay(const PostMortem& pm) {
  const graph::Topology topo = graph::parse_netlist_string(pm.netlist);
  skeleton::SkeletonOptions sopts;
  sopts.policy = pm.strict ? lip::StopPolicy::kCarloniStrict
                           : lip::StopPolicy::kCasuDiscardOnVoid;
  sopts.resolution = pm.optimistic ? lip::StopResolution::kOptimistic
                                   : lip::StopResolution::kPessimistic;
  skeleton::Skeleton sk(topo, sopts);
  if (pm.worst_case_occupancy) sk.saturate_stations();

  WatchdogOptions wopts;
  wopts.no_progress_threshold = pm.no_progress_threshold;
  wopts.ring_cycles = pm.ring_cycles;
  wopts.seed = pm.seed;
  wopts.worst_case_occupancy = pm.worst_case_occupancy;
  wopts.optimistic = pm.optimistic;
  Watchdog dog(wopts);
  dog.attach(sk);

  // The failure, if it reproduces, reproduces by the bundle's own trip
  // cycle; the margin absorbs nothing more than off-by-one drift.
  run_guarded(sk, dog, pm.trip_cycle + pm.no_progress_threshold + 16);

  ReplayResult r;
  r.tripped = dog.tripped();
  r.trip_cycle = dog.trip_cycle();
  r.no_progress_since = dog.no_progress_since();
  r.reason = dog.reason();
  r.reproduced = r.tripped && r.reason == pm.reason &&
                 r.trip_cycle == pm.trip_cycle &&
                 r.no_progress_since == pm.no_progress_since;
  return r;
}

// ---- KernelWatchdog -----------------------------------------------------

KernelWatchdog::KernelWatchdog(std::uint64_t max_deltas_per_time)
    : max_deltas_(max_deltas_per_time) {
  LIPLIB_EXPECT(max_deltas_ > 0, "kernel watchdog threshold must be positive");
}

void KernelWatchdog::on_delta(sim::Time now, std::size_t /*changes*/,
                              std::size_t /*wakeups*/) {
  if (!any_delta_ || now != current_time_) {
    current_time_ = now;
    deltas_this_time_ = 0;
    any_delta_ = true;
  }
  ++deltas_this_time_;
  if (!tripped_ && deltas_this_time_ >= max_deltas_) {
    tripped_ = true;
    trip_time_ = now;
    deltas_at_trip_ = deltas_this_time_;
  }
}

void KernelWatchdog::on_time_serviced(sim::Time /*now*/,
                                      std::uint64_t /*deltas*/) {}

}  // namespace liplib::telemetry
