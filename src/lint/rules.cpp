// The lint passes.  Each rule_* function appends its findings to the
// report in deterministic order; run_lint() sequences the passes in rule
// id order, so a report is sorted by (rule, locus) by construction.

#include <algorithm>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/equalize.hpp"
#include "liplib/graph/mcr.hpp"
#include "liplib/lint/lint.hpp"

namespace liplib::lint {

namespace {

using graph::ChannelId;
using graph::NodeId;
using graph::NodeKind;
using graph::RsKind;
using graph::Topology;

std::string port_ref(const Topology& topo, NodeId node, std::size_t port) {
  return topo.node(node).name + "." + std::to_string(port);
}

std::string channel_label(const Topology& topo, ChannelId c) {
  const auto& ch = topo.channel(c);
  return port_ref(topo, ch.from.node, ch.from.port) + " -> " +
         port_ref(topo, ch.to.node, ch.to.port);
}

std::string node_list(const Topology& topo, const std::vector<NodeId>& ids) {
  std::string out;
  for (NodeId v : ids) {
    if (!out.empty()) out += ", ";
    out += topo.node(v).name;
  }
  return out;
}

/// Strongly connected components of the node graph restricted to the
/// channels accepted by `keep`.  Returns the node sets of the components
/// that contain a directed cycle (size > 1, or a kept self-loop), each
/// sorted by node id, ordered by their smallest node id.
std::vector<std::vector<NodeId>> cyclic_components(
    const Topology& topo, const std::function<bool(ChannelId)>& keep) {
  const std::size_t n = topo.nodes().size();
  std::vector<std::vector<NodeId>> adj(n);
  std::vector<bool> self_loop(n, false);
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    if (!keep(c)) continue;
    const auto& ch = topo.channel(c);
    if (ch.from.node == ch.to.node) self_loop[ch.from.node] = true;
    adj[ch.from.node].push_back(ch.to.node);
  }

  // Iterative Tarjan (same shape as Topology::process_sccs).
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::vector<std::vector<NodeId>> cyclic;
  int next_index = 0;
  struct Frame {
    NodeId v;
    std::size_t child = 0;
  };
  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        const NodeId w = adj[f.v][f.child++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          std::vector<NodeId> comp;
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
            if (w == f.v) break;
          }
          if (comp.size() > 1 || self_loop[comp.front()]) {
            std::sort(comp.begin(), comp.end());
            cyclic.push_back(std::move(comp));
          }
        }
        const NodeId v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  std::sort(cyclic.begin(), cyclic.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return cyclic;
}

// ---- LIP001: dangling ports ----------------------------------------------

void rule_dangling(const Topology& topo, std::vector<Diagnostic>& out) {
  for (NodeId v = 0; v < topo.nodes().size(); ++v) {
    const auto& node = topo.node(v);
    for (std::size_t p = 0; p < node.num_inputs; ++p) {
      if (!topo.channel_into({v, p})) {
        out.push_back({"LIP001", Severity::kError, v, std::nullopt,
                       "input port " + std::to_string(p) + " of " + node.name +
                           " is not driven",
                       {}});
      }
    }
    for (std::size_t p = 0; p < node.num_outputs; ++p) {
      if (topo.channels_of({v, p}).empty()) {
        out.push_back({"LIP001", Severity::kError, v, std::nullopt,
                       "output port " + std::to_string(p) + " of " + node.name +
                           " drives nothing",
                       {}});
      }
    }
  }
}

// ---- LIP002: fanout beyond the 32-branch protocol cap --------------------

void rule_fanout(const Topology& topo, std::vector<Diagnostic>& out) {
  for (NodeId v = 0; v < topo.nodes().size(); ++v) {
    const auto& node = topo.node(v);
    for (std::size_t p = 0; p < node.num_outputs; ++p) {
      const auto width = topo.channels_of({v, p}).size();
      if (width > 32) {
        out.push_back({"LIP002", Severity::kError, v, std::nullopt,
                       "output port " + std::to_string(p) + " of " + node.name +
                           " fans out to " + std::to_string(width) +
                           " branches; the protocol engines track pending "
                           "consumers in a 32-bit mask (at most 32)",
                       {}});
      }
    }
  }
}

// ---- LIP003: missing relay station between shells ------------------------

void rule_missing_station(const Topology& topo, std::vector<Diagnostic>& out) {
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    const auto& ch = topo.channel(c);
    const bool shell_to_shell =
        topo.node(ch.from.node).kind == NodeKind::kProcess &&
        topo.node(ch.to.node).kind == NodeKind::kProcess;
    if (!shell_to_shell || !ch.stations.empty()) continue;
    FixIt fix;
    fix.kind = FixIt::Kind::kInsertStation;
    fix.channel = c;
    fix.index = 0;
    fix.count = 1;
    fix.station = RsKind::kHalf;
    fix.description = "insert a half relay station into channel " +
                      channel_label(topo, c);
    out.push_back({"LIP003", Severity::kError, std::nullopt, c,
                   "channel " + topo.node(ch.from.node).name + " -> " +
                       topo.node(ch.to.node).name +
                       " connects two shells with no relay station (the "
                       "protocol requires at least one memory element "
                       "between shells)",
                   {std::move(fix)}});
  }
}

// ---- LIP004: source feeds sink directly ----------------------------------

void rule_source_to_sink(const Topology& topo, std::vector<Diagnostic>& out) {
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    const auto& ch = topo.channel(c);
    if (topo.node(ch.from.node).kind == NodeKind::kSource &&
        topo.node(ch.to.node).kind == NodeKind::kSink) {
      out.push_back({"LIP004", Severity::kWarning, std::nullopt, c,
                     "channel " + topo.node(ch.from.node).name + " -> " +
                         topo.node(ch.to.node).name +
                         " connects a source directly to a sink",
                     {}});
    }
  }
}

// ---- LIP005: half relay station on a cycle (coarse hazard cue) -----------

void rule_half_on_cycle(const Topology& topo, std::vector<Diagnostic>& out) {
  const auto on_cycle = topo.channels_on_cycles();
  for (ChannelId c = 0; c < topo.channels().size(); ++c) {
    if (on_cycle[c] && topo.channel(c).num_half() > 0) {
      out.push_back({"LIP005", Severity::kInfo, std::nullopt, c,
                     "channel " + topo.node(topo.channel(c).from.node).name +
                         " -> " + topo.node(topo.channel(c).to.node).name +
                         " lies on a cycle and contains a half relay "
                         "station: potential deadlock; run skeleton "
                         "screening",
                     {}});
    }
  }
}

// ---- LIP006: combinational stop cycle (latent stop latch) ----------------
//
// A directed cycle all of whose relay stations are half has a fully
// combinational stop path: under saturation the stop wires latch and the
// cycle deadlocks.  The paper's token-conservation argument decides
// reachability statically: from reset a cycle of S shells holds exactly S
// valid tokens among S + H register positions (H = half-station slots on
// the cycle), so the latch closes from reset only when H = 0; with
// H >= 1 it is reachable only under worst-case occupancy (soft errors,
// saturated traffic).

void rule_stop_cycles(const Topology& topo, std::vector<Diagnostic>& out) {
  const auto latches = cyclic_components(
      topo, [&](ChannelId c) { return topo.channel(c).num_full() == 0; });
  if (latches.empty()) return;

  // Reset-reachable marker: nodes on a cycle with *no* stations at all.
  const auto bare = cyclic_components(
      topo, [&](ChannelId c) { return topo.channel(c).num_stations() == 0; });
  std::vector<bool> reset_reachable(topo.nodes().size(), false);
  for (const auto& comp : bare) {
    for (NodeId v : comp) reset_reachable[v] = true;
  }

  for (const auto& comp : latches) {
    std::vector<bool> member(topo.nodes().size(), false);
    for (NodeId v : comp) member[v] = true;

    // Intra-component stop-transparent channels, and the cheapest cure:
    // substitute the first half station of the lowest such channel.
    std::size_t half_slots = 0;
    bool from_reset = false;
    std::optional<ChannelId> cure_channel;
    std::optional<ChannelId> any_channel;
    for (ChannelId c = 0; c < topo.channels().size(); ++c) {
      const auto& ch = topo.channel(c);
      if (ch.num_full() > 0 || !member[ch.from.node] || !member[ch.to.node]) {
        continue;
      }
      half_slots += ch.num_half();
      if (!any_channel) any_channel = c;
      if (!cure_channel && ch.num_half() > 0) cure_channel = c;
    }
    for (NodeId v : comp) from_reset = from_reset || reset_reachable[v];

    FixIt fix;
    if (cure_channel) {
      fix.kind = FixIt::Kind::kSubstituteStation;
      fix.channel = *cure_channel;
      fix.index = 0;
      fix.station = RsKind::kFull;
      fix.description =
          "substitute the half relay station at position 0 of channel " +
          channel_label(topo, *cure_channel) +
          " with a full one (registers the stop path)";
    } else {
      fix.kind = FixIt::Kind::kInsertStation;
      fix.channel = any_channel.value_or(0);
      fix.index = 0;
      fix.station = RsKind::kFull;
      fix.description = "insert a full relay station into channel " +
                        channel_label(topo, any_channel.value_or(0)) +
                        " (registers the stop path)";
    }

    std::ostringstream msg;
    msg << "combinational stop cycle through shells " << node_list(topo, comp)
        << ": no full relay station registers the stop path";
    if (from_reset) {
      msg << "; with no station slack the stop latch closes from reset "
             "occupancy";
    } else {
      msg << "; unreachable from reset (the cycle conserves "
          << comp.size() << " token(s) in " << comp.size() + half_slots
          << " register positions) but deadlocks under worst-case occupancy";
    }
    out.push_back({"LIP006",
                   from_reset ? Severity::kError : Severity::kWarning,
                   comp.front(), std::nullopt, msg.str(), {std::move(fix)}});
  }
}

// ---- LIP007: reconvergence imbalance (predicted T = (m-i)/m) -------------

void rule_reconvergence(const Topology& topo, std::size_t budget,
                        std::vector<Diagnostic>& out) {
  if (!topo.is_feedforward()) return;
  // Gate on the exact implicit-loop bound, not on raw station imbalance:
  // the paper's closed form counts stations only, so an equalized design
  // (where shell registers make up the difference) still shows i > 0 —
  // but its exact bound is 1 and nothing is wrong.
  Rational exact(1);
  std::vector<graph::ReconvergenceInfo> pairs;
  try {
    exact = graph::exact_implicit_loop_bound(topo, budget);
    pairs = graph::analyze_reconvergence(topo, budget);
  } catch (const ApiError&) {
    out.push_back({"LIP007", Severity::kInfo, std::nullopt, std::nullopt,
                   "reconvergence analysis exceeded its path budget; "
                   "imbalance not checked",
                   {}});
    return;
  }
  if (!(exact < Rational(1))) return;  // balanced: full throughput

  // One equalization plan cures every imbalance at once; attach it to
  // the first diagnostic so applying all fix-its applies it once.
  std::vector<FixIt> fixits;
  const auto plan = graph::plan_equalization(topo);
  for (ChannelId c = 0; c < plan.stations_to_add.size(); ++c) {
    if (plan.stations_to_add[c] == 0) continue;
    FixIt fix;
    fix.kind = FixIt::Kind::kAppendStations;
    fix.channel = c;
    fix.count = plan.stations_to_add[c];
    fix.station = RsKind::kFull;
    fix.description = "append " + std::to_string(plan.stations_to_add[c]) +
                      " full relay station(s) to channel " +
                      channel_label(topo, c) + " (equalization)";
    fixits.push_back(std::move(fix));
  }
  bool emitted = false;
  for (const auto& p : pairs) {
    if (p.i() == 0) continue;
    std::ostringstream msg;
    msg << "reconvergent paths from " << topo.node(p.fork).name << " to "
        << topo.node(p.join).name << " are imbalanced by " << p.i()
        << " relay station(s): predicted T = (m-i)/m = "
        << p.throughput().str() << " (exact bound " << exact.str()
        << "); equalize the branches";
    out.push_back({"LIP007", Severity::kInfo, p.join, std::nullopt, msg.str(),
                   emitted ? std::vector<FixIt>{} : std::move(fixits)});
    emitted = true;
  }
  if (!emitted) {
    out.push_back({"LIP007", Severity::kInfo, std::nullopt, std::nullopt,
                   "reconvergent paths limit throughput to " + exact.str() +
                       " (exact implicit-loop bound); equalize the branches",
                   std::move(fixits)});
  }
}

// ---- LIP008: slowest-cycle bottleneck via the exact MCR ------------------

void rule_slowest_cycle(const Topology& topo, std::size_t budget,
                        std::vector<Diagnostic>& out) {
  const auto mcr = graph::min_cycle_ratio(topo);
  if (!mcr || !(*mcr < Rational(1))) return;
  std::optional<graph::CycleInfo> witness;
  try {
    for (const auto& c : graph::enumerate_cycles(topo, budget)) {
      if (c.throughput == *mcr) {
        witness = c;
        break;
      }
    }
  } catch (const ApiError&) {
    // Too many cycles to enumerate a witness; report the bound alone.
  }
  std::ostringstream msg;
  if (witness) {
    msg << "slowest cycle through shells " << node_list(topo, witness->nodes)
        << ": " << witness->shells << " shell(s), " << witness->stations
        << " relay station(s); loop bound T = S/(S+R) = " << mcr->str()
        << " limits system throughput";
  } else {
    msg << "loop bound (min cycle ratio) T = " << mcr->str()
        << " limits system throughput";
  }
  out.push_back({"LIP008", Severity::kInfo,
                 witness ? std::optional<NodeId>(witness->nodes.front())
                         : std::nullopt,
                 std::nullopt, msg.str(), {}});
}

// ---- LIP009: predictable-upfront transient bound -------------------------

void rule_transient(const Topology& topo, std::vector<Diagnostic>& out) {
  std::ostringstream msg;
  msg << "steady state is reached within " << graph::transient_bound(topo)
      << " cycles (transient bound)";
  if (const auto longest = graph::longest_register_path(topo)) {
    msg << "; longest register path " << *longest;
  }
  out.push_back({"LIP009", Severity::kInfo, std::nullopt, std::nullopt,
                 msg.str(), {}});
}

}  // namespace

Report run_lint(const graph::Topology& topo, const Options& options) {
  const auto enabled = [&](const char* id) {
    return std::find(options.disabled_rules.begin(),
                     options.disabled_rules.end(),
                     id) == options.disabled_rules.end();
  };
  Report report;
  auto& out = report.diagnostics;
  if (enabled("LIP001")) rule_dangling(topo, out);
  if (enabled("LIP002")) rule_fanout(topo, out);
  if (enabled("LIP003") && options.require_station_between_shells) {
    rule_missing_station(topo, out);
  }
  if (enabled("LIP004")) rule_source_to_sink(topo, out);
  if (enabled("LIP005")) rule_half_on_cycle(topo, out);
  // With input-queued shells (station rule waived) the queues register
  // the stop path, so the stop-latch analysis does not apply.
  if (enabled("LIP006") && options.require_station_between_shells) {
    rule_stop_cycles(topo, out);
  }
  if (!options.structural_only) {
    if (enabled("LIP007")) {
      rule_reconvergence(topo, options.analysis_budget, out);
    }
    if (enabled("LIP008")) {
      rule_slowest_cycle(topo, options.analysis_budget, out);
    }
    if (enabled("LIP009")) rule_transient(topo, out);
  }
  return report;
}

}  // namespace liplib::lint
