// Topology::validate() is the legacy entry point for structural checking;
// it is defined here (rather than in graph/) so the graph library stays
// free of a lint dependency while validate() and the linter can never
// disagree — validate IS the structural subset of the linter.

#include "liplib/graph/topology.hpp"
#include "liplib/lint/lint.hpp"

namespace liplib::graph {

ValidationReport Topology::validate(
    bool require_station_between_shells) const {
  lint::Options options;
  options.require_station_between_shells = require_station_between_shells;
  options.structural_only = true;
  return lint::to_validation_report(lint::run_lint(*this, options));
}

}  // namespace liplib::graph
