// Lint driver: rule catalog, fix-it application, the lint-fix fixed
// point, and the adapter backing the legacy ValidationReport shape.

#include <algorithm>
#include <vector>

#include "liplib/lint/lint.hpp"

namespace liplib::lint {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"LIP001", "dangling-port", Severity::kError, false,
       "every input port must be driven and every output port must drive "
       "at least one channel",
       "structural precondition of the shell encapsulation (paper, "
       "section 3)"},
      {"LIP002", "fanout-overflow", Severity::kError, false,
       "an output port may drive at most 32 branches (the protocol "
       "engines track pending consumers in a 32-bit mask)",
       "implementation limit of the relay-station fanout logic"},
      {"LIP003", "missing-relay-station", Severity::kError, true,
       "a shell-to-shell channel needs at least one relay station; the "
       "stop signal cannot back-propagate combinationally through "
       "stop-transparent shells",
       "paper, section 4: at least one memory element between two shells"},
      {"LIP004", "source-to-sink", Severity::kWarning, false,
       "a channel from an environment source straight to a sink is "
       "degenerate",
       "structural sanity check"},
      {"LIP005", "half-station-on-cycle", Severity::kInfo, true,
       "a half relay station on a directed cycle is the paper's coarse "
       "deadlock cue; LIP006 refines it to an exact verdict",
       "paper, section 5: half relay stations are safe everywhere except "
       "on loops"},
      {"LIP006", "combinational-stop-cycle", Severity::kError, true,
       "a directed cycle whose stations are all half has an unregistered "
       "stop path (a latent stop latch); classified reset-reachable vs "
       "worst-case-reachable by token conservation",
       "paper, section 5a: a cycle of S shells conserves S tokens among "
       "S+H register positions, so the latch closes from reset only when "
       "the cycle has no station slack"},
      {"LIP007", "reconvergence-imbalance", Severity::kInfo, true,
       "imbalanced reconvergent paths cap throughput at T = (m-i)/m; the "
       "fix-it is the equalization plan",
       "paper, section 6: reconvergent feedforward throughput"},
      {"LIP008", "slowest-cycle-bottleneck", Severity::kInfo, false,
       "the slowest feedback loop bounds system throughput at "
       "T = S/(S+R) (exact min cycle ratio)",
       "paper, section 6: the slowest subtopology dictates T"},
      {"LIP009", "transient-bound", Severity::kInfo, false,
       "steady state is reached within a bound predictable from register "
       "counts alone",
       "paper, section 6: the transient length can be predicted upfront"},
  };
  return kCatalog;
}

std::size_t apply_fixits(graph::Topology& topo, const Report& report) {
  std::vector<FixIt> seen;
  std::size_t edits = 0;
  for (const auto& d : report.diagnostics) {
    for (const auto& f : d.fixits) {
      if (std::find(seen.begin(), seen.end(), f) != seen.end()) continue;
      seen.push_back(f);
      if (f.channel >= topo.channels().size()) continue;
      auto& stations = topo.channel_mut(f.channel).stations;
      switch (f.kind) {
        case FixIt::Kind::kInsertStation:
          if (f.index > stations.size()) break;  // stale edit
          stations.insert(stations.begin() +
                              static_cast<std::ptrdiff_t>(f.index),
                          f.count, f.station);
          edits += f.count;
          break;
        case FixIt::Kind::kSubstituteStation:
          if (f.index >= stations.size()) break;          // stale edit
          if (stations[f.index] == f.station) break;      // already applied
          stations[f.index] = f.station;
          edits += 1;
          break;
        case FixIt::Kind::kAppendStations:
          stations.insert(stations.end(), f.count, f.station);
          edits += f.count;
          break;
      }
    }
  }
  return edits;
}

FixResult lint_and_fix(const graph::Topology& topo, const Options& options) {
  // Each iteration either applies at least one station edit or stops, and
  // every curable finding disappears once its edit lands (LIP003 inserts
  // the missing station, LIP006 substitutions shrink the stop-transparent
  // channel set, LIP007 plans are recomputed from the edited topology),
  // so the loop reaches a fixed point; the iteration cap is a backstop.
  constexpr std::size_t kMaxIterations = 64;
  FixResult result;
  result.fixed = topo;
  result.report = run_lint(result.fixed, options);
  while (result.iterations < kMaxIterations &&
         result.report.num_fixits() > 0) {
    const std::size_t applied = apply_fixits(result.fixed, result.report);
    ++result.iterations;
    result.applied += applied;
    result.report = run_lint(result.fixed, options);
    if (applied == 0) break;  // every remaining fix-it was stale
  }
  return result;
}

graph::ValidationReport to_validation_report(const Report& report) {
  graph::ValidationReport out;
  out.issues.reserve(report.diagnostics.size());
  for (const auto& d : report.diagnostics) {
    out.issues.push_back({d.severity == Severity::kError
                              ? graph::ValidationIssue::Severity::kError
                              : graph::ValidationIssue::Severity::kWarning,
                          d.message});
  }
  return out;
}

}  // namespace liplib::lint
