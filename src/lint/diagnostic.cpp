#include "liplib/lint/diagnostic.hpp"

#include <algorithm>
#include <sstream>

namespace liplib::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

const char* FixIt::kind_name() const {
  switch (kind) {
    case Kind::kInsertStation: return "insert_station";
    case Kind::kSubstituteStation: return "substitute_station";
    case Kind::kAppendStations: return "append_stations";
  }
  return "unknown";
}

std::size_t Report::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::size_t Report::count_rule(const std::string& rule) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

std::optional<Severity> Report::max_severity() const {
  std::optional<Severity> max;
  for (const auto& d : diagnostics) {
    if (!max || static_cast<int>(d.severity) > static_cast<int>(*max)) {
      max = d.severity;
    }
  }
  return max;
}

int Report::exit_code() const {
  if (count(Severity::kError) > 0) return 2;
  if (count(Severity::kWarning) > 0) return 1;
  return 0;
}

std::size_t Report::num_fixits() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) n += d.fixits.size();
  return n;
}

namespace {

std::string port_ref(const graph::Topology& topo, graph::NodeId node,
                     std::size_t port) {
  return topo.node(node).name + "." + std::to_string(port);
}

std::string channel_label(const graph::Topology& topo, graph::ChannelId c) {
  const auto& ch = topo.channel(c);
  return port_ref(topo, ch.from.node, ch.from.port) + " -> " +
         port_ref(topo, ch.to.node, ch.to.port);
}

const char* station_name(graph::RsKind k) {
  return k == graph::RsKind::kFull ? "full" : "half";
}

}  // namespace

std::string Report::to_string(const graph::Topology& topo) const {
  std::ostringstream os;
  for (const auto& d : diagnostics) {
    os << severity_name(d.severity) << '[' << d.rule << "] " << d.message
       << '\n';
    for (const auto& f : d.fixits) {
      os << "  fix-it: " << f.description << '\n';
    }
  }
  const auto errors = count(Severity::kError);
  const auto warnings = count(Severity::kWarning);
  const auto infos = count(Severity::kInfo);
  os << errors << " error(s), " << warnings << " warning(s), " << infos
     << " note(s)\n";
  (void)topo;
  return os.str();
}

Json Report::to_json(const graph::Topology& topo) const {
  Json doc = Json::object();
  doc.set("schema", "liplib-lint-v1");
  Json summary = Json::object();
  summary.set("errors", static_cast<std::uint64_t>(count(Severity::kError)));
  summary.set("warnings",
              static_cast<std::uint64_t>(count(Severity::kWarning)));
  summary.set("infos", static_cast<std::uint64_t>(count(Severity::kInfo)));
  summary.set("clean", clean());
  summary.set("exit_code", exit_code());
  doc.set("summary", std::move(summary));

  Json diags = Json::array();
  for (const auto& d : diagnostics) {
    Json j = Json::object();
    j.set("rule", d.rule);
    j.set("severity", severity_name(d.severity));
    if (d.node) {
      Json n = Json::object();
      n.set("id", static_cast<std::uint64_t>(*d.node));
      n.set("name", topo.node(*d.node).name);
      j.set("node", std::move(n));
    }
    if (d.channel) {
      const auto& ch = topo.channel(*d.channel);
      Json c = Json::object();
      c.set("id", static_cast<std::uint64_t>(*d.channel));
      c.set("from", port_ref(topo, ch.from.node, ch.from.port));
      c.set("to", port_ref(topo, ch.to.node, ch.to.port));
      j.set("channel", std::move(c));
    }
    j.set("message", d.message);
    if (!d.fixits.empty()) {
      Json fixits = Json::array();
      for (const auto& f : d.fixits) {
        Json fx = Json::object();
        fx.set("kind", f.kind_name());
        fx.set("channel", static_cast<std::uint64_t>(f.channel));
        fx.set("channel_label", channel_label(topo, f.channel));
        fx.set("index", static_cast<std::uint64_t>(f.index));
        fx.set("count", static_cast<std::uint64_t>(f.count));
        fx.set("station", station_name(f.station));
        fx.set("description", f.description);
        fixits.push(std::move(fx));
      }
      j.set("fixits", std::move(fixits));
    }
    diags.push(std::move(j));
  }
  doc.set("diagnostics", std::move(diags));
  return doc;
}

}  // namespace liplib::lint
