#include "liplib/lip/steady_state.hpp"

#include <unordered_map>

namespace liplib::lip {

namespace {

struct Snapshot {
  std::uint64_t cycle = 0;
  std::vector<std::uint64_t> sink_counts;
  std::vector<std::uint64_t> shell_fires;
};

}  // namespace

SteadyState measure_steady_state(System& sys, std::uint64_t max_cycles,
                                 std::uint64_t env_period) {
  LIPLIB_EXPECT(env_period >= 1, "environment period must be >= 1");
  sys.finalize();

  const auto& topo = sys.topology();
  std::vector<graph::NodeId> sink_ids;
  std::vector<graph::NodeId> shell_ids;
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    if (topo.node(v).kind == graph::NodeKind::kSink) sink_ids.push_back(v);
    if (topo.node(v).kind == graph::NodeKind::kProcess) shell_ids.push_back(v);
  }

  auto snap = [&] {
    Snapshot s;
    s.cycle = sys.cycle();
    for (auto id : sink_ids) s.sink_counts.push_back(sys.sink_count(id));
    for (auto id : shell_ids) s.shell_fires.push_back(sys.shell_fire_count(id));
    return s;
  };

  std::unordered_map<std::string, Snapshot> seen;
  SteadyState result;

  for (std::uint64_t i = 0; i <= max_cycles; ++i) {
    std::string key = sys.protocol_state();
    key.push_back(static_cast<char>(sys.cycle() % env_period));
    auto [it, inserted] = seen.emplace(std::move(key), snap());
    if (!inserted) {
      const Snapshot& first = it->second;
      const Snapshot now = snap();
      result.found = true;
      result.transient = first.cycle;
      result.period = now.cycle - first.cycle;
      LIPLIB_ENSURE(result.period > 0, "zero-length period");
      bool any_progress = false;
      for (std::size_t k = 0; k < sink_ids.size(); ++k) {
        const auto delta = now.sink_counts[k] - first.sink_counts[k];
        if (delta > 0) any_progress = true;
        result.sink_throughput.emplace_back(
            static_cast<std::int64_t>(delta),
            static_cast<std::int64_t>(result.period));
      }
      for (std::size_t k = 0; k < shell_ids.size(); ++k) {
        const auto delta = now.shell_fires[k] - first.shell_fires[k];
        if (delta > 0) any_progress = true;
        if (delta == 0) result.has_starved_shell = true;
        result.shell_throughput.emplace_back(
            static_cast<std::int64_t>(delta),
            static_cast<std::int64_t>(result.period));
      }
      result.deadlocked = !any_progress;
      return result;
    }
    sys.step();
  }
  return result;  // found == false
}

}  // namespace liplib::lip
