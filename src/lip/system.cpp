#include "liplib/lip/system.hpp"

#include <algorithm>
#include <ostream>

#include "liplib/probe/probe.hpp"
#include "liplib/support/vcd.hpp"

namespace liplib::lip {

namespace detail {

/// Owns the VCD writer and the per-segment signal handles.
struct VcdTap {
  explicit VcdTap(std::ostream& os) : writer(os, "lid") {}
  VcdWriter writer;
  // Per segment: valid, data, stop signal ids (in segment order).
  std::vector<VcdWriter::SignalId> valid_id;
  std::vector<VcdWriter::SignalId> data_id;
  std::vector<VcdWriter::SignalId> stop_id;
};

}  // namespace detail

namespace {
constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
}

System::System(const graph::Topology& topo, Options opts)
    : topo_(topo), opts_(opts) {
  // With input-queued shells the queue is the memory element between
  // shells, so the station rule is waived.
  const auto report =
      topo_.validate(/*require_station_between_shells=*/opts_.input_queue_depth == 0);
  LIPLIB_EXPECT(report.ok(),
                "topology has structural errors:\n" + report.to_string());

  node_index_.assign(topo_.nodes().size(), kNoIndex);
  for (graph::NodeId v = 0; v < topo_.nodes().size(); ++v) {
    const auto& node = topo_.node(v);
    switch (node.kind) {
      case graph::NodeKind::kProcess: {
        ShellState s;
        s.node = v;
        s.in_seg.assign(node.num_inputs, 0);
        s.out.resize(node.num_outputs);
        s.in_scratch.assign(node.num_inputs, 0);
        s.out_scratch.assign(node.num_outputs, 0);
        node_index_[v] = shells_.size();
        shells_.push_back(std::move(s));
        break;
      }
      case graph::NodeKind::kSource: {
        SourceState s;
        s.node = v;
        s.behavior = SourceBehavior::counter();
        node_index_[v] = sources_.size();
        sources_.push_back(std::move(s));
        break;
      }
      case graph::NodeKind::kSink: {
        SinkState s;
        s.node = v;
        s.behavior = SinkBehavior::greedy();
        node_index_[v] = sinks_.size();
        sinks_.push_back(std::move(s));
        break;
      }
    }
  }

  channel_segs_.resize(topo_.channels().size());
  channel_stations_.resize(topo_.channels().size());
  for (graph::ChannelId c = 0; c < topo_.channels().size(); ++c) {
    const auto& ch = topo_.channel(c);
    const std::size_t hops = ch.num_stations() + 1;
    std::vector<SegId> ids;
    ids.reserve(hops);
    for (std::size_t h = 0; h < hops; ++h) {
      ids.push_back(segs_.size());
      segs_.emplace_back();
    }
    // Producer side.
    const auto& from_node = topo_.node(ch.from.node);
    if (from_node.kind == graph::NodeKind::kProcess) {
      auto& port = shells_[node_index_[ch.from.node]].out[ch.from.port];
      LIPLIB_EXPECT(port.branch.size() < 32,
                    "more than 32 fanout branches on output port " +
                        std::to_string(ch.from.port) + " of '" +
                        from_node.name + "'");
      port.branch.push_back(ids.front());
    } else {
      LIPLIB_EXPECT(from_node.kind == graph::NodeKind::kSource,
                    "sink cannot produce");
      auto& port = sources_[node_index_[ch.from.node]].port;
      LIPLIB_EXPECT(port.branch.size() < 32,
                    "more than 32 fanout branches on source '" +
                        from_node.name + "'");
      port.branch.push_back(ids.front());
    }
    // Relay station chain.
    for (std::size_t i = 0; i < ch.num_stations(); ++i) {
      Station st;
      st.kind = ch.stations[i];
      st.in_seg = ids[i];
      st.out_seg = ids[i + 1];
      if (strict()) {
        // Relay stations are initialized with non-valid outputs (paper):
        // under the strict protocol the initial void is a real token that
        // occupies one register and must drain toward the outputs.
        st.slot[0] = Token::make_void();
        st.occ = 1;
      }
      channel_stations_[c].push_back(stations_.size());
      stations_.push_back(st);
    }
    // Consumer side.
    const auto& to_node = topo_.node(ch.to.node);
    if (to_node.kind == graph::NodeKind::kProcess) {
      shells_[node_index_[ch.to.node]].in_seg[ch.to.port] = ids.back();
    } else {
      LIPLIB_EXPECT(to_node.kind == graph::NodeKind::kSink,
                    "source cannot consume");
      sinks_[node_index_[ch.to.node]].in_seg = ids.back();
    }
    channel_segs_[c] = std::move(ids);
  }
}

void System::bind_pearl(graph::NodeId node, std::unique_ptr<Pearl> pearl) {
  LIPLIB_EXPECT(!finalized_, "bind after finalize");
  LIPLIB_EXPECT(node < topo_.nodes().size() &&
                    topo_.node(node).kind == graph::NodeKind::kProcess,
                "bind_pearl target is not a process node");
  LIPLIB_EXPECT(pearl != nullptr, "null pearl");
  LIPLIB_EXPECT(pearl->num_inputs() == topo_.node(node).num_inputs &&
                    pearl->num_outputs() == topo_.node(node).num_outputs,
                "pearl arity does not match node " + topo_.node(node).name);
  shells_[node_index_[node]].pearl = std::move(pearl);
}

void System::bind_source(graph::NodeId node, SourceBehavior behavior) {
  LIPLIB_EXPECT(!finalized_, "bind after finalize");
  LIPLIB_EXPECT(node < topo_.nodes().size() &&
                    topo_.node(node).kind == graph::NodeKind::kSource,
                "bind_source target is not a source node");
  LIPLIB_EXPECT(behavior.value && behavior.ready,
                "source behavior has empty functions");
  sources_[node_index_[node]].behavior = std::move(behavior);
}

void System::bind_sink(graph::NodeId node, SinkBehavior behavior) {
  LIPLIB_EXPECT(!finalized_, "bind after finalize");
  LIPLIB_EXPECT(node < topo_.nodes().size() &&
                    topo_.node(node).kind == graph::NodeKind::kSink,
                "bind_sink target is not a sink node");
  LIPLIB_EXPECT(behavior.stop != nullptr, "sink behavior has empty stop");
  sinks_[node_index_[node]].behavior = std::move(behavior);
}

void System::finalize() {
  if (finalized_) return;
  for (auto& s : shells_) {
    LIPLIB_EXPECT(s.pearl != nullptr,
                  "process node " + topo_.node(s.node).name +
                      " has no pearl bound");
    if (opts_.input_queue_depth > 0) {
      s.in_q.resize(s.in_seg.size());
      for (auto& q : s.in_q) q.reserve(opts_.input_queue_depth);
    }
    // Shell output registers are initialized *valid* (paper footnote 1):
    // these tokens are what circulates in feedback loops at reset.
    for (std::size_t m = 0; m < s.out.size(); ++m) {
      s.out[m].load(Token::of(s.pearl->initial_output(m)));
    }
  }
  for (auto& s : sources_) {
    if (s.behavior.ready(0)) {
      s.port.load(Token::of(s.behavior.value(0)));
      s.emitted = 1;
    }
  }
  finalized_ = true;
}

void System::present_port(const OutPort& p) {
  for (std::size_t b = 0; b < p.branch.size(); ++b) {
    Seg& seg = segs_[p.branch[b]];
    seg.fwd = (p.pend >> b) & 1u ? Token::of(p.reg.data) : Token::make_void();
  }
}

void System::present_forward() {
  for (const auto& s : shells_) {
    for (const auto& port : s.out) present_port(port);
  }
  for (const auto& s : sources_) present_port(s.port);
  for (const auto& st : stations_) {
    segs_[st.out_seg].fwd = st.occ > 0 ? st.slot[0] : Token::make_void();
  }
}

bool System::shell_can_fire(const ShellState& s) const {
  if (opts_.input_queue_depth == 0) {
    for (SegId in : s.in_seg) {
      if (!segs_[in].fwd.valid) return false;
    }
  } else {
    for (const auto& q : s.in_q) {
      if (q.empty()) return false;
    }
  }
  for (const auto& port : s.out) {
    for (std::size_t b = 0; b < port.branch.size(); ++b) {
      const bool stopped = segs_[port.branch[b]].stop;
      if (strict()) {
        // Reference protocol: any stop blocks the shell, valid or not.
        if (stopped) return false;
      } else {
        // Paper variant: a stop only blocks if it holds a pending datum.
        if (stopped && ((port.pend >> b) & 1u)) return false;
      }
    }
  }
  return true;
}

void System::settle_stops() {
  const bool pessimistic = opts_.resolution == StopResolution::kPessimistic;

  // Every segment's stop has a unique writer — its consumer.  Roots
  // (sinks and full relay stations, whose stop is a register) are set
  // exactly; combinational writers (half relay stations, shells) start
  // at bottom (optimistic) or top (pessimistic) and iterate to the least
  // or greatest fixed point of the monotone stop network.  For acyclic
  // stop networks both fixed points coincide; they differ exactly when a
  // loop closes a combinational stop cycle through half relay stations —
  // the paper's potential-deadlock configuration.
  for (auto& seg : segs_) seg.stop = pessimistic;

  for (auto& s : sinks_) {
    s.stop_now = s.behavior.stop(cycle_);
    segs_[s.in_seg].stop = s.stop_now;
  }
  for (const auto& st : stations_) {
    if (st.kind == graph::RsKind::kFull) {
      // The full relay station's upstream stop is a register: it breaks
      // the backward combinational path.
      segs_[st.in_seg].stop = st.stop_reg;
    }
  }
  // Source-driven segments are never stopped by their own producer, and
  // segments consumed by stations/shells were pre-set above; nothing
  // else to clear: all remaining segments belong to half stations or
  // shell inputs, handled below.

  const std::size_t guard = 2 * segs_.size() + 4;
  std::size_t sweeps = 0;
  bool changed = true;
  while (changed) {
    LIPLIB_ENSURE(++sweeps <= guard, "stop fixpoint failed to converge");
    changed = false;
    for (const auto& st : stations_) {
      if (st.kind != graph::RsKind::kHalf) continue;
      const bool front_valid = st.occ > 0 && st.slot[0].valid;
      const bool s_eff = strict() ? segs_[st.out_seg].stop
                                  : (segs_[st.out_seg].stop && front_valid);
      const bool up = st.occ > 0 && s_eff;
      if (segs_[st.in_seg].stop != up) {
        segs_[st.in_seg].stop = up;
        changed = true;
      }
    }
    for (const auto& s : shells_) {
      const bool stalled = !shell_can_fire(s);
      for (std::size_t i = 0; i < s.in_seg.size(); ++i) {
        const SegId in = s.in_seg[i];
        bool up;
        if (opts_.input_queue_depth == 0) {
          // Back pressure of the simplified shell: a stalled shell stops
          // the producers of its *valid* inputs (a void needs no holding
          // — shells discard voids under both policies; what "stops
          // regardless of validity" means for the strict protocol is
          // relay-station freezing and shell output blocking, not stop
          // generation on voids).
          up = stalled && segs_[in].fwd.valid;
        } else {
          // Carloni-style buffered shell: back pressure only when the
          // input FIFO is full and will not drain this cycle.
          up = s.in_q[i].size() >= opts_.input_queue_depth && stalled;
        }
        if (segs_[in].stop != up) {
          segs_[in].stop = up;
          changed = true;
        }
      }
    }
  }
}

void System::check_hold_invariant() {
  for (auto& seg : segs_) {
    if (seg.has_prev && seg.prev_stop && seg.prev_fwd.valid) {
      if (!(seg.fwd == seg.prev_fwd)) {
        throw ProtocolError(
            "hold-on-stop violated at cycle " + std::to_string(cycle_) +
            ": stopped datum " + seg.prev_fwd.str() + " became " +
            seg.fwd.str());
      }
    }
  }
  for (auto& seg : segs_) {
    seg.prev_fwd = seg.fwd;
    seg.prev_stop = seg.stop;
    seg.has_prev = true;
  }
}

void System::clock_edge() {
  // Shells: consume delivered outputs, then fire if possible.
  for (auto& s : shells_) {
    const bool fire = shell_can_fire(s);
    bool missing_input = false;
    for (SegId in : s.in_seg) {
      if (!segs_[in].fwd.valid) missing_input = true;
    }
    for (auto& port : s.out) {
      for (std::size_t b = 0; b < port.branch.size(); ++b) {
        if (((port.pend >> b) & 1u) && !segs_[port.branch[b]].stop) {
          port.pend &= ~(1u << b);  // consumer took the datum this cycle
        }
      }
    }
    if (fire) {
      if (opts_.input_queue_depth == 0) {
        for (std::size_t i = 0; i < s.in_seg.size(); ++i) {
          s.in_scratch[i] = segs_[s.in_seg[i]].fwd.data;
        }
      } else {
        for (std::size_t i = 0; i < s.in_q.size(); ++i) {
          s.in_scratch[i] = s.in_q[i].front();
          s.in_q[i].erase(s.in_q[i].begin());
        }
      }
      s.pearl->step(s.in_scratch, s.out_scratch);
      for (std::size_t m = 0; m < s.out.size(); ++m) {
        LIPLIB_ENSURE(s.out[m].pend == 0,
                      "shell fired with undelivered output pending");
        s.out[m].load(Token::of(s.out_scratch[m]));
      }
      ++s.fires;
      s.activity = ShellActivity::kFired;
    } else {
      if (opts_.input_queue_depth > 0) {
        missing_input = false;
        for (const auto& q : s.in_q) {
          if (q.empty()) missing_input = true;
        }
      }
      s.activity = missing_input ? ShellActivity::kWaitingInput
                                 : ShellActivity::kStoppedOutput;
    }
    // Buffered shells: absorb arriving valid tokens their stop admitted.
    if (opts_.input_queue_depth > 0) {
      for (std::size_t i = 0; i < s.in_seg.size(); ++i) {
        const Seg& seg = segs_[s.in_seg[i]];
        if (seg.fwd.valid && !seg.stop) {
          LIPLIB_ENSURE(s.in_q[i].size() < opts_.input_queue_depth,
                        "shell input queue overflow");
          s.in_q[i].push_back(seg.fwd.data);
        }
      }
    }
  }

  // Relay stations.
  for (auto& st : stations_) {
    const Token in = segs_[st.in_seg].fwd;
    const bool front_valid = st.occ > 0 && st.slot[0].valid;
    const bool s_eff = strict() ? segs_[st.out_seg].stop
                                : (segs_[st.out_seg].stop && front_valid);
    const bool consumed = st.occ > 0 && !s_eff;
    if (st.kind == graph::RsKind::kFull) {
      const bool accept = !st.stop_reg && (strict() || in.valid);
      if (consumed) {
        st.slot[0] = st.slot[1];
        --st.occ;
      }
      if (accept) {
        LIPLIB_ENSURE(st.occ < 2, "full relay station overflow");
        st.slot[st.occ] = in;
        ++st.occ;
      }
      st.stop_reg = (st.occ == 2);
    } else {
      const bool stop_up = st.occ > 0 && s_eff;  // what settle asserted
      const bool accept = !stop_up && (strict() || in.valid);
      if (consumed) st.occ = 0;
      if (accept) {
        LIPLIB_ENSURE(st.occ == 0, "half relay station overflow");
        st.slot[0] = in;
        st.occ = 1;
      }
    }
  }

  // Sources: free delivered branches, then offer the next datum.
  for (auto& s : sources_) {
    for (std::size_t b = 0; b < s.port.branch.size(); ++b) {
      if (((s.port.pend >> b) & 1u) && !segs_[s.port.branch[b]].stop) {
        s.port.pend &= ~(1u << b);
      }
    }
    if (!s.port.busy() && s.behavior.ready(cycle_ + 1)) {
      s.port.load(Token::of(s.behavior.value(s.emitted)));
      ++s.emitted;
    }
  }

  // Sinks.
  for (auto& s : sinks_) {
    const Token f = segs_[s.in_seg].fwd;
    if (trace_sinks_) s.cycle_trace.push_back(f);
    if (f.valid && !s.stop_now) {
      s.stream.push_back(f);
      ++s.count;
    }
  }

  ++cycle_;
}

void System::saturate_stations(std::uint64_t datum) {
  finalize();
  for (auto& st : stations_) {
    if (st.occ == 0) st.occ = 1;
    st.slot[0] = Token::of(datum);
  }
}

System::~System() = default;

void System::attach_vcd(std::ostream& os) {
  LIPLIB_EXPECT(cycle_ == 0, "attach_vcd after stepping");
  LIPLIB_EXPECT(vcd_ == nullptr, "attach_vcd called twice");
  vcd_ = std::make_unique<detail::VcdTap>(os);
  for (graph::ChannelId c = 0; c < topo_.channels().size(); ++c) {
    const auto& ch = topo_.channel(c);
    const std::string base = topo_.node(ch.from.node).name + "_to_" +
                             topo_.node(ch.to.node).name;
    for (std::size_t h = 0; h < channel_segs_[c].size(); ++h) {
      const std::string hop = base + "_h" + std::to_string(h);
      vcd_->valid_id.push_back(vcd_->writer.add_signal(hop + "_valid", 1));
      vcd_->data_id.push_back(vcd_->writer.add_signal(hop + "_data", 32));
      vcd_->stop_id.push_back(vcd_->writer.add_signal(hop + "_stop", 1));
    }
  }
  vcd_->writer.begin_dump();
}

void System::attach_probe(probe::Probe& probe) {
  LIPLIB_EXPECT(cycle_ == 0, "attach_probe after stepping");
  LIPLIB_EXPECT(probe_ == nullptr, "attach_probe called twice");
  LIPLIB_EXPECT(!probe.bound(), "probe is already bound to a simulator");
  LIPLIB_EXPECT(opts_.input_queue_depth == 0,
                "probe requires the paper's simplified shell "
                "(input_queue_depth == 0)");

  probe::Wiring w;
  w.strict = strict();
  w.segments.resize(segs_.size());
  w.stations.resize(stations_.size());
  for (graph::ChannelId c = 0; c < topo_.channels().size(); ++c) {
    const auto& ch = topo_.channel(c);
    const auto& ids = channel_segs_[c];
    const std::size_t n_st = ch.num_stations();
    for (std::size_t h = 0; h < ids.size(); ++h) {
      probe::Wiring::Segment& seg = w.segments[ids[h]];
      seg.channel = c;
      seg.hop = h;
      if (h == 0) {
        const auto& from = topo_.node(ch.from.node);
        seg.producer.kind = from.kind == graph::NodeKind::kProcess
                                ? probe::UnitKind::kShell
                                : probe::UnitKind::kSource;
        seg.producer.index = node_index_[ch.from.node];
      } else {
        seg.producer.kind = probe::UnitKind::kStation;
        seg.producer.index = channel_stations_[c][h - 1];
      }
      if (h < n_st) {
        seg.consumer.kind = probe::UnitKind::kStation;
        seg.consumer.index = channel_stations_[c][h];
      } else {
        const auto& to = topo_.node(ch.to.node);
        seg.consumer.kind = to.kind == graph::NodeKind::kProcess
                                ? probe::UnitKind::kShell
                                : probe::UnitKind::kSink;
        seg.consumer.index = node_index_[ch.to.node];
      }
    }
    for (std::size_t k = 0; k < n_st; ++k) {
      const std::size_t idx = channel_stations_[c][k];
      probe::Wiring::Station& st = w.stations[idx];
      st.channel = c;
      st.index = k;
      st.full = stations_[idx].kind == graph::RsKind::kFull;
      st.in_seg = stations_[idx].in_seg;
      st.out_seg = stations_[idx].out_seg;
    }
  }
  for (const auto& s : shells_) {
    probe::Wiring::Shell sh;
    sh.node = s.node;
    sh.in_segs = s.in_seg;
    for (const auto& port : s.out) {
      sh.out_segs.insert(sh.out_segs.end(), port.branch.begin(),
                         port.branch.end());
    }
    w.shells.push_back(std::move(sh));
  }
  for (const auto& s : sources_) w.sources.push_back({s.node});
  for (const auto& s : sinks_) w.sinks.push_back({s.node});

  probe.bind(topo_, std::move(w));
  probe_ = &probe;
}

void System::observe_probe() {
  std::uint8_t* valid = probe_->valid_scratch();
  std::uint8_t* stop = probe_->stop_scratch();
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    valid[i] = segs_[i].fwd.valid ? 1 : 0;
    stop[i] = segs_[i].stop ? 1 : 0;
  }
  probe::Activity* act = probe_->activity_scratch();
  for (std::size_t k = 0; k < shells_.size(); ++k) {
    const ShellState& s = shells_[k];
    if (shell_can_fire(s)) {
      act[k] = probe::Activity::kFired;
    } else {
      bool missing = false;
      for (SegId in : s.in_seg) {
        if (!segs_[in].fwd.valid) {
          missing = true;
          break;
        }
      }
      act[k] = missing ? probe::Activity::kWaitingInput
                       : probe::Activity::kStoppedOutput;
    }
  }
  probe_->commit_cycle(cycle_);
}

void System::collect_stats_and_vcd() {
  if (record_stats_) {
    for (auto& seg : segs_) {
      auto& st = seg.stats;
      ++st.cycles;
      if (seg.fwd.valid) {
        ++st.valid_cycles;
      } else {
        ++st.void_cycles;
      }
      if (seg.stop) {
        ++st.stop_cycles;
        if (seg.fwd.valid) {
          ++st.stop_on_valid;
        } else {
          ++st.stop_on_void;
        }
      }
    }
  }
  if (vcd_) {
    vcd_->writer.set_time(cycle_);
    // Signal ids were pushed channel by channel in segment order, which
    // is exactly the order channel_segs_ enumerates the segments.
    std::size_t k = 0;
    for (const auto& segs_of_channel : channel_segs_) {
      for (SegId id : segs_of_channel) {
        const Seg& seg = segs_[id];
        vcd_->writer.change(vcd_->valid_id[k], seg.fwd.valid ? 1 : 0);
        vcd_->writer.change(vcd_->data_id[k], seg.fwd.data);
        vcd_->writer.change(vcd_->stop_id[k], seg.stop ? 1 : 0);
        ++k;
      }
    }
  }
}

std::vector<SegmentStats> System::segment_stats(graph::ChannelId c) const {
  LIPLIB_EXPECT(c < channel_segs_.size(), "channel id out of range");
  std::vector<SegmentStats> out;
  for (SegId id : channel_segs_[c]) out.push_back(segs_[id].stats);
  return out;
}

void System::step() {
  finalize();
  present_forward();
  settle_stops();
  if (opts_.hold_monitor) check_hold_invariant();
  if (record_stats_ || vcd_) collect_stats_and_vcd();
  if (probe_) observe_probe();
  clock_edge();
}

std::vector<SegmentView> System::channel_view(graph::ChannelId c) const {
  LIPLIB_EXPECT(c < channel_segs_.size(), "channel id out of range");
  std::vector<SegmentView> out;
  for (SegId id : channel_segs_[c]) {
    out.push_back({segs_[id].fwd, segs_[id].stop});
  }
  return out;
}

std::vector<std::vector<Token>> System::station_contents(
    graph::ChannelId c) const {
  LIPLIB_EXPECT(c < channel_stations_.size(), "channel id out of range");
  std::vector<std::vector<Token>> out;
  for (std::size_t idx : channel_stations_[c]) {
    const Station& st = stations_[idx];
    std::vector<Token> slots;
    for (unsigned i = 0; i < st.occ; ++i) slots.push_back(st.slot[i]);
    out.push_back(std::move(slots));
  }
  return out;
}

const System::ShellState& System::shell_of(graph::NodeId id) const {
  LIPLIB_EXPECT(id < node_index_.size() &&
                    topo_.node(id).kind == graph::NodeKind::kProcess,
                "node is not a process");
  return shells_[node_index_[id]];
}

const System::SinkState& System::sink_of(graph::NodeId id) const {
  LIPLIB_EXPECT(id < node_index_.size() &&
                    topo_.node(id).kind == graph::NodeKind::kSink,
                "node is not a sink");
  return sinks_[node_index_[id]];
}

const std::vector<Token>& System::sink_stream(graph::NodeId sink) const {
  return sink_of(sink).stream;
}

const std::vector<Token>& System::sink_cycle_trace(graph::NodeId sink) const {
  return sink_of(sink).cycle_trace;
}

std::uint64_t System::sink_count(graph::NodeId sink) const {
  return sink_of(sink).count;
}

std::uint64_t System::shell_fire_count(graph::NodeId shell) const {
  return shell_of(shell).fires;
}

ShellActivity System::shell_activity(graph::NodeId shell) const {
  return shell_of(shell).activity;
}

std::string System::protocol_state() const {
  std::string s;
  s.reserve(shells_.size() * 4 + sources_.size() + stations_.size() * 3);
  for (const auto& sh : shells_) {
    for (const auto& port : sh.out) {
      s.push_back(static_cast<char>(port.pend & 0xff));
      s.push_back(static_cast<char>((port.pend >> 8) & 0xff));
      s.push_back(static_cast<char>((port.pend >> 16) & 0xff));
      s.push_back(static_cast<char>((port.pend >> 24) & 0xff));
    }
    for (const auto& q : sh.in_q) {
      s.push_back(static_cast<char>(q.size() & 0xff));
    }
  }
  for (const auto& src : sources_) {
    s.push_back(static_cast<char>(src.port.pend & 0xff));
  }
  for (const auto& st : stations_) {
    s.push_back(static_cast<char>(st.occ));
    char flags = 0;
    if (st.occ > 0 && st.slot[0].valid) flags |= 1;
    if (st.occ > 1 && st.slot[1].valid) flags |= 2;
    if (st.stop_reg) flags |= 4;
    s.push_back(flags);
  }
  return s;
}

std::uint64_t System::total_fires() const {
  std::uint64_t n = 0;
  for (const auto& s : shells_) n += s.fires;
  return n;
}

std::uint64_t System::total_consumed() const {
  std::uint64_t n = 0;
  for (const auto& s : sinks_) n += s.count;
  return n;
}

}  // namespace liplib::lip
