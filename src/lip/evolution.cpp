#include "liplib/lip/evolution.hpp"

#include <sstream>

namespace liplib::lip {

namespace {

char activity_mark(ShellActivity a) {
  switch (a) {
    case ShellActivity::kFired:
      return '*';
    case ShellActivity::kWaitingInput:
      return '.';
    case ShellActivity::kStoppedOutput:
      return '!';
  }
  return '?';
}

}  // namespace

liplib::Table trace_evolution(System& sys, std::uint64_t cycles) {
  const auto& topo = sys.topology();

  // Column plan: cycle | per node | per station.
  std::vector<std::string> header{"cyc"};
  struct NodeCol {
    graph::NodeId node;
    graph::NodeKind kind;
    graph::ChannelId probe_channel;  // whose seg 0 / last seg we show
  };
  std::vector<NodeCol> node_cols;
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    const auto& node = topo.node(v);
    NodeCol col{v, node.kind, 0};
    if (node.kind == graph::NodeKind::kSink) {
      const auto c = topo.channel_into({v, 0});
      LIPLIB_ENSURE(c.has_value(), "sink undriven");
      col.probe_channel = *c;
    } else {
      const auto cs = topo.channels_of({v, 0});
      LIPLIB_ENSURE(!cs.empty(), "node output undriven");
      col.probe_channel = cs.front();
    }
    header.push_back(node.name);
    node_cols.push_back(col);
  }
  struct StationCol {
    graph::ChannelId channel;
    std::size_t index;  // position of the station on the channel
  };
  std::vector<StationCol> station_cols;
  for (graph::ChannelId c = 0; c < topo.channels().size(); ++c) {
    const auto& ch = topo.channel(c);
    for (std::size_t k = 0; k < ch.num_stations(); ++k) {
      std::ostringstream name;
      name << topo.node(ch.from.node).name << ">"
           << topo.node(ch.to.node).name << "#" << k;
      header.push_back(name.str());
      station_cols.push_back({c, k});
    }
  }

  liplib::Table table(header);
  for (std::uint64_t i = 0; i < cycles; ++i) {
    sys.step();
    std::vector<std::string> row{std::to_string(sys.cycle() - 1)};
    for (const auto& col : node_cols) {
      const auto view = sys.channel_view(col.probe_channel);
      std::string cell;
      if (col.kind == graph::NodeKind::kSink) {
        cell = view.back().fwd.str();
      } else {
        cell = view.front().fwd.str();
        if (col.kind == graph::NodeKind::kProcess) {
          cell += activity_mark(sys.shell_activity(col.node));
        }
      }
      row.push_back(cell);
    }
    for (const auto& col : station_cols) {
      const auto view = sys.channel_view(col.channel);
      // Segment index col.index + 1 is the station's downstream hop;
      // its stop flag on the *upstream* hop (col.index) marks the
      // station's back pressure toward the producer.
      std::string cell = view[col.index + 1].fwd.str();
      if (view[col.index].stop) cell += '!';
      row.push_back(cell);
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::string render_evolution(System& sys, std::uint64_t cycles) {
  std::ostringstream os;
  trace_evolution(sys, cycles).print(os);
  return os.str();
}

}  // namespace liplib::lip
