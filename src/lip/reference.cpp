#include "liplib/lip/reference.hpp"

namespace liplib::lip {

namespace {
constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
}

ReferenceExecutor::ReferenceExecutor(const graph::Topology& topo)
    : topo_(topo) {
  node_index_.assign(topo_.nodes().size(), kNoIndex);
  for (graph::NodeId v = 0; v < topo_.nodes().size(); ++v) {
    switch (topo_.node(v).kind) {
      case graph::NodeKind::kProcess: {
        Proc p;
        p.node = v;
        node_index_[v] = procs_.size();
        procs_.push_back(std::move(p));
        break;
      }
      case graph::NodeKind::kSource: {
        node_index_[v] = srcs_.size();
        srcs_.push_back({v, [](std::uint64_t k) { return k; }});
        break;
      }
      case graph::NodeKind::kSink: {
        node_index_[v] = snks_.size();
        snks_.push_back({v, {}});
        break;
      }
    }
  }
}

void ReferenceExecutor::bind_pearl(graph::NodeId node,
                                   std::unique_ptr<Pearl> pearl) {
  LIPLIB_EXPECT(node < topo_.nodes().size() &&
                    topo_.node(node).kind == graph::NodeKind::kProcess,
                "bind_pearl target is not a process node");
  LIPLIB_EXPECT(pearl != nullptr, "null pearl");
  LIPLIB_EXPECT(pearl->num_inputs() == topo_.node(node).num_inputs &&
                    pearl->num_outputs() == topo_.node(node).num_outputs,
                "pearl arity does not match node");
  Proc& p = procs_[node_index_[node]];
  p.pearl = std::move(pearl);
  p.regs.resize(p.pearl->num_outputs());
  p.next_regs.resize(p.pearl->num_outputs());
  p.in_scratch.resize(p.pearl->num_inputs());
  for (std::size_t m = 0; m < p.regs.size(); ++m) {
    p.regs[m] = p.pearl->initial_output(m);
  }
}

void ReferenceExecutor::bind_source_values(
    graph::NodeId node, std::function<std::uint64_t(std::uint64_t)> value) {
  LIPLIB_EXPECT(node < topo_.nodes().size() &&
                    topo_.node(node).kind == graph::NodeKind::kSource,
                "bind_source_values target is not a source node");
  LIPLIB_EXPECT(value != nullptr, "empty source value function");
  srcs_[node_index_[node]].value = std::move(value);
}

std::uint64_t ReferenceExecutor::wire_value(const graph::OutRef& from) const {
  const auto& n = topo_.node(from.node);
  if (n.kind == graph::NodeKind::kProcess) {
    return procs_[node_index_[from.node]].regs[from.port];
  }
  LIPLIB_ENSURE(n.kind == graph::NodeKind::kSource, "sink cannot drive");
  return srcs_[node_index_[from.node]].value(cycle_);
}

void ReferenceExecutor::run(std::uint64_t cycles) {
  if (!checked_) {
    for (const auto& p : procs_) {
      LIPLIB_EXPECT(p.pearl != nullptr,
                    "process node " + topo_.node(p.node).name +
                        " has no pearl bound in the reference executor");
    }
    checked_ = true;
  }
  for (std::uint64_t i = 0; i < cycles; ++i) {
    // Observe: every sink records what its input wire carries this cycle.
    for (auto& s : snks_) {
      const auto c = topo_.channel_into({s.node, 0});
      LIPLIB_ENSURE(c.has_value(), "sink input not driven");
      s.stream.push_back(wire_value(topo_.channel(*c).from));
    }
    // Fire: every pearl steps simultaneously on the current wire values.
    for (auto& p : procs_) {
      for (std::size_t port = 0; port < p.in_scratch.size(); ++port) {
        const auto c = topo_.channel_into({p.node, port});
        LIPLIB_ENSURE(c.has_value(), "process input not driven");
        p.in_scratch[port] = wire_value(topo_.channel(*c).from);
      }
      p.pearl->step(p.in_scratch, p.next_regs);
    }
    for (auto& p : procs_) p.regs = p.next_regs;
    ++cycle_;
  }
}

const std::vector<std::uint64_t>& ReferenceExecutor::sink_stream(
    graph::NodeId sink) const {
  LIPLIB_EXPECT(sink < topo_.nodes().size() &&
                    topo_.node(sink).kind == graph::NodeKind::kSink,
                "node is not a sink");
  return snks_[node_index_[sink]].stream;
}

}  // namespace liplib::lip
