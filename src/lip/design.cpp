#include "liplib/lip/design.hpp"

#include <sstream>

namespace liplib::lip {

EquivalenceReport check_latency_equivalence(const Design& design,
                                            System::Options opts,
                                            std::uint64_t lid_cycles) {
  auto lid = design.instantiate(opts);
  lid->run(lid_cycles);

  // The reference produces one datum per sink per cycle, so running it for
  // lid_cycles is always enough to cover every LID stream.
  auto ref = design.instantiate_reference();
  ref->run(lid_cycles);

  EquivalenceReport report;
  report.ok = true;
  const auto& topo = design.topology();
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    if (topo.node(v).kind != graph::NodeKind::kSink) continue;
    const auto& lid_stream = lid->sink_stream(v);
    const auto& ref_stream = ref->sink_stream(v);
    LIPLIB_ENSURE(lid_stream.size() <= ref_stream.size(),
                  "LID produced more tokens than the reference");
    for (std::size_t i = 0; i < lid_stream.size(); ++i) {
      ++report.tokens_checked;
      if (lid_stream[i].data != ref_stream[i]) {
        std::ostringstream os;
        os << "sink " << topo.node(v).name << " token " << i << ": LID="
           << lid_stream[i].data << " reference=" << ref_stream[i];
        report.ok = false;
        report.detail = os.str();
        return report;
      }
    }
  }
  return report;
}

}  // namespace liplib::lip
