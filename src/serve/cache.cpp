#include "liplib/serve/cache.hpp"

#include <chrono>
#include <utility>

#include "liplib/graph/netlist_io.hpp"

namespace liplib::serve {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t topology_hash(const graph::Topology& topo) {
  return fnv1a64(graph::write_netlist(topo));
}

namespace {

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t entry_bytes(const std::string& key, const std::string& value) {
  return key.size() + value.size();
}

}  // namespace

ResultCache::ResultCache(CacheOptions opts,
                         std::function<std::uint64_t()> now_ms)
    : opts_(opts), now_ms_(now_ms ? std::move(now_ms) : steady_now_ms) {}

void ResultCache::erase_locked(LruList::iterator it) {
  bytes_ -= entry_bytes(it->key, it->value);
  index_.erase(std::string_view(it->key));
  lru_.erase(it);
}

std::optional<std::string> ResultCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto found = index_.find(std::string_view(key));
  if (found == index_.end()) {
    misses_.add();
    return std::nullopt;
  }
  const auto it = found->second;
  if (it->expires_ms != 0 && now_ms_() >= it->expires_ms) {
    erase_locked(it);
    expirations_.add();
    misses_.add();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it);  // refresh recency
  hits_.add();
  return it->value;
}

std::size_t ResultCache::insert(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto found = index_.find(std::string_view(key));
  if (found != index_.end()) erase_locked(found->second);

  Entry e;
  e.key = key;
  e.value = std::move(value);
  e.expires_ms = opts_.ttl_ms == 0 ? 0 : now_ms_() + opts_.ttl_ms;
  bytes_ += entry_bytes(e.key, e.value);
  lru_.push_front(std::move(e));
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
  insertions_.add();

  // Evict from the cold end; the entry just inserted is at the hot end
  // and survives unless it alone exceeds the whole budget.
  std::size_t evicted = 0;
  while (bytes_ > opts_.capacity_bytes && lru_.size() > 1) {
    erase_locked(std::prev(lru_.end()));
    evictions_.add();
    ++evicted;
  }
  return evicted;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.insertions = insertions_.value();
  s.evictions = evictions_.value();
  s.expirations = expirations_.value();
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

Json ResultCache::stats_json() const {
  const CacheStats s = stats();
  return Json::object()
      .set("hits", s.hits)
      .set("misses", s.misses)
      .set("insertions", s.insertions)
      .set("evictions", s.evictions)
      .set("expirations", s.expirations)
      .set("entries", static_cast<std::uint64_t>(s.entries))
      .set("bytes", static_cast<std::uint64_t>(s.bytes))
      .set("capacity_bytes", static_cast<std::uint64_t>(opts_.capacity_bytes))
      .set("ttl_ms", opts_.ttl_ms);
}

}  // namespace liplib::serve
