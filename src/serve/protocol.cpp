#include "liplib/serve/protocol.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "liplib/prove/prove.hpp"
#include "liplib/support/check.hpp"

namespace liplib::serve {

namespace {

/// recv that retries EINTR; returns 0 on EOF, throws on error.
std::size_t recv_some(int fd, char* buf, std::size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got >= 0) return static_cast<std::size_t>(got);
    if (errno == EINTR) continue;
    throw ApiError(std::string("recv failed: ") + std::strerror(errno));
  }
}

/// Reads exactly n bytes.  Returns the number actually read (short only
/// at EOF).
std::size_t recv_exact(int fd, char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const std::size_t got = recv_some(fd, buf + off, n - off);
    if (got == 0) break;
    off += got;
  }
  return off;
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  LIPLIB_EXPECT(payload.size() <= 0xffffffffull,
                "frame payload exceeds the 32-bit length field");
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out.append(payload);
  return out;
}

bool read_frame(int fd, std::string& payload, const FrameLimits& limits) {
  char hdr[4];
  const std::size_t got = recv_exact(fd, hdr, 4);
  if (got == 0) return false;  // clean EOF between frames
  if (got < 4) {
    throw ApiError("truncated frame: EOF inside the 4-byte length prefix");
  }
  const std::uint32_t n = (static_cast<std::uint32_t>(
                               static_cast<unsigned char>(hdr[0]))
                           << 24) |
                          (static_cast<std::uint32_t>(
                               static_cast<unsigned char>(hdr[1]))
                           << 16) |
                          (static_cast<std::uint32_t>(
                               static_cast<unsigned char>(hdr[2]))
                           << 8) |
                          static_cast<std::uint32_t>(
                              static_cast<unsigned char>(hdr[3]));
  if (n > limits.max_frame_bytes) {
    throw ApiError("frame length " + std::to_string(n) +
                   " exceeds the limit of " +
                   std::to_string(limits.max_frame_bytes) + " bytes");
  }
  payload.resize(n);
  const std::size_t body = n == 0 ? 0 : recv_exact(fd, payload.data(), n);
  if (body < n) {
    throw ApiError("truncated frame: expected " + std::to_string(n) +
                   " payload bytes, got " + std::to_string(body));
  }
  return true;
}

void write_frame(int fd, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a fatal signal.
    const ssize_t put =
        ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      throw ApiError(std::string("send failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(put);
  }
}

const char* request_kind_name(RequestKind k) {
  switch (k) {
    case RequestKind::kLint: return "lint";
    case RequestKind::kScreen: return "screen";
    case RequestKind::kProfile: return "profile";
    case RequestKind::kCampaign: return "campaign";
    case RequestKind::kProve: return "prove";
    case RequestKind::kStatus: return "status";
    case RequestKind::kShutdown: return "shutdown";
    case RequestKind::kDistStatus: return "dist-status";
    case RequestKind::kMetrics: return "metrics";
    case RequestKind::kTrace: return "trace";
  }
  return "unknown";
}

namespace {

std::uint64_t uint_field(const Json& doc, const char* key,
                         std::uint64_t fallback) {
  const Json* f = doc.find(key);
  if (!f) return fallback;
  if (!f->is_number()) {
    throw ApiError(std::string("field '") + key +
                   "' must be an unsigned integer");
  }
  return f->as_uint();
}

std::string string_field(const Json& doc, const char* key,
                         const std::string& fallback) {
  const Json* f = doc.find(key);
  if (!f) return fallback;
  if (!f->is_string()) {
    throw ApiError(std::string("field '") + key + "' must be a string");
  }
  return f->as_string();
}

}  // namespace

Request parse_request(const Json& doc) {
  if (!doc.is_object()) throw ApiError("request must be a JSON object");
  const std::string rpc = string_field(doc, "rpc", "");
  if (rpc != kRpcSchema) {
    throw ApiError("missing or unsupported rpc schema (expected \"" +
                   std::string(kRpcSchema) + "\")");
  }
  Request req;
  if (const Json* id = doc.find("id")) req.id = *id;

  const std::string kind = string_field(doc, "kind", "");
  if (kind == "lint") req.kind = RequestKind::kLint;
  else if (kind == "screen") req.kind = RequestKind::kScreen;
  else if (kind == "profile") req.kind = RequestKind::kProfile;
  else if (kind == "campaign") req.kind = RequestKind::kCampaign;
  else if (kind == "prove") req.kind = RequestKind::kProve;
  else if (kind == "status") req.kind = RequestKind::kStatus;
  else if (kind == "shutdown") req.kind = RequestKind::kShutdown;
  else if (kind == "dist-status") req.kind = RequestKind::kDistStatus;
  else if (kind == "metrics") req.kind = RequestKind::kMetrics;
  else if (kind == "trace") req.kind = RequestKind::kTrace;
  else throw ApiError("unknown request kind '" + kind + "'");

  // The optional trace envelope: malformed contexts are protocol errors
  // (from_json throws ApiError), absent ones leave tracing off.
  req.trace = trace::TraceContext::from_envelope(doc);

  req.policy = string_field(doc, "policy", "variant");
  if (req.policy != "variant" && req.policy != "strict") {
    throw ApiError("unknown policy '" + req.policy +
                   "' (expected variant | strict)");
  }
  req.engine = string_field(doc, "engine", "interp");
  if (req.engine != "interp" && req.engine != "compiled" &&
      req.engine != "sliced") {
    throw ApiError("unknown engine '" + req.engine +
                   "' (expected interp | compiled | sliced)");
  }
  req.budget = uint_field(doc, "budget", 0);
  req.cycles = uint_field(doc, "cycles", 0);

  switch (req.kind) {
    case RequestKind::kLint:
    case RequestKind::kScreen:
    case RequestKind::kProfile:
    case RequestKind::kProve: {
      req.netlist = string_field(doc, "netlist", "");
      if (req.netlist.empty()) {
        throw ApiError(std::string(request_kind_name(req.kind)) +
                       " request requires a non-empty 'netlist' field");
      }
      if (req.kind == RequestKind::kProve) {
        req.method = string_field(doc, "method", "auto");
        prove::Method m;
        if (!prove::parse_method(req.method, &m)) {
          throw ApiError("unknown prove method '" + req.method +
                         "' (expected auto | reach | bmc | induction)");
        }
        req.depth = uint_field(doc, "depth", 0);
        if (const Json* f = doc.find("worst_case")) {
          if (!f->is_bool()) {
            throw ApiError("field 'worst_case' must be a boolean");
          }
          req.worst_case = f->as_bool();
        }
      }
      break;
    }
    case RequestKind::kCampaign: {
      req.mode = string_field(doc, "mode", "fuzz");
      if (req.mode != "fuzz" && req.mode != "lint" && req.mode != "probe" &&
          req.mode != "prove") {
        throw ApiError("unknown campaign mode '" + req.mode +
                       "' (expected fuzz | lint | probe | prove)");
      }
      req.jobs = uint_field(doc, "jobs", 0);
      if (req.jobs < 1 || req.jobs > 1000000) {
        throw ApiError("campaign 'jobs' must be in [1, 1000000]");
      }
      req.seed = uint_field(doc, "seed", 1);
      break;
    }
    case RequestKind::kDistStatus: {
      req.port = uint_field(doc, "port", 0);
      if (req.port < 1 || req.port > 65535) {
        throw ApiError("dist-status 'port' must be in [1, 65535]");
      }
      break;
    }
    case RequestKind::kStatus:
    case RequestKind::kShutdown:
    case RequestKind::kMetrics:
    case RequestKind::kTrace:
      break;
  }
  return req;
}

std::string error_envelope(const Json& id, const std::string& message) {
  return Json::object()
      .set("rpc", kRpcSchema)
      .set("id", id)
      .set("ok", false)
      .set("error", message)
      .dump();
}

std::string success_envelope(const Json& id, RequestKind kind, bool cached,
                             const std::string& result_bytes) {
  // The prefix is rendered through Json so id/string escaping matches the
  // rest of the dialect; the result document is spliced as-is, which is
  // the byte-identity guarantee for cache hits.
  std::string head = Json::object()
                         .set("rpc", kRpcSchema)
                         .set("id", id)
                         .set("kind", request_kind_name(kind))
                         .set("ok", true)
                         .set("cached", cached)
                         .dump();
  head.pop_back();  // trailing '}'
  head += ",\"result\":";
  head += result_bytes;
  head += '}';
  return head;
}

}  // namespace liplib::serve
