// Request dispatch of the serve daemon: parse + validate, consult the
// content-addressed cache, compute on miss, wrap in the envelope.  Pure
// protocol — no sockets — so the whole layer is unit-testable and the
// byte-identity of cached vs fresh responses is a property of this file
// alone.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <utility>

#include "liplib/campaign/campaign.hpp"
#include "liplib/campaign/jobs.hpp"
#include "liplib/campaign/report.hpp"
#include "liplib/graph/netlist_io.hpp"
#include "liplib/lint/lint.hpp"
#include "liplib/pearls/design_io.hpp"
#include "liplib/prove/prove.hpp"
#include "liplib/serve/server.hpp"
#include "liplib/skeleton/skeleton.hpp"
#include "liplib/telemetry/watchdog.hpp"
#include "liplib/xir/xir.hpp"

namespace liplib::serve {

ServeContext::ServeContext(ServerOptions options,
                           std::function<std::uint64_t()> now_ms,
                           std::function<std::uint64_t()> now_us)
    : opts(options),
      cache(options.cache, std::move(now_ms)),
      recorder(std::move(now_us)) {
  registry.describe(
      "liplib_serve_request_latency_us", metrics::MetricType::kHistogram,
      "Request latency in microseconds by kind, engine and cache outcome.");
  registry.describe("liplib_serve_cache_bytes", metrics::MetricType::kGauge,
                    "Result cache occupancy in bytes.");
  registry.describe("liplib_serve_cache_entries", metrics::MetricType::kGauge,
                    "Result cache entry count.");
  registry.describe("liplib_serve_cache_evictions_total",
                    metrics::MetricType::kCounter,
                    "Result cache entries evicted by the LRU byte budget.");
}

Json ServeContext::status_json() {
  std::lock_guard<std::mutex> lock(mu);
  Json requests = Json::object();
  requests.set("total", requests_total.value());
  for (int k = 0; k < kRequestKindCount; ++k) {
    requests.set(request_kind_name(static_cast<RequestKind>(k)),
                 requests_by_kind[k].value());
  }
  requests.set("protocol_errors", protocol_errors.value())
      .set("request_errors", request_errors.value())
      .set("deadlock_verdicts", deadlock_verdicts.value());
  Json engines = Json::object();
  for (int e = 0; e < 3; ++e) {
    engines.set(xir::engine_mode_name(static_cast<xir::EngineMode>(e)),
                Json::object()
                    .set("hits", engine_hits[e].value())
                    .set("misses", engine_misses[e].value()));
  }
  const CacheStats cs = cache.stats();
  return Json::object()
      .set("schema", "liplib.serve.status/2")
      .set("draining", draining.load())
      .set("inflight", static_cast<std::int64_t>(inflight.value()))
      // Top-level eviction / occupancy mirrors of the cache block, so a
      // dashboard can alert on byte-budget pressure without digging into
      // the nested document (the /2 additions; every /1 field remains).
      .set("evictions", cs.evictions)
      .set("cache_bytes", static_cast<std::uint64_t>(cs.bytes))
      .set("requests", std::move(requests))
      .set("engines", std::move(engines))
      .set("cache", cache.stats_json())
      .set("config",
           Json::object()
               .set("threads", opts.threads)
               .set("max_connections", opts.max_connections)
               .set("max_frame_bytes",
                    static_cast<std::uint64_t>(opts.limits.max_frame_bytes))
               .set("default_budget", opts.default_budget)
               .set("max_budget", opts.max_budget)
               .set("default_profile_cycles", opts.default_profile_cycles));
}

namespace {

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

lip::StopPolicy policy_of(const Request& req) {
  return req.policy == "strict" ? lip::StopPolicy::kCarloniStrict
                                : lip::StopPolicy::kCasuDiscardOnVoid;
}

xir::EngineMode engine_of(const Request& req) {
  xir::EngineMode m = xir::EngineMode::kInterp;
  // parse_request already validated the name; the fallback never fires.
  xir::parse_engine_mode(req.engine, &m);
  return m;
}

/// Request budget clamped to the server's ceiling (tenants may ask for
/// less, never for more).
std::uint64_t effective_budget(const Request& req, const ServerOptions& o) {
  const std::uint64_t asked = req.budget == 0 ? o.default_budget : req.budget;
  return std::min(asked, o.max_budget);
}

std::uint64_t effective_cycles(const Request& req, const ServerOptions& o) {
  const std::uint64_t asked =
      req.cycles == 0 ? o.default_profile_cycles : req.cycles;
  return std::min(asked, o.max_budget);
}

/// Parsed design artifacts shared by key derivation and computation:
/// the canonical content hash covers the topology *and* the behavioural
/// annotations, so two texts that differ only in formatting or comments
/// collapse to one cache entry while a changed pearl spec does not.
struct ParsedDesign {
  graph::AnnotatedNetlist net;
  std::uint64_t content_hash = 0;
};

ParsedDesign parse_design_text(const std::string& netlist) {
  ParsedDesign d;
  d.net = graph::parse_netlist_annotated_string(netlist);
  std::uint64_t h = fnv1a64(graph::write_netlist(d.net.topo));
  for (const auto& a : d.net.node_annotation) {
    h = fnv1a64(a, h * 0x100000001b3ull + 1);
  }
  d.content_hash = h;
  return d;
}

/// Outcome of one computed (uncached) request.
struct Computed {
  std::string result;     ///< serialized result document
  bool deadlock = false;  ///< a watchdog verdict was answered
};

// ---- lint ---------------------------------------------------------------

Computed compute_lint(const ParsedDesign& d) {
  const auto report = lint::run_lint(d.net.topo);
  const int exit_code = report.exit_code();
  Json result = Json::object()
                    .set("schema", "liplib.serve.lint/1")
                    .set("topology_hash", hex64(topology_hash(d.net.topo)))
                    .set("verdict", exit_code == 0   ? "clean"
                                    : exit_code == 1 ? "warnings"
                                                     : "errors")
                    .set("report", report.to_json(d.net.topo));
  return {result.dump(), false};
}

// ---- screen -------------------------------------------------------------

/// One watchdog-guarded screening pass (reset or worst-case occupancy).
/// A deadlocked design yields a verdict object carrying the post-mortem
/// bundle instead of wedging the worker on a drained budget.  The
/// engine selects the evaluator; verdicts, cycle indices and the
/// post-mortem bundle are bit-identical across engines (the xir
/// engines replay the interpreter's probe wiring, so the watchdog sees
/// the same frames).  kSliced screens this single scenario through the
/// compiled guard and a one-lane sliced analysis.
Json screen_one(const graph::Topology& topo, bool worst_case,
                lip::StopPolicy policy, std::uint64_t budget,
                std::uint64_t threshold, xir::EngineMode engine,
                bool* deadlocked) {
  skeleton::SkeletonOptions sopts;
  sopts.policy = policy;
  {
    telemetry::WatchdogOptions wopts;
    wopts.no_progress_threshold = threshold;
    wopts.worst_case_occupancy = worst_case;
    telemetry::Watchdog dog(wopts);
    std::uint64_t guard_cycles = 0;
    if (engine == xir::EngineMode::kInterp) {
      skeleton::Skeleton guard(topo, sopts);
      if (worst_case) guard.saturate_stations();
      dog.attach(guard);
      guard_cycles = telemetry::run_guarded(guard, dog, budget).cycles;
    } else {
      // The watchdog rides the scalar engine for both compiled and
      // sliced requests; sliced lanes have no per-lane probe hook and
      // the guard verdict is engine-invariant anyway.
      xir::ScalarEngine guard(topo, sopts);
      if (worst_case) guard.saturate_stations();
      dog.attach(guard);
      guard_cycles = telemetry::run_guarded(guard, dog, budget).cycles;
    }
    if (dog.tripped()) {
      *deadlocked = true;
      return Json::object()
          .set("deadlock", true)
          .set("reason", telemetry::trip_reason_str(dog.reason()))
          .set("no_progress_since", dog.no_progress_since())
          .set("trip_cycle", dog.trip_cycle())
          .set("cycles", guard_cycles)
          .set("post_mortem", dog.post_mortem().to_json());
    }
  }
  // Guard passed: a fresh evaluator delivers the exact steady state.
  skeleton::SkeletonResult r;
  if (engine == xir::EngineMode::kInterp) {
    skeleton::Skeleton sk(topo, sopts);
    if (worst_case) sk.saturate_stations();
    r = sk.analyze(budget);
  } else {
    r = xir::analyze_with_engine(topo, sopts, budget, engine, worst_case)
            .result;
  }
  Json j = Json::object().set("deadlock", false).set("found", r.found);
  if (r.found) {
    j.set("transient", r.transient)
        .set("period", r.period)
        .set("throughput", r.system_throughput());
  }
  return j;
}

Computed compute_screen(const ParsedDesign& d, const Request& req,
                        const ServerOptions& opts) {
  const std::uint64_t budget = effective_budget(req, opts);
  const xir::EngineMode engine = engine_of(req);
  bool deadlocked = false;
  Json from_reset = screen_one(d.net.topo, /*worst_case=*/false,
                               policy_of(req), budget,
                               opts.watchdog_threshold, engine, &deadlocked);
  Json worst = screen_one(d.net.topo, /*worst_case=*/true, policy_of(req),
                          budget, opts.watchdog_threshold, engine,
                          &deadlocked);
  Json result = Json::object()
                    .set("schema", "liplib.serve.screen/1")
                    .set("topology_hash", hex64(topology_hash(d.net.topo)))
                    .set("policy", req.policy)
                    .set("engine", req.engine)
                    .set("budget", budget)
                    .set("verdict", deadlocked ? "deadlock" : "live")
                    .set("from_reset", std::move(from_reset))
                    .set("worst_case", std::move(worst));
  return {result.dump(), deadlocked};
}

// ---- profile ------------------------------------------------------------

Computed compute_profile(const Request& req, const ServerOptions& opts) {
  // Full-data probe-instrumented run; annotations select pearls and
  // environments, unannotated nodes get the documented defaults.
  auto design = pearls::parse_design_string(req.netlist);
  auto sys = design.instantiate();
  telemetry::WatchdogOptions wopts;
  wopts.no_progress_threshold = opts.watchdog_threshold;
  telemetry::Watchdog dog(wopts);
  dog.attach(*sys);
  const std::uint64_t cycles = effective_cycles(req, opts);
  const auto run = telemetry::run_guarded(*sys, dog, cycles);

  Json result = Json::object()
                    .set("schema", "liplib.serve.profile/1")
                    .set("topology_hash",
                         hex64(topology_hash(design.topology())))
                    .set("verdict", dog.tripped() ? "deadlock" : "live")
                    .set("cycles", run.cycles);
  if (dog.tripped()) {
    result.set("reason", telemetry::trip_reason_str(dog.reason()))
        .set("no_progress_since", dog.no_progress_since())
        .set("trip_cycle", dog.trip_cycle())
        .set("post_mortem", dog.post_mortem().to_json());
  }
  result.set("report", dog.probe().report().to_json());
  return {result.dump(), dog.tripped()};
}

// ---- prove --------------------------------------------------------------

/// Static proof via liplib::prove.  Purely deterministic in the request
/// knobs, so the result is ideal cache fodder: a fleet that keeps
/// re-proving the same design text is answered from memory.  The engine
/// field selects the frontier: interp = scalar reference search, sliced
/// (or compiled) = the 64-way bit-sliced frontier — verdicts are
/// identical, so like screen requests the engine is a performance knob
/// that still keys the cache separately.
Computed compute_prove(const ParsedDesign& d, const Request& req,
                       const ServerOptions& opts) {
  prove::ProveOptions popts;
  popts.skeleton.policy = policy_of(req);
  popts.worst_case_occupancy = req.worst_case;
  prove::parse_method(req.method, &popts.method);
  popts.depth = req.depth;
  popts.sliced_frontier = req.engine != "interp";
  popts.max_states = effective_budget(req, opts);
  const auto pr = prove::prove(d.net.topo, popts);
  Json result = Json::object()
                    .set("schema", "liplib.serve.prove/1")
                    .set("topology_hash", hex64(topology_hash(d.net.topo)))
                    .set("policy", req.policy)
                    .set("engine", req.engine)
                    .set("worst_case", req.worst_case)
                    .set("verdict", prove::verdict_name(pr.verdict))
                    .set("exit_code", pr.exit_code())
                    .set("prove", pr.to_json(d.net.topo));
  return {result.dump(), pr.verdict == prove::Verdict::kCounterexample};
}

// ---- campaign -----------------------------------------------------------

Computed compute_campaign(const Request& req, const ServerOptions& opts,
                          trace::Recorder* recorder,
                          trace::TraceContext chunk_parent) {
  campaign::NamedCampaignSpec spec;
  spec.mode = req.mode;
  spec.jobs = static_cast<std::size_t>(req.jobs);
  spec.policy = policy_of(req);
  spec.shape = campaign::FuzzSpec::Shape::kComposite;
  spec.engine = engine_of(req);
  const auto jobs = campaign::make_named_campaign(spec);
  campaign::EngineOptions eopts;
  eopts.threads = opts.threads;
  eopts.base_seed = req.seed;
  eopts.cycle_budget = effective_budget(req, opts);
  eopts.recorder = recorder;
  eopts.trace_parent = chunk_parent;
  const auto results = campaign::Engine(eopts).run(jobs);
  const auto agg = campaign::aggregate(results);
  Json result =
      Json::object()
          .set("schema", "liplib.serve.campaign/1")
          .set("mode", req.mode)
          .set("engine", req.engine)
          .set("jobs", req.jobs)
          .set("seed", req.seed)
          .set("budget", eopts.cycle_budget)
          .set("verdict", agg.all_live() ? "all_live" : "failures")
          .set("deadlocks", agg.count(campaign::Outcome::kDeadlock))
          .set("aggregate", campaign::to_json(agg));
  return {result.dump(), agg.count(campaign::Outcome::kDeadlock) > 0};
}

// ---- dist-status --------------------------------------------------------

/// Relays a "liplib.dist/1" status query to the coordinator on
/// 127.0.0.1:<port> and wraps the answer.  Live state, never cached —
/// the whole point is watching shard progress move.  The framing is
/// this daemon's own (the dist protocol reuses liplib.rpc/1 frames), so
/// serve does not depend on the dist library.
Computed compute_dist_status(const Request& req) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ApiError(std::string("socket failed: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(req.port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw ApiError("no dist coordinator on 127.0.0.1:" +
                   std::to_string(req.port) + ": " + std::strerror(err));
  }
  std::string payload;
  try {
    write_frame(fd, Json::object()
                        .set("rpc", "liplib.dist/1")
                        .set("msg", "status")
                        .dump());
    if (!read_frame(fd, payload)) {
      throw ApiError("coordinator closed the connection without answering");
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  const Json status = Json::parse(payload);
  Json result = Json::object()
                    .set("schema", "liplib.serve.dist_status/1")
                    .set("port", req.port)
                    .set("coordinator", status);
  return {result.dump(), false};
}

// ---- cache keys ---------------------------------------------------------

/// Content-addressed key of a cacheable request: (content hash, policy,
/// seed, kind) plus the knobs that change the answer (budget / cycles).
std::string cache_key(const Request& req, const ParsedDesign* design,
                      const ServerOptions& opts) {
  std::string key = request_kind_name(req.kind);
  switch (req.kind) {
    case RequestKind::kLint:
      key += "/" + hex64(design->content_hash);
      break;
    case RequestKind::kScreen:
      key += "/" + hex64(design->content_hash) + "/" + req.policy +
             "/engine=" + req.engine +
             "/budget=" + std::to_string(effective_budget(req, opts));
      break;
    case RequestKind::kProfile:
      key += "/" + hex64(design->content_hash) +
             "/cycles=" + std::to_string(effective_cycles(req, opts));
      break;
    case RequestKind::kProve:
      key += "/" + hex64(design->content_hash) + "/" + req.policy;
      key += "/method=" + req.method;
      key += "/engine=" + req.engine;
      key += "/depth=" + std::to_string(req.depth);
      key += req.worst_case ? "/wc=1" : "/wc=0";
      key += "/budget=" + std::to_string(effective_budget(req, opts));
      break;
    case RequestKind::kCampaign:
      key += "/" + req.mode + "/" + req.policy +
             "/engine=" + req.engine +
             "/jobs=" + std::to_string(req.jobs) +
             "/seed=" + std::to_string(req.seed) +
             "/budget=" + std::to_string(effective_budget(req, opts));
      break;
    default:
      break;
  }
  return key;
}

}  // namespace

std::string handle_payload(std::string_view payload, ServeContext& ctx) {
  const std::uint64_t t0 = ctx.recorder.now_us();
  // Stage 1: decode.  Failures here are protocol errors; the id is
  // echoed when the document got far enough to carry one.
  Json doc;
  Json id;
  Request req;
  try {
    Json::ParseLimits limits;
    limits.max_bytes = ctx.opts.limits.max_frame_bytes;
    doc = Json::parse(payload, limits);
    if (doc.is_object()) {
      if (const Json* f = doc.find("id")) id = *f;
    }
    req = parse_request(doc);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(ctx.mu);
    ctx.protocol_errors.add();
    return error_envelope(id, e.what());
  }

  {
    std::lock_guard<std::mutex> lock(ctx.mu);
    ctx.requests_total.add();
    ctx.requests_by_kind[static_cast<int>(req.kind)].add();
    ctx.inflight.add(1);
  }

  // Tracing identity: the trace id comes from the caller's context when
  // present, else from the request's own content hash; the root span id
  // mixes in the per-process sequence so repeated identical requests
  // stay distinct spans of the same trace.  The trace scrape itself is
  // not instrumented (a scrape must not grow what it reports).
  const bool tracing = req.kind != RequestKind::kTrace;
  const std::uint64_t trace_id =
      req.trace.enabled() ? req.trace.trace_id
                          : trace::derive_trace_id(fnv1a64(payload));
  const std::uint64_t root_id = trace::derive_span_id(
      trace_id, req.trace.parent_span, ctx.recorder.next_seq());
  trace::Span root;
  root.trace_id = trace_id;
  root.span_id = root_id;
  root.parent_span = req.trace.parent_span;
  root.name = std::string("serve.") + request_kind_name(req.kind);
  root.category = "serve";
  root.track = "serve";
  root.ts_us = t0;

  const bool engine_labelled = req.kind == RequestKind::kScreen ||
                               req.kind == RequestKind::kCampaign ||
                               req.kind == RequestKind::kProve;
  /// Closes the request: counters, the latency sample (kept equal to
  /// the per-kind request counters whenever the daemon is idle) and the
  /// root span.  `observe_latency` is false only for the metrics kind,
  /// which records its sample *before* exposition instead.
  auto finish = [&](bool deadlock, bool error, const char* cache_label,
                    bool observe_latency = true) {
    {
      std::lock_guard<std::mutex> lock(ctx.mu);
      ctx.inflight.add(-1);
      if (deadlock) ctx.deadlock_verdicts.add();
      if (error) ctx.request_errors.add();
    }
    const std::uint64_t t1 = ctx.recorder.now_us();
    if (observe_latency) {
      ctx.registry.observe(
          "liplib_serve_request_latency_us",
          {{"kind", request_kind_name(req.kind)},
           {"engine", engine_labelled ? req.engine : "none"},
           {"cache", cache_label}},
          t1 - t0);
    }
    if (tracing) {
      root.dur_us = t1 - t0;
      root.attrs.emplace_back("cache", cache_label);
      if (error) root.attrs.emplace_back("error", "1");
      ctx.recorder.record(root);
    }
  };

  // Stage 2: dispatch.  status/shutdown/metrics/trace answer live state
  // and are never cached; everything else flows through the
  // content-addressed cache.
  try {
    if (req.kind == RequestKind::kStatus) {
      const std::string result = ctx.status_json().dump();
      finish(false, false, "none");
      return success_envelope(req.id, req.kind, /*cached=*/false, result);
    }
    if (req.kind == RequestKind::kMetrics) {
      // Occupancy mirrors and this request's own latency sample land
      // before exposition, so an idle daemon's scrape is always
      // self-consistent with its status counters.
      const CacheStats cs = ctx.cache.stats();
      ctx.registry.gauge_set("liplib_serve_cache_bytes", {},
                             static_cast<std::int64_t>(cs.bytes));
      ctx.registry.gauge_set("liplib_serve_cache_entries", {},
                             static_cast<std::int64_t>(cs.entries));
      ctx.registry.counter_add(
          "liplib_serve_cache_evictions_total", {},
          cs.evictions - ctx.registry.counter_value(
                             "liplib_serve_cache_evictions_total", {}));
      ctx.registry.observe("liplib_serve_request_latency_us",
                           {{"kind", request_kind_name(req.kind)},
                            {"engine", "none"},
                            {"cache", "none"}},
                           ctx.recorder.now_us() - t0);
      const std::string result =
          Json::object()
              .set("schema", "liplib.serve.metrics/1")
              .set("content_type", "text/plain; version=0.0.4")
              .set("text", ctx.registry.expose_text())
              .dump();
      finish(false, false, "none", /*observe_latency=*/false);
      return success_envelope(req.id, req.kind, /*cached=*/false, result);
    }
    if (req.kind == RequestKind::kTrace) {
      const std::string result = ctx.recorder.to_json().dump();
      finish(false, false, "none");
      return success_envelope(req.id, req.kind, /*cached=*/false, result);
    }
    if (req.kind == RequestKind::kDistStatus) {
      Computed relayed = compute_dist_status(req);
      finish(false, false, "none");
      return success_envelope(req.id, req.kind, /*cached=*/false,
                              relayed.result);
    }
    if (req.kind == RequestKind::kShutdown) {
      ctx.draining.store(true);
      const std::string result = Json::object()
                                     .set("schema", "liplib.serve.shutdown/1")
                                     .set("draining", true)
                                     .dump();
      finish(false, false, "none");
      return success_envelope(req.id, req.kind, /*cached=*/false, result);
    }

    ParsedDesign design;
    const bool needs_design = req.kind != RequestKind::kCampaign;
    if (needs_design) design = parse_design_text(req.netlist);

    const std::string key =
        cache_key(req, needs_design ? &design : nullptr, ctx.opts);
    // Per-engine cache traffic (engine-keyed kinds only): screen and
    // campaign answers depend on the requested evaluator's key.
    const bool engine_keyed = req.kind == RequestKind::kScreen ||
                              req.kind == RequestKind::kCampaign;
    const int engine_idx = static_cast<int>(engine_of(req));

    const std::uint64_t lookup_ts = ctx.recorder.now_us();
    auto hit = ctx.cache.lookup(key);
    if (tracing) {
      const std::uint64_t lookup_end = ctx.recorder.now_us();
      trace::Span lk;
      lk.trace_id = trace_id;
      lk.span_id = trace::derive_span_id(trace_id, root_id, 1);
      lk.parent_span = root_id;
      lk.name = "serve.cache_lookup";
      lk.category = "serve";
      lk.track = "serve";
      lk.ts_us = lookup_ts;
      lk.dur_us = lookup_end - lookup_ts;
      ctx.recorder.record(std::move(lk));
      root.events.push_back({hit ? "cache.hit" : "cache.miss", lookup_end});
    }
    if (hit) {
      if (engine_keyed) {
        std::lock_guard<std::mutex> lock(ctx.mu);
        ctx.engine_hits[engine_idx].add();
      }
      finish(false, false, "hit");
      return success_envelope(req.id, req.kind, /*cached=*/true, *hit);
    }
    if (engine_keyed) {
      std::lock_guard<std::mutex> lock(ctx.mu);
      ctx.engine_misses[engine_idx].add();
    }

    const std::uint64_t exec_ts = ctx.recorder.now_us();
    const std::uint64_t exec_id = trace::derive_span_id(trace_id, root_id, 2);
    Computed computed;
    switch (req.kind) {
      case RequestKind::kLint: computed = compute_lint(design); break;
      case RequestKind::kScreen:
        computed = compute_screen(design, req, ctx.opts);
        break;
      case RequestKind::kProfile:
        computed = compute_profile(req, ctx.opts);
        break;
      case RequestKind::kProve:
        computed = compute_prove(design, req, ctx.opts);
        break;
      default:
        computed = compute_campaign(req, ctx.opts,
                                    tracing ? &ctx.recorder : nullptr,
                                    trace::TraceContext{trace_id, exec_id});
        break;
    }
    if (tracing) {
      trace::Span ex;
      ex.trace_id = trace_id;
      ex.span_id = exec_id;
      ex.parent_span = root_id;
      ex.name = "serve.execute";
      ex.category = "serve";
      ex.track = "serve";
      ex.ts_us = exec_ts;
      ex.dur_us = ctx.recorder.now_us() - exec_ts;
      if (engine_labelled) ex.attrs.emplace_back("engine", req.engine);
      ctx.recorder.record(std::move(ex));
    }
    const std::size_t evicted = ctx.cache.insert(key, computed.result);
    if (tracing && evicted > 0) {
      root.events.push_back({"cache.evict", ctx.recorder.now_us()});
      root.attrs.emplace_back("evicted", std::to_string(evicted));
    }
    finish(computed.deadlock, false, "miss");
    return success_envelope(req.id, req.kind, /*cached=*/false,
                            computed.result);
  } catch (const std::exception& e) {
    finish(false, true, "none");
    return error_envelope(req.id, e.what());
  }
}

}  // namespace liplib::serve
