#include "liplib/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "liplib/support/check.hpp"

namespace liplib::serve {

Server::Server(ServerOptions opts) : ctx_(opts) {}

Server::~Server() {
  shutdown();
  wait();
}

void Server::start() {
  LIPLIB_EXPECT(listen_fd_ < 0, "Server::start called twice");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ApiError(std::string("socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: the daemon is a local backend, not an internet
  // listener; remote fleets front it with their own transport.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ctx_.opts.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw ApiError("cannot bind 127.0.0.1:" + std::to_string(ctx_.opts.port) +
                   ": " + std::strerror(err));
  }
  if (::listen(fd, 128) < 0) {
    const int err = errno;
    ::close(fd);
    throw ApiError(std::string("listen failed: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (drain) or fatal error
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait(lock, [this] {
      return active_ < ctx_.opts.max_connections || stopping_.load();
    });
    if (stopping_.load()) {
      lock.unlock();
      ::close(fd);
      break;
    }
    ++active_;
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  std::string payload;
  try {
    while (!stopping_.load()) {
      if (!read_frame(fd, payload, ctx_.opts.limits)) break;  // clean EOF
      const std::string response = handle_payload(payload, ctx_);
      write_frame(fd, response);
      if (ctx_.draining.load()) break;
    }
  } catch (const std::exception& e) {
    // Protocol violation or I/O error: tell the peer why when the pipe
    // still works, then drop the connection.
    try {
      write_frame(fd, error_envelope(Json(), e.what()));
    } catch (...) {
    }
    std::lock_guard<std::mutex> lock(ctx_.mu);
    ctx_.protocol_errors.add();
  }
  {
    // Unregister before close so begin_drain can never shut down a
    // recycled fd number.
    std::lock_guard<std::mutex> lock(conn_mu_);
    --active_;
    for (auto& open : conn_fds_) {
      if (open == fd) {
        open = -1;
        break;
      }
    }
  }
  ::close(fd);
  conn_cv_.notify_all();
  // A shutdown request drains the whole daemon once its own response is
  // on the wire.
  if (ctx_.draining.load()) begin_drain();
}

void Server::begin_drain() {
  std::call_once(drain_once_, [this] {
    stopping_.store(true);
    ctx_.draining.store(true);
    if (listen_fd_ >= 0) {
      // shutdown() (not just close) reliably wakes a blocked accept().
      ::shutdown(listen_fd_, SHUT_RDWR);
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) {
      // Wake idle readers; in-flight computations finish and answer
      // first because the write side stays open.
      if (fd >= 0) ::shutdown(fd, SHUT_RD);
    }
    conn_cv_.notify_all();
  });
}

void Server::shutdown() { begin_drain(); }

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (;;) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (conn_threads_.empty()) break;
      t = std::move(conn_threads_.back());
      conn_threads_.pop_back();
    }
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace liplib::serve
