#include "liplib/skeleton/skeleton.hpp"

#include <unordered_map>

#include "liplib/probe/probe.hpp"
#include "liplib/support/check.hpp"

namespace liplib::skeleton {

namespace {
constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
}

std::vector<graph::NodeId> SkeletonResult::starved_shells() const {
  std::vector<graph::NodeId> out;
  for (std::size_t i = 0; i < shell_throughput.size(); ++i) {
    if (shell_throughput[i].num() == 0) out.push_back(shell_ids[i]);
  }
  return out;
}

Skeleton::Skeleton(const graph::Topology& topo, SkeletonOptions opts)
    : topo_(topo), opts_(opts) {
  const auto report =
      topo_.validate(/*require_station_between_shells=*/opts_.input_queue_depth == 0);
  LIPLIB_EXPECT(report.ok(),
                "topology has structural errors:\n" + report.to_string());

  node_index_.assign(topo_.nodes().size(), kNoIndex);
  for (graph::NodeId v = 0; v < topo_.nodes().size(); ++v) {
    const auto& node = topo_.node(v);
    switch (node.kind) {
      case graph::NodeKind::kProcess: {
        Shell s;
        s.node = v;
        s.in_seg.assign(node.num_inputs, 0);
        s.out.resize(node.num_outputs);
        if (opts_.input_queue_depth > 0) {
          s.q_size.assign(node.num_inputs, 0);
        }
        node_index_[v] = shells_.size();
        shells_.push_back(std::move(s));
        break;
      }
      case graph::NodeKind::kSource:
        node_index_[v] = sources_.size();
        sources_.emplace_back();
        break;
      case graph::NodeKind::kSink:
        node_index_[v] = sinks_.size();
        sinks_.emplace_back();
        break;
    }
  }

  for (graph::ChannelId c = 0; c < topo_.channels().size(); ++c) {
    const auto& ch = topo_.channel(c);
    std::vector<std::size_t> ids;
    for (std::size_t h = 0; h <= ch.num_stations(); ++h) {
      ids.push_back(fwd_.size());
      fwd_.push_back(0);
      stop_.push_back(0);
    }
    const auto& from_node = topo_.node(ch.from.node);
    if (from_node.kind == graph::NodeKind::kProcess) {
      auto& port = shells_[node_index_[ch.from.node]].out[ch.from.port];
      // Pending consumers are tracked in a 32-bit mask; a wider fanout
      // would silently truncate (lip::System enforces the same limit).
      LIPLIB_EXPECT(port.branch.size() < 32,
                    "more than 32 fanout branches on output port " +
                        std::to_string(ch.from.port) + " of '" +
                        from_node.name + "'");
      port.branch.push_back(ids.front());
    } else {
      auto& port = sources_[node_index_[ch.from.node]].port;
      LIPLIB_EXPECT(port.branch.size() < 32,
                    "more than 32 fanout branches on source '" +
                        from_node.name + "'");
      port.branch.push_back(ids.front());
    }
    for (std::size_t i = 0; i < ch.num_stations(); ++i) {
      Station st;
      st.kind = ch.stations[i];
      st.in_seg = ids[i];
      st.out_seg = ids[i + 1];
      if (strict()) {
        st.occ = 1;  // the initial void is a token under the strict policy
        st.v0 = false;
      }
      stations_.push_back(st);
    }
    const auto& to_node = topo_.node(ch.to.node);
    if (to_node.kind == graph::NodeKind::kProcess) {
      shells_[node_index_[ch.to.node]].in_seg[ch.to.port] = ids.back();
    } else {
      sinks_[node_index_[ch.to.node]].in_seg = ids.back();
    }
  }
  // Initialization: shell outputs valid, sources presenting.
  for (auto& s : shells_) {
    for (auto& p : s.out) p.load_all();
  }
  for (auto& s : sources_) s.port.load_all();
}

void Skeleton::set_sink_pattern(graph::NodeId node,
                                std::vector<bool> pattern) {
  LIPLIB_EXPECT(node < topo_.nodes().size() &&
                    topo_.node(node).kind == graph::NodeKind::kSink,
                "set_sink_pattern target is not a sink");
  sinks_[node_index_[node]].pattern = std::move(pattern);
}

bool Skeleton::shell_can_fire(const Shell& s) const {
  if (opts_.input_queue_depth == 0) {
    for (std::size_t in : s.in_seg) {
      if (!fwd_[in]) return false;
    }
  } else {
    for (auto q : s.q_size) {
      if (q == 0) return false;
    }
  }
  for (const auto& port : s.out) {
    for (std::size_t b = 0; b < port.branch.size(); ++b) {
      const bool stopped = stop_[port.branch[b]];
      if (strict()) {
        if (stopped) return false;
      } else if (stopped && ((port.pend >> b) & 1u)) {
        return false;
      }
    }
  }
  return true;
}

void Skeleton::settle_stops() {
  const bool pessimistic =
      opts_.resolution == lip::StopResolution::kPessimistic;
  for (auto& s : stop_) s = pessimistic ? 1 : 0;
  for (auto& s : sinks_) {
    const bool st =
        !s.pattern.empty() && s.pattern[cycle_ % s.pattern.size()];
    stop_[s.in_seg] = st ? 1 : 0;
  }
  for (const auto& st : stations_) {
    if (st.kind == graph::RsKind::kFull) {
      stop_[st.in_seg] = st.stop_reg ? 1 : 0;
    }
  }
  const std::size_t guard = 2 * stop_.size() + 4;
  std::size_t sweeps = 0;
  bool changed = true;
  while (changed) {
    LIPLIB_ENSURE(++sweeps <= guard, "stop fixpoint failed to converge");
    changed = false;
    for (const auto& st : stations_) {
      if (st.kind != graph::RsKind::kHalf) continue;
      const bool front_valid = st.occ > 0 && st.v0;
      const bool s_eff = strict() ? (stop_[st.out_seg] != 0)
                                  : (stop_[st.out_seg] && front_valid);
      const std::uint8_t up = (st.occ > 0 && s_eff) ? 1 : 0;
      if (stop_[st.in_seg] != up) {
        stop_[st.in_seg] = up;
        changed = true;
      }
    }
    for (const auto& s : shells_) {
      const bool stalled = !shell_can_fire(s);
      for (std::size_t i = 0; i < s.in_seg.size(); ++i) {
        const std::size_t in = s.in_seg[i];
        std::uint8_t up;
        if (opts_.input_queue_depth == 0) {
          up = (stalled && fwd_[in]) ? 1 : 0;
        } else {
          up = (s.q_size[i] >= opts_.input_queue_depth && stalled) ? 1 : 0;
        }
        if (stop_[in] != up) {
          stop_[in] = up;
          changed = true;
        }
      }
    }
  }
}

void Skeleton::attach_probe(probe::Probe& probe) {
  LIPLIB_EXPECT(cycle_ == 0, "attach_probe after stepping");
  LIPLIB_EXPECT(probe_ == nullptr, "attach_probe called twice");
  LIPLIB_EXPECT(!probe.bound(), "probe is already bound to a simulator");
  LIPLIB_EXPECT(opts_.input_queue_depth == 0,
                "probe requires the paper's simplified shell "
                "(input_queue_depth == 0)");

  // Segments and stations were laid out sequentially, channel by channel
  // (see the constructor); replay that layout to recover the mapping.
  probe::Wiring w;
  w.strict = strict();
  w.segments.resize(fwd_.size());
  w.stations.resize(stations_.size());
  std::size_t seg = 0;
  std::size_t station = 0;
  for (graph::ChannelId c = 0; c < topo_.channels().size(); ++c) {
    const auto& ch = topo_.channel(c);
    const std::size_t n_st = ch.num_stations();
    for (std::size_t h = 0; h <= n_st; ++h) {
      probe::Wiring::Segment& s = w.segments[seg + h];
      s.channel = c;
      s.hop = h;
      if (h == 0) {
        const auto& from = topo_.node(ch.from.node);
        s.producer.kind = from.kind == graph::NodeKind::kProcess
                              ? probe::UnitKind::kShell
                              : probe::UnitKind::kSource;
        s.producer.index = node_index_[ch.from.node];
      } else {
        s.producer.kind = probe::UnitKind::kStation;
        s.producer.index = station + h - 1;
      }
      if (h < n_st) {
        s.consumer.kind = probe::UnitKind::kStation;
        s.consumer.index = station + h;
      } else {
        const auto& to = topo_.node(ch.to.node);
        s.consumer.kind = to.kind == graph::NodeKind::kProcess
                              ? probe::UnitKind::kShell
                              : probe::UnitKind::kSink;
        s.consumer.index = node_index_[ch.to.node];
      }
    }
    for (std::size_t k = 0; k < n_st; ++k) {
      probe::Wiring::Station& st = w.stations[station + k];
      st.channel = c;
      st.index = k;
      st.full = stations_[station + k].kind == graph::RsKind::kFull;
      st.in_seg = stations_[station + k].in_seg;
      st.out_seg = stations_[station + k].out_seg;
    }
    seg += n_st + 1;
    station += n_st;
  }
  for (const auto& s : shells_) {
    probe::Wiring::Shell sh;
    sh.node = s.node;
    sh.in_segs = s.in_seg;
    for (const auto& port : s.out) {
      sh.out_segs.insert(sh.out_segs.end(), port.branch.begin(),
                         port.branch.end());
    }
    w.shells.push_back(std::move(sh));
  }
  for (graph::NodeId v = 0; v < topo_.nodes().size(); ++v) {
    if (topo_.node(v).kind == graph::NodeKind::kSource) {
      w.sources.push_back({v});
    } else if (topo_.node(v).kind == graph::NodeKind::kSink) {
      w.sinks.push_back({v});
    }
  }

  probe.bind(topo_, std::move(w));
  probe_ = &probe;
}

void Skeleton::observe_probe() {
  std::uint8_t* valid = probe_->valid_scratch();
  std::uint8_t* stop = probe_->stop_scratch();
  for (std::size_t i = 0; i < fwd_.size(); ++i) {
    valid[i] = fwd_[i];
    stop[i] = stop_[i];
  }
  probe::Activity* act = probe_->activity_scratch();
  for (std::size_t k = 0; k < shells_.size(); ++k) {
    const Shell& s = shells_[k];
    if (shell_can_fire(s)) {
      act[k] = probe::Activity::kFired;
    } else {
      bool missing = false;
      for (std::size_t in : s.in_seg) {
        if (!fwd_[in]) {
          missing = true;
          break;
        }
      }
      act[k] = missing ? probe::Activity::kWaitingInput
                       : probe::Activity::kStoppedOutput;
    }
  }
  probe_->commit_cycle(cycle_);
}

void Skeleton::saturate_stations() {
  for (auto& st : stations_) {
    if (st.occ == 0) st.occ = 1;
    st.v0 = true;  // the front token becomes valid data
  }
}

void Skeleton::step() {
  // Phase 1: forward validity.
  for (const auto& s : shells_) {
    for (const auto& p : s.out) {
      for (std::size_t b = 0; b < p.branch.size(); ++b) {
        fwd_[p.branch[b]] = (p.pend >> b) & 1u;
      }
    }
  }
  for (const auto& s : sources_) {
    for (std::size_t b = 0; b < s.port.branch.size(); ++b) {
      fwd_[s.port.branch[b]] = (s.port.pend >> b) & 1u;
    }
  }
  for (const auto& st : stations_) {
    fwd_[st.out_seg] = (st.occ > 0 && st.v0) ? 1 : 0;
  }

  // Phase 2: stops.
  settle_stops();

  if (probe_) observe_probe();

  // Phase 3: clock edge.
  for (auto& s : shells_) {
    const bool fire = shell_can_fire(s);
    for (auto& p : s.out) {
      for (std::size_t b = 0; b < p.branch.size(); ++b) {
        if (((p.pend >> b) & 1u) && !stop_[p.branch[b]]) {
          p.pend &= ~(1u << b);
        }
      }
    }
    if (fire) {
      for (auto& p : s.out) {
        LIPLIB_ENSURE(p.pend == 0, "skeleton shell fired while pending");
        p.load_all();
      }
      if (opts_.input_queue_depth > 0) {
        for (auto& q : s.q_size) --q;
      }
      ++s.fire_count;
    }
    if (opts_.input_queue_depth > 0) {
      for (std::size_t i = 0; i < s.in_seg.size(); ++i) {
        const std::size_t in = s.in_seg[i];
        if (fwd_[in] && !stop_[in]) {
          LIPLIB_ENSURE(s.q_size[i] < opts_.input_queue_depth,
                        "skeleton shell input queue overflow");
          ++s.q_size[i];
        }
      }
    }
  }
  for (auto& st : stations_) {
    const bool in_valid = fwd_[st.in_seg] != 0;
    const bool front_valid = st.occ > 0 && st.v0;
    const bool s_eff = strict() ? (stop_[st.out_seg] != 0)
                                : (stop_[st.out_seg] && front_valid);
    const bool consumed = st.occ > 0 && !s_eff;
    if (st.kind == graph::RsKind::kFull) {
      const bool accept = !st.stop_reg && (strict() || in_valid);
      if (consumed) {
        st.v0 = st.v1;
        --st.occ;
      }
      if (accept) {
        LIPLIB_ENSURE(st.occ < 2, "skeleton full station overflow");
        (st.occ == 0 ? st.v0 : st.v1) = in_valid;
        ++st.occ;
      }
      st.stop_reg = (st.occ == 2);
    } else {
      const bool stop_up = st.occ > 0 && s_eff;
      const bool accept = !stop_up && (strict() || in_valid);
      if (consumed) st.occ = 0;
      if (accept) {
        LIPLIB_ENSURE(st.occ == 0, "skeleton half station overflow");
        st.v0 = in_valid;
        st.occ = 1;
      }
    }
  }
  for (auto& s : sources_) {
    for (std::size_t b = 0; b < s.port.branch.size(); ++b) {
      if (((s.port.pend >> b) & 1u) && !stop_[s.port.branch[b]]) {
        s.port.pend &= ~(1u << b);
      }
    }
    if (s.port.pend == 0) s.port.load_all();  // always-ready source
  }
  for (auto& s : sinks_) {
    if (fwd_[s.in_seg] && !stop_[s.in_seg]) ++s.consumed;
  }
  ++cycle_;
}

std::uint64_t Skeleton::fires(graph::NodeId process) const {
  LIPLIB_EXPECT(process < topo_.nodes().size() &&
                    topo_.node(process).kind == graph::NodeKind::kProcess,
                "node is not a process");
  return shells_[node_index_[process]].fire_count;
}

std::string Skeleton::state_signature() const {
  std::string s;
  s.reserve(shells_.size() * 4 + sources_.size() + stations_.size());
  for (const auto& sh : shells_) {
    for (const auto& p : sh.out) {
      s.push_back(static_cast<char>(p.pend & 0xff));
      s.push_back(static_cast<char>((p.pend >> 8) & 0xff));
    }
    for (auto q : sh.q_size) s.push_back(static_cast<char>(q));
  }
  for (const auto& src : sources_) {
    s.push_back(static_cast<char>(src.port.pend & 0xff));
  }
  for (const auto& st : stations_) {
    char b = static_cast<char>(st.occ);
    // Mask slot validity by occupancy: unoccupied slots are not state.
    if (st.occ > 0 && st.v0) b |= 4;
    if (st.occ > 1 && st.v1) b |= 8;
    if (st.stop_reg) b |= 16;
    s.push_back(b);
  }
  return s;
}

SkeletonResult Skeleton::analyze(std::uint64_t max_cycles,
                                 std::uint64_t env_period) {
  LIPLIB_EXPECT(env_period >= 1, "environment period must be >= 1");
  struct Snap {
    std::uint64_t cycle;
    std::vector<std::uint64_t> fires;
  };
  auto snap = [&] {
    Snap s;
    s.cycle = cycle_;
    for (const auto& sh : shells_) s.fires.push_back(sh.fire_count);
    return s;
  };
  SkeletonResult result;
  for (const auto& sh : shells_) result.shell_ids.push_back(sh.node);

  std::unordered_map<std::string, Snap> seen;
  for (std::uint64_t i = 0; i <= max_cycles; ++i) {
    std::string key = state_signature();
    key.push_back(static_cast<char>(cycle_ % env_period));
    auto [it, inserted] = seen.emplace(std::move(key), snap());
    if (!inserted) {
      const Snap& first = it->second;
      const Snap now = snap();
      result.found = true;
      result.transient = first.cycle;
      result.period = now.cycle - first.cycle;
      bool progress = false;
      for (std::size_t k = 0; k < now.fires.size(); ++k) {
        const auto delta = now.fires[k] - first.fires[k];
        if (delta > 0) progress = true;
        if (delta == 0) result.has_starved_shell = true;
        result.shell_throughput.emplace_back(
            static_cast<std::int64_t>(delta),
            static_cast<std::int64_t>(result.period));
      }
      result.deadlocked = !progress && !shells_.empty();
      return result;
    }
    step();
  }
  return result;
}

ScreeningVerdict screen_for_deadlock(const graph::Topology& topo,
                                     ScreeningOptions opts,
                                     std::uint64_t max_cycles) {
  Skeleton sk(topo, opts.skeleton);
  if (opts.worst_case_occupancy) sk.saturate_stations();
  const auto r = sk.analyze(max_cycles);
  ScreeningVerdict v;
  v.ran_to_steady_state = r.found;
  v.deadlock_found = r.deadlocked || r.has_starved_shell;
  v.transient = r.transient;
  v.period = r.period;
  v.cycles_simulated = sk.cycle();
  v.min_throughput = r.system_throughput();
  v.starved = r.starved_shells();
  return v;
}

CureResult cure_deadlocks(const graph::Topology& topo, ScreeningOptions opts,
                          std::uint64_t max_cycles) {
  CureResult result;
  result.cured = topo;
  for (;;) {
    const auto verdict = screen_for_deadlock(result.cured, opts, max_cycles);
    if (verdict.ran_to_steady_state && !verdict.deadlock_found) {
      result.success = true;
      return result;
    }
    // Substitute one half relay station on a cycle with a full one; the
    // combinational stop loop it participated in is then broken there.
    const auto on_cycle = result.cured.channels_on_cycles();
    bool substituted = false;
    for (graph::ChannelId c = 0;
         c < result.cured.channels().size() && !substituted; ++c) {
      if (!on_cycle[c]) continue;
      auto& ch = result.cured.channel_mut(c);
      for (auto& kind : ch.stations) {
        if (kind == graph::RsKind::kHalf) {
          kind = graph::RsKind::kFull;
          result.touched_channels.push_back(c);
          ++result.substitutions;
          substituted = true;
          break;
        }
      }
    }
    if (!substituted) return result;  // nothing left to cure; failed
  }
}

}  // namespace liplib::skeleton
