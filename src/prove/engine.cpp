// The search half of liplib::prove: the bit-sliced frontier (64
// (state, environment) expansions per settle pass), the BFS/BMC driver
// over it, the k-induction decision procedure, counterexample
// finishing (trace, token audit, culprit, replayable post-mortem) and
// the result renderings.

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_map>

#include "internal.hpp"
#include "liplib/graph/analysis.hpp"
#include "liplib/support/check.hpp"

namespace liplib::prove {

const char* method_name(Method m) {
  switch (m) {
    case Method::kAuto: return "auto";
    case Method::kReachability: return "reach";
    case Method::kBmc: return "bmc";
    case Method::kInduction: return "induction";
  }
  return "?";
}

bool parse_method(std::string_view name, Method* out) {
  for (Method m : {Method::kAuto, Method::kReachability, Method::kBmc,
                   Method::kInduction}) {
    if (name == method_name(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kProved: return "proved";
    case Verdict::kCounterexample: return "counterexample";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

namespace detail {
namespace {

constexpr std::size_t kLanes = 64;

// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3), the same
// routine the sliced engine uses for its repeat keys: afterwards m[i]
// bit j == the input's m[j] bit i.
void transpose64(std::uint64_t m[64]) {
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (m[k] ^ (m[k + j] << j)) & ~mask;
      m[k] ^= t;
      m[k + j] ^= t >> j;
    }
  }
}

struct BatchOut {
  std::uint64_t fired = 0;    ///< lanes where some shell fired
  std::uint64_t pending = 0;  ///< lanes where some segment carried valid
};

/// 64 independent (state, environment-choice) expansions of one lowered
/// program per step: the canonical keys are transposed into per-plane
/// lane words, stepped with the sliced engine's word formulas (station
/// kinds are fixed per program, so the half/full merge collapses to a
/// static branch), and transposed back out.
class SlicedFrontier {
 public:
  SlicedFrontier(const xir::Program& p, const Layout& L) : p_(p), L_(L) {
    fwd_.assign(p.num_segments, 0);
    stop_.assign(p.num_segments, 0);
    pend_.assign(L.n_pend, 0);
    src_.assign(L.n_src, 0);
    occ1_.assign(L.n_st, 0);
    occ2_.assign(L.n_st, 0);
    v0_.assign(L.n_st, 0);
    v1_.assign(L.n_st, 0);
    sreg_.assign(L.n_st, 0);
    env_.assign(p.num_sinks(), 0);
    out_keys_.assign(kLanes, std::string(L.key_bytes, '\0'));
  }

  /// Loads 64 canonical keys (every slot must point at a key; pad spare
  /// lanes with a duplicate of a live one) and the per-lane sink masks.
  void load(const std::array<const std::string*, kLanes>& keys,
            const std::array<std::uint64_t, kLanes>& masks) {
    std::array<std::uint64_t, kLanes> block;
    for (std::size_t b = 0; b < L_.num_blocks; ++b) {
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        std::memcpy(&block[lane], keys[lane]->data() + b * 8, 8);
      }
      transpose64(block.data());
      const std::size_t base = b * 64;
      for (std::size_t r = 0; r < 64 && base + r < L_.num_planes; ++r) {
        *plane_word(base + r) = block[r];
      }
    }
    for (std::size_t s = 0; s < p_.num_sinks(); ++s) {
      std::uint64_t w = 0;
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        const std::uint64_t m = masks[lane];
        const bool stopped = m == kAllLanes || (s < 64 && ((m >> s) & 1));
        if (stopped) w |= 1ull << lane;
      }
      env_[s] = w;
    }
  }

  BatchOut step() {
    const xir::Program& p = p_;

    // Phase 1: forward validity.
    for (std::size_t b = 0; b < L_.n_pend; ++b) {
      fwd_[p.shell_br_seg[b]] = pend_[b];
    }
    for (std::size_t b = 0; b < L_.n_src; ++b) {
      fwd_[p.src_br_seg[b]] = src_[b];
    }
    for (std::size_t s = 0; s < L_.n_st; ++s) {
      fwd_[p.st_out[s]] = occ1_[s] & v0_[s];
    }
    BatchOut out;
    for (const std::uint64_t w : fwd_) out.pending |= w;

    // Phase 2: stops.
    settle_stops();

    // Phase 3: clock edge.
    for (std::size_t k = 0; k < p.num_shells(); ++k) {
      const std::uint64_t fire = shell_ready_word(k);
      for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
           ++b) {
        pend_[b] &= stop_[p.shell_br_seg[b]];
        LIPLIB_ENSURE((fire & pend_[b]) == 0, "prove shell fired while pending");
        pend_[b] |= fire;
      }
      out.fired |= fire;
    }
    for (std::size_t s = 0; s < L_.n_st; ++s) {
      const std::uint64_t in_valid = fwd_[p.st_in[s]];
      const std::uint64_t front_valid = occ1_[s] & v0_[s];
      const std::uint64_t s_eff =
          p.strict ? stop_[p.st_out[s]] : (stop_[p.st_out[s]] & front_valid);
      const std::uint64_t consumed = occ1_[s] & ~s_eff;
      if (!p.st_half[s]) {
        const std::uint64_t accept =
            ~sreg_[s] & (p.strict ? kAllLanes : in_valid);
        const std::uint64_t occ_a1 = (occ1_[s] & ~consumed) | occ2_[s];
        const std::uint64_t occ_a2 = occ2_[s] & ~consumed;
        const std::uint64_t v0_a = (consumed & v1_[s]) | (~consumed & v0_[s]);
        LIPLIB_ENSURE((accept & occ_a2) == 0, "prove full station overflow");
        v0_[s] = (accept & ~occ_a1 & in_valid) | ((~accept | occ_a1) & v0_a);
        v1_[s] =
            (accept & occ_a1 & in_valid) | ((~accept | ~occ_a1) & v1_[s]);
        occ1_[s] = occ_a1 | accept;
        occ2_[s] = occ_a2 | (accept & occ_a1);
        sreg_[s] = occ2_[s];
      } else {
        const std::uint64_t stop_up = occ1_[s] & s_eff;
        const std::uint64_t accept =
            ~stop_up & (p.strict ? kAllLanes : in_valid);
        const std::uint64_t occ_d1 = occ1_[s] & ~consumed;
        LIPLIB_ENSURE((accept & occ_d1) == 0, "prove half station overflow");
        occ1_[s] = occ_d1 | accept;
        v0_[s] = (accept & in_valid) | (~accept & v0_[s]);
      }
    }
    for (std::size_t s = 0; s < p.num_sources(); ++s) {
      std::uint64_t all_clear = kAllLanes;
      for (std::uint32_t b = p.src_br_begin[s]; b < p.src_br_begin[s + 1];
           ++b) {
        src_[b] &= stop_[p.src_br_seg[b]];
        all_clear &= ~src_[b];
      }
      for (std::uint32_t b = p.src_br_begin[s]; b < p.src_br_begin[s + 1];
           ++b) {
        src_[b] |= all_clear;
      }
    }
    return out;
  }

  /// Canonical key of lane `l` after step() (valid until the next step).
  const std::string& extract(std::size_t lane) {
    if (!extracted_) {
      std::array<std::uint64_t, kLanes> block;
      for (std::size_t b = 0; b < L_.num_blocks; ++b) {
        const std::size_t base = b * 64;
        for (std::size_t r = 0; r < 64; ++r) {
          block[r] = base + r < L_.num_planes ? canonical_plane(base + r) : 0;
        }
        transpose64(block.data());
        for (std::size_t l = 0; l < kLanes; ++l) {
          std::memcpy(out_keys_[l].data() + b * 8, &block[l], 8);
        }
      }
      extracted_ = true;
    }
    return out_keys_[lane];
  }

  void begin_batch() { extracted_ = false; }

 private:
  std::uint64_t* plane_word(std::size_t plane) {
    if (plane < L_.n_pend) return &pend_[plane];
    plane -= L_.n_pend;
    if (plane < L_.n_src) return &src_[plane];
    plane -= L_.n_src;
    const std::size_t s = plane % L_.n_st;
    switch (plane / L_.n_st) {
      case 0: return &occ1_[s];
      case 1: return &occ2_[s];
      case 2: return &v0_[s];
      case 3: return &v1_[s];
      default: return &sreg_[s];
    }
  }

  std::uint64_t canonical_plane(std::size_t plane) {
    if (plane < L_.n_pend + L_.n_src) return *plane_word(plane);
    const std::size_t rel = plane - L_.n_pend - L_.n_src;
    const std::size_t s = rel % L_.n_st;
    switch (rel / L_.n_st) {
      case 0: return occ1_[s];
      case 1: return occ2_[s];
      case 2: return v0_[s] & occ1_[s];  // validity masked by occupancy
      case 3: return v1_[s] & occ2_[s];
      default: return sreg_[s];
    }
  }

  std::uint64_t shell_ready_word(std::size_t k) const {
    const xir::Program& p = p_;
    std::uint64_t ready = kAllLanes;
    for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
         ++i) {
      ready &= fwd_[p.shell_in_seg[i]];
    }
    for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
         ++b) {
      const std::uint64_t stopped = stop_[p.shell_br_seg[b]];
      ready &= ~(p.strict ? stopped : (stopped & pend_[b]));
    }
    return ready;
  }

  void settle_station(std::size_t s) {
    const xir::Program& p = p_;
    const std::uint64_t front_valid = occ1_[s] & v0_[s];
    const std::uint64_t s_eff =
        p.strict ? stop_[p.st_out[s]] : (stop_[p.st_out[s]] & front_valid);
    stop_[p.st_in[s]] = occ1_[s] & s_eff;
  }

  void settle_stops() {
    const xir::Program& p = p_;
    const std::uint64_t init = p.pessimistic ? kAllLanes : 0;
    for (auto& s : stop_) s = init;
    for (std::size_t s = 0; s < p.num_sinks(); ++s) {
      stop_[p.sink_seg[s]] = env_[s];
    }
    for (std::size_t s = 0; s < L_.n_st; ++s) {
      if (!p.st_half[s]) stop_[p.st_in[s]] = sreg_[s];
    }
    for (std::uint32_t unit : p.schedule.order) {
      if (unit < L_.n_st) {
        settle_station(unit);
      } else {
        settle_shell(unit - L_.n_st);
      }
    }
    if (!p.schedule.iterate.empty()) {
      const std::size_t guard = 2 * stop_.size() + 4;
      std::size_t sweeps = 0;
      bool changed = true;
      while (changed) {
        LIPLIB_ENSURE(++sweeps <= guard, "stop fixpoint failed to converge");
        changed = false;
        for (std::uint32_t unit : p.schedule.iterate) {
          if (unit < L_.n_st) {
            const std::uint64_t before = stop_[p.st_in[unit]];
            settle_station(unit);
            changed = changed || stop_[p.st_in[unit]] != before;
          } else {
            const std::size_t k = unit - L_.n_st;
            const std::uint64_t stalled = ~shell_ready_word(k);
            for (std::uint32_t i = p.shell_in_begin[k];
                 i < p.shell_in_begin[k + 1]; ++i) {
              const std::uint32_t in = p.shell_in_seg[i];
              const std::uint64_t up = stalled & fwd_[in];
              if (stop_[in] != up) {
                stop_[in] = up;
                changed = true;
              }
            }
          }
        }
      }
    }
  }

  void settle_shell(std::size_t k) {
    const xir::Program& p = p_;
    const std::uint64_t stalled = ~shell_ready_word(k);
    for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
         ++i) {
      const std::uint32_t in = p.shell_in_seg[i];
      stop_[in] = stalled & fwd_[in];
    }
  }

  const xir::Program& p_;
  const Layout& L_;
  std::vector<std::uint64_t> fwd_, stop_;
  std::vector<std::uint64_t> pend_, src_;
  std::vector<std::uint64_t> occ1_, occ2_, v0_, v1_, sreg_;
  std::vector<std::uint64_t> env_;  ///< per sink: lanes where it stops
  std::vector<std::string> out_keys_;
  bool extracted_ = false;
};

/// Parent link of a visited state in the sliced search.
struct Par {
  const std::string* parent;  ///< nullptr for the initial state
  std::uint32_t env_idx;      ///< environment choice taken from the parent
  std::uint32_t depth;        ///< BFS layer (transitions from init)
};

struct SearchStats {
  std::uint64_t states = 0;       ///< states expanded
  std::uint64_t transitions = 0;  ///< (state, env) pairs stepped
  std::uint64_t depth_reached = 0;
  bool drained = false;       ///< the queue emptied without a dead state
  bool budget = false;        ///< max_states hit before closure
  bool depth_cut = false;     ///< some successor fell beyond the bound
  const std::string* dead = nullptr;  ///< dead state (key in `visited`)
  std::uint32_t dead_depth = 0;
};

/// Layered BFS/BMC over the bit-sliced frontier.  Expands states of
/// depth <= `bound`; successors past the bound are recorded (so the
/// caller knows the space did not close) but not expanded.  Returns on
/// the first dead state (minimal depth: the queue is FIFO over layers).
SearchStats sliced_search(const xir::Program& p, const Layout& L,
                          const EnvChoices& env, bool worst_case,
                          std::uint64_t max_states, std::uint64_t bound,
                          std::unordered_map<std::string, Par>* visited) {
  SearchStats stats;
  SlicedFrontier frontier(p, L);
  const std::size_t env_count = env.masks.size();
  // Power-of-two choice counts (2^sinks, or the {greedy, all-stop}
  // pair) tile the 64 lanes exactly; one task spans several batches
  // when the choice set outgrows a word.
  const std::size_t tasks_per_batch = std::max<std::size_t>(
      1, env_count >= kLanes ? 1 : kLanes / env_count);
  const std::size_t envs_per_task =
      std::min<std::size_t>(env_count, kLanes);

  struct Task {
    const std::string* state;
    std::uint32_t depth;
  };
  std::vector<Task> queue;
  std::size_t head = 0;

  const std::string init = encode(L, initial_state(p, worst_case));
  const auto& slot = *visited->emplace(init, Par{nullptr, 0, 0}).first;
  queue.push_back(Task{&slot.first, 0});

  std::array<const std::string*, kLanes> keys;
  std::array<std::uint64_t, kLanes> masks;
  std::array<Task, kLanes> lane_task;
  std::array<std::uint32_t, kLanes> lane_env;

  while (head < queue.size()) {
    // Snapshot the batch size before processing: successors inserted
    // below belong to later batches.
    const std::size_t batch_tasks =
        std::min(tasks_per_batch, queue.size() - head);
    // One environment chunk per task in this batch.
    for (std::size_t chunk = 0; chunk * envs_per_task < env_count; ++chunk) {
      const std::size_t env_base = chunk * envs_per_task;
      std::size_t lanes = 0;
      for (std::size_t t = 0; t < batch_tasks; ++t) {
        const Task task = queue[head + t];
        for (std::size_t j = 0; j < envs_per_task; ++j) {
          keys[lanes] = task.state;
          masks[lanes] = env.masks[env_base + j];
          lane_task[lanes] = task;
          lane_env[lanes] = static_cast<std::uint32_t>(env_base + j);
          ++lanes;
        }
      }
      const std::size_t live = lanes;
      for (; lanes < kLanes; ++lanes) {  // pad with a duplicate live lane
        keys[lanes] = keys[0];
        masks[lanes] = env.masks[0];
      }

      frontier.begin_batch();
      frontier.load(keys, masks);
      const BatchOut bo = frontier.step();

      for (std::size_t l = 0; l < live; ++l) {
        ++stats.transitions;
        const Task task = lane_task[l];
        const std::string& succ = frontier.extract(l);
        if (lane_env[l] == 0 && !((bo.fired >> l) & 1) &&
            ((bo.pending >> l) & 1) && p.num_shells() > 0 &&
            succ == *task.state) {
          // Greedy fixed point with tokens pending: frozen forever.
          stats.dead = task.state;
          stats.dead_depth = task.depth;
          // Count the batch prefix up to and including the dead state as
          // expanded, matching the scalar reference's accounting (it
          // dequeues one state at a time and counts the violating one).
          for (std::size_t t = 0; t <= l / envs_per_task; ++t) {
            stats.depth_reached = std::max<std::uint64_t>(
                stats.depth_reached, queue[head + t].depth);
            ++stats.states;
          }
          return stats;
        }
        if (visited->contains(succ)) continue;
        if (visited->size() >= max_states) {
          stats.budget = true;
          continue;
        }
        const auto [it, inserted] = visited->emplace(
            succ, Par{task.state, lane_env[l], task.depth + 1});
        LIPLIB_ENSURE(inserted, "prove visited insert raced");
        if (task.depth + 1 <= bound) {
          queue.push_back(Task{&it->first, task.depth + 1});
        } else {
          stats.depth_cut = true;
        }
      }
    }
    // The whole env alphabet of these tasks is done; retire them.
    for (std::size_t t = 0; t < batch_tasks; ++t) {
      stats.depth_reached = std::max<std::uint64_t>(stats.depth_reached,
                                                    queue[head + t].depth);
      ++stats.states;
    }
    head += batch_tasks;
  }
  stats.drained = true;
  return stats;
}

std::string hex_encode(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    hex += digits[c >> 4];
    hex += digits[c & 15];
  }
  return hex;
}

std::vector<graph::NodeId> stopped_sink_nodes(const xir::Program& p,
                                              std::uint64_t mask) {
  std::vector<graph::NodeId> out;
  for (std::size_t s = 0; s < p.num_sinks(); ++s) {
    if (mask == kAllLanes || (s < 64 && ((mask >> s) & 1))) {
      out.push_back(p.sink_node[s]);
    }
  }
  return out;
}

/// Rebuilds the full counterexample record from the environment-mask
/// path: replays it scalar (verifying the recorded states), audits
/// per-cycle token conservation, blames the saturated certificate
/// cycle, and attaches the replayable greedy post-mortem bundle.
void finish_counterexample(const graph::Topology& topo,
                           const xir::ProgramRef& prog, const Layout& L,
                           const ChannelMap& cm,
                           const std::vector<std::uint64_t>& path_masks,
                           const ProveOptions& opts, ProveResult* r) {
  const xir::Program& p = *prog;
  Counterexample cex;
  cex.depth = path_masks.size();

  ScalarState st = initial_state(p, opts.worst_case_occupancy);
  Scratch scr;
  const bool audit_tokens = !p.strict && p.pessimistic;
  std::vector<std::size_t> tokens0(r->certificates.size(), 0);
  for (std::size_t c = 0; c < r->certificates.size(); ++c) {
    tokens0[c] = cycle_tokens(p, cm, r->certificates[c], st);
  }
  for (std::size_t i = 0; i < path_masks.size(); ++i) {
    scalar_step(p, &st, path_masks[i], &scr);
    CexStep step;
    step.cycle = i;
    step.stopped_sinks = stopped_sink_nodes(p, path_masks[i]);
    step.state = encode(L, st);
    cex.steps.push_back(std::move(step));
    if (audit_tokens) {
      for (std::size_t c = 0; c < r->certificates.size(); ++c) {
        if (cycle_tokens(p, cm, r->certificates[c], st) != tokens0[c]) {
          r->token_conservation_ok = false;  // a prover bug, not a design bug
        }
      }
    }
  }
  cex.dead_state = encode(L, st);

  // Blame: the first cycle that is stop-saturated in the dead state
  // under the most permissive environment — every hop channel's every
  // segment carries a back-pressured valid token.
  settle_state(p, st, 0, &scr);
  for (const CycleCertificate& cert : r->certificates) {
    bool saturated = true;
    for (graph::ChannelId c : cert.channels) {
      const auto segs =
          static_cast<std::uint32_t>(topo.channel(c).num_stations()) + 1;
      for (std::uint32_t i = 0; i < segs && saturated; ++i) {
        const std::uint32_t seg = cm.seg_begin[c] + i;
        saturated = scr.fwd[seg] && scr.stop[seg];
      }
      if (!saturated) break;
    }
    if (saturated) {
      cex.culprit_shells = cert.nodes;
      cex.culprit_channels = cert.channels;
      break;
    }
  }
  if (cex.culprit_shells.empty()) {
    for (const CycleCertificate& cert : r->certificates) {
      if (!cert.holds) {
        cex.culprit_shells = cert.nodes;
        cex.culprit_channels = cert.channels;
        break;
      }
    }
  }

  // Concrete reproduction: the watchdog-guarded greedy run of the same
  // design.  Its bundle is what `lidtool replay` consumes.
  xir::ScalarEngine eng(prog);
  if (opts.worst_case_occupancy) eng.saturate_stations();
  telemetry::WatchdogOptions wopts;
  wopts.worst_case_occupancy = opts.worst_case_occupancy;
  wopts.optimistic = !p.pessimistic;
  telemetry::Watchdog dog(wopts);
  dog.attach(eng);
  const std::uint64_t budget =
      graph::transient_bound(topo) + 3 * wopts.no_progress_threshold;
  telemetry::run_guarded(eng, dog, budget);
  if (dog.tripped()) {
    cex.greedy_reproduces = true;
    r->postmortem = dog.post_mortem();
  }
  r->counterexample = std::move(cex);
  r->verdict = Verdict::kCounterexample;
}

/// Walks a sliced-search parent chain back to the initial state.
std::vector<std::uint64_t> path_from_parents(
    const std::unordered_map<std::string, Par>& visited,
    const EnvChoices& env, const std::string* dead) {
  std::vector<std::uint64_t> rev;
  for (const std::string* cur = dead; cur != nullptr;) {
    const Par& par = visited.find(*cur)->second;
    if (par.parent == nullptr) break;
    rev.push_back(env.masks[par.env_idx]);
    cur = par.parent;
  }
  return {rev.rbegin(), rev.rend()};
}

/// Parses the mask path out of a formal::check_safety counterexample
/// (choices carry the kChoicePrefix labels the SkeletonModel emits).
std::vector<std::uint64_t> path_from_trace(const formal::CheckResult& cr) {
  std::vector<std::uint64_t> masks;
  for (const formal::TraceStep& s : cr.steps) {
    if (s.choice.empty()) continue;  // the initial step
    masks.push_back(std::stoull(s.choice.substr(
        std::string_view(kChoicePrefix).size())));
  }
  // The violation fires on the greedy successor edge of the last state:
  // the last state itself is the dead one, so the path above is already
  // complete.
  return masks;
}

}  // namespace
}  // namespace detail

int ProveResult::exit_code() const {
  switch (verdict) {
    case Verdict::kProved: return 0;
    case Verdict::kCounterexample: return 1;
    case Verdict::kUnknown: return 2;
  }
  return 2;
}

Json ProveResult::to_json(const graph::Topology& topo) const {
  auto node_list = [&](const std::vector<graph::NodeId>& ids) {
    Json arr = Json::array();
    for (graph::NodeId n : ids) {
      Json j = Json::object();
      j.set("id", static_cast<std::uint64_t>(n));
      j.set("name", topo.node(n).name);
      arr.push(std::move(j));
    }
    return arr;
  };
  auto channel_list = [&](const std::vector<graph::ChannelId>& ids) {
    Json arr = Json::array();
    for (graph::ChannelId c : ids) {
      const auto& ch = topo.channel(c);
      Json j = Json::object();
      j.set("id", static_cast<std::uint64_t>(c));
      j.set("from", topo.node(ch.from.node).name);
      j.set("to", topo.node(ch.to.node).name);
      arr.push(std::move(j));
    }
    return arr;
  };

  Json doc = Json::object();
  doc.set("schema", "liplib.prove/1");
  doc.set("verdict", verdict_name(verdict));
  doc.set("exit_code", exit_code());
  doc.set("method", method_name(method));
  doc.set("method_used", method_name(method_used));
  doc.set("worst_case_occupancy", worst_case_occupancy);
  doc.set("closed", closed);
  doc.set("induction_closed", induction_closed);
  doc.set("env_exhaustive", env_exhaustive);
  doc.set("states_explored", states_explored);
  doc.set("transitions", transitions);
  doc.set("depth_reached", depth_reached);
  doc.set("depth_bound", depth_bound);
  doc.set("token_conservation_ok", token_conservation_ok);
  doc.set("cycle_bound", cycle_bound);
  if (!note.empty()) doc.set("note", note);

  Json certs = Json::array();
  for (const CycleCertificate& c : certificates) {
    Json j = Json::object();
    j.set("nodes", node_list(c.nodes));
    j.set("channels", channel_list(c.channels));
    j.set("shells", static_cast<std::uint64_t>(c.shells));
    j.set("half_stations", static_cast<std::uint64_t>(c.half_stations));
    j.set("full_stations", static_cast<std::uint64_t>(c.full_stations));
    j.set("tokens", static_cast<std::uint64_t>(c.tokens));
    j.set("dead_threshold", static_cast<std::uint64_t>(c.dead_threshold));
    j.set("holds", c.holds);
    certs.push(std::move(j));
  }
  doc.set("certificates", std::move(certs));

  if (counterexample) {
    const Counterexample& cex = *counterexample;
    Json j = Json::object();
    j.set("depth", cex.depth);
    j.set("dead_state", detail::hex_encode(cex.dead_state));
    j.set("greedy_reproduces", cex.greedy_reproduces);
    j.set("culprit_shells", node_list(cex.culprit_shells));
    j.set("culprit_channels", channel_list(cex.culprit_channels));
    Json steps = Json::array();
    for (const CexStep& s : cex.steps) {
      Json sj = Json::object();
      sj.set("cycle", s.cycle);
      sj.set("stopped_sinks", node_list(s.stopped_sinks));
      sj.set("state", detail::hex_encode(s.state));
      steps.push(std::move(sj));
    }
    j.set("steps", std::move(steps));
    doc.set("counterexample", std::move(j));
  }
  if (postmortem) doc.set("postmortem", postmortem->to_json());
  return doc;
}

std::string ProveResult::to_string(const graph::Topology& topo) const {
  std::string out = "prove: ";
  out += verdict_name(verdict);
  out += " (method ";
  out += method_name(method_used);
  out += worst_case_occupancy ? ", worst-case occupancy" : ", from reset";
  out += ")\n";
  out += "  states explored: " + std::to_string(states_explored) +
         ", transitions: " + std::to_string(transitions);
  if (depth_bound != 0) {
    out += ", depth " + std::to_string(depth_reached) + "/" +
           std::to_string(depth_bound);
  }
  out += "\n";
  std::size_t failing = 0;
  for (const CycleCertificate& c : certificates) {
    if (!c.holds) ++failing;
  }
  out += "  cycle certificates: " + std::to_string(certificates.size()) +
         " (" + std::to_string(failing) + " failing)\n";
  for (const CycleCertificate& c : certificates) {
    if (c.holds) continue;
    out += "    cycle";
    for (graph::NodeId n : c.nodes) out += " " + topo.node(n).name;
    out += ": " + std::to_string(c.tokens) + " tokens >= threshold " +
           std::to_string(c.dead_threshold) + "\n";
  }
  if (counterexample) {
    out += "  deadlock after " + std::to_string(counterexample->depth) +
           " cycle(s); culprit shells:";
    for (graph::NodeId n : counterexample->culprit_shells) {
      out += " " + topo.node(n).name;
    }
    out += "\n";
    out += counterexample->greedy_reproduces
               ? "  greedy replay reproduces the deadlock "
                 "(post-mortem bundle attached)\n"
               : "  deadlock requires sink stop choices "
                 "(no greedy post-mortem)\n";
  }
  if (!note.empty()) out += "  note: " + note + "\n";
  return out;
}

ProveResult prove(const graph::Topology& topo, ProveOptions opts) {
  using detail::Par;
  using detail::SearchStats;

  const xir::ProgramRef prog = xir::lower(topo, opts.skeleton);
  const detail::Layout L(*prog);
  const detail::ChannelMap cm(*prog);
  const detail::EnvChoices env = detail::env_choices(*prog, opts.max_env_sinks);

  ProveResult r;
  r.method = opts.method;
  r.method_used = opts.method;
  r.worst_case_occupancy = opts.worst_case_occupancy;
  r.env_exhaustive = env.exhaustive;
  r.cycle_bound = graph::predict_throughput(topo).cycle_bound;
  r.depth_bound = opts.depth != 0 ? opts.depth
                                  : graph::transient_bound(topo) + 64;

  // The certificates are reported by every method (they double as the
  // lint LIP006 cross-check surface); the induction *proof* additionally
  // needs the variant protocol under pessimistic resolution, where a
  // cycle's resident token count is conserved.
  bool have_certs = true;
  try {
    r.certificates = detail::enumerate_certificates(
        *prog, opts.worst_case_occupancy, opts.max_cycles);
  } catch (const ApiError&) {
    have_certs = false;
  }
  const bool induction_sound = have_certs && !prog->strict && prog->pessimistic;
  bool certs_hold = have_certs;
  for (const CycleCertificate& c : r.certificates) certs_hold &= c.holds;

  auto append_note = [&](const std::string& n) {
    if (!r.note.empty()) r.note += "; ";
    r.note += n;
  };
  if (!have_certs) append_note("cycle enumeration budget exceeded");

  auto run_search = [&](std::uint64_t bound, Method used) {
    r.method_used = used;
    if (used == Method::kReachability && !opts.sliced_frontier) {
      // The scalar frontier: exhaustive BFS via formal::check_safety
      // over the Model adapter.
      const auto model = make_skeleton_model(topo, opts);
      const formal::CheckResult cr =
          formal::check_safety(*model, opts.max_states);
      r.states_explored = cr.states_explored;
      r.transitions = cr.transitions;
      if (!cr.ok && !cr.exhausted_budget) {
        r.depth_reached = cr.steps.empty() ? 0 : cr.steps.size() - 1;
        detail::finish_counterexample(topo, prog, L, cm,
                                      detail::path_from_trace(cr), opts, &r);
        return;
      }
      if (cr.ok) {
        r.closed = true;
        if (env.exhaustive) {
          r.verdict = Verdict::kProved;
        } else {
          append_note("environment not exhaustive (too many sinks)");
        }
      } else {
        append_note("state budget exhausted before closing the space");
      }
      return;
    }
    std::unordered_map<std::string, Par> visited;
    visited.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(opts.max_states, 1u << 16)));
    const SearchStats ss = detail::sliced_search(
        *prog, L, env, opts.worst_case_occupancy, opts.max_states, bound,
        &visited);
    r.states_explored = ss.states;
    r.transitions = ss.transitions;
    r.depth_reached = std::max(r.depth_reached, ss.depth_reached);
    if (ss.dead != nullptr) {
      r.depth_reached = ss.dead_depth;
      detail::finish_counterexample(
          topo, prog, L, cm, detail::path_from_parents(visited, env, ss.dead),
          opts, &r);
      return;
    }
    if (ss.drained && !ss.budget && !ss.depth_cut) {
      r.closed = true;
      if (env.exhaustive) {
        r.verdict = Verdict::kProved;
      } else {
        append_note("environment not exhaustive (too many sinks)");
      }
      return;
    }
    if (ss.budget) append_note("state budget exhausted before closing the space");
    if (ss.depth_cut) {
      append_note("no counterexample within depth " + std::to_string(bound));
    }
  };

  auto run_induction = [&] {
    r.method_used = Method::kInduction;
    if (!induction_sound) {
      if (have_certs) {
        append_note(prog->strict
                        ? "induction needs the variant protocol "
                          "(token conservation fails under kCarloniStrict)"
                        : "induction needs pessimistic stop resolution");
      }
      return;
    }
    if (certs_hold) {
      // Every simple cycle stays strictly below its latch threshold and
      // the count is invariant under every transition and environment:
      // an unbounded proof, no search needed.
      r.induction_closed = true;
      r.verdict = Verdict::kProved;
      return;
    }
    // A certificate fails: hunt the concrete reachable latch with the
    // bounded base case.
    run_search(r.depth_bound, Method::kInduction);
    if (r.verdict != Verdict::kCounterexample && r.verdict != Verdict::kProved) {
      append_note("induction certificate fails at the initial token count");
    }
  };

  switch (opts.method) {
    case Method::kReachability:
      run_search(~0ull, Method::kReachability);
      break;
    case Method::kBmc:
      run_search(r.depth_bound, Method::kBmc);
      break;
    case Method::kInduction:
      run_induction();
      break;
    case Method::kAuto:
      // Exhaustive reachability first (it yields minimal counterexamples
      // and exact state counts); fall back to the certificates when the
      // space or the environment alphabet is out of reach.
      if (env.exhaustive) {
        run_search(~0ull, Method::kReachability);
        if (r.verdict != Verdict::kUnknown) {
          r.method_used = Method::kReachability;
          break;
        }
      }
      run_induction();
      break;
  }

  // Token-conservation spot check on proved runs (counterexample paths
  // are audited in full while finishing): replay the greedy environment
  // over the transient and require every certificate count to hold
  // still.
  if (r.verdict == Verdict::kProved && induction_sound) {
    detail::ScalarState st =
        detail::initial_state(*prog, opts.worst_case_occupancy);
    detail::Scratch scr;
    std::vector<std::size_t> tokens0(r.certificates.size());
    for (std::size_t c = 0; c < r.certificates.size(); ++c) {
      tokens0[c] = detail::cycle_tokens(*prog, cm, r.certificates[c], st);
    }
    const std::uint64_t probe_cycles = graph::transient_bound(topo);
    for (std::uint64_t i = 0; i < probe_cycles; ++i) {
      detail::scalar_step(*prog, &st, 0, &scr);
      for (std::size_t c = 0; c < r.certificates.size(); ++c) {
        if (detail::cycle_tokens(*prog, cm, r.certificates[c], st) !=
            tokens0[c]) {
          r.token_conservation_ok = false;
        }
      }
    }
    if (!r.token_conservation_ok) {
      r.verdict = Verdict::kUnknown;  // a broken lemma voids the proof
      append_note("token conservation audit failed (prover bug)");
    }
  }
  return r;
}

}  // namespace liplib::prove
