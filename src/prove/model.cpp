// The scalar half of liplib::prove: the canonical state codec, the
// explicit transition function (a faithful replay of ScalarEngine::step
// over a detached state record, with the per-sink stop mask replacing
// time-indexed sink patterns), the formal::Model adapter, and the
// channel-cycle token certificates.

#include <algorithm>
#include <memory>

#include "internal.hpp"
#include "liplib/support/check.hpp"

namespace liplib::prove::detail {

Layout::Layout(const xir::Program& p) {
  n_pend = p.shell_br_seg.size();
  n_src = p.src_br_seg.size();
  n_st = p.num_stations();
  num_planes = n_pend + n_src + 5 * n_st;
  num_blocks = (num_planes + 63) / 64;
  key_bytes = num_blocks * 8;
}

ScalarState initial_state(const xir::Program& p, bool worst_case) {
  ScalarState st;
  st.pend.assign(p.shell_br_seg.size(), 1);
  st.src_pend.assign(p.src_br_seg.size(), 1);
  st.occ.assign(p.num_stations(), p.strict ? 1 : 0);
  st.v0.assign(p.num_stations(), 0);
  st.v1.assign(p.num_stations(), 0);
  st.sreg.assign(p.num_stations(), 0);
  if (worst_case) {
    for (std::size_t s = 0; s < p.num_stations(); ++s) {
      if (st.occ[s] == 0) st.occ[s] = 1;
      st.v0[s] = 1;
    }
  }
  return st;
}

namespace {

void set_bit(std::string* key, std::size_t plane, bool value) {
  if (value) {
    (*key)[plane >> 3] |= static_cast<char>(1u << (plane & 7));
  }
}

bool get_bit(const std::string& key, std::size_t plane) {
  return (static_cast<unsigned char>(key[plane >> 3]) >> (plane & 7)) & 1;
}

}  // namespace

std::string encode(const Layout& L, const ScalarState& st) {
  std::string key(L.key_bytes, '\0');
  for (std::size_t b = 0; b < L.n_pend; ++b) {
    set_bit(&key, L.pend_plane(b), st.pend[b] != 0);
  }
  for (std::size_t b = 0; b < L.n_src; ++b) {
    set_bit(&key, L.src_plane(b), st.src_pend[b] != 0);
  }
  for (std::size_t s = 0; s < L.n_st; ++s) {
    set_bit(&key, L.occ1_plane(s), st.occ[s] >= 1);
    set_bit(&key, L.occ2_plane(s), st.occ[s] >= 2);
    // Mask slot validity by occupancy: unoccupied slots are not state.
    set_bit(&key, L.v0_plane(s), st.occ[s] >= 1 && st.v0[s] != 0);
    set_bit(&key, L.v1_plane(s), st.occ[s] >= 2 && st.v1[s] != 0);
    set_bit(&key, L.sreg_plane(s), st.sreg[s] != 0);
  }
  return key;
}

void decode(const Layout& L, const std::string& key, ScalarState* st) {
  LIPLIB_EXPECT(key.size() == L.key_bytes, "prove state key of wrong size");
  st->pend.assign(L.n_pend, 0);
  st->src_pend.assign(L.n_src, 0);
  st->occ.assign(L.n_st, 0);
  st->v0.assign(L.n_st, 0);
  st->v1.assign(L.n_st, 0);
  st->sreg.assign(L.n_st, 0);
  for (std::size_t b = 0; b < L.n_pend; ++b) {
    st->pend[b] = get_bit(key, L.pend_plane(b)) ? 1 : 0;
  }
  for (std::size_t b = 0; b < L.n_src; ++b) {
    st->src_pend[b] = get_bit(key, L.src_plane(b)) ? 1 : 0;
  }
  for (std::size_t s = 0; s < L.n_st; ++s) {
    st->occ[s] = static_cast<std::uint8_t>(
        (get_bit(key, L.occ1_plane(s)) ? 1 : 0) +
        (get_bit(key, L.occ2_plane(s)) ? 1 : 0));
    st->v0[s] = get_bit(key, L.v0_plane(s)) ? 1 : 0;
    st->v1[s] = get_bit(key, L.v1_plane(s)) ? 1 : 0;
    st->sreg[s] = get_bit(key, L.sreg_plane(s)) ? 1 : 0;
  }
}

std::string describe_state(const xir::Program& p, const ScalarState& st) {
  std::string out = "pend:";
  for (std::uint8_t b : st.pend) out += b ? '1' : '0';
  out += " src:";
  for (std::uint8_t b : st.src_pend) out += b ? '1' : '0';
  out += " st:[";
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    if (s > 0) out += ',';
    if (st.occ[s] == 0) {
      out += '-';
      continue;
    }
    out += static_cast<char>('0' + st.occ[s]);
    if (st.v0[s]) out += 'v';
    if (st.occ[s] > 1 && st.v1[s]) out += 'v';
    if (st.sreg[s]) out += '!';
  }
  out += ']';
  return out;
}

namespace {

bool sink_stopped(std::uint64_t env_mask, std::size_t sink) {
  if (env_mask == ~0ull) return true;  // "all sinks stop", any sink count
  return sink < 64 && ((env_mask >> sink) & 1) != 0;
}

bool shell_ready(const xir::Program& p, const ScalarState& st,
                 const Scratch& scr, std::size_t k) {
  for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
       ++i) {
    if (!scr.fwd[p.shell_in_seg[i]]) return false;
  }
  for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
       ++b) {
    const bool stopped = scr.stop[p.shell_br_seg[b]] != 0;
    if (p.strict) {
      if (stopped) return false;
    } else if (stopped && st.pend[b]) {
      return false;
    }
  }
  return true;
}

// One settle-unit evaluation; returns whether a stop wire changed.
bool eval_settle_unit(const xir::Program& p, const ScalarState& st,
                      Scratch* scr, std::uint32_t unit) {
  bool changed = false;
  if (unit < p.num_stations()) {
    const std::size_t s = unit;
    const bool front_valid = st.occ[s] > 0 && st.v0[s];
    const bool s_eff = p.strict ? (scr->stop[p.st_out[s]] != 0)
                                : (scr->stop[p.st_out[s]] && front_valid);
    const std::uint8_t up = (st.occ[s] > 0 && s_eff) ? 1 : 0;
    if (scr->stop[p.st_in[s]] != up) {
      scr->stop[p.st_in[s]] = up;
      changed = true;
    }
  } else {
    const std::size_t k = unit - p.num_stations();
    const bool stalled = !shell_ready(p, st, *scr, k);
    for (std::uint32_t i = p.shell_in_begin[k]; i < p.shell_in_begin[k + 1];
         ++i) {
      const std::uint32_t in = p.shell_in_seg[i];
      const std::uint8_t up = (stalled && scr->fwd[in]) ? 1 : 0;
      if (scr->stop[in] != up) {
        scr->stop[in] = up;
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace

void settle_state(const xir::Program& p, const ScalarState& st,
                  std::uint64_t env_mask, Scratch* scr) {
  // Phase 1: forward validity.
  scr->fwd.assign(p.num_segments, 0);
  for (std::size_t b = 0; b < p.shell_br_seg.size(); ++b) {
    scr->fwd[p.shell_br_seg[b]] = st.pend[b];
  }
  for (std::size_t b = 0; b < p.src_br_seg.size(); ++b) {
    scr->fwd[p.src_br_seg[b]] = st.src_pend[b];
  }
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    scr->fwd[p.st_out[s]] = (st.occ[s] > 0 && st.v0[s]) ? 1 : 0;
  }

  // Phase 2: stops (the environment's sink choice replaces the engines'
  // time-indexed sink patterns; everything else mirrors
  // ScalarEngine::settle_stops).
  const std::uint8_t init = p.pessimistic ? 1 : 0;
  scr->stop.assign(p.num_segments, init);
  for (std::size_t s = 0; s < p.num_sinks(); ++s) {
    scr->stop[p.sink_seg[s]] = sink_stopped(env_mask, s) ? 1 : 0;
  }
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    if (!p.st_half[s]) scr->stop[p.st_in[s]] = st.sreg[s];
  }
  for (std::uint32_t unit : p.schedule.order) {
    eval_settle_unit(p, st, scr, unit);
  }
  if (!p.schedule.iterate.empty()) {
    const std::size_t guard = 2 * scr->stop.size() + 4;
    std::size_t sweeps = 0;
    bool changed = true;
    while (changed) {
      LIPLIB_ENSURE(++sweeps <= guard, "stop fixpoint failed to converge");
      changed = false;
      for (std::uint32_t unit : p.schedule.iterate) {
        changed = eval_settle_unit(p, st, scr, unit) || changed;
      }
    }
  }
}

StepOut scalar_step(const xir::Program& p, ScalarState* st,
                    std::uint64_t env_mask, Scratch* scr) {
  settle_state(p, *st, env_mask, scr);

  StepOut out;
  for (std::uint8_t f : scr->fwd) {
    if (f) {
      out.pending = true;
      break;
    }
  }

  // Phase 3: clock edge (mirrors ScalarEngine::step).
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    const bool fire = shell_ready(p, *st, *scr, k);
    for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
         ++b) {
      if (st->pend[b] && !scr->stop[p.shell_br_seg[b]]) st->pend[b] = 0;
    }
    if (fire) {
      for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
           ++b) {
        LIPLIB_ENSURE(st->pend[b] == 0, "prove shell fired while pending");
        st->pend[b] = 1;
      }
      out.fired = true;
    }
  }
  for (std::size_t s = 0; s < p.num_stations(); ++s) {
    const bool in_valid = scr->fwd[p.st_in[s]] != 0;
    const bool front_valid = st->occ[s] > 0 && st->v0[s];
    const bool s_eff = p.strict ? (scr->stop[p.st_out[s]] != 0)
                                : (scr->stop[p.st_out[s]] && front_valid);
    const bool consumed = st->occ[s] > 0 && !s_eff;
    if (!p.st_half[s]) {
      const bool accept = !st->sreg[s] && (p.strict || in_valid);
      if (consumed) {
        st->v0[s] = st->v1[s];
        --st->occ[s];
      }
      if (accept) {
        LIPLIB_ENSURE(st->occ[s] < 2, "prove full station overflow");
        (st->occ[s] == 0 ? st->v0[s] : st->v1[s]) = in_valid ? 1 : 0;
        ++st->occ[s];
      }
      st->sreg[s] = (st->occ[s] == 2) ? 1 : 0;
    } else {
      const bool stop_up = st->occ[s] > 0 && s_eff;
      const bool accept = !stop_up && (p.strict || in_valid);
      if (consumed) st->occ[s] = 0;
      if (accept) {
        LIPLIB_ENSURE(st->occ[s] == 0, "prove half station overflow");
        st->v0[s] = in_valid ? 1 : 0;
        st->occ[s] = 1;
      }
    }
  }
  for (std::size_t s = 0; s < p.num_sources(); ++s) {
    bool all_clear = true;
    for (std::uint32_t b = p.src_br_begin[s]; b < p.src_br_begin[s + 1]; ++b) {
      if (st->src_pend[b] && !scr->stop[p.src_br_seg[b]]) st->src_pend[b] = 0;
      if (st->src_pend[b]) all_clear = false;
    }
    if (all_clear) {  // always-ready source reloads immediately
      for (std::uint32_t b = p.src_br_begin[s]; b < p.src_br_begin[s + 1];
           ++b) {
        st->src_pend[b] = 1;
      }
    }
  }
  return out;
}

EnvChoices env_choices(const xir::Program& p, std::size_t max_env_sinks) {
  EnvChoices env;
  const std::size_t n = p.num_sinks();
  if (n <= max_env_sinks && n < 64) {
    const std::uint64_t count = 1ull << n;
    env.masks.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t m = 0; m < count; ++m) env.masks.push_back(m);
    env.exhaustive = true;
  } else {
    env.masks = {0, ~0ull};  // the two extreme environments only
    env.exhaustive = false;
  }
  return env;
}

ChannelMap::ChannelMap(const xir::Program& p) {
  const auto& channels = p.topo.channels();
  seg_begin.resize(channels.size());
  st_begin.resize(channels.size());
  branch_of_channel.assign(channels.size(), npos32);
  std::uint32_t seg = 0;
  std::uint32_t st = 0;
  std::vector<std::uint32_t> seg_to_channel(p.num_segments, npos32);
  for (std::size_t c = 0; c < channels.size(); ++c) {
    seg_begin[c] = seg;
    st_begin[c] = st;
    const auto n = static_cast<std::uint32_t>(channels[c].num_stations());
    for (std::uint32_t i = 0; i <= n; ++i) seg_to_channel[seg + i] = static_cast<std::uint32_t>(c);
    seg += n + 1;
    st += n;
  }
  LIPLIB_ENSURE(seg == p.num_segments && st == p.num_stations(),
                "prove channel map does not cover the program");
  for (std::size_t k = 0; k < p.num_shells(); ++k) {
    for (std::uint32_t b = p.shell_br_begin[k]; b < p.shell_br_begin[k + 1];
         ++b) {
      branch_of_channel[seg_to_channel[p.shell_br_seg[b]]] = b;
    }
  }
}

std::vector<CycleCertificate> enumerate_certificates(const xir::Program& p,
                                                     bool worst_case,
                                                     std::size_t max_cycles) {
  const graph::Topology& topo = p.topo;
  // Process->process channel adjacency (channel-id order => deterministic
  // enumeration order).
  std::vector<std::vector<std::pair<graph::NodeId, graph::ChannelId>>> adj(
      topo.nodes().size());
  for (std::size_t c = 0; c < topo.channels().size(); ++c) {
    const auto& ch = topo.channel(c);
    if (topo.node(ch.from.node).kind == graph::NodeKind::kProcess &&
        topo.node(ch.to.node).kind == graph::NodeKind::kProcess) {
      adj[ch.from.node].emplace_back(ch.to.node, c);
    }
  }

  std::vector<CycleCertificate> certs;
  std::vector<graph::NodeId> path_nodes;
  std::vector<graph::ChannelId> path_channels;
  std::vector<std::uint8_t> on_path(topo.nodes().size(), 0);

  auto record = [&](graph::ChannelId closing) {
    if (certs.size() >= max_cycles) {
      throw ApiError("prove: cycle enumeration budget of " +
                     std::to_string(max_cycles) + " cycles exceeded");
    }
    CycleCertificate cert;
    cert.nodes = path_nodes;
    cert.channels = path_channels;
    cert.channels.push_back(closing);
    cert.shells = cert.nodes.size();
    for (graph::ChannelId c : cert.channels) {
      cert.half_stations += topo.channel(c).num_half();
      cert.full_stations += topo.channel(c).num_full();
    }
    cert.dead_threshold =
        cert.shells + cert.half_stations + 2 * cert.full_stations;
    cert.tokens = cert.shells +
                  (worst_case ? cert.half_stations + cert.full_stations : 0);
    cert.holds = cert.tokens < cert.dead_threshold;
    certs.push_back(std::move(cert));
  };

  // Johnson-style: enumerate each simple cycle once, rooted at its
  // smallest node id (DFS only visits nodes >= the root).
  auto dfs = [&](auto&& self, graph::NodeId u, graph::NodeId root) -> void {
    for (const auto& [v, c] : adj[u]) {
      if (v == root) {
        record(c);
      } else if (v > root && !on_path[v]) {
        on_path[v] = 1;
        path_nodes.push_back(v);
        path_channels.push_back(c);
        self(self, v, root);
        path_channels.pop_back();
        path_nodes.pop_back();
        on_path[v] = 0;
      }
    }
  };
  for (graph::NodeId s = 0; s < topo.nodes().size(); ++s) {
    if (topo.node(s).kind != graph::NodeKind::kProcess) continue;
    on_path[s] = 1;
    path_nodes.assign(1, s);
    path_channels.clear();
    dfs(dfs, s, s);
    on_path[s] = 0;
  }
  return certs;
}

std::size_t cycle_tokens(const xir::Program& p, const ChannelMap& cm,
                         const CycleCertificate& cert, const ScalarState& st) {
  std::size_t tokens = 0;
  for (graph::ChannelId c : cert.channels) {
    const std::uint32_t b = cm.branch_of_channel[c];
    LIPLIB_ENSURE(b != ChannelMap::npos32,
                  "prove cycle channel has no shell branch");
    tokens += st.pend[b] ? 1 : 0;
    const auto n =
        static_cast<std::uint32_t>(p.topo.channel(c).num_stations());
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t s = cm.st_begin[c] + i;
      if (st.occ[s] >= 1 && st.v0[s]) ++tokens;
      if (st.occ[s] >= 2 && st.v1[s]) ++tokens;
    }
  }
  return tokens;
}

namespace {

/// The whole-skeleton transition system as a formal::Model — the scalar
/// frontier of the prover, and the oracle the bit-sliced frontier is
/// differentially tested against.
class SkeletonModelImpl final : public SkeletonModel {
 public:
  SkeletonModelImpl(xir::ProgramRef prog, const ProveOptions& opts)
      : prog_(std::move(prog)),
        layout_(*prog_),
        env_(env_choices(*prog_, opts.max_env_sinks)),
        worst_case_(opts.worst_case_occupancy) {}

  std::string initial() const override {
    return encode(layout_, initial_state(*prog_, worst_case_));
  }

  std::vector<formal::Succ> successors(const std::string& state) const override {
    std::vector<formal::Succ> out;
    out.reserve(env_.masks.size());
    for (const std::uint64_t mask : env_.masks) {
      decode(layout_, state, &scratch_state_);
      const StepOut so = scalar_step(*prog_, &scratch_state_, mask, &scratch_);
      formal::Succ succ;
      succ.state = encode(layout_, scratch_state_);
      succ.choice = kChoicePrefix + std::to_string(mask);
      // Dead-state monitor on the greedy choice: a state that maps to
      // itself with no sink stopping, no shell firing and valid tokens
      // pending is frozen forever (stops only restrict motion).
      if (mask == 0 && !so.fired && so.pending && prog_->num_shells() > 0 &&
          succ.state == state) {
        succ.violation = kDeadlockViolation;
      }
      out.push_back(std::move(succ));
    }
    return out;
  }

  std::string describe(const std::string& state) const override {
    decode(layout_, state, &scratch_state_);
    return describe_state(*prog_, scratch_state_);
  }

  std::uint64_t num_env_choices() const override { return env_.masks.size(); }
  bool env_exhaustive() const override { return env_.exhaustive; }

 private:
  xir::ProgramRef prog_;
  Layout layout_;
  EnvChoices env_;
  bool worst_case_ = false;
  mutable ScalarState scratch_state_;
  mutable Scratch scratch_;
};

}  // namespace

}  // namespace liplib::prove::detail

namespace liplib::prove {

std::unique_ptr<SkeletonModel> make_skeleton_model(const graph::Topology& topo,
                                                   const ProveOptions& opts) {
  return std::make_unique<detail::SkeletonModelImpl>(
      xir::lower(topo, opts.skeleton), opts);
}

std::vector<CycleCertificate> cycle_certificates(const graph::Topology& topo,
                                                 const ProveOptions& opts) {
  const xir::ProgramRef prog = xir::lower(topo, opts.skeleton);
  return detail::enumerate_certificates(*prog, opts.worst_case_occupancy,
                                        opts.max_cycles);
}

}  // namespace liplib::prove
