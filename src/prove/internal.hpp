// src/prove/internal.hpp
//
// Shared internals of liplib::prove: the canonical protocol-state codec,
// the scalar transition function, the environment-choice enumeration and
// the per-cycle token bookkeeping.  model.cpp implements them; engine.cpp
// drives the searches over them.
//
// Canonical state encoding: the protocol state of a lowered program is a
// fixed set of bit "planes" — one per shell out-branch pend, source
// branch pend, and five per station (occ>=1, occ>=2, v0 masked by
// occupancy, v1 masked by occupancy, registered stop) — in the exact
// plane order SlicedEngine::analyze uses for its repeat keys.  A state
// string is those planes bit-packed little-endian, padded to whole
// 64-bit blocks, so the bit-sliced frontier can load/extract 64 states
// with one 64x64 transpose per block and the scalar stepper produces
// byte-identical keys.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liplib/prove/prove.hpp"
#include "liplib/xir/xir.hpp"

namespace liplib::prove::detail {

inline constexpr std::uint64_t kAllLanes = ~0ull;

/// Plane layout of a lowered program's canonical state.
struct Layout {
  std::size_t n_pend = 0;      ///< shell out-branch pend planes
  std::size_t n_src = 0;       ///< source branch pend planes
  std::size_t n_st = 0;        ///< stations (5 planes each)
  std::size_t num_planes = 0;  ///< n_pend + n_src + 5*n_st
  std::size_t num_blocks = 0;  ///< ceil(num_planes / 64)
  std::size_t key_bytes = 0;   ///< num_blocks * 8

  explicit Layout(const xir::Program& p);

  std::size_t pend_plane(std::size_t b) const { return b; }
  std::size_t src_plane(std::size_t b) const { return n_pend + b; }
  std::size_t occ1_plane(std::size_t s) const { return n_pend + n_src + s; }
  std::size_t occ2_plane(std::size_t s) const {
    return n_pend + n_src + n_st + s;
  }
  std::size_t v0_plane(std::size_t s) const {
    return n_pend + n_src + 2 * n_st + s;
  }
  std::size_t v1_plane(std::size_t s) const {
    return n_pend + n_src + 3 * n_st + s;
  }
  std::size_t sreg_plane(std::size_t s) const {
    return n_pend + n_src + 4 * n_st + s;
  }
};

/// Decoded protocol state (the arena arrays of xir::ScalarEngine).
struct ScalarState {
  std::vector<std::uint8_t> pend;      ///< per shell out branch
  std::vector<std::uint8_t> src_pend;  ///< per source branch
  std::vector<std::uint8_t> occ;       ///< per station: 0, 1, 2
  std::vector<std::uint8_t> v0;
  std::vector<std::uint8_t> v1;
  std::vector<std::uint8_t> sreg;
};

/// Combinational scratch of one settle (not part of the state).
struct Scratch {
  std::vector<std::uint8_t> fwd;   ///< per segment
  std::vector<std::uint8_t> stop;  ///< per segment
};

/// Reset state (shell outputs valid, stations per policy), optionally
/// saturated to worst-case occupancy — exactly ScalarEngine's
/// constructor + saturate_stations().
ScalarState initial_state(const xir::Program& p, bool worst_case);

/// Canonical encoding (occupancy-masked validity, zero tail padding).
std::string encode(const Layout& L, const ScalarState& st);
void decode(const Layout& L, const std::string& key, ScalarState* st);

/// Human rendering of a state for traces: "pend:.. src:.. st:[..]".
std::string describe_state(const xir::Program& p, const ScalarState& st);

/// Phase 1 (forward validity) + phase 2 (stop settle) of one cycle under
/// the given per-sink stop mask (bit s = sink s asserts stop; the mask
/// ~0 means "all sinks stop" regardless of sink count).  Leaves the
/// settled fwd/stop network in `scr`.
void settle_state(const xir::Program& p, const ScalarState& st,
                  std::uint64_t env_mask, Scratch* scr);

struct StepOut {
  bool fired = false;    ///< some shell fired this cycle
  bool pending = false;  ///< some segment carried forward validity
};

/// One full transition (settle + clock edge) in place.
StepOut scalar_step(const xir::Program& p, ScalarState* st,
                    std::uint64_t env_mask, Scratch* scr);

/// The environment alphabet: per-sink stop masks, exhaustive up to
/// 2^max_env_sinks choices, otherwise just {greedy, all-stop}.
struct EnvChoices {
  std::vector<std::uint64_t> masks;  ///< masks[0] == 0 (greedy) always
  bool exhaustive = true;
};
EnvChoices env_choices(const xir::Program& p, std::size_t max_env_sinks);

/// Channel-indexed views of the CSR arrays (segments and stations are
/// laid out channel-major by xir::lower).
struct ChannelMap {
  std::vector<std::uint32_t> seg_begin;  ///< first segment of channel c
  std::vector<std::uint32_t> st_begin;   ///< first station of channel c
  /// Shell out-branch index driving channel c (npos32 when the producer
  /// is a source).
  std::vector<std::uint32_t> branch_of_channel;
  static constexpr std::uint32_t npos32 = ~0u;

  explicit ChannelMap(const xir::Program& p);
};

/// Enumerates the simple directed channel-cycles through process nodes
/// (tracking the specific channel of every hop) and builds their token
/// certificates.  Deterministic order; throws ApiError beyond
/// `max_cycles`.
std::vector<CycleCertificate> enumerate_certificates(const xir::Program& p,
                                                     bool worst_case,
                                                     std::size_t max_cycles);

/// Valid tokens currently resident on a certificate's cycle registers.
std::size_t cycle_tokens(const xir::Program& p, const ChannelMap& cm,
                         const CycleCertificate& cert, const ScalarState& st);

/// Violation string the SkeletonModel monitor emits on a dead state.
inline constexpr const char* kDeadlockViolation =
    "deadlock: stop-saturated fixed point (no shell can ever fire)";

/// Environment-choice label prefix used in formal::Succ::choice.
inline constexpr const char* kChoicePrefix = "sinks_stopped=";

}  // namespace liplib::prove::detail
