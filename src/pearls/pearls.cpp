#include "liplib/pearls/pearls.hpp"

#include <deque>

namespace liplib::pearls {

namespace {

/// Common base for small stateful pearls: stores the initial output and
/// implements arity bookkeeping for the 1-in 1-out case.
class UnaryPearl : public lip::Pearl {
 public:
  explicit UnaryPearl(std::uint64_t initial) : init_(initial) {}
  std::size_t num_inputs() const override { return 1; }
  std::size_t num_outputs() const override { return 1; }
  std::uint64_t initial_output(std::size_t) const override { return init_; }

 protected:
  std::uint64_t init_;
};

class AccumulatorPearl final : public UnaryPearl {
 public:
  using UnaryPearl::UnaryPearl;
  void step(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) override {
    sum_ += in[0];
    out[0] = sum_;
  }
  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<AccumulatorPearl>(init_);
  }

 private:
  std::uint64_t sum_ = 0;
};

class DelayPearl final : public UnaryPearl {
 public:
  DelayPearl(std::size_t depth, std::uint64_t initial)
      : UnaryPearl(initial), depth_(depth), line_(depth, 0) {}
  void step(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) override {
    if (line_.empty()) {
      out[0] = in[0];
      return;
    }
    out[0] = line_.front();
    line_.pop_front();
    line_.push_back(in[0]);
  }
  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<DelayPearl>(depth_, init_);
  }

 private:
  std::size_t depth_;
  std::deque<std::uint64_t> line_;
};

class FirPearl final : public UnaryPearl {
 public:
  FirPearl(std::vector<std::uint64_t> taps, std::uint64_t initial)
      : UnaryPearl(initial), taps_(std::move(taps)), hist_(taps_.size(), 0) {
    LIPLIB_EXPECT(!taps_.empty(), "FIR pearl needs at least one tap");
  }
  void step(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) override {
    hist_.pop_back();
    hist_.push_front(in[0]);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < taps_.size(); ++i) acc += taps_[i] * hist_[i];
    out[0] = acc;
  }
  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<FirPearl>(taps_, init_);
  }

 private:
  std::vector<std::uint64_t> taps_;
  std::deque<std::uint64_t> hist_;
};

class LeakyIntegratorPearl final : public UnaryPearl {
 public:
  LeakyIntegratorPearl(std::uint64_t num, std::uint64_t den,
                       std::uint64_t initial)
      : UnaryPearl(initial), num_(num), den_(den) {
    LIPLIB_EXPECT(den != 0, "leaky integrator with zero denominator");
  }
  void step(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) override {
    y_ = (y_ * num_) / den_ + in[0];
    out[0] = y_;
  }
  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<LeakyIntegratorPearl>(num_, den_, init_);
  }

 private:
  std::uint64_t num_;
  std::uint64_t den_;
  std::uint64_t y_ = 0;
};

class GeneratorPearl final : public lip::Pearl {
 public:
  GeneratorPearl(std::uint64_t seed, std::uint64_t stride)
      : seed_(seed), stride_(stride), next_(seed + stride) {}
  std::size_t num_inputs() const override { return 0; }
  std::size_t num_outputs() const override { return 1; }
  std::uint64_t initial_output(std::size_t) const override { return seed_; }
  void step(std::span<const std::uint64_t>,
            std::span<std::uint64_t> out) override {
    out[0] = next_;
    next_ += stride_;
  }
  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<GeneratorPearl>(seed_, stride_);
  }

 private:
  std::uint64_t seed_;
  std::uint64_t stride_;
  std::uint64_t next_;
};

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::unique_ptr<lip::Pearl> make_identity(std::uint64_t initial) {
  return std::make_unique<LambdaPearl>(
      1, 1,
      [](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = in[0];
      },
      std::vector<std::uint64_t>{initial});
}

std::unique_ptr<lip::Pearl> make_add_const(std::uint64_t addend,
                                           std::uint64_t initial) {
  return std::make_unique<LambdaPearl>(
      1, 1,
      [addend](std::span<const std::uint64_t> in,
               std::span<std::uint64_t> out) { out[0] = in[0] + addend; },
      std::vector<std::uint64_t>{initial});
}

std::unique_ptr<lip::Pearl> make_adder(std::uint64_t initial) {
  return std::make_unique<LambdaPearl>(
      2, 1,
      [](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = in[0] + in[1];
      },
      std::vector<std::uint64_t>{initial});
}

std::unique_ptr<lip::Pearl> make_multiplier(std::uint64_t initial) {
  return std::make_unique<LambdaPearl>(
      2, 1,
      [](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = in[0] * in[1];
      },
      std::vector<std::uint64_t>{initial});
}

std::unique_ptr<lip::Pearl> make_max(std::uint64_t initial) {
  return std::make_unique<LambdaPearl>(
      2, 1,
      [](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = in[0] > in[1] ? in[0] : in[1];
      },
      std::vector<std::uint64_t>{initial});
}

std::unique_ptr<lip::Pearl> make_fork2(std::uint64_t initial) {
  return std::make_unique<LambdaPearl>(
      1, 2,
      [](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = in[0];
        out[1] = in[0];
      },
      std::vector<std::uint64_t>{initial, initial});
}

std::unique_ptr<lip::Pearl> make_accumulator(std::uint64_t initial) {
  return std::make_unique<AccumulatorPearl>(initial);
}

std::unique_ptr<lip::Pearl> make_delay(std::size_t depth,
                                       std::uint64_t initial) {
  return std::make_unique<DelayPearl>(depth, initial);
}

std::unique_ptr<lip::Pearl> make_fir(std::vector<std::uint64_t> taps,
                                     std::uint64_t initial) {
  return std::make_unique<FirPearl>(std::move(taps), initial);
}

std::unique_ptr<lip::Pearl> make_leaky_integrator(std::uint64_t num,
                                                  std::uint64_t den,
                                                  std::uint64_t initial) {
  return std::make_unique<LeakyIntegratorPearl>(num, den, initial);
}

std::unique_ptr<lip::Pearl> make_bit_mixer(std::uint64_t initial) {
  return std::make_unique<LambdaPearl>(
      1, 1,
      [](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = mix64(in[0]);
      },
      std::vector<std::uint64_t>{initial});
}

std::unique_ptr<lip::Pearl> make_generator(std::uint64_t seed,
                                           std::uint64_t stride) {
  return std::make_unique<GeneratorPearl>(seed, stride);
}

std::unique_ptr<lip::Pearl> make_butterfly(std::uint64_t initial0,
                                           std::uint64_t initial1) {
  return std::make_unique<LambdaPearl>(
      2, 2,
      [](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = in[0] + in[1];
        out[1] = in[0] - in[1];
      },
      std::vector<std::uint64_t>{initial0, initial1});
}

std::unique_ptr<lip::Pearl> make_cordic_stage(unsigned k,
                                              std::uint64_t initial0,
                                              std::uint64_t initial1) {
  LIPLIB_EXPECT(k < 64, "CORDIC shift out of range");
  return std::make_unique<LambdaPearl>(
      2, 2,
      [k](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = in[0] - (in[1] >> k);
        out[1] = in[1] + (in[0] >> k);
      },
      std::vector<std::uint64_t>{initial0, initial1});
}

namespace {

class MacPearl final : public lip::Pearl {
 public:
  explicit MacPearl(std::uint64_t initial) : init_(initial) {}
  std::size_t num_inputs() const override { return 2; }
  std::size_t num_outputs() const override { return 1; }
  std::uint64_t initial_output(std::size_t) const override { return init_; }
  void step(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) override {
    acc_ += in[0] * in[1];
    out[0] = acc_;
  }
  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<MacPearl>(init_);
  }

 private:
  std::uint64_t init_;
  std::uint64_t acc_ = 0;
};

class SequenceTaggerPearl final : public UnaryPearl {
 public:
  using UnaryPearl::UnaryPearl;
  void step(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) override {
    out[0] = (in[0] & 0x00ffffffffffffffull) | (count_ << 56);
    count_ = (count_ + 1) & 0xff;
  }
  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<SequenceTaggerPearl>(init_);
  }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace

std::unique_ptr<lip::Pearl> make_mac(std::uint64_t initial) {
  return std::make_unique<MacPearl>(initial);
}

std::unique_ptr<lip::Pearl> make_saturate(std::uint64_t cap,
                                          std::uint64_t initial) {
  return std::make_unique<LambdaPearl>(
      1, 1,
      [cap](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = in[0] > cap ? cap : in[0];
      },
      std::vector<std::uint64_t>{initial});
}

std::unique_ptr<lip::Pearl> make_sequence_tagger(std::uint64_t initial) {
  return std::make_unique<SequenceTaggerPearl>(initial);
}

const std::vector<std::string>& unary_pearl_names() {
  static const std::vector<std::string> names = {
      "identity", "add_const", "accumulator", "delay",   "fir",
      "leaky",    "mixer",     "saturate",    "tagger",
  };
  return names;
}

std::unique_ptr<lip::Pearl> make_by_name(const std::string& name,
                                         std::uint64_t salt) {
  if (name == "identity") return make_identity(salt & 0xff);
  if (name == "add_const") return make_add_const(1 + salt % 7, salt & 0xff);
  if (name == "accumulator") return make_accumulator(salt & 0xff);
  if (name == "delay") return make_delay(1 + salt % 3, salt & 0xff);
  if (name == "fir") {
    return make_fir({1 + salt % 3, 2, 1 + salt % 5}, salt & 0xff);
  }
  if (name == "leaky") return make_leaky_integrator(3, 4, salt & 0xff);
  if (name == "mixer") return make_bit_mixer(salt & 0xff);
  if (name == "saturate") return make_saturate(1000 + salt % 5000, salt & 0xff);
  if (name == "tagger") return make_sequence_tagger(salt & 0xff);
  throw ApiError("unknown pearl name: " + name);
}

}  // namespace liplib::pearls
