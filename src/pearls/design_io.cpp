#include "liplib/pearls/design_io.hpp"

#include <sstream>

#include "liplib/pearls/pearls.hpp"
#include "liplib/pearls/video.hpp"
#include "liplib/support/check.hpp"

namespace liplib::pearls {

namespace {

/// "name(1,2,3)" -> {"name", {1,2,3}};  "name" -> {"name", {}}.
struct Spec {
  std::string name;
  std::vector<std::uint64_t> args;
};

Spec parse_spec(const std::string& text) {
  Spec spec;
  const auto open = text.find('(');
  if (open == std::string::npos) {
    spec.name = text;
    LIPLIB_EXPECT(!spec.name.empty(), "empty spec");
    return spec;
  }
  spec.name = text.substr(0, open);
  LIPLIB_EXPECT(!spec.name.empty(), "spec with empty name: " + text);
  LIPLIB_EXPECT(text.back() == ')', "spec missing ')': " + text);
  const std::string inner = text.substr(open + 1, text.size() - open - 2);
  std::uint64_t value = 0;
  bool in_number = false;
  for (char c : inner) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      in_number = true;
    } else if (c == ',') {
      LIPLIB_EXPECT(in_number, "empty argument in spec: " + text);
      spec.args.push_back(value);
      value = 0;
      in_number = false;
    } else {
      throw ApiError("bad character '" + std::string(1, c) + "' in spec: " +
                     text);
    }
  }
  if (in_number) spec.args.push_back(value);
  LIPLIB_EXPECT(!(inner.size() && !in_number && spec.args.empty()),
                "malformed arguments in spec: " + text);
  return spec;
}

std::uint64_t arg_or(const Spec& s, std::size_t i, std::uint64_t dflt) {
  return i < s.args.size() ? s.args[i] : dflt;
}

void expect_args(const Spec& s, std::size_t lo, std::size_t hi) {
  LIPLIB_EXPECT(s.args.size() >= lo && s.args.size() <= hi,
                "spec " + s.name + " takes " + std::to_string(lo) + ".." +
                    std::to_string(hi) + " arguments, got " +
                    std::to_string(s.args.size()));
}

std::unique_ptr<lip::Pearl> default_pearl(std::size_t num_in,
                                          std::size_t num_out) {
  if (num_in == 1 && num_out == 1) return make_identity();
  if (num_in == 2 && num_out == 1) return make_adder();
  if (num_in == 1 && num_out == 2) return make_fork2();
  if (num_in == 2 && num_out == 2) return make_butterfly();
  if (num_in == 0 && num_out == 1) return make_generator(0, 1);
  throw ApiError("no default pearl for arity " + std::to_string(num_in) +
                 "->" + std::to_string(num_out) +
                 "; annotate the process with a pearl spec");
}

}  // namespace

std::unique_ptr<lip::Pearl> pearl_from_spec(const std::string& text,
                                            std::size_t num_inputs,
                                            std::size_t num_outputs) {
  if (text.empty()) return default_pearl(num_inputs, num_outputs);
  const Spec s = parse_spec(text);
  std::unique_ptr<lip::Pearl> pearl;
  if (s.name == "identity") {
    expect_args(s, 0, 1);
    pearl = make_identity(arg_or(s, 0, 0));
  } else if (s.name == "add_const") {
    expect_args(s, 1, 2);
    pearl = make_add_const(s.args[0], arg_or(s, 1, 0));
  } else if (s.name == "adder") {
    expect_args(s, 0, 1);
    pearl = make_adder(arg_or(s, 0, 0));
  } else if (s.name == "multiplier") {
    expect_args(s, 0, 1);
    pearl = make_multiplier(arg_or(s, 0, 0));
  } else if (s.name == "max") {
    expect_args(s, 0, 1);
    pearl = make_max(arg_or(s, 0, 0));
  } else if (s.name == "fork2") {
    expect_args(s, 0, 1);
    pearl = make_fork2(arg_or(s, 0, 0));
  } else if (s.name == "accumulator") {
    expect_args(s, 0, 1);
    pearl = make_accumulator(arg_or(s, 0, 0));
  } else if (s.name == "delay") {
    expect_args(s, 1, 2);
    pearl = make_delay(s.args[0], arg_or(s, 1, 0));
  } else if (s.name == "fir") {
    LIPLIB_EXPECT(!s.args.empty(), "fir needs taps");
    pearl = make_fir(s.args);
  } else if (s.name == "leaky") {
    expect_args(s, 2, 3);
    pearl = make_leaky_integrator(s.args[0], s.args[1], arg_or(s, 2, 0));
  } else if (s.name == "mixer") {
    expect_args(s, 0, 1);
    pearl = make_bit_mixer(arg_or(s, 0, 0));
  } else if (s.name == "saturate") {
    expect_args(s, 1, 2);
    pearl = make_saturate(s.args[0], arg_or(s, 1, 0));
  } else if (s.name == "tagger") {
    expect_args(s, 0, 1);
    pearl = make_sequence_tagger(arg_or(s, 0, 0));
  } else if (s.name == "generator") {
    expect_args(s, 2, 2);
    pearl = make_generator(s.args[0], s.args[1]);
  } else if (s.name == "butterfly") {
    expect_args(s, 0, 2);
    pearl = make_butterfly(arg_or(s, 0, 0), arg_or(s, 1, 0));
  } else if (s.name == "cordic") {
    expect_args(s, 1, 3);
    pearl = make_cordic_stage(static_cast<unsigned>(s.args[0]),
                              arg_or(s, 1, 0), arg_or(s, 2, 0));
  } else if (s.name == "mac") {
    expect_args(s, 0, 1);
    pearl = make_mac(arg_or(s, 0, 0));
  } else if (s.name == "blender") {
    expect_args(s, 1, 2);
    pearl = make_blender(s.args[0], arg_or(s, 1, 0));
  } else if (s.name == "transform8") {
    expect_args(s, 0, 1);
    pearl = make_block_transform8(arg_or(s, 0, 0));
  } else if (s.name == "quantizer") {
    expect_args(s, 1, 2);
    pearl = make_quantizer(s.args[0], arg_or(s, 1, 0));
  } else if (s.name == "rle") {
    expect_args(s, 0, 1);
    pearl = make_rle_marker(arg_or(s, 0, 0));
  } else {
    throw ApiError("unknown pearl spec '" + s.name + "'");
  }
  LIPLIB_EXPECT(pearl->num_inputs() == num_inputs &&
                    pearl->num_outputs() == num_outputs,
                "pearl spec '" + text + "' has arity " +
                    std::to_string(pearl->num_inputs()) + "->" +
                    std::to_string(pearl->num_outputs()) +
                    " but the node needs " + std::to_string(num_inputs) +
                    "->" + std::to_string(num_outputs));
  return pearl;
}

lip::SourceBehavior source_from_spec(const std::string& text) {
  if (text.empty()) return lip::SourceBehavior::counter();
  const Spec s = parse_spec(text);
  if (s.name == "counter") {
    expect_args(s, 0, 0);
    return lip::SourceBehavior::counter();
  }
  if (s.name == "cyclic") {
    LIPLIB_EXPECT(!s.args.empty(), "cyclic needs values");
    return lip::SourceBehavior::cyclic(s.args);
  }
  if (s.name == "sparse") {
    expect_args(s, 3, 3);
    LIPLIB_EXPECT(s.args[2] > 0, "sparse denominator must be > 0");
    return lip::SourceBehavior::sparse_counter(s.args[0], s.args[1],
                                               s.args[2]);
  }
  throw ApiError("unknown source spec '" + s.name + "'");
}

lip::SinkBehavior sink_from_spec(const std::string& text) {
  if (text.empty()) return lip::SinkBehavior::greedy();
  const Spec s = parse_spec(text);
  if (s.name == "greedy") {
    expect_args(s, 0, 0);
    return lip::SinkBehavior::greedy();
  }
  if (s.name == "periodic") {
    expect_args(s, 1, 2);
    LIPLIB_EXPECT(s.args[0] > 0, "periodic needs period > 0");
    return lip::SinkBehavior::periodic(s.args[0], arg_or(s, 1, 0));
  }
  if (s.name == "random") {
    expect_args(s, 3, 3);
    LIPLIB_EXPECT(s.args[2] > 0, "random denominator must be > 0");
    return lip::SinkBehavior::random_stop(s.args[0], s.args[1], s.args[2]);
  }
  if (s.name == "script") {
    LIPLIB_EXPECT(!s.args.empty(), "script needs bits");
    std::vector<bool> bits;
    for (auto v : s.args) bits.push_back(v != 0);
    return lip::SinkBehavior::script(std::move(bits));
  }
  throw ApiError("unknown sink spec '" + s.name + "'");
}

lip::Design parse_design(std::istream& in) {
  auto parsed = graph::parse_netlist_annotated(in);
  lip::Design design(std::move(parsed.topo));
  const auto& topo = design.topology();
  for (graph::NodeId v = 0; v < topo.nodes().size(); ++v) {
    const auto& node = topo.node(v);
    const std::string& ann = parsed.node_annotation[v];
    try {
      switch (node.kind) {
        case graph::NodeKind::kProcess:
          design.set_pearl(
              v, pearl_from_spec(ann, node.num_inputs, node.num_outputs));
          break;
        case graph::NodeKind::kSource:
          design.set_source(v, source_from_spec(ann));
          break;
        case graph::NodeKind::kSink:
          design.set_sink(v, sink_from_spec(ann));
          break;
      }
    } catch (const ApiError& e) {
      throw ApiError("node '" + node.name + "': " + e.what());
    }
  }
  return design;
}

lip::Design parse_design_string(const std::string& text) {
  std::istringstream in(text);
  return parse_design(in);
}

}  // namespace liplib::pearls
