#include "liplib/pearls/video.hpp"

#include "liplib/pearls/pearls.hpp"

#include <array>

#include "liplib/support/check.hpp"

namespace liplib::pearls {

namespace {

/// Streaming 8-point integer transform, one sample in / one coefficient
/// out per firing, double-buffered so it sustains full rate.
class BlockTransform8 final : public lip::Pearl {
 public:
  explicit BlockTransform8(std::uint64_t initial) : init_(initial) {}

  std::size_t num_inputs() const override { return 1; }
  std::size_t num_outputs() const override { return 1; }
  std::uint64_t initial_output(std::size_t) const override { return init_; }

  void step(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) override {
    gather_[phase_] = in[0];
    out[0] = coeffs_[phase_];
    if (++phase_ == 8) {
      phase_ = 0;
      transform();
    }
  }

  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<BlockTransform8>(init_);
  }

 private:
  void transform() {
    // Integer Walsh–Hadamard transform (wrapping, self-inverse up to a
    // factor 8): the standard in-place radix-2 butterfly network, so
    // coefficient 0 is the block sum (DC).
    std::array<std::uint64_t, 8> a = gather_;
    for (int len = 1; len < 8; len <<= 1) {
      for (int i = 0; i < 8; i += len << 1) {
        for (int j = i; j < i + len; ++j) {
          const std::uint64_t u = a[j];
          const std::uint64_t v = a[j + len];
          a[j] = u + v;
          a[j + len] = u - v;
        }
      }
    }
    coeffs_ = a;
  }

  std::uint64_t init_;
  unsigned phase_ = 0;
  std::array<std::uint64_t, 8> gather_{};
  std::array<std::uint64_t, 8> coeffs_{};
};

class RleMarker final : public lip::Pearl {
 public:
  explicit RleMarker(std::uint64_t initial) : init_(initial) {}

  std::size_t num_inputs() const override { return 1; }
  std::size_t num_outputs() const override { return 1; }
  std::uint64_t initial_output(std::size_t) const override { return init_; }

  void step(std::span<const std::uint64_t> in,
            std::span<std::uint64_t> out) override {
    constexpr std::uint64_t kRunTag = 0x5a00000000000000ull;
    constexpr std::uint64_t kDataTag = 0x0100000000000000ull;
    if (in[0] == 0) {
      ++run_;
      out[0] = kRunTag | run_;  // running count; final word wins
    } else {
      run_ = 0;
      out[0] = kDataTag | (in[0] & 0x00ffffffffffffffull);
    }
  }

  std::unique_ptr<Pearl> clone_reset() const override {
    return std::make_unique<RleMarker>(init_);
  }

 private:
  std::uint64_t init_;
  std::uint64_t run_ = 0;
};

}  // namespace

std::unique_ptr<lip::Pearl> make_block_transform8(std::uint64_t initial) {
  return std::make_unique<BlockTransform8>(initial);
}

std::unique_ptr<lip::Pearl> make_quantizer(std::uint64_t q,
                                           std::uint64_t initial) {
  LIPLIB_EXPECT(q >= 1, "quantizer step must be >= 1");
  return std::make_unique<LambdaPearl>(
      1, 1,
      [q](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = in[0] / q;
      },
      std::vector<std::uint64_t>{initial});
}

std::unique_ptr<lip::Pearl> make_rle_marker(std::uint64_t initial) {
  return std::make_unique<RleMarker>(initial);
}

std::unique_ptr<lip::Pearl> make_blender(std::uint64_t w,
                                         std::uint64_t initial) {
  LIPLIB_EXPECT(w <= 256, "blend weight must be in [0,256]");
  return std::make_unique<LambdaPearl>(
      2, 1,
      [w](std::span<const std::uint64_t> in, std::span<std::uint64_t> out) {
        out[0] = (in[0] * w + in[1] * (256 - w)) / 256;
      },
      std::vector<std::uint64_t>{initial});
}

}  // namespace liplib::pearls
