#include "liplib/flow/design_flow.hpp"

#include <sstream>

#include "liplib/graph/analysis.hpp"
#include "liplib/graph/equalize.hpp"
#include "liplib/graph/mcr.hpp"
#include "liplib/lint/lint.hpp"
#include "liplib/skeleton/skeleton.hpp"

namespace liplib::flow {

std::string FlowResult::summary() const {
  std::ostringstream os;
  for (const auto& line : log) os << line << '\n';
  return os.str();
}

FlowResult run_design_flow(const graph::Topology& topo,
                           const FlowOptions& options) {
  FlowResult r;
  r.topology = topo;
  auto say = [&](std::string line) { r.log.push_back(std::move(line)); };

  // 1. Validation via the lint engine (station rule only enforced when
  //    we are not about to insert stations ourselves).  The flow gates on
  //    the structural rules; the performance rules become log notes.
  const bool planning = !options.wire_lengths.empty();
  lint::Options lint_options;
  lint_options.require_station_between_shells = !planning;
  r.lint = lint::run_lint(r.topology, lint_options);
  lint::Report structural;
  for (const auto& d : r.lint.diagnostics) {
    if (d.rule <= "LIP006") structural.diagnostics.push_back(d);
  }
  r.validation = lint::to_validation_report(structural);
  if (!r.validation.ok()) {
    say("validation FAILED:");
    for (const auto& issue : r.validation.issues) {
      say("  " + issue.message);
    }
    return r;
  }
  say("validation: ok (" +
      std::to_string(r.lint.count(lint::Severity::kWarning)) +
      " warning(s), " + std::to_string(r.lint.count(lint::Severity::kInfo)) +
      " note(s))");

  // 2. Wire planning.
  if (planning) {
    graph::WirePlanOptions wire = options.wire;
    wire.equalize = false;  // equalization runs as an explicit step below
    const auto plan =
        graph::plan_wire_pipelining(r.topology, options.wire_lengths, wire);
    r.stations_inserted = plan.stations_inserted;
    say("wire planning: inserted " + std::to_string(plan.stations_inserted) +
        " stations (" + std::to_string(r.topology.total_full_stations()) +
        " full, " + std::to_string(r.topology.total_half_stations()) +
        " half)");
  }
  const bool equalize_now = options.wire.equalize;

  // 2b. Static latch check (structural counterpart of worst-case
  //     screening): LIP006 on the planned topology.
  {
    lint::Options structural_options;
    structural_options.structural_only = true;
    const auto planned = lint::run_lint(r.topology, structural_options);
    say("static stop-cycle check: " +
        std::to_string(planned.count_rule("LIP006")) +
        " combinational stop cycle(s)");
  }

  // 3. Screening (reset + worst case), with cure.
  {
    skeleton::ScreeningOptions reset_opts;
    const auto reset =
        skeleton::screen_for_deadlock(r.topology, reset_opts,
                                      options.screen_budget);
    r.deadlock_from_reset = reset.deadlock_found;
    r.measured_transient = reset.transient;
    r.measured_throughput = reset.min_throughput;
    say("screening from reset: " +
        std::string(reset.deadlock_found ? "DEADLOCK" : "live") + ", T = " +
        reset.min_throughput.str() + " (transient " +
        std::to_string(reset.transient) + ", period " +
        std::to_string(reset.period) + ")");
    if (reset.deadlock_found) return r;

    if (options.worst_case_screening) {
      skeleton::ScreeningOptions wc;
      wc.worst_case_occupancy = true;
      const auto worst =
          skeleton::screen_for_deadlock(r.topology, wc,
                                        options.screen_budget);
      r.latch_found = worst.deadlock_found;
      if (worst.deadlock_found) {
        say("worst-case screening: stop latch found");
        if (options.cure) {
          const auto cure =
              skeleton::cure_deadlocks(r.topology, wc,
                                       options.screen_budget);
          r.cure_substitutions = cure.substitutions;
          r.latch_cured = cure.success;
          if (!cure.success) {
            say("cure FAILED");
            return r;
          }
          r.topology = cure.cured;
          say("cure: " + std::to_string(cure.substitutions) +
              " half->full substitution(s)");
        } else {
          say("cure disabled; design left with a latent latch");
          return r;
        }
      } else {
        say("worst-case screening: live");
      }
    }
  }

  // 4. Equalization.
  if (equalize_now && r.topology.is_feedforward()) {
    r.spare_inserted = graph::equalize_paths(r.topology);
    say("equalization: " + std::to_string(r.spare_inserted) +
        " spare station(s)");
  }

  // 5. Analytic sign-off.
  r.loop_bound = graph::min_cycle_ratio(r.topology);
  r.implicit_loop_bound = graph::exact_implicit_loop_bound(r.topology);
  r.predicted_throughput = r.implicit_loop_bound;
  if (r.loop_bound && *r.loop_bound < r.predicted_throughput) {
    r.predicted_throughput = *r.loop_bound;
  }
  r.transient_bound = graph::transient_bound(r.topology);
  say("sign-off: T = " + r.predicted_throughput.str() +
      (r.loop_bound ? " (loop bound " + r.loop_bound->str() + ")" : "") +
      ", transient bound " + std::to_string(r.transient_bound));

  // Final lint of the finished design; the flow only signs off a design
  // the linter considers clean of errors.
  r.lint = lint::run_lint(r.topology);
  say("lint: " + std::to_string(r.lint.count(lint::Severity::kError)) +
      " error(s), " + std::to_string(r.lint.count(lint::Severity::kWarning)) +
      " warning(s), " + std::to_string(r.lint.count(lint::Severity::kInfo)) +
      " note(s)");

  r.ok = r.lint.count(lint::Severity::kError) == 0;
  return r;
}

}  // namespace liplib::flow
