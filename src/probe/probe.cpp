#include "liplib/probe/probe.hpp"

#include <algorithm>
#include <map>

#include "liplib/support/check.hpp"

namespace liplib::probe {

namespace {

const char* activity_str(Activity a) {
  switch (a) {
    case Activity::kFired: return "fire";
    case Activity::kWaitingInput: return "wait";
    case Activity::kStoppedOutput: return "stall";
  }
  return "?";
}

const char* why_str(Activity a) {
  return a == Activity::kWaitingInput ? "waiting" : "stopped";
}

const char* kind_str(UnitKind k) {
  switch (k) {
    case UnitKind::kShell: return "shell";
    case UnitKind::kSource: return "source";
    case UnitKind::kSink: return "sink";
    case UnitKind::kStation: return "station";
  }
  return "?";
}

/// Trace process id of the simulated design (the kernel probe uses 2).
constexpr std::uint64_t kTracePid = 1;

}  // namespace

Probe::Probe(ProbeConfig cfg) : cfg_(cfg) {}

Probe::~Probe() { finish_trace(); }

void Probe::bind(const graph::Topology& topo, Wiring wiring) {
  LIPLIB_EXPECT(!bound_, "probe already bound to a simulator");
  topo_ = topo;
  wiring_ = std::move(wiring);
  bound_ = true;

  valid_.assign(wiring_.segments.size(), 0);
  stop_.assign(wiring_.segments.size(), 0);
  activity_.assign(wiring_.shells.size(), Activity::kFired);

  shell_tally_.assign(wiring_.shells.size(), {});
  seg_tally_.assign(wiring_.segments.size(), {});
  unit_count_ = wiring_.shells.size() + wiring_.sources.size() +
                wiring_.sinks.size() + wiring_.stations.size();
  if (cfg_.attribution) {
    blame_.assign(wiring_.shells.size() * 3 * unit_count_, 0);
    visit_mark_.assign(wiring_.shells.size(), 0);
  }

  // Names, by unit ordinal: shells, sources, sinks, stations.
  auto base = [&](graph::ChannelId c) {
    const auto& ch = topo_.channel(c);
    return topo_.node(ch.from.node).name + "_to_" + topo_.node(ch.to.node).name;
  };
  unit_names_.clear();
  unit_names_.reserve(unit_count_);
  for (const auto& s : wiring_.shells) unit_names_.push_back(topo_.node(s.node).name);
  for (const auto& s : wiring_.sources) unit_names_.push_back(topo_.node(s.node).name);
  for (const auto& s : wiring_.sinks) unit_names_.push_back(topo_.node(s.node).name);
  for (const auto& st : wiring_.stations) {
    unit_names_.push_back(base(st.channel) + ".rs" + std::to_string(st.index));
  }

  channel_segs_.assign(topo_.channels().size(), {});
  for (std::size_t i = 0; i < wiring_.segments.size(); ++i) {
    channel_segs_[wiring_.segments[i].channel].push_back(i);
  }
  channel_track_.clear();
  std::map<std::string, std::size_t> track_uses;
  for (graph::ChannelId c = 0; c < topo_.channels().size(); ++c) {
    std::string name = "occ " + base(c);
    if (track_uses[name]++ > 0) name += "#" + std::to_string(c);
    channel_track_.push_back(std::move(name));
  }

  span_.assign(wiring_.shells.size(), {});
  chan_sample_.assign(topo_.channels().size(), {});

  if (cfg_.trace != nullptr) {
    cfg_.trace->name_process(kTracePid, "lid");
    for (std::size_t i = 0; i < wiring_.shells.size(); ++i) {
      cfg_.trace->name_thread(kTracePid, i + 1, unit_names_[i]);
    }
  }

  if (cfg_.observer != nullptr) cfg_.observer->on_bind(*this);
}

std::size_t Probe::unit_ordinal(const Unit& u) const {
  std::size_t off = 0;
  switch (u.kind) {
    case UnitKind::kShell:
      for (std::size_t i = 0; i < wiring_.shells.size(); ++i) {
        if (wiring_.shells[i].node == u.node) return off + i;
      }
      break;
    case UnitKind::kSource:
      off = wiring_.shells.size();
      for (std::size_t i = 0; i < wiring_.sources.size(); ++i) {
        if (wiring_.sources[i].node == u.node) return off + i;
      }
      break;
    case UnitKind::kSink:
      off = wiring_.shells.size() + wiring_.sources.size();
      for (std::size_t i = 0; i < wiring_.sinks.size(); ++i) {
        if (wiring_.sinks[i].node == u.node) return off + i;
      }
      break;
    case UnitKind::kStation:
      off = wiring_.shells.size() + wiring_.sources.size() +
            wiring_.sinks.size();
      for (std::size_t i = 0; i < wiring_.stations.size(); ++i) {
        if (wiring_.stations[i].channel == u.channel &&
            wiring_.stations[i].index == u.station) {
          return off + i;
        }
      }
      break;
  }
  throw InternalError("probe: unit not found in wiring");
}

Unit Probe::ordinal_unit(std::size_t ordinal) const {
  const std::size_t s = wiring_.shells.size();
  const std::size_t so = wiring_.sources.size();
  const std::size_t si = wiring_.sinks.size();
  Unit u;
  if (ordinal < s) {
    u.kind = UnitKind::kShell;
    u.node = wiring_.shells[ordinal].node;
  } else if (ordinal < s + so) {
    u.kind = UnitKind::kSource;
    u.node = wiring_.sources[ordinal - s].node;
  } else if (ordinal < s + so + si) {
    u.kind = UnitKind::kSink;
    u.node = wiring_.sinks[ordinal - s - so].node;
  } else {
    const auto& st = wiring_.stations[ordinal - s - so - si];
    u.kind = UnitKind::kStation;
    u.channel = st.channel;
    u.station = st.index;
  }
  return u;
}

std::string Probe::unit_name(const Unit& u) const {
  return unit_names_[unit_ordinal(u)];
}

Unit Probe::attribute(std::size_t shell, Activity why) {
  // Stamped visited set: one bump per walk, no clearing.
  ++visit_stamp_;
  visit_mark_[shell] = visit_stamp_;

  auto first_void_input = [&](std::size_t sh) -> std::size_t {
    for (std::size_t in : wiring_.shells[sh].in_segs) {
      if (!valid_[in]) return in;
    }
    return static_cast<std::size_t>(-1);
  };
  auto first_blocked_output = [&](std::size_t sh) -> std::size_t {
    for (std::size_t out : wiring_.shells[sh].out_segs) {
      if (blocking(out)) return out;
    }
    return static_cast<std::size_t>(-1);
  };
  auto shell_unit = [&](std::size_t sh) {
    Unit u;
    u.kind = UnitKind::kShell;
    u.node = wiring_.shells[sh].node;
    return u;
  };
  auto station_unit = [&](std::size_t st) {
    Unit u;
    u.kind = UnitKind::kStation;
    u.channel = wiring_.stations[st].channel;
    u.station = wiring_.stations[st].index;
    return u;
  };

  bool void_mode = (why == Activity::kWaitingInput);
  std::size_t seg = void_mode ? first_void_input(shell)
                              : first_blocked_output(shell);
  if (seg == static_cast<std::size_t>(-1)) return shell_unit(shell);

  const std::size_t guard =
      2 * wiring_.segments.size() + 2 * wiring_.shells.size() + 8;
  for (std::size_t steps = 0;; ++steps) {
    LIPLIB_ENSURE(steps <= guard, "probe blame walk failed to terminate");
    if (void_mode) {
      // Chase the void upstream to where it was produced.
      const Wiring::Endpoint& p = wiring_.segments[seg].producer;
      switch (p.kind) {
        case UnitKind::kSource: {
          Unit u;
          u.kind = UnitKind::kSource;
          u.node = wiring_.sources[p.index].node;
          return u;
        }
        case UnitKind::kStation: {
          const auto& st = wiring_.stations[p.index];
          if (!valid_[st.in_seg]) {
            seg = st.in_seg;  // the void is still arriving from upstream
            continue;
          }
          // Valid data behind a void front: the bubble sits here.
          return station_unit(p.index);
        }
        case UnitKind::kShell: {
          const std::size_t sh = p.index;
          if (visit_mark_[sh] == visit_stamp_) return shell_unit(sh);
          visit_mark_[sh] = visit_stamp_;
          if (activity_[sh] == Activity::kWaitingInput) {
            const std::size_t in = first_void_input(sh);
            if (in == static_cast<std::size_t>(-1)) return shell_unit(sh);
            seg = in;
            continue;
          }
          if (activity_[sh] == Activity::kStoppedOutput) {
            const std::size_t out = first_blocked_output(sh);
            if (out == static_cast<std::size_t>(-1)) return shell_unit(sh);
            void_mode = false;
            seg = out;
            continue;
          }
          // Fired: the void is this shell's refill latency.
          return shell_unit(sh);
        }
        default:
          throw InternalError("probe: sink as producer");
      }
    } else {
      // Chase the stop downstream to where it originates.
      const Wiring::Endpoint& c = wiring_.segments[seg].consumer;
      switch (c.kind) {
        case UnitKind::kSink: {
          Unit u;
          u.kind = UnitKind::kSink;
          u.node = wiring_.sinks[c.index].node;
          return u;
        }
        case UnitKind::kStation: {
          const auto& st = wiring_.stations[c.index];
          if (st.full) {
            // The registered stop means "I was full"; it only persists
            // while the station itself cannot drain.
            if (blocking(st.out_seg)) {
              seg = st.out_seg;
              continue;
            }
            return station_unit(c.index);  // draining congestion
          }
          seg = st.out_seg;  // half stations are stop-transparent
          continue;
        }
        case UnitKind::kShell: {
          const std::size_t sh = c.index;
          if (visit_mark_[sh] == visit_stamp_) return shell_unit(sh);
          visit_mark_[sh] = visit_stamp_;
          if (activity_[sh] == Activity::kWaitingInput) {
            const std::size_t in = first_void_input(sh);
            if (in == static_cast<std::size_t>(-1)) return shell_unit(sh);
            void_mode = true;
            seg = in;
            continue;
          }
          if (activity_[sh] == Activity::kStoppedOutput) {
            const std::size_t out = first_blocked_output(sh);
            if (out == static_cast<std::size_t>(-1)) return shell_unit(sh);
            seg = out;
            continue;
          }
          return shell_unit(sh);
        }
        default:
          throw InternalError("probe: source as consumer");
      }
    }
  }
}

void Probe::count_cycle() {
  for (std::size_t i = 0; i < seg_tally_.size(); ++i) {
    SegTally& t = seg_tally_[i];
    if (valid_[i]) ++t.valid;
    if (stop_[i]) {
      ++t.stopped;
      if (valid_[i]) ++t.stop_on_valid;
    }
  }
  for (std::size_t k = 0; k < shell_tally_.size(); ++k) {
    ++shell_tally_[k].counts[static_cast<std::size_t>(activity_[k])];
  }
}

void Probe::trace_cycle(std::uint64_t cycle) {
  TraceSink& sink = *cfg_.trace;
  for (std::size_t k = 0; k < span_.size(); ++k) {
    Span& sp = span_[k];
    const Activity a = activity_[k];
    if (sp.open && sp.act == a) continue;
    if (sp.open) {
      sink.complete_event(activity_str(sp.act), "shell", sp.start,
                          cycle - sp.start, kTracePid, k + 1);
    }
    sp = {a, cycle, true};
  }
  for (std::size_t c = 0; c < channel_segs_.size(); ++c) {
    std::uint64_t v = 0;
    std::uint64_t s = 0;
    for (std::size_t seg : channel_segs_[c]) {
      v += valid_[seg];
      s += stop_[seg];
    }
    ChanSample& last = chan_sample_[c];
    if (v != last.valid || s != last.stopped) {
      sink.counter_event(channel_track_[c], cycle, kTracePid,
                         {{"valid", v}, {"stop", s}});
      last = {v, s};
    }
  }
}

void Probe::commit_cycle(std::uint64_t cycle) {
  LIPLIB_EXPECT(bound_, "commit_cycle on an unbound probe");
  if (cfg_.counters) count_cycle();
  if (cfg_.attribution) {
    for (std::size_t k = 0; k < activity_.size(); ++k) {
      const Activity a = activity_[k];
      if (a == Activity::kFired) continue;
      const Unit culprit = attribute(k, a);
      const std::size_t why = static_cast<std::size_t>(a);
      blame_[(k * 3 + why) * unit_count_ + unit_ordinal(culprit)] += 1;
    }
  }
  if (cfg_.trace != nullptr) trace_cycle(cycle);
  ++window_cycles_;
  last_cycle_ = cycle;
  any_cycle_ = true;
  // Observers run last so blame/counter state includes this cycle.
  if (cfg_.observer != nullptr) {
    cfg_.observer->on_cycle(cycle, valid_.data(), stop_.data(),
                            activity_.data());
  }
}

void Probe::reset_window() {
  window_cycles_ = 0;
  std::fill(shell_tally_.begin(), shell_tally_.end(), ShellTally{});
  std::fill(seg_tally_.begin(), seg_tally_.end(), SegTally{});
  std::fill(blame_.begin(), blame_.end(), 0);
}

void Probe::finish_trace() {
  if (cfg_.trace == nullptr || cfg_.trace->finished()) return;
  if (any_cycle_) {
    for (std::size_t k = 0; k < span_.size(); ++k) {
      const Span& sp = span_[k];
      if (sp.open) {
        cfg_.trace->complete_event(activity_str(sp.act), "shell", sp.start,
                                   last_cycle_ + 1 - sp.start, kTracePid,
                                   k + 1);
      }
    }
  }
  cfg_.trace->finish();
}

ProbeReport Probe::report() const {
  LIPLIB_EXPECT(bound_, "report on an unbound probe");
  ProbeReport r;
  r.cycles = window_cycles_;
  for (std::size_t k = 0; k < wiring_.shells.size(); ++k) {
    ShellCount c;
    c.node = wiring_.shells[k].node;
    c.name = unit_names_[k];
    c.fired = shell_tally_[k].counts[0];
    c.waiting = shell_tally_[k].counts[1];
    c.stopped = shell_tally_[k].counts[2];
    r.shells.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < wiring_.segments.size(); ++i) {
    const auto& w = wiring_.segments[i];
    SegmentCount c;
    c.channel = w.channel;
    c.hop = w.hop;
    const auto& ch = topo_.channel(w.channel);
    c.label = topo_.node(ch.from.node).name + "_to_" +
              topo_.node(ch.to.node).name + ".h" + std::to_string(w.hop);
    c.valid = seg_tally_[i].valid;
    c.voids = window_cycles_ - seg_tally_[i].valid;
    c.stopped = seg_tally_[i].stopped;
    c.stop_on_valid = seg_tally_[i].stop_on_valid;
    c.stop_on_void = seg_tally_[i].stopped - seg_tally_[i].stop_on_valid;
    r.segments.push_back(std::move(c));
  }
  for (std::size_t k = 0; !blame_.empty() && k < wiring_.shells.size(); ++k) {
    for (std::size_t why = 0; why < 3; ++why) {
      for (std::size_t u = 0; u < unit_count_; ++u) {
        const std::uint64_t n = blame_[(k * 3 + why) * unit_count_ + u];
        if (n == 0) continue;
        BlameEntry e;
        e.victim = wiring_.shells[k].node;
        e.victim_name = unit_names_[k];
        e.why = static_cast<Activity>(why);
        e.culprit = ordinal_unit(u);
        e.culprit_name = unit_names_[u];
        e.cycles = n;
        r.blame.push_back(std::move(e));
      }
    }
  }
  std::stable_sort(r.blame.begin(), r.blame.end(),
                   [](const BlameEntry& a, const BlameEntry& b) {
                     return a.cycles > b.cycles;
                   });
  return r;
}

Rational ProbeReport::throughput(graph::NodeId shell) const {
  for (const auto& s : shells) {
    if (s.node == shell) {
      if (cycles == 0) return Rational(0);
      return Rational(static_cast<std::int64_t>(s.fired),
                      static_cast<std::int64_t>(cycles));
    }
  }
  throw ApiError("probe report has no shell with node id " +
                 std::to_string(shell));
}

Rational ProbeReport::min_throughput() const {
  Rational best(1);
  for (const auto& s : shells) {
    const Rational t = throughput(s.node);
    if (t < best) best = t;
  }
  return shells.empty() ? Rational(0) : best;
}

const BlameEntry* ProbeReport::top_blame() const {
  return blame.empty() ? nullptr : &blame.front();
}

Json ProbeReport::to_json() const {
  Json j = Json::object();
  j.set("schema", "liplib.probe/1");
  j.set("cycles", cycles);
  j.set("min_throughput", min_throughput());
  Json sh = Json::array();
  for (const auto& s : shells) {
    Json e = Json::object();
    e.set("node", static_cast<std::uint64_t>(s.node));
    e.set("name", s.name);
    e.set("fired", s.fired);
    e.set("waiting", s.waiting);
    e.set("stopped", s.stopped);
    e.set("throughput", throughput(s.node));
    sh.push(std::move(e));
  }
  j.set("shells", std::move(sh));
  Json segs = Json::array();
  for (const auto& s : segments) {
    Json e = Json::object();
    e.set("channel", static_cast<std::uint64_t>(s.channel));
    e.set("hop", static_cast<std::uint64_t>(s.hop));
    e.set("label", s.label);
    e.set("valid", s.valid);
    e.set("void", s.voids);
    e.set("stop", s.stopped);
    e.set("stop_on_valid", s.stop_on_valid);
    e.set("stop_on_void", s.stop_on_void);
    segs.push(std::move(e));
  }
  j.set("segments", std::move(segs));
  Json bl = Json::array();
  for (const auto& b : blame) {
    Json e = Json::object();
    e.set("victim", b.victim_name);
    e.set("why", why_str(b.why));
    e.set("culprit", b.culprit_name);
    e.set("culprit_kind", kind_str(b.culprit.kind));
    e.set("cycles", b.cycles);
    bl.push(std::move(e));
  }
  j.set("blame", std::move(bl));
  return j;
}

// ---- KernelProbe -------------------------------------------------------

KernelProbe::KernelProbe(TraceSink* trace, std::uint64_t pid)
    : trace_(trace), pid_(pid) {
  if (trace_ != nullptr) trace_->name_process(pid_, "sim-kernel");
}

void KernelProbe::on_delta(sim::Time /*now*/, std::size_t changes,
                           std::size_t wakeups) {
  ++counters_.delta_cycles;
  counters_.signal_changes += changes;
  counters_.process_wakeups += wakeups;
}

void KernelProbe::on_time_serviced(sim::Time now, std::uint64_t deltas) {
  ++counters_.time_points;
  if (deltas > counters_.max_deltas_per_time) {
    counters_.max_deltas_per_time = deltas;
  }
  if (trace_ != nullptr) {
    trace_->counter_event("deltas", now, pid_, {{"deltas", deltas}});
  }
}

Json KernelProbe::to_json() const {
  Json j = Json::object();
  j.set("schema", "liplib.kernel-probe/1");
  j.set("time_points", counters_.time_points);
  j.set("delta_cycles", counters_.delta_cycles);
  j.set("signal_changes", counters_.signal_changes);
  j.set("process_wakeups", counters_.process_wakeups);
  j.set("max_deltas_per_time", counters_.max_deltas_per_time);
  return j;
}

}  // namespace liplib::probe
