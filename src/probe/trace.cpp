#include "liplib/probe/trace.hpp"

#include <ostream>

namespace liplib::probe {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) out.push_back(tmp[--n]);
}

}  // namespace

TraceSink::TraceSink(std::ostream& os, Options opt) : os_(os), opt_(opt) {
  buf_.reserve(opt_.flush_threshold + 1024);
  buf_ += "{\"traceEvents\":[\n";
}

TraceSink::~TraceSink() { finish(); }

void TraceSink::append_escaped(std::string_view s) {
  buf_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': buf_ += "\\\""; break;
      case '\\': buf_ += "\\\\"; break;
      case '\n': buf_ += "\\n"; break;
      case '\t': buf_ += "\\t"; break;
      case '\r': buf_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          buf_ += "\\u00";
          buf_.push_back(hex[(c >> 4) & 0xf]);
          buf_.push_back(hex[c & 0xf]);
        } else {
          buf_.push_back(c);
        }
    }
  }
  buf_.push_back('"');
}

void TraceSink::begin_event() {
  if (!first_) buf_ += ",\n";
  first_ = false;
}

void TraceSink::maybe_flush() {
  if (buf_.size() >= opt_.flush_threshold) {
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    bytes_ += buf_.size();
    buf_.clear();
  }
}

void TraceSink::name_process(std::uint64_t pid, std::string_view name) {
  if (finished_) return;
  begin_event();
  buf_ += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  append_u64(buf_, pid);
  buf_ += ",\"args\":{\"name\":";
  append_escaped(name);
  buf_ += "}}";
  maybe_flush();
}

void TraceSink::name_thread(std::uint64_t pid, std::uint64_t tid,
                            std::string_view name) {
  if (finished_) return;
  begin_event();
  buf_ += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
  append_u64(buf_, pid);
  buf_ += ",\"tid\":";
  append_u64(buf_, tid);
  buf_ += ",\"args\":{\"name\":";
  append_escaped(name);
  buf_ += "}}";
  maybe_flush();
}

void TraceSink::complete_event(std::string_view name,
                               std::string_view category, std::uint64_t ts,
                               std::uint64_t dur, std::uint64_t pid,
                               std::uint64_t tid) {
  if (finished_) return;
  begin_event();
  buf_ += "{\"name\":";
  append_escaped(name);
  buf_ += ",\"cat\":";
  append_escaped(category);
  buf_ += ",\"ph\":\"X\",\"ts\":";
  append_u64(buf_, ts);
  buf_ += ",\"dur\":";
  append_u64(buf_, dur);
  buf_ += ",\"pid\":";
  append_u64(buf_, pid);
  buf_ += ",\"tid\":";
  append_u64(buf_, tid);
  buf_ += "}";
  maybe_flush();
}

void TraceSink::counter_event(
    std::string_view name, std::uint64_t ts, std::uint64_t pid,
    std::initializer_list<std::pair<std::string_view, std::uint64_t>>
        series) {
  if (finished_) return;
  begin_event();
  buf_ += "{\"name\":";
  append_escaped(name);
  buf_ += ",\"ph\":\"C\",\"ts\":";
  append_u64(buf_, ts);
  buf_ += ",\"pid\":";
  append_u64(buf_, pid);
  buf_ += ",\"args\":{";
  bool first = true;
  for (const auto& [key, value] : series) {
    if (!first) buf_.push_back(',');
    first = false;
    append_escaped(key);
    buf_.push_back(':');
    append_u64(buf_, value);
  }
  buf_ += "}}";
  maybe_flush();
}

void TraceSink::instant_event(std::string_view name,
                              std::string_view category, std::uint64_t ts,
                              std::uint64_t pid, std::uint64_t tid) {
  if (finished_) return;
  begin_event();
  buf_ += "{\"name\":";
  append_escaped(name);
  buf_ += ",\"cat\":";
  append_escaped(category);
  buf_ += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
  append_u64(buf_, ts);
  buf_ += ",\"pid\":";
  append_u64(buf_, pid);
  buf_ += ",\"tid\":";
  append_u64(buf_, tid);
  buf_ += "}";
  maybe_flush();
}

void TraceSink::raw_event(std::string_view event_json) {
  if (finished_) return;
  begin_event();
  buf_.append(event_json);
  maybe_flush();
}

void TraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  buf_ += "\n]}\n";
  os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  bytes_ += buf_.size();
  buf_.clear();
  os_.flush();
}

}  // namespace liplib::probe
