#include "liplib/dist/shard.hpp"

#include <algorithm>

#include "liplib/serve/cache.hpp"
#include "liplib/support/check.hpp"
#include "liplib/xir/xir.hpp"

namespace liplib::dist {

namespace {

std::uint64_t uint_of(const Json& doc, const char* key) {
  const Json* f = doc.find(key);
  LIPLIB_EXPECT(f && f->is_number(),
                std::string("shard manifest: field '") + key +
                    "' must be an unsigned integer");
  return f->as_uint();
}

std::string string_of(const Json& doc, const char* key) {
  const Json* f = doc.find(key);
  LIPLIB_EXPECT(f && f->is_string(),
                std::string("shard manifest: field '") + key +
                    "' must be a string");
  return f->as_string();
}

const char* policy_name(lip::StopPolicy p) {
  return p == lip::StopPolicy::kCarloniStrict ? "strict" : "variant";
}

const char* shape_name(campaign::FuzzSpec::Shape s) {
  switch (s) {
    case campaign::FuzzSpec::Shape::kReconvergent: return "reconvergent";
    case campaign::FuzzSpec::Shape::kComposite: return "composite";
    case campaign::FuzzSpec::Shape::kFeedforward: return "feedforward";
  }
  return "composite";
}

}  // namespace

ShardRange shard_range(std::size_t total_jobs, std::size_t index,
                       std::size_t count) {
  LIPLIB_EXPECT(count >= 1, "shard count must be at least 1");
  LIPLIB_EXPECT(index < count,
                "shard index " + std::to_string(index) +
                    " out of range for " + std::to_string(count) +
                    " shard(s)");
  ShardRange r;
  r.index = index;
  r.count = count;
  r.lo = total_jobs * index / count;
  r.hi = total_jobs * (index + 1) / count;
  return r;
}

std::pair<std::size_t, std::size_t> parse_shard_token(
    const std::string& text) {
  const auto slash = text.find('/');
  LIPLIB_EXPECT(slash != std::string::npos && slash > 0 &&
                    slash + 1 < text.size(),
                "--shard expects i/N (e.g. 2/4), got '" + text + "'");
  auto to_size = [&](const std::string& part) {
    std::size_t used = 0;
    unsigned long long v = 0;
    try {
      v = std::stoull(part, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    LIPLIB_EXPECT(used == part.size(),
                  "--shard expects i/N (e.g. 2/4), got '" + text + "'");
    return static_cast<std::size_t>(v);
  };
  const std::size_t index = to_size(text.substr(0, slash));
  const std::size_t count = to_size(text.substr(slash + 1));
  LIPLIB_EXPECT(count >= 1 && index < count,
                "--shard " + text + " out of range (need 0 <= i < N)");
  return {index, count};
}

ShardManifest make_manifest(const std::string& campaign_spec,
                            std::size_t total_jobs, std::uint64_t base_seed,
                            std::uint64_t cycle_budget,
                            const std::string& engine, ShardRange shard) {
  ShardManifest m;
  m.campaign = campaign_spec;
  m.campaign_hash = serve::fnv1a64(campaign_spec);
  m.total_jobs = total_jobs;
  m.base_seed = base_seed;
  m.cycle_budget = cycle_budget;
  m.engine = engine;
  m.shard = shard;
  return m;
}

Json manifest_to_json(const ShardManifest& m) {
  return Json::object()
      .set("schema", kShardSchema)
      .set("campaign", m.campaign)
      .set("campaign_hash", m.campaign_hash)
      .set("total_jobs", static_cast<std::uint64_t>(m.total_jobs))
      .set("base_seed", m.base_seed)
      .set("cycle_budget", m.cycle_budget)
      .set("engine", m.engine)
      .set("shard",
           Json::object()
               .set("index", static_cast<std::uint64_t>(m.shard.index))
               .set("count", static_cast<std::uint64_t>(m.shard.count))
               .set("lo", static_cast<std::uint64_t>(m.shard.lo))
               .set("hi", static_cast<std::uint64_t>(m.shard.hi)));
}

ShardManifest manifest_from_json(const Json& doc) {
  LIPLIB_EXPECT(doc.is_object(), "shard manifest must be a JSON object");
  LIPLIB_EXPECT(string_of(doc, "schema") == kShardSchema,
                std::string("shard manifest: expected schema \"") +
                    kShardSchema + "\"");
  ShardManifest m;
  m.campaign = string_of(doc, "campaign");
  m.campaign_hash = uint_of(doc, "campaign_hash");
  LIPLIB_EXPECT(m.campaign_hash == serve::fnv1a64(m.campaign),
                "shard manifest: campaign_hash does not match the "
                "campaign spec string");
  m.total_jobs = static_cast<std::size_t>(uint_of(doc, "total_jobs"));
  m.base_seed = uint_of(doc, "base_seed");
  m.cycle_budget = uint_of(doc, "cycle_budget");
  m.engine = string_of(doc, "engine");
  xir::EngineMode mode;
  LIPLIB_EXPECT(xir::parse_engine_mode(m.engine, &mode),
                "shard manifest: unknown engine '" + m.engine + "'");
  const Json* shard = doc.find("shard");
  LIPLIB_EXPECT(shard && shard->is_object(),
                "shard manifest: field 'shard' must be an object");
  m.shard.index = static_cast<std::size_t>(uint_of(*shard, "index"));
  m.shard.count = static_cast<std::size_t>(uint_of(*shard, "count"));
  m.shard.lo = static_cast<std::size_t>(uint_of(*shard, "lo"));
  m.shard.hi = static_cast<std::size_t>(uint_of(*shard, "hi"));
  const ShardRange expect =
      shard_range(m.total_jobs, m.shard.index, m.shard.count);
  LIPLIB_EXPECT(m.shard.lo == expect.lo && m.shard.hi == expect.hi,
                "shard manifest: range [" + std::to_string(m.shard.lo) +
                    ", " + std::to_string(m.shard.hi) +
                    ") is not the planned slice of shard " +
                    std::to_string(m.shard.index) + "/" +
                    std::to_string(m.shard.count));
  return m;
}

Json partial_to_json(const ShardManifest& m,
                     const campaign::Aggregate& agg) {
  return Json::object()
      .set("schema", kPartialSchema)
      .set("manifest", manifest_to_json(m))
      .set("aggregate", campaign::to_json(agg));
}

Partial partial_from_json(const Json& doc) {
  LIPLIB_EXPECT(doc.is_object(), "partial must be a JSON object");
  const Json* schema = doc.find("schema");
  LIPLIB_EXPECT(schema && schema->is_string() &&
                    schema->as_string() == kPartialSchema,
                std::string("partial: expected schema \"") +
                    kPartialSchema + "\"");
  const Json* manifest = doc.find("manifest");
  LIPLIB_EXPECT(manifest, "partial: missing 'manifest'");
  const Json* aggregate = doc.find("aggregate");
  LIPLIB_EXPECT(aggregate, "partial: missing 'aggregate'");
  Partial p;
  p.manifest = manifest_from_json(*manifest);
  p.aggregate = campaign::aggregate_from_json(*aggregate);
  LIPLIB_EXPECT(p.aggregate.total ==
                    p.manifest.shard.hi - p.manifest.shard.lo,
                "partial: aggregate covers " +
                    std::to_string(p.aggregate.total) +
                    " job(s) but the manifest's range holds " +
                    std::to_string(p.manifest.shard.hi -
                                   p.manifest.shard.lo));
  return p;
}

campaign::Aggregate merge_partials(std::vector<Partial> parts) {
  LIPLIB_EXPECT(!parts.empty(), "merge: no partials given");
  const ShardManifest& ref = parts.front().manifest;
  for (const Partial& p : parts) {
    const ShardManifest& m = p.manifest;
    LIPLIB_EXPECT(
        m.campaign == ref.campaign && m.campaign_hash == ref.campaign_hash,
        "merge: partials name different campaigns ('" + m.campaign +
            "' vs '" + ref.campaign + "')");
    LIPLIB_EXPECT(m.total_jobs == ref.total_jobs,
                  "merge: partials disagree on total_jobs");
    LIPLIB_EXPECT(m.base_seed == ref.base_seed,
                  "merge: partials disagree on base_seed");
    LIPLIB_EXPECT(m.cycle_budget == ref.cycle_budget,
                  "merge: partials disagree on cycle_budget");
    LIPLIB_EXPECT(m.engine == ref.engine,
                  "merge: partials disagree on engine");
  }
  std::sort(parts.begin(), parts.end(),
            [](const Partial& a, const Partial& b) {
              return a.manifest.shard.lo < b.manifest.shard.lo;
            });
  std::size_t next = 0;
  for (const Partial& p : parts) {
    LIPLIB_EXPECT(p.manifest.shard.lo == next,
                  p.manifest.shard.lo > next
                      ? "merge: gap in shard coverage at job " +
                            std::to_string(next)
                      : "merge: overlapping shards at job " +
                            std::to_string(p.manifest.shard.lo) +
                            " (duplicate partial?)");
    next = p.manifest.shard.hi;
  }
  LIPLIB_EXPECT(next == ref.total_jobs,
                "merge: shards cover only " + std::to_string(next) +
                    " of " + std::to_string(ref.total_jobs) + " job(s)");
  campaign::Aggregate merged;
  for (const Partial& p : parts) {
    merged = campaign::merge(merged, p.aggregate);
  }
  return merged;
}

std::string named_campaign_to_string(
    const campaign::NamedCampaignSpec& spec) {
  std::string s = "mode=" + spec.mode;
  s += ";jobs=" + std::to_string(spec.jobs);
  s += ";policy=" + std::string(policy_name(spec.policy));
  s += ";shape=" + std::string(shape_name(spec.shape));
  s += ";engine=" + std::string(xir::engine_mode_name(spec.engine));
  return s;
}

campaign::NamedCampaignSpec named_campaign_from_string(
    const std::string& text) {
  campaign::NamedCampaignSpec spec;
  bool saw_mode = false, saw_jobs = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto semi = std::min(text.find(';', pos), text.size());
    const std::string field = text.substr(pos, semi - pos);
    const auto eq = field.find('=');
    LIPLIB_EXPECT(eq != std::string::npos,
                  "campaign spec: malformed field '" + field + "' in '" +
                      text + "'");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "mode") {
      spec.mode = value;
      saw_mode = true;
    } else if (key == "jobs") {
      std::size_t used = 0;
      unsigned long long v = 0;
      try {
        v = std::stoull(value, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      LIPLIB_EXPECT(used == value.size() && !value.empty(),
                    "campaign spec: bad job count '" + value + "'");
      spec.jobs = static_cast<std::size_t>(v);
      saw_jobs = true;
    } else if (key == "policy") {
      if (value == "strict") {
        spec.policy = lip::StopPolicy::kCarloniStrict;
      } else {
        LIPLIB_EXPECT(value == "variant",
                      "campaign spec: unknown policy '" + value + "'");
        spec.policy = lip::StopPolicy::kCasuDiscardOnVoid;
      }
    } else if (key == "shape") {
      if (value == "reconvergent") {
        spec.shape = campaign::FuzzSpec::Shape::kReconvergent;
      } else if (value == "feedforward") {
        spec.shape = campaign::FuzzSpec::Shape::kFeedforward;
      } else {
        LIPLIB_EXPECT(value == "composite",
                      "campaign spec: unknown shape '" + value + "'");
        spec.shape = campaign::FuzzSpec::Shape::kComposite;
      }
    } else if (key == "engine") {
      LIPLIB_EXPECT(xir::parse_engine_mode(value, &spec.engine),
                    "campaign spec: unknown engine '" + value + "'");
    } else {
      throw ApiError("campaign spec: unknown field '" + key + "'");
    }
    pos = semi + 1;
  }
  LIPLIB_EXPECT(saw_mode && saw_jobs,
                "campaign spec: 'mode' and 'jobs' are required in '" +
                    text + "'");
  return spec;
}

}  // namespace liplib::dist
